module github.com/uwb-sim/concurrent-ranging

go 1.22
