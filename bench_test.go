package concurrentranging

// One benchmark per table and figure of the paper (see DESIGN.md §4).
// Each benchmark regenerates its experiment with a reduced Monte-Carlo
// budget per iteration and reports the headline quantities as custom
// metrics, so `go test -bench=.` both times the harness and reprints the
// reproduced numbers. crbench runs the same generators with the paper's
// full trial counts.

import (
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/experiments"
	"github.com/uwb-sim/concurrent-ranging/internal/geom"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
	"github.com/uwb-sim/concurrent-ranging/internal/sim"
	"github.com/uwb-sim/concurrent-ranging/ranging"
)

func BenchmarkFig1MultipathResolution(b *testing.B) {
	var wide, narrow int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		wide, narrow = r.ResolvablePeaksWide, r.ResolvablePeaksNarrow
	}
	b.ReportMetric(float64(wide), "peaks@900MHz")
	b.ReportMetric(float64(narrow), "peaks@50MHz")
}

func BenchmarkFig2EstimatedCIR(b *testing.B) {
	var mpcs int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		mpcs = len(r.MPCIndexes)
	}
	b.ReportMetric(float64(mpcs), "visible-MPCs")
}

func BenchmarkSec3ResponseDelay(b *testing.B) {
	var minDelay, chosen float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Sec3Delay()
		if err != nil {
			b.Fatal(err)
		}
		minDelay, chosen = r.MinResponseDelay, r.ResponseDelay
	}
	b.ReportMetric(minDelay*1e6, "min-Δresp-µs")
	b.ReportMetric(chosen*1e6, "Δresp-µs")
}

func BenchmarkSec3MessageCount(b *testing.B) {
	var sched, conc int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Sec3Messages([]int{10})
		if err != nil {
			b.Fatal(err)
		}
		sched, conc = r.Scheduled[0], r.Concurrent[0]
	}
	b.ReportMetric(float64(sched), "msgs-scheduled-N10")
	b.ReportMetric(float64(conc), "msgs-concurrent-N10")
}

func BenchmarkFig4ResponseDetection(b *testing.B) {
	var worst float64
	var rate float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(experiments.Fig4Config{
			Trials: 10, Seed: uint64(i + 1), IdealTransceiver: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		worst, rate = 0, 1
		for j := range r.TrueDistances {
			if e := absf(r.MeanDistance[j] - r.TrueDistances[j]); e > worst {
				worst = e
			}
			if r.PerResponderRate[j] < rate {
				rate = r.PerResponderRate[j]
			}
		}
	}
	b.ReportMetric(worst, "worst-mean-error-m")
	b.ReportMetric(rate*100, "min-detection-%")
}

func BenchmarkFig5PulseShapes(b *testing.B) {
	var widest float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		widest = r.Durations[len(r.Durations)-1]
	}
	b.ReportMetric(widest*1e9, "s4-duration-ns")
}

func BenchmarkSec5RangingPrecision(b *testing.B) {
	var s1, s2, s3 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Sec5(experiments.Sec5Config{Trials: 300, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		s1, s2, s3 = r.Sigma[0], r.Sigma[1], r.Sigma[2]
	}
	b.ReportMetric(s1*100, "σ1-cm")
	b.ReportMetric(s2*100, "σ2-cm")
	b.ReportMetric(s3*100, "σ3-cm")
}

func BenchmarkFig6PulseShapeID(b *testing.B) {
	ok := 0
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Identified) == 2 && r.Identified[0] == 0 && r.Identified[1] == 2 {
			ok++
		}
	}
	b.ReportMetric(float64(ok)/float64(b.N)*100, "correct-ID-%")
}

func BenchmarkTable1IdentificationRate(b *testing.B) {
	var minRate float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(experiments.Table1Config{Trials: 20, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		minRate = 100
		for j := range r.Distances {
			minRate = min(minRate, min(r.RateS2[j], r.RateS3[j]))
		}
	}
	b.ReportMetric(minRate, "min-ID-rate-%")
}

func BenchmarkSec6OverlapDetection(b *testing.B) {
	var ss, th float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Sec6(experiments.Sec6Config{Trials: 100, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		ss, th = r.SearchSubtractRate, r.ThresholdRate
	}
	b.ReportMetric(ss*100, "search-subtract-%")
	b.ReportMetric(th*100, "threshold-%")
}

func BenchmarkSec7ResponseModulation(b *testing.B) {
	var slots75 int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Sec7([]float64{75})
		if err != nil {
			b.Fatal(err)
		}
		slots75 = r.Slots[0]
	}
	b.ReportMetric(float64(slots75), "N_RPM@75m")
}

func BenchmarkFig8CombinedScheme(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(experiments.Fig8Config{
			Trials: 5, Seed: uint64(i + 1), IdealTransceiver: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		rate = r.IdentificationRate
	}
	b.ReportMetric(rate*100, "identified-%")
}

func BenchmarkSec8Scalability(b *testing.B) {
	var capacity int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Sec8()
		if err != nil {
			b.Fatal(err)
		}
		capacity = r.HeadlineResponders
	}
	b.ReportMetric(float64(capacity), "N_max@20m")
}

func BenchmarkAblationUpsampling(b *testing.B) {
	var r1, r16 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationUpsample(40, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		r1, r16 = r.SuccessRate[0], r.SuccessRate[len(r.SuccessRate)-1]
	}
	b.ReportMetric(r1*100, "overlap-x1-%")
	b.ReportMetric(r16*100, "overlap-x16-%")
}

func BenchmarkAblationTXQuantization(b *testing.B) {
	var with, ideal float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationQuantization(15, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		with, ideal = r.WithQuantizationRMSE, r.IdealRMSE
	}
	b.ReportMetric(with, "rmse-dw1000-m")
	b.ReportMetric(ideal, "rmse-ideal-m")
}

func BenchmarkAblationThreshold(b *testing.B) {
	var missAtDefault float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationThreshold(10, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		missAtDefault = r.MissRate[2]
	}
	b.ReportMetric(missAtDefault*100, "miss@6x-%")
}

// ---- micro-benchmarks of the core pipeline ----

func BenchmarkDetectorSearchAndSubtract(b *testing.B) {
	bank, err := pulse.DefaultBank(dw1000.SampleInterval, 3)
	if err != nil {
		b.Fatal(err)
	}
	det, err := core.NewDetector(bank, core.DetectorConfig{})
	if err != nil {
		b.Fatal(err)
	}
	taps := benchCIR(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Detect(taps, dw1000.DefaultNoiseRMS); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatchedFilterBank1016 is the cached counterpart of
// BenchmarkMatchedFilter1016: one shared forward FFT of the signal plus a
// precomputed template spectrum per filter, the shape Detect uses per
// search-and-subtract iteration.
func BenchmarkMatchedFilterBank1016(b *testing.B) {
	bank, err := pulse.DefaultBank(dw1000.SampleInterval, 3)
	if err != nil {
		b.Fatal(err)
	}
	taps := benchCIR(b)
	templates := make([][]complex128, bank.Len())
	for t := range templates {
		templates[t] = bank.Template(t)
	}
	fbank, err := dsp.NewMatchedFilterBank(templates, len(taps))
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]complex128, len(taps))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fbank.Transform(taps); err != nil {
			b.Fatal(err)
		}
		for t := range templates {
			if _, err := fbank.FilterInto(dst, t); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkUpsamplePlan4x(b *testing.B) {
	taps := benchCIR(b)
	plan, err := dsp.NewUpsamplePlan(len(taps), 4)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]complex128, plan.OutputLen())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.Execute(dst, taps)
	}
}

func BenchmarkMatchedFilter1016(b *testing.B) {
	bank, err := pulse.DefaultBank(dw1000.SampleInterval, 1)
	if err != nil {
		b.Fatal(err)
	}
	taps := benchCIR(b)
	tmpl := bank.Template(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsp.MatchedFilter(taps, tmpl)
	}
}

func BenchmarkFFT1016(b *testing.B) {
	taps := benchCIR(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsp.FFT(taps)
	}
}

func BenchmarkUpsample4x(b *testing.B) {
	taps := benchCIR(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dsp.UpsampleFFT(taps, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConcurrentRound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net, err := sim.NewNetwork(sim.NetworkConfig{
			Environment: channel.Hallway(), Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		init, err := net.AddNode(sim.NodeConfig{ID: -1, Name: "init", Pos: geom.Point{X: 2, Y: 0.9}})
		if err != nil {
			b.Fatal(err)
		}
		var resps []*sim.Node
		for j, d := range []float64{3, 6, 10} {
			n, err := net.AddNode(sim.NodeConfig{ID: j, Pos: geom.Point{X: 2 + d, Y: 0.9}})
			if err != nil {
				b.Fatal(err)
			}
			resps = append(resps, n)
		}
		if _, err := net.RunConcurrentRound(init, resps, sim.RoundConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullSessionPipeline(b *testing.B) {
	sc := ranging.NewScenario(ranging.Config{
		Environment: ranging.EnvHallway, Seed: 1, NumShapes: 3, MaxRange: 75,
	})
	sc.SetInitiator(2, 0.9)
	sc.AddResponder(0, 5, 0.9)
	sc.AddResponder(1, 8, 0.9)
	sc.AddResponder(2, 12, 0.9)
	session, err := sc.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := session.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCIR builds a representative three-response CIR for DSP benches.
func benchCIR(b *testing.B) []complex128 {
	b.Helper()
	net, err := sim.NewNetwork(sim.NetworkConfig{Environment: channel.Hallway(), Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	init, err := net.AddNode(sim.NodeConfig{ID: -1, Name: "init", Pos: geom.Point{X: 2, Y: 0.9}})
	if err != nil {
		b.Fatal(err)
	}
	var resps []*sim.Node
	for j, d := range []float64{3, 6, 10} {
		n, err := net.AddNode(sim.NodeConfig{ID: j, Pos: geom.Point{X: 2 + d, Y: 0.9}})
		if err != nil {
			b.Fatal(err)
		}
		resps = append(resps, n)
	}
	round, err := net.RunConcurrentRound(init, resps, sim.RoundConfig{})
	if err != nil {
		b.Fatal(err)
	}
	return round.Reception.CIR.Taps
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func BenchmarkAblationRefinement(b *testing.B) {
	var gridRMSE, refinedRMSE float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationRefinement(40, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		gridRMSE, refinedRMSE = r.GridDelayRMSE, r.RefinedDelayRMSE
	}
	b.ReportMetric(gridRMSE, "grid-rmse-ps")
	b.ReportMetric(refinedRMSE, "refined-rmse-ps")
}

func BenchmarkAblationSlotPlan(b *testing.B) {
	var paperWide, safeWide float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationSlotPlan(6, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		last := len(r.Spreads) - 1
		paperWide, safeWide = r.PaperRate[last], r.SafeRate[last]
	}
	b.ReportMetric(paperWide*100, "paper-plan-wide-%")
	b.ReportMetric(safeWide*100, "safe-plan-wide-%")
}

func BenchmarkMeasuredCampaign(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Campaign([]int{8}, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.ScheduledDuration[0] / r.ConcurrentDuration[0]
	}
	b.ReportMetric(ratio, "latency-ratio-N8")
}

func BenchmarkCaptureLimits(b *testing.B) {
	var equalAt9 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Capture(10, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		equalAt9 = r.EqualRate[len(r.EqualRate)-1]
	}
	b.ReportMetric(equalAt9*100, "equal-power-decode-N9-%")
}
