package core_test

// Flight-recorder contract tests: tracing must observe every search-and-
// subtract decision without perturbing it (bit-identical responses), emit
// one detect.round event per extraction round with the full decision
// payload, and stay silent under a sampled-out parent span.

import (
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/obs/trace"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

func TestDetectWithFlightRecorderIsBitIdentical(t *testing.T) {
	taps := goldenSimCIR(t)
	bank, err := pulse.DefaultBank(goldenTs, 1)
	if err != nil {
		t.Fatal(err)
	}
	bare, err := core.NewDetector(bank, core.DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := core.NewDetector(bank, core.DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	traced.SetFlightRecorder(trace.New(trace.Config{}))

	const noiseRMS = 1e-4
	want, err := bare.Detect(taps, noiseRMS)
	if err != nil {
		t.Fatal(err)
	}
	got, err := traced.Detect(taps, noiseRMS)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("tracing changed the response count: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("response %d differs with tracing on:\n  got  %+v\n  want %+v",
				i, got[i], want[i])
		}
	}
}

func TestDetectEmitsRoundEvents(t *testing.T) {
	taps := goldenSimCIR(t)
	bank, err := pulse.DefaultBank(goldenTs, 2)
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.NewDetector(bank, core.DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Config{})
	det.SetFlightRecorder(tr)

	responses, err := det.Detect(taps, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if len(responses) == 0 {
		t.Fatal("expected detections in the golden CIR")
	}

	evs := tr.Events()
	var begin, end *trace.Event
	var rounds []trace.Event
	for i := range evs {
		switch {
		case evs[i].Phase == trace.PhaseBegin && evs[i].Name == trace.SpanDetect:
			begin = &evs[i]
		case evs[i].Phase == trace.PhaseEnd:
			end = &evs[i]
		case evs[i].Phase == trace.PhaseInstant && evs[i].Name == trace.EventDetectRound:
			rounds = append(rounds, evs[i])
		}
	}
	if begin == nil || end == nil {
		t.Fatalf("missing detect span begin/end in %d events", len(evs))
	}
	if got := begin.Attrs["templates"]; got != bank.Len() {
		t.Errorf("begin templates = %v, want %d", got, bank.Len())
	}
	if len(rounds) != int(asInt(t, end.Attrs["rounds"])) {
		t.Errorf("%d detect.round events, end says %v rounds", len(rounds), end.Attrs["rounds"])
	}
	if got := asInt(t, end.Attrs["responses"]); got != len(responses) {
		t.Errorf("end responses = %d, want %d", got, len(responses))
	}
	// Automatic mode stops at the noise threshold; the last round must be
	// the rejection and the earlier ones acceptances.
	if got := end.Attrs[trace.AttrReason]; got != trace.ReasonBelowThreshold {
		t.Errorf("stop reason = %v, want %q", got, trace.ReasonBelowThreshold)
	}
	accepted := 0
	var lastFrac float64 = 2
	for i, ev := range rounds {
		if got := asInt(t, ev.Attrs[trace.AttrRound]); got != i {
			t.Errorf("round %d carries index %d", i, got)
		}
		scores, ok := ev.Attrs[trace.AttrScores].([]float64)
		if !ok || len(scores) != bank.Len() {
			t.Fatalf("round %d scores = %#v, want %d per-template scores", i, ev.Attrs[trace.AttrScores], bank.Len())
		}
		reason := ev.Attrs[trace.AttrReason]
		if reason == trace.ReasonAccepted {
			accepted++
			if ev.Attrs[trace.AttrAmplitude].(float64) <= 0 {
				t.Errorf("accepted round %d has non-positive amplitude", i)
			}
			if ev.Attrs[trace.AttrMarginDB].(float64) < 0 {
				t.Errorf("accepted round %d margin below zero", i)
			}
			// Each subtraction removes energy: the residual fraction
			// decreases monotonically across accepted rounds.
			frac := ev.Attrs[trace.AttrResidualFrac].(float64)
			if frac <= 0 || frac >= lastFrac {
				t.Errorf("round %d residual frac %g not in (0, %g)", i, frac, lastFrac)
			}
			lastFrac = frac
			tmpl := asInt(t, ev.Attrs[trace.AttrTemplate])
			if scores[tmpl] <= 0 {
				t.Errorf("round %d winning template %d has zero score", i, tmpl)
			}
		} else if i != len(rounds)-1 {
			t.Errorf("non-final round %d rejected with %v", i, reason)
		}
	}
	if accepted != len(responses) {
		t.Errorf("%d accepted rounds, %d responses", accepted, len(responses))
	}
}

// asInt converts the int-typed attrs the detector emits (which stay Go
// ints until JSON encoding) for comparison.
func asInt(t *testing.T, v any) int {
	t.Helper()
	switch n := v.(type) {
	case int:
		return n
	case float64:
		return int(n)
	default:
		t.Fatalf("attr %#v is not numeric", v)
		return 0
	}
}

func TestDetectSuppressedUnderInertParent(t *testing.T) {
	taps := goldenSimCIR(t)
	bank, err := pulse.DefaultBank(goldenTs, 1)
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.NewDetector(bank, core.DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// SampleEvery 2: the first root records, the second is sampled out.
	tr := trace.New(trace.Config{SampleEvery: 2})
	det.SetFlightRecorder(tr)
	live := tr.Begin("session.round", nil)
	inert := tr.Begin("session.round", nil)
	if inert.Recording() {
		t.Fatal("second root should be sampled out")
	}
	live.End()
	base := tr.Stats().Events

	// Under the sampled-out parent the detector must not open a root span
	// of its own.
	det.SetTraceParent(inert)
	if _, err := det.Detect(taps, 1e-4); err != nil {
		t.Fatal(err)
	}
	if got := tr.Stats().Events; got != base {
		t.Errorf("detect under inert parent emitted %d events", got-base)
	}
	det.SetTraceParent(nil)
	if _, err := det.Detect(taps, 1e-4); err != nil {
		t.Fatal(err)
	}
	if got := tr.Stats().Events; got <= base {
		t.Error("detect without a parent should trace as its own root")
	}
}

// BenchmarkDetectWithFlightRecorder quantifies the tracing-on cost; the
// disabled-path gate is BenchmarkDetectNilRecorder (the flight recorder
// defaults to nil there, so that benchmark covers the added nil checks).
func BenchmarkDetectWithFlightRecorder(b *testing.B) {
	bank, err := pulse.DefaultBank(goldenTs, 1)
	if err != nil {
		b.Fatal(err)
	}
	det, err := core.NewDetector(bank, core.DetectorConfig{})
	if err != nil {
		b.Fatal(err)
	}
	det.SetFlightRecorder(trace.New(trace.Config{RingSize: 256}))
	taps := goldenSimCIR(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Detect(taps, 1e-4); err != nil {
			b.Fatal(err)
		}
	}
}
