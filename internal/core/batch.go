package core

import (
	"fmt"
	"runtime"
	"strconv"
	"sync/atomic"

	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
	"github.com/uwb-sim/concurrent-ranging/internal/obs"
	"github.com/uwb-sim/concurrent-ranging/internal/obs/trace"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

// Metric names the batch engine records through its Recorder, alongside
// the per-Detect detector.* metrics its worker detectors emit.
const (
	// MetricBatchBatches counts DetectBatch invocations.
	MetricBatchBatches = "detector.batch_calls"
	// MetricBatchCIRs counts CIRs submitted across all batches.
	MetricBatchCIRs = "detector.batch_cirs"
	// MetricBatchErrors counts per-item failures inside batches.
	MetricBatchErrors = "detector.batch_errors"
	// MetricBatchGroups is the per-batch distinct-CIR-length group count.
	MetricBatchGroups = "detector.batch_groups"
	// MetricBatchWorkerItems counts items processed per worker
	// ({worker="i"}), so a dashboard can see the static round-robin
	// partition's balance. The partition depends only on batch layout and
	// pool size, so the per-worker values are deterministic. Recorded
	// only when the Recorder supports labeled series (obs.VecSource).
	MetricBatchWorkerItems = "detector.batch_worker_items"
)

// BatchInput is one CIR to detect on: the taps (sampled at the bank's
// interval) and the per-tap complex noise RMS feeding the detection
// threshold — exactly Detect's arguments.
type BatchInput struct {
	Taps     []complex128
	NoiseRMS float64
}

// BatchResult is one input's outcome. Exactly one of Responses/Err is
// meaningful: a failed item has Err set and no responses, and its failure
// never corrupts neighboring items. Responses slices alias engine-owned
// arenas and are valid only until the next DetectBatch (or Close) —
// copy them out to keep them longer.
type BatchResult struct {
	Responses []Response
	Err       error
}

// batchShared is the per-CIR-length execution state a batch shares across
// its workers: the banks holding every template's spectrum at that length.
// Workers clone the banks (sharing the read-only plans and template
// spectra, owning the mutable signal state), so the O(templates × FFT)
// setup is paid once per length instead of once per worker.
type batchShared struct {
	n     int
	fbank *dsp.MatchedFilterBank
	sbank *dsp.SpectralBank // nil unless the spectral path is active
	err   error             // length rejected by the dsp layer (e.g. template longer than window)
}

// batchGroup is one same-length run of the current batch inside the order
// index: items order[lo : lo+fill].
type batchGroup struct {
	n     int // CIR length in taps
	state int // index into BatchDetector.states
	lo    int // segment start in order
	count int // planned segment capacity
	fill  int // items actually enqueued (failed items are excluded)
}

// batchWorker is one worker's execution state: lazily built per-length
// detectors (sharing each length's banks via Clone) and the response
// arena its items' results point into.
type batchWorker struct {
	idx   int
	start chan struct{}
	dets  []*Detector // parallel to BatchDetector.states; nil until first use
	resp  []Response  // arena; batch results alias it until the next batch
}

// BatchDetector amortizes detection across many CIRs. It groups
// same-length inputs so FFT-plan setup and template spectra are built
// once per length and shared read-only across a fixed worker pool; each
// worker owns its detectors' mutable scratch, so the steady-state hot
// path allocates nothing. Items are partitioned round-robin within each
// group by a static rule, and every item's result depends only on its
// input, so DetectBatch output is bit-identical to looping Detect —
// regardless of worker count or scheduling.
//
// A BatchDetector is not safe for concurrent use: one DetectBatch at a
// time, from one goroutine (the call itself fans out internally).
type BatchDetector struct {
	proto   *Detector
	workers []*batchWorker
	done    chan struct{}
	closed  bool

	states   []*batchShared
	lenState map[int]int // CIR length → states index
	lenGroup map[int]int // CIR length → groups index, current batch only

	cur     []BatchInput
	res     []BatchResult
	results []BatchResult // backing storage reused across batches
	groups  []batchGroup
	order   []int32

	rec obs.Recorder
	// workerItems holds the pre-resolved per-worker labeled counter
	// children (one per pool slot; nil unless rec supports labeled
	// series), so workers flush their item tallies without vec lookups.
	workerItems []*obs.Counter
	flight      *trace.Tracer
	onItem      func(done int)
	doneN       atomic.Int64
}

// NewBatchDetector builds a batch engine over the given bank and detector
// configuration. workers bounds the pool; 0 means GOMAXPROCS. The worker
// detectors run with Workers: 1 — the batch dimension is the parallelism.
func NewBatchDetector(bank *pulse.Bank, cfg DetectorConfig, workers int) (*BatchDetector, error) {
	if workers < 0 {
		return nil, fmt.Errorf("core: negative batch workers %d", workers)
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	proto, err := NewDetector(bank, cfg)
	if err != nil {
		return nil, err
	}
	b := &BatchDetector{
		proto:    proto,
		workers:  make([]*batchWorker, workers),
		done:     make(chan struct{}),
		lenState: make(map[int]int),
		lenGroup: make(map[int]int),
	}
	// NewDetector precomputed the dw1000 accumulator window's banks; seed
	// the shared-state cache with them (the prototype never detects, so
	// they stay pristine for cloning).
	b.states = append(b.states, &batchShared{n: proto.cirLen, fbank: proto.fbank, sbank: proto.sbank})
	b.lenState[proto.cirLen] = 0
	for i := range b.workers {
		b.workers[i] = &batchWorker{idx: i, start: make(chan struct{})}
	}
	// Worker 0 runs inline in DetectBatch's goroutine; only the rest get
	// serve loops.
	for _, w := range b.workers[1:] {
		go b.serve(w)
	}
	return b, nil
}

// Workers returns the resolved worker-pool size.
func (b *BatchDetector) Workers() int { return len(b.workers) }

// Config returns the effective per-item detector configuration.
func (b *BatchDetector) Config() DetectorConfig { return b.proto.Config() }

// SetRecorder attaches an instrumentation sink to the engine and every
// worker detector; nil (the default) disables recording. Like
// Detector.SetRecorder this is not synchronized: set it before the first
// DetectBatch.
func (b *BatchDetector) SetRecorder(r obs.Recorder) {
	b.rec = r
	b.workerItems = nil
	if vs, ok := r.(obs.VecSource); ok {
		vec := vs.CounterVec(MetricBatchWorkerItems, "worker")
		b.workerItems = make([]*obs.Counter, len(b.workers))
		for i := range b.workerItems {
			b.workerItems[i] = vec.With(strconv.Itoa(i))
		}
	}
	b.eachWorkerDetector(func(d *Detector) { d.SetRecorder(r) })
}

// SetFlightRecorder attaches the decision-level flight recorder to the
// engine and every worker detector; nil disables it. Set it before the
// first DetectBatch.
func (b *BatchDetector) SetFlightRecorder(tr *trace.Tracer) {
	b.flight = tr
	b.eachWorkerDetector(func(d *Detector) { d.SetFlightRecorder(tr) })
}

// SetProgress installs a per-item completion callback: fn(done) is called
// once per worker-processed item with the number of items finished so far
// in the current batch. It may run concurrently from workers and must be
// cheap. Set it before the first DetectBatch.
func (b *BatchDetector) SetProgress(fn func(done int)) { b.onItem = fn }

func (b *BatchDetector) eachWorkerDetector(fn func(*Detector)) {
	for _, w := range b.workers {
		for _, d := range w.dets {
			if d != nil {
				fn(d)
			}
		}
	}
}

// Close shuts the worker goroutines down. The engine must not be used
// afterwards; results from the last batch remain readable. Idempotent.
func (b *BatchDetector) Close() {
	if b.closed {
		return
	}
	b.closed = true
	for _, w := range b.workers[1:] {
		close(w.start)
	}
}

// DetectBatch runs search and subtract on every input and returns one
// result per input, in input order. The returned slice and the response
// slices inside it are engine-owned and valid only until the next
// DetectBatch or Close. Per-item failures (empty CIR, bad noise RMS, a
// length the dsp layer rejects, a panicking item) are reported in that
// item's Err; the batch itself never fails.
func (b *BatchDetector) DetectBatch(inputs []BatchInput) []BatchResult {
	if cap(b.results) < len(inputs) {
		b.results = make([]BatchResult, len(inputs))
	}
	res := b.results[:len(inputs)]
	for i := range res {
		res[i] = BatchResult{}
	}
	b.res, b.cur = res, inputs
	b.plan(inputs, res)
	span := b.beginBatchSpan(len(inputs))
	b.doneN.Store(0)
	for _, w := range b.workers[1:] {
		w.start <- struct{}{}
	}
	b.runWorker(b.workers[0])
	for range b.workers[1:] {
		<-b.done
	}
	b.cur = nil
	if b.rec != nil || span != nil {
		b.endBatch(span, res)
	}
	return res
}

// plan groups the batch's inputs by CIR length and lays the runnable item
// indices out group-contiguously in b.order. Items that fail up front
// (empty taps, a length whose shared state cannot be built) get their
// error set here and are excluded from the order.
func (b *BatchDetector) plan(inputs []BatchInput, res []BatchResult) {
	b.groups = b.groups[:0]
	clear(b.lenGroup)
	for _, in := range inputs {
		n := len(in.Taps)
		if n == 0 {
			continue
		}
		gi, ok := b.lenGroup[n]
		if !ok {
			gi = len(b.groups)
			b.groups = append(b.groups, batchGroup{n: n, state: b.stateFor(n)})
			b.lenGroup[n] = gi
		}
		b.groups[gi].count++
	}
	total := 0
	for gi := range b.groups {
		g := &b.groups[gi]
		g.lo, g.fill = total, 0
		total += g.count
	}
	if cap(b.order) < total {
		b.order = make([]int32, total)
	}
	b.order = b.order[:total]
	for i, in := range inputs {
		n := len(in.Taps)
		if n == 0 {
			res[i].Err = fmt.Errorf("core: empty CIR")
			continue
		}
		g := &b.groups[b.lenGroup[n]]
		if s := b.states[g.state]; s.err != nil {
			res[i].Err = fmt.Errorf("core: %d-tap batch group: %w", n, s.err)
			continue
		}
		b.order[g.lo+g.fill] = int32(i)
		g.fill++
	}
}

// stateFor returns (building and caching on demand) the states index for
// CIRs of n taps. Build failures are cached too, so every item of a bad
// length reports the same error without rebuilding.
func (b *BatchDetector) stateFor(n int) int {
	if si, ok := b.lenState[n]; ok {
		return si
	}
	s := &batchShared{n: n}
	sigLen := n * b.proto.cfg.Upsample
	if fbank, err := dsp.NewMatchedFilterBank(b.proto.templates, sigLen); err != nil {
		s.err = err
	} else {
		s.fbank = fbank
		if b.proto.useSpectral() {
			if sbank, err := dsp.NewSpectralBank(b.proto.templates, sigLen); err != nil {
				s.err = err
				s.fbank = nil
			} else {
				s.sbank = sbank
			}
		}
	}
	si := len(b.states)
	b.states = append(b.states, s)
	b.lenState[n] = si
	return si
}

// serve is a non-inline worker's loop: one runWorker per batch.
func (b *BatchDetector) serve(w *batchWorker) {
	for range w.start {
		b.runWorker(w)
		b.done <- struct{}{}
	}
}

// runWorker processes this worker's statically assigned share of the
// current batch: within each group segment, items order[g.lo+idx],
// order[g.lo+idx+W], ... The partition depends only on the batch layout
// and the pool size — never on timing — and each item's result depends
// only on its input, so scheduling cannot reorder or change anything.
func (b *BatchDetector) runWorker(w *batchWorker) {
	w.resp = w.resp[:0]
	W := len(b.workers)
	items := 0
	for gi := range b.groups {
		g := &b.groups[gi]
		if g.fill == 0 {
			continue
		}
		det, err := b.workerDetector(w, g.state)
		for k := g.lo + w.idx; k < g.lo+g.fill; k += W {
			i := int(b.order[k])
			items++
			if err != nil {
				b.res[i].Err = err
				b.itemDone()
				continue
			}
			b.runItem(w, det, i)
		}
	}
	// One flush per batch per worker, through the pre-resolved child. The
	// tally is a function of the static partition alone, so the labeled
	// series stays deterministic.
	if ctr := b.workerItemCounter(w.idx); ctr != nil {
		ctr.Add(int64(items))
	}
}

// workerItemCounter returns the pre-resolved per-worker item counter, or
// nil when labeled recording is off (the shape nilinstr can check).
func (b *BatchDetector) workerItemCounter(idx int) *obs.Counter {
	if b.workerItems == nil {
		return nil
	}
	return b.workerItems[idx]
}

// runItem detects one input into the worker's arena, converting a panic
// into that item's error (with the arena rolled back) so one bad item
// cannot take the batch down or corrupt its neighbors.
func (b *BatchDetector) runItem(w *batchWorker, det *Detector, i int) {
	base := len(w.resp)
	defer func() {
		if r := recover(); r != nil {
			w.resp = w.resp[:base]
			b.res[i] = BatchResult{Err: fmt.Errorf("core: batch item %d panicked: %v", i, r)}
		}
		b.itemDone()
	}()
	in := b.cur[i]
	out, err := det.detectAppend(w.resp, in.Taps, in.NoiseRMS)
	w.resp = out
	if err != nil {
		b.res[i].Err = err
		return
	}
	// Full-capacity slice: appends for later items can never write into
	// this item's window.
	b.res[i].Responses = out[base:len(out):len(out)]
}

func (b *BatchDetector) itemDone() {
	if b.onItem != nil {
		b.onItem(int(b.doneN.Add(1)))
	}
}

// workerDetector returns (lazily building) this worker's detector for the
// given shared state, cloning the state's banks so plan setup and
// template spectra stay shared while all mutable scratch is worker-owned.
func (b *BatchDetector) workerDetector(w *batchWorker, si int) (*Detector, error) {
	for len(w.dets) <= si {
		w.dets = append(w.dets, nil)
	}
	if d := w.dets[si]; d != nil {
		return d, nil
	}
	d, err := newSharedDetector(b.proto, b.states[si])
	if err != nil {
		return nil, err
	}
	if b.rec != nil {
		d.SetRecorder(b.rec)
	}
	if b.flight != nil {
		d.SetFlightRecorder(b.flight)
	}
	w.dets[si] = d
	return d, nil
}

// newSharedDetector builds a worker detector over the shared per-length
// state: configuration, bank, and templates come from the prototype, the
// dsp banks are clones sharing s's read-only plans and spectra, and every
// mutable buffer is freshly owned. Workers is forced to 1 — the batch
// engine's pool is the parallelism.
func newSharedDetector(proto *Detector, s *batchShared) (*Detector, error) {
	cfg := proto.cfg
	cfg.Workers = 1
	up, err := dsp.NewUpsamplePlan(s.n, cfg.Upsample)
	if err != nil {
		return nil, err
	}
	d := &Detector{
		cfg:       cfg,
		bank:      proto.bank,
		ts:        proto.ts,
		tsUp:      proto.tsUp,
		templates: proto.templates,
		centers:   proto.centers,
		cirLen:    s.n,
		upsample:  up,
		fbank:     s.fbank.Clone(),
		residual:  make([]complex128, s.n),
		up:        make([]complex128, s.n*cfg.Upsample),
		yCur:      make([]complex128, s.n*cfg.Upsample),
	}
	if s.sbank != nil {
		d.sbank = s.sbank.Clone()
	}
	d.workers = make([]detectWorker, 1)
	d.workers[0].fscratch = d.fbank.NewScratch()
	if d.sbank != nil {
		d.workers[0].sscratch = d.sbank.NewScratch()
	}
	return d, nil
}

// beginBatchSpan opens the batch's root span on the flight recorder, or
// returns nil when tracing is off or the root was sampled out.
func (b *BatchDetector) beginBatchSpan(cirs int) *trace.Span {
	if b.flight == nil {
		return nil
	}
	sp := b.flight.Begin(trace.SpanDetectBatch, trace.Attrs{
		"cirs":    cirs,
		"groups":  len(b.groups),
		"workers": len(b.workers),
	})
	if !sp.Recording() {
		return nil
	}
	return sp
}

// endBatch tallies the finished batch into the recorder and span. Only
// reached with a recorder or live span attached (nilinstr contract).
func (b *BatchDetector) endBatch(span *trace.Span, res []BatchResult) {
	failed, responses := 0, 0
	for i := range res {
		if res[i].Err != nil {
			failed++
		}
		responses += len(res[i].Responses)
	}
	if rec := b.rec; rec != nil {
		rec.Count(MetricBatchBatches, 1)
		rec.Count(MetricBatchCIRs, int64(len(res)))
		rec.Count(MetricBatchErrors, int64(failed))
		rec.Observe(MetricBatchGroups, float64(len(b.groups)))
	}
	if span != nil {
		span.EndWith(trace.Attrs{
			"errors":    failed,
			"responses": responses,
		})
	}
}
