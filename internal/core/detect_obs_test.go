package core_test

// Instrumentation contract tests: a Recorder attached to the Detector
// must observe the search without perturbing it (bit-identical responses)
// and must stay free when nil (benchmark below; acceptance gate of the
// observability PR).

import (
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/obs"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

func TestDetectWithRecorderIsBitIdentical(t *testing.T) {
	taps := goldenSimCIR(t)
	bank, err := pulse.DefaultBank(goldenTs, 1)
	if err != nil {
		t.Fatal(err)
	}
	bare, err := core.NewDetector(bank, core.DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	instrumented, err := core.NewDetector(bank, core.DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	instrumented.SetRecorder(obs.NewRegistry())

	const noiseRMS = 1e-4
	want, err := bare.Detect(taps, noiseRMS)
	if err != nil {
		t.Fatal(err)
	}
	got, err := instrumented.Detect(taps, noiseRMS)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recorder changed the response count: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("response %d differs with a recorder attached:\n  got  %+v\n  want %+v",
				i, got[i], want[i])
		}
	}
}

func TestDetectRecordsDiagnostics(t *testing.T) {
	taps := goldenSimCIR(t)
	bank, err := pulse.DefaultBank(goldenTs, 1)
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.NewDetector(bank, core.DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	det.SetRecorder(reg)

	const calls = 3
	var responses int
	for i := 0; i < calls; i++ {
		rs, err := det.Detect(taps, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		responses = len(rs)
	}
	if responses == 0 {
		t.Fatal("expected detections in the golden CIR")
	}
	snap := reg.Snapshot()

	if got := snap.CounterValue(core.MetricDetectCalls); got != calls {
		t.Errorf("%s = %d, want %d", core.MetricDetectCalls, got, calls)
	}
	iters, ok := snap.HistogramByName(core.MetricDetectIterations)
	if !ok || iters.Count != calls {
		t.Fatalf("%s histogram = %+v, want %d observations", core.MetricDetectIterations, iters, calls)
	}
	if iters.Sum < float64(calls) {
		t.Errorf("iteration sum %g < one round per call", iters.Sum)
	}
	// One template in the bank: template evals == extraction rounds, and
	// the dsp plan counters must agree with the search structure.
	evals := snap.CounterValue(core.MetricDetectTemplateEvals)
	if evals != int64(iters.Sum) {
		t.Errorf("template evals %d != iteration sum %g (single-template bank)", evals, iters.Sum)
	}
	if got := snap.CounterValue(core.MetricUpsampleExecs); got != int64(iters.Sum) {
		t.Errorf("%s = %d, want %g (one upsample per round)", core.MetricUpsampleExecs, got, iters.Sum)
	}
	if got := snap.CounterValue(core.MetricBankTransforms); got != int64(iters.Sum) {
		t.Errorf("%s = %d, want %g", core.MetricBankTransforms, got, iters.Sum)
	}
	if got := snap.CounterValue(core.MetricBankFilters); got != evals {
		t.Errorf("%s = %d, want %d", core.MetricBankFilters, got, evals)
	}
	if h, ok := snap.HistogramByName(core.MetricDetectResponses); !ok || h.Count != calls ||
		int(h.Sum) != calls*responses {
		t.Errorf("%s = %+v, want %d calls × %d responses", core.MetricDetectResponses, h, calls, responses)
	}
	if h, ok := snap.HistogramByName(core.MetricDetectRefineSteps); !ok || h.Sum <= 0 {
		t.Errorf("%s = %+v, want positive refinement work", core.MetricDetectRefineSteps, h)
	}
	// Every accepted response clears the threshold, so margins are >= 0
	// and one is recorded per response per call.
	margins, ok := snap.HistogramByName(core.MetricDetectMarginDB)
	if !ok || margins.Count != int64(calls*responses) {
		t.Fatalf("%s = %+v, want %d observations", core.MetricDetectMarginDB, margins, calls*responses)
	}
	if *margins.Min < 0 {
		t.Errorf("peak-to-threshold margin %g dB below zero", *margins.Min)
	}
	frac, ok := snap.HistogramByName(core.MetricDetectResidualFrac)
	if !ok || frac.Count != calls {
		t.Fatalf("%s = %+v, want %d observations", core.MetricDetectResidualFrac, frac, calls)
	}
	if *frac.Min <= 0 || *frac.Max >= 1 {
		t.Errorf("residual energy fraction outside (0, 1): min %g max %g", *frac.Min, *frac.Max)
	}
}

// benchmarkDetect measures Detect on the golden three-responder CIR with
// the given recorder; the nil-recorder variant is the acceptance gate
// that instrumentation is free when disabled.
func benchmarkDetect(b *testing.B, rec obs.Recorder) {
	bank, err := pulse.DefaultBank(goldenTs, 1)
	if err != nil {
		b.Fatal(err)
	}
	det, err := core.NewDetector(bank, core.DetectorConfig{})
	if err != nil {
		b.Fatal(err)
	}
	det.SetRecorder(rec)
	taps := goldenSimCIR(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Detect(taps, 1e-4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectNilRecorder(b *testing.B) { benchmarkDetect(b, nil) }

func BenchmarkDetectWithRecorder(b *testing.B) { benchmarkDetect(b, obs.NewRegistry()) }
