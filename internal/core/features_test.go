package core

import (
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

func TestExtractChannelFeaturesLOS(t *testing.T) {
	const noise = 1e-5
	s1 := shapeFor(t, pulse.RegisterS1)
	taps := makeCIR(t, []pulseAt{
		{s1, 50 * ts, 1e-3},             // dominant direct path
		{s1, 55 * ts, 0.2e-3},           // weak reflection
		{s1, 62 * ts, complex(0, 1e-4)}, // weaker, later reflection
	}, noise, 101)
	f, err := ExtractChannelFeatures(taps, ts, noise, 40, 90)
	if err != nil {
		t.Fatal(err)
	}
	if f.LikelyNLOS() {
		t.Fatalf("clear LOS classified as NLOS: %+v", f)
	}
	if f.FirstToStrongestRatio < 0.6 {
		t.Fatalf("LOS ratio %g", f.FirstToStrongestRatio)
	}
	if f.FirstToStrongestDelay > 3e-9 {
		t.Fatalf("LOS first-to-strongest delay %g", f.FirstToStrongestDelay)
	}
	if f.RiseTime <= 0 || f.RMSDelaySpread <= 0 {
		t.Fatalf("degenerate features %+v", f)
	}
}

func TestExtractChannelFeaturesNLOS(t *testing.T) {
	const noise = 1e-5
	s1 := shapeFor(t, pulse.RegisterS1)
	// Attenuated direct path followed by a much stronger reflection 12 ns
	// later — the blocked-LOS situation of Sect. VII.
	taps := makeCIR(t, []pulseAt{
		{s1, 50 * ts, 1.5e-4},
		{s1, 62 * ts, 9e-4},
		{s1, 68 * ts, 4e-4},
	}, noise, 102)
	f, err := ExtractChannelFeatures(taps, ts, noise, 40, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !f.LikelyNLOS() {
		t.Fatalf("obstructed channel not flagged: %+v", f)
	}
	if f.FirstToStrongestRatio > 0.4 {
		t.Fatalf("NLOS ratio %g", f.FirstToStrongestRatio)
	}
	if f.FirstToStrongestDelay < 10e-9 {
		t.Fatalf("NLOS delay %g", f.FirstToStrongestDelay)
	}
}

func TestExtractChannelFeaturesValidation(t *testing.T) {
	taps := make([]complex128, 64)
	if _, err := ExtractChannelFeatures(taps, 0, 1e-5, 0, 64); err == nil {
		t.Error("zero ts accepted")
	}
	if _, err := ExtractChannelFeatures(taps, ts, 0, 0, 64); err == nil {
		t.Error("zero noise accepted")
	}
	if _, err := ExtractChannelFeatures(taps, ts, 1e-5, 10, 12); err == nil {
		t.Error("tiny window accepted")
	}
	if _, err := ExtractChannelFeatures(taps, ts, 1e-5, 0, 64); err == nil {
		t.Error("all-zero window accepted")
	}
	// Window with signal below threshold.
	taps[20] = 1e-6
	if _, err := ExtractChannelFeatures(taps, ts, 1e-5, 0, 64); err == nil {
		t.Error("sub-threshold window accepted")
	}
}
