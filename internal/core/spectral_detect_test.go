package core

// Equivalence and bit-identity tests for the spectral fast path and the
// per-round search machinery it replaced: the interval-based suppression
// must match the seed's per-sample predicate exactly, the fused
// FilterPeak scan must match FilterInto + maxOutsideSuppression exactly,
// the parallel template fan-out must match the serial scan exactly, and
// the spectral detector must match the reference detector within 1e-9 on
// the Sect. VI equal-distance concurrent-responder scenarios.

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/obs"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

// naiveMaxOutsideSuppression is the seed implementation of the suppressed
// peak search: every sample re-checks every extracted position.
func naiveMaxOutsideSuppression(y []complex128, center int, extracted []float64, upsample int) (int, float64) {
	bestIdx, bestSq := -1, 0.0
	for i, v := range y {
		sq := real(v)*real(v) + imag(v)*imag(v)
		if sq <= bestSq {
			continue
		}
		pos := float64(i+center) / float64(upsample)
		suppressed := false
		for _, p := range extracted {
			if math.Abs(pos-p) < suppressionRadius {
				suppressed = true
				break
			}
		}
		if !suppressed {
			bestIdx, bestSq = i, sq
		}
	}
	if bestIdx < 0 {
		return -1, 0
	}
	return bestIdx, math.Sqrt(bestSq)
}

// TestSuppressedIntervalsMatchNaive: the per-round interval precompute
// (O(U·n + k)) must reproduce the per-sample predicate (O(U·n·k))
// bit-identically, including tightly clustered and overlapping guards.
func TestSuppressedIntervalsMatchNaive(t *testing.T) {
	bank, err := pulse.DefaultBank(ts, 2)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(bank, DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1016 * DefaultUpsample
	for seed := uint64(1); seed <= 8; seed++ {
		r := rand.New(rand.NewPCG(seed, 31))
		y := make([]complex128, n)
		for i := range y {
			y[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		// Many extracted paths, including clusters closer than the
		// suppression diameter so their intervals overlap and merge.
		k := 20 + r.IntN(30)
		extracted := make([]float64, k)
		base := r.Float64() * 900
		for i := range extracted {
			if i%3 == 0 {
				base = r.Float64() * 1000
			}
			extracted[i] = base + r.Float64()*0.8
		}
		skipQ := appendSuppressedIntervals(nil, extracted, det.cfg.Upsample)
		for _, center := range []int{0, 61, 122} {
			gotIdx, gotMag := det.maxOutsideSuppression(y, center, skipQ)
			wantIdx, wantMag := naiveMaxOutsideSuppression(y, center, extracted, det.cfg.Upsample)
			if gotIdx != wantIdx || gotMag != wantMag {
				t.Fatalf("seed %d center %d: interval scan (%d, %v) != naive (%d, %v) with %d extracted",
					seed, center, gotIdx, gotMag, wantIdx, wantMag, k)
			}
		}
	}
}

// equivTrain renders a random pulse train into a CIR for the equivalence
// tests and returns the taps.
func equivTrain(bank *pulse.Bank, seed uint64, responders int, noise float64) []complex128 {
	r := rand.New(rand.NewPCG(seed, 41))
	taps := make([]complex128, 1016)
	// Sect. VI case: concurrent responders at (nearly) equal distance —
	// overlapping pulses distinguished only by shape. Their arrival
	// times still spread over the DW1000 delayed-TX quantization step
	// (~8 ns, Sect. III), like the paper's equal-distance experiment.
	pos := 80 + r.Float64()*800
	for i := 0; i < responders; i++ {
		mag := noise * (30 + r.Float64()*300)
		ph := r.Float64() * 2 * math.Pi
		jitter := (r.Float64() - 0.5) * 8
		bank.Shape(i%bank.Len()).RenderInto(taps,
			complex(mag*math.Cos(ph), mag*math.Sin(ph)), pos+jitter, ts)
	}
	sigma := noise / math.Sqrt2
	rr := rand.New(rand.NewPCG(seed, 42))
	for i := range taps {
		taps[i] += complex(rr.NormFloat64()*sigma, rr.NormFloat64()*sigma)
	}
	return taps
}

// TestDetectSpectralMatchesReference: across seeded scenarios of 1–4
// overlapping equal-distance responders (Sect. VI), the spectral fast
// path must agree with the exact reference path on response count,
// template identity, delay and amplitude to within 1e-9 relative. The
// only escape hatch is the hardest case — four pulses inside one
// quantization window — where the joint fit has near-degenerate optima
// and the two paths may legitimately settle into different ones; those
// scenarios must still agree on count, templates, quarter-sample delays,
// and explain the measurement equally well (residual energy within 1%).
func TestDetectSpectralMatchesReference(t *testing.T) {
	bank, err := pulse.DefaultBank(ts, 4)
	if err != nil {
		t.Fatal(err)
	}
	const noise = 1.4e-5
	const tol = 1e-9
	scenarios := 0
	for responders := 1; responders <= 4; responders++ {
		// The paper's N−1-strongest mode: extraction stops after the
		// genuine responses. The unbounded auto-stop mode keeps mining
		// the overlap residual of same-position pulses down to the noise
		// floor, where coarse-search basins are legitimately unstable.
		cfg := DetectorConfig{MaxResponses: responders}
		cfg.Mode = ModeReference
		ref, err := NewDetector(bank, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Mode = ModeSpectral
		fast, err := NewDetector(bank, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for seed := uint64(1); seed <= 12; seed++ {
			taps := equivTrain(bank, seed*4+uint64(responders), responders, noise)
			want, err := ref.Detect(taps, noise)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fast.Detect(taps, noise)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d, %d responders: spectral found %d responses, reference %d",
					seed, responders, len(got), len(want))
			}
			deviates := false
			for i := range want {
				if got[i].TemplateIndex != want[i].TemplateIndex {
					t.Errorf("seed %d, %d responders, response %d: template %d != %d",
						seed, responders, i, got[i].TemplateIndex, want[i].TemplateIndex)
				}
				// Delays compared in sample units: an absolute floor in
				// seconds would hide whole-sample drift.
				dOK := relCloseT(got[i].Delay/ts, want[i].Delay/ts, tol)
				aOK := cmplx.Abs(got[i].Amplitude-want[i].Amplitude) <=
					tol*math.Max(1, cmplx.Abs(want[i].Amplitude))
				if dOK && aOK {
					continue
				}
				// Four pulses inside one quantization window make the
				// joint fit nearly degenerate: the two paths may settle
				// into different but equally valid optima, accepted below
				// by fit quality. Fewer responders must match exactly.
				if responders < 4 {
					t.Errorf("seed %d, %d responders, response %d: (%.17g, %v) != (%.17g, %v)",
						seed, responders, i, got[i].Delay, got[i].Amplitude, want[i].Delay, want[i].Amplitude)
					continue
				}
				deviates = true
				if d := math.Abs(got[i].Delay-want[i].Delay) / ts; d > 0.25 {
					t.Errorf("seed %d, %d responders, response %d: delays %.17g and %.17g differ by %g samples",
						seed, responders, i, got[i].Delay, want[i].Delay, d)
				}
			}
			if deviates {
				// Alternate optima must explain the measurement equally
				// well: residual energies within 1% of each other.
				wantRes := residualEnergy(bank, taps, want)
				gotRes := residualEnergy(bank, taps, got)
				if r := gotRes / wantRes; r > 1.01 || r < 1/1.01 {
					t.Errorf("seed %d, %d responders: fit quality differs, residual energy ratio %g",
						seed, responders, r)
				}
			}
			scenarios++
		}
	}
	if scenarios != 48 {
		t.Fatalf("ran %d scenarios, want 48", scenarios)
	}
}

// residualEnergy returns ‖taps − Σ α̂·s(·−τ̂)‖²: how much of the measured
// CIR a detected response set leaves unexplained.
func residualEnergy(bank *pulse.Bank, taps []complex128, rs []Response) float64 {
	res := make([]complex128, len(taps))
	copy(res, taps)
	for _, r := range rs {
		bank.Shape(r.TemplateIndex).RenderInto(res, -r.Amplitude, r.Delay/ts, ts)
	}
	var e float64
	for _, v := range res {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e
}

// relCloseT mirrors the golden tests' tolerance: relative with an
// absolute floor of tol for values below 1.
func relCloseT(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestFilterPeakMatchesScan: the fused inverse-FFT peak scan must be
// bit-identical to FilterInto followed by the standalone suppressed scan,
// for every template and with many extracted paths.
func TestFilterPeakMatchesScan(t *testing.T) {
	bank, err := pulse.DefaultBank(ts, 4)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(bank, DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	taps := equivTrain(bank, 99, 4, 1.4e-5)
	if err := det.ensureState(len(taps)); err != nil {
		t.Fatal(err)
	}
	up := det.upsample.Execute(det.up, taps)
	if err := det.fbank.Transform(up); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(5, 51))
	extracted := make([]float64, 35)
	for i := range extracted {
		extracted[i] = r.Float64() * 1016
	}
	skipQ := appendSuppressedIntervals(nil, extracted, det.cfg.Upsample)
	n := len(up)
	scratch := det.fbank.NewScratch()
	for tmpl := range det.templates {
		y, err := det.fbank.FilterInto(det.yCur, tmpl)
		if err != nil {
			t.Fatal(err)
		}
		wantIdx, wantMag := det.maxOutsideSuppression(y, det.centers[tmpl], skipQ)
		skip := appendShifted(nil, skipQ, det.centers[tmpl], n)
		gotIdx, gotSq, y3, err := det.fbank.FilterPeak(scratch, tmpl, skip)
		if err != nil {
			t.Fatal(err)
		}
		if gotIdx != wantIdx {
			t.Fatalf("template %d: fused scan index %d, separate scan %d", tmpl, gotIdx, wantIdx)
		}
		if math.Sqrt(gotSq) != wantMag {
			t.Errorf("template %d: fused |y| %v != %v", tmpl, math.Sqrt(gotSq), wantMag)
		}
		if y3[1] != y[gotIdx] {
			t.Errorf("template %d: y3 center %v != output %v", tmpl, y3[1], y[gotIdx])
		}
		if gotIdx > 0 && y3[0] != y[gotIdx-1] {
			t.Errorf("template %d: y3 left %v != output %v", tmpl, y3[0], y[gotIdx-1])
		}
		if gotIdx < n-1 && y3[2] != y[gotIdx+1] {
			t.Errorf("template %d: y3 right %v != output %v", tmpl, y3[2], y[gotIdx+1])
		}
	}
}

// TestDetectWorkersMatchSerial: the parallel template fan-out must give
// exactly the serial result in both modes — the deterministic reduce
// breaks squared-magnitude ties toward the lower template index, like the
// serial ascending scan. Run under -race in CI, this is also the data-race
// check of the shared-state contract.
func TestDetectWorkersMatchSerial(t *testing.T) {
	bank, err := pulse.DefaultBank(ts, 12)
	if err != nil {
		t.Fatal(err)
	}
	const noise = 1.4e-5
	for _, mode := range []DetectorMode{ModeReference, ModeSpectral} {
		serial, err := NewDetector(bank, DetectorConfig{Mode: mode, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := NewDetector(bank, DetectorConfig{Mode: mode, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		for seed := uint64(1); seed <= 6; seed++ {
			taps := equivTrain(bank, seed, 3, noise)
			want, err := serial.Detect(taps, noise)
			if err != nil {
				t.Fatal(err)
			}
			got, err := parallel.Detect(taps, noise)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("mode %d seed %d: %d responses parallel, %d serial", mode, seed, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("mode %d seed %d response %d: parallel %+v != serial %+v",
						mode, seed, i, got[i], want[i])
				}
			}
		}
	}
}

// TestDetectSpectralObsCounters: the acceptance gate of the spectral
// path — dsp.bank_transforms (and dsp.upsample_execs) drop to one per
// Detect, with one analytic shift-subtract per extracted response.
func TestDetectSpectralObsCounters(t *testing.T) {
	bank, err := pulse.DefaultBank(ts, 4)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(bank, DetectorConfig{Mode: ModeSpectral})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	det.SetRecorder(reg)
	const calls = 3
	var responses, rounds int64
	for i := 0; i < calls; i++ {
		taps := equivTrain(bank, uint64(i+1), 3, 1.4e-5)
		rs, err := det.Detect(taps, 1.4e-5)
		if err != nil {
			t.Fatal(err)
		}
		responses += int64(len(rs))
	}
	if responses == 0 {
		t.Fatal("expected detections")
	}
	snap := reg.Snapshot()
	iters, ok := snap.HistogramByName(MetricDetectIterations)
	if !ok {
		t.Fatal("missing iterations histogram")
	}
	rounds = int64(iters.Sum)
	if got := snap.CounterValue(MetricBankTransforms); got != calls {
		t.Errorf("%s = %d, want %d (one per Detect)", MetricBankTransforms, got, calls)
	}
	if got := snap.CounterValue(MetricUpsampleExecs); got != calls {
		t.Errorf("%s = %d, want %d (one per Detect)", MetricUpsampleExecs, got, calls)
	}
	if got := snap.CounterValue(MetricBankFilters); got != rounds*int64(bank.Len()) {
		t.Errorf("%s = %d, want %d (rounds × templates)", MetricBankFilters, got, rounds*int64(bank.Len()))
	}
	if got := snap.CounterValue(MetricBankShiftSubtracts); got != responses {
		t.Errorf("%s = %d, want %d (one per extracted response)", MetricBankShiftSubtracts, got, responses)
	}
}
