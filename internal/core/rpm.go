package core

import (
	"fmt"
	"math"

	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
)

// MaxSlotDelay is δ_max, the widest response-position offset that still
// lands inside the CIR window (Sect. VII): ~1017 ns ≈ 307 m.
const MaxSlotDelay = dw1000.WindowDuration

// SlotPlan is the combined response-position-modulation × pulse-shaping
// scheme of Sect. VIII: the CIR window is divided into NumSlots slots of
// SlotWidth seconds, and within a slot up to NumShapes responders are told
// apart by their pulse shape. A responder's ID determines both:
//
//	slot  = ID % NumSlots
//	shape = ID / NumSlots
//
// (The paper prints the shape index as ⌊ID/N_PS⌋; dividing by N_PS leaves
// shape indexes out of range whenever N_PS ≠ N_RPM, so this implementation
// divides by the slot count, which is the unique decomposition the
// figure's example realizes.)
type SlotPlan struct {
	// NumSlots is N_RPM, the number of response-position slots.
	NumSlots int
	// NumShapes is N_PS, the number of pulse shapes per slot.
	NumShapes int
	// SlotWidth is δ, the extra response delay separating adjacent slots,
	// seconds.
	SlotWidth float64
}

// NewSlotPlan builds the paper's plan for a maximum communication range
// maxRange (meters) and numShapes pulse shapes: N_RPM = ⌊δ_max·c / r_max⌋
// slots separated by δ = δ_max / N_RPM (Sect. VIII).
//
// Note the coverage caveat the paper inherits: a response appears in the
// CIR delayed by *twice* the distance difference to the anchor (Eq. 4), so
// slot boundaries are guaranteed collision-free only when nodes stay
// within half the nominal range of each other. Use NewSafeSlotPlan for a
// plan with that factor built in.
func NewSlotPlan(maxRange float64, numShapes int) (SlotPlan, error) {
	return newSlotPlan(maxRange, numShapes, 1)
}

// NewSafeSlotPlan sizes slots for the full round-trip spread 2·r_max/c, so
// responses from nodes anywhere within maxRange of the anchor can never
// leak into the next slot.
func NewSafeSlotPlan(maxRange float64, numShapes int) (SlotPlan, error) {
	return newSlotPlan(maxRange, numShapes, 2)
}

func newSlotPlan(maxRange float64, numShapes, spreadFactor int) (SlotPlan, error) {
	if maxRange <= 0 {
		return SlotPlan{}, fmt.Errorf("core: max range %g must be positive", maxRange)
	}
	if numShapes < 1 {
		return SlotPlan{}, fmt.Errorf("core: need at least one pulse shape, got %d", numShapes)
	}
	span := MaxSlotDelay * channel.SpeedOfLight // ≈ 307 m
	slots := int(span / (maxRange * float64(spreadFactor)))
	if slots < 1 {
		return SlotPlan{}, fmt.Errorf("core: max range %g m exceeds the %g m CIR span", maxRange, span)
	}
	return SlotPlan{
		NumSlots:  slots,
		NumShapes: numShapes,
		SlotWidth: MaxSlotDelay / float64(slots),
	}, nil
}

// SingleSlot returns the degenerate plan of the plain concurrent-ranging
// scheme (no response position modulation): one slot covering the whole
// CIR, responders told apart by pulse shape alone.
func SingleSlot(numShapes int) SlotPlan {
	return SlotPlan{NumSlots: 1, NumShapes: numShapes, SlotWidth: MaxSlotDelay}
}

// Capacity is N_max = N_RPM · N_PS, the number of concurrently supported
// responders (Sect. VIII).
func (p SlotPlan) Capacity() int { return p.NumSlots * p.NumShapes }

// Validate checks the plan's parameters.
func (p SlotPlan) Validate() error {
	if p.NumSlots < 1 || p.NumShapes < 1 {
		return fmt.Errorf("core: slot plan %dx%d must have positive dimensions", p.NumSlots, p.NumShapes)
	}
	if p.SlotWidth <= 0 {
		return fmt.Errorf("core: slot width %g must be positive", p.SlotWidth)
	}
	if float64(p.NumSlots)*p.SlotWidth > MaxSlotDelay*(1+1e-9) {
		return fmt.Errorf("core: %d slots of %g s exceed the CIR window", p.NumSlots, p.SlotWidth)
	}
	return nil
}

// Assign maps a responder ID to its slot and pulse-shape index.
func (p SlotPlan) Assign(id int) (slot, shape int, err error) {
	if err := p.Validate(); err != nil {
		return 0, 0, err
	}
	if id < 0 || id >= p.Capacity() {
		return 0, 0, fmt.Errorf("core: responder ID %d outside capacity %d", id, p.Capacity())
	}
	return id % p.NumSlots, id / p.NumSlots, nil
}

// IDFor is the inverse of Assign.
func (p SlotPlan) IDFor(slot, shape int) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if slot < 0 || slot >= p.NumSlots {
		return 0, fmt.Errorf("core: slot %d outside [0, %d)", slot, p.NumSlots)
	}
	if shape < 0 || shape >= p.NumShapes {
		return 0, fmt.Errorf("core: shape %d outside [0, %d)", shape, p.NumShapes)
	}
	return shape*p.NumSlots + slot, nil
}

// ExtraDelay is δ_i, the additional response delay of the given slot:
// Δ'_RESP = Δ_RESP + slot·δ (Sect. VII).
func (p SlotPlan) ExtraDelay(slot int) float64 {
	return float64(slot) * p.SlotWidth
}

// SlotOf classifies a response's CIR position (seconds relative to the
// anchor response, with the anchor's own slot offset added back) into a
// slot index, clamped to the valid range.
//
// Classification rounds to the nearest slot boundary rather than
// truncating: a responder in slot k that is *closer* to the initiator
// than the anchor arrives slightly before k·δ (its intra-slot offset
// 2·(d−d_anchor)/c is negative), so the decision regions must be centered
// on the nominal slot positions. Classification is correct while
// |d − d_anchor| < c·δ/4.
func (p SlotPlan) SlotOf(relativeDelay float64) int {
	if p.NumSlots <= 1 {
		return 0
	}
	slot := int(math.Round(relativeDelay / p.SlotWidth))
	if slot < 0 {
		return 0
	}
	if slot >= p.NumSlots {
		return p.NumSlots - 1
	}
	return slot
}
