package core

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
)

// Measurement is one resolved per-responder ranging result.
type Measurement struct {
	// ID is the decoded responder ID, or -1 when the scheme runs without
	// identification (single slot, single shape — anonymous ranging).
	ID int
	// Slot is the response-position slot the response was classified into.
	Slot int
	// Shape is the identified pulse-shape (template) index.
	Shape int
	// Distance is the estimated initiator–responder distance in meters.
	Distance float64
	// Delay is the raw CIR peak delay in seconds relative to tap 0.
	Delay float64
	// Amplitude is the estimated complex response amplitude.
	Amplitude complex128
	// Anchor marks the response the SS-TWR distance was anchored to.
	Anchor bool
}

// Resolver turns detected CIR responses into per-responder distance
// measurements by combining the slot plan (Sect. VII/VIII), the pulse
// shape identification (Sect. V), and Eq. 4.
type Resolver struct {
	// Plan is the RPM × pulse-shaping layout in force.
	Plan SlotPlan
	// AnchorTolerance is how far (seconds) the anchor's response peak may
	// sit from the receiver's reference index. Zero selects one slot
	// width or 40 ns, whichever is smaller.
	AnchorTolerance float64
	// DirectPathMarginDB controls the per-responder selection when
	// several responses map to the same ID: the strongest wins unless an
	// earlier response is within this margin of it (then the earlier one
	// is taken as the direct path and the later as a reflection). Zero
	// selects DefaultDirectPathMarginDB. In line-of-sight conditions a
	// responder's direct path is both earliest and strongest, so the
	// margin only matters for attenuated-LOS cases.
	DirectPathMarginDB float64
}

// DefaultDirectPathMarginDB is the default same-ID selection margin.
const DefaultDirectPathMarginDB = 2.0

// anchorReferenceDelay is the CIR position the receiver placed the locked
// responder's first path at.
const anchorReferenceDelay = dw1000.ReferenceIndex * dw1000.SampleInterval

// Resolve maps responses to responders. anchorID is the responder whose
// payload was decoded (the receiver's lock source), and dTWR its Eq. 2
// distance. Responses mapping to the same responder ID keep only the
// earliest peak (a responder's specular reflections arrive after its
// direct path), which is how the combined scheme rejects strong multipath
// (Sect. VII).
func (r *Resolver) Resolve(responses []Response, anchorID int, dTWR float64) ([]Measurement, error) {
	if err := r.Plan.Validate(); err != nil {
		return nil, err
	}
	if len(responses) == 0 {
		return nil, fmt.Errorf("core: no responses to resolve")
	}
	anchorSlot, anchorShape, err := r.Plan.Assign(anchorID)
	if err != nil {
		return nil, fmt.Errorf("anchor: %w", err)
	}
	anchorIdx, err := r.findAnchor(responses, anchorShape)
	if err != nil {
		return nil, err
	}
	anchor := responses[anchorIdx]
	// The anchor's intra-slot delay: its raw delay minus its slot offset.
	anchorEff := anchor.Delay - r.Plan.ExtraDelay(anchorSlot)

	anonymous := r.Plan.Capacity() == 1
	out := make([]Measurement, 0, len(responses))
	byID := make(map[int]int, len(responses)) // ID -> index in out
	for i, resp := range responses {
		rel := resp.Delay - anchor.Delay + r.Plan.ExtraDelay(anchorSlot)
		slot := r.Plan.SlotOf(rel)
		eff := resp.Delay - r.Plan.ExtraDelay(slot)
		m := Measurement{
			ID:        -1,
			Slot:      slot,
			Shape:     resp.TemplateIndex,
			Distance:  ConcurrentDistance(dTWR, eff, anchorEff),
			Delay:     resp.Delay,
			Amplitude: resp.Amplitude,
			Anchor:    i == anchorIdx,
		}
		if anonymous {
			out = append(out, m)
			continue
		}
		id, err := r.Plan.IDFor(slot, resp.TemplateIndex)
		if err != nil {
			return nil, fmt.Errorf("response %d: %w", i, err)
		}
		m.ID = id
		if prev, seen := byID[id]; seen {
			out[prev] = r.pickDirectPath(out[prev], m)
			continue
		}
		byID[id] = len(out)
		out = append(out, m)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Delay < out[j].Delay })
	return out, nil
}

// pickDirectPath chooses between two responses mapped to the same
// responder ID: the strongest wins, unless an earlier response is within
// the margin (then it is taken as the direct path and the stronger, later
// one as a specular reflection of it). Subtraction artifacts and diffuse
// multipath misclassified into this ID sit well below the real response
// and never shadow it under this rule.
func (r *Resolver) pickDirectPath(a, b Measurement) Measurement {
	margin := r.DirectPathMarginDB
	if margin == 0 {
		margin = DefaultDirectPathMarginDB
	}
	first, second := a, b
	if b.Delay < a.Delay {
		first, second = b, a
	}
	floor := math.Max(cmplx.Abs(first.Amplitude), cmplx.Abs(second.Amplitude)) *
		math.Pow(10, -margin/20)
	if cmplx.Abs(first.Amplitude) >= floor {
		return first
	}
	return second
}

// findAnchor locates the response belonging to the decoded responder: the
// peak nearest the receiver's reference position, preferring (but not
// requiring) the anchor's assigned pulse shape.
func (r *Resolver) findAnchor(responses []Response, anchorShape int) (int, error) {
	tol := r.AnchorTolerance
	if tol == 0 {
		tol = math.Min(r.Plan.SlotWidth, 40e-9)
	}
	best, bestShaped := -1, -1
	var bestDist, bestShapedDist float64
	for i, resp := range responses {
		d := math.Abs(resp.Delay - anchorReferenceDelay)
		if d > tol {
			continue
		}
		if best < 0 || d < bestDist {
			best, bestDist = i, d
		}
		if resp.TemplateIndex == anchorShape && (bestShaped < 0 || d < bestShapedDist) {
			bestShaped, bestShapedDist = i, d
		}
	}
	if bestShaped >= 0 {
		return bestShaped, nil
	}
	if best >= 0 {
		return best, nil
	}
	return 0, fmt.Errorf("core: no response within %g s of the reference position", tol)
}

// StrongestMeasurement returns the measurement with the largest response
// amplitude (useful for diagnostics), or false when empty.
func StrongestMeasurement(ms []Measurement) (Measurement, bool) {
	if len(ms) == 0 {
		return Measurement{}, false
	}
	best := 0
	for i := 1; i < len(ms); i++ {
		if cmplx.Abs(ms[i].Amplitude) > cmplx.Abs(ms[best].Amplitude) {
			best = i
		}
	}
	return ms[best], true
}
