package core

import (
	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
)

// TWRSpans computes the single-sided two-way ranging distance of Eq. 2
// from the two locally measured time spans:
//
//	d_TWR = ((t_rx,init − t_tx,init) − (t_tx,1 − t_rx,1)) / 2 · c
//
// where roundTrip is the initiator's t_rx,init − t_tx,init and turnaround
// is the responder's t_tx,1 − t_rx,1, both in seconds of their own clocks.
func TWRSpans(roundTrip, turnaround float64) float64 {
	return (roundTrip - turnaround) / 2 * channel.SpeedOfLight
}

// TWRTimestamps computes Eq. 2 from the four raw device timestamps as they
// are exchanged in the RESP payload: the initiator's INIT-TX and RESP-RX
// stamps (its clock) and the responder's INIT-RX and RESP-TX stamps (its
// clock). Wrap-aware 40-bit arithmetic is used on both spans.
func TWRTimestamps(txInit, rxResp, rxInit, txResp dw1000.DeviceTime) float64 {
	return TWRSpans(rxResp.Sub(txInit), txResp.Sub(rxInit))
}

// ConcurrentDistance computes Eq. 4: the distance to responder i from the
// anchor distance d_TWR (responder 1, decoded via SS-TWR) and the CIR path
// delays of the two responses. The delay difference appears twice in the
// round trip (both the INIT and the RESP legs are longer), hence the
// halving.
func ConcurrentDistance(dTWR, tauI, tau1 float64) float64 {
	return dTWR + channel.SpeedOfLight*(tauI-tau1)/2
}

// TWRSpansDriftCompensated applies the standard crystal-offset correction
// before Eq. 2: the responder's locally measured turnaround is rescaled
// into initiator clock units using the estimated clock-rate ratio
// (responder rate / initiator rate), which UWB receivers derive from the
// carrier frequency offset. This removes the classic SS-TWR bias of
// c·Δ_RESP·e/2 for a relative frequency error e.
func TWRSpansDriftCompensated(roundTrip, turnaround, clockRatio float64) float64 {
	if clockRatio <= 0 {
		clockRatio = 1
	}
	return TWRSpans(roundTrip, turnaround/clockRatio)
}

// TWRTimestampsDriftCompensated is TWRTimestamps with the clock-ratio
// correction applied to the responder's turnaround span.
func TWRTimestampsDriftCompensated(txInit, rxResp, rxInit, txResp dw1000.DeviceTime, clockRatio float64) float64 {
	return TWRSpansDriftCompensated(rxResp.Sub(txInit), txResp.Sub(rxInit), clockRatio)
}
