package core

import (
	"fmt"

	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

// ThresholdDetector is the baseline the paper compares against in
// Sect. VI (Falsi et al.): scan the CIR magnitude, and whenever it crosses
// a threshold take the maximum of the following N_p samples (one pulse
// duration) as a detected peak, then continue after that window.
type ThresholdDetector struct {
	// Shape is the pulse whose duration defines the N_p window.
	Shape pulse.Shape
	// SampleInterval is the CIR tap spacing in seconds.
	SampleInterval float64
	// ThresholdFactor is the crossing threshold as a multiple of the CIR
	// noise RMS. Zero selects DefaultThresholdFactor.
	ThresholdFactor float64
	// MaxResponses bounds the number of reported peaks (N−1); zero means
	// scan the whole CIR.
	MaxResponses int
	// WindowDuration is the N_p peak-search window in seconds. Zero
	// selects half the truncated pulse support, which brackets the main
	// lobe the way Falsi et al. size their window.
	WindowDuration float64
}

// Detect scans the CIR and returns the detected peaks in ascending delay
// order. Unlike the search-and-subtract detector it cannot resolve
// responses closer than one pulse duration: they fall into a single N_p
// window and merge into one peak — the failure mode the paper quantifies.
func (t *ThresholdDetector) Detect(taps []complex128, noiseRMS float64) ([]Response, error) {
	if len(taps) == 0 {
		return nil, fmt.Errorf("core: empty CIR")
	}
	if t.SampleInterval <= 0 {
		return nil, fmt.Errorf("core: threshold detector needs a positive sample interval")
	}
	if noiseRMS <= 0 {
		return nil, fmt.Errorf("core: noise RMS %g must be positive", noiseRMS)
	}
	factor := t.ThresholdFactor
	if factor == 0 {
		factor = DefaultThresholdFactor
	}
	if factor < 0 {
		return nil, fmt.Errorf("core: negative threshold factor %g", factor)
	}
	window := t.WindowDuration
	if window == 0 {
		window = t.Shape.Duration() / 2
	}
	np := int(window/t.SampleInterval + 0.5)
	if np < 1 {
		np = 1
	}
	th := factor * noiseRMS
	mag := dsp.Abs(taps)
	var responses []Response
	for i := 0; i < len(mag); i++ {
		if mag[i] < th {
			continue
		}
		end := min(i+np, len(mag))
		idx, _ := dsp.MaxWithin(mag, i, end)
		responses = append(responses, Response{
			Delay:         float64(idx) * t.SampleInterval,
			Amplitude:     taps[idx],
			TemplateIndex: 0,
		})
		if t.MaxResponses > 0 && len(responses) >= t.MaxResponses {
			break
		}
		i = end - 1 // resume scanning after the pulse window
	}
	return responses, nil
}
