package core

import (
	"math"
	"math/cmplx"
	mrand "math/rand"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

// TestDetectRandomTrainsProperty: any train of well-separated, sufficiently
// strong pulses is fully recovered — positions, amplitudes, and count.
func TestDetectRandomTrainsProperty(t *testing.T) {
	bank, err := pulse.DefaultBank(ts, 1)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(bank, DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	shape := bank.Shape(0)
	const noise = 1.4e-5
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 21))
		n := 1 + r.IntN(6)
		type truth struct {
			delay float64
			amp   complex128
		}
		var pulses []truth
		pos := 30 + r.Float64()*20
		for i := 0; i < n; i++ {
			mag := noise * (20 + r.Float64()*300) // 26–47 dB above noise
			ph := r.Float64() * 2 * math.Pi
			pulses = append(pulses, truth{
				delay: pos * ts,
				amp:   complex(mag*math.Cos(ph), mag*math.Sin(ph)),
			})
			pos += 12 + r.Float64()*80 // ≥ one pulse duration apart
			if pos > 900 {
				break
			}
		}
		taps := make([]complex128, 1016)
		for _, p := range pulses {
			shape.RenderInto(taps, p.amp, p.delay/ts, ts)
		}
		rr := rand.New(rand.NewPCG(seed, 22))
		sigma := noise / math.Sqrt2
		for i := range taps {
			taps[i] += complex(rr.NormFloat64()*sigma, rr.NormFloat64()*sigma)
		}
		got, err := det.Detect(taps, noise)
		if err != nil || len(got) != len(pulses) {
			return false
		}
		for i, p := range pulses {
			if math.Abs(got[i].Delay-p.delay) > ts/2 {
				return false
			}
			if cmplx.Abs(got[i].Amplitude-p.amp) > 0.2*cmplx.Abs(p.amp)+3*noise {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: mrand.New(mrand.NewSource(70))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDetectLinearityProperty: scaling the CIR scales the detected
// amplitudes and leaves delays unchanged (amplitude independence,
// challenge IV).
func TestDetectLinearityProperty(t *testing.T) {
	bank, _ := pulse.DefaultBank(ts, 1)
	det, _ := NewDetector(bank, DetectorConfig{DisableThreshold: true, MaxResponses: 2})
	shape := bank.Shape(0)
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 23))
		taps := make([]complex128, 1016)
		shape.RenderInto(taps, complex(1e-3, 2e-4), 100.3, ts)
		shape.RenderInto(taps, complex(-4e-4, 3e-4), 300.8, ts)
		sigma := 1e-6 / math.Sqrt2
		for i := range taps {
			taps[i] += complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
		}
		scale := complex(0.1+r.Float64()*10, 0)
		scaled := make([]complex128, len(taps))
		for i := range taps {
			scaled[i] = taps[i] * scale
		}
		a, err1 := det.Detect(taps, 0)
		b, err2 := det.Detect(scaled, 0)
		if err1 != nil || err2 != nil || len(a) != len(b) || len(a) != 2 {
			return false
		}
		for i := range a {
			if math.Abs(a[i].Delay-b[i].Delay) > ts/8 {
				return false
			}
			want := a[i].Amplitude * scale
			if cmplx.Abs(b[i].Amplitude-want) > 0.05*cmplx.Abs(want) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20, Rand: mrand.New(mrand.NewSource(71))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSlotPlanAssignBijectiveProperty: Assign is a bijection from IDs to
// (slot, shape) pairs for arbitrary valid plans.
func TestSlotPlanAssignBijectiveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 29))
		plan := SlotPlan{
			NumSlots:  1 + r.IntN(15),
			NumShapes: 1 + r.IntN(10),
		}
		plan.SlotWidth = MaxSlotDelay / float64(plan.NumSlots)
		if plan.Validate() != nil {
			return false
		}
		seen := make(map[[2]int]bool, plan.Capacity())
		for id := 0; id < plan.Capacity(); id++ {
			slot, shape, err := plan.Assign(id)
			if err != nil {
				return false
			}
			key := [2]int{slot, shape}
			if seen[key] {
				return false
			}
			seen[key] = true
			back, err := plan.IDFor(slot, shape)
			if err != nil || back != id {
				return false
			}
		}
		return len(seen) == plan.Capacity()
	}
	cfg := &quick.Config{MaxCount: 50, Rand: mrand.New(mrand.NewSource(72))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSlotOfRoundTripProperty: a response placed at slot k with an
// intra-slot offset below the decision margin classifies back to k.
func TestSlotOfRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 31))
		plan := SlotPlan{NumSlots: 2 + r.IntN(10), NumShapes: 1}
		plan.SlotWidth = MaxSlotDelay / float64(plan.NumSlots)
		k := r.IntN(plan.NumSlots)
		offset := (r.Float64() - 0.5) * 0.9 * plan.SlotWidth // within ±0.45 δ
		rel := plan.ExtraDelay(k) + offset
		got := plan.SlotOf(rel)
		// Clamping at the edges is acceptable; interior slots must match.
		if k > 0 && k < plan.NumSlots-1 {
			return got == k
		}
		return got >= 0 && got < plan.NumSlots
	}
	cfg := &quick.Config{MaxCount: 100, Rand: mrand.New(mrand.NewSource(73))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTWRReciprocityProperty: Eq. 2 is invariant to both clocks' phase
// and, to first order, reports the true distance for ideal clocks.
func TestTWRReciprocityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 37))
		d := 0.5 + r.Float64()*50
		tof := d / 299792458.0
		turnaround := 100e-6 + r.Float64()*500e-6
		t0 := r.Float64()
		roundTrip := 2*tof + turnaround
		got := TWRSpans(roundTrip, turnaround)
		_ = t0
		return math.Abs(got-d) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 200, Rand: mrand.New(mrand.NewSource(74))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
