package core

import (
	"fmt"
	"math"
	"math/cmplx"
)

// ChannelFeatures summarizes the shape of one response's neighborhood in
// the CIR — the quantities the UWB literature uses to tell line-of-sight
// from non-line-of-sight conditions on a single link. The paper defers
// NLOS handling to future work (Sect. IX).
//
// Caveat discovered while building this library: on a *concurrent* CIR
// the same signature (a weak early arrival followed by a stronger one) is
// routinely produced by other responders' multipath and diffuse tails, so
// per-responder NLOS flagging from one aggregated CIR is unreliable —
// applications should instead use redundancy (LocateRobust) or per-link
// probing. These features remain dependable for isolated receptions.
type ChannelFeatures struct {
	// FirstPathIndex is the window-relative index of the first tap above
	// the detection threshold.
	FirstPathIndex int
	// StrongestIndex is the window-relative index of the strongest tap.
	StrongestIndex int
	// FirstToStrongestRatio is |first path| / |strongest path| (1 when
	// the direct path dominates; small under attenuated LOS).
	FirstToStrongestRatio float64
	// FirstToStrongestDelay is the time from the first path to the
	// strongest path in seconds (≈0 under LOS).
	FirstToStrongestDelay float64
	// RMSDelaySpread is the energy-weighted RMS spread of the window in
	// seconds (large in reflection-dominated channels).
	RMSDelaySpread float64
	// RiseTime is the 10%→90% leading-edge rise time of the strongest
	// path in seconds.
	RiseTime float64
}

// ExtractChannelFeatures computes the features over taps[start:end]
// (clamped), using threshold = factor·noiseRMS for the first-path search.
func ExtractChannelFeatures(taps []complex128, ts, noiseRMS float64, start, end int) (ChannelFeatures, error) {
	if ts <= 0 {
		return ChannelFeatures{}, fmt.Errorf("core: sample interval %g must be positive", ts)
	}
	if noiseRMS <= 0 {
		return ChannelFeatures{}, fmt.Errorf("core: noise RMS %g must be positive", noiseRMS)
	}
	start = max(start, 0)
	end = min(end, len(taps))
	if end-start < 4 {
		return ChannelFeatures{}, fmt.Errorf("core: feature window [%d, %d) too short", start, end)
	}
	window := taps[start:end]
	mag := make([]float64, len(window))
	var strongest float64
	strongestIdx := 0
	for i, t := range window {
		mag[i] = cmplx.Abs(t)
		if mag[i] > strongest {
			strongest, strongestIdx = mag[i], i
		}
	}
	if strongest <= 0 {
		return ChannelFeatures{}, fmt.Errorf("core: empty feature window")
	}
	threshold := DefaultThresholdFactor * noiseRMS
	firstIdx := -1
	for i, v := range mag {
		if v >= threshold {
			firstIdx = i
			break
		}
	}
	if firstIdx < 0 {
		return ChannelFeatures{}, fmt.Errorf("core: no path above the noise threshold in the window")
	}
	// The crossing lands on the leading flank of the first pulse; walk up
	// to its local peak so the features describe the first *path*, not a
	// rising-edge sample.
	for firstIdx+1 < len(mag) && mag[firstIdx+1] > mag[firstIdx] {
		firstIdx++
	}
	f := ChannelFeatures{
		FirstPathIndex:        firstIdx,
		StrongestIndex:        strongestIdx,
		FirstToStrongestRatio: mag[firstIdx] / strongest,
		FirstToStrongestDelay: float64(strongestIdx-firstIdx) * ts,
	}
	// Energy-weighted RMS delay spread over the window.
	var power, mean float64
	for i, v := range mag {
		p := v * v
		power += p
		mean += p * float64(i)
	}
	mean /= power
	var spread float64
	for i, v := range mag {
		d := float64(i) - mean
		spread += v * v * d * d
	}
	f.RMSDelaySpread = math.Sqrt(spread/power) * ts
	// 10%→90% rise time of the strongest path's leading edge.
	lo, hi := -1, -1
	for i := strongestIdx; i >= 0; i-- {
		if hi < 0 && mag[i] <= 0.9*strongest {
			hi = i
		}
		if mag[i] <= 0.1*strongest {
			lo = i
			break
		}
	}
	if lo >= 0 && hi >= lo {
		f.RiseTime = float64(hi-lo+1) * ts
	}
	return f, nil
}

// NLOS decision thresholds, calibrated on the simulated environments: an
// unobstructed direct path is both the first and (nearly) the strongest
// arrival in its window, while an obstructed one is clearly out-powered
// by a later reflection.
const (
	// nlosRatioThreshold flags windows whose first path is well below the
	// strongest (attenuated direct path).
	nlosRatioThreshold = 0.55
	// nlosDelayThreshold requires the stronger arrival to trail by more
	// than a couple of accumulator samples, so constructive multipath
	// riding directly on the LOS pulse does not trigger the flag.
	nlosDelayThreshold = 2e-9
)

// LikelyNLOS reports whether the features indicate an obstructed direct
// path: the first arrival is much weaker than a clearly later one.
func (f ChannelFeatures) LikelyNLOS() bool {
	return f.FirstToStrongestRatio < nlosRatioThreshold &&
		f.FirstToStrongestDelay > nlosDelayThreshold
}
