package core

import (
	"math"
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

func closeTo(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestThresholdDetectorSeparatedResponses(t *testing.T) {
	const noise = 1e-5
	s1 := shapeFor(t, pulse.RegisterS1)
	taps := makeCIR(t, []pulseAt{
		{s1, 30 * ts, 8e-4},
		{s1, 200 * ts, 5e-4},
	}, noise, 21)
	td := &ThresholdDetector{Shape: s1, SampleInterval: ts}
	got, err := td.Detect(taps, noise)
	if err != nil {
		t.Fatal(err)
	}
	// The scan re-arms on pulse tails (the baseline's known sloppiness),
	// so assert that both true peaks are among the detections rather
	// than an exact count.
	for _, want := range []float64{30 * ts, 200 * ts} {
		found := false
		for _, r := range got {
			if closeTo(r.Delay, want, ts) {
				found = true
			}
		}
		if !found {
			t.Fatalf("peak at %g samples not detected (got %d detections)", want/ts, len(got))
		}
	}
}

func TestThresholdDetectorMergesOverlappingResponses(t *testing.T) {
	// Sect. VI: two responses inside one pulse window fall into a single
	// N_p window and merge — the baseline's failure mode.
	const noise = 1e-5
	s1 := shapeFor(t, pulse.RegisterS1)
	taps := makeCIR(t, []pulseAt{
		{s1, 60 * ts, 8e-4},
		{s1, 61 * ts, 6e-4},
	}, noise, 22)
	td := &ThresholdDetector{Shape: s1, SampleInterval: ts, MaxResponses: 2}
	got, err := td.Detect(taps, noise)
	if err != nil {
		t.Fatal(err)
	}
	// The two pulses are one sample apart: they merge inside a single N_p
	// window, so the second reported "peak" is a tail sample, not the
	// second response (which sits within one sample of the first).
	if len(got) == 2 && got[1].Delay-got[0].Delay < 2*ts {
		t.Fatalf("unexpectedly resolved %g-sample separation", (got[1].Delay-got[0].Delay)/ts)
	}
}

func TestThresholdDetectorValidation(t *testing.T) {
	s1 := shapeFor(t, pulse.RegisterS1)
	td := &ThresholdDetector{Shape: s1, SampleInterval: ts}
	if _, err := td.Detect(nil, 1e-5); err == nil {
		t.Error("empty CIR accepted")
	}
	if _, err := td.Detect(make([]complex128, 8), 0); err == nil {
		t.Error("zero noise accepted")
	}
	bad := &ThresholdDetector{Shape: s1}
	if _, err := bad.Detect(make([]complex128, 8), 1e-5); err == nil {
		t.Error("zero sample interval accepted")
	}
	neg := &ThresholdDetector{Shape: s1, SampleInterval: ts, ThresholdFactor: -1}
	if _, err := neg.Detect(make([]complex128, 8), 1e-5); err == nil {
		t.Error("negative factor accepted")
	}
}

func TestThresholdDetectorMaxResponses(t *testing.T) {
	const noise = 1e-5
	s1 := shapeFor(t, pulse.RegisterS1)
	taps := makeCIR(t, []pulseAt{
		{s1, 30 * ts, 8e-4}, {s1, 100 * ts, 8e-4}, {s1, 200 * ts, 8e-4},
	}, noise, 23)
	td := &ThresholdDetector{Shape: s1, SampleInterval: ts, MaxResponses: 2}
	got, err := td.Detect(taps, noise)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("found %d, want capped 2", len(got))
	}
}

func TestTWRSpans(t *testing.T) {
	// A 10 m target: round trip = 2·τ + turnaround.
	tof := 10 / channel.SpeedOfLight
	turnaround := 290e-6
	d := TWRSpans(2*tof+turnaround, turnaround)
	if !closeTo(d, 10, 1e-9) {
		t.Fatalf("distance %g, want 10", d)
	}
}

func TestTWRTimestamps(t *testing.T) {
	// Build the four timestamps with two different clock phases; phases
	// cancel inside each span.
	tof := 7.5 / channel.SpeedOfLight
	turnaround := 290e-6
	initClock := dw1000.Clock{Phase: 1.234}
	respClock := dw1000.Clock{Phase: 9.876}
	t0 := 0.5 // sim time of INIT TX
	txInit := initClock.Timestamp(t0)
	rxInit := respClock.Timestamp(t0 + tof)
	txResp := respClock.Timestamp(t0 + tof + turnaround)
	rxResp := initClock.Timestamp(t0 + 2*tof + turnaround)
	d := TWRTimestamps(txInit, rxResp, rxInit, txResp)
	// Quantization to 15.65 ps limits accuracy to ~5 mm per stamp.
	if !closeTo(d, 7.5, 0.01) {
		t.Fatalf("distance %g, want 7.5 ± 1 cm", d)
	}
}

func TestTWRClockOffsetInducesKnownBias(t *testing.T) {
	// A +2 ppm responder clock stretches its measured turnaround,
	// shortening the estimate by ~c·Δ_RESP·offset/2 — the classic SS-TWR
	// drift error.
	tof := 5 / channel.SpeedOfLight
	turnaround := 290e-6
	respClock := dw1000.Clock{OffsetPPM: 2}
	var initClock dw1000.Clock
	t0 := 0.25
	d := TWRTimestamps(
		initClock.Timestamp(t0),
		initClock.Timestamp(t0+2*tof+turnaround),
		respClock.Timestamp(t0+tof),
		respClock.Timestamp(t0+tof+turnaround),
	)
	wantBias := -channel.SpeedOfLight * turnaround * 2e-6 / 2
	if !closeTo(d-5, wantBias, 0.01) {
		t.Fatalf("bias %g, want %g", d-5, wantBias)
	}
}

func TestConcurrentDistanceEq4(t *testing.T) {
	// Fig. 3/Sect. III example: d_TWR = 3 m, responder 2 at 6 m produces
	// Δτ = 2·(τ2−τ1).
	tau1 := 100e-9
	tau2 := tau1 + 2*(6.0-3.0)/channel.SpeedOfLight
	if got := ConcurrentDistance(3, tau2, tau1); !closeTo(got, 6, 1e-9) {
		t.Fatalf("d2 = %g, want 6", got)
	}
	// Same delay means same distance.
	if got := ConcurrentDistance(3, tau1, tau1); !closeTo(got, 3, 1e-12) {
		t.Fatalf("anchor distance %g", got)
	}
}

func TestNewSlotPlanPaperNumbers(t *testing.T) {
	// Sect. VIII: r_max = 75 m → N_RPM ≈ 4; with N_PS = 3 → N_max = 12.
	p, err := NewSlotPlan(75, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSlots != 4 {
		t.Fatalf("N_RPM = %d, want 4", p.NumSlots)
	}
	if p.Capacity() != 12 {
		t.Fatalf("N_max = %d, want 12", p.Capacity())
	}
	// r_max = 20 m with the full bank of ~100 shapes (108 usable register
	// values) → more than 1500 supported responders.
	p2, err := NewSlotPlan(20, pulse.NumShapes)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Capacity() <= 1500 {
		t.Fatalf("capacity %d, want > 1500", p2.Capacity())
	}
}

func TestNewSafeSlotPlanHalvesSlots(t *testing.T) {
	p, _ := NewSlotPlan(75, 3)
	s, err := NewSafeSlotPlan(75, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSlots != p.NumSlots/2 {
		t.Fatalf("safe slots %d, paper slots %d", s.NumSlots, p.NumSlots)
	}
}

func TestSlotPlanValidation(t *testing.T) {
	if _, err := NewSlotPlan(-1, 3); err == nil {
		t.Error("negative range accepted")
	}
	if _, err := NewSlotPlan(75, 0); err == nil {
		t.Error("zero shapes accepted")
	}
	if _, err := NewSlotPlan(1e6, 3); err == nil {
		t.Error("range beyond CIR span accepted")
	}
	bad := SlotPlan{NumSlots: 4, NumShapes: 3, SlotWidth: MaxSlotDelay}
	if err := bad.Validate(); err == nil {
		t.Error("overfull plan accepted")
	}
}

func TestSlotPlanAssignRoundTrip(t *testing.T) {
	p, _ := NewSlotPlan(75, 3)
	seen := make(map[[2]int]bool)
	for id := 0; id < p.Capacity(); id++ {
		slot, shape, err := p.Assign(id)
		if err != nil {
			t.Fatal(err)
		}
		if slot < 0 || slot >= p.NumSlots || shape < 0 || shape >= p.NumShapes {
			t.Fatalf("id %d: slot %d shape %d out of range", id, slot, shape)
		}
		key := [2]int{slot, shape}
		if seen[key] {
			t.Fatalf("id %d: duplicate assignment %v", id, key)
		}
		seen[key] = true
		back, err := p.IDFor(slot, shape)
		if err != nil {
			t.Fatal(err)
		}
		if back != id {
			t.Fatalf("IDFor(Assign(%d)) = %d", id, back)
		}
	}
	if _, _, err := p.Assign(p.Capacity()); err == nil {
		t.Error("ID beyond capacity accepted")
	}
	if _, _, err := p.Assign(-1); err == nil {
		t.Error("negative ID accepted")
	}
	if _, err := p.IDFor(99, 0); err == nil {
		t.Error("bad slot accepted")
	}
	if _, err := p.IDFor(0, 99); err == nil {
		t.Error("bad shape accepted")
	}
}

func TestSlotPlanExtraDelayAndSlotOf(t *testing.T) {
	p, _ := NewSlotPlan(75, 3)
	if p.ExtraDelay(0) != 0 {
		t.Fatal("slot 0 must have zero extra delay")
	}
	for s := 0; s < p.NumSlots; s++ {
		delay := p.ExtraDelay(s)
		if got := p.SlotOf(delay + p.SlotWidth/4); got != s {
			t.Fatalf("slot %d classified as %d", s, got)
		}
	}
	// Clamping.
	if p.SlotOf(-1e-9) != 0 {
		t.Fatal("negative delay not clamped to slot 0")
	}
	if p.SlotOf(10*MaxSlotDelay) != p.NumSlots-1 {
		t.Fatal("overflow not clamped to last slot")
	}
	single := SingleSlot(2)
	if single.SlotOf(500e-9) != 0 {
		t.Fatal("single-slot plan must always classify slot 0")
	}
}

// mkResponse builds a Response at the given delay (seconds) with shape.
func mkResponse(delay float64, shape int, amp complex128) Response {
	return Response{Delay: delay, Amplitude: amp, TemplateIndex: shape}
}

const refDelay = dw1000.ReferenceIndex * dw1000.SampleInterval

func TestResolverAnonymousMode(t *testing.T) {
	r := &Resolver{Plan: SingleSlot(1)}
	d2delta := 2 * (6.0 - 3.0) / channel.SpeedOfLight
	ms, err := r.Resolve([]Response{
		mkResponse(refDelay, 0, 1),
		mkResponse(refDelay+d2delta, 0, 0.5),
	}, 0, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("got %d measurements", len(ms))
	}
	if ms[0].ID != -1 || ms[1].ID != -1 {
		t.Fatal("anonymous mode must not assign IDs")
	}
	if !ms[0].Anchor || ms[1].Anchor {
		t.Fatal("anchor flag wrong")
	}
	if !closeTo(ms[0].Distance, 3, 1e-9) || !closeTo(ms[1].Distance, 6, 1e-9) {
		t.Fatalf("distances %g, %g", ms[0].Distance, ms[1].Distance)
	}
}

func TestResolverCombinedScheme(t *testing.T) {
	// Fig. 8 style: anchor ID 0 (slot 0, shape 0) at 4 m; responder ID 5
	// (slot 1, shape 1) at 7 m; responder ID 2 (slot 2, shape 0) at 5 m.
	plan, _ := NewSlotPlan(75, 3)
	r := &Resolver{Plan: plan}
	rel := func(d float64) float64 { return 2 * (d - 4.0) / channel.SpeedOfLight }
	responses := []Response{
		mkResponse(refDelay, 0, 1),                                // anchor, slot 0
		mkResponse(refDelay+rel(7)+plan.ExtraDelay(1), 1, 0.6),    // ID 5
		mkResponse(refDelay+rel(5)+plan.ExtraDelay(2), 0, 0.4),    // ID 2
		mkResponse(refDelay+rel(4.8)+plan.ExtraDelay(0), 0, 0.25), // anchor's MPC → dup ID 0
	}
	ms, err := r.Resolve(responses, 0, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("got %d measurements, want 3 (MPC deduplicated)", len(ms))
	}
	byID := map[int]Measurement{}
	for _, m := range ms {
		byID[m.ID] = m
	}
	if m, ok := byID[0]; !ok || !m.Anchor || !closeTo(m.Distance, 4, 1e-9) {
		t.Fatalf("anchor measurement %+v", byID[0])
	}
	if m, ok := byID[5]; !ok || m.Slot != 1 || m.Shape != 1 || !closeTo(m.Distance, 7, 1e-6) {
		t.Fatalf("ID 5 measurement %+v", byID[5])
	}
	if m, ok := byID[2]; !ok || m.Slot != 2 || !closeTo(m.Distance, 5, 1e-6) {
		t.Fatalf("ID 2 measurement %+v", byID[2])
	}
}

func TestResolverKeepsDirectPathPerID(t *testing.T) {
	plan := SingleSlot(2)
	r := &Resolver{Plan: plan}
	late := refDelay + 30e-9
	ms, err := r.Resolve([]Response{
		mkResponse(refDelay, 0, 1),
		mkResponse(late, 0, 1.1), // same shape+slot: the anchor's own MPC, within the margin
		mkResponse(refDelay+10e-9, 1, 0.5),
	}, 0, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("got %d measurements, want 2", len(ms))
	}
	for _, m := range ms {
		if m.ID == 0 && !closeTo(m.Delay, refDelay, 1e-12) {
			t.Fatal("kept the MPC instead of the direct path")
		}
	}
}

func TestResolverStrongResponseBeatsWeakArtifact(t *testing.T) {
	// A faint subtraction artifact earlier in the slot must not shadow
	// the responder's real (much stronger) response.
	plan := SingleSlot(2)
	r := &Resolver{Plan: plan}
	real := refDelay + 40e-9
	ms, err := r.Resolve([]Response{
		mkResponse(refDelay, 1, 1),         // anchor (ID 1)
		mkResponse(refDelay+8e-9, 0, 0.05), // artifact mapped to ID 0
		mkResponse(real, 0, 0.4),           // real response of ID 0
	}, 1, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.ID == 0 && !closeTo(m.Delay, real, 1e-12) {
			t.Fatalf("artifact shadowed the real response: %+v", m)
		}
	}
}

func TestResolverAnchorShapePreference(t *testing.T) {
	// Two responses near the reference: the one with the anchor's
	// assigned shape wins the anchor role.
	plan := SingleSlot(2)
	r := &Resolver{Plan: plan}
	ms, err := r.Resolve([]Response{
		mkResponse(refDelay+1e-9, 1, 1),   // anchor (ID 1 = shape 1)
		mkResponse(refDelay-0.2e-9, 0, 1), // slightly nearer reference, wrong shape
	}, 1, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Anchor && m.Shape != 1 {
			t.Fatalf("anchor resolved to wrong shape: %+v", m)
		}
	}
}

func TestResolverErrors(t *testing.T) {
	plan := SingleSlot(1)
	r := &Resolver{Plan: plan}
	if _, err := r.Resolve(nil, 0, 3); err == nil {
		t.Error("empty responses accepted")
	}
	if _, err := r.Resolve([]Response{mkResponse(refDelay, 0, 1)}, 7, 3); err == nil {
		t.Error("anchor ID beyond capacity accepted")
	}
	// No response near the reference index.
	if _, err := r.Resolve([]Response{mkResponse(refDelay+500e-9, 0, 1)}, 0, 3); err == nil {
		t.Error("missing anchor accepted")
	}
	bad := &Resolver{Plan: SlotPlan{}}
	if _, err := bad.Resolve([]Response{mkResponse(refDelay, 0, 1)}, 0, 3); err == nil {
		t.Error("invalid plan accepted")
	}
}

func TestStrongestMeasurement(t *testing.T) {
	if _, ok := StrongestMeasurement(nil); ok {
		t.Fatal("empty slice must report false")
	}
	ms := []Measurement{
		{ID: 1, Amplitude: 0.5},
		{ID: 2, Amplitude: 2i},
		{ID: 3, Amplitude: -1},
	}
	got, ok := StrongestMeasurement(ms)
	if !ok || got.ID != 2 {
		t.Fatalf("got %+v", got)
	}
}
