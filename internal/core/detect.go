// Package core implements the paper's contribution: the search-and-
// subtract response detector operating on the channel impulse response
// (Sect. IV), the threshold-based baseline it is compared against
// (Sect. VI, Falsi et al.), pulse-shape identification of responders
// (Sect. V), response position modulation (Sect. VII), the combined
// RPM × pulse-shaping scheme (Sect. VIII), and the SS-TWR / concurrent
// distance equations (Eq. 2 and Eq. 4).
package core

import (
	"fmt"
	"math"
	"math/cmplx"

	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/obs"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

// Metric names the detector records through its Recorder. Histograms are
// per-Detect distributions; counters accumulate across calls.
const (
	// MetricDetectCalls counts Detect invocations.
	MetricDetectCalls = "detector.detect_calls"
	// MetricDetectIterations is the per-call extraction-round count.
	MetricDetectIterations = "detector.iterations"
	// MetricDetectResponses is the per-call detected-response count.
	MetricDetectResponses = "detector.responses"
	// MetricDetectRefineSteps is the per-call total of golden-section
	// refinement steps across all extracted responses.
	MetricDetectRefineSteps = "detector.refine_steps"
	// MetricDetectMarginDB is the per-response peak-to-threshold margin
	// 20·log10(|α̂|/threshold); recorded only in thresholded mode.
	MetricDetectMarginDB = "detector.margin_db"
	// MetricDetectResidualFrac is the per-call residual-to-input energy
	// ratio after the last subtraction.
	MetricDetectResidualFrac = "detector.residual_energy_frac"
	// MetricDetectTemplateEvals counts template-bank evaluations (one
	// matched filtering of one template against one residual).
	MetricDetectTemplateEvals = "detector.template_evals"
	// MetricUpsampleExecs and the bank metrics surface the dsp plan-level
	// execution counters.
	MetricUpsampleExecs  = "dsp.upsample_execs"
	MetricBankTransforms = "dsp.bank_transforms"
	MetricBankFilters    = "dsp.bank_filters"
)

// Response is one detected responder pulse in the CIR.
type Response struct {
	// Delay is the pulse peak position in seconds relative to CIR tap 0.
	Delay float64
	// Amplitude is the estimated complex amplitude α̂_k (matched-filter
	// output at the peak, Sect. IV step 4).
	Amplitude complex128
	// TemplateIndex identifies the pulse template with the strongest
	// response — the responder's pulse shape (Sect. V).
	TemplateIndex int
}

// Magnitude returns |α̂|.
func (r Response) Magnitude() float64 { return cmplx.Abs(r.Amplitude) }

// DetectorConfig tunes the search-and-subtract detector.
type DetectorConfig struct {
	// Upsample is the FFT up-sampling factor applied to the CIR before
	// matched filtering (Sect. IV step 1). Zero selects DefaultUpsample.
	Upsample int
	// MaxResponses bounds the number of detected responses (the paper's
	// N−1 strongest). Zero means automatic: keep extracting until the
	// residual falls below the detection threshold — the run-time mode
	// challenge I of the paper calls for.
	MaxResponses int
	// ThresholdFactor is the detection threshold as a multiple of the CIR
	// noise RMS; extraction stops when the strongest remaining matched-
	// filter peak drops below it. Zero selects DefaultThresholdFactor.
	// It is ignored (no early stop) when MaxResponses > 0 and
	// DisableThreshold is set.
	ThresholdFactor float64
	// DisableThreshold turns the noise-floor stop off entirely; only
	// MaxResponses limits extraction then.
	DisableThreshold bool
	// MaxIterations is a safety cap on extraction rounds. Zero selects
	// DefaultMaxIterations.
	MaxIterations int
	// DisableRefinement skips the sub-sample golden-section refinement
	// and estimates each response on the up-sampled grid only — the
	// literal steps 3–5 of the paper. Kept as an ablation: the residual
	// of a grid-limited subtraction re-triggers detection at high SNR.
	DisableRefinement bool
}

// Detector defaults.
const (
	DefaultUpsample        = 4
	DefaultThresholdFactor = 6.0
	DefaultMaxIterations   = 64
)

// Detector runs the paper's search-and-subtract algorithm with a bank of
// matched-filter templates (one per candidate pulse shape).
//
// A Detector caches FFT plans, the conjugated matched-filter spectrum of
// every template, and scratch buffers across Detect calls, so it is NOT
// safe for concurrent use: give each goroutine its own Detector (see
// NewDetector's cost note). Detection results do not depend on the cached
// state — Detect is deterministic in its inputs.
type Detector struct {
	cfg       DetectorConfig
	bank      *pulse.Bank
	ts        float64 // CIR sample interval
	tsUp      float64 // up-sampled interval
	templates [][]complex128
	centers   []int

	// Cached frequency-domain execution state for one CIR length
	// (precomputed for dw1000.CIRLength, rebuilt if a caller detects on a
	// different window) plus scratch reused across iterations.
	cirLen   int
	upsample *dsp.UpsamplePlan
	fbank    *dsp.MatchedFilterBank
	residual []complex128
	up       []complex128
	yBest    []complex128
	yCur     []complex128

	// rec is the optional instrumentation sink (nil = disabled, the
	// default). lastUpsampleExecs/lastBankTransforms/lastBankFilters
	// remember the dsp plan counters at the end of the previous recorded
	// call so each Detect reports deltas.
	rec               obs.Recorder
	lastUpsampleExecs int64
	lastBankXforms    int64
	lastBankFilters   int64
}

// SetRecorder attaches an instrumentation sink; nil (the default)
// disables recording. Recording is purely observational — detection
// results are bit-identical with and without a recorder — and costs one
// nil check per Detect when disabled. Like the rest of the detector the
// recorder hookup is not synchronized: set it before sharing work out,
// and give each goroutine its own Detector as usual (one concurrent-safe
// Recorder may back many detectors).
func (d *Detector) SetRecorder(r obs.Recorder) { d.rec = r }

// NewDetector builds a detector for CIRs sampled at the bank's interval.
func NewDetector(bank *pulse.Bank, cfg DetectorConfig) (*Detector, error) {
	if bank == nil {
		return nil, fmt.Errorf("core: nil template bank")
	}
	if cfg.Upsample == 0 {
		cfg.Upsample = DefaultUpsample
	}
	if cfg.Upsample < 1 {
		return nil, fmt.Errorf("core: upsample factor %d < 1", cfg.Upsample)
	}
	if cfg.ThresholdFactor == 0 {
		cfg.ThresholdFactor = DefaultThresholdFactor
	}
	if cfg.ThresholdFactor < 0 {
		return nil, fmt.Errorf("core: negative threshold factor %g", cfg.ThresholdFactor)
	}
	if cfg.MaxIterations == 0 {
		cfg.MaxIterations = DefaultMaxIterations
	}
	if cfg.MaxResponses < 0 {
		return nil, fmt.Errorf("core: negative MaxResponses %d", cfg.MaxResponses)
	}
	if cfg.MaxResponses == 0 && cfg.DisableThreshold {
		return nil, fmt.Errorf("core: automatic mode requires the detection threshold")
	}
	d := &Detector{
		cfg:       cfg,
		bank:      bank,
		ts:        bank.SampleInterval(),
		tsUp:      bank.SampleInterval() / float64(cfg.Upsample),
		templates: make([][]complex128, bank.Len()),
		centers:   make([]int, bank.Len()),
	}
	for i := 0; i < bank.Len(); i++ {
		tmpl := bank.Shape(i).Template(d.tsUp)
		d.templates[i] = tmpl
		d.centers[i] = (len(tmpl) - 1) / 2
	}
	// Precompute the plans and template spectra for the DW1000 accumulator
	// window, the CIR length every simulated reception produces. Detecting
	// on a different window transparently rebuilds this state (ensureState),
	// so NewDetector stays cheap to call in tests with short CIRs while the
	// campaign hot path never plans twice.
	if err := d.ensureState(dw1000.CIRLength); err != nil {
		return nil, err
	}
	return d, nil
}

// ensureState (re)builds the cached frequency-domain execution state for
// CIRs of n taps: the upsampling plan, the matched-filter bank holding
// each template's spectrum at the convolution length implied by the
// window, and the scratch buffers Detect reuses across iterations.
func (d *Detector) ensureState(n int) error {
	if n == d.cirLen {
		return nil
	}
	up, err := dsp.NewUpsamplePlan(n, d.cfg.Upsample)
	if err != nil {
		return err
	}
	fbank, err := dsp.NewMatchedFilterBank(d.templates, n*d.cfg.Upsample)
	if err != nil {
		return err
	}
	d.cirLen = n
	d.upsample = up
	d.fbank = fbank
	d.lastUpsampleExecs, d.lastBankXforms, d.lastBankFilters = 0, 0, 0
	d.residual = make([]complex128, n)
	d.up = make([]complex128, n*d.cfg.Upsample)
	d.yBest = make([]complex128, n*d.cfg.Upsample)
	d.yCur = make([]complex128, n*d.cfg.Upsample)
	return nil
}

// Bank returns the detector's template bank.
func (d *Detector) Bank() *pulse.Bank { return d.bank }

// Config returns the effective detector configuration.
func (d *Detector) Config() DetectorConfig { return d.cfg }

// Detect runs search and subtract on the CIR taps (sampled at the bank's
// interval) and returns the detected responses sorted by ascending delay
// (Sect. IV step 7). noiseRMS is the per-tap complex noise RMS used for
// the detection threshold; it must be positive unless the threshold is
// disabled.
//
// Each round matched-filters the residual with every template, picks the
// globally strongest peak (its template identifies the responder's pulse
// shape), records (α̂_k, τ_k), and subtracts α̂_k·s_i(t−τ_k) from the
// residual before searching again.
func (d *Detector) Detect(taps []complex128, noiseRMS float64) ([]Response, error) {
	if len(taps) == 0 {
		return nil, fmt.Errorf("core: empty CIR")
	}
	useThreshold := !d.cfg.DisableThreshold
	if useThreshold && noiseRMS <= 0 {
		return nil, fmt.Errorf("core: noise RMS %g must be positive for thresholded detection", noiseRMS)
	}
	threshold := d.cfg.ThresholdFactor * noiseRMS
	if err := d.ensureState(len(taps)); err != nil {
		return nil, err
	}
	residual := d.residual
	copy(residual, taps)

	// Instrumentation is observational only: the counters below never
	// influence the search, and the energy tallies run only when a
	// recorder is attached.
	var inputEnergy float64
	if d.rec != nil {
		inputEnergy = dsp.Energy(taps)
	}
	rounds, refineSteps := 0, 0

	var responses []Response
	var extractedPos []float64 // peak positions already subtracted, in T_s samples
	for iter := 0; iter < d.cfg.MaxIterations; iter++ {
		if d.cfg.MaxResponses > 0 && len(responses) >= d.cfg.MaxResponses {
			break
		}
		rounds++
		// Coarse search in the up-sampled domain (Sect. IV steps 1–3).
		// One forward FFT of the residual feeds every template's cached
		// matched-filter spectrum; each template then costs one complex
		// multiply pass plus one inverse FFT.
		up := d.upsample.Execute(d.up, residual)
		if err := d.fbank.Transform(up); err != nil {
			return nil, err
		}
		bestIdx, bestTmpl := -1, -1
		var bestY []complex128
		var bestMag float64
		for t := range d.templates {
			y, err := d.fbank.FilterInto(d.yCur, t)
			if err != nil {
				return nil, err
			}
			idx, mag := d.maxOutsideSuppression(y, d.centers[t], extractedPos)
			if idx >= 0 && mag > bestMag {
				bestIdx, bestTmpl, bestMag, bestY = idx, t, mag, y
				// Keep the winning output out of the next template's way.
				d.yCur, d.yBest = d.yBest, d.yCur
			}
		}
		if bestIdx < 0 {
			break
		}
		// Refine the peak position to sub-sample precision and estimate
		// the complex amplitude by projecting the residual onto the
		// template at the refined position — in the original T_s domain,
		// where the sampled-pulse model is exact. Subtracting on the
		// up-sampled grid alone (the literal step 4/5 of the paper)
		// leaves a flank-shaped residual proportional to the delay error
		// plus the slight aliasing of a 900 MHz pulse at the 1.0016 ns
		// accumulator rate; a high-SNR run would re-detect that residual
		// as phantom responses.
		var peakPos float64
		var alpha complex128
		if d.cfg.DisableRefinement {
			// Literal Sect. IV steps 3–5: the peak stays on the
			// up-sampled grid and the amplitude is the matched-filter
			// output at that sample (rescaled to the T_s-domain template
			// energy convention).
			peakPos = float64(bestIdx+d.centers[bestTmpl]) / float64(d.cfg.Upsample)
			alpha = bestY[bestIdx] * complex(d.gridAmplitudeScale(bestTmpl), 0)
		} else {
			coarse := (float64(bestIdx) + interpolateComplexPeak(bestY, bestIdx) +
				float64(d.centers[bestTmpl])) / float64(d.cfg.Upsample)
			var steps int
			peakPos, alpha, steps = d.refinePeak(residual, bestTmpl, coarse)
			refineSteps += steps
		}
		if alpha == 0 {
			break
		}
		if useThreshold && cmplx.Abs(alpha) < threshold {
			break
		}
		responses = append(responses, Response{
			Delay:         peakPos * d.ts,
			Amplitude:     alpha,
			TemplateIndex: bestTmpl,
		})
		// Subtract the estimated response (Sect. IV step 5).
		d.bank.Shape(bestTmpl).RenderInto(residual, -alpha, peakPos, d.ts)
		extractedPos = append(extractedPos, peakPos)
	}
	sortResponsesByDelay(responses)
	if d.rec != nil {
		d.recordDetect(responses, rounds, refineSteps, threshold, useThreshold, inputEnergy)
	}
	return responses, nil
}

// recordDetect emits one Detect call's worth of diagnostics. Only reached
// with a non-nil recorder.
func (d *Detector) recordDetect(responses []Response, rounds, refineSteps int,
	threshold float64, useThreshold bool, inputEnergy float64) {
	rec := d.rec
	rec.Count(MetricDetectCalls, 1)
	rec.Observe(MetricDetectIterations, float64(rounds))
	rec.Observe(MetricDetectResponses, float64(len(responses)))
	rec.Observe(MetricDetectRefineSteps, float64(refineSteps))
	rec.Count(MetricDetectTemplateEvals, int64(rounds*len(d.templates)))
	if useThreshold && threshold > 0 {
		for _, r := range responses {
			rec.Observe(MetricDetectMarginDB, 20*math.Log10(r.Magnitude()/threshold))
		}
	}
	if inputEnergy > 0 {
		rec.Observe(MetricDetectResidualFrac, dsp.Energy(d.residual)/inputEnergy)
	}
	// Surface the dsp plan execution counters as deltas since the last
	// recorded call (ensureState resets the baselines when it rebuilds
	// the plans).
	if e := d.upsample.Execs(); e != d.lastUpsampleExecs {
		rec.Count(MetricUpsampleExecs, e-d.lastUpsampleExecs)
		d.lastUpsampleExecs = e
	}
	if x := d.fbank.Transforms(); x != d.lastBankXforms {
		rec.Count(MetricBankTransforms, x-d.lastBankXforms)
		d.lastBankXforms = x
	}
	if f := d.fbank.Filters(); f != d.lastBankFilters {
		rec.Count(MetricBankFilters, f-d.lastBankFilters)
		d.lastBankFilters = f
	}
}

// suppressionRadius is how close (in CIR samples T_s) a new candidate
// peak may sit to an already-extracted one. Sub-sample delay estimation
// error leaves a small subtraction residual exactly at the extracted
// position; without this guard a high-SNR run re-detects it as a phantom
// responder. Half a CIR sample is far tighter than any resolvable
// response separation, so genuine overlapping responses are unaffected.
const suppressionRadius = 0.5

// maxOutsideSuppression returns the index and magnitude of the largest
// |y| (an up-sampled-domain matched-filter output) whose implied peak
// position is not within the suppression radius of an already-extracted
// path. It returns (-1, 0) when everything is suppressed.
func (d *Detector) maxOutsideSuppression(y []complex128, center int, extracted []float64) (int, float64) {
	bestIdx, bestSq := -1, 0.0
	for i, v := range y {
		sq := real(v)*real(v) + imag(v)*imag(v)
		if sq <= bestSq {
			continue
		}
		pos := float64(i+center) / float64(d.cfg.Upsample) // in T_s samples
		suppressed := false
		for _, p := range extracted {
			if math.Abs(pos-p) < suppressionRadius {
				suppressed = true
				break
			}
		}
		if !suppressed {
			bestIdx, bestSq = i, sq
		}
	}
	if bestIdx < 0 {
		return -1, 0
	}
	return bestIdx, math.Sqrt(bestSq)
}

// gridAmplitudeScale converts a matched-filter output sample (templates
// are unit-energy at the up-sampled rate) into the T_s-domain amplitude
// convention the subtraction and the rest of the pipeline use.
func (d *Detector) gridAmplitudeScale(tmplIdx int) float64 {
	shape := d.bank.Shape(tmplIdx)
	normUp := shape.NormConstant(d.tsUp)
	normTs := shape.NormConstant(d.ts)
	if normTs == 0 {
		return 0
	}
	return normUp / normTs
}

// interpolateComplexPeak returns the fractional offset of the magnitude
// peak of y around integer index i via a three-point parabolic fit.
func interpolateComplexPeak(y []complex128, i int) float64 {
	if i <= 0 || i >= len(y)-1 {
		return 0
	}
	window := []float64{cmplx.Abs(y[i-1]), cmplx.Abs(y[i]), cmplx.Abs(y[i+1])}
	return dsp.InterpolatePeak(window, 1)
}

// projectAmplitude computes the least-squares amplitude of the template
// (as rendered by RenderInto, i.e. discretely unit-energy) located at the
// fractional peak position, against the current residual. The second
// return value is the projection score |<r,s>|²/‖s‖², the amount of
// residual energy the subtraction will remove.
func (d *Detector) projectAmplitude(residual []complex128, tmplIdx int, peakPos float64) (complex128, float64) {
	shape := d.bank.Shape(tmplIdx)
	norm := shape.NormConstant(d.ts)
	if norm == 0 {
		return 0, 0
	}
	halfSamples := shape.SupportHalfWidth() / d.ts
	lo := max(int(peakPos-halfSamples), 0)
	hi := min(int(peakPos+halfSamples)+1, len(residual)-1)
	var num complex128
	var den float64
	for n := lo; n <= hi; n++ {
		v := norm * shape.Eval((float64(n)-peakPos)*d.ts)
		num += residual[n] * complex(v, 0)
		den += v * v
	}
	if den == 0 {
		return 0, 0
	}
	score := (real(num)*real(num) + imag(num)*imag(num)) / den
	return num * complex(1/den, 0), score
}

// refinePeak maximizes the projection score over the peak position (in
// T_s samples) in a bracket of ±1 up-sampled sample around the coarse
// estimate using a golden-section search, and returns the refined
// position together with its least-squares amplitude and the number of
// search steps taken (for the instrumentation layer).
func (d *Detector) refinePeak(residual []complex128, tmplIdx int, coarse float64) (float64, complex128, int) {
	const golden = 0.6180339887498949
	half := 1 / float64(d.cfg.Upsample)
	lo, hi := coarse-half, coarse+half
	x1 := hi - golden*(hi-lo)
	x2 := lo + golden*(hi-lo)
	_, f1 := d.projectAmplitude(residual, tmplIdx, x1)
	_, f2 := d.projectAmplitude(residual, tmplIdx, x2)
	steps := 0
	for i := 0; i < 40 && hi-lo > 1e-7; i++ {
		steps++
		if f1 < f2 {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + golden*(hi-lo)
			_, f2 = d.projectAmplitude(residual, tmplIdx, x2)
		} else {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - golden*(hi-lo)
			_, f1 = d.projectAmplitude(residual, tmplIdx, x1)
		}
	}
	pos := (lo + hi) / 2
	alpha, _ := d.projectAmplitude(residual, tmplIdx, pos)
	return pos, alpha, steps
}

// MatchedFilterOutputs returns |y_i| for every template against the given
// CIR taps, in the up-sampled domain — the curves of the paper's Fig. 4b
// and Fig. 6b. The second return value is the up-sampled tap spacing.
// Like Detect it uses (and may rebuild) the cached plans, so it is not
// safe to call concurrently with other methods.
func (d *Detector) MatchedFilterOutputs(taps []complex128) ([][]float64, float64, error) {
	if len(taps) == 0 {
		return nil, 0, fmt.Errorf("core: empty CIR")
	}
	if err := d.ensureState(len(taps)); err != nil {
		return nil, 0, err
	}
	up := d.upsample.Execute(d.up, taps)
	if err := d.fbank.Transform(up); err != nil {
		return nil, 0, err
	}
	out := make([][]float64, len(d.templates))
	for t := range d.templates {
		y, err := d.fbank.FilterInto(d.yCur, t)
		if err != nil {
			return nil, 0, err
		}
		out[t] = dsp.Abs(y)
	}
	return out, d.tsUp, nil
}

func sortResponsesByDelay(rs []Response) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Delay < rs[j-1].Delay; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
