// Package core implements the paper's contribution: the search-and-
// subtract response detector operating on the channel impulse response
// (Sect. IV), the threshold-based baseline it is compared against
// (Sect. VI, Falsi et al.), pulse-shape identification of responders
// (Sect. V), response position modulation (Sect. VII), the combined
// RPM × pulse-shaping scheme (Sect. VIII), and the SS-TWR / concurrent
// distance equations (Eq. 2 and Eq. 4).
package core

import (
	"fmt"
	"math"
	"math/cmplx"
	"runtime"
	"strconv"
	"sync"

	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/obs"
	"github.com/uwb-sim/concurrent-ranging/internal/obs/trace"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

// Metric names the detector records through its Recorder. Histograms are
// per-Detect distributions; counters accumulate across calls.
const (
	// MetricDetectCalls counts Detect invocations.
	MetricDetectCalls = "detector.detect_calls"
	// MetricDetectCallsByBank is the labeled companion of
	// MetricDetectCalls: calls counted per template-bank size
	// ({templates="N"}), so a mixed campaign (anonymous vs pulse-shaped
	// detectors) breaks its detector load down by bank. Recorded only
	// when the Recorder supports labeled series (obs.VecSource).
	MetricDetectCallsByBank = "detector.bank_detect_calls"
	// MetricDetectIterations is the per-call extraction-round count.
	MetricDetectIterations = "detector.iterations"
	// MetricDetectResponses is the per-call detected-response count.
	MetricDetectResponses = "detector.responses"
	// MetricDetectRefineSteps is the per-call total of golden-section
	// refinement steps across all extracted responses.
	MetricDetectRefineSteps = "detector.refine_steps"
	// MetricDetectMarginDB is the per-response peak-to-threshold margin
	// 20·log10(|α̂|/threshold); recorded only in thresholded mode.
	MetricDetectMarginDB = "detector.margin_db"
	// MetricDetectResidualFrac is the per-call residual-to-input energy
	// ratio after the last subtraction.
	MetricDetectResidualFrac = "detector.residual_energy_frac"
	// MetricDetectTemplateEvals counts template-bank evaluations (one
	// matched filtering of one template against one residual).
	MetricDetectTemplateEvals = "detector.template_evals"
	// MetricUpsampleExecs and the bank metrics surface the dsp plan-level
	// execution counters. In spectral mode a bank "transform" is one
	// SpectralBank.Ingest (once per Detect) and a bank "filter" is one
	// ScanBest; in reference mode they are MatchedFilterBank.Transform
	// (once per round) and FilterInto/FilterPeak.
	MetricUpsampleExecs  = "dsp.upsample_execs"
	MetricBankTransforms = "dsp.bank_transforms"
	MetricBankFilters    = "dsp.bank_filters"
	// MetricBankShiftSubtracts counts analytic DFT-shift spectrum updates —
	// the subtractions the spectral path performs without any transform.
	MetricBankShiftSubtracts = "dsp.bank_shift_subtracts"
)

// DetectorMode selects the detector's search implementation.
type DetectorMode int

const (
	// ModeAuto (the default) picks per bank size: the spectral fast path
	// for banks of at least minParallelTemplates templates — the Sect. V
	// shape-identification case, where the per-round forward transforms
	// dominate — and the exact reference path for small banks, whose
	// results are pinned bit-exactly by the golden tests and where the
	// spectral win is smaller. DisableRefinement always forces the
	// reference path (its on-grid amplitudes read the exact
	// matched-filter output).
	ModeAuto DetectorMode = iota
	// ModeSpectral maintains the residual's up-sampled spectrum
	// analytically across extractions: one upsample + one forward FFT per
	// Detect, zero forward transforms per round. The coarse peak search
	// runs on that (slightly approximate) spectrum; refinement, amplitude
	// estimation, thresholding and subtraction all stay on the exactly
	// maintained T_s residual, so delays and amplitudes match the
	// reference path whenever the coarse argmax lands in the same basin.
	ModeSpectral
	// ModeReference re-upsamples and re-transforms the residual every
	// round — the exact implementation the spectral path is validated
	// against.
	ModeReference
)

// Response is one detected responder pulse in the CIR.
type Response struct {
	// Delay is the pulse peak position in seconds relative to CIR tap 0.
	Delay float64
	// Amplitude is the estimated complex amplitude α̂_k (matched-filter
	// output at the peak, Sect. IV step 4).
	Amplitude complex128
	// TemplateIndex identifies the pulse template with the strongest
	// response — the responder's pulse shape (Sect. V).
	TemplateIndex int
}

// Magnitude returns |α̂|.
func (r Response) Magnitude() float64 { return cmplx.Abs(r.Amplitude) }

// DetectorConfig tunes the search-and-subtract detector.
type DetectorConfig struct {
	// Upsample is the FFT up-sampling factor applied to the CIR before
	// matched filtering (Sect. IV step 1). Zero selects DefaultUpsample.
	Upsample int
	// MaxResponses bounds the number of detected responses (the paper's
	// N−1 strongest). Zero means automatic: keep extracting until the
	// residual falls below the detection threshold — the run-time mode
	// challenge I of the paper calls for.
	MaxResponses int
	// ThresholdFactor is the detection threshold as a multiple of the CIR
	// noise RMS; extraction stops when the strongest remaining matched-
	// filter peak drops below it. Zero selects DefaultThresholdFactor.
	// It is ignored (no early stop) when MaxResponses > 0 and
	// DisableThreshold is set.
	ThresholdFactor float64
	// DisableThreshold turns the noise-floor stop off entirely; only
	// MaxResponses limits extraction then.
	DisableThreshold bool
	// MaxIterations is a safety cap on extraction rounds. Zero selects
	// DefaultMaxIterations.
	MaxIterations int
	// DisableRefinement skips the sub-sample golden-section refinement
	// and estimates each response on the up-sampled grid only — the
	// literal steps 3–5 of the paper. Kept as an ablation: the residual
	// of a grid-limited subtraction re-triggers detection at high SNR.
	// Incompatible with ModeSpectral (the grid amplitude is read off the
	// matched-filter output, which the spectral path only approximates).
	DisableRefinement bool
	// Mode selects the search implementation; see DetectorMode.
	Mode DetectorMode
	// Workers bounds the goroutines fanned across the template bank each
	// round. 0 means automatic: GOMAXPROCS workers for banks of at least
	// eight templates (a full Sect. V bank), serial otherwise — small
	// banks are dominated by per-round FFTs, and the detector is often
	// already running inside a per-trial worker pool. 1 forces serial.
	Workers int
}

// Detector defaults.
const (
	DefaultUpsample        = 4
	DefaultThresholdFactor = 6.0
	DefaultMaxIterations   = 64
)

// Detector runs the paper's search-and-subtract algorithm with a bank of
// matched-filter templates (one per candidate pulse shape).
//
// A Detector caches FFT plans, the conjugated matched-filter spectrum of
// every template, and scratch buffers across Detect calls, so it is NOT
// safe for concurrent use: give each goroutine its own Detector (see
// NewDetector's cost note). Detection results do not depend on the cached
// state — Detect is deterministic in its inputs.
type Detector struct {
	cfg       DetectorConfig
	bank      *pulse.Bank
	ts        float64 // CIR sample interval
	tsUp      float64 // up-sampled interval
	templates [][]complex128
	centers   []int

	// Cached frequency-domain execution state for one CIR length
	// (precomputed for dw1000.CIRLength, rebuilt if a caller detects on a
	// different window) plus scratch reused across iterations.
	cirLen    int
	upsample  *dsp.UpsamplePlan
	fbank     *dsp.MatchedFilterBank
	sbank     *dsp.SpectralBank // nil unless the spectral path is active
	residual  []complex128
	up        []complex128
	yCur      []complex128
	skipQ     []dsp.SkipInterval // per-round suppressed intervals, q-space
	extracted []float64          // per-call already-subtracted peak positions, T_s samples
	workers   []detectWorker     // per-worker scratch for the template fan-out

	// rec is the optional instrumentation sink (nil = disabled, the
	// default). bankCalls is the pre-resolved per-bank-size labeled
	// counter child (nil unless rec supports labeled series): the hot
	// path touches only the resolved handle, never a vec lookup. The
	// last* fields remember the dsp plan counters at the end of the
	// previous recorded call so each Detect reports deltas.
	rec       obs.Recorder
	bankCalls *obs.Counter
	// flight and traceParent feed the decision-level flight recorder:
	// when either is live, Detect wraps itself in a trace span and emits
	// one EventDetectRound per extraction round. roundScores (backed by
	// scoreStorage) is non-nil only while a traced Detect runs; scanRange
	// fills each template's peak score into its own index, so the
	// concurrent workers never contend.
	flight       *trace.Tracer
	traceParent  *trace.Span
	roundScores  []float64
	scoreStorage []float64

	lastUpsampleExecs int64
	lastBankXforms    int64
	lastBankFilters   int64
	lastIngests       int64
	lastScans         int64
	lastShifts        int64
}

// detectWorker is one goroutine's worth of search scratch: matched-filter
// output buffers (reference and spectral) plus the per-template skip
// intervals shifted into output-index space.
type detectWorker struct {
	fscratch []complex128
	sscratch []complex128
	skip     []dsp.SkipInterval
}

// candidate is one template's best peak, merged deterministically across
// workers: higher squared magnitude wins, ties go to the lower template
// index — exactly what the serial ascending scan with a strict > produces.
type candidate struct {
	sq  float64
	t   int
	idx int
	y3  [3]complex128
}

func (c candidate) better(o candidate) bool {
	if c.sq != o.sq {
		return c.sq > o.sq
	}
	return o.t < 0 || (c.t >= 0 && c.t < o.t)
}

// SetRecorder attaches an instrumentation sink; nil (the default)
// disables recording. Recording is purely observational — detection
// results are bit-identical with and without a recorder — and costs one
// nil check per Detect when disabled. Like the rest of the detector the
// recorder hookup is not synchronized: set it before sharing work out,
// and give each goroutine its own Detector as usual (one concurrent-safe
// Recorder may back many detectors).
func (d *Detector) SetRecorder(r obs.Recorder) {
	d.rec = r
	d.bankCalls = nil
	if vs, ok := r.(obs.VecSource); ok {
		// Resolve the labeled per-bank-size child once, here, so the per-call
		// recording path stays a plain nil-guarded pointer.
		d.bankCalls = vs.CounterVec(MetricDetectCallsByBank, "templates").
			With(strconv.Itoa(len(d.templates)))
	}
}

// SetFlightRecorder attaches the decision-level flight recorder; nil (the
// default) disables it. The same contract as SetRecorder applies: tracing
// is observational only — detection results are bit-identical with and
// without it — and costs one nil check per Detect when disabled.
func (d *Detector) SetFlightRecorder(tr *trace.Tracer) { d.flight = tr }

// SetTraceParent nests the next Detect calls' spans under the given span
// (typically a session.round span). A nil or non-recording parent makes
// Detect fall back to opening root spans on the flight recorder, if one is
// attached. Like SetRecorder this is not synchronized: set it before the
// call, from the same goroutine.
func (d *Detector) SetTraceParent(sp *trace.Span) { d.traceParent = sp }

// NewDetector builds a detector for CIRs sampled at the bank's interval.
func NewDetector(bank *pulse.Bank, cfg DetectorConfig) (*Detector, error) {
	if bank == nil {
		return nil, fmt.Errorf("core: nil template bank")
	}
	if cfg.Upsample == 0 {
		cfg.Upsample = DefaultUpsample
	}
	if cfg.Upsample < 1 {
		return nil, fmt.Errorf("core: upsample factor %d < 1", cfg.Upsample)
	}
	if cfg.ThresholdFactor == 0 {
		cfg.ThresholdFactor = DefaultThresholdFactor
	}
	if cfg.ThresholdFactor < 0 {
		return nil, fmt.Errorf("core: negative threshold factor %g", cfg.ThresholdFactor)
	}
	if cfg.MaxIterations == 0 {
		cfg.MaxIterations = DefaultMaxIterations
	}
	if cfg.MaxResponses < 0 {
		return nil, fmt.Errorf("core: negative MaxResponses %d", cfg.MaxResponses)
	}
	if cfg.MaxResponses == 0 && cfg.DisableThreshold {
		return nil, fmt.Errorf("core: automatic mode requires the detection threshold")
	}
	if cfg.Mode < ModeAuto || cfg.Mode > ModeReference {
		return nil, fmt.Errorf("core: unknown detector mode %d", cfg.Mode)
	}
	if cfg.Mode == ModeSpectral && cfg.DisableRefinement {
		return nil, fmt.Errorf("core: ModeSpectral needs refinement (grid amplitudes read the exact matched-filter output)")
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("core: negative Workers %d", cfg.Workers)
	}
	d := &Detector{
		cfg:       cfg,
		bank:      bank,
		ts:        bank.SampleInterval(),
		tsUp:      bank.SampleInterval() / float64(cfg.Upsample),
		templates: make([][]complex128, bank.Len()),
		centers:   make([]int, bank.Len()),
	}
	for i := 0; i < bank.Len(); i++ {
		tmpl := bank.Shape(i).Template(d.tsUp)
		d.templates[i] = tmpl
		d.centers[i] = (len(tmpl) - 1) / 2
	}
	// Precompute the plans and template spectra for the DW1000 accumulator
	// window, the CIR length every simulated reception produces. Detecting
	// on a different window transparently rebuilds this state (ensureState),
	// so NewDetector stays cheap to call in tests with short CIRs while the
	// campaign hot path never plans twice.
	if err := d.ensureState(dw1000.CIRLength); err != nil {
		return nil, err
	}
	return d, nil
}

// ensureState (re)builds the cached frequency-domain execution state for
// CIRs of n taps: the upsampling plan, the matched-filter bank holding
// each template's spectrum at the convolution length implied by the
// window, the spectral search state when the fast path is active, and the
// per-worker scratch Detect reuses across iterations.
func (d *Detector) ensureState(n int) error {
	if n == d.cirLen {
		return nil
	}
	up, err := dsp.NewUpsamplePlan(n, d.cfg.Upsample)
	if err != nil {
		return err
	}
	fbank, err := dsp.NewMatchedFilterBank(d.templates, n*d.cfg.Upsample)
	if err != nil {
		return err
	}
	var sbank *dsp.SpectralBank
	if d.useSpectral() {
		if sbank, err = dsp.NewSpectralBank(d.templates, n*d.cfg.Upsample); err != nil {
			return err
		}
	}
	d.cirLen = n
	d.upsample = up
	d.fbank = fbank
	d.sbank = sbank
	d.lastUpsampleExecs, d.lastBankXforms, d.lastBankFilters = 0, 0, 0
	d.lastIngests, d.lastScans, d.lastShifts = 0, 0, 0
	d.residual = make([]complex128, n)
	d.up = make([]complex128, n*d.cfg.Upsample)
	d.yCur = make([]complex128, n*d.cfg.Upsample)
	d.workers = make([]detectWorker, d.workerCount())
	for i := range d.workers {
		w := &d.workers[i]
		w.fscratch = fbank.NewScratch()
		if sbank != nil {
			w.sscratch = sbank.NewScratch()
		}
	}
	return nil
}

// useSpectral reports whether Detect runs the spectral fast path.
func (d *Detector) useSpectral() bool {
	switch d.cfg.Mode {
	case ModeSpectral:
		return true
	case ModeReference:
		return false
	default:
		return !d.cfg.DisableRefinement && len(d.templates) >= minParallelTemplates
	}
}

// minParallelTemplates is the bank size at which Workers == 0 turns the
// per-round template fan-out on. Below it the round is dominated by the
// residual FFTs, and detectors usually already run inside per-trial
// worker pools (experiments.parallelMapWith) where nested fan-out only
// adds scheduling churn.
const minParallelTemplates = 8

// workerCount resolves DetectorConfig.Workers against the bank size.
func (d *Detector) workerCount() int {
	w := d.cfg.Workers
	if w == 0 {
		if len(d.templates) < minParallelTemplates {
			return 1
		}
		w = runtime.GOMAXPROCS(0)
	}
	return max(1, min(w, len(d.templates)))
}

// Bank returns the detector's template bank.
func (d *Detector) Bank() *pulse.Bank { return d.bank }

// Config returns the effective detector configuration.
func (d *Detector) Config() DetectorConfig { return d.cfg }

// Detect runs search and subtract on the CIR taps (sampled at the bank's
// interval) and returns the detected responses sorted by ascending delay
// (Sect. IV step 7). noiseRMS is the per-tap complex noise RMS used for
// the detection threshold; it must be positive unless the threshold is
// disabled.
//
// Each round matched-filters the residual with every template, picks the
// globally strongest peak (its template identifies the responder's pulse
// shape), records (α̂_k, τ_k), and subtracts α̂_k·s_i(t−τ_k) from the
// residual before searching again.
func (d *Detector) Detect(taps []complex128, noiseRMS float64) ([]Response, error) {
	out, err := d.detectAppend(nil, taps, noiseRMS)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// detectAppend is Detect appending its responses to dst (which may be a
// batch worker's arena; only dst[len(dst):cap] is written). On error the
// returned slice is dst rolled back to its original length, so a failed
// item never leaves partial responses behind. The appended window is
// sorted by delay independently of dst's existing contents.
func (d *Detector) detectAppend(dst []Response, taps []complex128, noiseRMS float64) ([]Response, error) {
	if len(taps) == 0 {
		return dst, fmt.Errorf("core: empty CIR")
	}
	useThreshold := !d.cfg.DisableThreshold
	if useThreshold && noiseRMS <= 0 {
		return dst, fmt.Errorf("core: noise RMS %g must be positive for thresholded detection", noiseRMS)
	}
	threshold := d.cfg.ThresholdFactor * noiseRMS
	if err := d.ensureState(len(taps)); err != nil {
		return dst, err
	}
	residual := d.residual
	copy(residual, taps)

	// Instrumentation is observational only: the counters and trace
	// events below never influence the search, and the energy tallies
	// run only when a recorder or a live span is attached.
	span := d.beginDetectSpan(len(taps), noiseRMS, threshold, useThreshold)
	if span != nil {
		if cap(d.scoreStorage) < len(d.templates) {
			d.scoreStorage = make([]float64, len(d.templates))
		}
		d.roundScores = d.scoreStorage[:len(d.templates)]
	} else {
		d.roundScores = nil
	}
	var inputEnergy float64
	if d.rec != nil || span != nil {
		inputEnergy = dsp.Energy(taps)
	}
	rounds, refineSteps := 0, 0
	stop := trace.ReasonMaxIterations

	// Spectral fast path: upsample and forward-transform the CIR once,
	// then keep the spectrum current analytically after each subtraction.
	// The reference path redoes both every round inside the loop.
	spectral := d.sbank != nil
	if spectral {
		up := d.upsample.Execute(d.up, residual)
		if err := d.sbank.Ingest(up); err != nil {
			failDetectSpan(span, err)
			return dst, err
		}
	}

	responses, base := dst, len(dst)
	d.extracted = d.extracted[:0] // peak positions already subtracted, in T_s samples
	for iter := 0; iter < d.cfg.MaxIterations; iter++ {
		if d.cfg.MaxResponses > 0 && len(responses)-base >= d.cfg.MaxResponses {
			stop = trace.ReasonMaxResponses
			break
		}
		rounds++
		// Coarse search in the up-sampled domain (Sect. IV steps 1–3).
		// One forward FFT of the residual feeds every template's cached
		// matched-filter spectrum; each template then costs one complex
		// multiply pass plus one inverse FFT with the peak scan fused
		// into its output pass — fanned across workers for large banks.
		if !spectral {
			up := d.upsample.Execute(d.up, residual)
			if err := d.fbank.Transform(up); err != nil {
				failDetectSpan(span, err)
				return responses[:base], err
			}
		}
		d.skipQ = appendSuppressedIntervals(d.skipQ[:0], d.extracted, d.cfg.Upsample)
		best, err := d.searchTemplates(spectral)
		if err != nil {
			failDetectSpan(span, err)
			return responses[:base], err
		}
		if best.t < 0 {
			stop = trace.ReasonNoCandidate
			if span != nil {
				d.emitRound(span, rounds-1, best, 0, 0, threshold, useThreshold, stop, inputEnergy)
			}
			break
		}
		// Refine the peak position to sub-sample precision and estimate
		// the complex amplitude by projecting the residual onto the
		// template at the refined position — in the original T_s domain,
		// where the sampled-pulse model is exact. Subtracting on the
		// up-sampled grid alone (the literal step 4/5 of the paper)
		// leaves a flank-shaped residual proportional to the delay error
		// plus the slight aliasing of a 900 MHz pulse at the 1.0016 ns
		// accumulator rate; a high-SNR run would re-detect that residual
		// as phantom responses. The spectral path relies on the same
		// split: its coarse peak only has to land in the right basin,
		// because the values below come from the exact T_s residual.
		var peakPos float64
		var alpha complex128
		if d.cfg.DisableRefinement {
			// Literal Sect. IV steps 3–5: the peak stays on the
			// up-sampled grid and the amplitude is the matched-filter
			// output at that sample (rescaled to the T_s-domain template
			// energy convention).
			peakPos = float64(best.idx+d.centers[best.t]) / float64(d.cfg.Upsample)
			alpha = best.y3[1] * complex(d.gridAmplitudeScale(best.t), 0)
		} else {
			coarse := (float64(best.idx) + d.interpolateY3(best.y3, best.idx) +
				float64(d.centers[best.t])) / float64(d.cfg.Upsample)
			var steps int
			peakPos, alpha, steps = d.refinePeak(residual, best.t, coarse)
			refineSteps += steps
		}
		if alpha == 0 {
			stop = trace.ReasonZeroAmplitude
			if span != nil {
				d.emitRound(span, rounds-1, best, peakPos, alpha, threshold, useThreshold, stop, inputEnergy)
			}
			break
		}
		if useThreshold && cmplx.Abs(alpha) < threshold {
			stop = trace.ReasonBelowThreshold
			if span != nil {
				d.emitRound(span, rounds-1, best, peakPos, alpha, threshold, useThreshold, stop, inputEnergy)
			}
			break
		}
		responses = append(responses, Response{
			Delay:         peakPos * d.ts,
			Amplitude:     alpha,
			TemplateIndex: best.t,
		})
		// Subtract the estimated response (Sect. IV step 5) — and mirror
		// it analytically into the maintained spectrum on the fast path.
		d.bank.Shape(best.t).RenderInto(residual, -alpha, peakPos, d.ts)
		if spectral {
			if err := d.spectralSubtract(best.t, alpha, peakPos); err != nil {
				failDetectSpan(span, err)
				return responses[:base], err
			}
		}
		d.extracted = append(d.extracted, peakPos)
		if span != nil {
			d.emitRound(span, rounds-1, best, peakPos, alpha, threshold, useThreshold, trace.ReasonAccepted, inputEnergy)
		}
	}
	sortResponsesByDelay(responses[base:])
	if d.rec != nil {
		d.recordDetect(responses[base:], rounds, refineSteps, threshold, useThreshold, inputEnergy)
	}
	if span != nil {
		span.EndWith(trace.Attrs{
			trace.AttrReason: stop,
			"responses":      len(responses) - base,
			"rounds":         rounds,
			"refine_steps":   refineSteps,
		})
		d.roundScores = nil
	}
	return responses, nil
}

// beginDetectSpan opens this Detect call's span: under the installed
// trace parent when it is recording, else as a root span on the flight
// recorder. It returns nil — the "not tracing" sentinel the hot path
// checks — when neither is live or the root was sampled out.
func (d *Detector) beginDetectSpan(cirLen int, noiseRMS, threshold float64, useThreshold bool) *trace.Span {
	if d.traceParent == nil && d.flight == nil {
		return nil
	}
	// An installed but non-recording parent (sampled-out root) suppresses
	// this call's span instead of opening a fresh root span.
	if d.traceParent != nil && !d.traceParent.Recording() {
		return nil
	}
	attrs := trace.Attrs{
		"templates": len(d.templates),
		"cir_len":   cirLen,
		"noise_rms": noiseRMS,
		"spectral":  d.sbank != nil,
	}
	if useThreshold {
		attrs["threshold"] = threshold
	}
	var sp *trace.Span
	if d.traceParent != nil {
		sp = d.traceParent.Begin(trace.SpanDetect, attrs)
	} else if d.flight != nil {
		sp = d.flight.Begin(trace.SpanDetect, attrs)
	}
	if !sp.Recording() {
		return nil
	}
	return sp
}

// failDetectSpan closes a detect span on an error return.
func failDetectSpan(span *trace.Span, err error) {
	if span != nil {
		span.EndWith(trace.Attrs{trace.AttrStatus: "error", trace.AttrError: err.Error()})
	}
}

// emitRound records one search-and-subtract round on the detect span: the
// candidate peak, the per-template matched-filter scores scanRange
// captured, the peak-to-threshold margin, the accept/reject reason, and
// the residual-to-input energy fraction at the end of the round (after
// the subtraction for accepted rounds). Only reached while tracing.
func (d *Detector) emitRound(span *trace.Span, round int, best candidate,
	peakPos float64, alpha complex128, threshold float64, useThreshold bool,
	reason string, inputEnergy float64) {
	if span == nil {
		return
	}
	attrs := trace.Attrs{
		trace.AttrRound:  round,
		trace.AttrReason: reason,
		trace.AttrScores: append([]float64(nil), d.roundScores...),
	}
	if best.t >= 0 {
		attrs[trace.AttrTemplate] = best.t
		attrs[trace.AttrPeakIndex] = best.idx
		attrs[trace.AttrDelayS] = peakPos * d.ts
		amp := cmplx.Abs(alpha)
		attrs[trace.AttrAmplitude] = amp
		if useThreshold && threshold > 0 && amp > 0 {
			attrs[trace.AttrMarginDB] = 20 * math.Log10(amp/threshold)
		}
	}
	if inputEnergy > 0 {
		attrs[trace.AttrResidualFrac] = dsp.Energy(d.residual) / inputEnergy
	}
	span.Event(trace.EventDetectRound, attrs)
}

// recordDetect emits one Detect call's worth of diagnostics. Only reached
// with a non-nil recorder; the guard also keeps the nilinstr contract
// locally checkable.
func (d *Detector) recordDetect(responses []Response, rounds, refineSteps int,
	threshold float64, useThreshold bool, inputEnergy float64) {
	rec := d.rec
	if rec == nil {
		return
	}
	rec.Count(MetricDetectCalls, 1)
	if d.bankCalls != nil {
		d.bankCalls.Inc()
	}
	rec.Observe(MetricDetectIterations, float64(rounds))
	rec.Observe(MetricDetectResponses, float64(len(responses)))
	rec.Observe(MetricDetectRefineSteps, float64(refineSteps))
	rec.Count(MetricDetectTemplateEvals, int64(rounds*len(d.templates)))
	if useThreshold && threshold > 0 {
		for _, r := range responses {
			rec.Observe(MetricDetectMarginDB, 20*math.Log10(r.Magnitude()/threshold))
		}
	}
	if inputEnergy > 0 {
		rec.Observe(MetricDetectResidualFrac, dsp.Energy(d.residual)/inputEnergy)
	}
	// Surface the dsp plan execution counters as deltas since the last
	// recorded call (ensureState resets the baselines when it rebuilds
	// the plans).
	if e := d.upsample.Execs(); e != d.lastUpsampleExecs {
		rec.Count(MetricUpsampleExecs, e-d.lastUpsampleExecs)
		d.lastUpsampleExecs = e
	}
	if x := d.fbank.Transforms(); x != d.lastBankXforms {
		rec.Count(MetricBankTransforms, x-d.lastBankXforms)
		d.lastBankXforms = x
	}
	if f := d.fbank.Filters(); f != d.lastBankFilters {
		rec.Count(MetricBankFilters, f-d.lastBankFilters)
		d.lastBankFilters = f
	}
	if d.sbank == nil {
		return
	}
	// Spectral-path counters map onto the same bank metrics: an Ingest is
	// the one transform a Detect pays, a ScanBest is one template filter.
	if x := d.sbank.Ingests(); x != d.lastIngests {
		rec.Count(MetricBankTransforms, x-d.lastIngests)
		d.lastIngests = x
	}
	if f := d.sbank.Scans(); f != d.lastScans {
		rec.Count(MetricBankFilters, f-d.lastScans)
		d.lastScans = f
	}
	if s := d.sbank.ShiftSubtracts(); s != d.lastShifts {
		rec.Count(MetricBankShiftSubtracts, s-d.lastShifts)
		d.lastShifts = s
	}
}

// searchTemplates runs one round's coarse search — every template's
// matched filtering plus suppressed-peak scan — and returns the winning
// candidate (t == -1 when every sample of every template is suppressed or
// zero). With more than one worker the bank is split into contiguous
// chunks, each scanned by its own goroutine with per-worker scratch; the
// in-order reduce keeps the result identical to the serial ascending scan
// regardless of scheduling.
func (d *Detector) searchTemplates(spectral bool) (candidate, error) {
	nw := min(len(d.workers), len(d.templates))
	if nw <= 1 {
		return d.scanRange(&d.workers[0], 0, len(d.templates), spectral)
	}
	results := make([]candidate, nw)
	errs := make([]error, nw)
	var wg sync.WaitGroup
	chunk := (len(d.templates) + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(d.templates))
		if lo >= hi {
			results[w] = candidate{t: -1}
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			results[w], errs[w] = d.scanRange(&d.workers[w], lo, hi, spectral)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return candidate{t: -1}, err
		}
	}
	best := candidate{t: -1}
	for _, c := range results {
		if c.better(best) {
			best = c
		}
	}
	return best, nil
}

// scanRange scans templates [lo, hi) and returns the chunk's best
// candidate. It only reads detector state shared across workers (skipQ,
// centers, the banks' read-only plan state) and mutates nothing but the
// worker's own scratch.
func (d *Detector) scanRange(w *detectWorker, lo, hi int, spectral bool) (candidate, error) {
	n := d.cirLen * d.cfg.Upsample
	best := candidate{t: -1}
	for t := lo; t < hi; t++ {
		w.skip = appendShifted(w.skip[:0], d.skipQ, d.centers[t], n)
		var (
			idx int
			sq  float64
			y3  [3]complex128
			err error
		)
		if spectral {
			idx, sq, y3, err = d.sbank.ScanBest(w.sscratch, t, w.skip)
		} else {
			idx, sq, y3, err = d.fbank.FilterPeak(w.fscratch, t, w.skip)
		}
		if err != nil {
			return best, err
		}
		if idx < 0 {
			if d.roundScores != nil {
				d.roundScores[t] = 0
			}
			continue
		}
		if d.roundScores != nil {
			// Each worker owns its chunk's indices, so concurrent scans
			// never write the same slot.
			d.roundScores[t] = math.Sqrt(sq)
		}
		if c := (candidate{sq: sq, t: t, idx: idx, y3: y3}); c.better(best) {
			best = c
		}
	}
	return best, nil
}

// spectralSubtract mirrors the T_s-domain subtraction of
// alpha·s_t(·−peakPos) into the maintained up-sampled spectrum via the
// DFT shift theorem. The spectral amplitude rescales α̂ from the
// T_s-domain template-energy convention to the bank's unit-energy
// up-sampled templates (the inverse of gridAmplitudeScale).
func (d *Detector) spectralSubtract(t int, alpha complex128, peakPos float64) error {
	shape := d.bank.Shape(t)
	normUp := shape.NormConstant(d.tsUp)
	normTs := shape.NormConstant(d.ts)
	if normUp == 0 {
		return fmt.Errorf("core: template %d has zero energy at the up-sampled rate", t)
	}
	amp := alpha * complex(normTs/normUp, 0)
	finePos := peakPos * float64(d.cfg.Upsample)
	// The bank's tail-correction prefix needs the time-domain subtraction
	// too, but only when the pulse support reaches the window start.
	var eval func(int) complex128
	if finePos-shape.SupportHalfWidth()/d.tsUp < float64(d.sbank.PrefixLen()) {
		scale := alpha * complex(normTs, 0)
		eval = func(x int) complex128 {
			return scale * complex(shape.Eval((float64(x)-finePos)*d.tsUp), 0)
		}
	}
	return d.sbank.ShiftSubtract(t, amp, finePos, eval)
}

// suppressionRadius is how close (in CIR samples T_s) a new candidate
// peak may sit to an already-extracted one. Sub-sample delay estimation
// error leaves a small subtraction residual exactly at the extracted
// position; without this guard a high-SNR run re-detects it as a phantom
// responder. Half a CIR sample is far tighter than any resolvable
// response separation, so genuine overlapping responses are unaffected.
const suppressionRadius = 0.5

// appendSuppressedIntervals appends the suppressed index ranges implied
// by the extracted positions, merged into ascending disjoint intervals —
// O(k log k) once per round instead of re-checking every extracted
// position for every sample of every template. Intervals live in q-space,
// q = output index + template center, which is template-independent;
// appendShifted rebases them per template. Membership is decided by
// probing the exact floating-point predicate the per-sample scan used —
// |q/U − p| < suppressionRadius — so interval-based scans are
// bit-identical to it (TestSuppressedIntervalsMatchNaive).
func appendSuppressedIntervals(dst []dsp.SkipInterval, extracted []float64, upsample int) []dsp.SkipInterval {
	U := float64(upsample)
	for _, p := range extracted {
		// Approximate endpoints with two samples of slack, then tighten
		// with the exact predicate (the region is contiguous: q/U is
		// monotone in q, so |q/U − p| is unimodal).
		lo := int(math.Ceil((p-suppressionRadius)*U)) - 2
		hi := int(math.Floor((p+suppressionRadius)*U)) + 2
		for lo <= hi && math.Abs(float64(lo)/U-p) >= suppressionRadius {
			lo++
		}
		for hi >= lo && math.Abs(float64(hi)/U-p) >= suppressionRadius {
			hi--
		}
		if lo > hi {
			continue
		}
		dst = append(dst, dsp.SkipInterval{Lo: lo, Hi: hi})
	}
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && dst[j].Lo < dst[j-1].Lo; j-- {
			dst[j], dst[j-1] = dst[j-1], dst[j]
		}
	}
	out := dst[:0]
	for _, iv := range dst {
		if n := len(out); n > 0 && iv.Lo <= out[n-1].Hi+1 {
			out[n-1].Hi = max(out[n-1].Hi, iv.Hi)
			continue
		}
		out = append(out, iv)
	}
	return out
}

// appendShifted rebases q-space skip intervals into output-index space
// for a template with the given center, clamped to outputs [0, n).
func appendShifted(dst, skipQ []dsp.SkipInterval, center, n int) []dsp.SkipInterval {
	for _, iv := range skipQ {
		lo, hi := iv.Lo-center, iv.Hi-center
		if hi < 0 || lo >= n {
			continue
		}
		dst = append(dst, dsp.SkipInterval{Lo: max(lo, 0), Hi: min(hi, n-1)})
	}
	return dst
}

// maxOutsideSuppression returns the index and magnitude of the largest
// |y| (an up-sampled-domain matched-filter output) whose implied peak
// position is not suppressed, given the round's precomputed q-space
// intervals. It returns (-1, 0) when everything is suppressed. Detect's
// hot path fuses this scan into the banks' inverse-FFT output pass
// (FilterPeak/ScanBest); this standalone form remains as the readable
// reference the fused scans are tested against.
func (d *Detector) maxOutsideSuppression(y []complex128, center int, skipQ []dsp.SkipInterval) (int, float64) {
	bestIdx, bestSq := -1, 0.0
	si := 0
	for i := 0; i < len(y); i++ {
		q := i + center
		for si < len(skipQ) && skipQ[si].Hi < q {
			si++
		}
		if si < len(skipQ) && skipQ[si].Lo <= q {
			i = skipQ[si].Hi - center // loop increment moves past the interval
			continue
		}
		v := y[i]
		sq := real(v)*real(v) + imag(v)*imag(v)
		if sq > bestSq {
			bestIdx, bestSq = i, sq
		}
	}
	if bestIdx < 0 {
		return -1, 0
	}
	return bestIdx, math.Sqrt(bestSq)
}

// gridAmplitudeScale converts a matched-filter output sample (templates
// are unit-energy at the up-sampled rate) into the T_s-domain amplitude
// convention the subtraction and the rest of the pipeline use.
func (d *Detector) gridAmplitudeScale(tmplIdx int) float64 {
	shape := d.bank.Shape(tmplIdx)
	normUp := shape.NormConstant(d.tsUp)
	normTs := shape.NormConstant(d.ts)
	if normTs == 0 {
		return 0
	}
	return normUp / normTs
}

// interpolateY3 returns the fractional offset of the magnitude peak from
// the three matched-filter output samples centered on index idx, via the
// same three-point parabolic fit the full-output scan used (zero at the
// output boundaries, where no window exists).
func (d *Detector) interpolateY3(y3 [3]complex128, idx int) float64 {
	if idx <= 0 || idx >= d.cirLen*d.cfg.Upsample-1 {
		return 0
	}
	window := []float64{cmplx.Abs(y3[0]), cmplx.Abs(y3[1]), cmplx.Abs(y3[2])}
	return dsp.InterpolatePeak(window, 1)
}

// projectAmplitude computes the least-squares amplitude of the template
// (as rendered by RenderInto, i.e. discretely unit-energy) located at the
// fractional peak position, against the current residual. The second
// return value is the projection score |<r,s>|²/‖s‖², the amount of
// residual energy the subtraction will remove.
func (d *Detector) projectAmplitude(residual []complex128, tmplIdx int, peakPos float64) (complex128, float64) {
	shape := d.bank.Shape(tmplIdx)
	norm := shape.NormConstant(d.ts)
	if norm == 0 {
		return 0, 0
	}
	halfSamples := shape.SupportHalfWidth() / d.ts
	lo := max(int(peakPos-halfSamples), 0)
	hi := min(int(peakPos+halfSamples)+1, len(residual)-1)
	var num complex128
	var den float64
	for n := lo; n <= hi; n++ {
		v := norm * shape.Eval((float64(n)-peakPos)*d.ts)
		num += residual[n] * complex(v, 0)
		den += v * v
	}
	if den == 0 {
		return 0, 0
	}
	score := (real(num)*real(num) + imag(num)*imag(num)) / den
	return num * complex(1/den, 0), score
}

// refinePeak maximizes the projection score over the peak position (in
// T_s samples) in a bracket of ±1 up-sampled sample around the coarse
// estimate using a golden-section search, and returns the refined
// position together with its least-squares amplitude and the number of
// search steps taken (for the instrumentation layer).
func (d *Detector) refinePeak(residual []complex128, tmplIdx int, coarse float64) (float64, complex128, int) {
	const golden = 0.6180339887498949
	half := 1 / float64(d.cfg.Upsample)
	lo, hi := coarse-half, coarse+half
	x1 := hi - golden*(hi-lo)
	x2 := lo + golden*(hi-lo)
	_, f1 := d.projectAmplitude(residual, tmplIdx, x1)
	_, f2 := d.projectAmplitude(residual, tmplIdx, x2)
	steps := 0
	for i := 0; i < 40 && hi-lo > 1e-7; i++ {
		steps++
		if f1 < f2 {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + golden*(hi-lo)
			_, f2 = d.projectAmplitude(residual, tmplIdx, x2)
		} else {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - golden*(hi-lo)
			_, f1 = d.projectAmplitude(residual, tmplIdx, x1)
		}
	}
	pos := (lo + hi) / 2
	alpha, _ := d.projectAmplitude(residual, tmplIdx, pos)
	return pos, alpha, steps
}

// MatchedFilterOutputs returns |y_i| for every template against the given
// CIR taps, in the up-sampled domain — the curves of the paper's Fig. 4b
// and Fig. 6b. The second return value is the up-sampled tap spacing.
// Like Detect it uses (and may rebuild) the cached plans, so it is not
// safe to call concurrently with other methods.
func (d *Detector) MatchedFilterOutputs(taps []complex128) ([][]float64, float64, error) {
	if len(taps) == 0 {
		return nil, 0, fmt.Errorf("core: empty CIR")
	}
	if err := d.ensureState(len(taps)); err != nil {
		return nil, 0, err
	}
	up := d.upsample.Execute(d.up, taps)
	if err := d.fbank.Transform(up); err != nil {
		return nil, 0, err
	}
	out := make([][]float64, len(d.templates))
	for t := range d.templates {
		y, err := d.fbank.FilterInto(d.yCur, t)
		if err != nil {
			return nil, 0, err
		}
		out[t] = dsp.Abs(y)
	}
	return out, d.tsUp, nil
}

func sortResponsesByDelay(rs []Response) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Delay < rs[j-1].Delay; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
