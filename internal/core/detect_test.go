package core

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

const ts = dw1000.SampleInterval

// pulseAt describes one synthetic response for test CIRs.
type pulseAt struct {
	shape pulse.Shape
	delay float64 // seconds relative to tap 0 (peak position)
	amp   complex128
}

// makeCIR renders the given pulses plus complex white noise of the given
// RMS into a 1016-tap CIR.
func makeCIR(t *testing.T, pulses []pulseAt, noiseRMS float64, seed uint64) []complex128 {
	t.Helper()
	taps := make([]complex128, dw1000.CIRLength)
	for _, p := range pulses {
		p.shape.RenderInto(taps, p.amp, p.delay/ts, ts)
	}
	if noiseRMS > 0 {
		rng := rand.New(rand.NewPCG(seed, 17))
		sigma := noiseRMS / math.Sqrt2
		for i := range taps {
			taps[i] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
		}
	}
	return taps
}

func shapeFor(t *testing.T, reg byte) pulse.Shape {
	t.Helper()
	s, err := pulse.ForRegister(reg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newTestDetector(t *testing.T, nShapes int, cfg DetectorConfig) *Detector {
	t.Helper()
	bank, err := pulse.DefaultBank(ts, nShapes)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDetector(bank, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDetectorValidation(t *testing.T) {
	bank, _ := pulse.DefaultBank(ts, 1)
	if _, err := NewDetector(nil, DetectorConfig{}); err == nil {
		t.Error("nil bank accepted")
	}
	if _, err := NewDetector(bank, DetectorConfig{Upsample: -1}); err == nil {
		t.Error("negative upsample accepted")
	}
	if _, err := NewDetector(bank, DetectorConfig{ThresholdFactor: -2}); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := NewDetector(bank, DetectorConfig{MaxResponses: -1}); err == nil {
		t.Error("negative MaxResponses accepted")
	}
	if _, err := NewDetector(bank, DetectorConfig{DisableThreshold: true}); err == nil {
		t.Error("automatic mode without threshold accepted")
	}
	d, err := NewDetector(bank, DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := d.Config()
	if cfg.Upsample != DefaultUpsample || cfg.ThresholdFactor != DefaultThresholdFactor ||
		cfg.MaxIterations != DefaultMaxIterations {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestDetectSinglePulse(t *testing.T) {
	const noise = 1e-4
	s1 := shapeFor(t, pulse.RegisterS1)
	amp := complex(0.02, 0.01)
	delay := 200.4 * ts
	taps := makeCIR(t, []pulseAt{{s1, delay, amp}}, noise, 1)
	d := newTestDetector(t, 1, DetectorConfig{})
	got, err := d.Detect(taps, noise)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("detected %d responses, want 1", len(got))
	}
	// Delay recovered within one up-sampled sample.
	if e := math.Abs(got[0].Delay - delay); e > ts/float64(DefaultUpsample) {
		t.Fatalf("delay error %g s", e)
	}
	// Amplitude magnitude within 10%.
	if e := math.Abs(got[0].Magnitude() - cmplx.Abs(amp)); e > 0.1*cmplx.Abs(amp) {
		t.Fatalf("amplitude %g, want %g", got[0].Magnitude(), cmplx.Abs(amp))
	}
}

func TestDetectThreeSeparatedResponses(t *testing.T) {
	// The Fig. 4 situation: three responders at 3/6/10 m from the
	// initiator produce three CIR peaks separated by the doubled extra
	// path delays.
	const noise = 2e-5
	s1 := shapeFor(t, pulse.RegisterS1)
	base := 12 * ts
	d2 := base + 2*(6-3)/2.99792458e8
	d3 := base + 2*(10-3)/2.99792458e8
	taps := makeCIR(t, []pulseAt{
		{s1, base, 12e-4},
		{s1, d2, 6e-4},
		{s1, d3, 3.5e-4},
	}, noise, 2)
	d := newTestDetector(t, 1, DetectorConfig{MaxResponses: 3})
	got, err := d.Detect(taps, noise)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("detected %d responses, want 3", len(got))
	}
	want := []float64{base, d2, d3}
	for i, w := range want {
		if e := math.Abs(got[i].Delay - w); e > ts/2 {
			t.Fatalf("response %d delay error %g", i, e)
		}
	}
	// Sorted ascending regardless of amplitude order.
	for i := 1; i < len(got); i++ {
		if got[i].Delay < got[i-1].Delay {
			t.Fatal("responses not sorted by delay")
		}
	}
}

func TestDetectAutomaticModeStopsAtNoise(t *testing.T) {
	// With MaxResponses = 0 the detector must find exactly the two real
	// responses and then stop at the noise floor (challenge I: run-time
	// automatic detection).
	const noise = 2e-5
	s1 := shapeFor(t, pulse.RegisterS1)
	taps := makeCIR(t, []pulseAt{
		{s1, 40 * ts, 9e-4},
		{s1, 300 * ts, 4e-4},
	}, noise, 3)
	d := newTestDetector(t, 1, DetectorConfig{})
	got, err := d.Detect(taps, noise)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("automatic mode found %d responses, want 2", len(got))
	}
}

func TestDetectAmplitudeIndependence(t *testing.T) {
	// Challenge IV: detection must work regardless of absolute amplitude.
	// A 30 dB weaker pair of responses is detected just as well.
	s1 := shapeFor(t, pulse.RegisterS1)
	for _, scale := range []float64{1, 0.03} {
		noise := 1e-6
		taps := makeCIR(t, []pulseAt{
			{s1, 50 * ts, complex(2e-3*scale, 0)},
			{s1, 90 * ts, complex(1e-3*scale, 0)},
		}, noise, 4)
		d := newTestDetector(t, 1, DetectorConfig{})
		got, err := d.Detect(taps, noise)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 {
			t.Fatalf("scale %g: found %d responses, want 2", scale, len(got))
		}
	}
}

func TestDetectWeakerResponseBeforeStrongMultipath(t *testing.T) {
	// Challenge IV continued: a responder whose direct path is weaker
	// than another responder's multipath must still be detected; the
	// detector reports peaks by delay, not by assuming amplitude order.
	const noise = 1e-5
	s1 := shapeFor(t, pulse.RegisterS1)
	taps := makeCIR(t, []pulseAt{
		{s1, 30 * ts, 3e-4},  // weak direct path of responder A
		{s1, 120 * ts, 9e-4}, // strong responder B
	}, noise, 5)
	d := newTestDetector(t, 1, DetectorConfig{MaxResponses: 2})
	got, err := d.Detect(taps, noise)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("found %d", len(got))
	}
	if got[0].Delay > got[1].Delay {
		t.Fatal("not sorted")
	}
	if got[0].Magnitude() >= got[1].Magnitude() {
		t.Fatal("test setup broken: first response should be the weak one")
	}
}

func TestDetectOverlappingResponses(t *testing.T) {
	// Sect. VI: two responders at the same distance whose responses
	// overlap within a pulse duration. Search and subtract must resolve
	// both.
	const noise = 1e-5
	s1 := shapeFor(t, pulse.RegisterS1)
	base := 60 * ts
	sep := 2.5 * ts // well inside one pulse duration (~9 samples)
	taps := makeCIR(t, []pulseAt{
		{s1, base, complex(8e-4, 0)},
		{s1, base + sep, complex(0, 6.5e-4)},
	}, noise, 6)
	d := newTestDetector(t, 1, DetectorConfig{MaxResponses: 2, Upsample: 8})
	got, err := d.Detect(taps, noise)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("found %d responses, want 2", len(got))
	}
	if e := math.Abs(got[1].Delay - got[0].Delay - sep); e > ts {
		t.Fatalf("separation error %g", e)
	}
}

func TestDetectIdentifiesPulseShapes(t *testing.T) {
	// Sect. V / Fig. 6: responders using different TC_PGDELAY values are
	// identified by the template with the maximum response amplitude.
	const noise = 1e-5
	s1 := shapeFor(t, pulse.RegisterS1)
	s3 := shapeFor(t, pulse.RegisterS3)
	taps := makeCIR(t, []pulseAt{
		{s1, 40 * ts, 10e-4}, // responder 1: default shape (4 m)
		{s3, 80 * ts, 5e-4},  // responder 2: wide shape (10 m)
	}, noise, 7)
	d := newTestDetector(t, 3, DetectorConfig{MaxResponses: 2})
	got, err := d.Detect(taps, noise)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("found %d responses", len(got))
	}
	if got[0].TemplateIndex != 0 {
		t.Fatalf("first response identified as template %d, want 0 (s1)", got[0].TemplateIndex)
	}
	if got[1].TemplateIndex != 2 {
		t.Fatalf("second response identified as template %d, want 2 (s3)", got[1].TemplateIndex)
	}
}

func TestDetectErrors(t *testing.T) {
	d := newTestDetector(t, 1, DetectorConfig{})
	if _, err := d.Detect(nil, 1e-5); err == nil {
		t.Error("empty CIR accepted")
	}
	if _, err := d.Detect(make([]complex128, 64), 0); err == nil {
		t.Error("zero noise RMS accepted for thresholded detection")
	}
}

func TestDetectEmptyCIRYieldsNothing(t *testing.T) {
	taps := makeCIR(t, nil, 1e-5, 8)
	d := newTestDetector(t, 1, DetectorConfig{})
	got, err := d.Detect(taps, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("noise-only CIR produced %d responses", len(got))
	}
}

func TestMatchedFilterOutputs(t *testing.T) {
	const noise = 1e-5
	s1 := shapeFor(t, pulse.RegisterS1)
	taps := makeCIR(t, []pulseAt{{s1, 100 * ts, 1e-3}}, noise, 9)
	d := newTestDetector(t, 3, DetectorConfig{})
	outs, tsUp, err := d.MatchedFilterOutputs(taps)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("outputs for %d templates", len(outs))
	}
	if tsUp != ts/DefaultUpsample {
		t.Fatalf("tsUp = %g", tsUp)
	}
	// The matched template's peak must beat the mismatched ones.
	peak := func(v []float64) float64 {
		m := 0.0
		for _, x := range v {
			m = math.Max(m, x)
		}
		return m
	}
	if peak(outs[0]) <= peak(outs[1]) || peak(outs[0]) <= peak(outs[2]) {
		t.Fatal("matched template does not have the strongest response")
	}
}
