package core

import (
	"encoding/binary"
	"math"
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

// FuzzDetect feeds arbitrary CIRs through the search-and-subtract
// detector: it must never panic, always terminate, and always return
// delay-sorted responses with finite fields.
func FuzzDetect(f *testing.F) {
	f.Add(make([]byte, 1016*4))
	f.Add([]byte{0xff, 0x10, 0x22})
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 8
		if n == 0 {
			t.Skip()
		}
		if n > 1016 {
			n = 1016
		}
		taps := make([]complex128, n)
		for i := 0; i < n; i++ {
			re := math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
			if math.IsNaN(re) || math.IsInf(re, 0) {
				t.Skip()
			}
			re = math.Max(-1e3, math.Min(1e3, re))
			taps[i] = complex(re, 0)
		}
		bank, err := pulse.DefaultBank(1.0016e-9, 2)
		if err != nil {
			t.Fatal(err)
		}
		det, err := NewDetector(bank, DetectorConfig{MaxIterations: 8})
		if err != nil {
			t.Fatal(err)
		}
		responses, err := det.Detect(taps, 1e-5)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range responses {
			if math.IsNaN(r.Delay) || math.IsInf(r.Delay, 0) {
				t.Fatalf("non-finite delay %v", r.Delay)
			}
			if i > 0 && responses[i].Delay < responses[i-1].Delay {
				t.Fatal("responses not sorted")
			}
			if r.TemplateIndex < 0 || r.TemplateIndex >= bank.Len() {
				t.Fatalf("template index %d out of range", r.TemplateIndex)
			}
		}
	})
}

// FuzzSlotPlan checks Assign/IDFor/SlotOf consistency on arbitrary plans.
func FuzzSlotPlan(f *testing.F) {
	f.Add(uint8(4), uint8(3), uint16(7))
	f.Fuzz(func(t *testing.T, slots, shapes uint8, id uint16) {
		plan := SlotPlan{
			NumSlots:  int(slots%32) + 1,
			NumShapes: int(shapes%16) + 1,
		}
		plan.SlotWidth = MaxSlotDelay / float64(plan.NumSlots)
		if err := plan.Validate(); err != nil {
			t.Fatal(err)
		}
		rid := int(id) % plan.Capacity()
		slot, shape, err := plan.Assign(rid)
		if err != nil {
			t.Fatal(err)
		}
		back, err := plan.IDFor(slot, shape)
		if err != nil || back != rid {
			t.Fatalf("round trip %d -> (%d,%d) -> %d (%v)", rid, slot, shape, back, err)
		}
		if got := plan.SlotOf(plan.ExtraDelay(slot)); got != slot {
			t.Fatalf("SlotOf(nominal position of %d) = %d", slot, got)
		}
	})
}
