package core_test

// Golden equivalence test for the frequency-domain detector path: the
// expected responses below were captured from the seed (pre-plan-cache)
// implementation of Detector.Detect on fixed-seed CIRs. The cached
// FFT-plan execution path must reproduce every delay, complex amplitude
// and template index to within 1e-9 relative, so all reproduced tables
// and figures are unchanged.

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/geom"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
	"github.com/uwb-sim/concurrent-ranging/internal/sim"
)

const goldenTs = dw1000.SampleInterval

type goldenPulse struct {
	reg   byte
	delay float64 // seconds
	amp   complex128
}

type goldenResponse struct {
	delay         float64
	amp           complex128
	templateIndex int
}

// goldenCIR renders pulses plus fixed-seed complex white noise into a full
// accumulator window, exactly as the seed capture program did.
func goldenCIR(t *testing.T, pulses []goldenPulse, noiseRMS float64, seed uint64) []complex128 {
	t.Helper()
	taps := make([]complex128, dw1000.CIRLength)
	for _, p := range pulses {
		s, err := pulse.ForRegister(p.reg)
		if err != nil {
			t.Fatal(err)
		}
		s.RenderInto(taps, p.amp, p.delay/goldenTs, goldenTs)
	}
	rng := rand.New(rand.NewPCG(seed, 17))
	sigma := noiseRMS / math.Sqrt2
	for i := range taps {
		taps[i] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	return taps
}

// goldenSimCIR regenerates the three-responder hallway reception the
// micro-benchmarks use (seed 5), through the full radio model.
func goldenSimCIR(t testing.TB) []complex128 {
	t.Helper()
	net, err := sim.NewNetwork(sim.NetworkConfig{Environment: channel.Hallway(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	init, err := net.AddNode(sim.NodeConfig{ID: -1, Name: "init", Pos: geom.Point{X: 2, Y: 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	var resps []*sim.Node
	for j, d := range []float64{3, 6, 10} {
		n, err := net.AddNode(sim.NodeConfig{ID: j, Pos: geom.Point{X: 2 + d, Y: 0.9}})
		if err != nil {
			t.Fatal(err)
		}
		resps = append(resps, n)
	}
	round, err := net.RunConcurrentRound(init, resps, sim.RoundConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return round.Reception.CIR.Taps
}

// relClose reports |a-b| ≤ tol·max(|a|,|b|) with an absolute floor for
// values near zero.
func relClose(a, b, tol float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= tol*scale
}

func checkGolden(t *testing.T, got []core.Response, want []goldenResponse) {
	t.Helper()
	const tol = 1e-9
	if len(got) != len(want) {
		t.Fatalf("detected %d responses, want %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.TemplateIndex != w.templateIndex {
			t.Errorf("response %d: template %d, want %d", i, g.TemplateIndex, w.templateIndex)
		}
		if !relClose(g.Delay, w.delay, tol) {
			t.Errorf("response %d: delay %.17g, want %.17g", i, g.Delay, w.delay)
		}
		if d := cmplx.Abs(g.Amplitude - w.amp); d > tol*math.Max(1, cmplx.Abs(w.amp)) {
			t.Errorf("response %d: amplitude %v, want %v (|Δ| = %g)", i, g.Amplitude, w.amp, d)
		}
	}
}

func goldenDetect(t *testing.T, nShapes int, cfg core.DetectorConfig, taps []complex128, noiseRMS float64) []core.Response {
	t.Helper()
	bank, err := pulse.DefaultBank(goldenTs, nShapes)
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.NewDetector(bank, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := det.Detect(taps, noiseRMS)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestDetectGoldenSinglePulse(t *testing.T) {
	taps := goldenCIR(t, []goldenPulse{
		{pulse.RegisterS1, 200.4 * goldenTs, complex(0.02, 0.01)},
	}, 1e-4, 1)
	got := goldenDetect(t, 1, core.DetectorConfig{}, taps, 1e-4)
	checkGolden(t, got, []goldenResponse{
		{2.0072132152751607e-07, complex(0.020040219260835622, 0.010097389108172292), 0},
	})
}

func TestDetectGoldenThreeResponses(t *testing.T) {
	base := 12 * goldenTs
	d2 := base + 2*(6-3)/2.99792458e8
	d3 := base + 2*(10-3)/2.99792458e8
	taps := goldenCIR(t, []goldenPulse{
		{pulse.RegisterS1, base, 12e-4},
		{pulse.RegisterS1, d2, 6e-4},
		{pulse.RegisterS1, d3, 3.5e-4},
	}, 2e-5, 2)
	got := goldenDetect(t, 1, core.DetectorConfig{MaxResponses: 3}, taps, 2e-5)
	checkGolden(t, got, []goldenResponse{
		{1.2019610535847272e-08, complex(0.001215882571204203, -4.1233393526067649e-06), 0},
		{3.2049331344670783e-08, complex(0.00061844704693786131, 2.449675606206834e-05), 0},
		{5.8698604183094544e-08, complex(0.00037565867037079871, -5.599672918645878e-06), 0},
	})
}

func TestDetectGoldenOverlappingResponses(t *testing.T) {
	taps := goldenCIR(t, []goldenPulse{
		{pulse.RegisterS1, 60 * goldenTs, complex(8e-4, 0)},
		{pulse.RegisterS1, 60*goldenTs + 2.5*goldenTs, complex(0, 6.5e-4)},
	}, 1e-5, 6)
	got := goldenDetect(t, 1, core.DetectorConfig{MaxResponses: 2, Upsample: 8}, taps, 1e-5)
	checkGolden(t, got, []goldenResponse{
		{6.0098422268174743e-08, complex(0.00079868186230093853, 2.857124145983888e-05), 0},
		{6.2596906161984785e-08, complex(1.0908552504487728e-06, 0.00064758861166934933), 0},
	})
}

func TestDetectGoldenPulseShapes(t *testing.T) {
	taps := goldenCIR(t, []goldenPulse{
		{pulse.RegisterS1, 40 * goldenTs, 10e-4},
		{pulse.RegisterS3, 80 * goldenTs, 5e-4},
	}, 1e-5, 7)
	got := goldenDetect(t, 3, core.DetectorConfig{MaxResponses: 2}, taps, 1e-5)
	checkGolden(t, got, []goldenResponse{
		{4.0061435255845283e-08, complex(0.00099856987663278019, -6.6137428194777506e-06), 0},
		{8.0133731586990257e-08, complex(0.00050184506221089009, 2.7384997949738152e-06), 2},
	})
}

func TestDetectGoldenGridMode(t *testing.T) {
	// DisableRefinement exercises the literal Sect. IV steps 3–5 path and
	// its grid-amplitude rescaling.
	taps := goldenCIR(t, []goldenPulse{
		{pulse.RegisterS1, 40 * goldenTs, 10e-4},
		{pulse.RegisterS3, 80 * goldenTs, 5e-4},
	}, 1e-5, 7)
	got := goldenDetect(t, 3, core.DetectorConfig{MaxResponses: 2, DisableRefinement: true}, taps, 1e-5)
	checkGolden(t, got, []goldenResponse{
		{4.0064102564102562e-08, complex(0.00099964417198535505, -6.7312463625603998e-06), 0},
		{8.0128205128205124e-08, complex(0.0005018347501337477, 2.6972734517561695e-06), 2},
	})
}

func TestDetectGoldenSimulatedReception(t *testing.T) {
	// Full radio model: three responders in the hallway environment at
	// seed 5, automatic-mode detection with the 3-shape bank — twelve
	// responses including multipath.
	got := goldenDetect(t, 3, core.DetectorConfig{}, goldenSimCIR(t), dw1000.DefaultNoiseRMS)
	checkGolden(t, got, []goldenResponse{
		{1.2038150725876326e-08, complex(0.0012021287477320529, 0.00041898577719392041), 0},
		{1.3573997379875022e-08, complex(-3.3419807534898176e-05, 0.00022710093528354762), 0},
		{1.51696393706246e-08, complex(4.5342550338300668e-05, -7.502880526935337e-05), 0},
		{1.6043970231748398e-08, complex(0.00019650983027835002, 9.150094037137181e-05), 0},
		{2.5362744985633823e-08, complex(-0.00013242863994480009, 3.8084201754303873e-05), 0},
		{3.0048681468088261e-08, complex(0.00045035452879003588, 0.00046889992733087658), 0},
		{3.1104798515923276e-08, complex(-0.00012627495434151446, 4.0735479618429582e-05), 0},
		{3.2404715627352897e-08, complex(3.4957553915006694e-05, -0.00016012557169606264), 0},
		{3.5391792425010325e-08, complex(-8.9065271892079802e-05, 7.8742410977037679e-05), 0},
		{3.7753025856320761e-08, complex(0.00012615254191286946, -2.5901762129529189e-05), 0},
		{5.9255464977536762e-08, complex(-0.0003884678446840061, -5.7790344548168866e-05), 0},
		{6.0645197191381825e-08, complex(0.00010808099717253443, 3.6598220289281036e-05), 0},
	})
}

func TestDetectRepeatedCallsAreDeterministic(t *testing.T) {
	// The cached scratch state must not leak between calls: detecting the
	// same CIR twice — with a differently-sized detection in between to
	// force a plan rebuild — returns identical responses.
	taps := goldenCIR(t, []goldenPulse{
		{pulse.RegisterS1, 40 * goldenTs, 10e-4},
		{pulse.RegisterS3, 80 * goldenTs, 5e-4},
	}, 1e-5, 7)
	bank, err := pulse.DefaultBank(goldenTs, 3)
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.NewDetector(bank, core.DetectorConfig{MaxResponses: 2})
	if err != nil {
		t.Fatal(err)
	}
	first, err := det.Detect(taps, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Detect(taps[:512], 1e-5); err != nil {
		t.Fatal(err)
	}
	second, err := det.Detect(taps, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("%d then %d responses", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("response %d: %+v then %+v", i, first[i], second[i])
		}
	}
}
