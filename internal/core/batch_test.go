package core

import (
	"math"
	"math/rand/v2"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

// makeBatchCIR is makeCIR with a selectable CIR length.
func makeBatchCIR(t *testing.T, n int, pulses []pulseAt, noiseRMS float64, seed uint64) []complex128 {
	t.Helper()
	taps := make([]complex128, n)
	for _, p := range pulses {
		p.shape.RenderInto(taps, p.amp, p.delay/ts, ts)
	}
	if noiseRMS > 0 {
		rng := rand.New(rand.NewPCG(seed, 17))
		sigma := noiseRMS / math.Sqrt2
		for i := range taps {
			taps[i] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
		}
	}
	return taps
}

// batchStreamInputs builds a deterministic stream of same-length CIRs with
// one or two responders each.
func batchStreamInputs(t *testing.T, bank *pulse.Bank, n, count int, noise float64) []BatchInput {
	t.Helper()
	inputs := make([]BatchInput, count)
	for i := range inputs {
		pulses := []pulseAt{{
			shape: bank.Shape(i % bank.Len()),
			delay: (120 + 37*float64(i%16)) * ts,
			amp:   complex(0.02, 0.008),
		}}
		if i%3 == 0 {
			pulses = append(pulses, pulseAt{
				shape: bank.Shape((i + 1) % bank.Len()),
				delay: (520 + 11*float64(i%9)) * ts,
				amp:   complex(-0.012, 0.015),
			})
		}
		inputs[i] = BatchInput{
			Taps:     makeBatchCIR(t, n, pulses, noise, uint64(i)+1),
			NoiseRMS: noise,
		}
	}
	return inputs
}

func newTestBank(t *testing.T, nShapes int) *pulse.Bank {
	t.Helper()
	bank, err := pulse.DefaultBank(ts, nShapes)
	if err != nil {
		t.Fatal(err)
	}
	return bank
}

// requireSameResponses asserts bit-identical response sets.
func requireSameResponses(t *testing.T, label string, got, want []Response) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d responses, want %d", label, len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("%s: response %d = %+v, want %+v", label, k, got[k], want[k])
		}
	}
}

func TestDetectBatchMatchesDetectAtAnyWorkerCount(t *testing.T) {
	const noise = 1e-4
	for _, tc := range []struct {
		name   string
		shapes int
		cfg    DetectorConfig
	}{
		{"spectral", 8, DetectorConfig{Mode: ModeSpectral}},
		{"reference", 3, DetectorConfig{Mode: ModeReference}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bank := newTestBank(t, tc.shapes)
			inputs := batchStreamInputs(t, bank, dw1000.CIRLength, 7, noise)
			// The sequential ground truth: one detector, one Detect per CIR.
			ref, err := NewDetector(bank, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := make([][]Response, len(inputs))
			for i, in := range inputs {
				if want[i], err = ref.Detect(in.Taps, in.NoiseRMS); err != nil {
					t.Fatal(err)
				}
			}
			for _, workers := range []int{1, 2, 3, 5} {
				eng, err := NewBatchDetector(bank, tc.cfg, workers)
				if err != nil {
					t.Fatal(err)
				}
				res := eng.DetectBatch(inputs)
				if len(res) != len(inputs) {
					t.Fatalf("workers=%d: %d results, want %d", workers, len(res), len(inputs))
				}
				for i := range res {
					if res[i].Err != nil {
						t.Fatalf("workers=%d item %d: %v", workers, i, res[i].Err)
					}
					requireSameResponses(t, tc.name, res[i].Responses, want[i])
				}
				// A second batch through the same engine reuses all state
				// and must still be bit-identical.
				res = eng.DetectBatch(inputs)
				for i := range res {
					requireSameResponses(t, tc.name+" second batch", res[i].Responses, want[i])
				}
				eng.Close()
			}
		})
	}
}

func TestDetectBatchDegenerateInputs(t *testing.T) {
	const noise = 1e-4
	bank := newTestBank(t, 8)
	cfg := DetectorConfig{Mode: ModeSpectral}
	eng, err := NewBatchDetector(bank, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	if res := eng.DetectBatch(nil); len(res) != 0 {
		t.Fatalf("empty batch returned %d results", len(res))
	}

	ref, err := NewDetector(bank, cfg)
	if err != nil {
		t.Fatal(err)
	}
	one := batchStreamInputs(t, bank, dw1000.CIRLength, 1, noise)
	want, err := ref.Detect(one[0].Taps, one[0].NoiseRMS)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.DetectBatch(one)
	if len(res) != 1 || res[0].Err != nil {
		t.Fatalf("batch of one: %+v", res)
	}
	requireSameResponses(t, "batch of one", res[0].Responses, want)

	// An all-zero CIR suppresses every candidate (maxOutsideSuppression
	// returns -1 through the fused scans): zero responses, no error.
	zero := []BatchInput{{Taps: make([]complex128, dw1000.CIRLength), NoiseRMS: noise}}
	res = eng.DetectBatch(zero)
	if res[0].Err != nil || len(res[0].Responses) != 0 {
		t.Fatalf("all-zero CIR: %+v", res[0])
	}

	// Mixed CIR lengths in one batch, including a length too short for the
	// templates (a group-level dsp rejection) and an empty input; every
	// runnable item must match its own sequential Detect, unaffected by the
	// failures around it.
	long := batchStreamInputs(t, bank, dw1000.CIRLength, 2, noise)
	short := batchStreamInputs(t, bank, 512, 2, noise)
	mixed := []BatchInput{
		long[0],
		{Taps: make([]complex128, 4), NoiseRMS: noise}, // templates exceed the window
		short[0],
		{},      // empty CIR
		long[1], // same length as item 0: same group
		short[1],
	}
	res = eng.DetectBatch(mixed)
	if res[1].Err == nil || !strings.Contains(res[1].Err.Error(), "batch group") {
		t.Fatalf("too-short CIR error = %v", res[1].Err)
	}
	if res[3].Err == nil || !strings.Contains(res[3].Err.Error(), "empty CIR") {
		t.Fatalf("empty CIR error = %v", res[3].Err)
	}
	for _, i := range []int{0, 2, 4, 5} {
		if res[i].Err != nil {
			t.Fatalf("item %d: %v", i, res[i].Err)
		}
		want, err := ref.Detect(mixed[i].Taps, mixed[i].NoiseRMS)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResponses(t, "mixed lengths", res[i].Responses, want)
	}

	// A mid-batch item error (zero noise RMS under thresholded detection)
	// fails only that item.
	bad := []BatchInput{long[0], {Taps: long[1].Taps, NoiseRMS: 0}, long[1]}
	res = eng.DetectBatch(bad)
	if res[1].Err == nil || len(res[1].Responses) != 0 {
		t.Fatalf("mid-batch error: %+v", res[1])
	}
	for _, i := range []int{0, 2} {
		if res[i].Err != nil {
			t.Fatalf("neighbor %d failed: %v", i, res[i].Err)
		}
		want, err := ref.Detect(bad[i].Taps, bad[i].NoiseRMS)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResponses(t, "mid-batch neighbors", res[i].Responses, want)
	}
}

func TestDetectBatchProgressTicksPerProcessedItem(t *testing.T) {
	const noise = 1e-4
	bank := newTestBank(t, 8)
	eng, err := NewBatchDetector(bank, DetectorConfig{Mode: ModeSpectral}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// The callback runs concurrently from workers (the documented
	// contract), so the test tracks the high-water mark atomically.
	var maxDone atomic.Int64
	eng.SetProgress(func(done int) {
		for {
			cur := maxDone.Load()
			if int64(done) <= cur || maxDone.CompareAndSwap(cur, int64(done)) {
				return
			}
		}
	})
	inputs := batchStreamInputs(t, bank, dw1000.CIRLength, 5, noise)
	eng.DetectBatch(inputs)
	// The final Add lands after the last item, and DetectBatch has joined
	// every worker before returning.
	if got := maxDone.Load(); got != int64(len(inputs)) {
		t.Fatalf("progress reached %d, want %d", got, len(inputs))
	}
}

func TestDetectBatchZeroAllocSteadyState(t *testing.T) {
	const noise = 1e-4
	bank := newTestBank(t, 8)
	eng, err := NewBatchDetector(bank, DetectorConfig{Mode: ModeSpectral}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	inputs := batchStreamInputs(t, bank, dw1000.CIRLength, 4, noise)
	eng.DetectBatch(inputs) // warm every arena, detector, and plan cache
	allocs := testing.AllocsPerRun(5, func() {
		eng.DetectBatch(inputs)
	})
	if allocs != 0 {
		t.Fatalf("steady-state DetectBatch allocates %.1f objects per call, want 0", allocs)
	}
}

func BenchmarkDetectBatch(b *testing.B) {
	const noise = 1e-4
	bank, err := pulse.DefaultBank(ts, 8)
	if err != nil {
		b.Fatal(err)
	}
	inputs := make([]BatchInput, 8)
	for i := range inputs {
		taps := make([]complex128, dw1000.CIRLength)
		bank.Shape(i%bank.Len()).RenderInto(taps, complex(0.02, 0.008), 150+40*float64(i), ts)
		inputs[i] = BatchInput{Taps: taps, NoiseRMS: noise}
	}
	eng, err := NewBatchDetector(bank, DetectorConfig{Mode: ModeSpectral, MaxResponses: 1}, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	eng.DetectBatch(inputs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.DetectBatch(inputs)
	}
	b.StopTimer()
	cirs := float64(len(inputs)) * float64(b.N)
	b.ReportMetric(cirs/b.Elapsed().Seconds(), "CIRs/s")
}
