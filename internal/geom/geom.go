// Package geom provides the 2-D geometry underlying the deterministic part
// of the UWB channel model: points, wall segments, floor plans, and the
// image (mirror-source) method used to enumerate specular multipath
// reflections as in Fig. 1a of the paper.
package geom

import (
	"fmt"
	"math"
)

// Point is a position in the 2-D floor plane, in meters.
type Point struct {
	X, Y float64
}

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// String formats the point with centimeter precision.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Segment is a directed line segment between two points.
type Segment struct {
	A, B Point
}

// Length returns the segment length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the segment midpoint.
func (s Segment) Midpoint() Point {
	return Point{(s.A.X + s.B.X) / 2, (s.A.Y + s.B.Y) / 2}
}

// Direction returns the (unnormalized) direction vector B-A.
func (s Segment) Direction() Point { return s.B.Sub(s.A) }

const intersectEps = 1e-12

// Intersect returns the intersection point of the two segments and true
// when they properly intersect (including endpoints). Collinear overlaps
// report false, as a wall grazing along a ray does not produce a specular
// reflection point.
func (s Segment) Intersect(o Segment) (Point, bool) {
	d1 := s.Direction()
	d2 := o.Direction()
	den := d1.Cross(d2)
	if math.Abs(den) < intersectEps {
		return Point{}, false
	}
	diff := o.A.Sub(s.A)
	t := diff.Cross(d2) / den
	u := diff.Cross(d1) / den
	if t < -intersectEps || t > 1+intersectEps || u < -intersectEps || u > 1+intersectEps {
		return Point{}, false
	}
	return s.A.Add(d1.Scale(t)), true
}

// IntersectStrict reports whether the two segments cross strictly in the
// interiors of both (no shared endpoints). Used for blocking tests so a
// ray ending exactly on a wall is not considered blocked by it.
func (s Segment) IntersectStrict(o Segment) bool {
	d1 := s.Direction()
	d2 := o.Direction()
	den := d1.Cross(d2)
	if math.Abs(den) < intersectEps {
		return false
	}
	diff := o.A.Sub(s.A)
	t := diff.Cross(d2) / den
	u := diff.Cross(d1) / den
	const inner = 1e-9
	return t > inner && t < 1-inner && u > inner && u < 1-inner
}

// MirrorAcross returns p mirrored across the infinite line through the
// segment. If the segment is degenerate (zero length), p is returned
// unchanged.
func (s Segment) MirrorAcross(p Point) Point {
	d := s.Direction()
	len2 := d.Dot(d)
	if len2 < intersectEps {
		return p
	}
	ap := p.Sub(s.A)
	t := ap.Dot(d) / len2
	foot := s.A.Add(d.Scale(t))
	return foot.Add(foot.Sub(p))
}
