package geom

import (
	"fmt"
	"math"
	"sort"
)

// Wall is a reflecting surface in the floor plan.
type Wall struct {
	// Seg is the wall geometry.
	Seg Segment
	// Reflectivity is the amplitude reflection coefficient in (0, 1].
	Reflectivity float64
	// Name labels the wall in traces and errors (optional).
	Name string
}

// Obstacle is a surface that attenuates rays passing through it (e.g. a
// cabinet or an interior partition), used to model attenuated-LOS and NLOS
// situations (the paper's Sect. VII motivation and future-work item).
type Obstacle struct {
	// Seg is the obstacle geometry.
	Seg Segment
	// TransmissionLossDB is the power loss a ray suffers when crossing, dB.
	TransmissionLossDB float64
	// Name labels the obstacle (optional).
	Name string
}

// FloorPlan is a set of reflecting walls and attenuating obstacles.
type FloorPlan struct {
	Walls     []Wall
	Obstacles []Obstacle
}

// Rectangle builds the paper's canonical environment (Fig. 1a): a
// rectangular room spanning (0,0)–(width,height) whose four walls share a
// single amplitude reflectivity.
func Rectangle(width, height, reflectivity float64) (*FloorPlan, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("geom: rectangle %gx%g must have positive dimensions", width, height)
	}
	if reflectivity <= 0 || reflectivity > 1 {
		return nil, fmt.Errorf("geom: reflectivity %g outside (0, 1]", reflectivity)
	}
	c := [4]Point{{0, 0}, {width, 0}, {width, height}, {0, height}}
	names := [4]string{"south", "east", "north", "west"}
	fp := &FloorPlan{Walls: make([]Wall, 4)}
	for i := range fp.Walls {
		fp.Walls[i] = Wall{
			Seg:          Segment{c[i], c[(i+1)%4]},
			Reflectivity: reflectivity,
			Name:         names[i],
		}
	}
	return fp, nil
}

// Path is one propagation path from a transmitter to a receiver: the LOS
// ray (Order 0) or a specular reflection (Order = number of wall bounces).
type Path struct {
	// Points is the polyline tx → bounce(s) → rx.
	Points []Point
	// Length is the total geometric path length in meters.
	Length float64
	// Gain is the product of the amplitude reflection coefficients of the
	// bounced walls and the transmission factors of crossed obstacles
	// (1 for an unobstructed LOS path). It excludes free-space path loss,
	// which depends on carrier frequency and is applied by the channel.
	Gain float64
	// Order is the number of specular bounces (0 = line of sight).
	Order int
	// Walls names the bounced walls, in order.
	Walls []string
}

// Paths enumerates all propagation paths between tx and rx up to the given
// reflection order using the image method: for each wall sequence the
// transmitter is mirrored across the walls in turn, and the straight ray
// from the deepest image to the receiver is unfolded back into a bounce
// polyline. Paths whose unfolded rays miss a wall segment are discarded.
// Obstacle crossings multiply the gain by the corresponding transmission
// factor. Results are sorted by increasing length (the LOS path first
// whenever it exists).
func (fp *FloorPlan) Paths(tx, rx Point, maxOrder int) ([]Path, error) {
	if maxOrder < 0 {
		return nil, fmt.Errorf("geom: negative reflection order %d", maxOrder)
	}
	var out []Path
	// Order 0: direct path.
	los := Path{
		Points: []Point{tx, rx},
		Length: tx.Dist(rx),
		Gain:   fp.obstacleGain(Segment{tx, rx}),
		Order:  0,
	}
	out = append(out, los)
	seq := make([]int, 0, maxOrder)
	fp.enumerate(tx, rx, maxOrder, seq, &out)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Length < out[j].Length })
	return out, nil
}

// enumerate recursively extends the wall-index sequence seq and emits every
// valid specular path of length 1..maxOrder.
func (fp *FloorPlan) enumerate(tx, rx Point, maxOrder int, seq []int, out *[]Path) {
	if len(seq) >= maxOrder {
		return
	}
	for w := range fp.Walls {
		if len(seq) > 0 && seq[len(seq)-1] == w {
			continue // consecutive bounces off the same wall are impossible
		}
		next := make([]int, len(seq)+1)
		copy(next, seq)
		next[len(seq)] = w
		if p, ok := fp.tracePath(tx, rx, next); ok {
			*out = append(*out, p)
		}
		fp.enumerate(tx, rx, maxOrder, next, out)
	}
}

// tracePath validates the wall sequence via the image method and, when the
// unfolded ray hits every wall segment, returns the realized path.
func (fp *FloorPlan) tracePath(tx, rx Point, seq []int) (Path, bool) {
	// Mirror the transmitter through the wall sequence.
	images := make([]Point, len(seq)+1)
	images[0] = tx
	for i, w := range seq {
		images[i+1] = fp.Walls[w].Seg.MirrorAcross(images[i])
	}
	// Unfold from the receiver back to the transmitter.
	pts := make([]Point, len(seq)+2)
	pts[len(pts)-1] = rx
	target := rx
	for i := len(seq) - 1; i >= 0; i-- {
		wall := fp.Walls[seq[i]]
		hit, ok := Segment{images[i+1], target}.Intersect(wall.Seg)
		if !ok {
			return Path{}, false
		}
		pts[i+1] = hit
		target = hit
	}
	pts[0] = tx

	p := Path{
		Points: pts,
		Order:  len(seq),
		Gain:   1,
		Walls:  make([]string, len(seq)),
	}
	for i, w := range seq {
		p.Gain *= fp.Walls[w].Reflectivity
		p.Walls[i] = fp.Walls[w].Name
	}
	for i := 0; i+1 < len(pts); i++ {
		leg := Segment{pts[i], pts[i+1]}
		if leg.Length() < 1e-9 {
			return Path{}, false // degenerate bounce (tx or rx on the wall)
		}
		p.Length += leg.Length()
		p.Gain *= fp.obstacleGain(leg)
	}
	return p, true
}

// obstacleGain returns the product of amplitude transmission factors for
// every obstacle the ray crosses.
func (fp *FloorPlan) obstacleGain(ray Segment) float64 {
	gain := 1.0
	for _, ob := range fp.Obstacles {
		if ray.IntersectStrict(ob.Seg) {
			gain *= math.Pow(10, -ob.TransmissionLossDB/20)
		}
	}
	return gain
}
