package geom

import (
	"math"
	mrand "math/rand"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func closeTo(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func pointsClose(p, q Point, tol float64) bool { return p.Dist(q) <= tol }

func TestPointArithmetic(t *testing.T) {
	p := Point{3, 4}
	q := Point{1, -2}
	if got := p.Add(q); got != (Point{4, 2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Norm(); !closeTo(got, 5, 1e-12) {
		t.Errorf("Norm = %g", got)
	}
	if got := p.Dot(q); !closeTo(got, -5, 1e-12) {
		t.Errorf("Dot = %g", got)
	}
	if got := p.Cross(q); !closeTo(got, -10, 1e-12) {
		t.Errorf("Cross = %g", got)
	}
	if got := p.Dist(q); !closeTo(got, math.Sqrt(4+36), 1e-12) {
		t.Errorf("Dist = %g", got)
	}
}

func TestSegmentIntersect(t *testing.T) {
	a := Segment{Point{0, 0}, Point{2, 2}}
	b := Segment{Point{0, 2}, Point{2, 0}}
	pt, ok := a.Intersect(b)
	if !ok || !pointsClose(pt, Point{1, 1}, 1e-12) {
		t.Fatalf("got %v, %v", pt, ok)
	}
	// Parallel segments never intersect.
	c := Segment{Point{0, 1}, Point{2, 3}}
	if _, ok := a.Intersect(c); ok {
		t.Fatal("parallel segments intersected")
	}
	// Disjoint segments on crossing lines.
	d := Segment{Point{5, 0}, Point{5, 1}}
	if _, ok := a.Intersect(d); ok {
		t.Fatal("disjoint segments intersected")
	}
	// Endpoint touching counts for Intersect...
	e := Segment{Point{2, 2}, Point{3, 0}}
	if _, ok := a.Intersect(e); !ok {
		t.Fatal("endpoint touch not detected")
	}
	// ...but not for IntersectStrict.
	if a.IntersectStrict(e) {
		t.Fatal("endpoint touch reported as strict crossing")
	}
	if !a.IntersectStrict(b) {
		t.Fatal("proper crossing not reported as strict")
	}
}

func TestMirrorAcross(t *testing.T) {
	wall := Segment{Point{0, 0}, Point{10, 0}} // the x-axis
	if got := wall.MirrorAcross(Point{3, 4}); !pointsClose(got, Point{3, -4}, 1e-12) {
		t.Fatalf("mirror across x-axis: %v", got)
	}
	diag := Segment{Point{0, 0}, Point{1, 1}}
	if got := diag.MirrorAcross(Point{1, 0}); !pointsClose(got, Point{0, 1}, 1e-12) {
		t.Fatalf("mirror across diagonal: %v", got)
	}
	// Degenerate wall returns the point unchanged.
	deg := Segment{Point{1, 1}, Point{1, 1}}
	if got := deg.MirrorAcross(Point{5, 5}); got != (Point{5, 5}) {
		t.Fatalf("degenerate mirror: %v", got)
	}
}

func TestMirrorIsInvolutionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 5))
		wall := Segment{
			Point{r.Float64() * 10, r.Float64() * 10},
			Point{r.Float64() * 10, r.Float64() * 10},
		}
		if wall.Length() < 1e-6 {
			return true
		}
		p := Point{r.Float64() * 10, r.Float64() * 10}
		back := wall.MirrorAcross(wall.MirrorAcross(p))
		return pointsClose(back, p, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: mrand.New(mrand.NewSource(51))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRectangleValidation(t *testing.T) {
	if _, err := Rectangle(0, 5, 0.5); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Rectangle(5, -1, 0.5); err == nil {
		t.Error("negative height accepted")
	}
	if _, err := Rectangle(5, 5, 0); err == nil {
		t.Error("zero reflectivity accepted")
	}
	if _, err := Rectangle(5, 5, 1.5); err == nil {
		t.Error("reflectivity > 1 accepted")
	}
	fp, err := Rectangle(8, 5, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Walls) != 4 {
		t.Fatalf("wall count %d", len(fp.Walls))
	}
}

func TestPathsLOSOnly(t *testing.T) {
	fp, _ := Rectangle(10, 6, 0.5)
	paths, err := fp.Paths(Point{2, 3}, Point{8, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("want LOS only, got %d paths", len(paths))
	}
	p := paths[0]
	if p.Order != 0 || !closeTo(p.Length, 6, 1e-12) || p.Gain != 1 {
		t.Fatalf("LOS path %+v", p)
	}
}

func TestPathsFirstOrderRectangle(t *testing.T) {
	// Fig. 1a: a rectangular room has exactly four first-order reflections
	// (MPC1–MPC4) plus the LOS path for interior tx/rx positions.
	fp, _ := Rectangle(10, 6, 0.5)
	tx := Point{2, 3}
	rx := Point{8, 3.5}
	paths, err := fp.Paths(tx, rx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 5 {
		t.Fatalf("want 1 LOS + 4 reflections, got %d", len(paths))
	}
	if paths[0].Order != 0 {
		t.Fatal("paths not sorted by length: LOS must come first")
	}
	for i := 1; i < len(paths); i++ {
		p := paths[i]
		if p.Order != 1 {
			t.Fatalf("path %d order %d", i, p.Order)
		}
		if p.Length <= paths[0].Length {
			t.Fatalf("reflection %d not longer than LOS", i)
		}
		if !closeTo(p.Gain, 0.5, 1e-12) {
			t.Fatalf("reflection gain %g, want wall reflectivity 0.5", p.Gain)
		}
		if len(p.Points) != 3 {
			t.Fatalf("reflection polyline %v", p.Points)
		}
		if paths[i].Length < paths[i-1].Length {
			t.Fatal("paths not sorted by length")
		}
	}
}

func TestPathsMirrorLengthIdentity(t *testing.T) {
	// Image-method invariant: the bounce path length equals the straight
	// distance from the mirrored transmitter to the receiver.
	fp, _ := Rectangle(12, 7, 0.7)
	tx := Point{3, 2}
	rx := Point{9, 5}
	paths, _ := fp.Paths(tx, rx, 1)
	for _, p := range paths {
		if p.Order != 1 {
			continue
		}
		var wall Wall
		for _, w := range fp.Walls {
			if w.Name == p.Walls[0] {
				wall = w
			}
		}
		img := wall.Seg.MirrorAcross(tx)
		if !closeTo(p.Length, img.Dist(rx), 1e-9) {
			t.Fatalf("wall %s: path length %g, image distance %g",
				p.Walls[0], p.Length, img.Dist(rx))
		}
	}
}

func TestPathsReciprocityProperty(t *testing.T) {
	// Swapping tx and rx must produce the same multiset of path lengths.
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 9))
		fp, err := Rectangle(5+r.Float64()*10, 4+r.Float64()*8, 0.3+r.Float64()*0.6)
		if err != nil {
			return false
		}
		tx := Point{0.5 + r.Float64()*4, 0.5 + r.Float64()*3}
		rx := Point{0.5 + r.Float64()*4, 0.5 + r.Float64()*3}
		if tx.Dist(rx) < 0.1 {
			return true
		}
		fw, err1 := fp.Paths(tx, rx, 2)
		bw, err2 := fp.Paths(rx, tx, 2)
		if err1 != nil || err2 != nil || len(fw) != len(bw) {
			return false
		}
		for i := range fw {
			if !closeTo(fw[i].Length, bw[i].Length, 1e-6) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: mrand.New(mrand.NewSource(52))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPathsSecondOrderExist(t *testing.T) {
	fp, _ := Rectangle(10, 6, 0.5)
	paths, err := fp.Paths(Point{2, 3}, Point{8, 3.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var second int
	for _, p := range paths {
		if p.Order == 2 {
			second++
			if !closeTo(p.Gain, 0.25, 1e-12) {
				t.Fatalf("second-order gain %g, want 0.25", p.Gain)
			}
		}
	}
	if second == 0 {
		t.Fatal("no second-order reflections found")
	}
}

func TestPathsRejectNegativeOrder(t *testing.T) {
	fp, _ := Rectangle(10, 6, 0.5)
	if _, err := fp.Paths(Point{1, 1}, Point{2, 2}, -1); err == nil {
		t.Fatal("negative order accepted")
	}
}

func TestObstacleAttenuatesCrossingPaths(t *testing.T) {
	fp, _ := Rectangle(10, 6, 0.5)
	// A partition between tx and rx with 20 dB transmission loss.
	fp.Obstacles = append(fp.Obstacles, Obstacle{
		Seg:                Segment{Point{5, 1}, Point{5, 5}},
		TransmissionLossDB: 20,
		Name:               "partition",
	})
	tx := Point{2, 3}
	rx := Point{8, 3}
	paths, err := fp.Paths(tx, rx, 1)
	if err != nil {
		t.Fatal(err)
	}
	los := paths[0]
	if los.Order != 0 {
		t.Fatal("LOS not first")
	}
	// 20 dB power loss = factor 0.1 in amplitude.
	if !closeTo(los.Gain, 0.1, 1e-9) {
		t.Fatalf("blocked LOS gain %g, want 0.1", los.Gain)
	}
	// The east and west bounces stay at y = 3 and cross the partition once
	// (gain 0.5 · 0.1); the south and north bounces pass below/above the
	// partition span and keep the bare wall reflectivity.
	for _, p := range paths[1:] {
		var want float64
		switch p.Walls[0] {
		case "east", "west":
			want = 0.05
		case "south", "north":
			want = 0.5
		default:
			t.Fatalf("unexpected wall %q", p.Walls[0])
		}
		if !closeTo(p.Gain, want, 1e-9) {
			t.Fatalf("reflection off %s: gain %g, want %g", p.Walls[0], p.Gain, want)
		}
	}
}

func TestObstacleDoesNotBlockNonCrossingPath(t *testing.T) {
	fp, _ := Rectangle(10, 6, 0.5)
	fp.Obstacles = append(fp.Obstacles, Obstacle{
		Seg:                Segment{Point{5, 4}, Point{5, 5}},
		TransmissionLossDB: 30,
	})
	paths, _ := fp.Paths(Point{2, 1}, Point{8, 1}, 0)
	if paths[0].Gain != 1 {
		t.Fatalf("unobstructed LOS gain %g, want 1", paths[0].Gain)
	}
}
