package pulse

import (
	"fmt"

	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
)

// Bank holds the set of pulse templates an initiator matches against the
// received CIR (one per supported responder pulse shape, Sect. V). All
// templates are sampled at the same interval and zero-padded to a common
// length with a shared center index, so matched-filter peak positions are
// directly comparable across shapes.
type Bank struct {
	ts        float64
	shapes    []Shape
	templates [][]complex128
	center    int
}

// NewBank builds a template bank at sampling interval ts for the given
// TC_PGDELAY register values. At least one register is required and every
// register must be in the usable range.
func NewBank(ts float64, regs ...byte) (*Bank, error) {
	if ts <= 0 {
		return nil, fmt.Errorf("pulse: sampling interval %g must be positive", ts)
	}
	if len(regs) == 0 {
		return nil, fmt.Errorf("pulse: bank needs at least one register value")
	}
	shapes := make([]Shape, len(regs))
	maxLen := 0
	for i, reg := range regs {
		s, err := ForRegister(reg)
		if err != nil {
			return nil, err
		}
		shapes[i] = s
		if n := s.TemplateLen(ts); n > maxLen {
			maxLen = n
		}
	}
	center := (maxLen - 1) / 2
	templates := make([][]complex128, len(shapes))
	for i, s := range shapes {
		raw := s.Template(ts)
		padded := make([]complex128, maxLen)
		offset := center - (len(raw)-1)/2
		copy(padded[offset:], raw)
		templates[i] = padded
	}
	return &Bank{ts: ts, shapes: shapes, templates: templates, center: center}, nil
}

// DefaultRegisters returns n well-separated TC_PGDELAY values. For n ≤ 4 it
// returns the paper's s1..s4 registers (0x93, 0xC8, 0xE6, 0xF0); larger n
// spreads evenly across the usable range. It returns an error when n is not
// in [1, NumShapes].
func DefaultRegisters(n int) ([]byte, error) {
	if n < 1 || n > NumShapes {
		return nil, fmt.Errorf("pulse: %d shapes requested, supported range [1, %d]", n, NumShapes)
	}
	paper := []byte{RegisterS1, RegisterS2, RegisterS3, RegisterS4}
	if n <= len(paper) {
		return paper[:n:n], nil
	}
	out := make([]byte, n)
	span := int(MaxRegister - DefaultRegister)
	for i := range out {
		out[i] = DefaultRegister + byte(i*span/(n-1))
	}
	return out, nil
}

// DefaultBank builds a bank of n default shapes at sampling interval ts.
func DefaultBank(ts float64, n int) (*Bank, error) {
	regs, err := DefaultRegisters(n)
	if err != nil {
		return nil, err
	}
	return NewBank(ts, regs...)
}

// Len returns the number of shapes in the bank.
func (b *Bank) Len() int { return len(b.shapes) }

// SampleInterval returns the sampling interval the templates use.
func (b *Bank) SampleInterval() float64 { return b.ts }

// Center returns the common center (peak) index of every template.
func (b *Bank) Center() int { return b.center }

// Shape returns the i-th shape.
func (b *Bank) Shape(i int) Shape { return b.shapes[i] }

// Template returns the i-th unit-energy template. The caller must not
// modify the returned slice.
func (b *Bank) Template(i int) []complex128 { return b.templates[i] }

// TemplateCopy returns an independent copy of the i-th template.
func (b *Bank) TemplateCopy(i int) []complex128 { return dsp.Clone(b.templates[i]) }

// IndexOfRegister returns the bank index using the given register value, or
// -1 when the register is not in the bank.
func (b *Bank) IndexOfRegister(reg byte) int {
	for i, s := range b.shapes {
		if s.Register == reg {
			return i
		}
	}
	return -1
}

// CrossCorrelation returns the matrix of normalized correlations between
// all template pairs; entry [i][j] is the matched-filter response of
// template j to a unit-amplitude pulse of shape i. The diagonal is 1.
func (b *Bank) CrossCorrelation() [][]float64 {
	n := len(b.templates)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			out[i][j] = peakCorrelation(b.templates[i], b.templates[j])
		}
	}
	return out
}

// peakCorrelation returns the maximum matched-filter magnitude of template
// b against a signal containing template a, i.e. the worst-case confusion
// between the two shapes (alignment chosen by the detector).
func peakCorrelation(a, tmpl []complex128) float64 {
	y := dsp.MatchedFilter(a, tmpl)
	_, v := dsp.MaxAbsIndex(y)
	return v
}
