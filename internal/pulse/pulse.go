// Package pulse models the transmitted pulse shapes of the Decawave DW1000
// UWB transceiver. The 8-bit TC_PGDELAY register controls the pulse
// generator delay and thereby the output bandwidth: the default value 0x93
// (Channel 7, PRF 64 MHz) yields the nominal 900 MHz bandwidth, and larger
// values widen the pulse (Sect. V of the paper, Fig. 5). Widening is
// allowed by the regulatory spectral mask, narrowing is not, so the usable
// range is [0x93, 0xFE] — 108 distinct shapes.
//
// Shapes are modeled as raised-cosine-spectrum band-limited pulses whose
// bandwidth shrinks as the register value grows. Templates are sampled at
// the CIR accumulator interval and normalized to unit discrete energy, the
// same normalization the paper applies before matched filtering.
package pulse

import (
	"fmt"
	"math"

	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
)

const (
	// DefaultRegister is the default TC_PGDELAY value for Channel 7 at
	// PRF 64 MHz and the lower limit of the usable range (narrowest pulse).
	DefaultRegister byte = 0x93

	// MaxRegister is the widest usable TC_PGDELAY value.
	MaxRegister byte = 0xFE

	// NumShapes is the number of distinct usable pulse shapes
	// (MaxRegister - DefaultRegister + 1 = 108, matching Sect. V).
	NumShapes = int(MaxRegister-DefaultRegister) + 1

	// NominalBandwidth is the output bandwidth at the default register
	// value on Channel 7 (the DW1000's maximum, 900 MHz).
	NominalBandwidth = 900e6

	// bandwidthSlope is the per-register-step relative widening factor:
	// B(reg) = NominalBandwidth / (1 + bandwidthSlope·(reg - 0x93)).
	bandwidthSlope = 0.02

	// rollOff is the raised-cosine spectral roll-off factor.
	rollOff = 0.25

	// supportHalfWidths is the template truncation point in units of 1/B
	// on each side of the pulse peak.
	supportHalfWidths = 4.0
)

// Paper register values for the shapes s1..s4 shown in Fig. 5.
const (
	RegisterS1 byte = 0x93
	RegisterS2 byte = 0xC8
	RegisterS3 byte = 0xE6
	RegisterS4 byte = 0xF0
)

// Shape is one DW1000 pulse shape, fully determined by its TC_PGDELAY
// register value.
type Shape struct {
	// Register is the TC_PGDELAY value that produces this shape.
	Register byte
	// Bandwidth is the resulting output bandwidth in Hz.
	Bandwidth float64
	// Beta is the raised-cosine roll-off factor.
	Beta float64
}

// ForRegister returns the pulse shape produced by the given TC_PGDELAY
// register value. Values below DefaultRegister would narrow the pulse and
// violate the spectral mask; values above MaxRegister are not usable.
func ForRegister(reg byte) (Shape, error) {
	if reg < DefaultRegister || reg > MaxRegister {
		return Shape{}, fmt.Errorf("pulse: TC_PGDELAY 0x%02X outside usable range [0x%02X, 0x%02X]",
			reg, DefaultRegister, MaxRegister)
	}
	step := float64(reg - DefaultRegister)
	return Shape{
		Register:  reg,
		Bandwidth: NominalBandwidth / (1 + bandwidthSlope*step),
		Beta:      rollOff,
	}, nil
}

// Eval returns the pulse amplitude at time t (seconds relative to the pulse
// peak). The peak amplitude is 1; the shape is the impulse response of a
// raised-cosine filter with the shape's bandwidth and roll-off.
func (s Shape) Eval(t float64) float64 {
	b := s.Bandwidth
	x := b * t
	den := 1 - (2*s.Beta*x)*(2*s.Beta*x)
	if math.Abs(den) < 1e-9 {
		// Nudge off the removable singularity at |t| = 1/(2·beta·B).
		x += 1e-6
		den = 1 - (2*s.Beta*x)*(2*s.Beta*x)
	}
	return sinc(x) * math.Cos(math.Pi*s.Beta*x) / den
}

// sinc is the normalized sinc function sin(pi x)/(pi x).
func sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}

// SupportHalfWidth returns the half-width of the truncated pulse support in
// seconds. The template spans ±SupportHalfWidth around the peak.
func (s Shape) SupportHalfWidth() float64 {
	return supportHalfWidths / s.Bandwidth
}

// Duration returns the total truncated pulse duration T_p in seconds.
func (s Shape) Duration() float64 {
	return 2 * s.SupportHalfWidth()
}

// TemplateLen returns the number of samples of the template at sampling
// interval ts. It is always odd so the peak sits on the center sample.
func (s Shape) TemplateLen(ts float64) int {
	half := int(math.Ceil(s.SupportHalfWidth() / ts))
	return 2*half + 1
}

// Template samples the pulse at interval ts, centered so the peak is at
// index (len-1)/2, and normalizes it to unit discrete energy.
func (s Shape) Template(ts float64) []complex128 {
	n := s.TemplateLen(ts)
	c := (n - 1) / 2
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(s.Eval(float64(i-c)*ts), 0)
	}
	return dsp.NormalizeEnergy(out)
}

// NormConstant returns the factor that scales raw Eval samples at interval
// ts to unit discrete energy (the scale used by Template).
func (s Shape) NormConstant(ts float64) float64 {
	n := s.TemplateLen(ts)
	c := (n - 1) / 2
	var e float64
	for i := 0; i < n; i++ {
		v := s.Eval(float64(i-c) * ts)
		e += v * v
	}
	if e == 0 {
		return 0
	}
	return 1 / math.Sqrt(e)
}

// RenderInto adds alpha times the unit-energy pulse, with its peak at the
// fractional sample position delay (in samples of ts), into dst. Samples
// outside dst are discarded. This is how the radio model superposes each
// multipath component into the CIR accumulator.
func (s Shape) RenderInto(dst []complex128, alpha complex128, delay, ts float64) {
	norm := s.NormConstant(ts)
	if norm == 0 {
		return
	}
	halfSamples := s.SupportHalfWidth() / ts
	lo := int(math.Floor(delay - halfSamples))
	hi := int(math.Ceil(delay + halfSamples))
	lo = max(lo, 0)
	hi = min(hi, len(dst)-1)
	a := alpha * complex(norm, 0)
	for n := lo; n <= hi; n++ {
		dst[n] += a * complex(s.Eval((float64(n)-delay)*ts), 0)
	}
}
