package pulse

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
)

// MeasureTemplate reproduces the paper's pulse-measurement campaign
// (Sect. IV): transmitter and receiver joined by an SMA cable and a 60 dB
// attenuator, the receiver logging `trials` CIRs, and post-processing that
// cuts out the direct-path component and averages it. Here each "logged
// CIR" is the true sampled pulse plus complex white noise at the given SNR
// (in dB, relative to the unit template energy); the returned template is
// the coherent average, re-normalized to unit energy.
//
// The result converges to Shape.Template as trials grows, which is exactly
// why the paper's measured templates are usable as matched-filter inputs.
func MeasureTemplate(s Shape, ts float64, trials int, snrDB float64, rng *rand.Rand) ([]complex128, error) {
	if trials < 1 {
		return nil, fmt.Errorf("pulse: measurement campaign needs at least 1 trial, got %d", trials)
	}
	if rng == nil {
		return nil, fmt.Errorf("pulse: nil RNG")
	}
	truth := s.Template(ts)
	n := len(truth)
	// Per-sample noise std such that total noise energy / signal energy
	// matches the requested SNR (template energy is 1).
	noiseVar := dsp.FromDB(-snrDB) / float64(n)
	sigma := sqrtHalf(noiseVar)
	acc := make([]complex128, n)
	for t := 0; t < trials; t++ {
		for i := range acc {
			noise := complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
			acc[i] += truth[i] + noise
		}
	}
	dsp.Scale(acc, complex(1/float64(trials), 0))
	return dsp.NormalizeEnergy(acc), nil
}

// sqrtHalf returns sqrt(v/2), the per-quadrature standard deviation of
// circularly-symmetric complex noise with total variance v.
func sqrtHalf(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v / 2)
}
