package pulse

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
)

func TestNewBankValidation(t *testing.T) {
	if _, err := NewBank(ts); err == nil {
		t.Error("empty bank must be rejected")
	}
	if _, err := NewBank(0, DefaultRegister); err == nil {
		t.Error("non-positive sampling interval must be rejected")
	}
	if _, err := NewBank(ts, 0x10); err == nil {
		t.Error("out-of-range register must be rejected")
	}
}

func TestBankCommonGeometry(t *testing.T) {
	b, err := NewBank(ts, RegisterS1, RegisterS2, RegisterS3, RegisterS4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d", b.Len())
	}
	n := len(b.Template(0))
	for i := 0; i < b.Len(); i++ {
		tmpl := b.Template(i)
		if len(tmpl) != n {
			t.Fatalf("template %d length %d, want common %d", i, len(tmpl), n)
		}
		if e := dsp.Energy(tmpl); math.Abs(e-1) > 1e-9 {
			t.Fatalf("template %d energy %g", i, e)
		}
		idx, _ := dsp.MaxAbsIndex(tmpl)
		if idx != b.Center() {
			t.Fatalf("template %d peak at %d, want shared center %d", i, idx, b.Center())
		}
	}
}

func TestDefaultRegistersPaperValues(t *testing.T) {
	regs, err := DefaultRegisters(4)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x93, 0xC8, 0xE6, 0xF0}
	for i := range want {
		if regs[i] != want[i] {
			t.Fatalf("got %#v, want %#v", regs, want)
		}
	}
	if _, err := DefaultRegisters(0); err == nil {
		t.Error("n=0 must be rejected")
	}
	if _, err := DefaultRegisters(NumShapes + 1); err == nil {
		t.Error("n beyond shape count must be rejected")
	}
}

func TestDefaultRegistersLargeNAreDistinctAndSorted(t *testing.T) {
	for _, n := range []int{5, 12, 50, NumShapes} {
		regs, err := DefaultRegisters(n)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[byte]bool, len(regs))
		for i, r := range regs {
			if r < DefaultRegister || r > MaxRegister {
				t.Fatalf("n=%d: register 0x%02X out of range", n, r)
			}
			if seen[r] {
				t.Fatalf("n=%d: duplicate register 0x%02X", n, r)
			}
			seen[r] = true
			if i > 0 && regs[i] <= regs[i-1] {
				t.Fatalf("n=%d: registers not ascending", n)
			}
		}
	}
}

func TestIndexOfRegister(t *testing.T) {
	b, err := DefaultBank(ts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.IndexOfRegister(RegisterS2); got != 1 {
		t.Fatalf("got %d, want 1", got)
	}
	if got := b.IndexOfRegister(0xF0); got != -1 {
		t.Fatalf("got %d, want -1", got)
	}
}

func TestCrossCorrelationDiagonalDominance(t *testing.T) {
	// The matched template must always respond strongest to its own pulse —
	// the property pulse-shape identification (Sect. V) relies on.
	b, err := DefaultBank(ts, 4)
	if err != nil {
		t.Fatal(err)
	}
	cc := b.CrossCorrelation()
	for i := range cc {
		if math.Abs(cc[i][i]-1) > 1e-6 {
			t.Fatalf("diagonal [%d][%d] = %g, want 1", i, i, cc[i][i])
		}
		for j := range cc[i] {
			if j == i {
				continue
			}
			if cc[i][j] >= cc[i][i] {
				t.Fatalf("template %d responds stronger to shape %d (%g >= %g)",
					j, i, cc[i][j], cc[i][i])
			}
		}
	}
}

func TestCrossCorrelationSeparationMargin(t *testing.T) {
	// The paper's shapes must be separated enough for >99% identification:
	// require at least a 5% margin between matched and mismatched response.
	b, err := DefaultBank(ts, 3)
	if err != nil {
		t.Fatal(err)
	}
	cc := b.CrossCorrelation()
	for i := range cc {
		for j := range cc[i] {
			if i != j && cc[i][j] > 0.95 {
				t.Fatalf("shapes %d/%d too similar: correlation %g", i, j, cc[i][j])
			}
		}
	}
}

func TestTemplateCopyDoesNotAlias(t *testing.T) {
	b, err := DefaultBank(ts, 2)
	if err != nil {
		t.Fatal(err)
	}
	cp := b.TemplateCopy(0)
	cp[0] += 42
	if b.Template(0)[0] == cp[0] {
		t.Fatal("TemplateCopy aliases internal storage")
	}
}

func TestMeasureTemplateConvergesToTruth(t *testing.T) {
	rng := rand.New(rand.NewPCG(60, 61))
	s, _ := ForRegister(RegisterS2)
	truth := s.Template(ts)
	// The paper logged 1000 CIRs through a 60 dB attenuator; at a healthy
	// cable SNR the averaged template must match the true shape closely.
	meas, err := MeasureTemplate(s, ts, 1000, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := dsp.NormalizedCorrelation(meas, truth); got < 0.999 {
		t.Fatalf("measured template correlation %g with truth, want > 0.999", got)
	}
	// A single noisy trial is visibly worse than the 1000-trial average.
	one, err := MeasureTemplate(s, ts, 1, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if dsp.NormalizedCorrelation(one, truth) >= dsp.NormalizedCorrelation(meas, truth) {
		t.Fatal("averaging over trials did not improve the template estimate")
	}
}

func TestMeasureTemplateValidation(t *testing.T) {
	s, _ := ForRegister(RegisterS1)
	if _, err := MeasureTemplate(s, ts, 0, 20, rand.New(rand.NewPCG(1, 1))); err == nil {
		t.Error("zero trials must be rejected")
	}
	if _, err := MeasureTemplate(s, ts, 10, 20, nil); err == nil {
		t.Error("nil RNG must be rejected")
	}
}
