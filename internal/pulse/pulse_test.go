package pulse

import (
	"math"
	mrand "math/rand"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
)

// ts is the DW1000 CIR sampling interval used throughout the tests.
const ts = 1.0016e-9

func TestForRegisterRange(t *testing.T) {
	if _, err := ForRegister(0x92); err == nil {
		t.Error("register below default must be rejected (spectral mask)")
	}
	if _, err := ForRegister(0xFF); err == nil {
		t.Error("register above max must be rejected")
	}
	s, err := ForRegister(DefaultRegister)
	if err != nil {
		t.Fatal(err)
	}
	if s.Bandwidth != NominalBandwidth {
		t.Errorf("default bandwidth %g, want %g", s.Bandwidth, NominalBandwidth)
	}
	if NumShapes != 108 {
		t.Errorf("NumShapes = %d, want 108 (Sect. V)", NumShapes)
	}
}

func TestBandwidthDecreasesWithRegister(t *testing.T) {
	prev := math.Inf(1)
	for reg := int(DefaultRegister); reg <= int(MaxRegister); reg++ {
		s, err := ForRegister(byte(reg))
		if err != nil {
			t.Fatal(err)
		}
		if s.Bandwidth >= prev {
			t.Fatalf("bandwidth not strictly decreasing at 0x%02X", reg)
		}
		prev = s.Bandwidth
	}
}

func TestPulseWidthGrowsWithRegister(t *testing.T) {
	// The paper's core pulse-shaping property: a larger TC_PGDELAY value
	// yields a wider pulse (Fig. 5).
	s1, _ := ForRegister(RegisterS1)
	s2, _ := ForRegister(RegisterS2)
	s3, _ := ForRegister(RegisterS3)
	s4, _ := ForRegister(RegisterS4)
	d := []float64{s1.Duration(), s2.Duration(), s3.Duration(), s4.Duration()}
	for i := 1; i < len(d); i++ {
		if d[i] <= d[i-1] {
			t.Fatalf("duration not increasing: %v", d)
		}
	}
}

func TestEvalPeakAndSymmetry(t *testing.T) {
	s, _ := ForRegister(DefaultRegister)
	if got := s.Eval(0); got != 1 {
		t.Fatalf("peak amplitude %g, want 1", got)
	}
	for _, tt := range []float64{0.1e-9, 0.77e-9, 3e-9} {
		if math.Abs(s.Eval(tt)-s.Eval(-tt)) > 1e-12 {
			t.Fatalf("pulse not symmetric at %g", tt)
		}
		if math.Abs(s.Eval(tt)) >= 1 {
			t.Fatalf("off-peak amplitude %g not below peak", s.Eval(tt))
		}
	}
}

func TestEvalSingularityIsFinite(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 3))
		reg := DefaultRegister + byte(r.IntN(NumShapes))
		s, err := ForRegister(reg)
		if err != nil {
			return false
		}
		// Evaluate on a fine grid including the raised-cosine singularity
		// t = 1/(2*beta*B).
		sing := 1 / (2 * s.Beta * s.Bandwidth)
		for _, tt := range []float64{sing, -sing, sing * (1 + 1e-12), r.Float64() * 20e-9} {
			v := s.Eval(tt)
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: mrand.New(mrand.NewSource(50))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTemplateUnitEnergyAndCentering(t *testing.T) {
	for reg := int(DefaultRegister); reg <= int(MaxRegister); reg += 7 {
		s, _ := ForRegister(byte(reg))
		tmpl := s.Template(ts)
		if len(tmpl)%2 != 1 {
			t.Fatalf("0x%02X: template length %d not odd", reg, len(tmpl))
		}
		if e := dsp.Energy(tmpl); math.Abs(e-1) > 1e-9 {
			t.Fatalf("0x%02X: template energy %g", reg, e)
		}
		idx, _ := dsp.MaxAbsIndex(tmpl)
		if idx != (len(tmpl)-1)/2 {
			t.Fatalf("0x%02X: peak at %d, want center %d", reg, idx, (len(tmpl)-1)/2)
		}
	}
}

func TestRenderIntoPlacesPeakAtDelay(t *testing.T) {
	s, _ := ForRegister(DefaultRegister)
	dst := make([]complex128, 256)
	s.RenderInto(dst, 1, 100, ts)
	idx, _ := dsp.MaxAbsIndex(dst)
	if idx != 100 {
		t.Fatalf("peak at %d, want 100", idx)
	}
	// Fractional delay: peak magnitude at the two straddling samples.
	dst = make([]complex128, 256)
	s.RenderInto(dst, 1, 100.5, ts)
	mag := dsp.Abs(dst)
	if math.Abs(mag[100]-mag[101]) > 1e-9 {
		t.Fatalf("fractional delay not symmetric: %g vs %g", mag[100], mag[101])
	}
}

func TestRenderIntoEnergyNearUnit(t *testing.T) {
	// Rendered pulses carry approximately unit energy regardless of the
	// fractional sample offset (band-limited sampling property).
	s, _ := ForRegister(RegisterS3)
	for _, frac := range []float64{0, 0.25, 0.5, 0.9} {
		dst := make([]complex128, 512)
		s.RenderInto(dst, 1, 200+frac, ts)
		e := dsp.Energy(dst)
		if math.Abs(e-1) > 0.05 {
			t.Fatalf("frac %g: rendered energy %g not ~1", frac, e)
		}
	}
}

func TestRenderIntoClipsAtBuffer(t *testing.T) {
	s, _ := ForRegister(DefaultRegister)
	dst := make([]complex128, 16)
	// Should not panic even when the pulse extends past both ends.
	s.RenderInto(dst, 1, 0, ts)
	s.RenderInto(dst, 1, 15.9, ts)
	s.RenderInto(dst, 1, -5, ts)
	s.RenderInto(dst, 1, 400, ts)
	if dsp.Energy(dst) == 0 {
		t.Fatal("nothing rendered")
	}
}

func TestRenderIntoScalesWithAlpha(t *testing.T) {
	s, _ := ForRegister(DefaultRegister)
	a := make([]complex128, 128)
	b := make([]complex128, 128)
	s.RenderInto(a, 1, 64, ts)
	alpha := complex(0.3, -0.4)
	s.RenderInto(b, alpha, 64, ts)
	for i := range a {
		if d := a[i]*alpha - b[i]; math.Abs(real(d))+math.Abs(imag(d)) > 1e-12 {
			t.Fatalf("alpha scaling broken at %d", i)
		}
	}
}
