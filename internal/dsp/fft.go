package dsp

import (
	"fmt"
	"math"
	"math/bits"
)

// FFT computes the discrete Fourier transform of v and returns a new slice.
// Power-of-two lengths use an iterative radix-2 Cooley–Tukey transform;
// other lengths fall back to Bluestein's algorithm. An empty input returns
// an empty output.
func FFT(v []complex128) []complex128 {
	out := Clone(v)
	fftInPlace(out, false)
	return out
}

// IFFT computes the inverse discrete Fourier transform of v (including the
// 1/N normalization) and returns a new slice.
func IFFT(v []complex128) []complex128 {
	out := Clone(v)
	fftInPlace(out, true)
	return out
}

func fftInPlace(v []complex128, inverse bool) {
	n := len(v)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		radix2(v, inverse)
	} else {
		bluestein(v, inverse)
	}
	if inverse {
		Scale(v, complex(1/float64(n), 0))
	}
}

// radix2 runs an in-place iterative Cooley–Tukey FFT. len(v) must be a
// power of two.
func radix2(v []complex128, inverse bool) {
	n := len(v)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			v[i], v[j] = v[j], v[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wBase := complex(math.Cos(step), math.Sin(step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := v[start+k]
				b := v[start+k+half] * w
				v[start+k] = a + b
				v[start+k+half] = a - b
				w *= wBase
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution, using
// radix-2 FFTs of the next power of two ≥ 2n-1.
func bluestein(v []complex128, inverse bool) {
	n := len(v)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp factors w[k] = exp(sign*i*pi*k^2/n). Compute k^2 mod 2n to keep
	// the argument small and the cosine/sine accurate for large k.
	w := make([]complex128, n)
	for k := 0; k < n; k++ {
		ksq := (int64(k) * int64(k)) % int64(2*n)
		phi := sign * math.Pi * float64(ksq) / float64(n)
		w[k] = complex(math.Cos(phi), math.Sin(phi))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = v[k] * w[k]
		bk := complex(real(w[k]), -imag(w[k])) // conj(w[k])
		b[k] = bk
		if k > 0 {
			b[m-k] = bk
		}
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	invM := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		v[k] = a[k] * invM * w[k]
	}
}

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(n-1)))
}

// UpsampleFFT increases the sampling rate of v by the integer factor by
// zero-padding its spectrum, the standard FFT interpolation used in
// Sect. IV step 1 of the paper to smooth the CIR before matched filtering.
// The output has len(v)*factor samples and preserves the amplitude of the
// underlying continuous signal. It returns an error if factor < 1.
func UpsampleFFT(v []complex128, factor int) ([]complex128, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dsp: upsample factor %d < 1", factor)
	}
	if factor == 1 || len(v) == 0 {
		return Clone(v), nil
	}
	n := len(v)
	spec := FFT(v)
	out := make([]complex128, n*factor)
	if n%2 == 0 {
		half := n / 2
		copy(out[:half], spec[:half])
		copy(out[len(out)-(half-1):], spec[half+1:])
		// Split the Nyquist bin between the two halves so a real input
		// stays real after interpolation.
		nyq := spec[half] / 2
		out[half] = nyq
		out[len(out)-half] = nyq
	} else {
		pos := (n + 1) / 2 // bins 0..(n-1)/2 are non-negative frequencies
		copy(out[:pos], spec[:pos])
		copy(out[len(out)-(n-pos):], spec[pos:])
	}
	res := IFFT(out)
	Scale(res, complex(float64(factor), 0))
	return res, nil
}
