package dsp

import (
	"math"
	"math/rand/v2"
	"testing"
)

// seededSignal returns a deterministic complex test vector.
func seededSignal(n int, seed uint64) []complex128 {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	return randSignal(rng, n)
}

// spectralTestTemplates builds a few odd-length smooth templates like the
// detector's (non-power-of-two lengths force a wrapped convolution tail).
func spectralTestTemplates(lens ...int) [][]complex128 {
	out := make([][]complex128, len(lens))
	for i, l := range lens {
		t := make([]complex128, l)
		c := float64(l-1) / 2
		for k := range t {
			x := (float64(k) - c) / (c + 1)
			env := math.Cos(x * math.Pi / 2)
			t[k] = complex(env*math.Cos(6*x), env*math.Sin(6*x))
		}
		out[i] = t
	}
	return out
}

// TestSpectralBankScanMatchesMatchedFilter: with no ShiftSubtract applied,
// Ingest + ScanBest is an exact overlap-save matched filter — outputs must
// agree with the plain MatchedFilter argmax and values to FFT rounding.
func TestSpectralBankScanMatchesMatchedFilter(t *testing.T) {
	const sigLen = 300 // m = 512, so long templates wrap: tail = 300+L-1-512
	tmpls := spectralTestTemplates(9, 215, 255)
	sig := seededSignal(sigLen, 7)
	b, err := NewSpectralBank(tmpls, sigLen)
	if err != nil {
		t.Fatal(err)
	}
	if b.PrefixLen() != 300+255-1-512 {
		t.Fatalf("PrefixLen = %d, want %d", b.PrefixLen(), 300+255-1-512)
	}
	if err := b.Ingest(sig); err != nil {
		t.Fatal(err)
	}
	scratch := b.NewScratch()
	for ti, tmpl := range tmpls {
		want := MatchedFilter(sig, tmpl)
		idx, sq, y3, err := b.ScanBest(scratch, ti, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantIdx, wantSq := -1, 0.0
		for i, v := range want {
			s := real(v)*real(v) + imag(v)*imag(v)
			if s > wantSq {
				wantIdx, wantSq = i, s
			}
		}
		if idx != wantIdx {
			t.Fatalf("template %d: peak index %d, want %d", ti, idx, wantIdx)
		}
		if rel := math.Abs(sq-wantSq) / wantSq; rel > 1e-9 {
			t.Errorf("template %d: peak |y|² off by %g relative", ti, rel)
		}
		for k, off := range []int{-1, 0, 1} {
			i := idx + off
			if i < 0 || i >= sigLen {
				continue
			}
			if d := cAbs(y3[k] - want[i]); d > 1e-9*(1+cAbs(want[i])) {
				t.Errorf("template %d: y3[%d] = %v, want %v", ti, k, y3[k], want[i])
			}
		}
	}
	if b.Ingests() != 1 || b.Scans() != int64(len(tmpls)) {
		t.Errorf("counters: ingests %d scans %d, want 1 and %d", b.Ingests(), b.Scans(), len(tmpls))
	}
}

func cAbs(v complex128) float64 {
	return math.Hypot(real(v), imag(v))
}

// TestSpectralBankShiftSubtractIntegerShift: for an integer-offset
// subtraction the DFT shift theorem is exact, so the updated bank must
// agree with a fresh bank fed the explicitly subtracted signal.
func TestSpectralBankShiftSubtractIntegerShift(t *testing.T) {
	const sigLen = 300
	tmpls := spectralTestTemplates(9, 215, 255)
	sig := seededSignal(sigLen, 11)
	b, err := NewSpectralBank(tmpls, sigLen)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Ingest(sig); err != nil {
		t.Fatal(err)
	}
	// Subtract amp·tmpl[1] centered at integer index 140.
	const sub, pos = 1, 140
	amp := complex(0.8, -0.3)
	center := (len(tmpls[sub]) - 1) / 2
	placed := make([]complex128, sigLen)
	copy(placed, sig)
	for k, v := range tmpls[sub] {
		x := pos - center + k
		if x >= 0 && x < sigLen {
			placed[x] -= amp * v
		}
	}
	eval := func(x int) complex128 {
		k := x - (pos - center)
		if k < 0 || k >= len(tmpls[sub]) {
			return 0
		}
		return amp * tmpls[sub][k]
	}
	if err := b.ShiftSubtract(sub, amp, pos, eval); err != nil {
		t.Fatal(err)
	}

	ref, err := NewSpectralBank(tmpls, sigLen)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Ingest(placed); err != nil {
		t.Fatal(err)
	}
	scratch, refScratch := b.NewScratch(), ref.NewScratch()
	for ti := range tmpls {
		idx, _, y3, err := b.ScanBest(scratch, ti, nil)
		if err != nil {
			t.Fatal(err)
		}
		refIdx, _, refY3, err := ref.ScanBest(refScratch, ti, nil)
		if err != nil {
			t.Fatal(err)
		}
		if idx != refIdx {
			t.Fatalf("template %d: peak index %d after ShiftSubtract, want %d", ti, idx, refIdx)
		}
		for k := range y3 {
			if d := cAbs(y3[k] - refY3[k]); d > 1e-8*(1+cAbs(refY3[k])) {
				t.Errorf("template %d: y3[%d] = %v, want %v (Δ=%g)", ti, k, y3[k], refY3[k], d)
			}
		}
	}
	if b.ShiftSubtracts() != 1 {
		t.Errorf("ShiftSubtracts = %d, want 1", b.ShiftSubtracts())
	}
}

// TestSpectralBankScanSkipsIntervals: skipped ranges must never win the
// scan, matching a masked reference search.
func TestSpectralBankScanSkipsIntervals(t *testing.T) {
	const sigLen = 300
	tmpls := spectralTestTemplates(31)
	sig := seededSignal(sigLen, 13)
	b, err := NewSpectralBank(tmpls, sigLen)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Ingest(sig); err != nil {
		t.Fatal(err)
	}
	scratch := b.NewScratch()
	full, _, _, err := b.ScanBest(scratch, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	skip := []SkipInterval{{Lo: full - 3, Hi: full + 3}}
	idx, sq, _, err := b.ScanBest(scratch, 0, skip)
	if err != nil {
		t.Fatal(err)
	}
	if idx >= skip[0].Lo && idx <= skip[0].Hi {
		t.Fatalf("scan returned suppressed index %d", idx)
	}
	want := MatchedFilter(sig, tmpls[0])
	wantIdx, wantSq := -1, 0.0
	for i, v := range want {
		if i >= skip[0].Lo && i <= skip[0].Hi {
			continue
		}
		s := real(v)*real(v) + imag(v)*imag(v)
		if s > wantSq {
			wantIdx, wantSq = i, s
		}
	}
	if idx != wantIdx {
		t.Fatalf("masked peak index %d, want %d", idx, wantIdx)
	}
	if rel := math.Abs(sq-wantSq) / wantSq; rel > 1e-9 {
		t.Errorf("masked peak |y|² off by %g relative", rel)
	}
	// Everything skipped → -1.
	idx, sq, _, err = b.ScanBest(scratch, 0, []SkipInterval{{Lo: 0, Hi: sigLen - 1}})
	if err != nil {
		t.Fatal(err)
	}
	if idx != -1 || sq != 0 {
		t.Fatalf("fully masked scan returned (%d, %g), want (-1, 0)", idx, sq)
	}
}
