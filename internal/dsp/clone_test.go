package dsp

import (
	"math"
	"testing"
)

// cloneTestSignal builds a deterministic signal long enough to route the
// larger template through the FFT convolution path.
func cloneTestSignal(n int) []complex128 {
	sig := make([]complex128, n)
	for i := range sig {
		sig[i] = complex(math.Sin(0.37*float64(i)), math.Cos(0.11*float64(i)))
	}
	return sig
}

func cloneTestTemplates() [][]complex128 {
	long := make([]complex128, 64)
	for i := range long {
		long[i] = complex(math.Exp(-0.02*float64(i)), 0.3*float64(i%5))
	}
	return [][]complex128{
		{1, 2i, -1}, // short: direct convolution path
		long,        // long: FFT convolution path
	}
}

func TestMatchedFilterBankCloneMatchesOriginal(t *testing.T) {
	const n = 256
	orig, err := NewMatchedFilterBank(cloneTestTemplates(), n)
	if err != nil {
		t.Fatal(err)
	}
	clone := orig.Clone()
	sig := cloneTestSignal(n)

	// The clone starts unready even though the original could have been
	// transformed already.
	if _, _, _, err := clone.FilterPeak(clone.NewScratch(), 0, nil); err == nil {
		t.Fatal("clone was ready before its first Transform")
	}
	if err := orig.Transform(sig); err != nil {
		t.Fatal(err)
	}
	if err := clone.Transform(sig); err != nil {
		t.Fatal(err)
	}
	so, sc := orig.NewScratch(), clone.NewScratch()
	for tm := range cloneTestTemplates() {
		io_, vo, yo, err := orig.FilterPeak(so, tm, nil)
		if err != nil {
			t.Fatal(err)
		}
		ic, vc, yc, err := clone.FilterPeak(sc, tm, nil)
		if err != nil {
			t.Fatal(err)
		}
		if io_ != ic || vo != vc || yo != yc {
			t.Fatalf("template %d: clone (%d,%g,%v) != original (%d,%g,%v)",
				tm, ic, vc, yc, io_, vo, yo)
		}
	}
	// Signal state is independent: transforming a different signal into the
	// clone must not disturb the original's outputs.
	sig2 := cloneTestSignal(n)
	for i := range sig2 {
		sig2[i] *= 3
	}
	if err := clone.Transform(sig2); err != nil {
		t.Fatal(err)
	}
	i1, v1, _, err := orig.FilterPeak(so, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.Transform(sig); err != nil {
		t.Fatal(err)
	}
	i2, v2, _, err := orig.FilterPeak(so, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if i1 != i2 || v1 != v2 {
		t.Fatal("clone Transform disturbed the original bank's signal state")
	}
	// Execution counters are per-instance.
	if clone.Filters() == orig.Filters() {
		t.Fatal("clone shares execution counters with the original")
	}
}

func TestSpectralBankCloneMatchesOriginal(t *testing.T) {
	const n = 256
	orig, err := NewSpectralBank(cloneTestTemplates(), n)
	if err != nil {
		t.Fatal(err)
	}
	clone := orig.Clone()
	sig := cloneTestSignal(n)
	if err := orig.Ingest(sig); err != nil {
		t.Fatal(err)
	}
	if err := clone.Ingest(sig); err != nil {
		t.Fatal(err)
	}
	so, sc := orig.NewScratch(), clone.NewScratch()
	for tm := range cloneTestTemplates() {
		io_, vo, yo, err := orig.ScanBest(so, tm, nil)
		if err != nil {
			t.Fatal(err)
		}
		ic, vc, yc, err := clone.ScanBest(sc, tm, nil)
		if err != nil {
			t.Fatal(err)
		}
		if io_ != ic || vo != vc || yo != yc {
			t.Fatalf("template %d: clone (%d,%g,%v) != original (%d,%g,%v)",
				tm, ic, vc, yc, io_, vo, yo)
		}
	}
	// Mutating the clone's maintained spectrum must not leak into the
	// original.
	if err := clone.ShiftSubtract(0, 2+1i, 40.5, func(x int) complex128 { return 0 }); err != nil {
		t.Fatal(err)
	}
	i1, v1, _, err := orig.ScanBest(so, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.Ingest(sig); err != nil {
		t.Fatal(err)
	}
	i2, v2, _, err := orig.ScanBest(so, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if i1 != i2 || v1 != v2 {
		t.Fatal("clone ShiftSubtract disturbed the original bank's spectrum")
	}
	if clone.Ingests() != 1 || orig.Ingests() != 2 {
		t.Fatalf("counters not per-instance: clone %d, orig %d", clone.Ingests(), orig.Ingests())
	}
}
