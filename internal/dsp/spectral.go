package dsp

import (
	"fmt"
	"math"
	"sync/atomic"
)

// SpectralBank maintains the matched-filter search state of the detector's
// search-and-subtract loop entirely in the frequency domain, so that each
// extraction round costs zero forward transforms instead of one upsample
// FFT plus one residual FFT per distinct convolution size.
//
// The residual's up-sampled spectrum R(f) is computed once per Detect
// (Ingest). After each extracted response the detector calls ShiftSubtract,
// which applies the DFT shift theorem analytically:
//
//	R'(f) = R(f) − α̂ · e^{−j2πfτ̂/M} · S_t(f)
//
// where S_t(f) is the template's spectrum — recovered from the bank's
// conjugated matched-filter taps spectrum A_t(f) via
// S_t(f) = conj(A_t(f))·ω^{f(L_t−1)}, ω = e^{−j2π/M} — and τ̂ is the
// refined (fractional) peak position on the up-sampled grid. ScanBest then
// evaluates every template's matched-filter output against the maintained
// spectrum with a single inverse FFT per template and a fused peak scan.
//
// The circular transform length M = NextPow2(sigLen) is smaller than the
// MatchedFilterBank's linear convolution length NextPow2(sigLen+L_t−1);
// the wrapped convolution tail is corrected exactly from a maintained
// prefix of the time-domain signal (see scan, overlap-save identity).
//
// Because the fractional shift is the spectrum of the *continuous* pulse
// resampled on the up-sampled grid — not of the T_s-rendered pulse pushed
// through FFT interpolation — the maintained spectrum is an approximation
// of the true residual spectrum: a 900 MHz pulse sampled at 1.0016 ns is
// slightly aliased, and the periodic interpolation bleeds into the FFT
// padding bins. The detector therefore uses ScanBest only for the coarse
// peak search (which merely has to land in the right basin) and keeps
// refinement, amplitude estimation and thresholding on the exactly
// maintained T_s-domain residual.
//
// Ingest and ShiftSubtract mutate shared state; ScanBest only reads it
// (plus atomic counters) and takes caller-owned scratch, so between
// mutations any number of goroutines may scan concurrently.
type SpectralBank struct {
	sigLen  int
	m       int
	plan    *FFTPlan
	spec    []complex128 // maintained spectrum of the current signal
	specRev []complex128 // spec in bit-reversed order, kept in step
	prefix  []complex128 // maintained signal[0:maxTail] for tail correction
	maxTail int
	tmpls   []spectralTemplate

	ingests, shifts, scans atomic.Int64
}

type spectralTemplate struct {
	taps    []complex128 // conjugated time-reversed template
	spec    []complex128 // FFT_M of zero-padded taps
	specRev []complex128 // spec in bit-reversed order for the scan hot loop
	tail    int          // wrapped convolution samples: sigLen+len(taps)-1-m, ≥ 0
	center  int          // (len(template)-1)/2
}

// NewSpectralBank builds the frequency-domain search state for the given
// templates and up-sampled signal length. Every template must be non-empty
// and shorter than the signal.
func NewSpectralBank(templates [][]complex128, sigLen int) (*SpectralBank, error) {
	if sigLen < 1 {
		return nil, fmt.Errorf("dsp: spectral bank needs a positive signal length, got %d", sigLen)
	}
	if len(templates) == 0 {
		return nil, fmt.Errorf("dsp: spectral bank needs at least one template")
	}
	m := NextPow2(sigLen)
	plan, err := NewFFTPlan(m)
	if err != nil {
		return nil, err
	}
	b := &SpectralBank{
		sigLen:  sigLen,
		m:       m,
		plan:    plan,
		spec:    make([]complex128, m),
		specRev: make([]complex128, m),
		tmpls:   make([]spectralTemplate, len(templates)),
	}
	for i, t := range templates {
		if len(t) == 0 {
			return nil, fmt.Errorf("dsp: empty template %d", i)
		}
		if len(t) > sigLen {
			return nil, fmt.Errorf("dsp: template %d longer (%d) than the signal (%d)", i, len(t), sigLen)
		}
		taps := MatchedFilterTaps(t)
		spec := make([]complex128, m)
		copy(spec, taps)
		plan.transform(spec, plan.fwd)
		specRev := make([]complex128, m)
		plan.permuteInto(specRev, spec)
		tail := sigLen + len(taps) - 1 - m
		if tail < 0 {
			tail = 0
		}
		b.maxTail = max(b.maxTail, tail)
		b.tmpls[i] = spectralTemplate{
			taps:    taps,
			spec:    spec,
			specRev: specRev,
			tail:    tail,
			center:  (len(t) - 1) / 2,
		}
	}
	b.prefix = make([]complex128, b.maxTail)
	return b, nil
}

// SignalLen returns the signal length the bank was built for.
func (b *SpectralBank) SignalLen() int { return b.sigLen }

// NumTemplates returns the number of templates in the bank.
func (b *SpectralBank) NumTemplates() int { return len(b.tmpls) }

// PrefixLen returns how many leading time-domain signal samples the bank
// maintains for overlap-save tail correction; ShiftSubtract's eval
// callback is queried over exactly this range.
func (b *SpectralBank) PrefixLen() int { return b.maxTail }

// Ingests, ShiftSubtracts and Scans return how many signals were ingested,
// how many analytic spectrum updates were applied and how many template
// scans ran since the bank was built — plan-level observability.
func (b *SpectralBank) Ingests() int64        { return b.ingests.Load() }
func (b *SpectralBank) ShiftSubtracts() int64 { return b.shifts.Load() }
func (b *SpectralBank) Scans() int64          { return b.scans.Load() }

// NewScratch returns a scratch buffer sized for ScanBest. Allocate one per
// goroutine; ScanBest never touches bank-owned scratch.
func (b *SpectralBank) NewScratch() []complex128 {
	return make([]complex128, b.m+b.maxTail)
}

// Clone returns a new bank sharing b's immutable state — the template
// taps and spectra plus the single FFT plan — while owning fresh mutable
// signal state (the maintained spectrum and tail-correction prefix) and
// zeroed execution counters. The clone holds no signal: Ingest before
// scanning. The shared plan is read-only under every bank method (only
// its swap and twiddle tables are consulted), so clones may run
// concurrently, one goroutine each, while the O(templates) spectrum
// setup is paid once and shared.
func (b *SpectralBank) Clone() *SpectralBank {
	return &SpectralBank{
		sigLen:  b.sigLen,
		m:       b.m,
		plan:    b.plan,
		spec:    make([]complex128, b.m),
		specRev: make([]complex128, b.m),
		prefix:  make([]complex128, b.maxTail),
		maxTail: b.maxTail,
		tmpls:   b.tmpls,
	}
}

// Ingest replaces the maintained state with a fresh signal: one forward
// FFT plus a copy of the tail-correction prefix. Called once per Detect.
func (b *SpectralBank) Ingest(sig []complex128) error {
	if len(sig) != b.sigLen {
		return fmt.Errorf("dsp: spectral bank built for %d-sample signals, got %d", b.sigLen, len(sig))
	}
	clear(b.spec)
	copy(b.spec, sig)
	b.plan.transform(b.spec, b.plan.fwd)
	b.plan.permuteInto(b.specRev, b.spec)
	copy(b.prefix, sig[:b.maxTail])
	b.ingests.Add(1)
	return nil
}

// ShiftSubtract updates the maintained spectrum for the subtraction of
// amp·s_t(x − finePos) (template t's continuous pulse centered at the
// fractional signal index finePos) via the DFT shift theorem, with no
// transform. eval must return the sample of the subtracted pulse at signal
// index x — the bank cannot evaluate the continuous pulse itself — and is
// queried only over [0, PrefixLen()) to keep the tail-correction prefix in
// step; eval may be nil when the pulse provably vanishes there.
func (b *SpectralBank) ShiftSubtract(t int, amp complex128, finePos float64, eval func(x int) complex128) error {
	if t < 0 || t >= len(b.tmpls) {
		return fmt.Errorf("dsp: template index %d outside bank of %d", t, len(b.tmpls))
	}
	st := b.tmpls[t]
	// S_t(f)·e^{−j2πf·shift/M} = conj(A_t(f))·ω^{f·u} with
	// u = shift + L_t − 1 and shift = finePos − center: the template's
	// first tap sits at signal index finePos − center.
	u := finePos - float64(st.center) + float64(len(st.taps)-1)
	step := -2 * math.Pi * u / float64(b.m)
	wBase := complex(math.Cos(step), math.Sin(step))
	w := complex(1, 0)
	// A fractional shift must phase-rotate by the *signed* frequency: bin
	// f > M/2 represents frequency f−M, whose factor e^{−j2π(f−M)u/M}
	// differs from the unsigned ω^{fu} by e^{+j2πu} — exactly 1 for
	// integer shifts, anything at all for fractional ones. The Nyquist
	// bin is split between both branches, matching the upsampler's
	// real-preserving convention.
	theta := 2 * math.Pi * u
	corr := complex(math.Cos(theta), math.Sin(theta))
	half := b.m / 2
	spec := b.spec
	for f := range spec {
		a := st.spec[f]
		df := amp * complex(real(a), -imag(a)) * w
		switch {
		case f > half:
			df *= corr
		case f == half:
			df *= (1 + corr) / 2
		}
		spec[f] -= df
		w *= wBase
	}
	b.plan.permuteInto(b.specRev, spec)
	if eval != nil {
		for x := range b.prefix {
			b.prefix[x] -= eval(x)
		}
	}
	b.shifts.Add(1)
	return nil
}

// ScanBest matched-filters template t against the maintained spectrum and
// returns the strongest output sample outside the skip intervals: its
// output index (-1 when every sample is skipped or zero), its squared
// magnitude, and the three output samples centered on it (zero where the
// signal window ends). Output indexing matches MatchedFilterBank: index i
// is the matched-filter output at signal sample i.
//
// One inverse FFT of length M computes the circular convolution; the
// samples the wrap-around corrupts (the last tail_t outputs) are repaired
// with the overlap-save identity full[M+j] = circ[j] − full[j], where the
// linear-convolution prefix full[j] (j < tail_t ≤ L_t−1) is recomputed
// directly from the maintained signal prefix. skip must hold inclusive,
// ascending, disjoint output-index intervals; scratch must be at least
// NewScratch-sized.
func (b *SpectralBank) ScanBest(scratch []complex128, t int, skip []SkipInterval) (int, float64, [3]complex128, error) {
	var y3 [3]complex128
	if t < 0 || t >= len(b.tmpls) {
		return -1, 0, y3, fmt.Errorf("dsp: template index %d outside bank of %d", t, len(b.tmpls))
	}
	if len(scratch) < b.m+b.maxTail {
		return -1, 0, y3, fmt.Errorf("dsp: ScanBest scratch needs %d samples, got %d", b.m+b.maxTail, len(scratch))
	}
	b.scans.Add(1)
	st := b.tmpls[t]
	prod := scratch[:b.m]
	b.plan.productTransformPermuted(prod, st.specRev, b.specRev, b.plan.inv)
	scale := complex(1/float64(b.m), 0)
	// Linear-convolution prefix for the wrapped tail: full[j] for
	// j < tail only involves taps[0..j] and signal[0..j], both ≤ prefix.
	fp := scratch[b.m : b.m+st.tail]
	for j := range fp {
		var s complex128
		for k := 0; k <= j && k < len(st.taps); k++ {
			s += st.taps[k] * b.prefix[j-k]
		}
		fp[j] = s
	}
	start := len(st.taps) - 1
	wrapFrom := b.m - start // first output index whose sample wrapped
	bestIdx, bestSq := -1, 0.0
	// Visit the gaps between skip intervals in ascending index order —
	// the same samples, in the same order, as a per-sample skip test —
	// with each gap split at wrapFrom so the unwrapped stretch runs
	// without the tail-correction branch. sampleAt stays the per-sample
	// reference (the y3 reads below use it); the unwrapped loop scales
	// the components directly (scale is real), which can only flip the
	// sign of a zero component — squaring erases that, so the compared
	// sq is bit-identical to sampleAt's.
	s := real(scale)
	scanGap := func(from, to int) {
		if from < 0 {
			from = 0
		}
		if to > b.sigLen {
			to = b.sigLen
		}
		for i := from; i < to && i < wrapFrom; i++ {
			p := prod[start+i]
			re, im := real(p)*s, imag(p)*s
			sq := re*re + im*im
			if sq > bestSq {
				bestIdx, bestSq = i, sq
			}
		}
		for i := max(from, wrapFrom); i < to; i++ {
			j := start + i - b.m
			v := prod[j]*scale - fp[j]
			sq := real(v)*real(v) + imag(v)*imag(v)
			if sq > bestSq {
				bestIdx, bestSq = i, sq
			}
		}
	}
	next := 0
	for _, iv := range skip {
		scanGap(next, iv.Lo)
		if iv.Hi+1 > next {
			next = iv.Hi + 1
		}
	}
	scanGap(next, b.sigLen)
	if bestIdx < 0 {
		return -1, 0, y3, nil
	}
	y3[1] = b.sampleAt(prod, fp, scale, start, wrapFrom, bestIdx)
	if bestIdx > 0 {
		y3[0] = b.sampleAt(prod, fp, scale, start, wrapFrom, bestIdx-1)
	}
	if bestIdx < b.sigLen-1 {
		y3[2] = b.sampleAt(prod, fp, scale, start, wrapFrom, bestIdx+1)
	}
	return bestIdx, bestSq, y3, nil
}

// sampleAt returns matched-filter output i from the raw circular
// convolution, applying the overlap-save tail correction where the linear
// index start+i exceeds the transform length.
func (b *SpectralBank) sampleAt(prod, fp []complex128, scale complex128, start, wrapFrom, i int) complex128 {
	if i < wrapFrom {
		return prod[start+i] * scale
	}
	j := start + i - b.m
	return prod[j]*scale - fp[j]
}
