package dsp

import (
	"math"
	mrand "math/rand"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestAbsAndAbsSq(t *testing.T) {
	v := []complex128{3 + 4i, 0, -1}
	abs := Abs(v)
	if !closeTo(abs[0], 5, 1e-12) || abs[1] != 0 || !closeTo(abs[2], 1, 1e-12) {
		t.Fatalf("Abs = %v", abs)
	}
	sq := AbsSq(v)
	if !closeTo(sq[0], 25, 1e-12) || sq[1] != 0 || !closeTo(sq[2], 1, 1e-12) {
		t.Fatalf("AbsSq = %v", sq)
	}
}

func TestScaleAndAddSub(t *testing.T) {
	v := []complex128{1, 2}
	Scale(v, 2i)
	if v[0] != 2i || v[1] != 4i {
		t.Fatalf("Scale = %v", v)
	}
	dst := []complex128{1, 1, 1}
	AddInto(dst, []complex128{1, 2})
	if dst[0] != 2 || dst[1] != 3 || dst[2] != 1 {
		t.Fatalf("AddInto = %v", dst)
	}
	SubInto(dst, []complex128{2, 3, 0, 99})
	if dst[0] != 0 || dst[1] != 0 || dst[2] != 1 {
		t.Fatalf("SubInto = %v", dst)
	}
}

func TestEnergyAndNormalization(t *testing.T) {
	v := []complex128{3, 4i}
	if got := Energy(v); !closeTo(got, 25, 1e-12) {
		t.Fatalf("Energy = %g", got)
	}
	NormalizeEnergy(v)
	if got := Energy(v); !closeTo(got, 1, 1e-12) {
		t.Fatalf("normalized energy = %g", got)
	}
	// Zero vectors must survive normalization unchanged.
	z := []complex128{0, 0}
	NormalizeEnergy(z)
	NormalizePeak(z)
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero vector mutated")
	}
	r := []float64{0, 0}
	NormalizeEnergyReal(r)
	if r[0] != 0 {
		t.Fatal("zero real vector mutated")
	}
}

func TestNormalizePeak(t *testing.T) {
	v := []complex128{1, -2, 0.5i}
	NormalizePeak(v)
	if got := MaxAbs(v); !closeTo(got, 1, 1e-12) {
		t.Fatalf("peak after normalization = %g", got)
	}
}

func TestMaxAbsIndex(t *testing.T) {
	idx, v := MaxAbsIndex([]complex128{1, 3i, -2})
	if idx != 1 || !closeTo(v, 3, 1e-12) {
		t.Fatalf("got (%d, %g)", idx, v)
	}
	if idx, v := MaxAbsIndex(nil); idx != -1 || v != 0 {
		t.Fatalf("empty: got (%d, %g)", idx, v)
	}
	// All zeros: first index wins.
	if idx, _ := MaxAbsIndex([]complex128{0, 0}); idx != 0 {
		t.Fatalf("all-zero: got %d", idx)
	}
}

func TestConjReverseClone(t *testing.T) {
	v := []complex128{1 + 1i, 2 - 2i}
	c := Conj(v)
	if c[0] != 1-1i || c[1] != 2+2i {
		t.Fatalf("Conj = %v", c)
	}
	r := Reverse(v)
	if r[0] != v[1] || r[1] != v[0] {
		t.Fatalf("Reverse = %v", r)
	}
	cl := Clone(v)
	cl[0] = 99
	if v[0] == 99 {
		t.Fatal("Clone aliases input")
	}
}

func TestToComplexRealPartRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 11))
		n := r.IntN(64)
		v := make([]float64, n)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		back := RealPart(ToComplex(v))
		for i := range v {
			if back[i] != v[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: mrand.New(mrand.NewSource(47))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestReverseIsInvolutionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 13))
		v := randSignal(r, r.IntN(100))
		rr := Reverse(Reverse(v))
		for i := range v {
			if rr[i] != v[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: mrand.New(mrand.NewSource(48))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyIsScaleQuadraticProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 17))
		v := randSignal(r, 1+r.IntN(100))
		e := Energy(v)
		e2 := Energy(Scale(Clone(v), 2))
		return closeTo(e2, 4*e, 1e-9*(1+4*e)) && !math.IsNaN(e)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: mrand.New(mrand.NewSource(49))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
