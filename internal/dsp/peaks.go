package dsp

// Peak describes a local maximum of a magnitude signal.
type Peak struct {
	// Index is the sample index of the maximum.
	Index int
	// Value is the magnitude at Index.
	Value float64
}

// LocalMaxima returns every local maximum of mag that is at least
// minValue, in ascending index order. A maximum must be followed by a
// strict drop inside the array: a signal that rises or plateaus into the
// last sample is a truncated peak whose drop was never observed, so it is
// not reported — the same rule that already excluded constant signals and
// interior plateaus followed by a rise. At the array start no preceding
// rise is required (the drop away from index 0 is evidence enough), so a
// falling signal reports index 0. A plateau reports its first sample.
// Single-sample inputs have no room for a drop and report nothing.
func LocalMaxima(mag []float64, minValue float64) []Peak {
	var peaks []Peak
	n := len(mag)
	for i := 0; i < n; i++ {
		v := mag[i]
		if v < minValue {
			continue
		}
		if i > 0 && mag[i-1] >= v {
			continue
		}
		// Walk any plateau to the right; require a strict drop after it,
		// observed inside the array.
		j := i
		for j+1 < n && mag[j+1] == v {
			j++
		}
		if j+1 >= n || mag[j+1] > v {
			continue
		}
		peaks = append(peaks, Peak{Index: i, Value: v})
		i = j
	}
	return peaks
}

// MaxWithin returns the index and value of the largest element of
// mag[start:end] (end exclusive, both clamped). It returns (-1, 0) if the
// clamped interval is empty.
func MaxWithin(mag []float64, start, end int) (int, float64) {
	start = max(start, 0)
	end = min(end, len(mag))
	if start >= end {
		return -1, 0
	}
	best, bestIdx := mag[start], start
	for i := start + 1; i < end; i++ {
		if mag[i] > best {
			best, bestIdx = mag[i], i
		}
	}
	return bestIdx, best
}

// ArgMax returns the index of the largest element of mag (-1 when empty).
func ArgMax(mag []float64) int {
	idx, _ := MaxWithin(mag, 0, len(mag))
	return idx
}

// FirstAbove returns the index of the first element of mag that is
// >= threshold, or -1 when no element crosses it.
func FirstAbove(mag []float64, threshold float64) int {
	for i, v := range mag {
		if v >= threshold {
			return i
		}
	}
	return -1
}

// InterpolatePeak refines the location of a peak at integer index i using a
// three-point parabolic fit over mag[i-1..i+1]. It returns the fractional
// sample offset in (-0.5, 0.5) to add to i; boundary indices return 0.
func InterpolatePeak(mag []float64, i int) float64 {
	if i <= 0 || i >= len(mag)-1 {
		return 0
	}
	a, b, c := mag[i-1], mag[i], mag[i+1]
	den := a - 2*b + c
	if den == 0 {
		return 0
	}
	off := 0.5 * (a - c) / den
	if off > 0.5 {
		off = 0.5
	} else if off < -0.5 {
		off = -0.5
	}
	return off
}
