package dsp

import (
	"math"
	"testing"
)

// bluesteinConvolve computes the linear convolution of a and b by running
// an exact-length circular convolution on a Bluestein DFTPlan — the
// alternative ConvolveWith rejected in favor of padding to the next power
// of two (see its doc and BenchmarkConvolvePaddedVsBluestein).
func bluesteinConvolve(tb testing.TB, a, b []complex128) []complex128 {
	outLen := len(a) + len(b) - 1
	p, err := NewDFTPlan(outLen)
	if err != nil {
		tb.Fatal(err)
	}
	fa := make([]complex128, outLen)
	fb := make([]complex128, outLen)
	copy(fa, a)
	copy(fb, b)
	p.Execute(fa)
	p.Execute(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	p.ExecuteInverse(fa)
	return fa
}

// TestConvolveWithPaddedPlan: for a non-power-of-two convolution length,
// ConvolveWith on plans padded beyond the minimum must agree with the
// minimal-plan result (which is bit-identical to Convolve) and with the
// exact-length Bluestein convolution, to rounding.
func TestConvolveWithPaddedPlan(t *testing.T) {
	cases := []struct{ la, lb int }{
		{61, 4064}, // detector shape: template × up-sampled CIR, outLen 4124
		{37, 1016}, // non-pow2 outLen 1052, minimal plan 2048
	}
	for _, c := range cases {
		a := randComplex(c.la, uint64(c.la))
		b := randComplex(c.lb, uint64(c.lb)+1)
		outLen := c.la + c.lb - 1
		want := Convolve(a, b)
		blue := bluesteinConvolve(t, a, b)
		var scale float64
		for _, v := range want {
			scale = math.Max(scale, math.Hypot(real(v), imag(v)))
		}
		for _, planLen := range []int{NextPow2(outLen), 4 * NextPow2(outLen)} {
			p, err := NewFFTPlan(planLen)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ConvolveWith(make([]complex128, outLen), a, b, p)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if d := cAbs(got[i] - want[i]); d > 1e-9*scale {
					t.Fatalf("la=%d lb=%d plan=%d: out[%d] = %v, Convolve %v (Δ=%g)",
						c.la, c.lb, planLen, i, got[i], want[i], d)
				}
				if d := cAbs(got[i] - blue[i]); d > 1e-9*scale {
					t.Fatalf("la=%d lb=%d plan=%d: out[%d] = %v, Bluestein %v (Δ=%g)",
						c.la, c.lb, planLen, i, got[i], blue[i], d)
				}
			}
		}
	}
}

// BenchmarkConvolvePaddedVsBluestein backs the padding decision in
// ConvolveWith and MatchedFilterBank.planFor: a non-power-of-two
// convolution padded to the next power of two against the same
// convolution on an exact-length Bluestein DFTPlan (whose every
// transform runs three power-of-two FFTs of roughly twice the size).
func BenchmarkConvolvePaddedVsBluestein(bm *testing.B) {
	const la, lb = 61, 4064 // outLen 4124: pad to 8192, Bluestein inner 16384
	a := randComplex(la, 1)
	b := randComplex(lb, 2)
	outLen := la + lb - 1

	bm.Run("padded-pow2", func(bm *testing.B) {
		p, err := NewFFTPlan(NextPow2(outLen))
		if err != nil {
			bm.Fatal(err)
		}
		dst := make([]complex128, outLen)
		bm.ResetTimer()
		for i := 0; i < bm.N; i++ {
			if _, err := ConvolveWith(dst, a, b, p); err != nil {
				bm.Fatal(err)
			}
		}
	})

	bm.Run("bluestein-exact", func(bm *testing.B) {
		p, err := NewDFTPlan(outLen)
		if err != nil {
			bm.Fatal(err)
		}
		fa := make([]complex128, outLen)
		fb := make([]complex128, outLen)
		bm.ResetTimer()
		for i := 0; i < bm.N; i++ {
			clear(fa)
			clear(fb)
			copy(fa, a)
			copy(fb, b)
			p.Execute(fa)
			p.Execute(fb)
			for i := range fa {
				fa[i] *= fb[i]
			}
			p.ExecuteInverse(fa)
		}
	})
}
