package dsp

import (
	"math"
	mrand "math/rand"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(v); !closeTo(got, 5, 1e-12) {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := Variance(v); !closeTo(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %g, want %g", got, 32.0/7.0)
	}
	if got := StdDev(v); !closeTo(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %g", got)
	}
}

func TestStatsEdgeCases(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("empty/single-sample statistics must be 0")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile must be 0")
	}
	if RMS(nil) != 0 {
		t.Fatal("empty RMS must be 0")
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-10, 1}, {110, 5}, {12.5, 1.5},
	}
	for _, c := range cases {
		if got := Percentile(v, c.p); !closeTo(got, c.want, 1e-12) {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := Median([]float64{3, 1, 2}); !closeTo(got, 2, 1e-12) {
		t.Errorf("Median = %g, want 2", got)
	}
}

func TestRunningMatchesBatchProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 55))
		n := 2 + r.IntN(300)
		v := make([]float64, n)
		var run Running
		for i := range v {
			v[i] = r.NormFloat64() * 10
			run.Add(v[i])
		}
		scale := 1 + math.Abs(Mean(v))
		return run.N() == n &&
			closeTo(run.Mean(), Mean(v), 1e-9*scale) &&
			closeTo(run.Variance(), Variance(v), 1e-7*(1+Variance(v))) &&
			run.Min() == minOf(v) && run.Max() == maxOf(v)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: mrand.New(mrand.NewSource(46))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunningZeroValue(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Variance() != 0 || r.StdDev() != 0 {
		t.Fatal("zero-value Running must report zeros")
	}
	r.Add(5)
	if r.Min() != 5 || r.Max() != 5 || r.Mean() != 5 {
		t.Fatal("single observation mishandled")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Rate() != 0 || c.Percent() != 0 {
		t.Fatal("zero-value Counter must report 0")
	}
	for i := 0; i < 1000; i++ {
		c.Record(i%4 != 0) // 75% success
	}
	if c.Trials() != 1000 || c.Successes() != 750 {
		t.Fatalf("trials=%d successes=%d", c.Trials(), c.Successes())
	}
	if !closeTo(c.Percent(), 75, 1e-12) {
		t.Fatalf("Percent = %g, want 75", c.Percent())
	}
}

func TestDBConversions(t *testing.T) {
	if got := DB(100); !closeTo(got, 20, 1e-12) {
		t.Errorf("DB(100) = %g, want 20", got)
	}
	if got := FromDB(30); !closeTo(got, 1000, 1e-9) {
		t.Errorf("FromDB(30) = %g, want 1000", got)
	}
	if !math.IsInf(DB(0), -1) || !math.IsInf(DB(-1), -1) {
		t.Error("DB of non-positive ratio must be -Inf")
	}
	// Round trip.
	for _, x := range []float64{0.001, 1, 42, 1e6} {
		if got := FromDB(DB(x)); !closeTo(got, x, 1e-9*x) {
			t.Errorf("round trip %g -> %g", x, got)
		}
	}
}

func minOf(v []float64) float64 {
	m := v[0]
	for _, x := range v[1:] {
		m = math.Min(m, x)
	}
	return m
}

func maxOf(v []float64) float64 {
	m := v[0]
	for _, x := range v[1:] {
		m = math.Max(m, x)
	}
	return m
}
