package dsp

import "math"

// Hann returns an n-point Hann window (symmetric). n <= 0 returns nil and
// n == 1 returns [1].
func Hann(n int) []float64 {
	return cosineWindow(n, 0.5, 0.5)
}

// Hamming returns an n-point Hamming window (symmetric).
func Hamming(n int) []float64 {
	return cosineWindow(n, 0.54, 0.46)
}

// Blackman returns an n-point Blackman window (symmetric).
func Blackman(n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{1}
	}
	out := make([]float64, n)
	for i := range out {
		x := 2 * math.Pi * float64(i) / float64(n-1)
		out[i] = 0.42 - 0.5*math.Cos(x) + 0.08*math.Cos(2*x)
	}
	return out
}

func cosineWindow(n int, a0, a1 float64) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{1}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = a0 - a1*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return out
}

// ApplyWindow multiplies the signal v element-wise by the real window w in
// place and returns v. Lengths may differ; only the overlap is touched.
func ApplyWindow(v []complex128, w []float64) []complex128 {
	n := min(len(v), len(w))
	for i := 0; i < n; i++ {
		v[i] *= complex(w[i], 0)
	}
	return v
}
