package dsp

import (
	"math"
	"math/cmplx"
)

// convFFTThreshold is the product of operand lengths above which Convolve
// switches from the direct O(n·m) algorithm to the FFT-based one.
const convFFTThreshold = 1 << 14

// Convolve returns the full linear convolution of a and b with output
// length len(a)+len(b)-1. Small inputs are convolved directly; larger ones
// via FFT. Either input being empty yields an empty output.
func Convolve(a, b []complex128) []complex128 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	if convolveUseDirect(len(a), len(b)) {
		return convolveDirect(a, b)
	}
	return convolveFFT(a, b)
}

// convolveUseDirect decides the direct-vs-FFT routing for operand lengths
// la, lb ≥ 1. The comparison is la·lb ≤ convFFTThreshold, phrased as a
// division so the product cannot overflow int on large inputs.
func convolveUseDirect(la, lb int) bool {
	return la <= convFFTThreshold/lb
}

func convolveDirect(a, b []complex128) []complex128 {
	out := make([]complex128, len(a)+len(b)-1)
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

func convolveFFT(a, b []complex128) []complex128 {
	outLen := len(a) + len(b) - 1
	m := NextPow2(outLen)
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	copy(fa, a)
	copy(fb, b)
	radix2(fa, false)
	radix2(fb, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	radix2(fa, true)
	Scale(fa, complex(1/float64(m), 0))
	return fa[:outLen]
}

// MatchedFilterTaps builds the impulse response of the matched filter for
// the pulse template s, i.e. the conjugated time-reversed template
// h_MF = [s*(Np-1), s*(Np-2), ..., s*(0)] as in Sect. IV step 2 of the
// paper (the conjugation is the complex-baseband generalization).
func MatchedFilterTaps(template []complex128) []complex128 {
	return Reverse(Conj(template))
}

// MatchedFilter convolves the received signal r with the matched filter for
// template s and returns the output aligned so that index i of the result
// corresponds to a pulse starting at sample i of r: a template located at
// delay index d in r produces its correlation peak at output index d.
// The output has the same length as r.
func MatchedFilter(r, template []complex128) []complex128 {
	if len(r) == 0 || len(template) == 0 {
		return nil
	}
	full := Convolve(MatchedFilterTaps(template), r)
	// The full convolution peaks at d + len(template) - 1; drop the leading
	// transient so the peak lands on d, and trim the trailing transient.
	start := len(template) - 1
	out := make([]complex128, len(r))
	copy(out, full[start:])
	return out
}

// CrossCorrelate returns the cross-correlation of a against b at
// non-negative lags 0..len(a)-1: out[k] = Σ_n a[n+k]·conj(b[n]).
func CrossCorrelate(a, b []complex128) []complex128 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]complex128, len(a))
	for k := range out {
		var acc complex128
		for n := 0; n+k < len(a) && n < len(b); n++ {
			acc += a[n+k] * cmplx.Conj(b[n])
		}
		out[k] = acc
	}
	return out
}

// NormalizedCorrelation returns the normalized inner product of a and b
// (cosine similarity of the two vectors), a value in [0, 1] for
// equal-length unit-energy templates. Zero-energy inputs yield 0.
func NormalizedCorrelation(a, b []complex128) float64 {
	ea, eb := Energy(a), Energy(b)
	if ea == 0 || eb == 0 {
		return 0
	}
	var acc complex128
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		acc += a[i] * cmplx.Conj(b[i])
	}
	return cmplx.Abs(acc) / math.Sqrt(ea*eb)
}
