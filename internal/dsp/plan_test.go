package dsp

import (
	"math/rand/v2"
	"testing"
)

// randComplex returns a deterministic pseudo-random complex vector.
func randComplex(n int, seed uint64) []complex128 {
	rng := rand.New(rand.NewPCG(seed, 29))
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return out
}

// equalExact fails unless got and want are bit-identical.
func equalExact(t *testing.T, got, want []complex128, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: sample %d = %v, want %v", what, i, got[i], want[i])
		}
	}
}

func TestNewFFTPlanRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, -1, 3, 12, 1016} {
		if _, err := NewFFTPlan(n); err == nil {
			t.Errorf("length %d accepted", n)
		}
	}
}

func TestFFTPlanMatchesFFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 64, 1024, 4096} {
		p, err := NewFFTPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.Len() != n {
			t.Fatalf("Len = %d", p.Len())
		}
		v := randComplex(n, uint64(n))

		got := Clone(v)
		p.Execute(got)
		equalExact(t, got, FFT(v), "forward")

		got = Clone(v)
		p.ExecuteInverse(got)
		equalExact(t, got, IFFT(v), "inverse")

		// Plans are reusable: a second pass must give the same answer.
		got2 := Clone(v)
		p.Execute(got2)
		equalExact(t, got2, FFT(v), "forward reuse")
	}
}

func TestProductTransformMatchesSeparateSteps(t *testing.T) {
	// The fused permute-while-multiplying entry must be bit-identical to
	// filling the product in index order and transforming it, in both
	// directions — it is the ScanBest hot path.
	for _, n := range []int{1, 2, 8, 1024} {
		p, err := NewFFTPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		a := randComplex(n, uint64(n))
		b := randComplex(n, uint64(n)+101)
		for _, tw := range [][]complex128{p.fwd, p.inv} {
			want := make([]complex128, n)
			for i := range want {
				want[i] = a[i] * b[i]
			}
			p.transform(want, tw)
			got := make([]complex128, n)
			p.productTransform(got, a, b, tw)
			equalExact(t, got, want, "fused product transform")
		}
	}
}

func TestProductTransformPermutedMatchesNaturalOrder(t *testing.T) {
	// Pre-permuting both operands (permuteInto) and running the
	// sequential-load entry must give bit-identical results to the
	// natural-order fused form — the ScanBest hot path stores spectra
	// bit-reversed and relies on this.
	for _, n := range []int{1, 2, 8, 1024} {
		p, err := NewFFTPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		a := randComplex(n, uint64(n)+301)
		b := randComplex(n, uint64(n)+401)
		for _, tw := range [][]complex128{p.fwd, p.inv} {
			want := make([]complex128, n)
			p.productTransform(want, a, b, tw)
			ar := make([]complex128, n)
			br := make([]complex128, n)
			p.permuteInto(ar, a)
			p.permuteInto(br, b)
			got := make([]complex128, n)
			p.productTransformPermuted(got, ar, br, tw)
			equalExact(t, got, want, "permuted product transform")
		}
	}
}

func TestDFTPlanMatchesFFTAllLengths(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 12, 100, 127, 256, 1016} {
		p, err := NewDFTPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		v := randComplex(n, uint64(n)+7)

		got := Clone(v)
		p.Execute(got)
		equalExact(t, got, FFT(v), "forward")

		got = Clone(v)
		p.ExecuteInverse(got)
		equalExact(t, got, IFFT(v), "inverse")

		got2 := Clone(v)
		p.Execute(got2)
		equalExact(t, got2, FFT(v), "forward reuse")
	}
}

func TestUpsamplePlanMatchesUpsampleFFT(t *testing.T) {
	cases := []struct{ n, factor int }{
		{1016, 4}, {1016, 8}, {128, 4}, {15, 3}, {64, 1}, {7, 2},
	}
	for _, c := range cases {
		p, err := NewUpsamplePlan(c.n, c.factor)
		if err != nil {
			t.Fatal(err)
		}
		if p.InputLen() != c.n || p.OutputLen() != c.n*c.factor {
			t.Fatalf("plan lengths %d → %d", p.InputLen(), p.OutputLen())
		}
		v := randComplex(c.n, uint64(c.n*c.factor))
		want, err := UpsampleFFT(v, c.factor)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]complex128, c.n*c.factor)
		// Dirty the buffer: Execute must not depend on prior contents.
		for i := range dst {
			dst[i] = complex(999, -999)
		}
		equalExact(t, p.Execute(dst, v), want, "upsample")
		equalExact(t, p.Execute(dst, v), want, "upsample reuse")
	}
}

func TestNewUpsamplePlanRejectsBadFactor(t *testing.T) {
	if _, err := NewUpsamplePlan(8, 0); err == nil {
		t.Error("factor 0 accepted")
	}
	if _, err := NewUpsamplePlan(-1, 2); err == nil {
		t.Error("negative length accepted")
	}
}

func TestConvolveWithMatchesConvolve(t *testing.T) {
	cases := []struct{ la, lb int }{
		{4, 5},     // direct path
		{100, 100}, // direct path (10000 < threshold)
		{64, 4000}, // FFT path
		{37, 4064}, // the detector's template × up-sampled CIR shape
	}
	for _, c := range cases {
		a := randComplex(c.la, uint64(c.la))
		b := randComplex(c.lb, uint64(c.lb)+1)
		want := Convolve(a, b)
		var p *FFTPlan
		if !convolveUseDirect(c.la, c.lb) {
			var err error
			if p, err = NewFFTPlan(NextPow2(c.la + c.lb - 1)); err != nil {
				t.Fatal(err)
			}
		}
		dst := make([]complex128, c.la+c.lb-1)
		got, err := ConvolveWith(dst, a, b, p)
		if err != nil {
			t.Fatal(err)
		}
		equalExact(t, got, want, "convolution")
	}
}

func TestConvolveWithErrors(t *testing.T) {
	a := randComplex(64, 1)
	b := randComplex(4000, 2)
	if _, err := ConvolveWith(make([]complex128, 10), a, b, nil); err == nil {
		t.Error("wrong destination length accepted")
	}
	if _, err := ConvolveWith(make([]complex128, 4063), a, b, nil); err == nil {
		t.Error("missing plan accepted")
	}
	wrong, _ := NewFFTPlan(16)
	if _, err := ConvolveWith(make([]complex128, 4063), a, b, wrong); err == nil {
		t.Error("wrong plan length accepted")
	}
	if out, err := ConvolveWith(nil, nil, b, nil); out != nil || err != nil {
		t.Error("empty input should yield nil, nil")
	}
}

func TestMatchedFilterWithMatchesMatchedFilter(t *testing.T) {
	r := randComplex(4064, 3)
	tmpl := randComplex(37, 4)
	want := MatchedFilter(r, tmpl)
	p, err := NewFFTPlan(NextPow2(len(tmpl) + len(r) - 1))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]complex128, len(r))
	got, err := MatchedFilterWith(dst, r, tmpl, p)
	if err != nil {
		t.Fatal(err)
	}
	equalExact(t, got, want, "matched filter")
}

func TestMatchedFilterBankMatchesMatchedFilter(t *testing.T) {
	const sigLen = 4064
	templates := [][]complex128{
		randComplex(37, 11),
		randComplex(75, 12),
		randComplex(97, 13),
		randComplex(3, 14), // small enough for the direct path
	}
	bank, err := NewMatchedFilterBank(templates, sigLen)
	if err != nil {
		t.Fatal(err)
	}
	if bank.SignalLen() != sigLen || bank.NumTemplates() != len(templates) {
		t.Fatalf("bank geometry %d/%d", bank.SignalLen(), bank.NumTemplates())
	}
	dst := make([]complex128, sigLen)
	for round := 0; round < 2; round++ { // exercise buffer reuse across signals
		sig := randComplex(sigLen, 20+uint64(round))
		if err := bank.Transform(sig); err != nil {
			t.Fatal(err)
		}
		for ti, tmpl := range templates {
			want := MatchedFilter(sig, tmpl)
			got, err := bank.FilterInto(dst, ti)
			if err != nil {
				t.Fatal(err)
			}
			equalExact(t, got, want, "bank output")
		}
	}
}

func TestMatchedFilterBankErrors(t *testing.T) {
	if _, err := NewMatchedFilterBank(nil, 8); err == nil {
		t.Error("empty bank accepted")
	}
	if _, err := NewMatchedFilterBank([][]complex128{{1}}, 0); err == nil {
		t.Error("zero signal length accepted")
	}
	if _, err := NewMatchedFilterBank([][]complex128{{}}, 8); err == nil {
		t.Error("empty template accepted")
	}
	bank, err := NewMatchedFilterBank([][]complex128{randComplex(4, 1)}, 16)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]complex128, 16)
	if _, err := bank.FilterInto(dst, 0); err == nil {
		t.Error("FilterInto before Transform accepted")
	}
	if err := bank.Transform(make([]complex128, 8)); err == nil {
		t.Error("wrong signal length accepted")
	}
	if err := bank.Transform(make([]complex128, 16)); err != nil {
		t.Fatal(err)
	}
	if _, err := bank.FilterInto(dst, 5); err == nil {
		t.Error("template index out of range accepted")
	}
	if _, err := bank.FilterInto(make([]complex128, 2), 0); err == nil {
		t.Error("short destination accepted")
	}
}

func TestPlanExecutionCounters(t *testing.T) {
	up, err := NewUpsamplePlan(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]complex128, 16)
	out := make([]complex128, 64)
	for i := 0; i < 3; i++ {
		up.Execute(out, in)
	}
	if up.Execs() != 3 {
		t.Errorf("upsample execs = %d, want 3", up.Execs())
	}

	bank, err := NewMatchedFilterBank([][]complex128{{1, 2}, {3}}, 16)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]complex128, 16)
	for i := 0; i < 2; i++ {
		if err := bank.Transform(in); err != nil {
			t.Fatal(err)
		}
		for tmpl := 0; tmpl < bank.NumTemplates(); tmpl++ {
			if _, err := bank.FilterInto(dst, tmpl); err != nil {
				t.Fatal(err)
			}
		}
	}
	if bank.Transforms() != 2 {
		t.Errorf("bank transforms = %d, want 2", bank.Transforms())
	}
	if bank.Filters() != 4 {
		t.Errorf("bank filters = %d, want 4", bank.Filters())
	}
}
