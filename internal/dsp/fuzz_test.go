package dsp

import (
	"encoding/binary"
	"math"
	"testing"
)

// bytesToSignal reinterprets fuzz bytes as a bounded complex signal,
// rejecting NaN/Inf inputs (the library's documented domain).
func bytesToSignal(data []byte, maxLen int) []complex128 {
	n := len(data) / 16
	if n == 0 || n > maxLen {
		return nil
	}
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		re := math.Float64frombits(binary.LittleEndian.Uint64(data[16*i:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(data[16*i+8:]))
		if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
			return nil
		}
		// Clamp magnitudes so energy checks stay in float range.
		re = math.Max(-1e6, math.Min(1e6, re))
		im = math.Max(-1e6, math.Min(1e6, im))
		out[i] = complex(re, im)
	}
	return out
}

func FuzzFFTRoundTrip(f *testing.F) {
	f.Add(make([]byte, 16*8))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		v := bytesToSignal(data, 512)
		if v == nil {
			t.Skip()
		}
		back := IFFT(FFT(v))
		if len(back) != len(v) {
			t.Fatalf("length changed: %d -> %d", len(v), len(back))
		}
		scale := MaxAbs(v) + 1
		for i := range v {
			if d := back[i] - v[i]; math.Hypot(real(d), imag(d)) > 1e-6*scale*float64(len(v)) {
				t.Fatalf("round trip diverged at %d: %v vs %v", i, back[i], v[i])
			}
		}
	})
}

func FuzzUpsampleFFT(f *testing.F) {
	f.Add(make([]byte, 16*4), 4)
	f.Fuzz(func(t *testing.T, data []byte, factor int) {
		v := bytesToSignal(data, 256)
		if v == nil {
			t.Skip()
		}
		up, err := UpsampleFFT(v, factor)
		if factor < 1 {
			if err == nil {
				t.Fatal("invalid factor accepted")
			}
			return
		}
		if factor > 16 {
			t.Skip()
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(up) != len(v)*factor {
			t.Fatalf("length %d, want %d", len(up), len(v)*factor)
		}
	})
}

func FuzzConvolve(f *testing.F) {
	f.Add(make([]byte, 32), make([]byte, 48))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		va := bytesToSignal(a, 128)
		vb := bytesToSignal(b, 128)
		out := Convolve(va, vb)
		if len(va) == 0 || len(vb) == 0 {
			if out != nil {
				t.Fatal("empty convolution must be nil")
			}
			return
		}
		if len(out) != len(va)+len(vb)-1 {
			t.Fatalf("length %d, want %d", len(out), len(va)+len(vb)-1)
		}
	})
}
