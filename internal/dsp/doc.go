// Package dsp provides the signal-processing primitives used throughout the
// concurrent-ranging simulator: complex vector arithmetic, fast Fourier
// transforms (radix-2 and Bluestein for arbitrary lengths), FFT-based
// up-sampling, convolution and matched filtering, window functions, and the
// statistics helpers used by the Monte-Carlo experiment harness.
//
// All routines operate on plain []complex128 or []float64 slices and never
// retain references to their arguments unless documented otherwise, so
// callers are free to reuse buffers.
package dsp
