package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// This file implements plan-cached transforms for the detector hot path.
// FFT, IFFT, UpsampleFFT and Convolve recompute bit-reversal permutations,
// twiddle factors and (for non-power-of-two lengths) Bluestein chirp
// spectra on every call; the plans below precompute all of it once for a
// fixed length, FFTW-style, and reuse scratch buffers across executions.
// Every planned transform produces bit-identical results to its plan-free
// counterpart: the twiddle and chirp tables hold exactly the values the
// on-the-fly recurrences generate, and the butterfly order is unchanged.
//
// Plans hold scratch state and are therefore NOT safe for concurrent use;
// give each goroutine its own plan.

// FFTPlan is a precomputed radix-2 Cooley–Tukey plan for one fixed
// power-of-two length: the bit-reversal permutation, the per-stage twiddle
// factors of both directions, and scratch buffers for the convolution
// helpers.
type FFTPlan struct {
	n      int
	swaps  [][2]int32
	rev    []int32      // full bit-reversal index table (rev[i] = reverse of i)
	fwd    []complex128 // forward twiddles, one block of size/2 per stage
	inv    []complex128 // inverse twiddles, same layout
	fa, fb []complex128 // lazily sized scratch for ConvolveWith
}

// NewFFTPlan builds a plan for transforms of length n, which must be a
// power of two (and at least 1).
func NewFFTPlan(n int) (*FFTPlan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: FFT plan length %d is not a power of two", n)
	}
	p := &FFTPlan{n: n}
	if n == 1 {
		return p, nil
	}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	p.rev = make([]int32, n)
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		p.rev[i] = int32(j)
		if j > i {
			p.swaps = append(p.swaps, [2]int32{int32(i), int32(j)})
		}
	}
	p.fwd = twiddles(n, false)
	p.inv = twiddles(n, true)
	return p, nil
}

// twiddles generates the per-stage twiddle factors with the same recurrence
// radix2 uses, so planned butterflies are bit-identical to unplanned ones.
func twiddles(n int, inverse bool) []complex128 {
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	out := make([]complex128, 0, n-1)
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wBase := complex(math.Cos(step), math.Sin(step))
		w := complex(1, 0)
		for k := 0; k < half; k++ {
			out = append(out, w)
			w *= wBase
		}
	}
	return out
}

// Len returns the transform length the plan was built for.
func (p *FFTPlan) Len() int { return p.n }

// Execute computes the in-place forward DFT of v, which must have the
// plan's length.
func (p *FFTPlan) Execute(v []complex128) {
	p.mustLen(v)
	p.transform(v, p.fwd)
}

// ExecuteInverse computes the in-place inverse DFT of v (including the 1/N
// normalization), which must have the plan's length.
func (p *FFTPlan) ExecuteInverse(v []complex128) {
	p.mustLen(v)
	p.transform(v, p.inv)
	Scale(v, complex(1/float64(p.n), 0))
}

func (p *FFTPlan) mustLen(v []complex128) {
	if len(v) != p.n {
		panic(fmt.Sprintf("dsp: plan of length %d executed on %d samples", p.n, len(v)))
	}
}

// transform runs the butterfly passes with a precomputed twiddle table; no
// normalization is applied (the Bluestein driver needs the raw inverse).
func (p *FFTPlan) transform(v []complex128, tw []complex128) {
	if p.n <= 1 {
		return
	}
	for _, s := range p.swaps {
		v[s[0]], v[s[1]] = v[s[1]], v[s[0]]
	}
	p.passes(v, tw)
}

// productTransform fills v with the elementwise product a⊙b and runs the
// butterfly passes on it — equivalent to writing the products in index
// order and calling transform, but one array traversal cheaper: the
// bit-reversal permutation is applied while the products are written, so
// the separate swap pass disappears. Each product is computed from the
// same two operands either way, so results are bit-identical.
func (p *FFTPlan) productTransform(v, a, b []complex128, tw []complex128) {
	p.mustLen(v)
	p.mustLen(a)
	p.mustLen(b)
	n := p.n
	switch {
	case n <= 1:
		if n == 1 {
			v[0] = a[0] * b[0]
		}
		return
	case n == 2:
		x0, x1 := a[0]*b[0], a[1]*b[1]
		v[0], v[1] = x0+x1, x0-x1
		return
	}
	// Permutation, product, and the first two butterfly stages all fuse
	// into one pass: each product is loaded through the bit-reversal
	// table and fed straight into the size-2 and size-4 butterflies of
	// its 4-sample block, skipping two full store/reload traversals.
	// Every operation still sees the same operands in the same order, so
	// results are bit-identical to the staged form.
	w4 := tw[2]
	for i := 0; i < n; i += 4 {
		r := p.rev[i : i+4 : i+4]
		x0 := a[r[0]] * b[r[0]]
		x1 := a[r[1]] * b[r[1]]
		x2 := a[r[2]] * b[r[2]]
		x3 := a[r[3]] * b[r[3]]
		b0, b1 := x0+x1, x0-x1
		b2, b3 := x2+x3, x2-x3
		t := b3 * w4
		q := v[i : i+4 : i+4]
		q[0], q[2] = b0+b2, b0-b2
		q[1], q[3] = b1+t, b1-t
	}
	p.tailPasses(v, tw)
}

// permuteInto writes the bit-reversal permutation of src into dst:
// dst[i] = src[rev[i]]. Both must have the plan's length. Operands
// stored pre-permuted let productTransformPermuted run with purely
// sequential loads — the gather through the reversal table disappears
// from the hot loop.
func (p *FFTPlan) permuteInto(dst, src []complex128) {
	p.mustLen(dst)
	p.mustLen(src)
	if p.n <= 1 {
		copy(dst, src)
		return
	}
	for i, r := range p.rev {
		dst[i] = src[r]
	}
}

// productTransformPermuted is productTransform for operands that are
// already stored in bit-reversed order (see permuteInto): the products
// stream sequentially through memory with no gathers. Each product pairs
// the same two values as the natural-order form, so results are
// bit-identical.
func (p *FFTPlan) productTransformPermuted(v, ar, br []complex128, tw []complex128) {
	p.mustLen(v)
	p.mustLen(ar)
	p.mustLen(br)
	n := p.n
	switch {
	case n <= 1:
		if n == 1 {
			v[0] = ar[0] * br[0]
		}
		return
	case n == 2:
		x0, x1 := ar[0]*br[0], ar[1]*br[1]
		v[0], v[1] = x0+x1, x0-x1
		return
	}
	w4 := tw[2]
	for i := 0; i < n; i += 4 {
		x0 := ar[i] * br[i]
		x1 := ar[i+1] * br[i+1]
		x2 := ar[i+2] * br[i+2]
		x3 := ar[i+3] * br[i+3]
		b0, b1 := x0+x1, x0-x1
		b2, b3 := x2+x3, x2-x3
		t := b3 * w4
		q := v[i : i+4 : i+4]
		q[0], q[2] = b0+b2, b0-b2
		q[1], q[3] = b1+t, b1-t
	}
	p.tailPasses(v, tw)
}

// passes runs the butterfly stages over already-permuted data.
func (p *FFTPlan) passes(v []complex128, tw []complex128) {
	n := p.n
	if n == 2 {
		a, b := v[0], v[1]
		v[0], v[1] = a+b, a-b
		return
	}
	// The size-2 and size-4 stages touch disjoint 4-sample blocks, so
	// both run fused in a single pass over the data, skipping the
	// intermediate stores and reloads. Their only non-trivial twiddle
	// factor is tw[2] (size-4 stage, k = 1); the others are exactly 1+0i
	// (the twiddle recurrence starts at 1), so those multiplies are
	// skipped. Each butterfly still sees the same operands in the same
	// order, so results stay bit-identical to the staged form.
	w4 := tw[2]
	for i := 0; i < n; i += 4 {
		q := v[i : i+4 : i+4]
		b0, b1 := q[0]+q[1], q[0]-q[1]
		b2, b3 := q[2]+q[3], q[2]-q[3]
		t := b3 * w4
		q[0], q[2] = b0+b2, b0-b2
		q[1], q[3] = b1+t, b1-t
	}
	p.tailPasses(v, tw)
}

// tailPasses runs the butterfly stages from size 8 upward; the size-2
// and size-4 stages must already have been applied by one of the fused
// entry passes above. Stages are consumed two at a time where possible:
// within one 2s-sample block, the size-s butterflies of both halves and
// the size-2s butterflies that consume their outputs touch only that
// block, so each stage pair runs in a single traversal of the data. A
// butterfly's operands and operation order are unchanged, so results
// stay bit-identical to running the stages separately.
func (p *FFTPlan) tailPasses(v []complex128, tw []complex128) {
	n := p.n
	off := 3 // past the twiddle blocks of the size-2 and size-4 stages
	size := 8
	for ; 2*size <= n; size <<= 2 {
		s := size
		half := s >> 1
		twS := tw[off : off+half]        // size-s stage twiddles
		tw2 := tw[off+half : off+half+s] // size-2s stage twiddles
		for start := 0; start < n; start += 2 * s {
			q := v[start : start+2*s : start+2*s]
			// j = 0: twS[0] and tw2[0] are exactly 1+0i, so two of the
			// three multiplies vanish.
			a0, a1, a2, a3 := q[0], q[half], q[s], q[s+half]
			b0, b1 := a0+a1, a0-a1
			b2, b3 := a2+a3, a2-a3
			q[0], q[s] = b0+b2, b0-b2
			t := b3 * tw2[half]
			q[half], q[s+half] = b1+t, b1-t
			for j := 1; j < half; j++ {
				w1 := twS[j]
				a0, a1, a2, a3 := q[j], q[j+half], q[j+s], q[j+s+half]
				t1 := a1 * w1
				b0, b1 := a0+t1, a0-t1
				t3 := a3 * w1
				b2, b3 := a2+t3, a2-t3
				t := b2 * tw2[j]
				q[j], q[j+s] = b0+t, b0-t
				t = b3 * tw2[j+half]
				q[j+half], q[j+s+half] = b1+t, b1-t
			}
		}
		off += half + s
	}
	// At most one stage remains (odd tail-stage count): the plain
	// radix-2 body.
	for ; size <= n; size <<= 1 {
		half := size >> 1
		stage := tw[off : off+half]
		for start := 0; start < n; start += size {
			// Split the block into its two butterfly halves so the inner
			// loop indexes each slice from 0 and the compiler drops the
			// per-access bounds checks; the k = 0 butterfly skips its
			// multiply because stage[0] is exactly 1+0i in every stage
			// (the twiddle recurrence starts at 1). The operation order
			// per butterfly is unchanged, so results stay bit-identical.
			lo := v[start : start+half : start+half]
			hi := v[start+half : start+size : start+size]
			a, b := lo[0], hi[0]
			lo[0], hi[0] = a+b, a-b
			for k := 1; k < half && k < len(lo) && k < len(hi); k++ {
				a := lo[k]
				b := hi[k] * stage[k]
				lo[k] = a + b
				hi[k] = a - b
			}
		}
		off += half
	}
}

// DFTPlan is a precomputed plan for one fixed, arbitrary transform length.
// Powers of two run on an FFTPlan directly; other lengths run Bluestein's
// algorithm with cached chirp factors, cached chirp-filter spectra and a
// reusable scratch buffer. Like FFTPlan it is not safe for concurrent use.
type DFTPlan struct {
	n     int
	radix *FFTPlan // power-of-two fast path (nil otherwise)

	// Bluestein state for non-power-of-two lengths.
	inner      *FFTPlan
	wFwd, wInv []complex128 // chirp factors per direction
	bFwd, bInv []complex128 // spectrum of the chirp filter per direction
	scratch    []complex128
}

// NewDFTPlan builds a plan for transforms of length n ≥ 0.
func NewDFTPlan(n int) (*DFTPlan, error) {
	if n < 0 {
		return nil, fmt.Errorf("dsp: negative DFT plan length %d", n)
	}
	p := &DFTPlan{n: n}
	if n <= 1 {
		return p, nil
	}
	if n&(n-1) == 0 {
		p.radix, _ = NewFFTPlan(n)
		return p, nil
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	p.inner, _ = NewFFTPlan(m)
	p.scratch = make([]complex128, m)
	p.wFwd, p.bFwd = chirp(n, m, false)
	p.wInv, p.bInv = chirp(n, m, true)
	for _, b := range [][]complex128{p.bFwd, p.bInv} {
		p.inner.transform(b, p.inner.fwd)
	}
	return p, nil
}

// chirp returns the Bluestein chirp factors w and the (time-domain) chirp
// filter b of length m, exactly as bluestein computes them per call.
func chirp(n, m int, inverse bool) (w, b []complex128) {
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	w = make([]complex128, n)
	b = make([]complex128, m)
	for k := 0; k < n; k++ {
		ksq := (int64(k) * int64(k)) % int64(2*n)
		phi := sign * math.Pi * float64(ksq) / float64(n)
		w[k] = complex(math.Cos(phi), math.Sin(phi))
		bk := complex(real(w[k]), -imag(w[k])) // conj(w[k])
		b[k] = bk
		if k > 0 {
			b[m-k] = bk
		}
	}
	return w, b
}

// Len returns the transform length the plan was built for.
func (p *DFTPlan) Len() int { return p.n }

// Execute computes the in-place forward DFT of v, which must have the
// plan's length.
func (p *DFTPlan) Execute(v []complex128) { p.transformDFT(v, false) }

// ExecuteInverse computes the in-place inverse DFT of v (including the 1/N
// normalization), which must have the plan's length.
func (p *DFTPlan) ExecuteInverse(v []complex128) { p.transformDFT(v, true) }

func (p *DFTPlan) transformDFT(v []complex128, inverse bool) {
	if len(v) != p.n {
		panic(fmt.Sprintf("dsp: plan of length %d executed on %d samples", p.n, len(v)))
	}
	n := p.n
	if n <= 1 {
		return
	}
	if p.radix != nil {
		tw := p.radix.fwd
		if inverse {
			tw = p.radix.inv
		}
		p.radix.transform(v, tw)
	} else {
		w, bf := p.wFwd, p.bFwd
		if inverse {
			w, bf = p.wInv, p.bInv
		}
		a := p.scratch
		clear(a)
		for k := 0; k < n; k++ {
			a[k] = v[k] * w[k]
		}
		p.inner.transform(a, p.inner.fwd)
		for i := range a {
			a[i] *= bf[i]
		}
		p.inner.transform(a, p.inner.inv)
		invM := complex(1/float64(len(a)), 0)
		for k := 0; k < n; k++ {
			v[k] = a[k] * invM * w[k]
		}
	}
	if inverse {
		Scale(v, complex(1/float64(n), 0))
	}
}

// UpsamplePlan is the plan-aware counterpart of UpsampleFFT for one fixed
// input length and factor: the forward plan of the input length, the
// inverse plan of the output length, and a spectrum scratch buffer. It is
// not safe for concurrent use.
type UpsamplePlan struct {
	n, factor int
	spec      *DFTPlan
	up        *DFTPlan
	specBuf   []complex128
	execs     int64
}

// NewUpsamplePlan builds an upsampling plan for inputs of length n and the
// given integer factor ≥ 1.
func NewUpsamplePlan(n, factor int) (*UpsamplePlan, error) {
	if n < 0 {
		return nil, fmt.Errorf("dsp: negative upsample input length %d", n)
	}
	if factor < 1 {
		return nil, fmt.Errorf("dsp: upsample factor %d < 1", factor)
	}
	p := &UpsamplePlan{n: n, factor: factor}
	if factor == 1 || n == 0 {
		return p, nil
	}
	var err error
	if p.spec, err = NewDFTPlan(n); err != nil {
		return nil, err
	}
	if p.up, err = NewDFTPlan(n * factor); err != nil {
		return nil, err
	}
	p.specBuf = make([]complex128, n)
	return p, nil
}

// InputLen and OutputLen return the planned signal lengths.
func (p *UpsamplePlan) InputLen() int  { return p.n }
func (p *UpsamplePlan) OutputLen() int { return p.n * p.factor }

// Execs returns the number of Execute calls since the plan was built —
// plan-level observability for the instrumentation layer. Like the plan
// itself the counter is single-goroutine.
func (p *UpsamplePlan) Execs() int64 { return p.execs }

// Execute upsamples v (of the planned input length) into dst (of the
// planned output length) and returns dst. The result is bit-identical to
// UpsampleFFT(v, factor).
func (p *UpsamplePlan) Execute(dst, v []complex128) []complex128 {
	if len(v) != p.n || len(dst) != p.n*p.factor {
		panic(fmt.Sprintf("dsp: upsample plan (%d → %d) executed on %d → %d samples",
			p.n, p.n*p.factor, len(v), len(dst)))
	}
	p.execs++
	if p.factor == 1 || p.n == 0 {
		copy(dst, v)
		return dst
	}
	n := p.n
	spec := p.specBuf
	copy(spec, v)
	p.spec.Execute(spec)
	clear(dst)
	if n%2 == 0 {
		half := n / 2
		copy(dst[:half], spec[:half])
		copy(dst[len(dst)-(half-1):], spec[half+1:])
		// Split the Nyquist bin between the two halves so a real input
		// stays real after interpolation.
		nyq := spec[half] / 2
		dst[half] = nyq
		dst[len(dst)-half] = nyq
	} else {
		pos := (n + 1) / 2 // bins 0..(n-1)/2 are non-negative frequencies
		copy(dst[:pos], spec[:pos])
		copy(dst[len(dst)-(n-pos):], spec[pos:])
	}
	p.up.ExecuteInverse(dst)
	Scale(dst, complex(float64(p.factor), 0))
	return dst
}

// ConvolveWith is the plan-aware counterpart of Convolve: it writes the
// full linear convolution of a and b into dst (which must have length
// len(a)+len(b)-1) and returns dst. The plan must be a power-of-two plan
// of length ≥ len(dst): a non-power-of-two convolution length is padded up
// to the plan size rather than transformed at its exact length, because an
// exact-length Bluestein DFTPlan costs ~3 power-of-two FFTs of twice the
// size per transform (see BenchmarkConvolvePaddedVsBluestein). With the
// minimal plan, NextPow2(len(dst)), results are bit-identical to Convolve;
// a larger plan computes the same linear convolution with only rounding-
// level differences (the extra bins are zero-padding). Small inputs take
// the same direct path Convolve takes. Either input being empty leaves dst
// untouched and returns nil.
func ConvolveWith(dst, a, b []complex128, p *FFTPlan) ([]complex128, error) {
	if len(a) == 0 || len(b) == 0 {
		return nil, nil
	}
	outLen := len(a) + len(b) - 1
	if len(dst) != outLen {
		return nil, fmt.Errorf("dsp: convolution needs %d output samples, got %d", outLen, len(dst))
	}
	if convolveUseDirect(len(a), len(b)) {
		clear(dst)
		for i, av := range a {
			if av == 0 {
				continue
			}
			for j, bv := range b {
				dst[i+j] += av * bv
			}
		}
		return dst, nil
	}
	if p == nil || p.n < outLen {
		return nil, fmt.Errorf("dsp: convolution of %d+%d samples needs a plan of length ≥ %d", len(a), len(b), outLen)
	}
	m := p.n
	if cap(p.fa) < m {
		p.fa = make([]complex128, m)
		p.fb = make([]complex128, m)
	}
	fa, fb := p.fa[:m], p.fb[:m]
	clear(fa)
	clear(fb)
	copy(fa, a)
	copy(fb, b)
	p.transform(fa, p.fwd)
	p.transform(fb, p.fwd)
	for i := range fa {
		fa[i] *= fb[i]
	}
	p.transform(fa, p.inv)
	Scale(fa, complex(1/float64(m), 0))
	copy(dst, fa[:outLen])
	return dst, nil
}

// MatchedFilterWith is the plan-aware counterpart of MatchedFilter: it
// writes the matched-filter output (same alignment and length as r) into
// dst and returns dst. The plan must cover the convolution length, i.e.
// NextPow2(len(r)+2·(len(template)-1)). Results are bit-identical to
// MatchedFilter(r, template).
func MatchedFilterWith(dst, r, template []complex128, p *FFTPlan) ([]complex128, error) {
	if len(r) == 0 || len(template) == 0 {
		return nil, nil
	}
	if len(dst) != len(r) {
		return nil, fmt.Errorf("dsp: matched filter needs %d output samples, got %d", len(r), len(dst))
	}
	taps := MatchedFilterTaps(template)
	full := make([]complex128, len(taps)+len(r)-1)
	if _, err := ConvolveWith(full, taps, r, p); err != nil {
		return nil, err
	}
	start := len(template) - 1
	clear(dst)
	copy(dst, full[start:])
	return dst, nil
}

// MatchedFilterBank precomputes the matched-filter spectra of a set of
// templates for signals of one fixed length, so that filtering a signal
// against every template costs one forward FFT per distinct convolution
// size (usually exactly one), T complex multiplies and T inverse FFTs —
// instead of 2T forward FFTs. Outputs are bit-identical to
// MatchedFilter(sig, template[t]).
//
// Transform/FilterInto share internal scratch buffers; those two methods
// are not safe for concurrent use. FilterPeak, however, takes caller-owned
// scratch (NewScratch) and touches only read-only plan state and atomic
// counters, so between two Transforms any number of goroutines may run
// FilterPeak concurrently — the fan-out the detector's parallel template
// search relies on.
type MatchedFilterBank struct {
	sigLen int
	tmpls  []bankTemplate
	sizes  []int          // distinct FFT convolution sizes
	plans  []*FFTPlan     // parallel to sizes
	specs  [][]complex128 // parallel to sizes: spectrum of the current signal
	sig    []complex128   // copy of the current signal (direct-path convolution)
	full   []complex128   // scratch for the full convolution
	ready  bool

	transforms, filters atomic.Int64 // execution counters
}

// SkipInterval is one inclusive index range [Lo, Hi] a peak scan must
// ignore — the detector's suppression guard around already-extracted
// responses, precomputed once per round instead of re-checked per sample.
type SkipInterval struct {
	Lo, Hi int
}

type bankTemplate struct {
	taps []complex128 // conjugated time-reversed template
	spec []complex128 // FFT of zero-padded taps; nil on the direct path
	m    int          // convolution FFT size (0 on the direct path)
}

// NewMatchedFilterBank builds a bank for the given templates and signal
// length. Every template must be non-empty and sigLen positive.
func NewMatchedFilterBank(templates [][]complex128, sigLen int) (*MatchedFilterBank, error) {
	if sigLen < 1 {
		return nil, fmt.Errorf("dsp: matched-filter bank needs a positive signal length, got %d", sigLen)
	}
	if len(templates) == 0 {
		return nil, fmt.Errorf("dsp: matched-filter bank needs at least one template")
	}
	b := &MatchedFilterBank{
		sigLen: sigLen,
		tmpls:  make([]bankTemplate, len(templates)),
		sig:    make([]complex128, sigLen),
	}
	maxFull := 0
	for i, t := range templates {
		if len(t) == 0 {
			return nil, fmt.Errorf("dsp: empty template %d", i)
		}
		taps := MatchedFilterTaps(t)
		bt := bankTemplate{taps: taps}
		outLen := len(taps) + sigLen - 1
		maxFull = max(maxFull, outLen)
		if !convolveUseDirect(len(taps), sigLen) {
			maxFull = max(maxFull, NextPow2(outLen))
			bt.m = NextPow2(outLen)
			plan, err := b.planFor(bt.m)
			if err != nil {
				return nil, err
			}
			spec := make([]complex128, bt.m)
			copy(spec, taps)
			plan.transform(spec, plan.fwd)
			bt.spec = spec
		}
		b.tmpls[i] = bt
	}
	b.full = make([]complex128, maxFull)
	return b, nil
}

// planFor returns (building on demand) the shared plan for FFT size m,
// along with a signal-spectrum buffer of the same size. Callers always
// pass NextPow2 of the convolution length: padding a non-power-of-two
// length up to the next power of two costs at most a 2× longer radix-2
// transform, while an exact-length Bluestein DFTPlan runs three
// power-of-two FFTs of length ≥ 2n−1 per transform — about 3× slower
// (measured by BenchmarkConvolvePaddedVsBluestein).
func (b *MatchedFilterBank) planFor(m int) (*FFTPlan, error) {
	for i, s := range b.sizes {
		if s == m {
			return b.plans[i], nil
		}
	}
	p, err := NewFFTPlan(m)
	if err != nil {
		return nil, err
	}
	b.sizes = append(b.sizes, m)
	b.plans = append(b.plans, p)
	b.specs = append(b.specs, make([]complex128, m))
	return p, nil
}

// SignalLen returns the signal length the bank was built for.
func (b *MatchedFilterBank) SignalLen() int { return b.sigLen }

// NumTemplates returns the number of templates in the bank.
func (b *MatchedFilterBank) NumTemplates() int { return len(b.tmpls) }

// Transforms and Filters return how many signals were ingested and how
// many template filterings ran since the bank was built — plan-level
// observability for the instrumentation layer.
func (b *MatchedFilterBank) Transforms() int64 { return b.transforms.Load() }
func (b *MatchedFilterBank) Filters() int64    { return b.filters.Load() }

// Transform ingests a signal of the bank's length: it computes the
// signal's spectrum once per distinct convolution size. Subsequent
// FilterInto calls reuse those spectra until the next Transform.
func (b *MatchedFilterBank) Transform(sig []complex128) error {
	if len(sig) != b.sigLen {
		return fmt.Errorf("dsp: bank built for %d-sample signals, got %d", b.sigLen, len(sig))
	}
	copy(b.sig, sig)
	for i, p := range b.plans {
		spec := b.specs[i]
		clear(spec)
		copy(spec, sig)
		p.transform(spec, p.fwd)
	}
	b.ready = true
	b.transforms.Add(1)
	return nil
}

// FilterInto writes the matched-filter output of template t against the
// last Transform-ed signal into dst (length ≥ the bank's signal length)
// and returns dst[:SignalLen()]. The output is bit-identical to
// MatchedFilter(sig, template[t]).
func (b *MatchedFilterBank) FilterInto(dst []complex128, t int) ([]complex128, error) {
	if !b.ready {
		return nil, fmt.Errorf("dsp: FilterInto before Transform")
	}
	if t < 0 || t >= len(b.tmpls) {
		return nil, fmt.Errorf("dsp: template index %d outside bank of %d", t, len(b.tmpls))
	}
	if len(dst) < b.sigLen {
		return nil, fmt.Errorf("dsp: bank output needs %d samples, got %d", b.sigLen, len(dst))
	}
	dst = dst[:b.sigLen]
	b.filters.Add(1)
	bt := b.tmpls[t]
	start := len(bt.taps) - 1
	outLen := len(bt.taps) + b.sigLen - 1
	if bt.spec == nil {
		// Direct path, mirroring Convolve's small-input routing.
		full := b.full[:outLen]
		clear(full)
		for i, av := range bt.taps {
			if av == 0 {
				continue
			}
			for j, bv := range b.sig {
				full[i+j] += av * bv
			}
		}
		copy(dst, full[start:])
		return dst, nil
	}
	var plan *FFTPlan
	var sigSpec []complex128
	for i, s := range b.sizes {
		if s == bt.m {
			plan, sigSpec = b.plans[i], b.specs[i]
			break
		}
	}
	prod := b.full[:bt.m]
	plan.productTransform(prod, bt.spec, sigSpec, plan.inv)
	Scale(prod, complex(1/float64(bt.m), 0))
	copy(dst, prod[start:outLen])
	return dst, nil
}

// NewScratch returns a scratch buffer sized for FilterPeak (one full
// convolution of the longest template). Allocate one per goroutine:
// FilterPeak never touches bank-owned scratch.
func (b *MatchedFilterBank) NewScratch() []complex128 {
	return make([]complex128, len(b.full))
}

// Clone returns a new bank sharing b's immutable state — the conjugated
// template taps, their precomputed spectra, and the per-size FFT plans —
// while owning fresh mutable signal state (per-size signal spectra, the
// signal copy, the full-convolution scratch) and zeroed execution
// counters. The clone starts unready: Transform it before filtering.
//
// The shared plans are safe because every bank method drives them through
// plan.transform, which only reads the precomputed swap and twiddle
// tables; the plan-owned ConvolveWith scratch is never touched by bank
// code. Any number of clones may therefore run concurrently, one
// goroutine each — the sharing that lets a batch engine pay the
// per-template spectrum setup once per CIR length instead of once per
// worker.
func (b *MatchedFilterBank) Clone() *MatchedFilterBank {
	c := &MatchedFilterBank{
		sigLen: b.sigLen,
		tmpls:  b.tmpls,
		sizes:  b.sizes,
		plans:  b.plans,
		specs:  make([][]complex128, len(b.specs)),
		sig:    make([]complex128, len(b.sig)),
		full:   make([]complex128, len(b.full)),
	}
	for i, s := range b.specs {
		c.specs[i] = make([]complex128, len(s))
	}
	return c
}

// FilterPeak matched-filters template t against the last Transform-ed
// signal and returns the strongest output sample outside the skip
// intervals: its output index (-1 when every sample is skipped or zero),
// its squared magnitude, and the three output samples centered on it
// (zero where the signal window ends). The magnitude scan is fused into
// the inverse-FFT output pass — each scaled sample is consumed as it is
// produced instead of being written out and re-read in a second O(n)
// sweep — and every consumed value is bit-identical to the corresponding
// FilterInto output sample (`prod[x] * invM` is the exact float operation
// Scale applies).
//
// skip must hold inclusive, ascending, disjoint output-index intervals.
// scratch must be at least NewScratch-sized. FilterPeak only reads bank
// state (plus one atomic counter), so between two Transforms any number
// of goroutines may call it concurrently, each with its own scratch.
func (b *MatchedFilterBank) FilterPeak(scratch []complex128, t int, skip []SkipInterval) (int, float64, [3]complex128, error) {
	var y3 [3]complex128
	if !b.ready {
		return -1, 0, y3, fmt.Errorf("dsp: FilterPeak before Transform")
	}
	if t < 0 || t >= len(b.tmpls) {
		return -1, 0, y3, fmt.Errorf("dsp: template index %d outside bank of %d", t, len(b.tmpls))
	}
	if len(scratch) < len(b.full) {
		return -1, 0, y3, fmt.Errorf("dsp: FilterPeak scratch needs %d samples, got %d", len(b.full), len(scratch))
	}
	b.filters.Add(1)
	bt := b.tmpls[t]
	start := len(bt.taps) - 1
	var out []complex128
	scale := complex(1, 0)
	if bt.spec == nil {
		// Direct path, mirroring Convolve's small-input routing; the
		// outputs carry no FFT normalization, so scale stays 1.
		outLen := len(bt.taps) + b.sigLen - 1
		full := scratch[:outLen]
		clear(full)
		for i, av := range bt.taps {
			if av == 0 {
				continue
			}
			for j, bv := range b.sig {
				full[i+j] += av * bv
			}
		}
		out = full
	} else {
		var plan *FFTPlan
		var sigSpec []complex128
		for i, s := range b.sizes {
			if s == bt.m {
				plan, sigSpec = b.plans[i], b.specs[i]
				break
			}
		}
		prod := scratch[:bt.m]
		plan.productTransform(prod, bt.spec, sigSpec, plan.inv)
		out = prod
		scale = complex(1/float64(bt.m), 0)
	}
	bestIdx, bestSq := -1, 0.0
	si := 0
	for i := 0; i < b.sigLen; i++ {
		for si < len(skip) && skip[si].Hi < i {
			si++
		}
		if si < len(skip) && skip[si].Lo <= i {
			i = skip[si].Hi // loop increment moves past the interval
			continue
		}
		v := out[start+i] * scale
		sq := real(v)*real(v) + imag(v)*imag(v)
		if sq > bestSq {
			bestIdx, bestSq = i, sq
		}
	}
	if bestIdx < 0 {
		return -1, 0, y3, nil
	}
	y3[1] = out[start+bestIdx] * scale
	if bestIdx > 0 {
		y3[0] = out[start+bestIdx-1] * scale
	}
	if bestIdx < b.sigLen-1 {
		y3[2] = out[start+bestIdx+1] * scale
	}
	return bestIdx, bestSq, y3, nil
}
