package dsp

import (
	"math"
	"math/cmplx"
	mrand "math/rand"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func complexClose(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func randSignal(rng *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return v
}

// dftNaive is the O(n^2) reference implementation the FFT is tested against.
func dftNaive(v []complex128) []complex128 {
	n := len(v)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for t := 0; t < n; t++ {
			phi := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			acc += v[t] * cmplx.Exp(complex(0, phi))
		}
		out[k] = acc
	}
	return out
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 33, 64, 100, 127, 128} {
		v := randSignal(rng, n)
		got := FFT(v)
		want := dftNaive(v)
		for i := range want {
			if !complexClose(got[i], want[i], 1e-7*float64(n)) {
				t.Fatalf("n=%d bin %d: got %v want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, n := range []int{1, 2, 5, 8, 13, 64, 100, 255, 256, 1000, 1016, 1024} {
		v := randSignal(rng, n)
		back := IFFT(FFT(v))
		for i := range v {
			if !complexClose(back[i], v[i], 1e-8*float64(n)) {
				t.Fatalf("n=%d sample %d: got %v want %v", n, i, back[i], v[i])
			}
		}
	}
}

func TestFFTDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	v := randSignal(rng, 50)
	orig := Clone(v)
	FFT(v)
	IFFT(v)
	for i := range v {
		if v[i] != orig[i] {
			t.Fatalf("input mutated at %d", i)
		}
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 99))
		n := 1 + r.IntN(200)
		a := randSignal(r, n)
		b := randSignal(r, n)
		alpha := complex(r.NormFloat64(), r.NormFloat64())
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = alpha*a[i] + b[i]
		}
		lhs := FFT(sum)
		fa, fb := FFT(a), FFT(b)
		for i := range lhs {
			if !complexClose(lhs[i], alpha*fa[i]+fb[i], 1e-7*float64(n)) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: mrand.New(mrand.NewSource(42))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 123))
		n := 1 + r.IntN(300)
		v := randSignal(r, n)
		timeE := Energy(v)
		freqE := Energy(FFT(v)) / float64(n)
		return math.Abs(timeE-freqE) <= 1e-7*(1+timeE)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: mrand.New(mrand.NewSource(43))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestUpsampleFFTPreservesSamples(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for _, n := range []int{4, 7, 16, 33, 100} {
		for _, factor := range []int{1, 2, 4, 8} {
			v := randSignal(rng, n)
			up, err := UpsampleFFT(v, factor)
			if err != nil {
				t.Fatal(err)
			}
			if len(up) != n*factor {
				t.Fatalf("n=%d factor=%d: got len %d", n, factor, len(up))
			}
			for i := 0; i < n; i++ {
				if !complexClose(up[i*factor], v[i], 1e-7*float64(n)) {
					t.Fatalf("n=%d factor=%d: sample %d got %v want %v",
						n, factor, i, up[i*factor], v[i])
				}
			}
		}
	}
}

func TestUpsampleFFTKeepsRealSignalsReal(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	for _, n := range []int{8, 16, 31, 64} {
		v := make([]complex128, n)
		for i := range v {
			v[i] = complex(rng.NormFloat64(), 0)
		}
		up, err := UpsampleFFT(v, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range up {
			if math.Abs(imag(c)) > 1e-8 {
				t.Fatalf("n=%d: imaginary leakage %g at %d", n, imag(c), i)
			}
		}
	}
}

func TestUpsampleFFTInterpolatesSinusoid(t *testing.T) {
	// A band-limited tone must be reconstructed exactly between samples.
	const n, factor = 64, 8
	v := make([]complex128, n)
	for i := range v {
		ph := 2 * math.Pi * 3 * float64(i) / float64(n)
		v[i] = cmplx.Exp(complex(0, ph))
	}
	up, err := UpsampleFFT(v, factor)
	if err != nil {
		t.Fatal(err)
	}
	for i := range up {
		ph := 2 * math.Pi * 3 * float64(i) / float64(n*factor)
		want := cmplx.Exp(complex(0, ph))
		if !complexClose(up[i], want, 1e-7) {
			t.Fatalf("sample %d: got %v want %v", i, up[i], want)
		}
	}
}

func TestUpsampleFFTRejectsBadFactor(t *testing.T) {
	if _, err := UpsampleFFT([]complex128{1}, 0); err == nil {
		t.Fatal("expected error for factor 0")
	}
	if _, err := UpsampleFFT([]complex128{1}, -3); err == nil {
		t.Fatal("expected error for negative factor")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{-5: 1, 0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
