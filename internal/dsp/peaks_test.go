package dsp

import (
	"math"
	"testing"
)

func TestLocalMaxima(t *testing.T) {
	mag := []float64{0, 1, 0, 2, 2, 1, 0, 3, 0}
	peaks := LocalMaxima(mag, 0.5)
	want := []Peak{{1, 1}, {3, 2}, {7, 3}}
	if len(peaks) != len(want) {
		t.Fatalf("got %v, want %v", peaks, want)
	}
	for i := range want {
		if peaks[i] != want[i] {
			t.Fatalf("peak %d: got %v, want %v", i, peaks[i], want[i])
		}
	}
}

func TestLocalMaximaThreshold(t *testing.T) {
	mag := []float64{0, 1, 0, 2, 0}
	peaks := LocalMaxima(mag, 1.5)
	if len(peaks) != 1 || peaks[0].Index != 3 {
		t.Fatalf("got %v", peaks)
	}
}

func TestLocalMaximaConstantSignal(t *testing.T) {
	if peaks := LocalMaxima([]float64{2, 2, 2, 2}, 0); len(peaks) != 0 {
		t.Fatalf("constant signal produced peaks: %v", peaks)
	}
}

func TestLocalMaximaEdges(t *testing.T) {
	// A falling signal has its maximum at index 0; LocalMaxima reports it
	// because the drop away from index 0 was observed.
	peaks := LocalMaxima([]float64{5, 3, 1}, 0)
	if len(peaks) != 1 || peaks[0].Index != 0 {
		t.Fatalf("falling signal: got %v", peaks)
	}
	// A signal rising into the last sample is a truncated peak: the drop
	// was never observed, so nothing is reported — consistent with the
	// constant-signal rule.
	if peaks := LocalMaxima([]float64{1, 3, 5}, 0); len(peaks) != 0 {
		t.Fatalf("rising-to-edge: got %v", peaks)
	}
	// Same for a plateau running into the last sample.
	if peaks := LocalMaxima([]float64{1, 3, 3}, 0); len(peaks) != 0 {
		t.Fatalf("plateau-at-edge: got %v", peaks)
	}
	// An interior plateau whose drop does arrive still reports its first
	// sample.
	peaks = LocalMaxima([]float64{1, 3, 3, 2}, 0)
	if len(peaks) != 1 || peaks[0] != (Peak{1, 3}) {
		t.Fatalf("interior plateau: got %v", peaks)
	}
	// Single-sample and empty inputs have no room for a drop.
	if peaks := LocalMaxima([]float64{7}, 0); len(peaks) != 0 {
		t.Fatalf("single sample: got %v", peaks)
	}
	if peaks := LocalMaxima(nil, 0); len(peaks) != 0 {
		t.Fatalf("empty input: got %v", peaks)
	}
}

func TestMaxWithin(t *testing.T) {
	mag := []float64{1, 5, 2, 8, 3}
	idx, v := MaxWithin(mag, 0, len(mag))
	if idx != 3 || v != 8 {
		t.Fatalf("got (%d,%g)", idx, v)
	}
	idx, v = MaxWithin(mag, 0, 3)
	if idx != 1 || v != 5 {
		t.Fatalf("got (%d,%g)", idx, v)
	}
	// Clamping.
	idx, v = MaxWithin(mag, -10, 100)
	if idx != 3 || v != 8 {
		t.Fatalf("clamped: got (%d,%g)", idx, v)
	}
	if idx, _ = MaxWithin(mag, 4, 2); idx != -1 {
		t.Fatalf("empty interval: got %d", idx)
	}
	if ArgMax(nil) != -1 {
		t.Fatal("ArgMax(nil) must be -1")
	}
}

func TestFirstAbove(t *testing.T) {
	mag := []float64{0.1, 0.2, 0.9, 0.3}
	if got := FirstAbove(mag, 0.5); got != 2 {
		t.Fatalf("got %d, want 2", got)
	}
	if got := FirstAbove(mag, 2); got != -1 {
		t.Fatalf("got %d, want -1", got)
	}
}

func TestInterpolatePeakRecoversFraction(t *testing.T) {
	// Sample a parabola with vertex between two samples; the interpolator
	// must recover the fractional offset exactly.
	for _, frac := range []float64{-0.4, -0.1, 0, 0.25, 0.49} {
		mag := make([]float64, 9)
		for i := range mag {
			d := float64(i) - (4 + frac)
			mag[i] = 10 - d*d
		}
		got := InterpolatePeak(mag, 4)
		if math.Abs(got-frac) > 1e-9 {
			t.Fatalf("frac %g: got %g", frac, got)
		}
	}
}

func TestInterpolatePeakBoundaries(t *testing.T) {
	mag := []float64{3, 2, 1}
	if InterpolatePeak(mag, 0) != 0 || InterpolatePeak(mag, 2) != 0 {
		t.Fatal("boundary interpolation must return 0")
	}
	if InterpolatePeak([]float64{1, 1, 1}, 1) != 0 {
		t.Fatal("flat region must return 0")
	}
}

func TestWindows(t *testing.T) {
	for name, fn := range map[string]func(int) []float64{
		"hann": Hann, "hamming": Hamming, "blackman": Blackman,
	} {
		if fn(0) != nil {
			t.Errorf("%s(0) must be nil", name)
		}
		if w := fn(1); len(w) != 1 || w[0] != 1 {
			t.Errorf("%s(1) = %v, want [1]", name, w)
		}
		w := fn(65)
		if len(w) != 65 {
			t.Fatalf("%s length %d", name, len(w))
		}
		// Symmetry and peak at center.
		for i := range w {
			if math.Abs(w[i]-w[len(w)-1-i]) > 1e-12 {
				t.Fatalf("%s not symmetric at %d", name, i)
			}
		}
		if ArgMax(w) != 32 {
			t.Fatalf("%s peak not centered", name)
		}
	}
	// Hann endpoints are zero.
	w := Hann(33)
	if w[0] != 0 || math.Abs(w[32]) > 1e-15 {
		t.Fatalf("Hann endpoints %g %g", w[0], w[32])
	}
}

func TestApplyWindow(t *testing.T) {
	v := []complex128{1, 1, 1, 1}
	w := []float64{0.5, 2}
	ApplyWindow(v, w)
	want := []complex128{0.5, 2, 1, 1}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("got %v, want %v", v, want)
		}
	}
}
