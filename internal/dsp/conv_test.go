package dsp

import (
	mrand "math/rand"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestConvolveKnownValues(t *testing.T) {
	a := []complex128{1, 2, 3}
	b := []complex128{4, 5}
	got := Convolve(a, b)
	want := []complex128{4, 13, 22, 15}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !complexClose(got[i], want[i], 1e-12) {
			t.Fatalf("sample %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestConvolveEmptyInputs(t *testing.T) {
	if out := Convolve(nil, []complex128{1}); out != nil {
		t.Fatalf("expected nil, got %v", out)
	}
	if out := Convolve([]complex128{1}, nil); out != nil {
		t.Fatalf("expected nil, got %v", out)
	}
}

func TestConvolveDirectMatchesFFT(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for _, sz := range [][2]int{{5, 9}, {64, 64}, {200, 31}, {300, 300}, {1016, 120}} {
		a := randSignal(rng, sz[0])
		b := randSignal(rng, sz[1])
		direct := convolveDirect(a, b)
		viaFFT := convolveFFT(a, b)
		if len(direct) != len(viaFFT) {
			t.Fatalf("size mismatch: %d vs %d", len(direct), len(viaFFT))
		}
		scale := MaxAbs(direct) + 1
		for i := range direct {
			if !complexClose(direct[i], viaFFT[i], 1e-9*scale*float64(len(direct))) {
				t.Fatalf("%v: sample %d: direct %v fft %v", sz, i, direct[i], viaFFT[i])
			}
		}
	}
}

func TestConvolveThresholdDoesNotOverflow(t *testing.T) {
	// The direct-vs-FFT routing compares len(a)·len(b) against the
	// threshold; phrased as a product it overflows a 32-bit int for
	// operand lengths whose product exceeds 2³¹ (66000² ≈ 4.4·10⁹) and
	// could misroute giant inputs to the O(n·m) direct path. Convolving
	// two shifted deltas of that size must take the FFT path (the direct
	// path would not return in any reasonable time) and still produce the
	// delta at the summed shift.
	const n = 66000
	a := make([]complex128, n)
	b := make([]complex128, n)
	const pa, pb = 123, 4567
	a[pa] = 1
	b[pb] = 1
	if convolveUseDirect(n, n) {
		t.Fatal("66000×66000 routed to the direct path")
	}
	out := Convolve(a, b)
	if len(out) != 2*n-1 {
		t.Fatalf("output length %d", len(out))
	}
	if !complexClose(out[pa+pb], 1, 1e-6) {
		t.Fatalf("delta at %d = %v, want 1", pa+pb, out[pa+pb])
	}
	// The rest of the output is numerically zero.
	out[pa+pb] = 0
	if m := MaxAbs(out); m > 1e-6 {
		t.Fatalf("spurious energy %g", m)
	}
}

func TestConvolveUseDirectMatchesProductRule(t *testing.T) {
	// For sizes where the product cannot overflow, the division form must
	// agree exactly with the original product comparison.
	for _, la := range []int{1, 2, 7, 100, 128, 129, 1000, 16384} {
		for _, lb := range []int{1, 2, 7, 100, 128, 129, 1000, 16384} {
			want := la*lb <= convFFTThreshold
			if got := convolveUseDirect(la, lb); got != want {
				t.Fatalf("(%d, %d): direct = %v, want %v", la, lb, got, want)
			}
		}
	}
}

func TestConvolveCommutativeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 7))
		a := randSignal(r, 1+r.IntN(80))
		b := randSignal(r, 1+r.IntN(80))
		ab := Convolve(a, b)
		ba := Convolve(b, a)
		for i := range ab {
			if !complexClose(ab[i], ba[i], 1e-8*(1+MaxAbs(ab))) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: mrand.New(mrand.NewSource(44))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestConvolveDeltaIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 24))
	v := randSignal(rng, 40)
	out := Convolve(v, []complex128{1})
	for i := range v {
		if !complexClose(out[i], v[i], 1e-12) {
			t.Fatalf("sample %d: got %v want %v", i, out[i], v[i])
		}
	}
	// A shifted delta shifts the signal.
	out = Convolve(v, []complex128{0, 0, 1})
	for i := range v {
		if !complexClose(out[i+2], v[i], 1e-12) {
			t.Fatalf("shifted sample %d: got %v want %v", i, out[i+2], v[i])
		}
	}
}

func TestMatchedFilterPeakAlignment(t *testing.T) {
	// Place a template at a known delay inside a longer signal; the matched
	// filter output must peak exactly at that delay.
	tmpl := []complex128{0.2, 0.7, 1, 0.7, 0.2}
	for _, delay := range []int{0, 3, 17, 90} {
		r := make([]complex128, 128)
		for i, s := range tmpl {
			r[delay+i] = s
		}
		y := MatchedFilter(r, tmpl)
		if len(y) != len(r) {
			t.Fatalf("output length %d, want %d", len(y), len(r))
		}
		idx, _ := MaxAbsIndex(y)
		if idx != delay {
			t.Fatalf("delay %d: peak at %d", delay, idx)
		}
	}
}

func TestMatchedFilterPeakValueIsTemplateEnergy(t *testing.T) {
	tmpl := NormalizeEnergy([]complex128{1, 2, 3, 2, 1})
	r := make([]complex128, 64)
	copy(r[10:], tmpl)
	y := MatchedFilter(r, tmpl)
	_, v := MaxAbsIndex(y)
	if !closeTo(v, 1.0, 1e-9) {
		t.Fatalf("peak value %g, want 1 (unit-energy template)", v)
	}
}

func TestMatchedFilterComplexPhase(t *testing.T) {
	// A pulse with complex amplitude alpha must produce a matched-filter
	// peak equal to alpha times the template energy.
	tmpl := NormalizeEnergy(randSignal(rand.New(rand.NewPCG(31, 32)), 9))
	alpha := complex(0.3, -1.2)
	r := make([]complex128, 80)
	for i, s := range tmpl {
		r[25+i] = alpha * s
	}
	y := MatchedFilter(r, tmpl)
	if !complexClose(y[25], alpha, 1e-9) {
		t.Fatalf("peak %v, want %v", y[25], alpha)
	}
}

func TestCrossCorrelateLagZeroIsInnerProduct(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	a := randSignal(rng, 30)
	cc := CrossCorrelate(a, a)
	if !closeTo(real(cc[0]), Energy(a), 1e-9*Energy(a)) {
		t.Fatalf("lag-0 autocorrelation %v, want energy %g", cc[0], Energy(a))
	}
}

func TestNormalizedCorrelation(t *testing.T) {
	a := []complex128{1, 2, 3}
	if got := NormalizedCorrelation(a, a); !closeTo(got, 1, 1e-12) {
		t.Fatalf("self correlation %g, want 1", got)
	}
	b := []complex128{0, 0, 0}
	if got := NormalizedCorrelation(a, b); got != 0 {
		t.Fatalf("zero-energy correlation %g, want 0", got)
	}
	// Orthogonal vectors correlate to zero.
	c := []complex128{1, 0}
	d := []complex128{0, 1}
	if got := NormalizedCorrelation(c, d); !closeTo(got, 0, 1e-12) {
		t.Fatalf("orthogonal correlation %g, want 0", got)
	}
}

func TestNormalizedCorrelationScaleInvariantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 77))
		n := 2 + r.IntN(50)
		a := randSignal(r, n)
		b := randSignal(r, n)
		base := NormalizedCorrelation(a, b)
		scaled := NormalizedCorrelation(Scale(Clone(a), complex(3.7, -1)), b)
		return closeTo(base, scaled, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 40, Rand: mrand.New(mrand.NewSource(45))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func closeTo(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
