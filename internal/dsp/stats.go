package dsp

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of v (0 for an empty slice).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the unbiased sample variance of v (0 for fewer than two
// samples).
func Variance(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v)-1)
}

// StdDev returns the unbiased sample standard deviation of v.
func StdDev(v []float64) float64 {
	return math.Sqrt(Variance(v))
}

// RMS returns the root-mean-square of v (0 for an empty slice).
func RMS(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return math.Sqrt(EnergyReal(v) / float64(len(v)))
}

// Percentile returns the p-th percentile (p in [0,100]) of v using linear
// interpolation between closest ranks. It returns 0 for an empty slice and
// clamps p into [0, 100].
func Percentile(v []float64, p float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := CloneReal(v)
	sort.Float64s(s)
	p = math.Max(0, math.Min(100, p))
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile of v.
func Median(v []float64) float64 {
	return Percentile(v, 50)
}

// Running accumulates streaming statistics with Welford's algorithm so the
// Monte-Carlo harness never stores per-trial samples it does not need.
// The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		r.min = math.Min(r.min, x)
		r.max = math.Max(r.max, x)
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations added so far.
func (r *Running) N() int { return r.n }

// Mean returns the running mean (0 before the first observation).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased running sample variance.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the unbiased running sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation (0 before the first observation).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 before the first observation).
func (r *Running) Max() float64 { return r.max }

// Counter tracks the success rate of repeated boolean trials, e.g. the
// pulse-identification percentages of Table I.
// The zero value is ready to use.
type Counter struct {
	trials    int
	successes int
}

// Record adds one trial outcome.
func (c *Counter) Record(success bool) {
	c.trials++
	if success {
		c.successes++
	}
}

// Trials returns the number of recorded trials.
func (c *Counter) Trials() int { return c.trials }

// Successes returns the number of successful trials.
func (c *Counter) Successes() int { return c.successes }

// Rate returns the success fraction in [0,1] (0 with no trials).
func (c *Counter) Rate() float64 {
	if c.trials == 0 {
		return 0
	}
	return float64(c.successes) / float64(c.trials)
}

// Percent returns the success rate as a percentage.
func (c *Counter) Percent() float64 { return 100 * c.Rate() }

// DB converts a linear power ratio to decibels.
func DB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ratio)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}
