package dsp

import (
	"math"
	"math/cmplx"
)

// Abs returns the element-wise magnitude of v as a new slice.
func Abs(v []complex128) []float64 {
	out := make([]float64, len(v))
	for i, c := range v {
		out[i] = cmplx.Abs(c)
	}
	return out
}

// AbsSq returns the element-wise squared magnitude of v as a new slice.
// It avoids the square root of Abs and is preferred for energy comparisons.
func AbsSq(v []complex128) []float64 {
	out := make([]float64, len(v))
	for i, c := range v {
		out[i] = real(c)*real(c) + imag(c)*imag(c)
	}
	return out
}

// Scale multiplies every element of v by s in place and returns v.
func Scale(v []complex128, s complex128) []complex128 {
	for i := range v {
		v[i] *= s
	}
	return v
}

// ScaleReal multiplies every element of v by the real factor s in place and
// returns v.
func ScaleReal(v []float64, s float64) []float64 {
	for i := range v {
		v[i] *= s
	}
	return v
}

// AddInto adds src into dst element-wise (dst[i] += src[i]). The slices may
// have different lengths; only the overlapping prefix is touched.
func AddInto(dst, src []complex128) {
	n := min(len(dst), len(src))
	for i := 0; i < n; i++ {
		dst[i] += src[i]
	}
}

// SubInto subtracts src from dst element-wise (dst[i] -= src[i]). Only the
// overlapping prefix is touched.
func SubInto(dst, src []complex128) {
	n := min(len(dst), len(src))
	for i := 0; i < n; i++ {
		dst[i] -= src[i]
	}
}

// Energy returns the total energy of v, i.e. the sum of squared magnitudes.
func Energy(v []complex128) float64 {
	var e float64
	for _, c := range v {
		e += real(c)*real(c) + imag(c)*imag(c)
	}
	return e
}

// EnergyReal returns the sum of squares of a real-valued signal.
func EnergyReal(v []float64) float64 {
	var e float64
	for _, x := range v {
		e += x * x
	}
	return e
}

// NormalizeEnergy scales v in place so that its total energy is 1 and
// returns v. A zero vector is returned unchanged.
func NormalizeEnergy(v []complex128) []complex128 {
	e := Energy(v)
	if e == 0 {
		return v
	}
	return Scale(v, complex(1/math.Sqrt(e), 0))
}

// NormalizeEnergyReal scales the real vector v in place to unit energy and
// returns v. A zero vector is returned unchanged.
func NormalizeEnergyReal(v []float64) []float64 {
	e := EnergyReal(v)
	if e == 0 {
		return v
	}
	return ScaleReal(v, 1/math.Sqrt(e))
}

// NormalizePeak scales v in place so that its maximum magnitude is 1 and
// returns v. A zero vector is returned unchanged.
func NormalizePeak(v []complex128) []complex128 {
	m := MaxAbs(v)
	if m == 0 {
		return v
	}
	return Scale(v, complex(1/m, 0))
}

// MaxAbs returns the maximum element magnitude of v (0 for an empty slice).
func MaxAbs(v []complex128) float64 {
	var m float64
	for _, c := range v {
		if a := cmplx.Abs(c); a > m {
			m = a
		}
	}
	return m
}

// MaxAbsIndex returns the index and magnitude of the largest-magnitude
// element of v. It returns (-1, 0) for an empty slice.
func MaxAbsIndex(v []complex128) (int, float64) {
	idx, best := -1, 0.0
	for i, c := range v {
		a := real(c)*real(c) + imag(c)*imag(c)
		if a > best || idx < 0 {
			idx, best = i, a
		}
	}
	if idx < 0 {
		return -1, 0
	}
	return idx, math.Sqrt(best)
}

// Conj returns the element-wise complex conjugate of v as a new slice.
func Conj(v []complex128) []complex128 {
	out := make([]complex128, len(v))
	for i, c := range v {
		out[i] = cmplx.Conj(c)
	}
	return out
}

// Reverse returns a new slice with the elements of v in reverse order.
func Reverse(v []complex128) []complex128 {
	out := make([]complex128, len(v))
	for i, c := range v {
		out[len(v)-1-i] = c
	}
	return out
}

// ToComplex widens a real signal to a complex one with zero imaginary parts.
func ToComplex(v []float64) []complex128 {
	out := make([]complex128, len(v))
	for i, x := range v {
		out[i] = complex(x, 0)
	}
	return out
}

// RealPart extracts the real parts of v as a new slice.
func RealPart(v []complex128) []float64 {
	out := make([]float64, len(v))
	for i, c := range v {
		out[i] = real(c)
	}
	return out
}

// Clone returns an independent copy of v.
func Clone(v []complex128) []complex128 {
	out := make([]complex128, len(v))
	copy(out, v)
	return out
}

// CloneReal returns an independent copy of v.
func CloneReal(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}
