package dw1000

// Clock models a node's free-running crystal oscillator. Device time
// advances at a slightly wrong rate (OffsetPPM parts per million) from an
// arbitrary phase, which is what makes networks "non-synchronized" and
// two-way ranging necessary in the first place.
type Clock struct {
	// OffsetPPM is the frequency error in parts per million. Typical
	// DW1000 crystals are within ±10 ppm; TCXO-grade boards within ±0.5.
	OffsetPPM float64
	// Phase is the device-clock reading at simulation time zero, seconds.
	Phase float64
}

// rate returns the device-seconds-per-simulation-second factor.
func (c Clock) rate() float64 { return 1 + c.OffsetPPM*1e-6 }

// DeviceSeconds converts an absolute simulation time to the local
// device-clock reading in seconds.
func (c Clock) DeviceSeconds(simTime float64) float64 {
	return c.Phase + simTime*c.rate()
}

// SimSeconds converts a local device-clock reading in seconds back to the
// absolute simulation time.
func (c Clock) SimSeconds(deviceSeconds float64) float64 {
	return (deviceSeconds - c.Phase) / c.rate()
}

// Timestamp converts an absolute simulation time to a quantized, wrapped
// 40-bit device timestamp — what the DW1000 registers report.
func (c Clock) Timestamp(simTime float64) DeviceTime {
	return FromSeconds(c.DeviceSeconds(simTime))
}

// RateRatio returns this clock's rate relative to a reference clock —
// the quantity a receiver estimates from the carrier frequency offset of
// an incoming frame.
func (c Clock) RateRatio(reference Clock) float64 {
	return c.rate() / reference.rate()
}
