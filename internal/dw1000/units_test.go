package dw1000

import (
	"math"
	mrand "math/rand"
	"testing"
	"testing/quick"
)

func closeTo(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDTUResolutionMatchesPaper(t *testing.T) {
	// Sect. II: 15.65 ps units from a 63.9 GHz sampling clock → 4.69 mm.
	if !closeTo(DTU, 15.65e-12, 0.01e-12) {
		t.Fatalf("DTU = %g, want ~15.65 ps", DTU)
	}
	const c = 299792458.0
	if !closeTo(DTU*c, 4.69e-3, 0.01e-3) {
		t.Fatalf("distance resolution %g, want ~4.69 mm", DTU*c)
	}
}

func TestDelayedTXGranularityMatchesPaper(t *testing.T) {
	// Sect. III: ignoring the low 9 bits limits TX resolution to ~8 ns.
	if !closeTo(DelayedTXGranularity, 8.013e-9, 0.01e-9) {
		t.Fatalf("granularity = %g, want ~8.013 ns", DelayedTXGranularity)
	}
}

func TestTruncateDelayedTX(t *testing.T) {
	v := DeviceTime(0x123456789)
	got := TruncateDelayedTX(v)
	if got&0x1FF != 0 {
		t.Fatalf("low 9 bits not cleared: %x", got)
	}
	if got > v || v.Sub(got) >= DelayedTXGranularity {
		t.Fatalf("truncation moved %x to %x", v, got)
	}
	// Already aligned values are unchanged.
	if TruncateDelayedTX(got) != got {
		t.Fatal("aligned value changed")
	}
}

func TestTruncationAlwaysEarlierProperty(t *testing.T) {
	f := func(raw uint64) bool {
		v := DeviceTime(raw & (counterWrap - 1))
		tr := TruncateDelayedTX(v)
		d := v.Sub(tr)
		return d >= 0 && d < DelayedTXGranularity
	}
	cfg := &quick.Config{MaxCount: 200, Rand: mrand.New(mrand.NewSource(54))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceTimeSubWrapAware(t *testing.T) {
	a := DeviceTime(10)
	b := DeviceTime(counterWrap - 10)
	// a is 20 ticks "after" b across the wrap.
	if got := a.Sub(b); !closeTo(got, 20*DTU, 1e-18) {
		t.Fatalf("wrap-aware diff %g, want %g", got, 20*DTU)
	}
	if got := b.Sub(a); !closeTo(got, -20*DTU, 1e-18) {
		t.Fatalf("reverse diff %g, want %g", got, -20*DTU)
	}
}

func TestDeviceTimeAddSubRoundTripProperty(t *testing.T) {
	f := func(raw uint64, deltaNS int32) bool {
		v := DeviceTime(raw & (counterWrap - 1))
		d := float64(deltaNS) * 1e-9
		moved := v.Add(d)
		// The recovered difference matches d to within one tick.
		return math.Abs(moved.Sub(v)-d) <= DTU
	}
	cfg := &quick.Config{MaxCount: 300, Rand: mrand.New(mrand.NewSource(55))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFromSecondsQuantizes(t *testing.T) {
	s := 1.23456789e-3
	v := FromSeconds(s)
	if math.Abs(v.Seconds()-s) > DTU {
		t.Fatalf("quantization error %g > 1 DTU", math.Abs(v.Seconds()-s))
	}
}

func TestClockOffsetAndPhase(t *testing.T) {
	c := Clock{OffsetPPM: 10, Phase: 5}
	// After 1 simulated second, a +10 ppm clock has advanced 1 s + 10 µs.
	if got := c.DeviceSeconds(1); !closeTo(got, 6+10e-6, 1e-12) {
		t.Fatalf("device seconds %g", got)
	}
	// Round trip.
	for _, simT := range []float64{0, 0.5, 2.75} {
		if got := c.SimSeconds(c.DeviceSeconds(simT)); !closeTo(got, simT, 1e-12) {
			t.Fatalf("round trip %g -> %g", simT, got)
		}
	}
}

func TestClockZeroValueIsIdeal(t *testing.T) {
	var c Clock
	if got := c.DeviceSeconds(3.25); got != 3.25 {
		t.Fatalf("ideal clock reads %g at 3.25", got)
	}
}

func TestTwoClocksDiverge(t *testing.T) {
	fast := Clock{OffsetPPM: 5}
	slow := Clock{OffsetPPM: -5}
	// After 290 µs (the paper's Δ_RESP) the clocks diverge by 2.9 ns.
	dt := fast.DeviceSeconds(290e-6) - slow.DeviceSeconds(290e-6)
	if !closeTo(dt, 10e-6*1e-6*290e-6/1e-6, 1e-12) { // 290e-6 · 10e-6
		t.Fatalf("divergence %g, want %g", dt, 290e-6*10e-6)
	}
}

func TestCIRGeometryMatchesPaper(t *testing.T) {
	if err := validateCIRGeometry(); err != nil {
		t.Fatal(err)
	}
	if CIRLength != 1016 {
		t.Fatalf("CIR length %d, want 1016 (Sect. VII)", CIRLength)
	}
	// δ_max·c ≈ 307 m (Sect. VII).
	const c = 299792458.0
	if !closeTo(WindowDuration*c, 307, 2) {
		t.Fatalf("window distance span %g m, want ~307 m", WindowDuration*c)
	}
}

func TestClockRateRatio(t *testing.T) {
	fast := Clock{OffsetPPM: 10}
	slow := Clock{OffsetPPM: -10}
	ratio := fast.RateRatio(slow)
	// (1+10e-6)/(1-10e-6) ≈ 1 + 20e-6.
	if !closeTo(ratio, 1+20e-6, 1e-9) {
		t.Fatalf("ratio %.9f", ratio)
	}
	var ideal Clock
	if ideal.RateRatio(ideal) != 1 {
		t.Fatal("identical clocks must have ratio 1")
	}
}
