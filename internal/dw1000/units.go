// Package dw1000 models the Decawave DW1000 UWB transceiver at the level
// of detail the paper's concurrent-ranging scheme depends on:
//
//   - 40-bit device timestamps counting at 63.8976 GHz (≈15.65 ps units,
//     4.69 mm of light travel — the ranging resolution quoted in Sect. II);
//   - delayed transmission that ignores the low 9 bits of the programmed
//     time, quantizing TX instants to ≈8 ns (the Sect. III limitation that
//     de-synchronizes "simultaneous" responses);
//   - a 1016-tap complex channel-impulse-response accumulator sampled at
//     T_s = 1.0016 ns (PRF 64 MHz), estimated from the frame preamble;
//   - leading-edge first-path detection and receive timestamping with
//     bandwidth-dependent jitter;
//   - the TC_PGDELAY pulse-shaping register (via internal/pulse);
//   - per-node crystal clocks with ppm-scale frequency offset.
package dw1000

// DTUFrequency is the device time-stamping counter frequency: 128 times
// the 499.2 MHz chipping rate, i.e. 63.8976 GHz.
const DTUFrequency = 499.2e6 * 128

// DTU is one device time unit in seconds (≈15.65 ps).
const DTU = 1 / DTUFrequency

// counterBits is the width of the device time counter.
const counterBits = 40

// counterWrap is the modulus of the 40-bit device time counter
// (the counter wraps roughly every 17.2 s).
const counterWrap = uint64(1) << counterBits

// delayedTXIgnoredBits is the number of low-order bits of the delayed
// transmit time register the hardware ignores (DW1000 User Manual p. 26),
// limiting TX timestamp resolution to 512 DTU ≈ 8.013 ns.
const delayedTXIgnoredBits = 9

// DelayedTXGranularity is the effective delayed-transmission time
// granularity in seconds (≈8.013 ns).
const DelayedTXGranularity = float64(uint64(1)<<delayedTXIgnoredBits) * DTU

// DeviceTime is a 40-bit wrapping DW1000 timestamp in device time units.
type DeviceTime uint64

// wrap reduces an arbitrary count into the 40-bit counter range.
func wrap(v uint64) DeviceTime { return DeviceTime(v & (counterWrap - 1)) }

// Add returns t advanced by d seconds (d may be negative), wrapping.
func (t DeviceTime) Add(d float64) DeviceTime {
	ticks := int64(d * DTUFrequency)
	return wrap(uint64(int64(t) + ticks))
}

// Sub returns the signed elapsed time t - u in seconds, interpreting the
// pair as the nearest wrap-aware difference (|Δ| < half the counter span).
func (t DeviceTime) Sub(u DeviceTime) float64 {
	diff := (uint64(t) - uint64(u)) & (counterWrap - 1)
	if diff >= counterWrap/2 {
		return -float64(counterWrap-diff) * DTU
	}
	return float64(diff) * DTU
}

// Seconds returns the timestamp as seconds since the counter origin.
func (t DeviceTime) Seconds() float64 { return float64(t) * DTU }

// FromSeconds quantizes a non-negative device-clock reading in seconds to
// a wrapped 40-bit timestamp.
func FromSeconds(s float64) DeviceTime {
	ticks := uint64(int64(s * DTUFrequency))
	return wrap(ticks)
}

// TruncateDelayedTX clears the low 9 bits of a programmed delayed transmit
// time, exactly as the DW1000 hardware does. The realized TX instant is
// therefore up to ~8 ns *earlier* than requested.
func TruncateDelayedTX(t DeviceTime) DeviceTime {
	return t &^ DeviceTime(uint64(1)<<delayedTXIgnoredBits-1)
}
