package dw1000

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/airtime"
	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

func testRadio(t *testing.T, id string, seed uint64) *Radio {
	t.Helper()
	r, err := New(id, Config{PHY: airtime.PaperConfig()}, rand.New(rand.NewPCG(seed, 1)))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := New("", Config{PHY: airtime.PaperConfig()}, rng); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := New("a", Config{PHY: airtime.PaperConfig()}, nil); err == nil {
		t.Error("nil RNG accepted")
	}
	if _, err := New("a", Config{}, rng); err == nil {
		t.Error("invalid PHY accepted")
	}
	if _, err := New("a", Config{PHY: airtime.PaperConfig(), PGDelay: 0x10}, rng); err == nil {
		t.Error("invalid PGDelay accepted")
	}
	r, err := New("a", Config{PHY: airtime.PaperConfig()}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r.Config().PGDelay != pulse.DefaultRegister {
		t.Error("PGDelay default not applied")
	}
	if r.Config().NoiseRMS != DefaultNoiseRMS {
		t.Error("noise default not applied")
	}
	if r.Config().Jitter != DefaultJitter() {
		t.Error("jitter default not applied")
	}
}

func TestSetPGDelay(t *testing.T) {
	r := testRadio(t, "a", 2)
	if err := r.SetPGDelay(pulse.RegisterS3); err != nil {
		t.Fatal(err)
	}
	if r.Shape().Register != pulse.RegisterS3 {
		t.Fatal("shape not updated")
	}
	if err := r.SetPGDelay(0x01); err == nil {
		t.Fatal("invalid register accepted")
	}
}

func TestScheduleDelayedTXTruncates(t *testing.T) {
	r := testRadio(t, "a", 3)
	now := 1e-3
	requested := r.Now(now).Add(290e-6)
	actual, simTX, err := r.ScheduleDelayedTX(now, requested)
	if err != nil {
		t.Fatal(err)
	}
	if actual&0x1FF != 0 {
		t.Fatal("realized TX time not truncated")
	}
	early := requested.Sub(actual)
	if early < 0 || early >= DelayedTXGranularity {
		t.Fatalf("truncation offset %g outside [0, 8 ns)", early)
	}
	// The realized sim time reflects the truncation (ideal clock).
	wantSim := now + 290e-6 - early
	if math.Abs(simTX-wantSim) > 1e-12 {
		t.Fatalf("simTX %g, want %g", simTX, wantSim)
	}
}

func TestScheduleDelayedTXInPast(t *testing.T) {
	r := testRadio(t, "a", 4)
	now := 1e-3
	requested := r.Now(now).Add(-1e-6)
	_, _, err := r.ScheduleDelayedTX(now, requested)
	var pastErr *ErrDelayedTXInPast
	if !errors.As(err, &pastErr) {
		t.Fatalf("want ErrDelayedTXInPast, got %v", err)
	}
}

func TestRXTimestampJitterStatistics(t *testing.T) {
	r := testRadio(t, "a", 5)
	arrival := 2e-3
	var stats dsp.Running
	for i := 0; i < 4000; i++ {
		ts := r.RXTimestamp(arrival, pulse.NominalBandwidth)
		stats.Add(ts.Seconds() - arrival)
	}
	sigma := r.Config().Jitter.Sigma(pulse.NominalBandwidth)
	if got := stats.StdDev(); got < 0.9*sigma || got > 1.1*sigma {
		t.Fatalf("timestamp jitter std %g, want ~%g", got, sigma)
	}
	if math.Abs(stats.Mean()) > sigma/10 {
		t.Fatalf("timestamp bias %g", stats.Mean())
	}
}

func TestJitterGrowsForWiderPulses(t *testing.T) {
	j := DefaultJitter()
	s1, _ := pulse.ForRegister(pulse.RegisterS1)
	s3, _ := pulse.ForRegister(pulse.RegisterS3)
	if j.Sigma(s3.Bandwidth) <= j.Sigma(s1.Bandwidth) {
		t.Fatal("wider pulse must have larger timestamp jitter")
	}
	// Degenerate bandwidth falls back to Sigma0.
	if j.Sigma(0) != j.Sigma0 {
		t.Fatal("zero bandwidth fallback broken")
	}
}

// lineTaps builds a single-tap LOS channel at distance d meters.
func lineTaps(d float64) []channel.Tap {
	return []channel.Tap{{
		Delay: d / channel.SpeedOfLight,
		Gain:  complex(channel.FreeSpacePathLoss(channel.Channel7CenterFrequency).AmplitudeGain(d), 0),
		Order: 0,
	}}
}

func TestReceiveSingleArrival(t *testing.T) {
	r := testRadio(t, "rx", 6)
	shape, _ := pulse.ForRegister(pulse.RegisterS1)
	rec, err := r.Receive([]Arrival{{
		SourceID: "tx1",
		TXTime:   1e-3,
		Shape:    shape,
		Taps:     lineTaps(5),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rec.LockedSourceID != "tx1" {
		t.Fatalf("locked to %q", rec.LockedSourceID)
	}
	wantArrival := 1e-3 + 5/channel.SpeedOfLight
	if math.Abs(rec.LockedArrivalTime-wantArrival) > 1e-15 {
		t.Fatalf("lock time %g, want %g", rec.LockedArrivalTime, wantArrival)
	}
	// The first path must sit at the reference index.
	mag := rec.CIR.Magnitude()
	idx := dsp.ArgMax(mag)
	if idx != ReferenceIndex {
		t.Fatalf("peak at %d, want reference %d", idx, ReferenceIndex)
	}
	// Timestamp near the true arrival.
	if math.Abs(rec.Timestamp.Seconds()-wantArrival) > 1e-9 {
		t.Fatalf("timestamp error %g", rec.Timestamp.Seconds()-wantArrival)
	}
}

func TestReceiveLocksOnEarliestArrival(t *testing.T) {
	r := testRadio(t, "rx", 7)
	shape, _ := pulse.ForRegister(pulse.RegisterS1)
	arrivals := []Arrival{
		{SourceID: "far", TXTime: 1e-3, Shape: shape, Taps: lineTaps(30)},
		{SourceID: "near", TXTime: 1e-3, Shape: shape, Taps: lineTaps(4)},
	}
	rec, err := r.Receive(arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if rec.LockedSourceID != "near" {
		t.Fatalf("locked to %q, want near", rec.LockedSourceID)
	}
	// Both responses visible as distinct peaks: near at the reference,
	// far delayed by (30-4)m of light travel.
	mag := rec.CIR.Magnitude()
	sep := (30 - 4) / channel.SpeedOfLight / SampleInterval
	farIdx, _ := dsp.MaxWithin(mag, ReferenceIndex+int(sep)-3, ReferenceIndex+int(sep)+4)
	if farIdx < 0 {
		t.Fatal("far response not found")
	}
	if mag[farIdx] < 3*rec.CIR.EstimateNoiseRMS() {
		t.Fatal("far response below noise floor")
	}
}

func TestReceiveLDEIgnoresWeakPrecursor(t *testing.T) {
	// A tap far below the strongest path must not capture the lock
	// (leading-edge detection threshold).
	r := testRadio(t, "rx", 8)
	shape, _ := pulse.ForRegister(pulse.RegisterS1)
	strong := lineTaps(10)[0]
	weak := channel.Tap{Delay: strong.Delay - 20e-9, Gain: strong.Gain * 0.01, Order: 1}
	rec, err := r.Receive([]Arrival{{
		SourceID: "tx",
		TXTime:   1e-3,
		Shape:    shape,
		Taps:     []channel.Tap{weak, strong},
	}})
	if err != nil {
		t.Fatal(err)
	}
	want := 1e-3 + strong.Delay
	if math.Abs(rec.LockedArrivalTime-want) > 1e-15 {
		t.Fatal("lock captured by sub-threshold precursor")
	}
}

func TestReceiveErrors(t *testing.T) {
	r := testRadio(t, "rx", 9)
	if _, err := r.Receive(nil); err == nil {
		t.Error("empty arrivals accepted")
	}
	shape, _ := pulse.ForRegister(pulse.RegisterS1)
	if _, err := r.Receive([]Arrival{{SourceID: "x", Shape: shape}}); err == nil {
		t.Error("arrival without taps accepted")
	}
}

func TestReceiveNoiseFloor(t *testing.T) {
	r := testRadio(t, "rx", 10)
	shape, _ := pulse.ForRegister(pulse.RegisterS1)
	rec, err := r.Receive([]Arrival{{
		SourceID: "tx", TXTime: 0, Shape: shape, Taps: lineTaps(3),
	}})
	if err != nil {
		t.Fatal(err)
	}
	est := rec.CIR.EstimateNoiseRMS()
	if est < DefaultNoiseRMS/3 || est > DefaultNoiseRMS*3 {
		t.Fatalf("noise estimate %g far from configured %g", est, DefaultNoiseRMS)
	}
	// The leading edge crosses the threshold on the pulse's rising flank,
	// at or shortly before the reference (peak) index.
	if got := rec.CIR.FirstPathIndex(6); got < ReferenceIndex-4 || got > ReferenceIndex {
		t.Fatalf("first path at %d, want near reference %d", got, ReferenceIndex)
	}
}

func TestReceiveDisabledNoise(t *testing.T) {
	r, err := New("rx", Config{PHY: airtime.PaperConfig(), NoiseRMS: -1},
		rand.New(rand.NewPCG(11, 1)))
	if err != nil {
		t.Fatal(err)
	}
	shape, _ := pulse.ForRegister(pulse.RegisterS1)
	rec, err := r.Receive([]Arrival{{
		SourceID: "tx", TXTime: 0, Shape: shape, Taps: lineTaps(3),
	}})
	if err != nil {
		t.Fatal(err)
	}
	// All pre-reference taps must be exactly zero.
	for i := 0; i < ReferenceIndex-5; i++ {
		if rec.CIR.Taps[i] != 0 {
			t.Fatalf("tap %d nonzero without noise", i)
		}
	}
	// Noise disabled: the estimate comes from the leading window, which
	// holds only the faint pulse tail, so the leading-edge search lands on
	// the rising edge at or just before the reference index.
	if got := rec.CIR.FirstPathIndex(6); got < ReferenceIndex-4 || got > ReferenceIndex {
		t.Fatalf("first path at %d, want near reference %d", got, ReferenceIndex)
	}
}

func TestCIRCloneIndependent(t *testing.T) {
	c := &CIR{Taps: []complex128{1, 2}, SampleInterval: SampleInterval}
	cl := c.Clone()
	cl.Taps[0] = 99
	if c.Taps[0] == 99 {
		t.Fatal("Clone aliases taps")
	}
	if got := c.TimeAt(1); got != SampleInterval {
		t.Fatalf("TimeAt = %g", got)
	}
}

func TestEstimateClockRatioStatistics(t *testing.T) {
	r := testRadio(t, "a", 91)
	remote := Clock{OffsetPPM: 7}
	truth := remote.RateRatio(r.Clock())
	var stats dsp.Running
	for i := 0; i < 3000; i++ {
		stats.Add(r.EstimateClockRatio(remote) - truth)
	}
	if math.Abs(stats.Mean()) > CFOEstimateSigma/5 {
		t.Fatalf("CFO estimate bias %g", stats.Mean())
	}
	if got := stats.StdDev(); got < 0.8*CFOEstimateSigma || got > 1.2*CFOEstimateSigma {
		t.Fatalf("CFO estimate std %g, want ~%g", got, CFOEstimateSigma)
	}
}
