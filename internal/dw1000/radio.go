package dw1000

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand/v2"

	"github.com/uwb-sim/concurrent-ranging/internal/airtime"
	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

// JitterModel describes the receive-timestamp error of the leading-edge
// detector: zero-mean Gaussian whose standard deviation grows as the pulse
// bandwidth shrinks (wider pulses have a softer rising edge, Sect. II).
type JitterModel struct {
	// Sigma0 is the timestamp standard deviation at RefBandwidth, seconds.
	Sigma0 float64
	// RefBandwidth is the bandwidth Sigma0 is specified at, Hz.
	RefBandwidth float64
	// Exponent is the bandwidth scaling power: σ(B) = Sigma0·(Ref/B)^Exp.
	Exponent float64
}

// DefaultJitter is calibrated so SS-TWR at the nominal 900 MHz bandwidth
// reproduces the paper's σ ≈ 2.3 cm (Sect. V) and the mild degradation the
// wider shapes show (σ₃ ≈ 2.8 cm).
func DefaultJitter() JitterModel {
	return JitterModel{Sigma0: 107e-12, RefBandwidth: pulse.NominalBandwidth, Exponent: 0.22}
}

// Sigma returns the timestamp standard deviation for a pulse of bandwidth
// b (Hz).
func (j JitterModel) Sigma(b float64) float64 {
	if b <= 0 || j.RefBandwidth <= 0 {
		return j.Sigma0
	}
	return j.Sigma0 * math.Pow(j.RefBandwidth/b, j.Exponent)
}

// DefaultNoiseRMS is the per-tap complex noise RMS of the accumulator
// after preamble accumulation, calibrated so a 10 m response still shows
// the clean peaks of the paper's Fig. 4 CIRs (~25 dB peak SNR).
const DefaultNoiseRMS = 1.4e-5

// Config parameterizes a radio instance.
type Config struct {
	// PHY is the IEEE 802.15.4 UWB configuration (rate, PRF, PSR).
	PHY airtime.Config
	// PGDelay is the TC_PGDELAY pulse-shaping register value.
	PGDelay byte
	// AntennaDelay is the calibration constant added to RX and subtracted
	// from TX timestamps, seconds. Zero means perfectly calibrated.
	AntennaDelay float64
	// NoiseRMS is the per-tap complex accumulator noise RMS.
	// Zero selects DefaultNoiseRMS; negative disables noise.
	NoiseRMS float64
	// Jitter is the RX timestamp error model. The zero value selects
	// DefaultJitter.
	Jitter JitterModel
	// Clock is the node's crystal model.
	Clock Clock
}

// Radio is one simulated DW1000.
type Radio struct {
	id    string
	cfg   Config
	shape pulse.Shape
	rng   *rand.Rand
}

// New builds a radio. The RNG drives noise and jitter and must not be
// shared across goroutines.
func New(id string, cfg Config, rng *rand.Rand) (*Radio, error) {
	if id == "" {
		return nil, fmt.Errorf("dw1000: empty radio id")
	}
	if rng == nil {
		return nil, fmt.Errorf("dw1000: nil RNG")
	}
	if err := cfg.PHY.Validate(); err != nil {
		return nil, fmt.Errorf("radio %s: %w", id, err)
	}
	if cfg.PGDelay == 0 {
		cfg.PGDelay = pulse.DefaultRegister
	}
	shape, err := pulse.ForRegister(cfg.PGDelay)
	if err != nil {
		return nil, fmt.Errorf("radio %s: %w", id, err)
	}
	if cfg.NoiseRMS == 0 {
		cfg.NoiseRMS = DefaultNoiseRMS
	}
	if cfg.NoiseRMS < 0 {
		cfg.NoiseRMS = 0
	}
	if cfg.Jitter == (JitterModel{}) {
		cfg.Jitter = DefaultJitter()
	}
	return &Radio{id: id, cfg: cfg, shape: shape, rng: rng}, nil
}

// ID returns the radio identifier.
func (r *Radio) ID() string { return r.id }

// Config returns the radio configuration.
func (r *Radio) Config() Config { return r.cfg }

// Shape returns the TX pulse shape selected by TC_PGDELAY.
func (r *Radio) Shape() pulse.Shape { return r.shape }

// SetPGDelay reprograms the pulse-shaping register.
func (r *Radio) SetPGDelay(reg byte) error {
	shape, err := pulse.ForRegister(reg)
	if err != nil {
		return fmt.Errorf("radio %s: %w", r.id, err)
	}
	r.cfg.PGDelay = reg
	r.shape = shape
	return nil
}

// Clock returns the node's crystal model.
func (r *Radio) Clock() Clock { return r.cfg.Clock }

// Now returns the radio's device timestamp at the given simulation time.
func (r *Radio) Now(simTime float64) DeviceTime { return r.cfg.Clock.Timestamp(simTime) }

// ErrDelayedTXInPast is returned when a delayed transmission is scheduled
// at a device time that has already passed.
type ErrDelayedTXInPast struct {
	Requested, Now DeviceTime
}

func (e *ErrDelayedTXInPast) Error() string {
	return fmt.Sprintf("dw1000: delayed TX time %d is in the past (now %d)", e.Requested, e.Now)
}

// ScheduleDelayedTX programs a delayed transmission for the requested
// device time. The hardware ignores the low 9 bits, so the realized TX
// instant is quantized to ~8 ns and up to 8 ns earlier than requested
// (Sect. III "Limited TX timestamp resolution"). It returns the realized
// device time and the corresponding absolute simulation time of the
// RMARKER leaving the antenna.
func (r *Radio) ScheduleDelayedTX(nowSim float64, requested DeviceTime) (DeviceTime, float64, error) {
	actual := TruncateDelayedTX(requested)
	now := r.Now(nowSim)
	if actual.Sub(now) <= 0 {
		return 0, 0, &ErrDelayedTXInPast{Requested: requested, Now: now}
	}
	// Simulations run far below the ~17 s counter wrap, so the 40-bit
	// value maps to a unique device-clock epoch.
	simTX := r.cfg.Clock.SimSeconds(actual.Seconds()) - r.cfg.AntennaDelay
	return actual, simTX, nil
}

// TXTimestamp returns the device timestamp the radio reports for a frame
// it transmitted at the given simulation time (antenna-delay corrected).
func (r *Radio) TXTimestamp(simTX float64) DeviceTime {
	return r.cfg.Clock.Timestamp(simTX + r.cfg.AntennaDelay)
}

// RXTimestamp returns the device timestamp for a frame whose first path
// arrived at the given simulation time, carried by a pulse of the given
// bandwidth: truth + antenna delay + leading-edge jitter, quantized to
// 15.65 ps device units.
func (r *Radio) RXTimestamp(simArrival, bandwidth float64) DeviceTime {
	jitter := r.rng.NormFloat64() * r.cfg.Jitter.Sigma(bandwidth)
	return r.cfg.Clock.Timestamp(simArrival + r.cfg.AntennaDelay + jitter)
}

// Arrival is one concurrent transmission reaching this receiver: the
// transmitter's realized TX instant, its pulse shape, and the channel
// realization between the two nodes.
type Arrival struct {
	// SourceID identifies the transmitter.
	SourceID string
	// TXTime is the absolute simulation time the RMARKER left the antenna.
	TXTime float64
	// Shape is the transmitter's pulse shape.
	Shape pulse.Shape
	// Taps is the channel realization toward this receiver.
	Taps []channel.Tap
	// Amplitude scales the whole arrival (1 for a standard frame).
	Amplitude float64
}

// firstPathTime returns the arrival time of the first plausible path: the
// earliest tap within ldeRatio of the strongest tap amplitude, mimicking
// the DW1000 leading-edge detection that ignores noise-level precursors.
const ldeRatio = 0.25

func (a *Arrival) firstPathTime() float64 {
	var maxAmp float64
	for _, t := range a.Taps {
		if v := cmplx.Abs(t.Gain); v > maxAmp {
			maxAmp = v
		}
	}
	th := maxAmp * ldeRatio
	for _, t := range a.Taps {
		if cmplx.Abs(t.Gain) >= th {
			return a.TXTime + t.Delay
		}
	}
	return a.TXTime
}

// Reception is the receiver-side outcome of one (possibly concurrent)
// frame reception.
type Reception struct {
	// CIR is the estimated channel impulse response.
	CIR *CIR
	// LockedSourceID is the transmitter the receiver synchronized to (the
	// earliest first path); its payload is the one that gets decoded.
	LockedSourceID string
	// LockedArrivalTime is that source's true first-path arrival time.
	LockedArrivalTime float64
	// Timestamp is the reported RX timestamp (jittered, quantized).
	Timestamp DeviceTime
}

// Receive superposes all concurrent arrivals into the accumulator, locks
// onto the earliest first path, and produces the CIR plus the RX
// timestamp. It returns an error when there is nothing to receive.
func (r *Radio) Receive(arrivals []Arrival) (*Reception, error) {
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("radio %s: no arrivals to receive", r.id)
	}
	lockIdx := 0
	lockTime := math.Inf(1)
	for i := range arrivals {
		if len(arrivals[i].Taps) == 0 {
			return nil, fmt.Errorf("radio %s: arrival from %s has no channel taps",
				r.id, arrivals[i].SourceID)
		}
		if t := arrivals[i].firstPathTime(); t < lockTime {
			lockTime = t
			lockIdx = i
		}
	}
	origin := lockTime - ReferenceIndex*SampleInterval
	cir := &CIR{
		Taps:           make([]complex128, CIRLength),
		SampleInterval: SampleInterval,
		Origin:         origin,
		NoiseRMS:       r.cfg.NoiseRMS,
	}
	for i := range arrivals {
		a := &arrivals[i]
		amp := a.Amplitude
		if amp == 0 {
			amp = 1
		}
		for _, tap := range a.Taps {
			delay := (a.TXTime + tap.Delay - origin) / SampleInterval
			if delay < -10 || delay > CIRLength+10 {
				continue
			}
			a.Shape.RenderInto(cir.Taps, tap.Gain*complex(amp, 0), delay, SampleInterval)
		}
	}
	if sigma := r.cfg.NoiseRMS / math.Sqrt2; sigma > 0 {
		for i := range cir.Taps {
			cir.Taps[i] += complex(r.rng.NormFloat64()*sigma, r.rng.NormFloat64()*sigma)
		}
	}
	locked := &arrivals[lockIdx]
	return &Reception{
		CIR:               cir,
		LockedSourceID:    locked.SourceID,
		LockedArrivalTime: lockTime,
		Timestamp:         r.RXTimestamp(lockTime, locked.Shape.Bandwidth),
	}, nil
}

// CFOEstimateSigma is the standard deviation of the clock-rate-ratio
// estimate the receiver derives from the carrier frequency offset of one
// frame (dimensionless; ~0.02 ppm, typical for a DW1000 carrier
// integrator reading over a full frame).
const CFOEstimateSigma = 2e-8

// EstimateClockRatio returns this radio's noisy estimate of a remote
// clock's rate relative to its own, as obtained from the carrier
// frequency offset of a received frame.
func (r *Radio) EstimateClockRatio(remote Clock) float64 {
	return remote.RateRatio(r.cfg.Clock) + r.rng.NormFloat64()*CFOEstimateSigma
}
