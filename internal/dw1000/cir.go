package dw1000

import (
	"fmt"
	"math"

	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
)

// CIR geometry of the DW1000 accumulator at PRF 64 MHz (Sect. VII of the
// paper: 1016 samples of 1.0016 ns → a ~1017 ns ≈ 307 m window).
const (
	// CIRLength is the number of accumulator taps at PRF 64 MHz.
	CIRLength = 1016
	// SampleInterval is the accumulator tap spacing T_s in seconds
	// (half a 499.2 MHz chip).
	SampleInterval = 1 / (2 * 499.2e6)
	// ReferenceIndex is where the receiver's leading-edge algorithm
	// places the first detected path inside the accumulator window,
	// leaving a short noise-only preamble before it.
	ReferenceIndex = 12
)

// WindowDuration is the total CIR observation span in seconds (~1017 ns).
const WindowDuration = CIRLength * SampleInterval

// CIR is one estimated channel impulse response read back from the
// accumulator.
type CIR struct {
	// Taps are the complex accumulator samples.
	Taps []complex128
	// SampleInterval is the tap spacing in seconds.
	SampleInterval float64
	// Origin is the absolute simulation time of tap 0. Real hardware does
	// not expose this; it exists for test assertions and plots.
	Origin float64
	// NoiseRMS is the per-tap complex noise RMS that was injected,
	// available to detectors as the known noise floor.
	NoiseRMS float64
}

// Magnitude returns |taps| as a new slice.
func (c *CIR) Magnitude() []float64 { return dsp.Abs(c.Taps) }

// Clone returns a deep copy of the CIR.
func (c *CIR) Clone() *CIR {
	return &CIR{
		Taps:           dsp.Clone(c.Taps),
		SampleInterval: c.SampleInterval,
		Origin:         c.Origin,
		NoiseRMS:       c.NoiseRMS,
	}
}

// TimeAt returns the absolute simulation time of tap index i (which may be
// fractional).
func (c *CIR) TimeAt(i float64) float64 {
	return c.Origin + i*c.SampleInterval
}

// EstimateNoiseRMS returns the per-tap noise RMS. The recorded injected
// figure is used when available (wide pulse shapes leak energy into the
// short pre-reference region, so estimating from it would be biased);
// otherwise the leading noise-only region before the first path is
// measured, which is what real hardware does.
func (c *CIR) EstimateNoiseRMS() float64 {
	if c.NoiseRMS > 0 {
		return c.NoiseRMS
	}
	n := min(ReferenceIndex-2, len(c.Taps))
	if n < 4 {
		return 0
	}
	var acc float64
	for _, t := range c.Taps[:n] {
		acc += real(t)*real(t) + imag(t)*imag(t)
	}
	return math.Sqrt(acc / float64(n))
}

// FirstPathIndex runs a leading-edge search: the first tap whose magnitude
// exceeds factor times the estimated noise RMS. It returns -1 when no tap
// crosses the threshold.
func (c *CIR) FirstPathIndex(factor float64) int {
	th := factor * c.EstimateNoiseRMS()
	if th <= 0 {
		return -1
	}
	for i, t := range c.Taps {
		if real(t)*real(t)+imag(t)*imag(t) >= th*th {
			return i
		}
	}
	return -1
}

// validateCIRGeometry keeps the package constants consistent with the
// datasheet values quoted in the paper; it is exercised by tests.
func validateCIRGeometry() error {
	if math.Abs(SampleInterval-1.0016e-9) > 0.001e-9 {
		return fmt.Errorf("dw1000: sample interval %g, want ~1.0016 ns", SampleInterval)
	}
	if math.Abs(WindowDuration-1017e-9) > 1e-9 {
		return fmt.Errorf("dw1000: window %g, want ~1017 ns", WindowDuration)
	}
	return nil
}
