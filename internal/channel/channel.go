// Package channel models UWB radio propagation: free-space/log-distance
// path loss, deterministic specular multipath components enumerated from a
// floor plan with the image method (Fig. 1 of the paper), a Saleh–
// Valenzuela-style diffuse tail ν(t) (Eq. 1), and per-environment presets.
//
// A channel realization is a list of taps (α_k, τ_k); rendering the taps
// through the transmitted pulse shape into the CIR accumulator is the
// radio's job (internal/dw1000), keeping propagation and hardware models
// independent.
package channel

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/uwb-sim/concurrent-ranging/internal/geom"
)

// SpeedOfLight is the propagation speed c used by Eq. 2 and Eq. 4, in m/s.
const SpeedOfLight = 299792458.0

// Channel7CenterFrequency is the center frequency of DW1000 Channel 7 in
// Hz, used for path-loss and carrier-phase computations.
const Channel7CenterFrequency = 6.4896e9

// Tap is one resolvable multipath component of a channel realization.
type Tap struct {
	// Delay is the absolute propagation delay τ_k in seconds.
	Delay float64
	// Gain is the complex amplitude α_k (linear, relative to unit
	// transmitted pulse energy).
	Gain complex128
	// Order is the number of specular bounces; 0 is the direct path and
	// DiffuseOrder marks a diffuse-tail component.
	Order int
}

// DiffuseOrder marks taps belonging to the diffuse multipath tail ν(t).
const DiffuseOrder = -1

// PathLoss is a log-distance path-loss model with free space as the
// special case Exponent = 2.
type PathLoss struct {
	// Exponent is the path-loss exponent n (2 in free space, larger in
	// cluttered indoor environments).
	Exponent float64
	// RefLossDB is the power loss at the 1 m reference distance in dB.
	RefLossDB float64
}

// FreeSpacePathLoss returns the free-space model at carrier frequency fc,
// with the 1 m reference loss from the Friis equation.
func FreeSpacePathLoss(fc float64) PathLoss {
	ref := 20 * math.Log10(4*math.Pi*fc/SpeedOfLight)
	return PathLoss{Exponent: 2, RefLossDB: ref}
}

// AmplitudeGain returns the linear amplitude gain at distance d (meters).
// Distances below 0.1 m are clamped to keep near-field gains finite.
func (pl PathLoss) AmplitudeGain(d float64) float64 {
	d = math.Max(d, 0.1)
	lossDB := pl.RefLossDB + 10*pl.Exponent*math.Log10(d)
	return math.Pow(10, -lossDB/20)
}

// Diffuse parameterizes the dense multipath tail ν(t): Poisson ray
// arrivals with exponentially decaying power.
type Diffuse struct {
	// PowerRatio is the total diffuse power relative to the power of an
	// unobstructed direct path at the same distance (linear). 0 disables
	// the tail.
	PowerRatio float64
	// Decay is the exponential power-decay constant Γ in seconds.
	Decay float64
	// ArrivalRate is the mean ray arrival rate λ in rays per second.
	ArrivalRate float64
	// MaxExcessDelay truncates the tail this long after the first path.
	MaxExcessDelay float64
}

// Environment bundles the propagation parameters of one deployment area.
type Environment struct {
	// Name labels the preset.
	Name string
	// Plan is the floor plan for deterministic reflections; nil means
	// free space (no specular MPCs).
	Plan *geom.FloorPlan
	// MaxReflectionOrder bounds the image-method enumeration.
	MaxReflectionOrder int
	// PathLoss is the large-scale loss model.
	PathLoss PathLoss
	// Diffuse parameterizes ν(t).
	Diffuse Diffuse
	// CarrierFrequency is the center frequency used for per-path carrier
	// phase, Hz.
	CarrierFrequency float64
}

// Realize draws one channel realization between tx and rx. Deterministic
// taps (LOS + specular reflections) are derived from the floor plan with
// carrier phase set by the path length; diffuse taps are drawn from the
// Poisson/exponential model using rng. The returned taps are sorted by
// delay. rng may be nil only when the environment has no diffuse tail.
func (e *Environment) Realize(tx, rx geom.Point, rng *rand.Rand) ([]Tap, error) {
	if e.CarrierFrequency <= 0 {
		return nil, fmt.Errorf("channel: environment %q has no carrier frequency", e.Name)
	}
	d := tx.Dist(rx)
	if d <= 0 {
		return nil, fmt.Errorf("channel: tx and rx are co-located at %v", tx)
	}
	var taps []Tap
	if e.Plan != nil {
		paths, err := e.Plan.Paths(tx, rx, e.MaxReflectionOrder)
		if err != nil {
			return nil, fmt.Errorf("environment %q: %w", e.Name, err)
		}
		taps = make([]Tap, 0, len(paths))
		for _, p := range paths {
			taps = append(taps, e.tapForPath(p))
		}
	} else {
		taps = []Tap{e.tapForPath(geom.Path{
			Points: []geom.Point{tx, rx},
			Length: d,
			Gain:   1,
			Order:  0,
		})}
	}
	if e.Diffuse.PowerRatio > 0 {
		if rng == nil {
			return nil, fmt.Errorf("channel: environment %q needs an RNG for its diffuse tail", e.Name)
		}
		taps = append(taps, e.diffuseTaps(d, rng)...)
	}
	sortTapsByDelay(taps)
	return taps, nil
}

// tapForPath converts a geometric path into a channel tap: amplitude from
// the path-loss model over the full path length times the reflection/
// transmission gain, and carrier phase from the electrical length.
func (e *Environment) tapForPath(p geom.Path) Tap {
	amp := e.PathLoss.AmplitudeGain(p.Length) * p.Gain
	phase := -2 * math.Pi * e.CarrierFrequency * p.Length / SpeedOfLight
	return Tap{
		Delay: p.Length / SpeedOfLight,
		Gain:  complex(amp*math.Cos(phase), amp*math.Sin(phase)),
		Order: p.Order,
	}
}

// diffuseTaps samples the dense tail: Poisson arrivals after the direct
// path with exponentially decaying complex-Gaussian amplitudes, scaled so
// the expected total tail power equals PowerRatio times the unobstructed
// direct-path power at distance d.
func (e *Environment) diffuseTaps(d float64, rng *rand.Rand) []Tap {
	cfg := e.Diffuse
	losDelay := d / SpeedOfLight
	directPower := e.PathLoss.AmplitudeGain(d)
	directPower *= directPower
	// Expected tail power = λ · ∫₀^∞ P0·exp(-τ/Γ) dτ = λ·P0·Γ.
	p0 := cfg.PowerRatio * directPower / (cfg.ArrivalRate * cfg.Decay)
	var taps []Tap
	excess := 0.0
	for {
		// Exponential inter-arrival times.
		excess += rng.ExpFloat64() / cfg.ArrivalRate
		if excess > cfg.MaxExcessDelay {
			break
		}
		power := p0 * math.Exp(-excess/cfg.Decay)
		sigma := math.Sqrt(power / 2)
		taps = append(taps, Tap{
			Delay: losDelay + excess,
			Gain:  complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma),
			Order: DiffuseOrder,
		})
	}
	return taps
}

func sortTapsByDelay(taps []Tap) {
	// Insertion sort: tap lists are short and mostly sorted already.
	for i := 1; i < len(taps); i++ {
		for j := i; j > 0 && taps[j].Delay < taps[j-1].Delay; j-- {
			taps[j], taps[j-1] = taps[j-1], taps[j]
		}
	}
}

// DirectTap returns the first tap with Order 0, i.e. the line-of-sight
// component, and true when present.
func DirectTap(taps []Tap) (Tap, bool) {
	for _, t := range taps {
		if t.Order == 0 {
			return t, true
		}
	}
	return Tap{}, false
}

// TotalPower returns the summed tap power Σ|α_k|².
func TotalPower(taps []Tap) float64 {
	var p float64
	for _, t := range taps {
		p += real(t.Gain)*real(t.Gain) + imag(t.Gain)*imag(t.Gain)
	}
	return p
}
