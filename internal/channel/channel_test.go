package channel

import (
	"math"
	"math/cmplx"
	mrand "math/rand"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/uwb-sim/concurrent-ranging/internal/geom"
)

func TestFreeSpacePathLossReference(t *testing.T) {
	pl := FreeSpacePathLoss(Channel7CenterFrequency)
	// FSPL at 1 m and 6.4896 GHz is ~48.7 dB.
	if math.Abs(pl.RefLossDB-48.7) > 0.3 {
		t.Fatalf("reference loss %g dB, want ~48.7", pl.RefLossDB)
	}
	if pl.Exponent != 2 {
		t.Fatalf("free-space exponent %g", pl.Exponent)
	}
}

func TestAmplitudeGainMonotoneDecreasing(t *testing.T) {
	pl := FreeSpacePathLoss(Channel7CenterFrequency)
	prev := math.Inf(1)
	for _, d := range []float64{0.5, 1, 2, 5, 10, 50, 100} {
		g := pl.AmplitudeGain(d)
		if g <= 0 || g >= prev {
			t.Fatalf("gain not strictly decreasing at %g m: %g", d, g)
		}
		prev = g
	}
	// Doubling distance in free space halves the amplitude.
	ratio := pl.AmplitudeGain(4) / pl.AmplitudeGain(8)
	if math.Abs(ratio-2) > 1e-9 {
		t.Fatalf("free-space distance doubling: amplitude ratio %g, want 2", ratio)
	}
	// Near-field clamp keeps the gain finite.
	if g := pl.AmplitudeGain(0); math.IsInf(g, 0) || math.IsNaN(g) {
		t.Fatal("gain at d=0 must be finite")
	}
}

func TestRealizeFreeSpaceSingleTap(t *testing.T) {
	env := FreeSpace()
	taps, err := env.Realize(geom.Point{X: 0, Y: 0}, geom.Point{X: 10, Y: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(taps) != 1 {
		t.Fatalf("free space must yield 1 tap, got %d", len(taps))
	}
	wantDelay := 10 / SpeedOfLight
	if math.Abs(taps[0].Delay-wantDelay) > 1e-15 {
		t.Fatalf("delay %g, want %g", taps[0].Delay, wantDelay)
	}
	wantAmp := env.PathLoss.AmplitudeGain(10)
	if math.Abs(cmplx.Abs(taps[0].Gain)-wantAmp) > 1e-12 {
		t.Fatalf("amplitude %g, want %g", cmplx.Abs(taps[0].Gain), wantAmp)
	}
	if taps[0].Order != 0 {
		t.Fatalf("order %d", taps[0].Order)
	}
}

func TestRealizeRejectsColocatedNodes(t *testing.T) {
	env := FreeSpace()
	if _, err := env.Realize(geom.Point{X: 1, Y: 1}, geom.Point{X: 1, Y: 1}, nil); err == nil {
		t.Fatal("co-located nodes accepted")
	}
}

func TestRealizeRejectsMissingRNGWithDiffuse(t *testing.T) {
	env := Office()
	if _, err := env.Realize(geom.Point{X: 1, Y: 1}, geom.Point{X: 5, Y: 5}, nil); err == nil {
		t.Fatal("nil RNG accepted despite diffuse tail")
	}
}

func TestRealizeHallwayHasLOSAndReflections(t *testing.T) {
	env := Hallway()
	rng := rand.New(rand.NewPCG(70, 71))
	taps, err := env.Realize(geom.Point{X: 2, Y: 1.2}, geom.Point{X: 12, Y: 1.2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	direct, ok := DirectTap(taps)
	if !ok {
		t.Fatal("no LOS tap")
	}
	var specular, diffuse int
	for _, tap := range taps {
		switch {
		case tap.Order > 0:
			specular++
			if tap.Delay <= direct.Delay {
				t.Fatal("specular tap earlier than LOS")
			}
		case tap.Order == DiffuseOrder:
			diffuse++
		}
	}
	if specular != 4 {
		t.Fatalf("hallway first-order reflections = %d, want 4", specular)
	}
	if diffuse == 0 {
		t.Fatal("no diffuse taps drawn")
	}
	// Sorted by delay.
	for i := 1; i < len(taps); i++ {
		if taps[i].Delay < taps[i-1].Delay {
			t.Fatal("taps not sorted by delay")
		}
	}
}

func TestRealizeLOSIsFirstAndStrongestInHallway(t *testing.T) {
	env := Hallway()
	rng := rand.New(rand.NewPCG(72, 73))
	taps, err := env.Realize(geom.Point{X: 3, Y: 1.2}, geom.Point{X: 9, Y: 1.2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if taps[0].Order != 0 {
		t.Fatal("first tap is not the LOS component")
	}
	losAmp := cmplx.Abs(taps[0].Gain)
	for _, tap := range taps[1:] {
		if cmplx.Abs(tap.Gain) >= losAmp {
			t.Fatalf("tap (order %d) stronger than unobstructed LOS", tap.Order)
		}
	}
}

func TestDiffuseTailPowerBudgetProperty(t *testing.T) {
	// Averaged over many realizations, the diffuse power must approach
	// PowerRatio times the direct-path power.
	env := Office()
	d := 6.0
	direct := env.PathLoss.AmplitudeGain(d)
	wantPower := env.Diffuse.PowerRatio * direct * direct
	rng := rand.New(rand.NewPCG(74, 75))
	var acc float64
	const trials = 400
	for i := 0; i < trials; i++ {
		taps := env.diffuseTaps(d, rng)
		for _, tap := range taps {
			acc += real(tap.Gain)*real(tap.Gain) + imag(tap.Gain)*imag(tap.Gain)
		}
	}
	got := acc / trials
	if got < 0.8*wantPower || got > 1.2*wantPower {
		t.Fatalf("mean diffuse power %g, want %g ±20%%", got, wantPower)
	}
}

func TestDiffuseTapsRespectMaxExcessDelay(t *testing.T) {
	env := Industrial()
	rng := rand.New(rand.NewPCG(76, 77))
	losDelay := 10 / SpeedOfLight
	for i := 0; i < 50; i++ {
		for _, tap := range env.diffuseTaps(10, rng) {
			if tap.Order != DiffuseOrder {
				t.Fatal("diffuse tap with wrong order marker")
			}
			if tap.Delay < losDelay || tap.Delay > losDelay+env.Diffuse.MaxExcessDelay+1e-12 {
				t.Fatalf("diffuse tap delay %g outside window", tap.Delay)
			}
		}
	}
}

func TestCarrierPhaseIsDeterministicFromGeometry(t *testing.T) {
	env := Hallway()
	a := env.tapForPath(geom.Path{Length: 7.3, Gain: 1, Order: 0, Points: nil})
	b := env.tapForPath(geom.Path{Length: 7.3, Gain: 1, Order: 0, Points: nil})
	if a.Gain != b.Gain {
		t.Fatal("same geometry must give the same complex gain")
	}
	// A half-carrier-wavelength longer path flips the phase.
	half := SpeedOfLight / env.CarrierFrequency / 2
	c := env.tapForPath(geom.Path{Length: 7.3 + half, Gain: 1, Order: 0})
	dot := real(a.Gain)*real(c.Gain) + imag(a.Gain)*imag(c.Gain)
	if dot >= 0 {
		t.Fatalf("half-wavelength shift did not flip phase (dot %g)", dot)
	}
}

func TestPresets(t *testing.T) {
	envs := Presets()
	for _, name := range []string{"free-space", "hallway", "office", "industrial"} {
		e, ok := envs[name]
		if !ok {
			t.Fatalf("missing preset %q", name)
		}
		if e.Name != name {
			t.Fatalf("preset %q has Name %q", name, e.Name)
		}
	}
	if _, err := PresetByName("submarine"); err == nil {
		t.Fatal("unknown preset accepted")
	}
	e, err := PresetByName("office")
	if err != nil || e.Name != "office" {
		t.Fatalf("PresetByName(office) = %v, %v", e, err)
	}
}

func TestRealizeDeterministicWithSeedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		env := Office()
		tx := geom.Point{X: 1, Y: 1}
		rx := geom.Point{X: 8, Y: 6}
		t1, err1 := env.Realize(tx, rx, rand.New(rand.NewPCG(seed, 1)))
		t2, err2 := env.Realize(tx, rx, rand.New(rand.NewPCG(seed, 1)))
		if err1 != nil || err2 != nil || len(t1) != len(t2) {
			return false
		}
		for i := range t1 {
			if t1[i] != t2[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20, Rand: mrand.New(mrand.NewSource(53))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTotalPowerAndDirectTap(t *testing.T) {
	taps := []Tap{
		{Delay: 2, Gain: 3, Order: 1},
		{Delay: 1, Gain: 4i, Order: 0},
	}
	if got := TotalPower(taps); math.Abs(got-25) > 1e-12 {
		t.Fatalf("TotalPower = %g", got)
	}
	direct, ok := DirectTap(taps)
	if !ok || direct.Gain != 4i {
		t.Fatalf("DirectTap = %v, %v", direct, ok)
	}
	if _, ok := DirectTap([]Tap{{Order: 1}}); ok {
		t.Fatal("DirectTap found a LOS tap where none exists")
	}
}
