package channel

import (
	"fmt"

	"github.com/uwb-sim/concurrent-ranging/internal/geom"
)

// Preset environments matching the deployment areas of the paper's
// measurement campaigns. The numeric parameters are calibrated so that the
// simulated radio reproduces the paper's headline statistics (SS-TWR σ of
// ~2.3 cm, Table I identification rates, Sect. VI overlap resolution); the
// calibration is documented in EXPERIMENTS.md.

// FreeSpace is an unobstructed link with no reflections and no diffuse
// tail — the cleanest possible channel, useful for unit tests and for the
// cable-measurement emulation.
func FreeSpace() *Environment {
	return &Environment{
		Name:             "free-space",
		PathLoss:         FreeSpacePathLoss(Channel7CenterFrequency),
		CarrierFrequency: Channel7CenterFrequency,
	}
}

// Hallway is the long corridor of the paper's Fig. 4 experiment: strong
// LOS, smooth side walls with noticeable reflectivity, light diffuse tail.
// The corridor is 30 m long and 2.4 m wide.
func Hallway() *Environment {
	plan, err := geom.Rectangle(30, 2.4, 0.22)
	if err != nil {
		panic(fmt.Sprintf("channel: hallway preset: %v", err)) // static geometry, cannot fail
	}
	return &Environment{
		Name:               "hallway",
		Plan:               plan,
		MaxReflectionOrder: 1,
		PathLoss:           PathLoss{Exponent: 1.9, RefLossDB: FreeSpacePathLoss(Channel7CenterFrequency).RefLossDB},
		Diffuse: Diffuse{
			PowerRatio:     0.05,
			Decay:          12e-9,
			ArrivalRate:    0.4e9,
			MaxExcessDelay: 120e-9,
		},
		CarrierFrequency: Channel7CenterFrequency,
	}
}

// Office is the furnished office room of the paper's Fig. 2 and Fig. 6
// experiments: an 10 m × 8 m room with moderately reflective walls and a
// pronounced diffuse tail from furniture scattering.
func Office() *Environment {
	plan, err := geom.Rectangle(10, 8, 0.35)
	if err != nil {
		panic(fmt.Sprintf("channel: office preset: %v", err))
	}
	return &Environment{
		Name:               "office",
		Plan:               plan,
		MaxReflectionOrder: 2,
		PathLoss:           PathLoss{Exponent: 2.0, RefLossDB: FreeSpacePathLoss(Channel7CenterFrequency).RefLossDB},
		Diffuse: Diffuse{
			PowerRatio:     0.35,
			Decay:          18e-9,
			ArrivalRate:    0.6e9,
			MaxExcessDelay: 180e-9,
		},
		CarrierFrequency: Channel7CenterFrequency,
	}
}

// Industrial is a large hall with metallic surfaces: high reflectivity,
// long and heavy diffuse tail — the hardest preset for response detection.
func Industrial() *Environment {
	plan, err := geom.Rectangle(40, 25, 0.7)
	if err != nil {
		panic(fmt.Sprintf("channel: industrial preset: %v", err))
	}
	return &Environment{
		Name:               "industrial",
		Plan:               plan,
		MaxReflectionOrder: 2,
		PathLoss:           PathLoss{Exponent: 2.1, RefLossDB: FreeSpacePathLoss(Channel7CenterFrequency).RefLossDB},
		Diffuse: Diffuse{
			PowerRatio:     0.8,
			Decay:          40e-9,
			ArrivalRate:    0.8e9,
			MaxExcessDelay: 350e-9,
		},
		CarrierFrequency: Channel7CenterFrequency,
	}
}

// Presets returns all named environments, keyed by name.
func Presets() map[string]*Environment {
	envs := []*Environment{FreeSpace(), Hallway(), Office(), Industrial()}
	out := make(map[string]*Environment, len(envs))
	for _, e := range envs {
		out[e.Name] = e
	}
	return out
}

// PresetByName looks up a preset environment by its name.
func PresetByName(name string) (*Environment, error) {
	if e, ok := Presets()[name]; ok {
		return e, nil
	}
	return nil, fmt.Errorf("channel: unknown environment %q", name)
}
