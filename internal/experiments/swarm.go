package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"github.com/uwb-sim/concurrent-ranging/internal/sim"
)

// SwarmScaleConfig parameterizes the city-scale swarm sweep.
type SwarmScaleConfig struct {
	// Trials bounds the sweep size like the other Monte-Carlo knobs:
	// 0 runs the full ladder up to 100 000 nodes, otherwise the largest
	// N is capped at 4000·Trials (so -trials 3 previews up to 10k nodes).
	Trials int
	// Seed drives the deployment and every protocol draw.
	Seed uint64
	// Workers is the sharded engine's worker-pool size (0 = GOMAXPROCS).
	Workers int
	// Sizes overrides the swept node counts.
	Sizes []int
}

// SwarmScalePoint is one swept node count.
type SwarmScalePoint struct {
	// N is the node count; Shards and Workers describe the engine.
	N, Shards, Workers int
	// LookaheadMicros is the conservative window length in µs.
	LookaheadMicros float64
	// Windows is the number of barrier windows of the W-worker run.
	Windows int
	// Events is the number of discrete events executed.
	Events int
	// Stats is the merged protocol tally (bit-identical at any worker
	// count; verified against a 1-worker run before reporting).
	Stats sim.SwarmStats
	// CrossShardPct is the share of receptions that crossed the bus.
	CrossShardPct float64
	// WallSeconds1 and WallSecondsW are the 1-worker and W-worker run
	// times (wall-time fields).
	WallSeconds1, WallSecondsW float64
	// EventsPerSec and RoundsPerSec are W-worker throughputs (wall).
	EventsPerSec, RoundsPerSec float64
	// Speedup is WallSeconds1 / WallSecondsW (wall).
	Speedup float64
}

// SwarmScaleResult is the swarm scale sweep of the sharded parallel
// engine: N-node city deployments (every 10th node an initiator running
// the Sect. VIII combined scheme against the responders in range) are
// simulated on the spatially sharded engine, once with 1 worker and once
// with the full pool. The two runs must agree bit for bit — the sweep
// fails otherwise — and the W-worker run's throughput is what the run
// report carries as events_per_second.
type SwarmScaleResult struct {
	// Points holds one entry per swept N, ascending.
	Points []SwarmScalePoint
	// Workers is the pool size used for the W-worker runs.
	Workers int
}

// swarmSizes is the full sweep ladder.
var swarmSizes = []int{100, 1000, 10000, 100000}

// SwarmScale runs the sweep.
func SwarmScale(cfg SwarmScaleConfig) (*SwarmScaleResult, error) {
	sizes := cfg.Sizes
	if len(sizes) == 0 {
		sizes = swarmSizes
		if cfg.Trials > 0 {
			maxN := 4000 * cfg.Trials
			n := 0
			for _, s := range sizes {
				if s <= maxN {
					n++
				}
			}
			if n == 0 {
				n = 1
			}
			sizes = sizes[:n]
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &SwarmScaleResult{Workers: workers}
	m := newMeter(len(sizes))
	defer m.finish()
	rec := recorder()
	for _, n := range sizes {
		t0 := wallNow()
		sw, err := sim.NewSwarm(sim.SwarmConfig{N: n, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("swarm N=%d: %w", n, err)
		}
		w1Start := wallNow()
		ref, err := sw.RunSharded(1)
		if err != nil {
			return nil, fmt.Errorf("swarm N=%d workers=1: %w", n, err)
		}
		w1 := wallSince(w1Start).Seconds()
		// The W-worker run is the instrumented one: live metrics, flight
		// spans, and the engine profiler all attach here, and all three are
		// observational — the divergence gate below still compares it
		// bit-for-bit against the bare 1-worker reference.
		sw.SetRecorder(rec)
		sw.SetFlightRecorder(flight())
		var prof *sim.EngineProfiler
		if rec != nil {
			prof = sim.NewEngineProfiler(sim.EngineProfilerConfig{Recorder: rec})
		}
		wStart := wallNow()
		run, err := sw.RunShardedProfiled(workers, prof)
		if err != nil {
			return nil, fmt.Errorf("swarm N=%d workers=%d: %w", n, workers, err)
		}
		wSecs := wallSince(wStart).Seconds()
		sw.SetRecorder(nil)
		sw.SetFlightRecorder(nil)
		if prof != nil {
			addEngineProfile(prof.Profile())
		}
		// The determinism contract is a hard gate, not a statistic: a
		// W-worker run that differs from the 1-worker run in any bit of
		// the merged stats or the event count is a scheduling leak.
		if run.Stats != ref.Stats || run.Events != ref.Events {
			return nil, fmt.Errorf("swarm N=%d: %d-worker run diverged from 1-worker run\n  1: %s (%d events)\n  %d: %s (%d events)",
				n, workers, ref.Stats, ref.Events, workers, run.Stats, run.Events)
		}
		sw.Record(recorder(), run)
		addSwarmThroughput(run.Events, int(run.Stats.RoundsCompleted), wSecs)
		pt := SwarmScalePoint{
			N:               n,
			Shards:          run.Shards,
			Workers:         run.Workers,
			LookaheadMicros: sw.Lookahead() * 1e6,
			Windows:         run.Windows,
			Events:          run.Events,
			Stats:           run.Stats,
			WallSeconds1:    w1,
			WallSecondsW:    wSecs,
		}
		if run.Stats.Receptions > 0 {
			pt.CrossShardPct = 100 * float64(run.Stats.CrossShardFrames) / float64(run.Stats.Receptions)
		}
		if wSecs > 0 {
			pt.EventsPerSec = float64(run.Events) / wSecs
			pt.RoundsPerSec = float64(run.Stats.RoundsCompleted) / wSecs
		}
		if wSecs > 0 && w1 > 0 {
			pt.Speedup = w1 / wSecs
		}
		res.Points = append(res.Points, pt)
		m.trialDone(wallSince(t0))
	}
	return res, nil
}

// Render formats the sweep. Every wall-derived column uses a fixed-width
// format so the rendered byte count — which the run report records as
// output_bytes, a determinism-gated field — does not vary run to run.
func (r *SwarmScaleResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "--- Swarm scale: sharded city-scale concurrent ranging (%d workers) ---\n", r.Workers)
	fmt.Fprintf(&b, "%8s %7s %10s %8s %9s %8s %8s %7s %8s %8s %10s %8s\n",
		"N", "shards", "lookahead", "windows", "events", "rounds", "resolved", "xshard%", "err[m]", "wall[s]", "events/s", "speedup")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d %7d %8.1fµs %8d %9d %8d %8d %7.2f %8.3f %8.3f %10.3e %8.2f\n",
			p.N, p.Shards, p.LookaheadMicros, p.Windows, p.Events,
			p.Stats.RoundsCompleted, p.Stats.Resolved, p.CrossShardPct,
			p.Stats.MeanAbsErr(), p.WallSecondsW, p.EventsPerSec, p.Speedup)
	}
	return b.String()
}
