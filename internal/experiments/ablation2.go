package experiments

import (
	"math"

	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/geom"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
	"github.com/uwb-sim/concurrent-ranging/internal/sim"
)

// AblationRefinementResult compares the literal paper estimator (peak on
// the up-sampled grid, steps 3–5 of Sect. IV) against the sub-sample
// joint (τ, α) refinement this implementation adds before subtracting.
type AblationRefinementResult struct {
	// GridPhantoms and RefinedPhantoms are the mean numbers of spurious
	// detections per automatic-mode run.
	GridPhantoms, RefinedPhantoms float64
	// GridDelayRMSE and RefinedDelayRMSE are the response-delay errors in
	// picoseconds (single clean response at high SNR).
	GridDelayRMSE, RefinedDelayRMSE float64
	// Trials per variant.
	Trials int
}

// AblationRefinement measures both metrics on a clean two-responder
// setup. The receiver aligns the first (anchor) response to its reference
// index, so only the second response exposes sub-sample behavior: the
// DW1000's 8 ns TX quantization places it at a uniformly distributed
// fractional position.
func AblationRefinement(trials int, seed uint64) (*AblationRefinementResult, error) {
	if trials == 0 {
		trials = 150
	}
	bank, err := pulse.NewBank(dw1000.SampleInterval, pulse.RegisterS1)
	if err != nil {
		return nil, err
	}
	res := &AblationRefinementResult{Trials: trials}
	for _, grid := range []bool{true, false} {
		det, err := core.NewDetector(bank, core.DetectorConfig{DisableRefinement: grid})
		if err != nil {
			return nil, err
		}
		instrumentDetector(det)
		var phantoms dsp.Running
		var delayErr dsp.Running
		for trial := 0; trial < trials; trial++ {
			net, err := sim.NewNetwork(sim.NetworkConfig{
				Environment:      channel.FreeSpace(), // isolate the estimator
				Seed:             seed + uint64(trial)*947,
				RandomClockPhase: true,
			})
			if err != nil {
				return nil, err
			}
			instrumentNetwork(net)
			init, err := net.AddNode(sim.NodeConfig{ID: -1, Name: "init", Pos: geom.Point{X: 0, Y: 0}})
			if err != nil {
				return nil, err
			}
			r1, err := net.AddNode(sim.NodeConfig{ID: 0, Pos: geom.Point{X: 3, Y: 0}})
			if err != nil {
				return nil, err
			}
			r2, err := net.AddNode(sim.NodeConfig{ID: 1, Pos: geom.Point{X: 7, Y: 0}})
			if err != nil {
				return nil, err
			}
			round, err := net.RunConcurrentRound(init, []*sim.Node{r1, r2},
				sim.RoundConfig{Bank: bank})
			if err != nil {
				return nil, err
			}
			cir := round.Reception.CIR
			responses, err := det.Detect(cir.Taps, cir.NoiseRMS)
			if err != nil {
				return nil, err
			}
			phantoms.Add(float64(max(len(responses)-2, 0)))
			// Ground-truth position of the second response: the doubled
			// distance difference plus the realized quantization offsets.
			quantDiff := round.TXQuantizationError[1] - round.TXQuantizationError[0]
			expected := float64(dw1000.ReferenceIndex)*dw1000.SampleInterval +
				2*(7.0-3.0)/channel.SpeedOfLight - quantDiff
			best := math.Inf(1)
			for _, r := range responses {
				if d := math.Abs(r.Delay - expected); d < best {
					best = d
				}
			}
			if best < 2e-9 {
				delayErr.Add(best * best)
			}
		}
		rmse := math.Sqrt(delayErr.Mean()) * 1e12
		if grid {
			res.GridPhantoms = phantoms.Mean()
			res.GridDelayRMSE = rmse
		} else {
			res.RefinedPhantoms = phantoms.Mean()
			res.RefinedDelayRMSE = rmse
		}
	}
	return res, nil
}

// Render formats the comparison.
func (r *AblationRefinementResult) Render() string {
	t := &Table{
		Title:  "Ablation — grid-limited (literal Sect. IV) vs sub-sample refined estimator",
		Header: []string{"estimator", "phantom detections/run", "delay RMSE [ps]"},
		Rows: [][]string{
			{"up-sampled grid (paper steps 3-5)", fmtF(r.GridPhantoms, 2), fmtF(r.GridDelayRMSE, 0)},
			{"joint (τ,α) refinement", fmtF(r.RefinedPhantoms, 2), fmtF(r.RefinedDelayRMSE, 0)},
		},
	}
	return t.String()
}

// AblationSlotPlanResult compares the paper's slot sizing (N_RPM =
// ⌊δ_max·c/r_max⌋) against the round-trip-safe variant when responder
// distances spread across the full nominal range.
type AblationSlotPlanResult struct {
	// Spreads are the evaluated distance spreads in meters.
	Spreads []float64
	// PaperRate and SafeRate are correct-identification rates per spread.
	PaperRate, SafeRate []float64
	// Trials per cell.
	Trials int
}

// AblationSlotPlan sweeps the responder spread for both plans. Six
// responders are placed from 2 m out to 2 m + spread; with the paper plan
// (δ·c/2 ≈ 38 m of tolerated spread at r_max = 75 m) wide deployments
// start leaking across slot boundaries earlier than with the safe plan.
func AblationSlotPlan(trials int, seed uint64) (*AblationSlotPlanResult, error) {
	if trials == 0 {
		trials = 30
	}
	spreads := []float64{5, 15, 25}
	res := &AblationSlotPlanResult{Spreads: spreads, Trials: trials}
	const maxRange = 75.0
	paperPlan, err := core.NewSlotPlan(maxRange, 3)
	if err != nil {
		return nil, err
	}
	safePlan, err := core.NewSafeSlotPlan(maxRange, 3)
	if err != nil {
		return nil, err
	}
	for _, spread := range spreads {
		pr, err := slotPlanTrial(paperPlan, spread, trials, seed)
		if err != nil {
			return nil, err
		}
		sr, err := slotPlanTrial(safePlan, spread, trials, seed+1)
		if err != nil {
			return nil, err
		}
		res.PaperRate = append(res.PaperRate, pr)
		res.SafeRate = append(res.SafeRate, sr)
	}
	return res, nil
}

func slotPlanTrial(plan core.SlotPlan, spread float64, trials int, seed uint64) (float64, error) {
	bank, err := pulse.DefaultBank(dw1000.SampleInterval, plan.NumShapes)
	if err != nil {
		return 0, err
	}
	det, err := core.NewDetector(bank, core.DetectorConfig{})
	if err != nil {
		return 0, err
	}
	instrumentDetector(det)
	resolver := &core.Resolver{Plan: plan}
	const responders = 6
	var counter dsp.Counter
	for trial := 0; trial < trials; trial++ {
		net, err := sim.NewNetwork(sim.NetworkConfig{
			Environment:      channel.Hallway(),
			Seed:             seed + uint64(trial)*3571,
			RandomClockPhase: true,
		})
		if err != nil {
			return 0, err
		}
		instrumentNetwork(net)
		init, err := net.AddNode(sim.NodeConfig{ID: -1, Name: "init", Pos: geom.Point{X: 0.5, Y: 0.9}})
		if err != nil {
			return 0, err
		}
		var resps []*sim.Node
		truth := make(map[int]float64, responders)
		for id := 0; id < responders; id++ {
			d := 2 + spread*float64(id)/float64(responders-1)
			node, err := net.AddNode(sim.NodeConfig{ID: id, Pos: geom.Point{X: 0.5 + d, Y: 0.9}})
			if err != nil {
				return 0, err
			}
			resps = append(resps, node)
			truth[id] = d
		}
		round, err := net.RunConcurrentRound(init, resps, sim.RoundConfig{
			Plan: plan, Bank: bank, DisableTXQuantization: true,
		})
		if err != nil {
			return 0, err
		}
		responses, err := det.Detect(round.Reception.CIR.Taps, round.Reception.CIR.NoiseRMS)
		if err != nil {
			return 0, err
		}
		ms, err := resolver.Resolve(responses, round.DecodedID, round.TWRDistance())
		if err != nil {
			for id := 0; id < responders; id++ {
				counter.Record(false)
			}
			continue
		}
		byID := make(map[int]core.Measurement, len(ms))
		for _, m := range ms {
			byID[m.ID] = m
		}
		for id := 0; id < responders; id++ {
			m, ok := byID[id]
			counter.Record(ok && math.Abs(m.Distance-truth[id]) < 1)
		}
	}
	return counter.Rate(), nil
}

// Render formats the sweep.
func (r *AblationSlotPlanResult) Render() string {
	t := &Table{
		Title:  "Ablation — paper slot sizing vs round-trip-safe sizing (r_max = 75 m, 6 responders)",
		Header: []string{"distance spread [m]", "paper plan (4 slots)", "safe plan (2 slots)"},
	}
	for i, s := range r.Spreads {
		t.Rows = append(t.Rows, []string{
			fmtF(s, 0), fmtPct(100 * r.PaperRate[i]), fmtPct(100 * r.SafeRate[i]),
		})
	}
	return t.String()
}
