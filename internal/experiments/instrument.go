package experiments

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/obs"
	"github.com/uwb-sim/concurrent-ranging/internal/obs/trace"
	"github.com/uwb-sim/concurrent-ranging/internal/sim"
)

// Metric names the experiment harness records.
const (
	// MetricTrialSeconds is the per-trial wall time (a wall-time metric:
	// reports strip it before determinism comparisons).
	MetricTrialSeconds = "experiments.trial_seconds"
	// MetricTrials counts completed Monte-Carlo trials.
	MetricTrials = "experiments.trials"
	// MetricTrialsByExperiment is the labeled companion of MetricTrials:
	// trials counted per active experiment (see SetActiveExperiment).
	// Recorded only when the installed Recorder supports labeled series
	// (obs.VecSource; the Registry does).
	MetricTrialsByExperiment = "experiments.experiment_trials"
	// MetricCampaignDoneLive and MetricCampaignTotalLive are live
	// campaign-progress gauges for dashboards (crtop's progress bar).
	// The obs.LiveMetricSuffix marks them wall-time-class: their values
	// depend on scheduling, so StripWallTime drops them from reports.
	MetricCampaignDoneLive  = "experiments.campaign_done" + obs.LiveMetricSuffix
	MetricCampaignTotalLive = "experiments.campaign_total" + obs.LiveMetricSuffix
)

// activeExperiment names the experiment currently running, for labeling
// ambient metrics. Like the Instrumentation itself it is deliberately
// ambient: harnesses (crbench) bracket each runner with
// SetActiveExperiment(name) / SetActiveExperiment("") and the meter picks
// the name up when a campaign starts.
var activeExperiment atomic.Value // string

// SetActiveExperiment declares which experiment subsequent campaigns
// belong to, so per-experiment labeled metrics attribute trials
// correctly. The empty string clears it.
func SetActiveExperiment(name string) { activeExperiment.Store(name) }

// ActiveExperiment returns the declared experiment name, or "".
func ActiveExperiment() string {
	if v := activeExperiment.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// Progress is one campaign progress update.
type Progress struct {
	// Done and Total count trials (or campaign units) finished vs
	// planned.
	Done, Total int
	// Elapsed is the wall time since the campaign started.
	Elapsed time.Duration
	// Remaining estimates the time to completion from the mean trial
	// rate so far (0 until at least one trial finished).
	Remaining time.Duration
}

// ProgressFunc receives progress updates. It may be called concurrently
// from campaign workers and must be cheap; throttling and rendering are
// the callback's business (crbench's printer rate-limits to a few updates
// per second).
type ProgressFunc func(Progress)

// Instrumentation is the package-wide observability configuration:
// a progress sink and a metrics recorder. Both are optional; the zero
// value (or a nil *Instrumentation) disables everything.
type Instrumentation struct {
	// Progress, when non-nil, receives per-trial campaign progress.
	Progress ProgressFunc
	// Recorder, when non-nil, receives per-trial timing and is attached
	// to every detector and network the experiments build. It must be
	// safe for concurrent use (obs.Registry is).
	Recorder obs.Recorder
	// Flight, when non-nil, is the detection flight recorder attached to
	// every detector and network the experiments build: campaigns and
	// detector runs open trace spans on it (a *trace.Tracer is safe for
	// concurrent use).
	Flight *trace.Tracer
}

// instr holds the installed instrumentation. Experiments are pure
// functions of their configs; instrumentation is deliberately ambient so
// the dozens of experiment entry points keep their signatures. Swaps are
// atomic, so installing/clearing races at worst misses a few updates.
var instr atomic.Pointer[Instrumentation]

// SetInstrumentation installs the package instrumentation (nil disables).
// Install before starting experiments; crbench does this once at startup.
func SetInstrumentation(in *Instrumentation) { instr.Store(in) }

// recorder returns the installed Recorder or nil.
func recorder() obs.Recorder {
	if in := instr.Load(); in != nil {
		return in.Recorder
	}
	return nil
}

// flight returns the installed flight recorder or nil.
func flight() *trace.Tracer {
	if in := instr.Load(); in != nil {
		return in.Flight
	}
	return nil
}

// instrumentDetector attaches the installed recorder and flight recorder
// (if any) to a freshly built detector and returns it, so experiment code
// can wrap core.NewDetector results in one call.
func instrumentDetector(det *core.Detector) *core.Detector {
	if rec := recorder(); rec != nil {
		det.SetRecorder(rec)
	}
	if tr := flight(); tr != nil {
		det.SetFlightRecorder(tr)
	}
	return det
}

// instrumentNetwork attaches the installed recorder and flight recorder
// (if any) to a freshly built network and returns it.
func instrumentNetwork(net *sim.Network) *sim.Network {
	if rec := recorder(); rec != nil {
		net.SetRecorder(rec)
	}
	if tr := flight(); tr != nil {
		net.SetFlightRecorder(tr)
	}
	return net
}

// instrumentBatch attaches the installed recorder and flight recorder (if
// any) to a freshly built batch engine and wires its per-item progress
// into the campaign meter, so batch-path experiments report the same
// metrics/progress stream as loop-path ones.
func instrumentBatch(bd *core.BatchDetector, m *meter) *core.BatchDetector {
	if rec := recorder(); rec != nil {
		bd.SetRecorder(rec)
	}
	if tr := flight(); tr != nil {
		bd.SetFlightRecorder(tr)
	}
	if m != nil {
		bd.SetProgress(func(int) { m.trialDone(0) })
	}
	return bd
}

// batchTally accumulates the batch-path throughput measured by the most
// recent experiment, for crbench to surface as the per-experiment
// cirs_per_second report field. The numbers are wall-derived, so the
// resulting field is a wall-time-class field StripWallTime zeroes.
var batchTally struct {
	mu      sync.Mutex
	cirs    int
	seconds float64
}

// addBatchThroughput adds one timed batch run to the tally.
func addBatchThroughput(cirs int, seconds float64) {
	batchTally.mu.Lock()
	batchTally.cirs += cirs
	batchTally.seconds += seconds
	batchTally.mu.Unlock()
}

// TakeBatchThroughput returns the accumulated batch throughput sample
// (CIRs processed and wall seconds spent) and resets the tally, so a
// harness can attribute it to the experiment that just ran.
func TakeBatchThroughput() (cirs int, seconds float64) {
	batchTally.mu.Lock()
	cirs, seconds = batchTally.cirs, batchTally.seconds
	batchTally.cirs, batchTally.seconds = 0, 0
	batchTally.mu.Unlock()
	return cirs, seconds
}

// swarmTally accumulates the sharded-engine throughput measured by the
// most recent swarm experiment, for crbench to surface as the
// per-experiment events_per_second / rounds_per_second report fields.
// Wall-derived, so those fields are wall-time-class and StripWallTime
// zeroes them.
var swarmTally struct {
	mu      sync.Mutex
	events  int
	rounds  int
	seconds float64
}

// addSwarmThroughput adds one timed swarm run to the tally.
func addSwarmThroughput(events, rounds int, seconds float64) {
	swarmTally.mu.Lock()
	swarmTally.events += events
	swarmTally.rounds += rounds
	swarmTally.seconds += seconds
	swarmTally.mu.Unlock()
}

// TakeSwarmThroughput returns the accumulated swarm throughput sample
// (events executed, rounds completed, wall seconds) and resets the tally.
func TakeSwarmThroughput() (events, rounds int, seconds float64) {
	swarmTally.mu.Lock()
	events, rounds, seconds = swarmTally.events, swarmTally.rounds, swarmTally.seconds
	swarmTally.events, swarmTally.rounds, swarmTally.seconds = 0, 0, 0
	swarmTally.mu.Unlock()
	return events, rounds, seconds
}

// engineTally holds the sharded-engine scaling diagnosis measured by the
// most recent profiled run, for crbench to surface as the experiment's
// engine_* report fields. Wall-derived, so those fields are
// wall-time-class and StripWallTime zeroes them.
var engineTally struct {
	mu   sync.Mutex
	prof *sim.EngineProfile
}

// addEngineProfile records the latest profiled run's diagnosis (the most
// recent call wins; the swarm sweep profiles its largest point last).
func addEngineProfile(p *sim.EngineProfile) {
	engineTally.mu.Lock()
	engineTally.prof = p
	engineTally.mu.Unlock()
}

// TakeEngineProfile returns the latest engine diagnosis and resets the
// tally (nil when no profiled run happened since the last take).
func TakeEngineProfile() *sim.EngineProfile {
	engineTally.mu.Lock()
	p := engineTally.prof
	engineTally.prof = nil
	engineTally.mu.Unlock()
	return p
}

// wallNow is this package's single sanctioned wall-clock read. Every
// duration derived from it flows into progress callbacks or a *_seconds
// field/metric, all of which StripWallTime removes from run reports, so
// wall time never reaches a determinism-checked output. New wall-clock
// uses must go through here (crlint's detrand analyzer enforces it).
func wallNow() time.Time {
	return time.Now() //lint:allow detrand wall time feeds only StripWallTime-stripped outputs
}

// wallSince returns the elapsed wall time since t0 (see wallNow).
func wallSince(t0 time.Time) time.Duration {
	return time.Since(t0) //lint:allow detrand wall time feeds only StripWallTime-stripped outputs
}

// meter tracks one campaign's trial progress. A nil meter is inert, so
// callers create one unconditionally and tick without guards; newMeter
// returns nil when no instrumentation is installed.
type meter struct {
	total    int
	done     atomic.Int64
	terminal atomic.Bool // a Progress{Done: Total} update has been pushed
	start    time.Time
	progress ProgressFunc
	rec      obs.Recorder
	// expTrials is the per-experiment labeled trial counter, resolved
	// once at campaign start (nil when no experiment is active or the
	// Recorder has no labeled series).
	expTrials *obs.Counter
}

// newMeter starts a campaign meter over total trials, or returns nil when
// instrumentation is disabled.
func newMeter(total int) *meter {
	in := instr.Load()
	if in == nil || (in.Progress == nil && in.Recorder == nil) {
		return nil
	}
	m := &meter{total: total, start: wallNow(), progress: in.Progress, rec: in.Recorder}
	if m.rec != nil {
		if vs, ok := m.rec.(obs.VecSource); ok {
			if name := ActiveExperiment(); name != "" {
				m.expTrials = vs.CounterVec(MetricTrialsByExperiment, "experiment").With(name)
			}
		}
		m.rec.SetGauge(MetricCampaignTotalLive, float64(total))
		m.rec.SetGauge(MetricCampaignDoneLive, 0)
	}
	return m
}

// trialDone records one finished trial of the given duration and pushes a
// progress update. Safe for concurrent use; a nil meter does nothing.
func (m *meter) trialDone(d time.Duration) {
	if m == nil {
		return
	}
	done := int(m.done.Add(1))
	// Multi-phase campaigns can tick a meter past its planned total (the
	// phases share one meter); clamp so Done never overshoots Total and the
	// estimate reads "finished" instead of silently pinning to a
	// meaningless zero next to an impossible count.
	if done > m.total {
		done = m.total
	}
	if m.rec != nil {
		m.rec.Observe(MetricTrialSeconds, d.Seconds())
		m.rec.Count(MetricTrials, 1)
		if m.expTrials != nil {
			m.expTrials.Inc()
		}
		m.rec.SetGauge(MetricCampaignDoneLive, float64(done))
	}
	if m.progress == nil {
		return
	}
	if done >= m.total {
		m.terminal.Store(true)
	}
	elapsed := wallSince(m.start)
	var remaining time.Duration
	if done > 0 && done < m.total {
		remaining = time.Duration(float64(elapsed) / float64(done) * float64(m.total-done))
	}
	m.progress(Progress{Done: done, Total: m.total, Elapsed: elapsed, Remaining: remaining})
}

// finish pushes the terminal Progress{Done: Total} update if no trial tick
// ever did: a zero-trial campaign never ticks at all, and a campaign can
// end short of its planned total. Idempotent; a nil meter does nothing.
func (m *meter) finish() {
	if m == nil {
		return
	}
	if m.rec != nil {
		m.rec.SetGauge(MetricCampaignDoneLive, float64(m.total))
	}
	if m.progress == nil {
		return
	}
	if m.terminal.Swap(true) {
		return
	}
	m.progress(Progress{Done: m.total, Total: m.total, Elapsed: wallSince(m.start)})
}

// timeTrial runs one trial body under the meter's clock.
func (m *meter) timeTrial(fn func() error) error {
	if m == nil {
		return fn()
	}
	t0 := wallNow()
	err := fn()
	m.trialDone(wallSince(t0))
	return err
}
