package experiments

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestParallelMapOrdered(t *testing.T) {
	got, err := parallelMap(100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d = %d", i, v)
		}
	}
}

func TestParallelMapWrapsErrorWithTrialIndex(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := parallelMap(50, func(i int) (int, error) {
		if i == 17 || i == 31 {
			return 0, sentinel
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("cause lost: %v", err)
	}
	// The FIRST failing trial by index is reported, deterministically.
	if !strings.Contains(err.Error(), "trial 17:") {
		t.Fatalf("error %q does not name trial 17", err)
	}
}

func TestParallelMapJoinsAllErrors(t *testing.T) {
	errA, errB := errors.New("first failure"), errors.New("second failure")
	_, err := parallelMap(40, func(i int) (int, error) {
		switch i {
		case 12:
			return 0, errA
		case 29:
			return 0, errB
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("errors swallowed")
	}
	// Every failure survives the join, matchable by errors.Is.
	if !errors.Is(err, errA) {
		t.Fatalf("first cause lost: %v", err)
	}
	if !errors.Is(err, errB) {
		t.Fatalf("second cause masked: %v", err)
	}
	// The message lists failures in trial-index order, lowest first.
	msg := err.Error()
	at12, at29 := strings.Index(msg, "trial 12:"), strings.Index(msg, "trial 29:")
	if at12 < 0 || at29 < 0 {
		t.Fatalf("error %q does not name both trials", msg)
	}
	if at12 > at29 {
		t.Fatalf("error %q not led by the lowest trial index", msg)
	}
}

func TestParallelMapRecoversPanic(t *testing.T) {
	_, err := parallelMap(20, func(i int) (int, error) {
		if i == 5 {
			panic("kaboom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("panic swallowed")
	}
	if !strings.Contains(err.Error(), "trial 5:") || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("error %q does not describe the panicking trial", err)
	}
}

func TestParallelMapWithPerWorkerState(t *testing.T) {
	var built atomic.Int32
	type state struct{ id int32 }
	got, err := parallelMapWith(64,
		func() (*state, error) { return &state{id: built.Add(1)}, nil },
		func(s *state, i int) (int32, error) {
			if s == nil || s.id == 0 {
				t.Error("trial ran without worker state")
			}
			return s.id, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if built.Load() < 1 {
		t.Fatal("no worker state built")
	}
	for i, v := range got {
		if v < 1 || v > built.Load() {
			t.Fatalf("trial %d ran with unknown state %d", i, v)
		}
	}
}

func TestParallelMapWithWorkerBuildError(t *testing.T) {
	sentinel := errors.New("no detector")
	_, err := parallelMapWith(8,
		func() (int, error) { return 0, sentinel },
		func(s, i int) (int, error) { return 0, nil })
	if !errors.Is(err, sentinel) {
		t.Fatalf("worker build error lost: %v", err)
	}
}
