package experiments

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestParallelMapOrdered(t *testing.T) {
	got, err := parallelMap(100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d = %d", i, v)
		}
	}
}

func TestParallelMapWrapsErrorWithTrialIndex(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := parallelMap(50, func(i int) (int, error) {
		if i == 17 || i == 31 {
			return 0, sentinel
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("cause lost: %v", err)
	}
	// The FIRST failing trial by index is reported, deterministically.
	if !strings.Contains(err.Error(), "trial 17:") {
		t.Fatalf("error %q does not name trial 17", err)
	}
}

func TestParallelMapRecoversPanic(t *testing.T) {
	_, err := parallelMap(20, func(i int) (int, error) {
		if i == 5 {
			panic("kaboom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("panic swallowed")
	}
	if !strings.Contains(err.Error(), "trial 5:") || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("error %q does not describe the panicking trial", err)
	}
}

func TestParallelMapWithPerWorkerState(t *testing.T) {
	var built atomic.Int32
	type state struct{ id int32 }
	got, err := parallelMapWith(64,
		func() (*state, error) { return &state{id: built.Add(1)}, nil },
		func(s *state, i int) (int32, error) {
			if s == nil || s.id == 0 {
				t.Error("trial ran without worker state")
			}
			return s.id, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if built.Load() < 1 {
		t.Fatal("no worker state built")
	}
	for i, v := range got {
		if v < 1 || v > built.Load() {
			t.Fatalf("trial %d ran with unknown state %d", i, v)
		}
	}
}

func TestParallelMapWithWorkerBuildError(t *testing.T) {
	sentinel := errors.New("no detector")
	_, err := parallelMapWith(8,
		func() (int, error) { return 0, sentinel },
		func(s, i int) (int, error) { return 0, nil })
	if !errors.Is(err, sentinel) {
		t.Fatalf("worker build error lost: %v", err)
	}
}
