package experiments

import (
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

func TestFullBankAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("108-template detector comparison is slow")
	}
	r, err := FullBank(FullBankConfig{Trials: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Templates != pulse.NumShapes {
		t.Errorf("Templates = %d, want %d", r.Templates, pulse.NumShapes)
	}
	if r.Agree != r.Trials {
		t.Errorf("only %d/%d trials equivalent between detector paths", r.Agree, r.Trials)
	}
	if r.Speedup <= 1 {
		t.Errorf("spectral path slower than reference: speedup %.2f", r.Speedup)
	}
	// The identification-throughput phase must have run and produced
	// positive rates; the ≥5× acceptance gate itself lives in the
	// reportcheck comparison against BENCH_4.json, not in this (noisy,
	// 4-trial) unit test.
	if r.IDCIRs != 2*r.Trials {
		t.Errorf("IDCIRs = %d, want %d", r.IDCIRs, 2*r.Trials)
	}
	if r.CallPerSec <= 0 || r.WarmPerSec <= 0 || r.BatchPerSec <= 0 {
		t.Errorf("non-positive throughput: call %.1f warm %.1f batch %.1f",
			r.CallPerSec, r.WarmPerSec, r.BatchPerSec)
	}
	if r.BatchSpeedup <= 0 {
		t.Errorf("BatchSpeedup = %.2f, want > 0", r.BatchSpeedup)
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

// benchmarkFullBankDetect measures one Detect over the full 108-shape
// bank; the spectral/reference pair quantifies the fast path's speedup in
// the many-template regime (the ISSUE's ≥2× acceptance gate).
func benchmarkFullBankDetect(b *testing.B, mode core.DetectorMode) {
	bank, err := pulse.DefaultBank(dw1000.SampleInterval, pulse.NumShapes)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DetectorConfig{MaxResponses: 3, Mode: mode}
	det, err := core.NewDetector(bank, cfg)
	if err != nil {
		b.Fatal(err)
	}
	taps, noise := fullBankTrain(bank, 1, 3)
	if _, err := det.Detect(taps, noise); err != nil { // warm the cached plans
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Detect(taps, noise); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullBankDetectReference(b *testing.B) {
	benchmarkFullBankDetect(b, core.ModeReference)
}

func BenchmarkFullBankDetectSpectral(b *testing.B) {
	benchmarkFullBankDetect(b, core.ModeSpectral)
}
