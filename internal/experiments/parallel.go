package experiments

import (
	"runtime"
	"sync"
)

// parallelMap runs fn for every index in [0, n) across a bounded worker
// pool and returns the results in index order. The first error cancels
// nothing (trials are cheap and independent) but is reported after all
// workers finish, keeping the result slice deterministic. Every trial
// must derive its randomness from its index — never from shared state —
// so the parallel run is bit-identical to a sequential one.
func parallelMap[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	workers := min(runtime.GOMAXPROCS(0), n)
	if workers < 1 {
		workers = 1
	}
	results := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
