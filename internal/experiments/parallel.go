package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// parallelMap runs fn for every index in [0, n) across a bounded worker
// pool and returns the results in index order. Every trial error (not
// just the first) is reported after all workers finish, joined in trial
// index order — the message leads with the lowest failing index — each
// wrapped as "trial %d: ...", keeping the result slice deterministic. A
// panicking trial is recovered into an error instead of killing the
// process. Every trial must derive its randomness from its index — never
// from shared state — so the parallel run is bit-identical to a
// sequential one.
func parallelMap[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return parallelMapWith(n,
		func() (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, i int) (T, error) { return fn(i) })
}

// parallelMapWith is parallelMap with per-worker state: each worker
// goroutine builds its own S once via newWorker and hands it to every
// trial it runs. This is the natural home for values that are cheap to
// build but not safe for concurrent use — above all a core.Detector,
// whose cached FFT plans and scratch buffers must not be shared across
// goroutines. Worker state must not influence results (trials still
// derive everything from their index), so scheduling stays invisible.
//
// When instrumentation is installed (SetInstrumentation), every trial is
// timed and ticks the campaign meter, driving per-trial metrics and the
// ProgressFunc. With instrumentation off the timing branch is never taken.
func parallelMapWith[S, T any](n int, newWorker func() (S, error), fn func(s S, i int) (T, error)) ([]T, error) {
	workers := min(runtime.GOMAXPROCS(0), n)
	if workers < 1 {
		workers = 1
	}
	states := make([]S, workers)
	for w := range states {
		s, err := newWorker()
		if err != nil {
			return nil, fmt.Errorf("worker %d: %w", w, err)
		}
		states[w] = s
	}
	m := newMeter(n)
	results := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(state S) {
			defer wg.Done()
			for i := range next {
				if m == nil {
					results[i], errs[i] = runTrial(state, i, fn)
					continue
				}
				t0 := wallNow()
				results[i], errs[i] = runTrial(state, i, fn)
				m.trialDone(wallSince(t0))
			}
		}(states[w])
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	m.finish()
	// Join every failure in index order so no trial error is masked;
	// errors.Is still matches each underlying cause.
	var failures []error
	for i, err := range errs {
		if err != nil {
			failures = append(failures, fmt.Errorf("trial %d: %w", i, err))
		}
	}
	if len(failures) > 0 {
		return nil, errors.Join(failures...)
	}
	return results, nil
}

// runTrial invokes one trial, converting a panic into an error so a
// campaign reports which trial blew up instead of crashing the process.
func runTrial[S, T any](state S, i int, fn func(s S, i int) (T, error)) (result T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return fn(state, i)
}
