package experiments

import (
	"fmt"
	"math"

	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/geom"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
	"github.com/uwb-sim/concurrent-ranging/internal/sim"
)

// CaptureResult probes the working assumption behind the paper's d_TWR
// anchor: that one of the concurrently transmitted payloads — the one the
// receiver locked to — can still be decoded. With responders at graded
// distances the earliest frame dominates and decodes; with many
// equal-power responders the aggregate interference defeats it. This is
// an extension experiment (the paper demonstrates up to three responders
// and does not quantify the capture limit).
type CaptureResult struct {
	// Responders holds the evaluated responder counts.
	Responders []int
	// GradedRate is the decode success rate with responders at graded
	// distances (each ~1.6 m farther than the previous).
	GradedRate []float64
	// EqualRate is the decode success rate with all responders at the
	// same distance (worst case).
	EqualRate []float64
	// GradedSIR and EqualSIR are the mean lock SIRs in dB.
	GradedSIR, EqualSIR []float64
	// Trials per cell.
	Trials int
}

// Capture sweeps the responder count for both geometries.
func Capture(trials int, seed uint64) (*CaptureResult, error) {
	if trials == 0 {
		trials = 40
	}
	counts := []int{1, 2, 3, 5, 9}
	res := &CaptureResult{Responders: counts, Trials: trials}
	model := sim.DefaultCaptureModel()
	m := newMeter(len(counts) * 2 * trials)
	defer m.finish()
	for _, n := range counts {
		for _, equal := range []bool{false, true} {
			var ok dsp.Counter
			var sir dsp.Running
			for trial := 0; trial < trials; trial++ {
				err := m.timeTrial(func() error {
					round, err := captureRound(n, equal, model, seed+uint64(trial)*193+uint64(n))
					if err != nil {
						return err
					}
					ok.Record(round.DecodeOK)
					if !math.IsInf(round.LockSIRdB, 0) {
						sir.Add(round.LockSIRdB)
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
			}
			if equal {
				res.EqualRate = append(res.EqualRate, ok.Rate())
				res.EqualSIR = append(res.EqualSIR, sir.Mean())
			} else {
				res.GradedRate = append(res.GradedRate, ok.Rate())
				res.GradedSIR = append(res.GradedSIR, sir.Mean())
			}
		}
	}
	return res, nil
}

func captureRound(n int, equal bool, model *sim.CaptureModel, seed uint64) (*sim.RoundResult, error) {
	net, err := sim.NewNetwork(sim.NetworkConfig{
		Environment:      channel.FreeSpace(),
		Seed:             seed,
		RandomClockPhase: true,
	})
	if err != nil {
		return nil, err
	}
	instrumentNetwork(net)
	init, err := net.AddNode(sim.NodeConfig{ID: -1, Name: "init", Pos: geom.Point{X: 0, Y: 0}})
	if err != nil {
		return nil, err
	}
	var resps []*sim.Node
	for i := 0; i < n; i++ {
		var pos geom.Point
		if equal {
			angle := float64(i) * 2 * math.Pi / float64(n)
			pos = geom.Point{X: 5 * math.Cos(angle), Y: 5 * math.Sin(angle)}
		} else {
			pos = geom.Point{X: 3 + 1.6*float64(i), Y: 0}
		}
		node, err := net.AddNode(sim.NodeConfig{ID: i, Pos: pos})
		if err != nil {
			return nil, err
		}
		resps = append(resps, node)
	}
	plan := core.SingleSlot(1)
	bank, err := pulse.NewBank(dw1000.SampleInterval, pulse.RegisterS1)
	if err != nil {
		return nil, err
	}
	return net.RunConcurrentRound(init, resps, sim.RoundConfig{
		Plan: plan, Bank: bank, Capture: model,
	})
}

// Render formats the sweep.
func (r *CaptureResult) Render() string {
	t := &Table{
		Title: fmt.Sprintf("Extension — payload capture under concurrent interference (%d trials/cell)", r.Trials),
		Header: []string{"responders", "graded decode", "graded SIR [dB]",
			"equal-power decode", "equal SIR [dB]"},
	}
	for i, n := range r.Responders {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmtPct(100 * r.GradedRate[i]),
			fmtF(r.GradedSIR[i], 1),
			fmtPct(100 * r.EqualRate[i]),
			fmtF(r.EqualSIR[i], 1),
		})
	}
	return t.String()
}
