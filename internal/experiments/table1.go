package experiments

import (
	"fmt"
	"math"

	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
)

// Table1Config parameterizes the identification-rate experiment.
type Table1Config struct {
	// Distances are the d₂ values; empty selects the paper's {6..10} m.
	Distances []float64
	// Trials per cell (the paper uses 1000).
	Trials int
	// Seed drives the simulation.
	Seed uint64
}

// Table1Result reproduces Table I: the percentage of correctly identified
// pulse shapes for responder 2 at d₂ ∈ {6..10} m using s₂ or s₃, with
// responder 1 fixed at 3 m using s₁. The paper reports ≥ 99.2% everywhere.
type Table1Result struct {
	// Distances are the d₂ values in meters.
	Distances []float64
	// RateS2 and RateS3 are identification percentages per distance.
	RateS2, RateS3 []float64
	// Trials is the per-cell trial count.
	Trials int
}

// Table1 runs the identification-rate sweep.
func Table1(cfg Table1Config) (*Table1Result, error) {
	if len(cfg.Distances) == 0 {
		cfg.Distances = []float64{6, 7, 8, 9, 10}
	}
	if cfg.Trials == 0 {
		cfg.Trials = 1000
	}
	res := &Table1Result{Distances: cfg.Distances, Trials: cfg.Trials}
	for _, shape2 := range []int{1, 2} { // s2 and s3
		for di, d2 := range cfg.Distances {
			d2, shape2 := d2, shape2
			outcomes, err := parallelMap(cfg.Trials, func(trial int) (bool, error) {
				seed := cfg.Seed + uint64(shape2)*1_000_003 +
					uint64(di)*10_007 + uint64(trial)*97
				return identifyTrial(d2, shape2, seed)
			})
			if err != nil {
				return nil, err
			}
			var counter dsp.Counter
			for _, ok := range outcomes {
				counter.Record(ok)
			}
			switch shape2 {
			case 1:
				res.RateS2 = append(res.RateS2, counter.Percent())
			case 2:
				res.RateS3 = append(res.RateS3, counter.Percent())
			}
		}
	}
	return res, nil
}

// identifyTrial runs one concurrent round with responder 1 at 3 m (s₁)
// and responder 2 at d₂ using bank shape shape2, and reports whether the
// response detected at responder 2's true CIR position carries the
// correct template index.
func identifyTrial(d2 float64, shape2 int, seed uint64) (bool, error) {
	// Automatic run-time detection (challenge I): no prior knowledge of
	// the response count; the expected-position match below tolerates the
	// extra multipath detections.
	out, err := twoResponderRound(3, d2, 0, shape2, 3, 0, seed, channel.Hallway())
	if err != nil {
		return false, err
	}
	// Responder 2's expected CIR delay: the anchor (responder 1) sits at
	// the reference index; responder 2 is 2·(d₂−3)/c later, shifted by
	// the realized TX quantization difference (ground truth).
	quantDiff := out.round.TXQuantizationError[shape2] - out.round.TXQuantizationError[0]
	expected := float64(dw1000.ReferenceIndex)*dw1000.SampleInterval +
		2*(d2-3)/channel.SpeedOfLight - quantDiff
	shape, found := identifiedShapeAt(out, expected)
	return found && shape == shape2, nil
}

// identifiedShapeAt returns the template index of the detected response
// nearest the expected delay (within half a pulse duration), if any.
func identifiedShapeAt(out *twoResponderOutcome, expected float64) (int, bool) {
	const tol = 5e-9
	best, bestDist := -1, math.Inf(1)
	for _, r := range out.responses {
		d := math.Abs(r.Delay - expected)
		if d < bestDist {
			best, bestDist = r.TemplateIndex, d
		}
	}
	if best < 0 || bestDist > tol {
		return 0, false
	}
	return best, true
}

// Render formats the table like the paper's Table I.
func (r *Table1Result) Render() string {
	t := &Table{
		Title:  fmt.Sprintf("Table I — pulse shapes identified correctly (%d trials/cell)", r.Trials),
		Header: append([]string{"d2 [m]"}, formatDistances(r.Distances)...),
	}
	row2 := []string{"s2(t) (0xC8) [%]"}
	row3 := []string{"s3(t) (0xE6) [%]"}
	for i := range r.Distances {
		row2 = append(row2, fmtF(r.RateS2[i], 1))
		row3 = append(row3, fmtF(r.RateS3[i], 1))
	}
	t.Rows = [][]string{row2, row3}
	return t.String()
}

func formatDistances(ds []float64) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = fmtF(d, 0)
	}
	return out
}
