// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a pure function of its parameters and a
// seed, returning a typed result with the same rows/series the paper
// reports plus a formatted rendering for the crbench tool and the
// benchmark harness. EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a printable result grid.
type Table struct {
	// Title names the experiment (e.g. "Table I").
	Title string
	// Header labels the columns.
	Header []string
	// Rows holds the data cells, already formatted.
	Rows [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a printable (x, y) curve for figure reproductions.
type Series struct {
	// Name labels the curve.
	Name string
	// X and Y are the sample coordinates.
	X, Y []float64
}

// Sparkline renders the series as a compact ASCII plot of the given
// width, useful for terminal output of figure-style results.
func (s *Series) Sparkline(width int) string {
	if len(s.Y) == 0 || width < 1 {
		return ""
	}
	levels := []rune(" .:-=+*#%@")
	minY, maxY := s.Y[0], s.Y[0]
	for _, y := range s.Y {
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	span := maxY - minY
	out := make([]rune, width)
	for i := range out {
		// Down-sample by taking the maximum over the bucket so narrow
		// pulses stay visible.
		lo := i * len(s.Y) / width
		hi := (i + 1) * len(s.Y) / width
		if hi <= lo {
			hi = lo + 1
		}
		v := s.Y[lo]
		for _, y := range s.Y[lo:min(hi, len(s.Y))] {
			if y > v {
				v = y
			}
		}
		idx := 0
		if span > 0 {
			idx = int((v - minY) / span * float64(len(levels)-1))
		}
		out[i] = levels[idx]
	}
	return string(out)
}

func fmtF(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}

func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v) }
