package experiments

import (
	"sync"
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/obs"
	"github.com/uwb-sim/concurrent-ranging/internal/sim"
)

// withInstrumentation installs in for the duration of the test and
// restores the disabled state afterwards. Tests using it must not run in
// parallel with each other (the instrumentation is package-global).
func withInstrumentation(t *testing.T, in *Instrumentation) {
	t.Helper()
	SetInstrumentation(in)
	t.Cleanup(func() { SetInstrumentation(nil) })
}

func TestMeterDisabledIsNil(t *testing.T) {
	SetInstrumentation(nil)
	if m := newMeter(10); m != nil {
		t.Fatal("newMeter must return nil with no instrumentation installed")
	}
	// A nil meter must be inert, not panic.
	var m *meter
	m.trialDone(0)
	if err := m.timeTrial(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestMeterRecordsTrialsAndProgress(t *testing.T) {
	reg := obs.NewRegistry()
	var mu sync.Mutex
	var updates []Progress
	withInstrumentation(t, &Instrumentation{
		Recorder: reg,
		Progress: func(p Progress) {
			mu.Lock()
			updates = append(updates, p)
			mu.Unlock()
		},
	})

	const n = 7
	_, err := parallelMap(n, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.CounterValue(MetricTrials); got != n {
		t.Fatalf("%s = %d, want %d", MetricTrials, got, n)
	}
	h, ok := snap.HistogramByName(MetricTrialSeconds)
	if !ok || h.Count != n {
		t.Fatalf("%s histogram count = %+v, want %d observations", MetricTrialSeconds, h, n)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(updates) != n {
		t.Fatalf("%d progress updates, want %d", len(updates), n)
	}
	// Done values are a permutation of 1..n (workers race), Total fixed,
	// and the final update reports completion with zero remaining.
	seen := map[int]bool{}
	last := Progress{}
	for _, p := range updates {
		if p.Total != n || p.Done < 1 || p.Done > n || seen[p.Done] {
			t.Fatalf("bad progress update %+v", p)
		}
		seen[p.Done] = true
		if p.Done == n {
			last = p
		}
	}
	if last.Done != n || last.Remaining != 0 {
		t.Fatalf("final update %+v, want Done=%d Remaining=0", last, n)
	}
}

func TestMeterClampAndTerminalUpdate(t *testing.T) {
	cases := []struct {
		name   string
		total  int
		ticks  int
		finish bool
		// wantFinal is the expected last update; wantCount the update count.
		wantFinal Progress
		wantCount int
	}{
		{
			name: "overticked meter clamps to total", total: 2, ticks: 4, finish: false,
			wantFinal: Progress{Done: 2, Total: 2}, wantCount: 4,
		},
		{
			name: "zero-trial campaign emits terminal update on finish", total: 0, ticks: 0, finish: true,
			wantFinal: Progress{Done: 0, Total: 0}, wantCount: 1,
		},
		{
			name: "finish after completion does not duplicate", total: 3, ticks: 3, finish: true,
			wantFinal: Progress{Done: 3, Total: 3}, wantCount: 3,
		},
		{
			name: "finish on a short campaign emits Done=Total", total: 5, ticks: 2, finish: true,
			wantFinal: Progress{Done: 5, Total: 5}, wantCount: 3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var updates []Progress
			m := &meter{total: tc.total, start: wallNow(), progress: func(p Progress) {
				updates = append(updates, p)
			}}
			for i := 0; i < tc.ticks; i++ {
				m.trialDone(0)
			}
			if tc.finish {
				m.finish()
			}
			if len(updates) != tc.wantCount {
				t.Fatalf("%d updates, want %d: %+v", len(updates), tc.wantCount, updates)
			}
			for _, p := range updates {
				if p.Done > p.Total {
					t.Fatalf("update overshoots total: %+v", p)
				}
				if p.Remaining < 0 {
					t.Fatalf("negative ETA: %+v", p)
				}
			}
			last := updates[len(updates)-1]
			if last.Done != tc.wantFinal.Done || last.Total != tc.wantFinal.Total || last.Remaining != 0 {
				t.Fatalf("final update %+v, want Done=%d Total=%d Remaining=0",
					last, tc.wantFinal.Done, tc.wantFinal.Total)
			}
		})
	}
	// finish is nil-safe like every other meter method.
	var nilMeter *meter
	nilMeter.finish()
}

func TestActiveExperimentRoundTrip(t *testing.T) {
	SetActiveExperiment("fig4")
	t.Cleanup(func() { SetActiveExperiment("") })
	if got := ActiveExperiment(); got != "fig4" {
		t.Fatalf("ActiveExperiment() = %q, want fig4", got)
	}
	SetActiveExperiment("")
	if got := ActiveExperiment(); got != "" {
		t.Fatalf("ActiveExperiment() after clear = %q, want empty", got)
	}
}

func TestMeterLabelsTrialsByExperiment(t *testing.T) {
	reg := obs.NewRegistry()
	withInstrumentation(t, &Instrumentation{Recorder: reg})
	SetActiveExperiment("sec5")
	t.Cleanup(func() { SetActiveExperiment("") })

	m := newMeter(3)
	for i := 0; i < 3; i++ {
		m.trialDone(0)
	}
	m.finish()
	SetActiveExperiment("fig4")
	m2 := newMeter(2)
	m2.trialDone(0)
	m2.finish()

	snap := reg.Snapshot()
	perExp := map[string]int64{}
	for _, c := range snap.CounterSeries(MetricTrialsByExperiment) {
		perExp[c.Labels[0].Value] = c.Value
	}
	if perExp["sec5"] != 3 || perExp["fig4"] != 1 {
		t.Fatalf("per-experiment trials = %v, want sec5:3 fig4:1", perExp)
	}
	if got := snap.CounterValue(MetricTrials); got != 4 {
		t.Fatalf("%s = %d, want 4", MetricTrials, got)
	}
}

func TestMeterWithoutActiveExperimentStaysUnlabeled(t *testing.T) {
	reg := obs.NewRegistry()
	withInstrumentation(t, &Instrumentation{Recorder: reg})
	SetActiveExperiment("")

	m := newMeter(2)
	m.trialDone(0)
	m.finish()
	if series := reg.Snapshot().CounterSeries(MetricTrialsByExperiment); len(series) != 0 {
		t.Fatalf("unattributed trials grew labeled series: %+v", series)
	}
}

func TestMeterCampaignGauges(t *testing.T) {
	reg := obs.NewRegistry()
	withInstrumentation(t, &Instrumentation{Recorder: reg})

	m := newMeter(5)
	gauge := func(name string) float64 {
		v, ok := reg.Snapshot().GaugeValue(name)
		if !ok {
			t.Fatalf("gauge %s not set", name)
		}
		return v
	}
	if got := gauge(MetricCampaignTotalLive); got != 5 {
		t.Fatalf("total gauge = %g, want 5", got)
	}
	if got := gauge(MetricCampaignDoneLive); got != 0 {
		t.Fatalf("done gauge at start = %g, want 0", got)
	}
	m.trialDone(0)
	m.trialDone(0)
	if got := gauge(MetricCampaignDoneLive); got != 2 {
		t.Fatalf("done gauge = %g, want 2", got)
	}
	// Over-ticking clamps the gauge at total, and finish pins it there.
	for i := 0; i < 10; i++ {
		m.trialDone(0)
	}
	if got := gauge(MetricCampaignDoneLive); got != 5 {
		t.Fatalf("over-ticked done gauge = %g, want clamp at 5", got)
	}
	m.finish()
	if got := gauge(MetricCampaignDoneLive); got != 5 {
		t.Fatalf("done gauge after finish = %g, want 5", got)
	}
}

func TestInstrumentedExperimentsRecord(t *testing.T) {
	// A tiny Sec5 + Campaign run — the crbench smoke pair — must populate
	// trial timing and simulator counters through the ambient recorder.
	reg := obs.NewRegistry()
	withInstrumentation(t, &Instrumentation{Recorder: reg})

	if _, err := Sec5(Sec5Config{Trials: 5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Campaign([]int{3}, 1); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.CounterValue(MetricTrials); got != 3*5+2 {
		t.Fatalf("%s = %d, want %d (3 shapes x 5 trials + 2 campaign units)",
			MetricTrials, got, 3*5+2)
	}
	if got := snap.CounterValue(sim.MetricFramesOnAir); got == 0 {
		t.Fatalf("%s = 0, want > 0", sim.MetricFramesOnAir)
	}
	if h, ok := snap.HistogramByName(MetricTrialSeconds); !ok || h.Count == 0 || h.Sum <= 0 {
		t.Fatalf("%s not populated: %+v", MetricTrialSeconds, h)
	}
}

func TestInstrumentationDoesNotChangeResults(t *testing.T) {
	// The observation-only contract, end to end: a full experiment with
	// instrumentation enabled returns bit-identical numbers.
	run := func() *Fig4Result {
		r, err := Fig4(Fig4Config{Trials: 3, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	SetInstrumentation(nil)
	plain := run()
	withInstrumentation(t, &Instrumentation{Recorder: obs.NewRegistry(), Progress: func(Progress) {}})
	instrumented := run()

	for i := range plain.MeanDistance {
		if plain.MeanDistance[i] != instrumented.MeanDistance[i] ||
			plain.StdDistance[i] != instrumented.StdDistance[i] ||
			plain.PerResponderRate[i] != instrumented.PerResponderRate[i] {
			t.Fatalf("instrumentation changed results at responder %d: %+v vs %+v",
				i, plain, instrumented)
		}
	}
}

func TestInstrumentHelpersNilSafe(t *testing.T) {
	SetInstrumentation(nil)
	// With instrumentation off the helpers must pass values through
	// untouched and never panic.
	if det := instrumentDetector(&core.Detector{}); det == nil {
		t.Fatal("instrumentDetector returned nil")
	}
	if net := instrumentNetwork(&sim.Network{}); net == nil {
		t.Fatal("instrumentNetwork returned nil")
	}
}
