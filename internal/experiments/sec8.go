package experiments

import (
	"fmt"

	"github.com/uwb-sim/concurrent-ranging/internal/airtime"
	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

// Sec8Result reproduces the scalability analysis of Sect. VIII: the
// supported responder count N_max = N_RPM · N_PS for combinations of
// maximum range and pulse-shape count, and the headline comparison — with
// r_max = 20 m and the full shape bank the scheme supports > 1500
// responders, for which the initiator needs a single transmit and a
// single receive operation instead of 1499 each.
type Sec8Result struct {
	// Ranges and ShapeCounts are the sweep axes.
	Ranges      []float64
	ShapeCounts []int
	// Capacity[i][j] is N_max for Ranges[i] × ShapeCounts[j].
	Capacity [][]int
	// HeadlineResponders is the paper's >1500 case (r_max = 20 m, full
	// bank).
	HeadlineResponders int
	// HeadlineInitiatorOps is the initiator's TX+RX count under
	// concurrent ranging (always 2).
	HeadlineInitiatorOps int
	// HeadlineScheduledOps is the initiator's TX+RX count under
	// scheduled SS-TWR for the same network.
	HeadlineScheduledOps int
}

// Sec8 runs the capacity sweep.
func Sec8() (*Sec8Result, error) {
	ranges := []float64{20, 30, 50, 75}
	shapeCounts := []int{1, 3, 10, 50, pulse.NumShapes}
	res := &Sec8Result{Ranges: ranges, ShapeCounts: shapeCounts}
	for _, r := range ranges {
		row := make([]int, len(shapeCounts))
		for j, nps := range shapeCounts {
			plan, err := core.NewSlotPlan(r, nps)
			if err != nil {
				return nil, err
			}
			row[j] = plan.Capacity()
		}
		res.Capacity = append(res.Capacity, row)
	}
	headline, err := core.NewSlotPlan(20, pulse.NumShapes)
	if err != nil {
		return nil, err
	}
	res.HeadlineResponders = headline.Capacity()
	res.HeadlineInitiatorOps = 2 // one broadcast TX + one aggregated RX
	n := res.HeadlineResponders + 1
	sched, err := airtime.ScheduledTWRCost(paperPHY(), airtime.DefaultPowerModel(), n)
	if err != nil {
		return nil, err
	}
	res.HeadlineScheduledOps = sched.InitiatorTx + sched.InitiatorRx
	return res, nil
}

// Render formats the sweep.
func (r *Sec8Result) Render() string {
	t := &Table{
		Title:  "Sect. VIII — combined-scheme capacity N_max = N_RPM · N_PS",
		Header: []string{"r_max [m]"},
	}
	for _, nps := range r.ShapeCounts {
		t.Header = append(t.Header, fmt.Sprintf("N_PS=%d", nps))
	}
	for i, rng := range r.Ranges {
		row := []string{fmtF(rng, 0)}
		for _, c := range r.Capacity[i] {
			row = append(row, fmt.Sprint(c))
		}
		t.Rows = append(t.Rows, row)
	}
	out := t.String()
	out += fmt.Sprintf("headline: %d responders supported at r_max = 20 m; initiator ops %d (concurrent) vs %d (scheduled SS-TWR)\n",
		r.HeadlineResponders, r.HeadlineInitiatorOps, r.HeadlineScheduledOps)
	return out
}
