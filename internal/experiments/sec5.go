package experiments

import (
	"fmt"

	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/geom"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
	"github.com/uwb-sim/concurrent-ranging/internal/sim"
)

// Sec5Config parameterizes the ranging-precision experiment.
type Sec5Config struct {
	// Trials is the number of SS-TWR operations per shape (the paper
	// uses 5000).
	Trials int
	// Distance separates the two nodes (the paper uses 3 m).
	Distance float64
	// Seed drives the simulation.
	Seed uint64
}

// Sec5Result reproduces the "no impact on ranging performance" experiment
// of Sect. V: the standard deviation of the SS-TWR distance error for the
// pulse shapes s₁, s₂, s₃. The paper reports σ₁ = 0.0228 m, σ₂ = 0.0221 m
// and σ₃ = 0.0283 m — all shapes range with the same few-centimeter
// precision.
type Sec5Result struct {
	// Registers are the evaluated TC_PGDELAY values.
	Registers []byte
	// Sigma is the per-shape standard deviation of the ranging error in
	// meters.
	Sigma []float64
	// MeanError is the per-shape mean error (bias) in meters.
	MeanError []float64
	// Trials is the per-shape trial count.
	Trials int
}

// Sec5 runs the precision comparison.
func Sec5(cfg Sec5Config) (*Sec5Result, error) {
	if cfg.Trials == 0 {
		cfg.Trials = 5000
	}
	if cfg.Distance == 0 {
		cfg.Distance = 3
	}
	regs := []byte{pulse.RegisterS1, pulse.RegisterS2, pulse.RegisterS3}
	res := &Sec5Result{Registers: regs, Trials: cfg.Trials}
	m := newMeter(len(regs) * cfg.Trials)
	defer m.finish()
	for i, reg := range regs {
		net, err := sim.NewNetwork(sim.NetworkConfig{
			Environment: channel.Office(),
			Seed:        cfg.Seed + uint64(i)*104729,
		})
		if err != nil {
			return nil, err
		}
		instrumentNetwork(net)
		a, err := net.AddNode(sim.NodeConfig{ID: -1, Name: "init", Pos: geom.Point{X: 1, Y: 1}})
		if err != nil {
			return nil, err
		}
		b, err := net.AddNode(sim.NodeConfig{ID: 0, Name: "resp",
			Pos: geom.Point{X: 1 + cfg.Distance, Y: 1}})
		if err != nil {
			return nil, err
		}
		bank, err := pulse.NewBank(dw1000.SampleInterval, reg)
		if err != nil {
			return nil, err
		}
		var stats dsp.Running
		for trial := 0; trial < cfg.Trials; trial++ {
			err := m.timeTrial(func() error {
				d, err := net.RunTWRExchange(a, b, 290e-6, bank)
				if err != nil {
					return err
				}
				stats.Add(d - cfg.Distance)
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		res.Sigma = append(res.Sigma, stats.StdDev())
		res.MeanError = append(res.MeanError, stats.Mean())
	}
	return res, nil
}

// Render formats the result.
func (r *Sec5Result) Render() string {
	t := &Table{
		Title:  fmt.Sprintf("Sect. V — SS-TWR precision per pulse shape (%d trials each)", r.Trials),
		Header: []string{"shape", "register", "sigma [m]", "mean error [m]"},
	}
	for i, reg := range r.Registers {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("s%d", i+1),
			fmt.Sprintf("0x%02X", reg),
			fmtF(r.Sigma[i], 4),
			fmtF(r.MeanError[i], 4),
		})
	}
	return t.String()
}
