package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"

	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

// FullBankConfig parameterizes the full-bank detector comparison.
type FullBankConfig struct {
	// Trials is the number of CIRs each detector path processes
	// (default 40).
	Trials int
	// Responders is the number of overlapping responses rendered into
	// each CIR (default 3).
	Responders int
	// Seed drives the CIR generation.
	Seed uint64
}

// FullBankResult compares the reference detector against the spectral
// fast path on the largest supported template bank — all
// pulse.NumShapes (108) DW1000 test-register shapes, the regime Sect. VII
// targets where every responder needs a distinguishable pulse shape. Both
// paths process identical CIRs; the result records wall time per path and
// whether they agree on the decoded responses.
type FullBankResult struct {
	// Trials is the number of CIRs processed per path.
	Trials int
	// Templates is the bank size (pulse.NumShapes).
	Templates int
	// Workers is the parallelism available to the template fan-out
	// (GOMAXPROCS at run time).
	Workers int
	// ReferenceSeconds and SpectralSeconds are the total Detect wall
	// times per path.
	ReferenceSeconds, SpectralSeconds float64
	// Speedup is ReferenceSeconds / SpectralSeconds.
	Speedup float64
	// Agree counts trials where both paths returned equivalent
	// detections: same response count, delays within half a sample and
	// magnitudes within 2%. Template identity is tallied separately
	// because adjacent DW1000 test-register shapes are near-identical
	// pulses, so the argmax between neighboring templates is a numerical
	// coin flip either path may call differently.
	Agree int
	// TemplateMatches counts responses (out of Responses) where both
	// paths also picked the same template index.
	TemplateMatches, Responses int
	// MaxDelayDiff is the largest per-response delay difference between
	// the paths across agreeing responses, seconds.
	MaxDelayDiff float64
}

// fullBankTrain renders overlapping responses with distinct shapes plus
// receiver noise into a CIR, returning the taps and the noise RMS.
func fullBankTrain(bank *pulse.Bank, seed uint64, responders int) ([]complex128, float64) {
	const noise = 1.4e-5
	r := rand.New(rand.NewPCG(seed, 73))
	taps := make([]complex128, dw1000.CIRLength)
	base := 80 + r.Float64()*800
	for i := 0; i < responders; i++ {
		mag := noise * (30 + r.Float64()*300)
		ph := r.Float64() * 2 * math.Pi
		// Equal-distance responders: arrivals spread only over the ~8 ns
		// delayed-TX quantization step (Sect. III).
		jitter := (r.Float64() - 0.5) * 8
		bank.Shape(r.IntN(bank.Len())).RenderInto(taps,
			complex(mag*math.Cos(ph), mag*math.Sin(ph)), base+jitter, dw1000.SampleInterval)
	}
	sigma := noise / math.Sqrt2
	for i := range taps {
		taps[i] += complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
	}
	return taps, noise
}

// FullBank runs the comparison.
func FullBank(cfg FullBankConfig) (*FullBankResult, error) {
	if cfg.Trials == 0 {
		cfg.Trials = 40
	}
	if cfg.Responders == 0 {
		cfg.Responders = 3
	}
	bank, err := pulse.DefaultBank(dw1000.SampleInterval, pulse.NumShapes)
	if err != nil {
		return nil, err
	}
	dcfg := core.DetectorConfig{MaxResponses: cfg.Responders}
	dcfg.Mode = core.ModeReference
	ref, err := core.NewDetector(bank, dcfg)
	if err != nil {
		return nil, err
	}
	dcfg.Mode = core.ModeSpectral
	fast, err := core.NewDetector(bank, dcfg)
	if err != nil {
		return nil, err
	}
	instrumentDetector(ref)
	instrumentDetector(fast)

	res := &FullBankResult{
		Trials:    cfg.Trials,
		Templates: bank.Len(),
		Workers:   runtime.GOMAXPROCS(0),
	}
	m := newMeter(cfg.Trials)
	for trial := 0; trial < cfg.Trials; trial++ {
		err := m.timeTrial(func() error {
			taps, noise := fullBankTrain(bank, cfg.Seed+uint64(trial)*9241, cfg.Responders)
			t0 := wallNow()
			want, err := ref.Detect(taps, noise)
			if err != nil {
				return err
			}
			t1 := wallNow()
			got, err := fast.Detect(taps, noise)
			if err != nil {
				return err
			}
			res.ReferenceSeconds += t1.Sub(t0).Seconds()
			res.SpectralSeconds += wallSince(t1).Seconds()

			agree := len(got) == len(want)
			for i := 0; agree && i < len(want); i++ {
				d := math.Abs(got[i].Delay - want[i].Delay)
				gm := math.Hypot(real(got[i].Amplitude), imag(got[i].Amplitude))
				wm := math.Hypot(real(want[i].Amplitude), imag(want[i].Amplitude))
				agree = d <= dw1000.SampleInterval/2 && math.Abs(gm-wm) <= 0.02*wm
				if agree {
					res.Responses++
					res.MaxDelayDiff = math.Max(res.MaxDelayDiff, d)
					if got[i].TemplateIndex == want[i].TemplateIndex {
						res.TemplateMatches++
					}
				}
			}
			if agree {
				res.Agree++
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if res.SpectralSeconds > 0 {
		res.Speedup = res.ReferenceSeconds / res.SpectralSeconds
	}
	return res, nil
}

// Render formats the comparison.
func (r *FullBankResult) Render() string {
	t := &Table{
		Title: fmt.Sprintf("Full %d-shape bank — reference vs. spectral detector (%d trials, %d workers)",
			r.Templates, r.Trials, r.Workers),
		Header: []string{"path", "total Detect time", "per CIR"},
		Rows: [][]string{
			{"reference (per-round transforms)", fmt.Sprintf("%.3f s", r.ReferenceSeconds),
				fmt.Sprintf("%.1f ms", 1e3*r.ReferenceSeconds/float64(r.Trials))},
			{"spectral (shift-theorem residual)", fmt.Sprintf("%.3f s", r.SpectralSeconds),
				fmt.Sprintf("%.1f ms", 1e3*r.SpectralSeconds/float64(r.Trials))},
		},
	}
	return t.String() + fmt.Sprintf(
		"speedup %.2f×; %d/%d trials equivalent (max delay diff %.3g ps); same template on %d/%d responses\n",
		r.Speedup, r.Agree, r.Trials, r.MaxDelayDiff*1e12, r.TemplateMatches, r.Responses)
}
