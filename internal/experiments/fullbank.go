package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

// FullBankConfig parameterizes the full-bank detector comparison.
type FullBankConfig struct {
	// Trials is the number of CIRs each detector path processes
	// (default 40).
	Trials int
	// Responders is the number of overlapping responses rendered into
	// each CIR (default 3).
	Responders int
	// Seed drives the CIR generation.
	Seed uint64
}

// FullBankResult compares the reference detector against the spectral
// fast path on the largest supported template bank — all
// pulse.NumShapes (108) DW1000 test-register shapes, the regime Sect. VII
// targets where every responder needs a distinguishable pulse shape. Both
// paths process identical CIRs through the batch engine; the result
// records wall time per path and whether they agree on the decoded
// responses. A second phase measures campaign throughput on a
// single-responder identification stream (the Sect. V workload) through
// three execution disciplines: a call-at-a-time loop that builds a
// detector per call (the unshared pre-engine shape the future crservd
// daemon must avoid), a warm loop reusing one detector, and the batch
// engine. The batch results are verified bit-identical to the warm loop's
// before any number is reported.
type FullBankResult struct {
	// Trials is the number of CIRs processed per path.
	Trials int
	// Templates is the bank size (pulse.NumShapes).
	Templates int
	// Workers is the batch engine's worker-pool size (GOMAXPROCS at run
	// time).
	Workers int
	// ReferenceSeconds and SpectralSeconds are the total DetectBatch wall
	// times per path.
	ReferenceSeconds, SpectralSeconds float64
	// Speedup is ReferenceSeconds / SpectralSeconds.
	Speedup float64
	// Agree counts trials where both paths returned equivalent
	// detections: same response count, delays within half a sample and
	// magnitudes within 2%. Template identity is tallied separately
	// because adjacent DW1000 test-register shapes are near-identical
	// pulses, so the argmax between neighboring templates is a numerical
	// coin flip either path may call differently.
	Agree int
	// TemplateMatches counts responses (out of Responses) where both
	// paths also picked the same template index.
	TemplateMatches, Responses int
	// MaxDelayDiff is the largest per-response delay difference between
	// the paths across agreeing responses, seconds.
	MaxDelayDiff float64
	// IDCIRs is the identification-stream length (single-responder CIRs)
	// each throughput discipline processes.
	IDCIRs int
	// CallPerSec, WarmPerSec, and BatchPerSec are identification-stream
	// throughputs in CIRs/second: the call-at-a-time loop pays
	// NewDetector (plans + 108 template spectra) on every call, the warm
	// loop reuses one detector, and the batch engine shares per-length
	// setup across its worker pool.
	CallPerSec, WarmPerSec, BatchPerSec float64
	// BatchSpeedup is BatchPerSec / CallPerSec.
	BatchSpeedup float64
}

// fullBankTrain renders overlapping responses with distinct shapes plus
// receiver noise into a CIR, returning the taps and the noise RMS.
func fullBankTrain(bank *pulse.Bank, seed uint64, responders int) ([]complex128, float64) {
	const noise = 1.4e-5
	r := rand.New(rand.NewPCG(seed, 73))
	taps := make([]complex128, dw1000.CIRLength)
	base := 80 + r.Float64()*800
	for i := 0; i < responders; i++ {
		mag := noise * (30 + r.Float64()*300)
		ph := r.Float64() * 2 * math.Pi
		// Equal-distance responders: arrivals spread only over the ~8 ns
		// delayed-TX quantization step (Sect. III).
		jitter := (r.Float64() - 0.5) * 8
		bank.Shape(r.IntN(bank.Len())).RenderInto(taps,
			complex(mag*math.Cos(ph), mag*math.Sin(ph)), base+jitter, dw1000.SampleInterval)
	}
	sigma := noise / math.Sqrt2
	for i := range taps {
		taps[i] += complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
	}
	return taps, noise
}

// fullBankBatch runs one timed DetectBatch and surfaces per-item errors.
func fullBankBatch(eng *core.BatchDetector, label string, inputs []core.BatchInput) ([]core.BatchResult, float64, error) {
	t0 := wallNow()
	res := eng.DetectBatch(inputs)
	secs := wallSince(t0).Seconds()
	for i := range res {
		if res[i].Err != nil {
			return nil, 0, fmt.Errorf("trial %d (%s): %w", i, label, res[i].Err)
		}
	}
	return res, secs, nil
}

// FullBank runs the comparison.
func FullBank(cfg FullBankConfig) (*FullBankResult, error) {
	if cfg.Trials == 0 {
		cfg.Trials = 40
	}
	if cfg.Responders == 0 {
		cfg.Responders = 3
	}
	bank, err := pulse.DefaultBank(dw1000.SampleInterval, pulse.NumShapes)
	if err != nil {
		return nil, err
	}
	// Identification-stream sizing: twice the comparison trials for a
	// stable rate, and a small sample of the (much slower) call-at-a-time
	// loop — its per-call cost has no per-item variance worth averaging.
	idCIRs := 2 * cfg.Trials
	callCIRs := max(3, cfg.Trials/5)
	const warmup = 2

	dcfg := core.DetectorConfig{MaxResponses: cfg.Responders}
	dcfg.Mode = core.ModeReference
	refEng, err := core.NewBatchDetector(bank, dcfg, 0)
	if err != nil {
		return nil, err
	}
	defer refEng.Close()
	dcfg.Mode = core.ModeSpectral
	fastEng, err := core.NewBatchDetector(bank, dcfg, 0)
	if err != nil {
		return nil, err
	}
	defer fastEng.Close()
	idCfg := core.DetectorConfig{MaxResponses: 1}
	idEng, err := core.NewBatchDetector(bank, idCfg, 0)
	if err != nil {
		return nil, err
	}
	defer idEng.Close()

	m := newMeter(2*cfg.Trials + callCIRs + 2*idCIRs + warmup)
	defer m.finish()
	instrumentBatch(refEng, m)
	instrumentBatch(fastEng, m)
	instrumentBatch(idEng, m)

	res := &FullBankResult{
		Trials:    cfg.Trials,
		Templates: bank.Len(),
		Workers:   idEng.Workers(),
		IDCIRs:    idCIRs,
	}

	// Phase 1: reference vs spectral on identical multi-responder CIRs.
	inputs := make([]core.BatchInput, cfg.Trials)
	for trial := range inputs {
		inputs[trial].Taps, inputs[trial].NoiseRMS =
			fullBankTrain(bank, cfg.Seed+uint64(trial)*9241, cfg.Responders)
	}
	refRes, refSecs, err := fullBankBatch(refEng, "reference", inputs)
	if err != nil {
		return nil, err
	}
	fastRes, fastSecs, err := fullBankBatch(fastEng, "spectral", inputs)
	if err != nil {
		return nil, err
	}
	res.ReferenceSeconds, res.SpectralSeconds = refSecs, fastSecs
	for trial := range inputs {
		want, got := refRes[trial].Responses, fastRes[trial].Responses
		agree := len(got) == len(want)
		for i := 0; agree && i < len(want); i++ {
			d := math.Abs(got[i].Delay - want[i].Delay)
			gm := math.Hypot(real(got[i].Amplitude), imag(got[i].Amplitude))
			wm := math.Hypot(real(want[i].Amplitude), imag(want[i].Amplitude))
			agree = d <= dw1000.SampleInterval/2 && math.Abs(gm-wm) <= 0.02*wm
			if agree {
				res.Responses++
				res.MaxDelayDiff = math.Max(res.MaxDelayDiff, d)
				if got[i].TemplateIndex == want[i].TemplateIndex {
					res.TemplateMatches++
				}
			}
		}
		if agree {
			res.Agree++
		}
	}
	if res.SpectralSeconds > 0 {
		res.Speedup = res.ReferenceSeconds / res.SpectralSeconds
	}

	// Phase 2: identification-stream throughput. Single-responder CIRs,
	// MaxResponses 1 — the Sect. V workload of identifying which responder
	// answered, where a deployment processes CIRs by the thousand.
	idInputs := make([]core.BatchInput, idCIRs)
	for i := range idInputs {
		idInputs[i].Taps, idInputs[i].NoiseRMS =
			fullBankTrain(bank, cfg.Seed+500009+uint64(i)*9241, 1)
	}

	// Discipline A: call-at-a-time — a fresh detector per CIR, the cost
	// profile of serving detections with no shared state.
	callStart := wallNow()
	for i := 0; i < callCIRs; i++ {
		err := m.timeTrial(func() error {
			det, err := core.NewDetector(bank, idCfg)
			if err != nil {
				return err
			}
			instrumentDetector(det)
			_, err = det.Detect(idInputs[i].Taps, idInputs[i].NoiseRMS)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("call-at-a-time CIR %d: %w", i, err)
		}
	}
	callSecs := wallSince(callStart).Seconds()

	// Discipline B: warm loop — one detector reused across the stream.
	// Its results double as the ground truth for the batch path.
	warmDet, err := core.NewDetector(bank, idCfg)
	if err != nil {
		return nil, err
	}
	instrumentDetector(warmDet)
	warmResults := make([][]core.Response, idCIRs)
	warmStart := wallNow()
	for i := range idInputs {
		err := m.timeTrial(func() error {
			out, derr := warmDet.Detect(idInputs[i].Taps, idInputs[i].NoiseRMS)
			warmResults[i] = out
			return derr
		})
		if err != nil {
			return nil, fmt.Errorf("warm-loop CIR %d: %w", i, err)
		}
	}
	warmSecs := wallSince(warmStart).Seconds()

	// Discipline C: the batch engine, after an untimed warmup batch that
	// builds its per-worker detectors.
	if _, _, err := fullBankBatch(idEng, "batch warmup", idInputs[:warmup]); err != nil {
		return nil, err
	}
	batchRes, batchSecs, err := fullBankBatch(idEng, "batch", idInputs)
	if err != nil {
		return nil, err
	}
	// The acceptance contract: batch results are bit-identical to the
	// sequential per-CIR loop, verified on every recorded run.
	for i := range idInputs {
		got, want := batchRes[i].Responses, warmResults[i]
		if len(got) != len(want) {
			return nil, fmt.Errorf("batch CIR %d: %d responses, warm loop found %d", i, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				return nil, fmt.Errorf("batch CIR %d response %d: %+v differs from warm loop's %+v",
					i, k, got[k], want[k])
			}
		}
	}
	if callSecs > 0 {
		res.CallPerSec = float64(callCIRs) / callSecs
	}
	if warmSecs > 0 {
		res.WarmPerSec = float64(idCIRs) / warmSecs
	}
	if batchSecs > 0 {
		res.BatchPerSec = float64(idCIRs) / batchSecs
	}
	if res.CallPerSec > 0 {
		res.BatchSpeedup = res.BatchPerSec / res.CallPerSec
	}
	addBatchThroughput(idCIRs, batchSecs)
	return res, nil
}

// Render formats the comparison.
func (r *FullBankResult) Render() string {
	t := &Table{
		Title: fmt.Sprintf("Full %d-shape bank — reference vs. spectral detector (%d trials, %d workers)",
			r.Templates, r.Trials, r.Workers),
		Header: []string{"path", "total Detect time", "per CIR"},
		Rows: [][]string{
			{"reference (per-round transforms)", fmt.Sprintf("%.3f s", r.ReferenceSeconds),
				fmt.Sprintf("%.1f ms", 1e3*r.ReferenceSeconds/float64(r.Trials))},
			{"spectral (shift-theorem residual)", fmt.Sprintf("%.3f s", r.SpectralSeconds),
				fmt.Sprintf("%.1f ms", 1e3*r.SpectralSeconds/float64(r.Trials))},
		},
	}
	id := &Table{
		Title:  fmt.Sprintf("Identification-stream throughput (%d single-responder CIRs, MaxResponses 1)", r.IDCIRs),
		Header: []string{"discipline", "CIRs/s"},
		Rows: [][]string{
			{"call-at-a-time (detector built per call)", fmt.Sprintf("%.1f", r.CallPerSec)},
			{"warm loop (one detector reused)", fmt.Sprintf("%.1f", r.WarmPerSec)},
			{fmt.Sprintf("batch engine (%d workers, shared plans)", r.Workers), fmt.Sprintf("%.1f", r.BatchPerSec)},
		},
	}
	return t.String() + fmt.Sprintf(
		"speedup %.2f×; %d/%d trials equivalent (max delay diff %.3g ps); same template on %d/%d responses\n",
		r.Speedup, r.Agree, r.Trials, r.MaxDelayDiff*1e12, r.TemplateMatches, r.Responses) +
		id.String() + fmt.Sprintf("batch engine speedup over call-at-a-time: %.2f× (batch results bit-identical to the sequential loop)\n",
		r.BatchSpeedup)
}
