package experiments

import (
	"fmt"
	"math"

	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/geom"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
	"github.com/uwb-sim/concurrent-ranging/internal/sim"
)

// AblationUpsampleResult measures the effect of the FFT up-sampling
// factor (Sect. IV step 1) on resolving overlapping responses.
type AblationUpsampleResult struct {
	// Factors are the evaluated up-sampling factors.
	Factors []int
	// SuccessRate is the both-responses-found rate per factor.
	SuccessRate []float64
	// Trials per factor.
	Trials int
}

// AblationUpsample reruns the Sect. VI overlap scenario at several
// up-sampling factors.
func AblationUpsample(trials int, seed uint64) (*AblationUpsampleResult, error) {
	if trials == 0 {
		trials = 300
	}
	factors := []int{1, 2, 4, 8, 16}
	res := &AblationUpsampleResult{Factors: factors, Trials: trials}
	bank, err := pulse.NewBank(dw1000.SampleInterval, pulse.RegisterS1)
	if err != nil {
		return nil, err
	}
	shape := bank.Shape(0)
	m := newMeter(len(factors) * trials)
	defer m.finish()
	for _, factor := range factors {
		det, err := core.NewDetector(bank, core.DetectorConfig{Upsample: factor})
		if err != nil {
			return nil, err
		}
		instrumentDetector(det)
		var counter dsp.Counter
		for trial := 0; trial < trials; trial++ {
			err := m.timeTrial(func() error {
				round, err := overlapRound(4, seed+uint64(trial)*6151)
				if err != nil {
					return err
				}
				offset := math.Abs(round.TXQuantizationError[0] - round.TXQuantizationError[1])
				if offset > shape.Duration() {
					return nil
				}
				cir := round.Reception.CIR
				refDelay := float64(dw1000.ReferenceIndex) * dw1000.SampleInterval
				responses, err := det.Detect(cir.Taps, cir.NoiseRMS)
				if err != nil {
					return err
				}
				counter.Record(bothDetected(responses, []float64{refDelay, refDelay + offset}))
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		res.SuccessRate = append(res.SuccessRate, counter.Rate())
	}
	return res, nil
}

// overlapRound builds the two-equal-distance-responders round of Sect. VI.
func overlapRound(distance float64, seed uint64) (*sim.RoundResult, error) {
	net, err := sim.NewNetwork(sim.NetworkConfig{
		Environment:      channel.Hallway(),
		Seed:             seed,
		RandomClockPhase: true,
	})
	if err != nil {
		return nil, err
	}
	instrumentNetwork(net)
	init, err := net.AddNode(sim.NodeConfig{ID: -1, Name: "initiator", Pos: geom.Point{X: 0.5, Y: 0.9}})
	if err != nil {
		return nil, err
	}
	r1, err := net.AddNode(sim.NodeConfig{ID: 0, Pos: geom.Point{X: 0.5 + distance, Y: 0.9}})
	if err != nil {
		return nil, err
	}
	r2, err := net.AddNode(sim.NodeConfig{ID: 1, Pos: geom.Point{X: 0.5, Y: 0.9 - distance}})
	if err != nil {
		return nil, err
	}
	bank, err := pulse.NewBank(dw1000.SampleInterval, pulse.RegisterS1)
	if err != nil {
		return nil, err
	}
	return net.RunConcurrentRound(init, []*sim.Node{r1, r2}, sim.RoundConfig{Bank: bank})
}

// Render formats the ablation.
func (r *AblationUpsampleResult) Render() string {
	t := &Table{
		Title:  "Ablation — FFT up-sampling factor vs overlap resolution",
		Header: []string{"factor", "both found"},
	}
	for i, f := range r.Factors {
		t.Rows = append(t.Rows, []string{fmt.Sprint(f), fmtPct(100 * r.SuccessRate[i])})
	}
	return t.String()
}

// AblationQuantizationResult measures the concurrent-ranging distance
// error with and without the DW1000's 8 ns delayed-TX truncation — the
// hardware limitation Sect. III declares out of scope and expects
// next-generation transceivers to fix.
type AblationQuantizationResult struct {
	// WithQuantizationRMSE and IdealRMSE are the RMS distance errors of
	// the non-anchor responders, meters.
	WithQuantizationRMSE, IdealRMSE float64
	// Trials per variant.
	Trials int
}

// AblationQuantization compares the two transceiver models on the Fig. 4
// scenario.
func AblationQuantization(trials int, seed uint64) (*AblationQuantizationResult, error) {
	if trials == 0 {
		trials = 100
	}
	res := &AblationQuantizationResult{Trials: trials}
	for _, ideal := range []bool{false, true} {
		f4, err := Fig4(Fig4Config{Trials: trials, Seed: seed, IdealTransceiver: ideal})
		if err != nil {
			return nil, err
		}
		var acc float64
		var n int
		for i := 1; i < len(f4.TrueDistances); i++ { // skip the TWR anchor
			e := f4.MeanDistance[i] - f4.TrueDistances[i]
			acc += e*e + f4.StdDistance[i]*f4.StdDistance[i]
			n++
		}
		rmse := math.Sqrt(acc / float64(n))
		if ideal {
			res.IdealRMSE = rmse
		} else {
			res.WithQuantizationRMSE = rmse
		}
	}
	return res, nil
}

// Render formats the ablation.
func (r *AblationQuantizationResult) Render() string {
	t := &Table{
		Title:  "Ablation — 8 ns delayed-TX truncation vs ideal transceiver",
		Header: []string{"transceiver", "RMSE of CIR-derived distances [m]"},
		Rows: [][]string{
			{"DW1000 (8 ns truncation)", fmtF(r.WithQuantizationRMSE, 3)},
			{"ideal (next-generation)", fmtF(r.IdealRMSE, 3)},
		},
	}
	return t.String()
}

// AblationThresholdResult sweeps the detection threshold factor and
// reports missed responses vs phantom detections on the Fig. 4 scenario —
// the automatic-detection trade-off of challenge I.
type AblationThresholdResult struct {
	// Factors are the threshold multipliers.
	Factors []float64
	// MissRate is the fraction of (trial, responder) pairs missed.
	MissRate []float64
	// MeanExtra is the mean number of detections beyond the three
	// responders per trial.
	MeanExtra []float64
	// Trials per factor.
	Trials int
}

// AblationThreshold runs the sweep.
func AblationThreshold(trials int, seed uint64) (*AblationThresholdResult, error) {
	if trials == 0 {
		trials = 60
	}
	factors := []float64{3, 4.5, 6, 9, 14, 20}
	res := &AblationThresholdResult{Factors: factors, Trials: trials}
	bank, err := pulse.NewBank(dw1000.SampleInterval, pulse.RegisterS1)
	if err != nil {
		return nil, err
	}
	distances := []float64{3, 6, 10}
	for _, factor := range factors {
		det, err := core.NewDetector(bank, core.DetectorConfig{ThresholdFactor: factor})
		if err != nil {
			return nil, err
		}
		instrumentDetector(det)
		var miss dsp.Counter
		var extra dsp.Running
		for trial := 0; trial < trials; trial++ {
			net, err := sim.NewNetwork(sim.NetworkConfig{
				Environment:      channel.Hallway(),
				Seed:             seed + uint64(trial)*7919,
				RandomClockPhase: true,
			})
			if err != nil {
				return nil, err
			}
			instrumentNetwork(net)
			init, err := net.AddNode(sim.NodeConfig{ID: -1, Name: "initiator", Pos: geom.Point{X: 2, Y: 0.9}})
			if err != nil {
				return nil, err
			}
			var resps []*sim.Node
			for i, d := range distances {
				node, err := net.AddNode(sim.NodeConfig{ID: i, Pos: geom.Point{X: 2 + d, Y: 0.9}})
				if err != nil {
					return nil, err
				}
				resps = append(resps, node)
			}
			round, err := net.RunConcurrentRound(init, resps, sim.RoundConfig{
				Bank: bank, DisableTXQuantization: true,
			})
			if err != nil {
				return nil, err
			}
			cir := round.Reception.CIR
			responses, err := det.Detect(cir.Taps, cir.NoiseRMS)
			if err != nil {
				return nil, err
			}
			refDelay := float64(dw1000.ReferenceIndex) * dw1000.SampleInterval
			matched := 0
			for i, d := range distances {
				expected := refDelay + 2*(d-distances[0])/channel.SpeedOfLight
				if _, ok := nearestResponse(responses, expected); ok {
					matched++
				} else {
					_ = i
				}
			}
			miss.Record(matched < len(distances))
			extra.Add(float64(max(len(responses)-len(distances), 0)))
		}
		res.MissRate = append(res.MissRate, miss.Rate())
		res.MeanExtra = append(res.MeanExtra, extra.Mean())
	}
	return res, nil
}

// Render formats the sweep.
func (r *AblationThresholdResult) Render() string {
	t := &Table{
		Title:  "Ablation — detection threshold factor (automatic mode)",
		Header: []string{"factor ×noise", "trials missing a responder", "mean extra detections"},
	}
	for i, f := range r.Factors {
		t.Rows = append(t.Rows, []string{
			fmtF(f, 1), fmtPct(100 * r.MissRate[i]), fmtF(r.MeanExtra[i], 2),
		})
	}
	return t.String()
}
