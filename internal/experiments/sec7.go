package experiments

import (
	"fmt"

	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
)

// Sec7Result reproduces the response-position-modulation arithmetic of
// Sect. VII: the 1016-sample CIR at T_s = 1.0016 ns spans δ_max ≈ 1017 ns
// ≈ 307 m, and the number of non-overlapping slots follows from the
// maximum communication range.
type Sec7Result struct {
	// CIRSamples and SampleInterval restate the accumulator geometry.
	CIRSamples     int
	SampleInterval float64
	// MaxOffset is δ_max in seconds; MaxOffsetDistance is δ_max·c.
	MaxOffset, MaxOffsetDistance float64
	// Ranges are the evaluated maximum communication ranges (meters).
	Ranges []float64
	// Slots is N_RPM per range (the paper's formula).
	Slots []int
	// SafeSlots is N_RPM when the slot width covers the full round-trip
	// spread (2·r_max), the collision-free variant.
	SafeSlots []int
}

// Sec7 computes the RPM capacity for a set of ranges.
func Sec7(ranges []float64) (*Sec7Result, error) {
	if len(ranges) == 0 {
		ranges = []float64{20, 30, 50, 75, 100, 150}
	}
	res := &Sec7Result{
		CIRSamples:        dw1000.CIRLength,
		SampleInterval:    dw1000.SampleInterval,
		MaxOffset:         core.MaxSlotDelay,
		MaxOffsetDistance: core.MaxSlotDelay * channel.SpeedOfLight,
		Ranges:            ranges,
	}
	for _, r := range ranges {
		plan, err := core.NewSlotPlan(r, 1)
		if err != nil {
			return nil, err
		}
		res.Slots = append(res.Slots, plan.NumSlots)
		safe, err := core.NewSafeSlotPlan(r, 1)
		if err != nil {
			return nil, err
		}
		res.SafeSlots = append(res.SafeSlots, safe.NumSlots)
	}
	return res, nil
}

// Render formats the result.
func (r *Sec7Result) Render() string {
	out := "== Sect. VII — response position modulation ==\n"
	out += fmt.Sprintf("CIR: %d samples × %.4f ns → δ_max = %.0f ns ≈ %.0f m\n",
		r.CIRSamples, r.SampleInterval*1e9, r.MaxOffset*1e9, r.MaxOffsetDistance)
	t := &Table{Header: []string{"r_max [m]", "N_RPM (paper)", "N_RPM (round-trip safe)"}}
	for i, rng := range r.Ranges {
		t.Rows = append(t.Rows, []string{
			fmtF(rng, 0), fmt.Sprint(r.Slots[i]), fmt.Sprint(r.SafeSlots[i]),
		})
	}
	return out + t.String()
}
