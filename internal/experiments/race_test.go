package experiments

import (
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

// TestParallelCampaignPerWorkerDetectors exercises the per-worker
// detector pattern under `go test -race`: each worker goroutine owns its
// own core.Detector (whose cached FFT plans and scratch buffers are not
// safe for concurrent use) and runs many trials through it. The results
// must also be independent of scheduling: every trial detecting the same
// CIR must produce identical responses.
func TestParallelCampaignPerWorkerDetectors(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel campaign is slow under -race in -short mode")
	}
	bank, err := pulse.DefaultBank(dw1000.SampleInterval, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A deterministic synthetic CIR shared read-only across all trials.
	taps := make([]complex128, dw1000.CIRLength)
	tmpl := bank.Template(1)
	for i, v := range tmpl {
		taps[300+i] += v * complex(0.02, 0)
		taps[420+i] += v * complex(0.012, 0.004)
	}
	newWorker := func() (*core.Detector, error) {
		return core.NewDetector(bank, core.DetectorConfig{})
	}
	const trials = 64
	results, err := parallelMapWith(trials, newWorker,
		func(det *core.Detector, i int) ([]core.Response, error) {
			return det.Detect(taps, dw1000.DefaultNoiseRMS)
		})
	if err != nil {
		t.Fatal(err)
	}
	ref := results[0]
	if len(ref) == 0 {
		t.Fatal("detector found nothing in the synthetic CIR")
	}
	for i, got := range results[1:] {
		if len(got) != len(ref) {
			t.Fatalf("trial %d: %d responses, trial 0 had %d", i+1, len(got), len(ref))
		}
		for j := range got {
			if got[j] != ref[j] {
				t.Fatalf("trial %d response %d = %+v, want %+v (scheduling leaked into results)",
					i+1, j, got[j], ref[j])
			}
		}
	}
}
