package experiments

import (
	"fmt"
	"math"

	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/geom"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
	"github.com/uwb-sim/concurrent-ranging/internal/sim"
)

// twoResponderRound runs one concurrent round with two responders at the
// given distances, transmitting with the given bank shape indexes. The
// detector bank holds nps default shapes.
type twoResponderOutcome struct {
	round     *sim.RoundResult
	det       *core.Detector
	responses []core.Response
}

func twoResponderRound(d1, d2 float64, shape1, shape2, nps, maxResponses int, seed uint64, env *channel.Environment) (*twoResponderOutcome, error) {
	net, err := sim.NewNetwork(sim.NetworkConfig{Environment: env, Seed: seed})
	if err != nil {
		return nil, err
	}
	instrumentNetwork(net)
	init, err := net.AddNode(sim.NodeConfig{ID: -1, Name: "initiator", Pos: geom.Point{X: 0.5, Y: 0.9}})
	if err != nil {
		return nil, err
	}
	bank, err := pulse.DefaultBank(dw1000.SampleInterval, nps)
	if err != nil {
		return nil, err
	}
	// IDs encode the shape directly in the single-slot plan: ID = shape.
	r1, err := net.AddNode(sim.NodeConfig{ID: shape1, Name: "resp1", Pos: geom.Point{X: 0.5 + d1, Y: 0.9}})
	if err != nil {
		return nil, err
	}
	r2, err := net.AddNode(sim.NodeConfig{ID: shape2, Name: "resp2", Pos: geom.Point{X: 0.5 + d2, Y: 0.9}})
	if err != nil {
		return nil, err
	}
	round, err := net.RunConcurrentRound(init, []*sim.Node{r1, r2}, sim.RoundConfig{
		Plan: core.SingleSlot(nps),
		Bank: bank,
	})
	if err != nil {
		return nil, err
	}
	det, err := core.NewDetector(bank, core.DetectorConfig{MaxResponses: maxResponses})
	if err != nil {
		return nil, err
	}
	instrumentDetector(det)
	responses, err := det.Detect(round.Reception.CIR.Taps, round.Reception.CIR.NoiseRMS)
	if err != nil {
		return nil, err
	}
	return &twoResponderOutcome{round: round, det: det, responses: responses}, nil
}

// Fig6Result reproduces Fig. 6: two responders at 4 m (shape s₁) and 10 m
// (shape s₃); the CIR shows the differently shaped pulses and each
// template's matched-filter output peaks strongest on its own shape.
type Fig6Result struct {
	// CIR is the normalized CIR magnitude.
	CIR []float64
	// MatchedFilters holds the normalized |y_i| per template (s₁..s₃).
	MatchedFilters [][]float64
	// Identified maps each detected response (by arrival order) to the
	// identified template index; the expected value is {0, 2}.
	Identified []int
	// Delays are the detected response delays in nanoseconds.
	Delays []float64
}

// Fig6 runs the pulse-shape identification illustration.
func Fig6(seed uint64) (*Fig6Result, error) {
	out, err := twoResponderRound(4, 10, 0, 2, 3, 0, seed, channel.Hallway())
	if err != nil {
		return nil, err
	}
	cir := out.round.Reception.CIR
	mag := cir.Magnitude()
	dsp.ScaleReal(mag, 1/math.Max(mag[dsp.ArgMax(mag)], 1e-30))
	res := &Fig6Result{CIR: mag}
	mfs, _, err := out.det.MatchedFilterOutputs(cir.Taps)
	if err != nil {
		return nil, err
	}
	var peak float64
	for _, mf := range mfs {
		peak = math.Max(peak, mf[dsp.ArgMax(mf)])
	}
	for _, mf := range mfs {
		dsp.ScaleReal(mf, 1/peak)
		res.MatchedFilters = append(res.MatchedFilters, mf)
	}
	// Pick the detections at the two responders' true CIR positions (the
	// automatic run also reports multipath peaks, which the combined
	// scheme of Sect. VIII — not this illustration — disambiguates).
	refDelay := float64(dw1000.ReferenceIndex) * dw1000.SampleInterval
	quantDiff := out.round.TXQuantizationError[2] - out.round.TXQuantizationError[0]
	for _, expected := range []float64{
		refDelay,
		refDelay + 2*(10.0-4.0)/channel.SpeedOfLight - quantDiff,
	} {
		best, bestDist := -1, math.Inf(1)
		for i, r := range out.responses {
			if d := math.Abs(r.Delay - expected); d < bestDist {
				best, bestDist = i, d
			}
		}
		if best < 0 || bestDist > 5e-9 {
			return nil, fmt.Errorf("experiments: no response at expected position %.1f ns", expected*1e9)
		}
		res.Identified = append(res.Identified, out.responses[best].TemplateIndex)
		res.Delays = append(res.Delays, out.responses[best].Delay*1e9)
	}
	return res, nil
}

// Render formats the experiment.
func (r *Fig6Result) Render() string {
	out := "== Fig. 6 — pulse shapes in the CIR (resp1: s1 @ 4 m, resp2: s3 @ 10 m) ==\n"
	cir := Series{Y: r.CIR[:120]}
	out += fmt.Sprintf("CIR |%s|\n", cir.Sparkline(96))
	for i, mf := range r.MatchedFilters {
		s := Series{Y: mf[:120*4]}
		out += fmt.Sprintf("y%d  |%s|\n", i+1, s.Sparkline(96))
	}
	for i, tmpl := range r.Identified {
		out += fmt.Sprintf("response %d at %.1f ns identified as s%d\n", i+1, r.Delays[i], tmpl+1)
	}
	return out
}
