package experiments

import (
	"fmt"

	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
	"github.com/uwb-sim/concurrent-ranging/internal/geom"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

// Fig1Result reproduces Fig. 1: the line-of-sight ray and the four
// first-order reflections of a rectangular room (a), and the received
// pulse trains at 900 MHz and 50 MHz bandwidth (b). At 900 MHz every
// multipath component is resolvable; at 50 MHz they merge.
type Fig1Result struct {
	// Paths are the geometric propagation paths (LOS first).
	Paths []geom.Path
	// Wideband and Narrowband are the received signals over Time.
	Time                 []float64
	Wideband, Narrowband []float64
	// ResolvablePeaksWide and ResolvablePeaksNarrow count the distinct
	// local maxima above a tenth of each signal's peak.
	ResolvablePeaksWide, ResolvablePeaksNarrow int
}

// Fig1 runs the multipath-resolution illustration. The floor plan mirrors
// Fig. 1a: a 10 m × 6 m room with the transmitter and receiver inside.
func Fig1() (*Fig1Result, error) {
	plan, err := geom.Rectangle(10, 6, 0.6)
	if err != nil {
		return nil, err
	}
	// Positions chosen so every first-order bounce has a distinct length
	// (an axis-symmetric placement would make east/west and north/south
	// reflections coincide).
	tx := geom.Point{X: 2.5, Y: 2.3}
	rx := geom.Point{X: 7.0, Y: 4.5}
	paths, err := plan.Paths(tx, rx, 1)
	if err != nil {
		return nil, err
	}

	wide := pulse.Shape{Register: pulse.DefaultRegister, Bandwidth: 900e6, Beta: 0.25}
	narrow := pulse.Shape{Register: pulse.DefaultRegister, Bandwidth: 50e6, Beta: 0.25}

	const (
		ts       = 0.2e-9 // fine grid for the theoretical plot
		duration = 120e-9
	)
	n := int(duration / ts)
	timeAxis := make([]float64, n)
	for i := range timeAxis {
		timeAxis[i] = float64(i) * ts
	}
	render := func(s pulse.Shape) []float64 {
		taps := make([]complex128, n)
		for _, p := range paths {
			delay := p.Length / channel.SpeedOfLight
			amp := p.Gain / p.Length // free-space-style spreading for the illustration
			s.RenderInto(taps, complex(amp, 0), delay/ts, ts)
		}
		return dsp.Abs(taps)
	}
	res := &Fig1Result{
		Paths:      paths,
		Time:       timeAxis,
		Wideband:   render(wide),
		Narrowband: render(narrow),
	}
	res.ResolvablePeaksWide = countProminentPeaks(res.Wideband)
	res.ResolvablePeaksNarrow = countProminentPeaks(res.Narrowband)
	return res, nil
}

// countProminentPeaks counts local maxima above 15% of the global peak,
// merging maxima closer than 2 ns (0.2 ns grid → 10 samples) so pulse
// side lobes are not counted as separate arrivals.
func countProminentPeaks(mag []float64) int {
	peak := 0.0
	for _, v := range mag {
		if v > peak {
			peak = v
		}
	}
	peaks := dsp.LocalMaxima(mag, peak*0.15)
	const minSeparation = 10
	count, lastIdx := 0, -minSeparation
	for _, p := range peaks {
		if p.Index-lastIdx >= minSeparation {
			count++
		}
		lastIdx = p.Index
	}
	return count
}

// Render formats the experiment for terminal output.
func (r *Fig1Result) Render() string {
	t := &Table{
		Title:  "Fig. 1 — multipath resolution vs bandwidth",
		Header: []string{"path", "order", "length [m]", "delay [ns]"},
	}
	for i, p := range r.Paths {
		name := "LOS"
		if p.Order > 0 {
			name = fmt.Sprintf("MPC%d", i)
		}
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprint(p.Order), fmtF(p.Length, 2),
			fmtF(p.Length/channel.SpeedOfLight*1e9, 2),
		})
	}
	wideS := Series{Name: "900 MHz", Y: r.Wideband}
	narrowS := Series{Name: "50 MHz", Y: r.Narrowband}
	return t.String() +
		fmt.Sprintf("900 MHz |%s| %d resolvable peaks\n", wideS.Sparkline(72), r.ResolvablePeaksWide) +
		fmt.Sprintf(" 50 MHz |%s| %d resolvable peaks\n", narrowS.Sparkline(72), r.ResolvablePeaksNarrow)
}
