package experiments

import (
	"fmt"

	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/geom"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
	"github.com/uwb-sim/concurrent-ranging/internal/sim"
)

// Fig4Config parameterizes the response-detection experiment.
type Fig4Config struct {
	// Distances places the responders (meters from the initiator).
	// Empty selects the paper's {3, 6, 10}.
	Distances []float64
	// Trials is the number of Monte-Carlo rounds for the distance
	// statistics (default 100).
	Trials int
	// Seed drives the simulation.
	Seed uint64
	// IdealTransceiver disables the 8 ns TX quantization.
	IdealTransceiver bool
}

// Fig4Result reproduces Fig. 4: the CIR acquired from three concurrent
// responders in a hallway, the matched-filter output, and the detected
// responses, plus distance-recovery statistics across trials.
type Fig4Result struct {
	// CIR is the normalized first-round CIR magnitude.
	CIR []float64
	// MatchedFilter is the normalized matched-filter output magnitude
	// (up-sampled domain) of the first round.
	MatchedFilter []float64
	// DetectedDelays are the first-round response delays in nanoseconds.
	DetectedDelays []float64
	// TrueDistances are the configured responder distances.
	TrueDistances []float64
	// MeanDistance and StdDistance are the per-responder statistics of
	// the recovered distances across trials, meters (over the trials in
	// which the responder was detected).
	MeanDistance, StdDistance []float64
	// PerResponderRate is the fraction of trials each responder's
	// response was found within ±5 ns of its true CIR position.
	PerResponderRate []float64
	// Trials is the number of rounds executed.
	Trials int
}

// Fig4 runs the hallway response-detection experiment.
func Fig4(cfg Fig4Config) (*Fig4Result, error) {
	if len(cfg.Distances) == 0 {
		cfg.Distances = []float64{3, 6, 10}
	}
	if cfg.Trials == 0 {
		cfg.Trials = 100
	}
	bank, err := pulse.NewBank(dw1000.SampleInterval, pulse.RegisterS1)
	if err != nil {
		return nil, err
	}
	// Automatic run-time detection (challenge I): extraction stops at the
	// noise floor, not at a preconfigured response count.
	det, err := core.NewDetector(bank, core.DetectorConfig{})
	if err != nil {
		return nil, err
	}
	instrumentDetector(det)
	res := &Fig4Result{
		TrueDistances:    cfg.Distances,
		MeanDistance:     make([]float64, len(cfg.Distances)),
		StdDistance:      make([]float64, len(cfg.Distances)),
		PerResponderRate: make([]float64, len(cfg.Distances)),
		Trials:           cfg.Trials,
	}
	stats := make([]dsp.Running, len(cfg.Distances))
	found := make([]dsp.Counter, len(cfg.Distances))

	m := newMeter(cfg.Trials)
	defer m.finish()
	for trial := 0; trial < cfg.Trials; trial++ {
		t0 := wallNow()
		net, err := sim.NewNetwork(sim.NetworkConfig{
			Environment:      channel.Hallway(),
			Seed:             cfg.Seed + uint64(trial)*7919,
			RandomClockPhase: true, // realistic TX-quantization residuals
		})
		if err != nil {
			return nil, err
		}
		instrumentNetwork(net)
		init, err := net.AddNode(sim.NodeConfig{ID: -1, Name: "initiator", Pos: geom.Point{X: 2, Y: 0.9}})
		if err != nil {
			return nil, err
		}
		var resps []*sim.Node
		for i, d := range cfg.Distances {
			node, err := net.AddNode(sim.NodeConfig{ID: i, Pos: geom.Point{X: 2 + d, Y: 0.9}})
			if err != nil {
				return nil, err
			}
			resps = append(resps, node)
		}
		round, err := net.RunConcurrentRound(init, resps, sim.RoundConfig{
			Bank:                  bank,
			DisableTXQuantization: cfg.IdealTransceiver,
		})
		if err != nil {
			return nil, err
		}
		cir := round.Reception.CIR
		responses, err := det.Detect(cir.Taps, cir.NoiseRMS)
		if err != nil {
			return nil, err
		}
		// Match each responder's true CIR position (ground truth, with
		// the realized TX-quantization offsets) against the detections,
		// then apply Eq. 4 anchored at responder 0. The quantization
		// error itself stays inside the reported distance statistics —
		// only the matching uses ground truth.
		refDelay := float64(dw1000.ReferenceIndex) * dw1000.SampleInterval
		anchorDelay, anchorFound := nearestResponse(responses, refDelay)
		dTWR := round.TWRDistance()
		for i, d := range cfg.Distances {
			if i == 0 {
				found[0].Record(anchorFound)
				if anchorFound {
					stats[0].Add(dTWR)
				}
				continue
			}
			quantDiff := round.TXQuantizationError[i] - round.TXQuantizationError[0]
			expected := refDelay + 2*(d-cfg.Distances[0])/channel.SpeedOfLight - quantDiff
			delay, ok := nearestResponse(responses, expected)
			found[i].Record(anchorFound && ok)
			if anchorFound && ok {
				stats[i].Add(core.ConcurrentDistance(dTWR, delay, anchorDelay))
			}
		}
		if trial == 0 {
			mag := cir.Magnitude()
			dsp.ScaleReal(mag, 1/mag[dsp.ArgMax(mag)])
			res.CIR = mag
			outs, _, err := det.MatchedFilterOutputs(cir.Taps)
			if err != nil {
				return nil, err
			}
			mf := outs[0]
			dsp.ScaleReal(mf, 1/mf[dsp.ArgMax(mf)])
			res.MatchedFilter = mf
			for _, r := range responses {
				res.DetectedDelays = append(res.DetectedDelays, r.Delay*1e9)
			}
		}
		m.trialDone(wallSince(t0))
	}
	for i := range stats {
		res.MeanDistance[i] = stats[i].Mean()
		res.StdDistance[i] = stats[i].StdDev()
		res.PerResponderRate[i] = found[i].Rate()
	}
	return res, nil
}

// nearestResponse returns the delay of the detected response closest to
// expected, and whether one lies within ±5 ns.
func nearestResponse(responses []core.Response, expected float64) (float64, bool) {
	const tol = 5e-9
	best, bestDist := 0.0, tol
	ok := false
	for _, r := range responses {
		if d := absf(r.Delay - expected); d < bestDist {
			best, bestDist, ok = r.Delay, d, true
		}
	}
	return best, ok
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Render formats the experiment.
func (r *Fig4Result) Render() string {
	cir := Series{Y: r.CIR[:160]}
	mf := Series{Y: r.MatchedFilter[:160*4]}
	out := "== Fig. 4 — response detection (hallway, 3 concurrent responders) ==\n"
	out += fmt.Sprintf("CIR       |%s|\n", cir.Sparkline(100))
	out += fmt.Sprintf("matched   |%s|\n", mf.Sparkline(100))
	t := &Table{
		Header: []string{"responder", "true [m]", "mean est [m]", "std [m]", "detected"},
	}
	for i := range r.TrueDistances {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(i + 1),
			fmtF(r.TrueDistances[i], 1),
			fmtF(r.MeanDistance[i], 3),
			fmtF(r.StdDistance[i], 3),
			fmtPct(100 * r.PerResponderRate[i]),
		})
	}
	out += t.String()
	out += fmt.Sprintf("%d trials\n", r.Trials)
	return out
}
