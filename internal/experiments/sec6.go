package experiments

import (
	"fmt"
	"math"

	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/geom"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
	"github.com/uwb-sim/concurrent-ranging/internal/sim"
)

// Sec6Config parameterizes the overlapping-response experiment.
type Sec6Config struct {
	// Trials is the number of concurrent rounds (the paper uses 2000).
	Trials int
	// Distance places both responders (the paper uses 4 m).
	Distance float64
	// Seed drives the simulation.
	Seed uint64
}

// Sec6Result reproduces the Sect. VI comparison: two responders at the
// same distance reply concurrently; their responses overlap within a
// pulse duration because the 8 ns TX quantization leaves only small
// relative offsets. The paper reports that search-and-subtract resolves
// both responses in 92.6% of the overlapping trials while the threshold
// baseline manages 48%.
type Sec6Result struct {
	// OverlappingTrials is the number of trials in which the responses
	// actually overlap (offset below one pulse duration), the population
	// both rates are computed over.
	OverlappingTrials int
	// TotalTrials is the number of rounds executed.
	TotalTrials int
	// SearchSubtractRate and ThresholdRate are the fractions of
	// overlapping trials in which each detector found both responses.
	SearchSubtractRate, ThresholdRate float64
	// MeanOffset is the mean absolute response offset among overlapping
	// trials, seconds.
	MeanOffset float64
}

// Sec6 runs the overlap experiment.
func Sec6(cfg Sec6Config) (*Sec6Result, error) {
	if cfg.Trials == 0 {
		cfg.Trials = 2000
	}
	if cfg.Distance == 0 {
		cfg.Distance = 4
	}
	shape, err := pulse.ForRegister(pulse.RegisterS1)
	if err != nil {
		return nil, err
	}
	bank, err := pulse.NewBank(dw1000.SampleInterval, pulse.RegisterS1)
	if err != nil {
		return nil, err
	}
	// The search-and-subtract detector caches FFT plans and scratch
	// buffers, so each parallel worker gets its own instance; the
	// threshold baseline is stateless and safely shared.
	threshold := &core.ThresholdDetector{
		Shape:          shape,
		SampleInterval: dw1000.SampleInterval,
	}

	type trialOutcome struct {
		overlapping bool
		offset      float64
		ss, th      bool
	}
	newWorker := func() (*core.Detector, error) {
		det, err := core.NewDetector(bank, core.DetectorConfig{Upsample: 8})
		if err != nil {
			return nil, err
		}
		return instrumentDetector(det), nil
	}
	outcomes, err := parallelMapWith(cfg.Trials, newWorker, func(det *core.Detector, trial int) (trialOutcome, error) {
		net, err := sim.NewNetwork(sim.NetworkConfig{
			Environment:      channel.Hallway(),
			Seed:             cfg.Seed + uint64(trial)*6151,
			RandomClockPhase: true, // TX quantization offsets need unaligned clocks
		})
		if err != nil {
			return trialOutcome{}, err
		}
		instrumentNetwork(net)
		init, err := net.AddNode(sim.NodeConfig{ID: -1, Name: "initiator", Pos: geom.Point{X: 0.5, Y: 0.9}})
		if err != nil {
			return trialOutcome{}, err
		}
		// Both responders at the same distance, slightly apart laterally.
		r1, err := net.AddNode(sim.NodeConfig{ID: 0, Pos: geom.Point{X: 0.5 + cfg.Distance, Y: 0.9}})
		if err != nil {
			return trialOutcome{}, err
		}
		r2, err := net.AddNode(sim.NodeConfig{ID: 1, Pos: geom.Point{X: 0.5, Y: 0.9 - cfg.Distance}})
		if err != nil {
			return trialOutcome{}, err
		}
		round, err := net.RunConcurrentRound(init, []*sim.Node{r1, r2}, sim.RoundConfig{Bank: bank})
		if err != nil {
			return trialOutcome{}, err
		}
		// The realized response offset between the two equal-distance
		// responders is the TX quantization difference (ground truth).
		offset := math.Abs(round.TXQuantizationError[0] - round.TXQuantizationError[1])
		if offset > shape.Duration() {
			return trialOutcome{}, nil // the paper evaluates only actually-overlapping trials
		}
		cir := round.Reception.CIR
		refDelay := float64(dw1000.ReferenceIndex) * dw1000.SampleInterval
		expected := []float64{refDelay, refDelay + offset}
		ssResp, err := det.Detect(cir.Taps, cir.NoiseRMS)
		if err != nil {
			return trialOutcome{}, err
		}
		thResp, err := threshold.Detect(cir.Taps, cir.NoiseRMS)
		if err != nil {
			return trialOutcome{}, err
		}
		return trialOutcome{
			overlapping: true,
			offset:      offset,
			ss:          bothDetected(ssResp, expected),
			th:          bothDetected(thResp, expected),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var ss, th dsp.Counter
	var offsets dsp.Running
	res := &Sec6Result{TotalTrials: cfg.Trials}
	for _, o := range outcomes {
		if !o.overlapping {
			continue
		}
		res.OverlappingTrials++
		offsets.Add(o.offset)
		ss.Record(o.ss)
		th.Record(o.th)
	}
	res.SearchSubtractRate = ss.Rate()
	res.ThresholdRate = th.Rate()
	res.MeanOffset = offsets.Mean()
	return res, nil
}

// bothDetected reports whether two distinct detections match the two
// expected delays within ±1.5 ns.
func bothDetected(responses []core.Response, expected []float64) bool {
	const tol = 1.5e-9
	used := make([]bool, len(responses))
	for _, e := range expected {
		best, bestDist := -1, tol
		for i, r := range responses {
			if used[i] {
				continue
			}
			if d := math.Abs(r.Delay - e); d < bestDist {
				best, bestDist = i, d
			}
		}
		if best < 0 {
			return false
		}
		used[best] = true
	}
	return true
}

// Render formats the comparison.
func (r *Sec6Result) Render() string {
	t := &Table{
		Title: fmt.Sprintf("Sect. VI — overlapping responses at equal distance (%d/%d overlapping trials)",
			r.OverlappingTrials, r.TotalTrials),
		Header: []string{"detector", "both responses found"},
		Rows: [][]string{
			{"search and subtract (Sect. IV)", fmtPct(100 * r.SearchSubtractRate)},
			{"threshold-based (Falsi et al.)", fmtPct(100 * r.ThresholdRate)},
		},
	}
	return t.String() + fmt.Sprintf("mean response offset %.2f ns\n", r.MeanOffset*1e9)
}
