package experiments

import (
	"fmt"
	"math"

	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/geom"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
	"github.com/uwb-sim/concurrent-ranging/internal/sim"
)

// Fig8Config parameterizes the combined-scheme experiment.
type Fig8Config struct {
	// Responders is the number of concurrent responders (the figure
	// shows 9 of the N_max = 12).
	Responders int
	// MaxRange sizes the RPM slots (the paper's running example uses
	// 75 m → 4 slots).
	MaxRange float64
	// Shapes is N_PS (3 in the figure).
	Shapes int
	// Trials is the number of Monte-Carlo rounds.
	Trials int
	// Seed drives the simulation.
	Seed uint64
	// IdealTransceiver disables the 8 ns TX quantization.
	IdealTransceiver bool
}

// Fig8Result reproduces Fig. 8: many responders spread over RPM slots,
// identified within each slot by pulse shape.
type Fig8Result struct {
	// Capacity is N_max = N_RPM · N_PS.
	Capacity int
	// Slots and Shapes restate the layout.
	Slots, Shapes int
	// Responders is the number of active responders.
	Responders int
	// IdentificationRate is the fraction of (trial, responder) pairs in
	// which the responder was found with the correct ID.
	IdentificationRate float64
	// MeanAbsError is the mean |distance error| over identified
	// responders, meters.
	MeanAbsError float64
	// PerResponder is the identification rate per responder ID.
	PerResponder []float64
	// Trials is the number of rounds executed.
	Trials int
}

// Fig8 runs the combined RPM × pulse-shaping experiment.
func Fig8(cfg Fig8Config) (*Fig8Result, error) {
	if cfg.Responders == 0 {
		cfg.Responders = 9
	}
	if cfg.MaxRange == 0 {
		cfg.MaxRange = 75
	}
	if cfg.Shapes == 0 {
		cfg.Shapes = 3
	}
	if cfg.Trials == 0 {
		cfg.Trials = 50
	}
	plan, err := core.NewSlotPlan(cfg.MaxRange, cfg.Shapes)
	if err != nil {
		return nil, err
	}
	if cfg.Responders > plan.Capacity() {
		return nil, fmt.Errorf("experiments: %d responders exceed capacity %d",
			cfg.Responders, plan.Capacity())
	}
	bank, err := pulse.DefaultBank(dw1000.SampleInterval, cfg.Shapes)
	if err != nil {
		return nil, err
	}
	// Per-worker detectors: a Detector's cached FFT plans and scratch
	// buffers are not safe for concurrent use. The resolver is stateless.
	resolver := &core.Resolver{Plan: plan}

	res := &Fig8Result{
		Capacity:     plan.Capacity(),
		Slots:        plan.NumSlots,
		Shapes:       plan.NumShapes,
		Responders:   cfg.Responders,
		PerResponder: make([]float64, cfg.Responders),
		Trials:       cfg.Trials,
	}
	type trialOutcome struct {
		good []bool
		errs []float64
	}
	newWorker := func() (*core.Detector, error) {
		det, err := core.NewDetector(bank, core.DetectorConfig{})
		if err != nil {
			return nil, err
		}
		return instrumentDetector(det), nil
	}
	outcomes, err := parallelMapWith(cfg.Trials, newWorker, func(det *core.Detector, trial int) (trialOutcome, error) {
		net, err := sim.NewNetwork(sim.NetworkConfig{
			Environment:      channel.Hallway(),
			Seed:             cfg.Seed + uint64(trial)*2741,
			RandomClockPhase: true,
		})
		if err != nil {
			return trialOutcome{}, err
		}
		instrumentNetwork(net)
		init, err := net.AddNode(sim.NodeConfig{ID: -1, Name: "initiator", Pos: geom.Point{X: 1, Y: 0.9}})
		if err != nil {
			return trialOutcome{}, err
		}
		var resps []*sim.Node
		truth := make(map[int]float64, cfg.Responders)
		for id := 0; id < cfg.Responders; id++ {
			d := 2.0 + 1.6*float64(id)
			node, err := net.AddNode(sim.NodeConfig{ID: id, Pos: geom.Point{X: 1 + d, Y: 0.9}})
			if err != nil {
				return trialOutcome{}, err
			}
			resps = append(resps, node)
			truth[id] = d
		}
		round, err := net.RunConcurrentRound(init, resps, sim.RoundConfig{
			Plan:                  plan,
			Bank:                  bank,
			DisableTXQuantization: cfg.IdealTransceiver,
		})
		if err != nil {
			return trialOutcome{}, err
		}
		cir := round.Reception.CIR
		responses, err := det.Detect(cir.Taps, cir.NoiseRMS)
		if err != nil {
			return trialOutcome{}, err
		}
		out := trialOutcome{
			good: make([]bool, cfg.Responders),
			errs: make([]float64, cfg.Responders),
		}
		ms, err := resolver.Resolve(responses, round.DecodedID, round.TWRDistance())
		if err != nil {
			// A failed resolution counts as a miss for every responder.
			return out, nil
		}
		byID := make(map[int]core.Measurement, len(ms))
		for _, m := range ms {
			byID[m.ID] = m
		}
		for id := 0; id < cfg.Responders; id++ {
			m, ok := byID[id]
			// Identified = present with a plausible distance (within the
			// quantization-limited error budget).
			if ok && math.Abs(m.Distance-truth[id]) < 2.5 {
				out.good[id] = true
				out.errs[id] = math.Abs(m.Distance - truth[id])
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	perResponder := make([]dsp.Counter, cfg.Responders)
	var overall dsp.Counter
	var absErr dsp.Running
	for _, o := range outcomes {
		for id := 0; id < cfg.Responders; id++ {
			g := o.good[id]
			perResponder[id].Record(g)
			overall.Record(g)
			if g {
				absErr.Add(o.errs[id])
			}
		}
	}
	for id := range perResponder {
		res.PerResponder[id] = perResponder[id].Rate()
	}
	res.IdentificationRate = overall.Rate()
	res.MeanAbsError = absErr.Mean()
	return res, nil
}

// Render formats the experiment.
func (r *Fig8Result) Render() string {
	out := fmt.Sprintf("== Fig. 8 — combined scheme: %d slots × %d shapes (N_max = %d), %d responders ==\n",
		r.Slots, r.Shapes, r.Capacity, r.Responders)
	t := &Table{Header: []string{"responder", "slot", "shape", "identified"}}
	for id, rate := range r.PerResponder {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(id),
			fmt.Sprint(id % r.Slots),
			fmt.Sprintf("s%d", id/r.Slots+1),
			fmtPct(100 * rate),
		})
	}
	out += t.String()
	out += fmt.Sprintf("overall identification %s, mean |error| %.2f m over %d trials\n",
		fmtPct(100*r.IdentificationRate), r.MeanAbsError, r.Trials)
	return out
}
