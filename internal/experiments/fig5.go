package experiments

import (
	"fmt"

	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

// Fig5Result reproduces Fig. 5: the pulse shapes s₁..s₄ produced by
// TC_PGDELAY values 0x93, 0xC8, 0xE6 and 0xF0, scaled to unit energy.
type Fig5Result struct {
	// Registers are the TC_PGDELAY values.
	Registers []byte
	// Bandwidths are the resulting output bandwidths in Hz.
	Bandwidths []float64
	// Durations are the truncated pulse durations T_p in seconds.
	Durations []float64
	// Time is the common sample axis in seconds.
	Time []float64
	// Shapes holds one unit-energy sampled pulse per register.
	Shapes [][]float64
}

// Fig5 samples the four paper pulse shapes on a fine common time axis.
func Fig5() (*Fig5Result, error) {
	regs := []byte{pulse.RegisterS1, pulse.RegisterS2, pulse.RegisterS3, pulse.RegisterS4}
	const ts = 0.1e-9
	res := &Fig5Result{Registers: regs}
	var maxHalf float64
	shapes := make([]pulse.Shape, len(regs))
	for i, reg := range regs {
		s, err := pulse.ForRegister(reg)
		if err != nil {
			return nil, err
		}
		shapes[i] = s
		res.Bandwidths = append(res.Bandwidths, s.Bandwidth)
		res.Durations = append(res.Durations, s.Duration())
		if h := s.SupportHalfWidth(); h > maxHalf {
			maxHalf = h
		}
	}
	n := 2*int(maxHalf/ts) + 1
	center := (n - 1) / 2
	res.Time = make([]float64, n)
	for i := range res.Time {
		res.Time[i] = float64(i-center) * ts
	}
	for _, s := range shapes {
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = s.Eval(res.Time[i])
		}
		dsp.NormalizeEnergyReal(samples)
		res.Shapes = append(res.Shapes, samples)
	}
	return res, nil
}

// Render formats the shapes.
func (r *Fig5Result) Render() string {
	out := "== Fig. 5 — pulse shapes for TC_PGDELAY values ==\n"
	t := &Table{Header: []string{"shape", "register", "bandwidth [MHz]", "duration [ns]"}}
	for i, reg := range r.Registers {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("s%d", i+1),
			fmt.Sprintf("0x%02X", reg),
			fmtF(r.Bandwidths[i]/1e6, 0),
			fmtF(r.Durations[i]*1e9, 1),
		})
	}
	out += t.String()
	for i, shape := range r.Shapes {
		s := Series{Y: shape}
		out += fmt.Sprintf("s%d |%s|\n", i+1, s.Sparkline(90))
	}
	return out
}
