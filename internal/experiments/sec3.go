package experiments

import (
	"fmt"

	"github.com/uwb-sim/concurrent-ranging/internal/airtime"
)

func paperPHY() airtime.Config { return airtime.PaperConfig() }

// Sec3DelayResult reproduces the Δ_RESP derivation of Sect. III: the
// minimum response delay at DR = 6.8 Mbps, PRF = 64 MHz, PSR = 128 is
// 178.5 µs; with the <100 µs turnaround and a safety gap the paper uses
// 290 µs.
type Sec3DelayResult struct {
	PHRDuration, PayloadDuration    float64
	PreambleDuration, SFDDuration   float64
	MinResponseDelay, ResponseDelay float64
	Turnaround                      float64
}

// Sec3Delay computes the response-delay budget.
func Sec3Delay() (*Sec3DelayResult, error) {
	cfg := paperPHY()
	phr, err := cfg.PHRDuration()
	if err != nil {
		return nil, err
	}
	pay, err := cfg.PayloadDuration(airtime.InitPayloadBytes)
	if err != nil {
		return nil, err
	}
	pre, err := cfg.PreambleDuration()
	if err != nil {
		return nil, err
	}
	sfd, err := cfg.SFDDuration()
	if err != nil {
		return nil, err
	}
	minD, err := airtime.MinResponseDelay(cfg, airtime.InitPayloadBytes)
	if err != nil {
		return nil, err
	}
	resp, err := airtime.ResponseDelay(cfg, airtime.InitPayloadBytes, airtime.DefaultTurnaround)
	if err != nil {
		return nil, err
	}
	return &Sec3DelayResult{
		PHRDuration:      phr,
		PayloadDuration:  pay,
		PreambleDuration: pre,
		SFDDuration:      sfd,
		MinResponseDelay: minD,
		ResponseDelay:    resp,
		Turnaround:       airtime.DefaultTurnaround,
	}, nil
}

// Render formats the budget.
func (r *Sec3DelayResult) Render() string {
	t := &Table{
		Title:  "Sect. III — response delay budget (6.8 Mbps, PRF 64, PSR 128)",
		Header: []string{"component", "duration [µs]"},
		Rows: [][]string{
			{"INIT PHR", fmtF(r.PHRDuration*1e6, 2)},
			{"INIT payload", fmtF(r.PayloadDuration*1e6, 2)},
			{"RESP preamble", fmtF(r.PreambleDuration*1e6, 2)},
			{"RESP SFD", fmtF(r.SFDDuration*1e6, 2)},
			{"minimum Δ_RESP", fmtF(r.MinResponseDelay*1e6, 1)},
			{"turnaround bound", fmtF(r.Turnaround*1e6, 1)},
			{"chosen Δ_RESP", fmtF(r.ResponseDelay*1e6, 1)},
		},
	}
	return t.String()
}

// Sec3MessagesResult reproduces the message-count and energy scaling of
// Sects. I and III: N·(N−1) scheduled messages versus N concurrent ones.
type Sec3MessagesResult struct {
	// N holds the network sizes.
	N []int
	// Scheduled and Concurrent are the total message counts.
	Scheduled, Concurrent []int
	// ScheduledEnergy and ConcurrentEnergy are network radio energies in
	// millijoules.
	ScheduledEnergy, ConcurrentEnergy []float64
	// InitiatorScheduledEnergy and InitiatorConcurrentEnergy are the
	// initiator-side energies in millijoules.
	InitiatorScheduledEnergy, InitiatorConcurrentEnergy []float64
}

// Sec3Messages sweeps the network size.
func Sec3Messages(sizes []int) (*Sec3MessagesResult, error) {
	if len(sizes) == 0 {
		sizes = []int{2, 3, 5, 10, 20, 50}
	}
	cfg := paperPHY()
	pm := airtime.DefaultPowerModel()
	res := &Sec3MessagesResult{N: sizes}
	for _, n := range sizes {
		sched, err := airtime.ScheduledTWRCost(cfg, pm, n)
		if err != nil {
			return nil, err
		}
		conc, err := airtime.ConcurrentCost(cfg, pm, n)
		if err != nil {
			return nil, err
		}
		res.Scheduled = append(res.Scheduled, sched.Messages)
		res.Concurrent = append(res.Concurrent, conc.Messages)
		res.ScheduledEnergy = append(res.ScheduledEnergy, sched.NetworkEnergy*1e3)
		res.ConcurrentEnergy = append(res.ConcurrentEnergy, conc.NetworkEnergy*1e3)
		res.InitiatorScheduledEnergy = append(res.InitiatorScheduledEnergy, sched.InitiatorEnergy*1e3)
		res.InitiatorConcurrentEnergy = append(res.InitiatorConcurrentEnergy, conc.InitiatorEnergy*1e3)
	}
	return res, nil
}

// Render formats the sweep.
func (r *Sec3MessagesResult) Render() string {
	t := &Table{
		Title: "Sect. III — scheduled N·(N−1) vs concurrent N",
		Header: []string{"N", "msgs sched", "msgs conc", "net mJ sched", "net mJ conc",
			"init mJ sched", "init mJ conc"},
	}
	for i, n := range r.N {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprint(r.Scheduled[i]),
			fmt.Sprint(r.Concurrent[i]),
			fmtF(r.ScheduledEnergy[i], 3),
			fmtF(r.ConcurrentEnergy[i], 3),
			fmtF(r.InitiatorScheduledEnergy[i], 3),
			fmtF(r.InitiatorConcurrentEnergy[i], 3),
		})
	}
	return t.String()
}
