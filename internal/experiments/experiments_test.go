package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	out := tbl.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "long-header") {
		t.Fatalf("rendering missing parts:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestSparkline(t *testing.T) {
	s := Series{Y: []float64{0, 0, 1, 0, 0}}
	line := s.Sparkline(5)
	if len([]rune(line)) != 5 {
		t.Fatalf("width %d", len(line))
	}
	if !strings.Contains(line, "@") {
		t.Fatalf("peak not rendered: %q", line)
	}
	if (&Series{}).Sparkline(5) != "" {
		t.Fatal("empty series must render empty")
	}
}

func TestFig1MultipathResolution(t *testing.T) {
	r, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Paths) != 5 {
		t.Fatalf("%d paths, want LOS + 4 reflections", len(r.Paths))
	}
	// The paper's claim: at 900 MHz all five arrivals are resolvable; at
	// 50 MHz they merge into one or two humps.
	if r.ResolvablePeaksWide != 5 {
		t.Fatalf("wideband resolves %d peaks, want 5", r.ResolvablePeaksWide)
	}
	if r.ResolvablePeaksNarrow >= r.ResolvablePeaksWide {
		t.Fatalf("narrowband (%d) must resolve fewer peaks than wideband (%d)",
			r.ResolvablePeaksNarrow, r.ResolvablePeaksWide)
	}
	if r.ResolvablePeaksNarrow > 2 {
		t.Fatalf("narrowband resolves %d peaks, expected heavy overlap", r.ResolvablePeaksNarrow)
	}
	if !strings.Contains(r.Render(), "resolvable") {
		t.Fatal("render incomplete")
	}
}

func TestFig2CIRShape(t *testing.T) {
	r, err := Fig2(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.LOSIndex != 12 {
		t.Fatalf("LOS at %d", r.LOSIndex)
	}
	if len(r.MPCIndexes) < 2 {
		t.Fatalf("only %d MPCs visible, want a multipath-rich CIR", len(r.MPCIndexes))
	}
	// LOS is the global maximum (normalized to 1).
	if math.Abs(r.Magnitude[r.LOSIndex]-1) > 1e-9 {
		t.Fatalf("LOS magnitude %g", r.Magnitude[r.LOSIndex])
	}
	for _, idx := range r.MPCIndexes {
		if idx <= r.LOSIndex {
			t.Fatalf("MPC at %d not after LOS", idx)
		}
	}
}

func TestSec3DelayPaperNumbers(t *testing.T) {
	r, err := Sec3Delay()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.MinResponseDelay-178.5e-6) > 0.5e-6 {
		t.Fatalf("minimum delay %g µs, want 178.5", r.MinResponseDelay*1e6)
	}
	if r.ResponseDelay != 290e-6 {
		t.Fatalf("chosen delay %g µs, want 290", r.ResponseDelay*1e6)
	}
}

func TestSec3MessagesScaling(t *testing.T) {
	r, err := Sec3Messages([]int{2, 10, 50})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range r.N {
		if r.Scheduled[i] != n*(n-1) || r.Concurrent[i] != n {
			t.Fatalf("n=%d: %d vs %d", n, r.Scheduled[i], r.Concurrent[i])
		}
		if n > 2 && r.ConcurrentEnergy[i] >= r.ScheduledEnergy[i] {
			t.Fatalf("n=%d: concurrent energy not lower", n)
		}
	}
}

func TestFig4RecoversDistances(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo experiment skipped in -short mode")
	}
	r, err := Fig4(Fig4Config{Trials: 12, Seed: 3, IdealTransceiver: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 6, 10}
	for i, w := range want {
		if r.PerResponderRate[i] < 0.9 {
			t.Fatalf("responder %d detected only %.0f%%", i, 100*r.PerResponderRate[i])
		}
		if math.Abs(r.MeanDistance[i]-w) > 0.1 {
			t.Fatalf("responder %d: mean %g, want %g", i, r.MeanDistance[i], w)
		}
		if r.StdDistance[i] > 0.1 {
			t.Fatalf("responder %d: std %g", i, r.StdDistance[i])
		}
	}
	if len(r.DetectedDelays) < 3 {
		t.Fatalf("first-round delays %v", r.DetectedDelays)
	}
}

func TestFig5ShapeWidths(t *testing.T) {
	r, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Shapes) != 4 {
		t.Fatalf("%d shapes", len(r.Shapes))
	}
	for i := 1; i < len(r.Durations); i++ {
		if r.Durations[i] <= r.Durations[i-1] {
			t.Fatal("durations not increasing")
		}
		if r.Bandwidths[i] >= r.Bandwidths[i-1] {
			t.Fatal("bandwidths not decreasing")
		}
	}
}

func TestSec5PrecisionBallpark(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo experiment skipped in -short mode")
	}
	r, err := Sec5(Sec5Config{Trials: 600, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// All shapes range with a few centimeters of σ; the widest pulse may
	// not be more than ~50% worse than the default — the paper's
	// "negligible impact" claim.
	for i, sigma := range r.Sigma {
		if sigma < 0.015 || sigma > 0.04 {
			t.Fatalf("shape %d: σ %g outside the paper's centimeter regime", i, sigma)
		}
		if math.Abs(r.MeanError[i]) > 0.01 {
			t.Fatalf("shape %d: bias %g", i, r.MeanError[i])
		}
	}
	if r.Sigma[2] > 1.5*r.Sigma[0] {
		t.Fatalf("σ3/σ1 = %g, want the mild degradation of the paper", r.Sigma[2]/r.Sigma[0])
	}
}

func TestFig6Identification(t *testing.T) {
	r, err := Fig6(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Identified) != 2 {
		t.Fatalf("%d responses", len(r.Identified))
	}
	if r.Identified[0] != 0 || r.Identified[1] != 2 {
		t.Fatalf("identified %v, want [0 2] (s1, s3)", r.Identified)
	}
	if len(r.MatchedFilters) != 3 {
		t.Fatalf("%d matched filters", len(r.MatchedFilters))
	}
}

func TestTable1HighIdentificationRates(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo experiment skipped in -short mode")
	}
	r, err := Table1(Table1Config{Trials: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range r.Distances {
		if r.RateS2[i] < 95 {
			t.Fatalf("s2 at %g m: %.1f%%, want ≥95%% (paper: ≥99.2%%)", d, r.RateS2[i])
		}
		if r.RateS3[i] < 95 {
			t.Fatalf("s3 at %g m: %.1f%%, want ≥95%%", d, r.RateS3[i])
		}
	}
}

func TestSec6OverlapComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo experiment skipped in -short mode")
	}
	r, err := Sec6(Sec6Config{Trials: 150, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if r.OverlappingTrials < 100 {
		t.Fatalf("only %d overlapping trials", r.OverlappingTrials)
	}
	// The paper's shape: search-and-subtract (92.6%) far ahead of the
	// threshold baseline (48%).
	if r.SearchSubtractRate < 0.85 {
		t.Fatalf("search-and-subtract %.1f%%, want ≥85%%", 100*r.SearchSubtractRate)
	}
	if r.ThresholdRate > 0.8 || r.ThresholdRate < 0.2 {
		t.Fatalf("threshold %.1f%%, want mid-range like the paper's 48%%", 100*r.ThresholdRate)
	}
	if r.SearchSubtractRate <= r.ThresholdRate {
		t.Fatal("search-and-subtract must beat the baseline")
	}
}

func TestSec7PaperSlotCounts(t *testing.T) {
	r, err := Sec7([]float64{75, 20})
	if err != nil {
		t.Fatal(err)
	}
	if r.Slots[0] != 4 {
		t.Fatalf("r_max 75 m: %d slots, want 4", r.Slots[0])
	}
	if r.Slots[1] != 15 {
		t.Fatalf("r_max 20 m: %d slots, want 15", r.Slots[1])
	}
	if math.Abs(r.MaxOffsetDistance-305) > 3 {
		t.Fatalf("δ_max·c = %g m, want ~305 (paper ≈307)", r.MaxOffsetDistance)
	}
}

func TestFig8CombinedScheme(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo experiment skipped in -short mode")
	}
	r, err := Fig8(Fig8Config{Trials: 8, Seed: 10, IdealTransceiver: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Capacity != 12 || r.Slots != 4 || r.Shapes != 3 {
		t.Fatalf("layout %d slots × %d shapes = %d", r.Slots, r.Shapes, r.Capacity)
	}
	if r.IdentificationRate < 0.9 {
		t.Fatalf("identification %.1f%%", 100*r.IdentificationRate)
	}
	if r.MeanAbsError > 0.3 {
		t.Fatalf("mean |error| %g m with ideal transceiver", r.MeanAbsError)
	}
}

func TestSec8Headline(t *testing.T) {
	r, err := Sec8()
	if err != nil {
		t.Fatal(err)
	}
	if r.HeadlineResponders <= 1500 {
		t.Fatalf("headline capacity %d, want >1500", r.HeadlineResponders)
	}
	if r.HeadlineInitiatorOps != 2 {
		t.Fatalf("initiator ops %d", r.HeadlineInitiatorOps)
	}
	if r.HeadlineScheduledOps != 2*r.HeadlineResponders {
		t.Fatalf("scheduled ops %d, want %d", r.HeadlineScheduledOps, 2*r.HeadlineResponders)
	}
}

func TestAblationQuantizationPenalty(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo experiment skipped in -short mode")
	}
	r, err := AblationQuantization(25, 12)
	if err != nil {
		t.Fatal(err)
	}
	// The 8 ns truncation must dominate the CIR-derived distance error —
	// the Sect. III limitation.
	if r.WithQuantizationRMSE < 3*r.IdealRMSE {
		t.Fatalf("quantized RMSE %g vs ideal %g: penalty too small",
			r.WithQuantizationRMSE, r.IdealRMSE)
	}
	if r.IdealRMSE > 0.05 {
		t.Fatalf("ideal-transceiver RMSE %g, want centimeter-level", r.IdealRMSE)
	}
}

func TestAblationUpsampleMonotoneOrFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo experiment skipped in -short mode")
	}
	r, err := AblationUpsample(60, 11)
	if err != nil {
		t.Fatal(err)
	}
	// The T_s-domain peak refinement makes detection nearly independent
	// of the up-sampling factor; every factor must stay in the high-
	// success regime.
	for i, rate := range r.SuccessRate {
		if rate < 0.8 {
			t.Fatalf("factor %d: %.1f%%", r.Factors[i], 100*rate)
		}
	}
}

func TestAblationThresholdTradeOff(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo experiment skipped in -short mode")
	}
	r, err := AblationThreshold(20, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Higher thresholds must not increase phantom detections.
	for i := 1; i < len(r.Factors); i++ {
		if r.MeanExtra[i] > r.MeanExtra[i-1]+0.5 {
			t.Fatalf("extra detections grew with threshold: %v", r.MeanExtra)
		}
	}
	// The default factor 6 keeps every responder.
	if r.MissRate[2] > 0.2 {
		t.Fatalf("default threshold misses %.0f%% of trials", 100*r.MissRate[2])
	}
}

func TestAblationRefinementDoesNotRegress(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo experiment skipped in -short mode")
	}
	r, err := AblationRefinement(40, 31)
	if err != nil {
		t.Fatal(err)
	}
	// The sub-sample refinement must match or beat the grid estimator on
	// relative-delay accuracy (both sit on the ~150 ps responder-
	// timestamp-jitter floor; the grid adds its 72 ps quantization).
	if r.RefinedDelayRMSE > r.GridDelayRMSE {
		t.Fatalf("refined RMSE %g ps worse than grid %g ps", r.RefinedDelayRMSE, r.GridDelayRMSE)
	}
	if r.RefinedPhantoms > r.GridPhantoms {
		t.Fatalf("refinement added phantoms: %g vs %g", r.RefinedPhantoms, r.GridPhantoms)
	}
}

func TestAblationSlotPlanLeakage(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo experiment skipped in -short mode")
	}
	r, err := AblationSlotPlan(8, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Narrow deployments identify nearly everyone under either plan.
	if r.PaperRate[0] < 0.9 || r.SafeRate[0] < 0.85 {
		t.Fatalf("narrow spread rates %v / %v", r.PaperRate[0], r.SafeRate[0])
	}
	// At the widest spread the paper plan leaks across slot boundaries
	// (it ignores the round-trip factor 2); the safe plan holds up.
	last := len(r.Spreads) - 1
	if r.PaperRate[last] >= r.SafeRate[last] {
		t.Fatalf("expected paper-plan leakage at %g m spread: paper %v safe %v",
			r.Spreads[last], r.PaperRate[last], r.SafeRate[last])
	}
}

func TestCampaignMeasuredAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo experiment skipped in -short mode")
	}
	r, err := Campaign([]int{4, 8}, 77)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range r.N {
		if r.ScheduledMessages[i] != n*(n-1) || r.ConcurrentMessages[i] != n {
			t.Fatalf("n=%d: messages %d/%d", n, r.ScheduledMessages[i], r.ConcurrentMessages[i])
		}
		// The measured latency and energy advantages grow with N.
		if r.ConcurrentDuration[i] >= r.ScheduledDuration[i]/2 {
			t.Fatalf("n=%d: latency %g vs %g", n, r.ConcurrentDuration[i], r.ScheduledDuration[i])
		}
		if r.ConcurrentEnergy[i] >= r.ScheduledEnergy[i] {
			t.Fatalf("n=%d: energy %g vs %g", n, r.ConcurrentEnergy[i], r.ScheduledEnergy[i])
		}
	}
}

func TestCaptureSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo experiment skipped in -short mode")
	}
	r, err := Capture(15, 81)
	if err != nil {
		t.Fatal(err)
	}
	// A single responder always decodes in both geometries.
	if r.GradedRate[0] != 1 || r.EqualRate[0] != 1 {
		t.Fatalf("single responder decode %v / %v", r.GradedRate[0], r.EqualRate[0])
	}
	last := len(r.Responders) - 1
	// Nine equal-power responders defeat the capture model; the graded
	// geometry (closest responder dominates) survives longer.
	if r.EqualRate[last] > 0.2 {
		t.Fatalf("equal-power decode at N=9: %v", r.EqualRate[last])
	}
	if r.GradedRate[last] <= r.EqualRate[last] {
		t.Fatalf("graded (%v) not better than equal (%v)", r.GradedRate[last], r.EqualRate[last])
	}
}
