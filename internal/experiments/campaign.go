package experiments

import (
	"fmt"

	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/geom"
	"github.com/uwb-sim/concurrent-ranging/internal/sim"
)

// CampaignResult extends the analytic Sect. III message-count comparison
// with *measured* protocol runs: both the scheduled SS-TWR baseline and
// the concurrent round are executed on the event-driven simulator and
// their realized latency, air time, and radio energy tallied.
type CampaignResult struct {
	// N holds the evaluated network sizes (initiator + N−1 responders).
	N []int
	// ScheduledDuration and ConcurrentDuration are the measured virtual
	// times to complete a full campaign, seconds.
	ScheduledDuration, ConcurrentDuration []float64
	// ScheduledEnergy and ConcurrentEnergy are the summed radio energies
	// in millijoules.
	ScheduledEnergy, ConcurrentEnergy []float64
	// ScheduledMessages and ConcurrentMessages are the realized frame
	// counts.
	ScheduledMessages, ConcurrentMessages []int
}

// Campaign measures both protocols for a range of network sizes. Note the
// scheduled baseline measures *all pairs* (the paper's N·(N−1) framing)
// while the concurrent round measures the initiator's N−1 distances; for
// the initiator-centric cost the comparison is conservative.
func Campaign(sizes []int, seed uint64) (*CampaignResult, error) {
	if len(sizes) == 0 {
		sizes = []int{3, 5, 8, 12}
	}
	res := &CampaignResult{N: sizes}
	// Each network size runs two full campaigns (scheduled + concurrent);
	// meter them as campaign units so progress still moves.
	m := newMeter(2 * len(sizes))
	defer m.finish()
	for _, n := range sizes {
		build := func(s uint64) (*sim.Network, []*sim.Node, error) {
			net, err := sim.NewNetwork(sim.NetworkConfig{
				Environment: channel.Hallway(),
				Seed:        s,
			})
			if err != nil {
				return nil, nil, err
			}
			instrumentNetwork(net)
			var nodes []*sim.Node
			for i := 0; i < n; i++ {
				id := i - 1 // node 0 is the initiator (ID -1)
				node, err := net.AddNode(sim.NodeConfig{
					ID:  id,
					Pos: geom.Point{X: 1 + 2*float64(i), Y: 0.9},
				})
				if err != nil {
					return nil, nil, err
				}
				nodes = append(nodes, node)
			}
			return net, nodes, nil
		}
		netA, nodesA, err := build(seed + uint64(n))
		if err != nil {
			return nil, err
		}
		var sched *sim.CampaignResult
		if err := m.timeTrial(func() error {
			sched, err = netA.RunScheduledCampaign(nodesA, 0, nil)
			return err
		}); err != nil {
			return nil, err
		}
		netB, nodesB, err := build(seed + uint64(n))
		if err != nil {
			return nil, err
		}
		var conc *sim.CampaignResult
		if err := m.timeTrial(func() error {
			conc, _, err = netB.RunConcurrentCampaign(nodesB[0], nodesB[1:], sim.RoundConfig{})
			return err
		}); err != nil {
			return nil, err
		}
		res.ScheduledDuration = append(res.ScheduledDuration, sched.Duration)
		res.ConcurrentDuration = append(res.ConcurrentDuration, conc.Duration)
		res.ScheduledEnergy = append(res.ScheduledEnergy, sched.RadioEnergy*1e3)
		res.ConcurrentEnergy = append(res.ConcurrentEnergy, conc.RadioEnergy*1e3)
		res.ScheduledMessages = append(res.ScheduledMessages, sched.Messages)
		res.ConcurrentMessages = append(res.ConcurrentMessages, conc.Messages)
	}
	return res, nil
}

// Render formats the comparison.
func (r *CampaignResult) Render() string {
	t := &Table{
		Title: "Measured protocol campaigns — scheduled SS-TWR vs one concurrent round",
		Header: []string{"N", "msgs sched/conc", "latency sched [ms]", "latency conc [ms]",
			"energy sched [mJ]", "energy conc [mJ]"},
	}
	for i, n := range r.N {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%d / %d", r.ScheduledMessages[i], r.ConcurrentMessages[i]),
			fmtF(r.ScheduledDuration[i]*1e3, 2),
			fmtF(r.ConcurrentDuration[i]*1e3, 2),
			fmtF(r.ScheduledEnergy[i], 3),
			fmtF(r.ConcurrentEnergy[i], 3),
		})
	}
	return t.String()
}
