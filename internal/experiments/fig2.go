package experiments

import (
	"fmt"
	"math/rand/v2"

	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/geom"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

// Fig2Result reproduces Fig. 2: an estimated CIR from the DW1000 in an
// indoor (office) environment showing the LOS component τ₀ and several
// significant multipath reflections.
type Fig2Result struct {
	// Magnitude is the normalized |CIR| per accumulator tap.
	Magnitude []float64
	// SampleInterval is the tap spacing in seconds.
	SampleInterval float64
	// LOSIndex is the tap of the line-of-sight component.
	LOSIndex int
	// MPCIndexes are the taps of detected significant reflections
	// (τ₁, τ₂, …).
	MPCIndexes []int
}

// Fig2 renders one office CIR at the given seed.
func Fig2(seed uint64) (*Fig2Result, error) {
	env := channel.Office()
	rng := rand.New(rand.NewPCG(seed, 2))
	radio, err := dw1000.New("fig2-rx", dw1000.Config{PHY: paperPHY()}, rng)
	if err != nil {
		return nil, err
	}
	taps, err := env.Realize(geom.Point{X: 2, Y: 3}, geom.Point{X: 7, Y: 5.5}, rng)
	if err != nil {
		return nil, err
	}
	shape, err := pulse.ForRegister(pulse.DefaultRegister)
	if err != nil {
		return nil, err
	}
	rec, err := radio.Receive([]dw1000.Arrival{{
		SourceID: "fig2-tx", TXTime: 0, Shape: shape, Taps: taps,
	}})
	if err != nil {
		return nil, err
	}
	mag := rec.CIR.Magnitude()
	peak := mag[dsp.ArgMax(mag)]
	dsp.ScaleReal(mag, 1/peak)
	res := &Fig2Result{
		Magnitude:      mag,
		SampleInterval: rec.CIR.SampleInterval,
		LOSIndex:       dw1000.ReferenceIndex,
	}
	// Significant reflections: prominent local maxima after the LOS.
	for _, p := range dsp.LocalMaxima(mag, 0.12) {
		if p.Index > res.LOSIndex+2 {
			res.MPCIndexes = append(res.MPCIndexes, p.Index)
		}
	}
	return res, nil
}

// Render formats the CIR and the marked components.
func (r *Fig2Result) Render() string {
	s := Series{Name: "CIR", Y: r.Magnitude[:200]}
	out := "== Fig. 2 — estimated CIR in an indoor environment ==\n"
	out += fmt.Sprintf("|%s|\n", s.Sparkline(100))
	out += fmt.Sprintf("tau_0 (LOS) at tap %d; %d significant MPCs at taps %v\n",
		r.LOSIndex, len(r.MPCIndexes), r.MPCIndexes)
	return out
}
