package sim

import "fmt"

// TraceEvent is one observable step of a simulated protocol exchange,
// emitted through Network.OnEvent for debugging and the crsim -trace
// timeline.
type TraceEvent struct {
	// Time is the virtual time of the event in seconds.
	Time float64
	// Node names the acting node.
	Node string
	// Kind classifies the event (EventTXInit, EventRXInit, …).
	Kind string
	// Detail is a human-readable elaboration.
	Detail string
}

// Trace event kinds.
const (
	EventTXInit      = "tx-init"
	EventRXInit      = "rx-init"
	EventTXResponse  = "tx-resp"
	EventRXAggregate = "rx-aggregate"
	EventDecode      = "decode"
)

// String formats the event as a timeline line.
func (e TraceEvent) String() string {
	return fmt.Sprintf("%12.3f µs  %-10s %-12s %s", e.Time*1e6, e.Node, e.Kind, e.Detail)
}

// SetTracer installs a callback that receives every protocol event. A nil
// tracer disables tracing. The callback runs synchronously on the
// simulation goroutine and must not call back into the network.
func (n *Network) SetTracer(fn func(TraceEvent)) { n.trace = fn }

// emit sends an event to the tracer, if any.
func (n *Network) emit(time float64, node, kind, detailFormat string, args ...any) {
	if n.trace == nil {
		return
	}
	n.trace(TraceEvent{
		Time:   time,
		Node:   node,
		Kind:   kind,
		Detail: fmt.Sprintf(detailFormat, args...),
	})
}
