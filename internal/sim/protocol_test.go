package sim

import (
	"math"
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/geom"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

func closeTo(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// hallwayNetwork builds the Fig. 4 deployment: an initiator at x=2 m and
// responders at 3, 6 and 10 m down a corridor.
func hallwayNetwork(t *testing.T, seed uint64) (*Network, *Node, []*Node) {
	t.Helper()
	net, err := NewNetwork(NetworkConfig{Environment: channel.Hallway(), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	init, err := net.AddNode(NodeConfig{ID: -1, Name: "initiator", Pos: geom.Point{X: 2, Y: 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	var resps []*Node
	for i, d := range []float64{3, 6, 10} {
		r, err := net.AddNode(NodeConfig{ID: i, Pos: geom.Point{X: 2 + d, Y: 0.9}})
		if err != nil {
			t.Fatal(err)
		}
		resps = append(resps, r)
	}
	return net, init, resps
}

func TestNewNetworkDefaults(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if net.Environment().Name != "office" {
		t.Fatalf("default environment %q", net.Environment().Name)
	}
	if net.PHY() != (NetworkConfig{}.PHY) && net.PHY().PreambleSymbols != 128 {
		t.Fatalf("default PHY %+v", net.PHY())
	}
}

func TestRandomClockPhaseKeepsRNGStreamStable(t *testing.T) {
	// The same seed must produce the same node radios (noise streams)
	// whether or not random phases are on.
	build := func(random bool) *Node {
		net, _ := NewNetwork(NetworkConfig{Seed: 42, RandomClockPhase: random})
		n, _ := net.AddNode(NodeConfig{ID: 0, Pos: geom.Point{X: 1, Y: 1}})
		return n
	}
	a := build(false)
	b := build(true)
	if a.Radio.Clock().Phase == b.Radio.Clock().Phase {
		t.Fatal("random phase had no effect")
	}
	if b.Radio.Clock().Phase < 0 || b.Radio.Clock().Phase >= 1 {
		t.Fatalf("phase %g outside [0,1)", b.Radio.Clock().Phase)
	}
}

func TestRunTWRExchangeAccuracy(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{Environment: channel.Office(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := net.AddNode(NodeConfig{ID: -1, Name: "init", Pos: geom.Point{X: 1, Y: 1}})
	b, _ := net.AddNode(NodeConfig{ID: 0, Name: "resp", Pos: geom.Point{X: 4, Y: 1}})
	var stats dsp.Running
	for i := 0; i < 50; i++ {
		d, err := net.RunTWRExchange(a, b, 290e-6, nil)
		if err != nil {
			t.Fatal(err)
		}
		stats.Add(d - 3)
	}
	// cm-level accuracy, per the paper's Sect. V measurements.
	if math.Abs(stats.Mean()) > 0.05 {
		t.Fatalf("TWR bias %g m", stats.Mean())
	}
	if stats.StdDev() > 0.06 {
		t.Fatalf("TWR σ %g m", stats.StdDev())
	}
}

func TestConcurrentRoundFig4Distances(t *testing.T) {
	// The full Fig. 4 pipeline with TX quantization disabled (the paper's
	// idealized illustration): three responders at 3/6/10 m are detected
	// and ranged to within centimeters.
	net, init, resps := hallwayNetwork(t, 11)
	bank, err := pulse.NewBank(dw1000.SampleInterval, pulse.RegisterS1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.RunConcurrentRound(init, resps, RoundConfig{
		Bank:                  bank,
		DisableTXQuantization: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DecodedID != 0 {
		t.Fatalf("decoded responder %d, want the closest (0)", res.DecodedID)
	}
	dTWR := res.TWRDistance()
	if !closeTo(dTWR, 3, 0.05) {
		t.Fatalf("d_TWR = %g, want 3 ± 0.05", dTWR)
	}
	det, err := core.NewDetector(bank, core.DetectorConfig{MaxResponses: 3})
	if err != nil {
		t.Fatal(err)
	}
	responses, err := det.Detect(res.Reception.CIR.Taps, res.Reception.CIR.NoiseRMS)
	if err != nil {
		t.Fatal(err)
	}
	if len(responses) != 3 {
		t.Fatalf("detected %d responses, want 3", len(responses))
	}
	resolver := &core.Resolver{Plan: core.SingleSlot(1)}
	ms, err := resolver.Resolve(responses, 0, dTWR)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 6, 10}
	if len(ms) != 3 {
		t.Fatalf("%d measurements", len(ms))
	}
	for i, m := range ms {
		if !closeTo(m.Distance, want[i], 0.15) {
			t.Fatalf("responder %d: distance %g, want %g ± 0.15", i, m.Distance, want[i])
		}
	}
}

func TestConcurrentRoundTXQuantizationError(t *testing.T) {
	net, init, resps := hallwayNetwork(t, 13)
	res, err := net.RunConcurrentRound(init, resps, RoundConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var nonzero int
	for id, e := range res.TXQuantizationError {
		if e < 0 || e >= dw1000.DelayedTXGranularity {
			t.Fatalf("responder %d: quantization error %g outside [0, 8 ns)", id, e)
		}
		if e > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("no responder shows TX quantization (statistically impossible)")
	}
	// With quantization disabled all errors are exactly zero.
	net2, init2, resps2 := hallwayNetwork(t, 13)
	res2, err := net2.RunConcurrentRound(init2, resps2, RoundConfig{DisableTXQuantization: true})
	if err != nil {
		t.Fatal(err)
	}
	for id, e := range res2.TXQuantizationError {
		if e != 0 {
			t.Fatalf("responder %d: error %g with quantization disabled", id, e)
		}
	}
}

func TestConcurrentRoundCombinedScheme(t *testing.T) {
	// Nine responders, 4 slots × 3 shapes (Fig. 8), all identified and
	// ranged. Quantization disabled to assert tight distances.
	net, err := NewNetwork(NetworkConfig{Environment: channel.Hallway(), Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	init, _ := net.AddNode(NodeConfig{ID: -1, Name: "initiator", Pos: geom.Point{X: 1, Y: 0.9}})
	plan, err := core.NewSlotPlan(75, 3)
	if err != nil {
		t.Fatal(err)
	}
	var resps []*Node
	truth := map[int]float64{}
	for id := 0; id < 9; id++ {
		d := 2.0 + float64(id)*0.9
		r, err := net.AddNode(NodeConfig{ID: id, Pos: geom.Point{X: 1 + d, Y: 0.9}})
		if err != nil {
			t.Fatal(err)
		}
		resps = append(resps, r)
		truth[id] = d
	}
	bank, err := pulse.DefaultBank(dw1000.SampleInterval, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.RunConcurrentRound(init, resps, RoundConfig{
		Plan:                  plan,
		Bank:                  bank,
		DisableTXQuantization: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.NewDetector(bank, core.DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	responses, err := det.Detect(res.Reception.CIR.Taps, res.Reception.CIR.NoiseRMS)
	if err != nil {
		t.Fatal(err)
	}
	resolver := &core.Resolver{Plan: plan}
	ms, err := resolver.Resolve(responses, res.DecodedID, res.TWRDistance())
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]float64{}
	for _, m := range ms {
		found[m.ID] = m.Distance
	}
	for id, want := range truth {
		got, ok := found[id]
		if !ok {
			t.Errorf("responder %d not identified (found %v)", id, found)
			continue
		}
		if !closeTo(got, want, 0.3) {
			t.Errorf("responder %d: distance %g, want %g", id, got, want)
		}
	}
}

func TestConcurrentRoundValidation(t *testing.T) {
	net, init, resps := hallwayNetwork(t, 19)
	if _, err := net.RunConcurrentRound(nil, resps, RoundConfig{}); err == nil {
		t.Error("nil initiator accepted")
	}
	if _, err := net.RunConcurrentRound(init, nil, RoundConfig{}); err == nil {
		t.Error("no responders accepted")
	}
	if _, err := net.RunConcurrentRound(init, resps, RoundConfig{ResponseDelay: 50e-6}); err == nil {
		t.Error("sub-minimum response delay accepted")
	}
	// Responder ID beyond the plan capacity.
	plan, _ := core.NewSlotPlan(75, 1)
	big, _ := net.AddNode(NodeConfig{ID: 99, Pos: geom.Point{X: 5, Y: 1}})
	if _, err := net.RunConcurrentRound(init, []*Node{big}, RoundConfig{Plan: plan}); err == nil {
		t.Error("ID beyond plan capacity accepted")
	}
}

func TestConcurrentRoundDeterminism(t *testing.T) {
	run := func() []complex128 {
		net, init, resps := hallwayNetwork(t, 23)
		res, err := net.RunConcurrentRound(init, resps, RoundConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Reception.CIR.Taps
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("CIR differs at tap %d with identical seeds", i)
		}
	}
}
