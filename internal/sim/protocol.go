package sim

import (
	"fmt"
	"math"

	"github.com/uwb-sim/concurrent-ranging/internal/airtime"
	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/obs/trace"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

// RoundConfig parameterizes one concurrent-ranging round (Fig. 3 right).
type RoundConfig struct {
	// ResponseDelay is Δ_RESP, the common response delay measured between
	// the INIT and RESP RMARKERs in each responder's clock. Zero selects
	// the paper's 290 µs.
	ResponseDelay float64
	// Plan is the RPM × pulse-shaping layout. The zero value selects the
	// anonymous single-slot single-shape scheme.
	Plan core.SlotPlan
	// Bank provides the pulse shapes; it must hold at least
	// Plan.NumShapes shapes. Nil selects a default bank of Plan.NumShapes
	// shapes at the accumulator rate.
	Bank *pulse.Bank
	// DisableTXQuantization models a next-generation transceiver without
	// the 8 ns delayed-TX truncation (Sect. III notes the limitation is
	// hardware-dependent). The default keeps the DW1000 behavior.
	DisableTXQuantization bool
	// InitPayloadBytes and RespPayloadBytes size the frames for timing
	// validation and energy accounting; zero selects the airtime defaults.
	InitPayloadBytes, RespPayloadBytes int
	// Capture optionally models payload-decode failures under concurrent
	// interference. Nil keeps the paper's working assumption that the
	// locked responder's payload always decodes.
	Capture *CaptureModel
	// DriftCompensation lets the initiator correct the decoded
	// responder's turnaround span with its carrier-frequency-offset
	// estimate of that responder's clock rate — the standard SS-TWR
	// drift fix. Without it, crystal offsets bias d_TWR by
	// c·Δ_RESP·e/2 (~4.3 cm per ppm at the paper's 290 µs).
	DriftCompensation bool
}

func (c *RoundConfig) applyDefaults() error {
	if c.ResponseDelay == 0 {
		c.ResponseDelay = airtime.DefaultResponseDelay
	}
	if c.Plan == (core.SlotPlan{}) {
		c.Plan = core.SingleSlot(1)
	}
	if err := c.Plan.Validate(); err != nil {
		return err
	}
	if c.Bank == nil {
		bank, err := pulse.DefaultBank(dw1000.SampleInterval, c.Plan.NumShapes)
		if err != nil {
			return err
		}
		c.Bank = bank
	}
	if c.Bank.Len() < c.Plan.NumShapes {
		return fmt.Errorf("sim: bank has %d shapes, plan needs %d", c.Bank.Len(), c.Plan.NumShapes)
	}
	if c.InitPayloadBytes == 0 {
		c.InitPayloadBytes = airtime.InitPayloadBytes
	}
	if c.RespPayloadBytes == 0 {
		c.RespPayloadBytes = airtime.RespPayloadBytes
	}
	return nil
}

// RespPayload is the content of one RESP frame: the responder's INIT
// receive timestamp and its (pre-calculated) RESP transmit timestamp,
// both in its own clock (Fig. 3).
type RespPayload struct {
	// SourceID is the responder's application-level ID.
	SourceID int
	// RXInit is t_rx,i.
	RXInit dw1000.DeviceTime
	// TXResp is t_tx,i.
	TXResp dw1000.DeviceTime
}

// RoundResult is everything the initiator observes in one round, plus the
// simulation ground truth for evaluation.
type RoundResult struct {
	// InitTXTimestamp is the initiator's t_tx,init.
	InitTXTimestamp dw1000.DeviceTime
	// Reception holds the CIR and the RX timestamp t_rx,init.
	Reception *dw1000.Reception
	// DecodedID is the responder whose payload was decoded (the capture
	// of the earliest-arriving frame the receiver locked to).
	DecodedID int
	// Decoded is that payload. Valid only when DecodeOK is true.
	Decoded RespPayload
	// DecodeOK reports whether the locked payload survived the
	// interference of the other concurrent responses (always true without
	// a capture model).
	DecodeOK bool
	// LockSIRdB is the locked arrival's signal-to-interference ratio.
	LockSIRdB float64
	// ClockRatio is the initiator's CFO-based estimate of the decoded
	// responder's clock rate relative to its own (1 when drift
	// compensation is off).
	ClockRatio float64
	// Shapes records the pulse-shape index each responder transmitted
	// with, keyed by responder ID (ground truth).
	Shapes map[int]int
	// Slots records each responder's RPM slot (ground truth).
	Slots map[int]int
	// TrueDistance is the geometric initiator–responder distance, keyed
	// by responder ID (ground truth).
	TrueDistance map[int]float64
	// TXQuantizationError is the realized TX-instant error of each
	// responder caused by the 8 ns delayed-TX truncation, seconds
	// (ground truth; 0 when quantization is disabled).
	TXQuantizationError map[int]float64
}

// RunConcurrentRound executes one INIT broadcast plus the simultaneous
// RESP replies and returns the initiator's observations. The network's
// event engine drives the exchange; the virtual clock ends after the
// aggregated reception.
func (n *Network) RunConcurrentRound(initiator *Node, responders []*Node, cfg RoundConfig) (round *RoundResult, err error) {
	if initiator == nil {
		return nil, fmt.Errorf("sim: nil initiator")
	}
	if len(responders) == 0 {
		return nil, fmt.Errorf("sim: no responders")
	}
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	minDelay, err := airtime.MinResponseDelay(n.phy, cfg.InitPayloadBytes)
	if err != nil {
		return nil, err
	}
	if cfg.ResponseDelay < minDelay {
		return nil, fmt.Errorf("sim: response delay %g below the %g minimum (Sect. III)",
			cfg.ResponseDelay, minDelay)
	}
	if n.flightActive() {
		sp := n.beginSpan(trace.SpanSimRound, trace.Attrs{
			trace.AttrSeed:     n.seed,
			"responders":       len(responders),
			"response_delay_s": cfg.ResponseDelay,
			trace.AttrCapacity: cfg.Plan.Capacity(),
		})
		defer func() { n.endRoundSpan(sp, round, err) }()
	}

	result := &RoundResult{
		Shapes:              make(map[int]int, len(responders)),
		Slots:               make(map[int]int, len(responders)),
		TrueDistance:        make(map[int]float64, len(responders)),
		TXQuantizationError: make(map[int]float64, len(responders)),
	}
	payloads := make(map[string]RespPayload, len(responders))
	ids := make(map[string]int, len(responders))
	var arrivals []dw1000.Arrival
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}

	t0 := n.Engine.Now() + 10e-6 // radio wake-up before the broadcast
	if err := n.Engine.Schedule(t0, func() {
		result.InitTXTimestamp = initiator.Radio.Now(t0)
		n.countFrame() // one INIT broadcast on the air
		n.emit(t0, initiator.Name, EventTXInit, "broadcast to %d responders", len(responders))
		for _, resp := range responders {
			resp := resp
			taps, err := n.env.Realize(initiator.Pos, resp.Pos, n.rng)
			if err != nil {
				fail(fmt.Errorf("INIT to %s: %w", resp.Name, err))
				return
			}
			rec, err := resp.Radio.Receive([]dw1000.Arrival{{
				SourceID: initiator.Name,
				TXTime:   t0,
				Shape:    initiator.Radio.Shape(),
				Taps:     taps,
			}})
			if err != nil {
				fail(fmt.Errorf("INIT reception at %s: %w", resp.Name, err))
				return
			}
			n.countReception(1)
			if err := n.Engine.Schedule(rec.LockedArrivalTime, func() {
				n.emit(rec.LockedArrivalTime, resp.Name, EventRXInit,
					"timestamp %d", rec.Timestamp)
				n.respondConcurrent(initiator, resp, rec, cfg, result, payloads, ids, &arrivals, fail)
			}); err != nil {
				fail(err)
				return
			}
		}
	}); err != nil {
		return nil, err
	}
	n.Engine.Run()
	if firstErr != nil {
		return nil, firstErr
	}
	rec, err := initiator.Radio.Receive(arrivals)
	if err != nil {
		return nil, fmt.Errorf("aggregated reception: %w", err)
	}
	n.countReception(len(arrivals))
	// Advance the virtual clock past the reception.
	if err := n.Engine.Schedule(rec.LockedArrivalTime, func() {}); err == nil {
		n.Engine.Run()
	}
	result.Reception = rec
	decodedID, ok := ids[rec.LockedSourceID]
	if !ok {
		return nil, fmt.Errorf("sim: locked source %q has no payload", rec.LockedSourceID)
	}
	// The lock instant may precede already-traced later TX events (the
	// first path arrives while later responders are still transmitting);
	// stamp the reception events at the current virtual time to keep the
	// timeline monotone.
	emitTime := math.Max(rec.LockedArrivalTime, n.Engine.Now())
	n.emit(emitTime, initiator.Name, EventRXAggregate,
		"locked to %s among %d arrivals (first path %.3f µs)",
		rec.LockedSourceID, len(arrivals), rec.LockedArrivalTime*1e6)
	result.DecodedID = decodedID
	result.Decoded = payloads[rec.LockedSourceID]
	result.DecodeOK = cfg.Capture.Decode(arrivals, rec.LockedSourceID)
	n.countDecode(result.DecodeOK)
	result.LockSIRdB = SIRdB(arrivals, rec.LockedSourceID)
	n.emit(emitTime, initiator.Name, EventDecode,
		"payload of %s: ok=%v (SIR %.1f dB)", rec.LockedSourceID, result.DecodeOK, result.LockSIRdB)
	result.ClockRatio = 1
	if cfg.DriftCompensation {
		for _, resp := range responders {
			if resp.Name == rec.LockedSourceID {
				result.ClockRatio = initiator.Radio.EstimateClockRatio(resp.Radio.Clock())
				break
			}
		}
	}
	for _, resp := range responders {
		result.TrueDistance[resp.ID] = Distance(initiator, resp)
	}
	return result, nil
}

// respondConcurrent executes one responder's side of the protocol: delayed
// transmission Δ_RESP (+ its RPM slot offset) after the INIT RMARKER, with
// the DW1000 8 ns TX truncation, using its assigned pulse shape.
func (n *Network) respondConcurrent(
	initiator, resp *Node,
	rec *dw1000.Reception,
	cfg RoundConfig,
	result *RoundResult,
	payloads map[string]RespPayload,
	ids map[string]int,
	arrivals *[]dw1000.Arrival,
	fail func(error),
) {
	// Anonymous operation (single slot, single shape — the plain Sect. IV
	// scheme) does not constrain responder IDs; every responder uses slot
	// 0 and the only shape.
	slot, shapeIdx := 0, 0
	if cfg.Plan.Capacity() > 1 {
		var err error
		slot, shapeIdx, err = cfg.Plan.Assign(resp.ID)
		if err != nil {
			fail(fmt.Errorf("responder %s: %w", resp.Name, err))
			return
		}
	}
	shape := cfg.Bank.Shape(shapeIdx)
	if err := resp.Radio.SetPGDelay(shape.Register); err != nil {
		fail(fmt.Errorf("responder %s: %w", resp.Name, err))
		return
	}
	requested := rec.Timestamp.Add(cfg.ResponseDelay + cfg.Plan.ExtraDelay(slot))
	var actual dw1000.DeviceTime
	var simTX float64
	if cfg.DisableTXQuantization {
		actual = requested
		simTX = resp.Radio.Clock().SimSeconds(requested.Seconds())
	} else {
		var err error
		actual, simTX, err = resp.Radio.ScheduleDelayedTX(n.Engine.Now(), requested)
		if err != nil {
			fail(fmt.Errorf("responder %s: %w", resp.Name, err))
			return
		}
	}
	taps, err := n.env.Realize(resp.Pos, initiator.Pos, n.rng)
	if err != nil {
		fail(fmt.Errorf("RESP from %s: %w", resp.Name, err))
		return
	}
	// Emit the TX event at its actual virtual time so traces stay ordered.
	if n.trace != nil {
		quant := requested.Sub(actual)
		if err := n.Engine.Schedule(simTX, func() {
			n.emit(simTX, resp.Name, EventTXResponse,
				"slot %d shape s%d, quantization -%.2f ns", slot, shapeIdx+1, quant*1e9)
		}); err != nil {
			fail(err)
			return
		}
	}
	n.countFrame() // one RESP frame on the air
	*arrivals = append(*arrivals, dw1000.Arrival{
		SourceID: resp.Name,
		TXTime:   simTX,
		Shape:    resp.Radio.Shape(),
		Taps:     taps,
	})
	payloads[resp.Name] = RespPayload{
		SourceID: resp.ID,
		RXInit:   rec.Timestamp,
		TXResp:   actual,
	}
	ids[resp.Name] = resp.ID
	result.Shapes[resp.ID] = shapeIdx
	result.Slots[resp.ID] = slot
	result.TXQuantizationError[resp.ID] = requested.Sub(actual)
}

// TWRDistance computes the Eq. 2 SS-TWR distance to the decoded responder
// from the round's timestamps — the d_TWR anchor of the concurrent scheme.
// When the round ran with drift compensation, the responder's turnaround
// is rescaled by the estimated clock ratio.
func (r *RoundResult) TWRDistance() float64 {
	ratio := r.ClockRatio
	if ratio == 0 {
		ratio = 1
	}
	return core.TWRTimestampsDriftCompensated(r.InitTXTimestamp, r.Reception.Timestamp,
		r.Decoded.RXInit, r.Decoded.TXResp, ratio)
}

// RunTWRExchange performs one classical single-sided two-way ranging
// exchange (Fig. 3 left) between two nodes and returns the estimated
// distance. The responder keeps its currently configured pulse shape when
// bank is nil; otherwise it transmits with the bank's first shape.
func (n *Network) RunTWRExchange(initiator, responder *Node, responseDelay float64, bank *pulse.Bank) (float64, error) {
	if bank == nil {
		var err error
		bank, err = pulse.NewBank(dw1000.SampleInterval, responder.Radio.Config().PGDelay)
		if err != nil {
			return 0, err
		}
	}
	result, err := n.RunConcurrentRound(initiator, []*Node{responder}, RoundConfig{
		ResponseDelay: responseDelay,
		Plan:          core.SingleSlot(1),
		Bank:          bank,
	})
	if err != nil {
		return 0, err
	}
	return result.TWRDistance(), nil
}
