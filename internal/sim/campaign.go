package sim

import (
	"fmt"

	"github.com/uwb-sim/concurrent-ranging/internal/airtime"
	"github.com/uwb-sim/concurrent-ranging/internal/obs/trace"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

// CampaignResult tallies a full network-ranging campaign — either the
// scheduled SS-TWR baseline (one exchange per node pair, Fig. 3 left) or
// a single concurrent round — with *measured* virtual time, not the
// analytic formulas of internal/airtime.
type CampaignResult struct {
	// Distances holds the estimated pairwise distances, keyed by the two
	// node IDs with the smaller first.
	Distances map[[2]int]float64
	// Messages is the number of frames put on the air.
	Messages int
	// Duration is the elapsed virtual time from campaign start to the
	// last reception, seconds.
	Duration float64
	// AirTime is the summed frame on-air time, seconds.
	AirTime float64
	// RadioEnergy is the summed TX+RX energy of all nodes, joules.
	RadioEnergy float64
}

// RunScheduledCampaign measures all pairwise distances with classical
// SS-TWR: one two-message exchange per unordered node pair, serialized on
// the channel with a guard interval — the N·(N−1)-message baseline the
// paper's efficiency argument is built on (the initiator of each exchange
// is the lower-ID node).
func (n *Network) RunScheduledCampaign(nodes []*Node, responseDelay float64, bank *pulse.Bank) (result *CampaignResult, err error) {
	if len(nodes) < 2 {
		return nil, fmt.Errorf("sim: campaign needs at least 2 nodes, got %d", len(nodes))
	}
	if n.flightActive() {
		sp := n.beginSpan(trace.SpanCampaign, trace.Attrs{
			trace.AttrSeed: n.seed,
			"kind":         "scheduled",
			"nodes":        len(nodes),
		})
		prev := n.traceParent
		n.traceParent = sp
		defer func() {
			n.traceParent = prev
			n.endCampaignSpan(sp, result, err)
		}()
	}
	if responseDelay == 0 {
		responseDelay = airtime.DefaultResponseDelay
	}
	initDur, err := n.phy.FrameDuration(airtime.InitPayloadBytes)
	if err != nil {
		return nil, err
	}
	respDur, err := n.phy.FrameDuration(airtime.RespPayloadBytes)
	if err != nil {
		return nil, err
	}
	pm := airtime.DefaultPowerModel()
	res := &CampaignResult{Distances: make(map[[2]int]float64, len(nodes)*(len(nodes)-1)/2)}
	start := n.Engine.Now()
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			d, err := n.RunTWRExchange(nodes[i], nodes[j], responseDelay, bank)
			if err != nil {
				return nil, fmt.Errorf("pair (%s, %s): %w", nodes[i].Name, nodes[j].Name, err)
			}
			res.Distances[[2]int{nodes[i].ID, nodes[j].ID}] = d
			res.Messages += 2
			res.AirTime += initDur + respDur
			// INIT: one TX + one RX; RESP: one TX + one RX.
			res.RadioEnergy += pm.TxEnergy(initDur) + pm.RxEnergy(initDur) +
				pm.TxEnergy(respDur) + pm.RxEnergy(respDur)
		}
	}
	res.Duration = n.Engine.Now() - start
	return res, nil
}

// RunConcurrentCampaign measures the distances from one initiator to all
// other nodes with a single concurrent round and tallies the same cost
// metrics for comparison. The round configuration controls the scheme
// (plan, bank, quantization).
func (n *Network) RunConcurrentCampaign(initiator *Node, responders []*Node, cfg RoundConfig) (result *CampaignResult, round *RoundResult, err error) {
	if n.flightActive() {
		sp := n.beginSpan(trace.SpanCampaign, trace.Attrs{
			trace.AttrSeed: n.seed,
			"kind":         "concurrent",
			"nodes":        1 + len(responders),
		})
		prev := n.traceParent
		n.traceParent = sp
		defer func() {
			n.traceParent = prev
			n.endCampaignSpan(sp, result, err)
		}()
	}
	initDur, err := n.phy.FrameDuration(airtime.InitPayloadBytes)
	if err != nil {
		return nil, nil, err
	}
	respDur, err := n.phy.FrameDuration(airtime.RespPayloadBytes)
	if err != nil {
		return nil, nil, err
	}
	pm := airtime.DefaultPowerModel()
	start := n.Engine.Now()
	round, err = n.RunConcurrentRound(initiator, responders, cfg)
	if err != nil {
		return nil, nil, err
	}
	res := &CampaignResult{
		Distances: make(map[[2]int]float64, len(responders)),
		Messages:  1 + len(responders),
		Duration:  n.Engine.Now() - start,
		// One INIT on the air plus the overlapping RESP window.
		AirTime: initDur + respDur,
	}
	// Initiator: TX INIT + RX aggregate; each responder: RX INIT + TX RESP.
	res.RadioEnergy = pm.TxEnergy(initDur) + pm.RxEnergy(respDur) +
		float64(len(responders))*(pm.RxEnergy(initDur)+pm.TxEnergy(respDur))
	return res, round, nil
}
