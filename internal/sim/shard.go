package sim

import (
	"fmt"
	"math"

	"github.com/uwb-sim/concurrent-ranging/internal/geom"
)

// GridPartition assigns positions in the floor plane to spatial shards: a
// rectangular grid of square cells over a bounding box, row-major. It is
// the sharding coordinator of the parallel engine — every node is owned
// by the shard of its home cell, and ownership never changes during a run
// (a mobile node that walks into a neighboring cell keeps executing on
// its home shard; only the conservative lookahead math cares about actual
// distances).
type GridPartition struct {
	// Origin is the lower-left corner of the grid.
	Origin geom.Point
	// Cell is the square cell side in meters.
	Cell float64
	// Cols and Rows are the grid dimensions.
	Cols, Rows int
}

// NewGridPartition builds a grid covering the axis-aligned bounding box
// [lo, hi] with cells of the given side. The box is grown to a whole
// number of cells; positions outside it clamp to the border cells.
func NewGridPartition(lo, hi geom.Point, cell float64) (GridPartition, error) {
	if cell <= 0 {
		return GridPartition{}, fmt.Errorf("sim: grid cell %g must be positive", cell)
	}
	if hi.X < lo.X || hi.Y < lo.Y {
		return GridPartition{}, fmt.Errorf("sim: inverted grid bounds %v..%v", lo, hi)
	}
	cols := int(math.Ceil((hi.X - lo.X) / cell))
	rows := int(math.Ceil((hi.Y - lo.Y) / cell))
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return GridPartition{Origin: lo, Cell: cell, Cols: cols, Rows: rows}, nil
}

// Shards returns the number of shards (grid cells).
func (g GridPartition) Shards() int { return g.Cols * g.Rows }

// ShardOf maps a position to its owning shard. Positions outside the grid
// clamp to the nearest border cell, so the mapping is total.
func (g GridPartition) ShardOf(p geom.Point) int {
	col := int((p.X - g.Origin.X) / g.Cell)
	row := int((p.Y - g.Origin.Y) / g.Cell)
	if col < 0 {
		col = 0
	}
	if col >= g.Cols {
		col = g.Cols - 1
	}
	if row < 0 {
		row = 0
	}
	if row >= g.Rows {
		row = g.Rows - 1
	}
	return row*g.Cols + col
}
