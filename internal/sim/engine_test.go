package sim

import (
	"testing"
)

func TestEngineRunsInTimeOrder(t *testing.T) {
	var e Engine
	var order []int
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(e.Schedule(3, func() { order = append(order, 3) }))
	must(e.Schedule(1, func() { order = append(order, 1) }))
	must(e.Schedule(2, func() { order = append(order, 2) }))
	if n := e.Run(); n != 3 {
		t.Fatalf("ran %d events", n)
	}
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("order %v", order)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("clock at %g", e.Now())
	}
}

func TestEngineFIFOAmongEqualTimes(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if err := e.Schedule(1, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestEngineEventsScheduleEvents(t *testing.T) {
	var e Engine
	var got []float64
	if err := e.Schedule(1, func() {
		got = append(got, e.Now())
		if err := e.After(0.5, func() { got = append(got, e.Now()) }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 1.5 {
		t.Fatalf("got %v", got)
	}
}

func TestEngineRejectsPastAndNil(t *testing.T) {
	var e Engine
	if err := e.Schedule(1, func() {}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if err := e.Schedule(0.5, func() {}); err == nil {
		t.Fatal("past event accepted")
	}
	if err := e.Schedule(2, nil); err == nil {
		t.Fatal("nil event accepted")
	}
}

func TestEngineRunUntil(t *testing.T) {
	var e Engine
	var count int
	for _, at := range []float64{1, 2, 3, 4} {
		if err := e.Schedule(at, func() { count++ }); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.RunUntil(2.5); n != 2 {
		t.Fatalf("ran %d events", n)
	}
	if e.Now() != 2.5 {
		t.Fatalf("clock at %g, want deadline", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("%d pending", e.Pending())
	}
	e.Run()
	if count != 4 {
		t.Fatalf("total %d events", count)
	}
}
