package sim

import (
	"testing"
)

func TestEngineRunsInTimeOrder(t *testing.T) {
	var e Engine
	var order []int
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(e.Schedule(3, func() { order = append(order, 3) }))
	must(e.Schedule(1, func() { order = append(order, 1) }))
	must(e.Schedule(2, func() { order = append(order, 2) }))
	if n := e.Run(); n != 3 {
		t.Fatalf("ran %d events", n)
	}
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("order %v", order)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("clock at %g", e.Now())
	}
}

func TestEngineFIFOAmongEqualTimes(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if err := e.Schedule(1, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestEngineEventsScheduleEvents(t *testing.T) {
	var e Engine
	var got []float64
	if err := e.Schedule(1, func() {
		got = append(got, e.Now())
		if err := e.After(0.5, func() { got = append(got, e.Now()) }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 1.5 {
		t.Fatalf("got %v", got)
	}
}

func TestEngineRejectsPastAndNil(t *testing.T) {
	var e Engine
	if err := e.Schedule(1, func() {}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if err := e.Schedule(0.5, func() {}); err == nil {
		t.Fatal("past event accepted")
	}
	if err := e.Schedule(2, nil); err == nil {
		t.Fatal("nil event accepted")
	}
}

func TestEngineRunUntil(t *testing.T) {
	var e Engine
	var count int
	for _, at := range []float64{1, 2, 3, 4} {
		if err := e.Schedule(at, func() { count++ }); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.RunUntil(2.5); n != 2 {
		t.Fatalf("ran %d events", n)
	}
	if e.Now() != 2.5 {
		t.Fatalf("clock at %g, want deadline", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("%d pending", e.Pending())
	}
	e.Run()
	if count != 4 {
		t.Fatalf("total %d events", count)
	}
}

// TestEngineRunUntilDeadlineTies pins the deadline-boundary contract:
// events scheduled exactly at the deadline run, equal-time events run in
// scheduling (seq) order — including events they themselves schedule at
// the deadline — and a later RunUntil resumes without re-advancing the
// clock past work that is still pending.
func TestEngineRunUntilDeadlineTies(t *testing.T) {
	var e Engine
	var order []int
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(e.Schedule(2, func() { order = append(order, 0) }))
	must(e.Schedule(2, func() {
		order = append(order, 1)
		// An equal-time event scheduled *at* the deadline from within the
		// deadline must still run in this RunUntil call, after all
		// previously scheduled ties.
		must(e.Schedule(2, func() { order = append(order, 3) }))
	}))
	must(e.Schedule(2, func() { order = append(order, 2) }))
	must(e.Schedule(2.5, func() { order = append(order, 99) }))
	if n := e.RunUntil(2); n != 4 {
		t.Fatalf("ran %d events, want 4 (deadline ties incl. nested)", n)
	}
	for i, want := range []int{0, 1, 2, 3} {
		if order[i] != want {
			t.Fatalf("deadline ties out of seq order: %v", order)
		}
	}
	if e.Now() != 2 {
		t.Fatalf("clock at %g, want 2", e.Now())
	}
	// Resuming with the same deadline is a no-op that must not advance
	// the clock or drop the pending later event.
	if n := e.RunUntil(2); n != 0 {
		t.Fatalf("resumed RunUntil ran %d events, want 0", n)
	}
	if e.Now() != 2 {
		t.Fatalf("resumed RunUntil re-advanced clock to %g", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("%d pending, want 1", e.Pending())
	}
	// An earlier deadline than the current clock runs nothing and never
	// rewinds.
	if n := e.RunUntil(1); n != 0 {
		t.Fatalf("past-deadline RunUntil ran %d events", n)
	}
	if e.Now() != 2 {
		t.Fatalf("past-deadline RunUntil moved clock to %g", e.Now())
	}
	if n := e.RunUntil(3); n != 1 || order[len(order)-1] != 99 {
		t.Fatalf("resume ran %d events, order %v", n, order)
	}
}

// TestEngineScheduleSteadyStateAllocs asserts the value-typed heap
// contract: once the queue has grown to its high-water mark, a
// schedule/run cycle allocates nothing (the old *event-per-Schedule heap
// allocated one node per call).
func TestEngineScheduleSteadyStateAllocs(t *testing.T) {
	var e Engine
	fn := func() {}
	// Warm the backing slice to the high-water mark.
	for i := 0; i < 64; i++ {
		if err := e.After(1, fn); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			if err := e.After(float64(1+i%7), fn); err != nil {
				t.Fatal(err)
			}
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule/run cycle allocates %.1f times, want 0", allocs)
	}
}

// BenchmarkEngineSchedule measures the per-event cost of a steady-state
// schedule/pop cycle through a warm queue.
func BenchmarkEngineSchedule(b *testing.B) {
	var e Engine
	fn := func() {}
	for i := 0; i < 1024; i++ {
		if err := e.After(float64(1+i%31), fn); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.After(1, fn); err != nil {
			b.Fatal(err)
		}
		e.RunUntil(e.Now() + 1) // one push, one pop: a warm steady state
	}
	b.StopTimer()
	e.Run()
}
