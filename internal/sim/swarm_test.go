package sim

import (
	"runtime"
	"testing"
	"time"
)

// boundarySwarmConfig builds a deployment with many shards relative to
// the radio reach, so plenty of pairs sit near (and across) shard
// boundaries — the regime where conservative windowing has to get the
// ordering right.
func boundarySwarmConfig(n int, seed uint64) SwarmConfig {
	return SwarmConfig{
		N:           n,
		Seed:        seed,
		CellSize:    80, // reach = Range + 2·Roam = 50 < 80: adjacent-cell traffic only
		RecordTrace: true,
	}
}

func runSwarmSequential(t *testing.T, cfg SwarmConfig) *SwarmResult {
	t.Helper()
	sw, err := NewSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sw.RunSequential()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSwarmShardedMatchesSequential is the same-seed property test of the
// sharded engine: for worker counts 1, 2 and 8, the sharded run must
// produce byte-identical stats (String() includes float bits via %.17g),
// identical per-shard tallies, the identical canonical trace, and the
// same event count as the sequential reference — including cross-shard
// traffic from near-boundary placements.
func TestSwarmShardedMatchesSequential(t *testing.T) {
	cfg := boundarySwarmConfig(400, 1)
	want := runSwarmSequential(t, cfg)
	if want.Stats.RoundsCompleted == 0 || want.Stats.Resolved == 0 {
		t.Fatalf("degenerate reference run: %+v", want.Stats)
	}
	if want.Stats.CrossShardFrames == 0 {
		t.Fatal("no cross-shard traffic; boundary regime not exercised")
	}
	if len(want.Trace) == 0 {
		t.Fatal("reference trace empty")
	}
	sw, err := NewSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := sw.RunSharded(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Stats != want.Stats {
			t.Errorf("workers=%d: stats\n got %s\nwant %s", workers, got.Stats, want.Stats)
		}
		if got.Stats.String() != want.Stats.String() {
			t.Errorf("workers=%d: stats bytes differ", workers)
		}
		if got.Events != want.Events {
			t.Errorf("workers=%d: %d events, want %d", workers, got.Events, want.Events)
		}
		if len(got.PerShard) != len(want.PerShard) {
			t.Fatalf("workers=%d: %d shards, want %d", workers, len(got.PerShard), len(want.PerShard))
		}
		for i := range want.PerShard {
			if got.PerShard[i] != want.PerShard[i] {
				t.Errorf("workers=%d: shard %d stats differ:\n got %s\nwant %s",
					workers, i, got.PerShard[i], want.PerShard[i])
			}
		}
		if len(got.Trace) != len(want.Trace) {
			t.Fatalf("workers=%d: trace length %d, want %d", workers, len(got.Trace), len(want.Trace))
		}
		for i := range want.Trace {
			if got.Trace[i] != want.Trace[i] {
				t.Fatalf("workers=%d: trace[%d] = %+v, want %+v", workers, i, got.Trace[i], want.Trace[i])
			}
		}
		if got.Windows == 0 {
			t.Errorf("workers=%d: no barrier windows", workers)
		}
	}
}

// TestSwarmSameSeedReproduces pins build+run determinism: two independent
// Swarm builds from the same config produce identical results.
func TestSwarmSameSeedReproduces(t *testing.T) {
	cfg := boundarySwarmConfig(300, 7)
	a := runSwarmSequential(t, cfg)
	b := runSwarmSequential(t, cfg)
	if a.Stats != b.Stats || a.Events != b.Events {
		t.Fatalf("same seed differs:\n a %s (%d events)\n b %s (%d events)",
			a.Stats, a.Events, b.Stats, b.Events)
	}
	c := runSwarmSequential(t, SwarmConfig{N: 300, Seed: 8, CellSize: 80})
	if a.Stats == c.Stats {
		t.Fatal("different seeds produced identical stats")
	}
}

// TestSwarmStatsConsistency checks the protocol bookkeeping invariants on
// a mid-size run.
func TestSwarmStatsConsistency(t *testing.T) {
	res := runSwarmSequential(t, SwarmConfig{N: 500, Seed: 3})
	s := res.Stats
	if s.RoundsStarted == 0 {
		t.Fatal("no rounds started")
	}
	if s.RoundsCompleted != s.RoundsStarted {
		t.Errorf("completed %d of %d rounds", s.RoundsCompleted, s.RoundsStarted)
	}
	// Every response is either resolved or slot-collided, never both.
	if s.Resolved+s.SlotCollisions != s.Responses {
		t.Errorf("resolved %d + collided %d != responses %d", s.Resolved, s.SlotCollisions, s.Responses)
	}
	// One INIT per non-empty round plus one RESP per response.
	if want := (s.RoundsStarted - s.EmptyRounds) + s.Responses; s.Frames != want {
		t.Errorf("frames %d, want %d", s.Frames, want)
	}
	// INIT receptions = responses + busy skips; RESP receptions = responses.
	if want := 2*s.Responses + s.BusySkips; s.Receptions != want {
		t.Errorf("receptions %d, want %d", s.Receptions, want)
	}
	if s.Resolved > 0 {
		// The analytic error model is dominated by the ≤ 8 ns TX
		// truncation: mean |error| must sit at decimeter scale (Sect. VI).
		if err := s.MeanAbsErr(); err <= 0 || err > 2.5 {
			t.Errorf("mean abs ranging error %g m", err)
		}
	}
}

// TestSwarmLookaheadIsProtocolScale checks that the derived lookahead is
// funded by the protocol decision lead (hundreds of microseconds), not by
// the nanosecond-scale flight times — the property that makes windows
// large enough to batch thousands of events.
func TestSwarmLookaheadIsProtocolScale(t *testing.T) {
	sw, err := NewSwarm(boundarySwarmConfig(300, 5))
	if err != nil {
		t.Fatal(err)
	}
	if sw.Lookahead() < 90e-6 {
		t.Fatalf("lookahead %g s, want protocol scale (≥ 90 µs)", sw.Lookahead())
	}
	if sw.Shards() < 4 {
		t.Fatalf("only %d shards; boundary config should give a multi-cell grid", sw.Shards())
	}
}

// TestSwarmShardedSpeedup asserts the headline perf claim — W workers
// ≥ some real speedup over 1 worker at 10k nodes — when the host actually
// has cores to run them. On single-core machines (CI fallback) it only
// checks that the sharded run completes.
func TestSwarmShardedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node swarm in -short mode")
	}
	sw, err := NewSwarm(SwarmConfig{N: 10000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.RunSharded(0); err != nil {
		t.Fatal(err)
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d: speedup assertion needs ≥ 4 cores", runtime.GOMAXPROCS(0))
	}
	t1 := benchSwarm(t, sw, 1)
	tw := benchSwarm(t, sw, runtime.GOMAXPROCS(0))
	if speedup := t1 / tw; speedup < 2 {
		t.Errorf("W=%d speedup %.2fx over W=1, want ≥ 2x", runtime.GOMAXPROCS(0), speedup)
	}
}

func benchSwarm(t *testing.T, sw *Swarm, workers int) float64 {
	t.Helper()
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := sw.RunSharded(workers); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best.Seconds()
}
