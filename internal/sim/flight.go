package sim

import (
	"math"
	"sort"

	"github.com/uwb-sim/concurrent-ranging/internal/obs/trace"
)

// This file wires the network into the decision-level flight recorder
// (internal/obs/trace): protocol rounds and campaigns become spans whose
// attributes carry the trial seed and the simulator-side ground truth
// (RPM slot, pulse-shape index, true distance per responder). It is
// entirely separate from the SetTracer text timeline — that narrates the
// air interface for humans; this one feeds cmd/crtrace.

// SetFlightRecorder attaches the decision-level flight recorder; nil (the
// default) disables it. Recording is observational only — round results
// are bit-identical with and without it. Like SetRecorder it is not
// synchronized: attach before running rounds.
func (n *Network) SetFlightRecorder(tr *trace.Tracer) { n.flight = tr }

// SetTraceParent nests subsequently started round/campaign spans under
// the given span (typically a session.round span). A nil or non-recording
// parent makes rounds open root spans on the flight recorder instead.
func (n *Network) SetTraceParent(sp *trace.Span) { n.traceParent = sp }

// flightActive reports whether starting a span now could record anything.
// An installed but non-recording parent (a sampled-out session round or
// campaign) suppresses nested spans rather than letting them open fresh
// root spans of their own.
func (n *Network) flightActive() bool {
	if n.traceParent != nil {
		return n.traceParent.Recording()
	}
	return n.flight != nil
}

// beginSpan opens a span under the installed parent, or as a root span on
// the flight recorder when no parent is installed. The result may be an
// inert span (sampled-out root); end helpers check Recording.
func (n *Network) beginSpan(name string, attrs trace.Attrs) *trace.Span {
	if n.traceParent != nil {
		return n.traceParent.Begin(name, attrs)
	}
	return n.flight.Begin(name, attrs)
}

// endRoundSpan closes a sim.round span with the round's outcome and the
// simulator-side ground truth.
func (n *Network) endRoundSpan(sp *trace.Span, round *RoundResult, err error) {
	if !sp.Recording() {
		return
	}
	if err != nil {
		sp.EndWith(trace.Attrs{trace.AttrStatus: "error", trace.AttrError: err.Error()})
		return
	}
	attrs := trace.Attrs{
		trace.AttrStatus: "ok",
		"decoded_id":     round.DecodedID,
		"decode_ok":      round.DecodeOK,
		trace.AttrTruth:  roundTruth(round),
	}
	// A single responder has no interferers; SIR is +Inf then, which JSON
	// cannot carry.
	if !math.IsInf(round.LockSIRdB, 0) && !math.IsNaN(round.LockSIRdB) {
		attrs["lock_sir_db"] = round.LockSIRdB
	}
	sp.EndWith(attrs)
}

// endCampaignSpan closes a sim.campaign span with the campaign's cost
// tallies.
func (n *Network) endCampaignSpan(sp *trace.Span, res *CampaignResult, err error) {
	if !sp.Recording() {
		return
	}
	if err != nil {
		sp.EndWith(trace.Attrs{trace.AttrStatus: "error", trace.AttrError: err.Error()})
		return
	}
	sp.EndWith(trace.Attrs{
		trace.AttrStatus: "ok",
		"messages":       res.Messages,
		"duration_s":     res.Duration,
		"air_time_s":     res.AirTime,
		"energy_j":       res.RadioEnergy,
		"distances":      len(res.Distances),
	})
}

// roundTruth flattens a round's ground-truth maps into the canonical
// AttrTruth array, ordered by responder ID for deterministic traces.
func roundTruth(round *RoundResult) []any {
	ids := make([]int, 0, len(round.TrueDistance))
	for id := range round.TrueDistance {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	truth := make([]any, 0, len(ids))
	for _, id := range ids {
		truth = append(truth, map[string]any{
			trace.AttrID:    id,
			trace.AttrSlot:  round.Slots[id],
			trace.AttrShape: round.Shapes[id],
			trace.AttrDistM: round.TrueDistance[id],
		})
	}
	return truth
}
