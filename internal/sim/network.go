package sim

import (
	"fmt"
	"math/rand/v2"

	"github.com/uwb-sim/concurrent-ranging/internal/airtime"
	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/geom"
	"github.com/uwb-sim/concurrent-ranging/internal/obs"
	"github.com/uwb-sim/concurrent-ranging/internal/obs/trace"
)

// Node is one UWB device: an application-level responder ID, a position in
// the floor plane, and a DW1000 radio.
type Node struct {
	// ID is the responder identifier the combined scheme maps to a slot
	// and pulse shape. The initiator conventionally uses -1.
	ID int
	// Name labels the node in traces and radio identifiers.
	Name string
	// Pos is the node position in meters.
	Pos geom.Point
	// Radio is the node's transceiver model.
	Radio *dw1000.Radio
}

// NodeConfig describes a node to be created in a network.
type NodeConfig struct {
	// ID is the application-level responder ID (-1 for the initiator).
	ID int
	// Name labels the node; empty derives "node<ID>".
	Name string
	// Pos is the node position.
	Pos geom.Point
	// ClockOffsetPPM is the crystal frequency error.
	ClockOffsetPPM float64
	// ClockPhase is the device clock reading at simulation time 0.
	// RandomPhase in NetworkConfig overrides this with a random draw.
	ClockPhase float64
	// Radio optionally overrides parts of the radio configuration;
	// zero values inherit the network defaults.
	NoiseRMS float64
	// Jitter optionally overrides the RX timestamp error model.
	Jitter dw1000.JitterModel
}

// NetworkConfig describes the simulated deployment.
type NetworkConfig struct {
	// Environment is the propagation model; nil selects channel.Office().
	Environment *channel.Environment
	// PHY is the radio configuration; the zero value selects the paper's
	// 6.8 Mbps / PRF 64 / PSR 128.
	PHY airtime.Config
	// Seed makes the whole simulation deterministic.
	Seed uint64
	// RandomClockPhase draws each node's clock phase uniformly from
	// [0, 1) s, as unsynchronized devices would have.
	RandomClockPhase bool
}

// Network is a set of nodes sharing an environment, an event engine, and a
// deterministic RNG.
type Network struct {
	Engine *Engine

	env         *channel.Environment
	phy         airtime.Config
	rng         *rand.Rand
	seed        uint64
	nodes       []*Node
	nodeNames   map[string]bool
	randomPhase bool
	trace       func(TraceEvent)
	stats       Stats
	rec         obs.Recorder
	// recSingle/recConcurrent are pre-resolved labeled reception
	// counters (nil unless rec supports labeled series); see
	// MetricReceptionsByKind.
	recSingle     *obs.Counter
	recConcurrent *obs.Counter

	// flight and traceParent feed the decision-level flight recorder
	// (internal/obs/trace); see flight.go. Distinct from the text
	// timeline tracer above.
	flight      *trace.Tracer
	traceParent *trace.Span
}

// NewNetwork builds an empty network.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	env := cfg.Environment
	if env == nil {
		env = channel.Office()
	}
	phy := cfg.PHY
	if phy == (airtime.Config{}) {
		phy = airtime.PaperConfig()
	}
	if err := phy.Validate(); err != nil {
		return nil, err
	}
	return &Network{
		Engine:      &Engine{},
		env:         env,
		phy:         phy,
		rng:         rand.New(rand.NewPCG(cfg.Seed, 0x5eed)),
		seed:        cfg.Seed,
		nodeNames:   make(map[string]bool),
		randomPhase: cfg.RandomClockPhase,
	}, nil
}

// Environment returns the propagation environment.
func (n *Network) Environment() *channel.Environment { return n.env }

// PHY returns the radio configuration shared by all nodes.
func (n *Network) PHY() airtime.Config { return n.phy }

// RNG returns the network's deterministic random source.
func (n *Network) RNG() *rand.Rand { return n.rng }

// Nodes returns the registered nodes in creation order. The caller must
// not modify the returned slice.
func (n *Network) Nodes() []*Node { return n.nodes }

// AddNode creates a node with its own radio and clock. Each node gets an
// independent RNG stream split off the network seed, so adding nodes in a
// different order changes nothing else.
func (n *Network) AddNode(cfg NodeConfig) (*Node, error) {
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("node%d", cfg.ID)
	}
	// The name index keeps AddNode O(1); the old per-add scan over all
	// nodes made building an n-node network O(n²).
	if n.nodeNames[name] {
		return nil, fmt.Errorf("sim: duplicate node name %q", name)
	}
	n.nodeNames[name] = true
	// Draw unconditionally so the RNG stream (and hence every downstream
	// noise sample) is identical whether or not random phases are enabled.
	draw := n.rng.Float64()
	phase := cfg.ClockPhase
	if n.randomPhase && phase == 0 {
		phase = draw
	}
	radioCfg := dw1000.Config{
		PHY:      n.phy,
		NoiseRMS: cfg.NoiseRMS,
		Jitter:   cfg.Jitter,
		Clock:    dw1000.Clock{OffsetPPM: cfg.ClockOffsetPPM, Phase: phase},
	}
	radio, err := dw1000.New(name, radioCfg, rand.New(rand.NewPCG(n.rng.Uint64(), 0xbeef)))
	if err != nil {
		return nil, err
	}
	node := &Node{ID: cfg.ID, Name: name, Pos: cfg.Pos, Radio: radio}
	n.nodes = append(n.nodes, node)
	return node, nil
}

// Distance returns the true distance between two nodes in meters.
func Distance(a, b *Node) float64 { return a.Pos.Dist(b.Pos) }
