package sim

import (
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/geom"
)

// TestGridPartitionShardOfClamping pins the total mapping: positions on
// and beyond every grid border clamp to the nearest border cell, so a
// mobile node that roams outside its deployment box still has an owner.
func TestGridPartitionShardOfClamping(t *testing.T) {
	g, err := NewGridPartition(geom.Point{X: 0, Y: 0}, geom.Point{X: 100, Y: 100}, 25)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cols != 4 || g.Rows != 4 || g.Shards() != 16 {
		t.Fatalf("grid = %dx%d (%d shards), want 4x4", g.Cols, g.Rows, g.Shards())
	}
	cases := []struct {
		name string
		p    geom.Point
		want int
	}{
		{"interior first cell", geom.Point{X: 12.5, Y: 12.5}, 0},
		{"interior last cell", geom.Point{X: 99, Y: 99}, 15},
		{"cell boundary goes to upper cell", geom.Point{X: 25, Y: 0}, 1},
		{"right edge clamps to last column", geom.Point{X: 100, Y: 50}, 2*4 + 3},
		{"top edge clamps to last row", geom.Point{X: 50, Y: 100}, 3*4 + 2},
		{"corner on both borders", geom.Point{X: 100, Y: 100}, 15},
		{"negative x clamps to column 0", geom.Point{X: -5, Y: 60}, 2 * 4},
		{"negative y clamps to row 0", geom.Point{X: 60, Y: -0.001}, 2},
		{"far outside both clamps to origin cell", geom.Point{X: -1e9, Y: -1e9}, 0},
		{"far outside both clamps to far corner", geom.Point{X: 1e9, Y: 1e9}, 15},
		{"mixed overshoot", geom.Point{X: 1e9, Y: -1e9}, 3},
	}
	for _, tc := range cases {
		if got := g.ShardOf(tc.p); got != tc.want {
			t.Errorf("%s: ShardOf(%v) = %d, want %d", tc.name, tc.p, got, tc.want)
		}
	}
}

// TestBusDrainEqualTimeTotalOrder pins the bus injection order as the
// (time, source shard, send seq) total order, with explicit equal-time
// cases: simultaneous messages from different shards order by source,
// and within a source by send sequence — never by arrival order.
func TestBusDrainEqualTimeTotalOrder(t *testing.T) {
	fn := func(Scheduler) {}
	// Arrival order is deliberately shuffled; every message at t=1 is an
	// equal-time case.
	arrivals := []busMessage{
		{at: 1, src: 2, seq: 1, fn: fn},
		{at: 2, src: 0, seq: 3, fn: fn},
		{at: 1, src: 0, seq: 2, fn: fn},
		{at: 1, src: 1, seq: 5, fn: fn},
		{at: 0.5, src: 3, seq: 9, fn: fn},
		{at: 1, src: 0, seq: 1, fn: fn},
		{at: 1, src: 1, seq: 7, fn: fn},
	}
	var b bus
	outbox := append([]busMessage(nil), arrivals...)
	b.collect(&outbox)
	if len(outbox) != 0 {
		t.Fatal("collect did not reset the outbox")
	}
	type key struct {
		at  float64
		src int32
		seq uint64
	}
	var got []key
	b.drain(func(m busMessage) { got = append(got, key{m.at, m.src, m.seq}) })
	want := []key{
		{0.5, 3, 9},
		{1, 0, 1},
		{1, 0, 2},
		{1, 1, 5},
		{1, 1, 7},
		{1, 2, 1},
		{2, 0, 3},
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d messages, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("drain[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if len(b.pending) != 0 {
		t.Fatal("drain did not reset the bus")
	}
}

// TestShardedEqualTimeCrossShardExecution runs the same tie-break
// end-to-end: two shards send to a third at the identical virtual time,
// and the destination must execute them in (source shard, send seq)
// order at every worker count.
func TestShardedEqualTimeCrossShardExecution(t *testing.T) {
	type tag struct{ src, n int }
	for _, workers := range []int{1, 4} {
		se, err := NewShardedEngine(ShardedConfig{Shards: 3, Workers: workers, Lookahead: 1})
		if err != nil {
			t.Fatal(err)
		}
		var order []tag
		// Both source shards emit two sends to shard 2, all at t=1 (the
		// exact window end, the earliest legal cross-shard time).
		for _, src := range []int{0, 1} {
			src := src
			err := se.Schedule(src, 0, func(sc Scheduler) {
				for n := 1; n <= 2; n++ {
					n := n
					if err := sc.Send(2, 1, func(Scheduler) {
						order = append(order, tag{src, n})
					}); err != nil {
						sc.Fail(err)
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if _, err := se.Run(); err != nil {
			t.Fatal(err)
		}
		want := []tag{{0, 1}, {0, 2}, {1, 1}, {1, 2}}
		if len(order) != len(want) {
			t.Fatalf("workers=%d: executed %d events, want %d", workers, len(order), len(want))
		}
		for i := range want {
			if order[i] != want[i] {
				t.Errorf("workers=%d: execution[%d] = %+v, want %+v", workers, i, order[i], want[i])
			}
		}
	}
}
