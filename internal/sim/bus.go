package sim

import "slices"

// busMessage is one cross-shard event in flight: a handler to run on a
// destination shard at a future virtual time. src and seq identify the
// sending shard and its per-run send counter; together with the delivery
// time they define the total order in which the bus injects messages, so
// delivery is independent of which worker finished its window first.
type busMessage struct {
	at  float64
	src int32
	seq uint64
	dst int32
	fn  Handler
}

// bus collects the cross-shard messages emitted during one barrier window
// and injects them into the destination heaps in a deterministic order.
// Within a window each shard appends to its own outbox (no locking); at
// the barrier the single coordinating goroutine drains all outboxes here.
type bus struct {
	pending []busMessage
}

// collect moves a shard outbox into the bus. The outbox slice is reset in
// place so its capacity is reused next window.
func (b *bus) collect(outbox *[]busMessage) {
	b.pending = append(b.pending, *outbox...)
	*outbox = (*outbox)[:0]
}

// drain sorts the collected messages by (time, source shard, send seq) and
// hands them to inject, then resets the bus. The sort key is a total order
// — a source shard never reuses a seq — so injection order, and therefore
// the destination heaps' tie-breaking seq numbers, are identical at any
// worker count.
func (b *bus) drain(inject func(busMessage)) {
	slices.SortFunc(b.pending, func(x, y busMessage) int {
		switch {
		case x.at < y.at:
			return -1
		case x.at > y.at:
			return 1
		case x.src != y.src:
			return int(x.src - y.src)
		case x.seq < y.seq:
			return -1
		case x.seq > y.seq:
			return 1
		}
		return 0
	})
	for _, m := range b.pending {
		inject(m)
	}
	b.pending = b.pending[:0]
}
