package sim

import (
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/obs/trace"
)

func TestConcurrentCampaignSpans(t *testing.T) {
	net, nodes := campaignNetwork(t, 4, 41)
	tr := trace.New(trace.Config{})
	net.SetFlightRecorder(tr)
	_, round, err := net.RunConcurrentCampaign(nodes[0], nodes[1:], RoundConfig{})
	if err != nil {
		t.Fatal(err)
	}

	var campaign, simRound *trace.Event
	evs := tr.Events()
	for i, ev := range evs {
		if ev.Phase != trace.PhaseBegin {
			continue
		}
		switch ev.Name {
		case trace.SpanCampaign:
			campaign = &evs[i]
		case trace.SpanSimRound:
			simRound = &evs[i]
		}
	}
	if campaign == nil || simRound == nil {
		t.Fatalf("missing spans in %d events", len(evs))
	}
	if campaign.Parent != 0 {
		t.Error("campaign span is not a root")
	}
	if campaign.Attrs["kind"] != "concurrent" {
		t.Errorf("campaign kind = %v", campaign.Attrs["kind"])
	}
	if got := campaign.Attrs[trace.AttrSeed]; got != uint64(41) {
		t.Errorf("campaign seed = %v, want 41", got)
	}
	if simRound.Parent != campaign.Span {
		t.Errorf("sim.round parent = %d, want campaign %d", simRound.Parent, campaign.Span)
	}

	// The round's end event carries the ground truth, ordered by ID.
	var roundEnd *trace.Event
	for i, ev := range evs {
		if ev.Phase == trace.PhaseEnd && ev.Span == simRound.Span {
			roundEnd = &evs[i]
		}
	}
	if roundEnd == nil {
		t.Fatal("sim.round never ended")
	}
	truth, ok := roundEnd.Attrs[trace.AttrTruth].([]any)
	if !ok || len(truth) != len(round.TrueDistance) {
		t.Fatalf("round truth = %#v, want %d entries", roundEnd.Attrs[trace.AttrTruth], len(round.TrueDistance))
	}
	for i, entry := range truth {
		m := entry.(map[string]any)
		id := m[trace.AttrID].(int)
		if i > 0 && id <= truth[i-1].(map[string]any)[trace.AttrID].(int) {
			t.Error("truth entries not ordered by responder ID")
		}
		if m[trace.AttrDistM].(float64) != round.TrueDistance[id] {
			t.Errorf("truth distance of %d = %v, want %g", id, m[trace.AttrDistM], round.TrueDistance[id])
		}
	}
}

func TestScheduledCampaignSpanSuppressedWhenSampledOut(t *testing.T) {
	net, nodes := campaignNetwork(t, 3, 7)
	// SampleEvery 2: first campaign records, second is sampled out along
	// with every nested round span.
	tr := trace.New(trace.Config{SampleEvery: 2})
	net.SetFlightRecorder(tr)
	if _, err := net.RunScheduledCampaign(nodes, 0, nil); err != nil {
		t.Fatal(err)
	}
	recorded := tr.Stats().Events
	if recorded == 0 {
		t.Fatal("first campaign recorded nothing")
	}
	if _, err := net.RunScheduledCampaign(nodes, 0, nil); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Events != recorded {
		t.Errorf("sampled-out campaign emitted %d events", st.Events-recorded)
	}
	if st.RootSpans != 2 || st.SampledOut != 1 {
		t.Errorf("stats = %+v, want 2 roots with 1 sampled out", st)
	}
}
