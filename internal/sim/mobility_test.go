package sim

import (
	"math/rand/v2"
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/geom"
)

func TestTrackStaysInRoamDisk(t *testing.T) {
	home := geom.Point{X: 100, Y: 50}
	cfg := MobilityConfig{RoamRadius: 10, MinSpeed: 0.5, MaxSpeed: 1.5, Pause: 0.2}
	tr := NewTrack(home, cfg, rand.New(rand.NewPCG(1, 2)), 600)
	for i := 0; i <= 6000; i++ {
		ts := float64(i) * 0.1
		p := tr.Pos(ts)
		if d := p.Dist(home); d > cfg.RoamRadius+1e-9 {
			t.Fatalf("t=%g: %g m from home, roam radius %g", ts, d, cfg.RoamRadius)
		}
	}
}

func TestTrackContinuityAndSpeed(t *testing.T) {
	cfg := MobilityConfig{RoamRadius: 10, MinSpeed: 0.5, MaxSpeed: 1.5}
	tr := NewTrack(geom.Point{}, cfg, rand.New(rand.NewPCG(3, 4)), 300)
	const dt = 0.01
	prev := tr.Pos(0)
	for i := 1; i <= 30000; i++ {
		p := tr.Pos(float64(i) * dt)
		if v := p.Dist(prev) / dt; v > cfg.MaxSpeed*1.01 {
			t.Fatalf("t=%g: speed %g m/s exceeds max %g", float64(i)*dt, v, cfg.MaxSpeed)
		}
		prev = p
	}
}

func TestTrackDeterministicAndClamped(t *testing.T) {
	home := geom.Point{X: 1, Y: 2}
	cfg := MobilityConfig{RoamRadius: 5, MaxSpeed: 1}
	a := NewTrack(home, cfg, rand.New(rand.NewPCG(9, 9)), 100)
	b := NewTrack(home, cfg, rand.New(rand.NewPCG(9, 9)), 100)
	for _, ts := range []float64{-1, 0, 33.3, 99.9, 100, 1e6} {
		if a.Pos(ts) != b.Pos(ts) {
			t.Fatalf("t=%g: same-seed tracks differ", ts)
		}
	}
	if a.Pos(-5) != a.Pos(0) {
		t.Error("pre-horizon position not clamped to start")
	}
	if a.Pos(1e6) != a.Pos(1e5) {
		t.Error("post-horizon position not clamped to end")
	}
	// Static configs pin the node to home.
	st := NewTrack(home, MobilityConfig{}, rand.New(rand.NewPCG(1, 1)), 100)
	if st.Pos(42) != home {
		t.Error("static track moved")
	}
	if st.Home() != home {
		t.Error("home mismatch")
	}
}
