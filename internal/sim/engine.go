// Package sim provides a discrete-event simulation of a UWB network: an
// event engine with a virtual clock, nodes that combine a position with a
// DW1000 radio model, and the ranging protocols of the paper — scheduled
// single-sided two-way ranging (Fig. 3 left) and concurrent ranging with
// response position modulation and pulse shaping (Fig. 3 right,
// Sects. III–VIII).
package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled simulation action.
type event struct {
	at  float64
	seq int // tie-breaker: FIFO among equal times, keeps runs deterministic
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event executor with a virtual clock.
// The zero value is ready to use.
type Engine struct {
	now    float64
	seq    int
	events eventHeap
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn at the given absolute virtual time. Scheduling in the
// past (before Now) is rejected.
func (e *Engine) Schedule(at float64, fn func()) error {
	if at < e.now {
		return fmt.Errorf("sim: schedule at %g before now %g", at, e.now)
	}
	if fn == nil {
		return fmt.Errorf("sim: nil event function")
	}
	e.seq++
	heap.Push(&e.events, &event{at: at, seq: e.seq, fn: fn})
	return nil
}

// After schedules fn delay seconds from now.
func (e *Engine) After(delay float64, fn func()) error {
	return e.Schedule(e.now+delay, fn)
}

// Run executes events in time order until the queue drains, advancing the
// virtual clock. Events may schedule further events. It returns the number
// of events executed.
func (e *Engine) Run() int {
	n := 0
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		ev.fn()
		n++
	}
	return n
}

// RunUntil executes events up to and including virtual time deadline and
// leaves later events queued. The clock ends at the deadline or the last
// executed event, whichever is later.
func (e *Engine) RunUntil(deadline float64) int {
	n := 0
	for e.events.Len() > 0 && e.events[0].at <= deadline {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		ev.fn()
		n++
	}
	if e.now < deadline {
		e.now = deadline
	}
	return n
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.events.Len() }
