// Package sim provides a discrete-event simulation of a UWB network: an
// event engine with a virtual clock, nodes that combine a position with a
// DW1000 radio model, and the ranging protocols of the paper — scheduled
// single-sided two-way ranging (Fig. 3 left) and concurrent ranging with
// response position modulation and pulse shaping (Fig. 3 right,
// Sects. III–VIII). For city-scale swarms the package also provides a
// spatially sharded parallel engine (ShardedEngine) that is bit-identical
// to the sequential Engine at any worker count.
package sim

import (
	"fmt"
)

// event is a scheduled simulation action. The payload type is generic so
// the sequential Engine (plain func()) and the sharded engine's per-shard
// heaps (handlers taking a scheduler context) share one queue
// implementation.
type event[F any] struct {
	at  float64
	seq uint64 // tie-breaker: FIFO among equal times, keeps runs deterministic
	fn  F
}

// eventQueue is a binary min-heap of events ordered by (at, seq), stored
// by value in one backing slice: pushing moves events within the slice
// instead of allocating a node per Schedule, so steady-state scheduling
// allocates nothing once the slice has grown to the high-water mark.
type eventQueue[F any] struct {
	ev []event[F]
}

// Len returns the number of queued events.
func (q *eventQueue[F]) Len() int { return len(q.ev) }

// peekAt returns the earliest queued time; call only when Len() > 0.
func (q *eventQueue[F]) peekAt() float64 { return q.ev[0].at }

func (q *eventQueue[F]) less(i, j int) bool {
	if q.ev[i].at != q.ev[j].at {
		return q.ev[i].at < q.ev[j].at
	}
	return q.ev[i].seq < q.ev[j].seq
}

// push inserts an event and restores the heap order.
func (q *eventQueue[F]) push(e event[F]) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.ev[i], q.ev[parent] = q.ev[parent], q.ev[i]
		i = parent
	}
}

// pop removes and returns the earliest event; call only when Len() > 0.
// The vacated slot is zeroed so the queue does not retain the popped
// closure.
func (q *eventQueue[F]) pop() event[F] {
	top := q.ev[0]
	n := len(q.ev) - 1
	q.ev[0] = q.ev[n]
	var zero event[F]
	q.ev[n] = zero
	q.ev = q.ev[:n]
	// Sift the relocated tail element down to its place.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.ev[i], q.ev[smallest] = q.ev[smallest], q.ev[i]
		i = smallest
	}
	return top
}

// Engine is a deterministic discrete-event executor with a virtual clock.
// The zero value is ready to use.
type Engine struct {
	now float64
	seq uint64
	q   eventQueue[func()]
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn at the given absolute virtual time. Scheduling in the
// past (before Now) is rejected.
func (e *Engine) Schedule(at float64, fn func()) error {
	if at < e.now {
		return fmt.Errorf("sim: schedule at %g before now %g", at, e.now)
	}
	if fn == nil {
		return fmt.Errorf("sim: nil event function")
	}
	e.seq++
	e.q.push(event[func()]{at: at, seq: e.seq, fn: fn})
	return nil
}

// After schedules fn delay seconds from now.
func (e *Engine) After(delay float64, fn func()) error {
	return e.Schedule(e.now+delay, fn)
}

// Run executes events in time order until the queue drains, advancing the
// virtual clock. Events may schedule further events. It returns the number
// of events executed.
func (e *Engine) Run() int {
	n := 0
	for e.q.Len() > 0 {
		ev := e.q.pop()
		e.now = ev.at
		ev.fn()
		n++
	}
	return n
}

// RunUntil executes events up to and including virtual time deadline and
// leaves later events queued. Events scheduled exactly at the deadline run
// (in scheduling order among equal times), including any they themselves
// schedule at the deadline. The clock ends at the deadline or the last
// executed event, whichever is later; a later RunUntil call with the same
// deadline resumes without re-advancing the clock.
func (e *Engine) RunUntil(deadline float64) int {
	n := 0
	for e.q.Len() > 0 && e.q.peekAt() <= deadline {
		ev := e.q.pop()
		e.now = ev.at
		ev.fn()
		n++
	}
	if e.now < deadline {
		e.now = deadline
	}
	return n
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.q.Len() }
