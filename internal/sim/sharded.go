package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Handler is a sharded simulation event. It receives the Scheduler of the
// shard it runs on, which it uses to read the clock and to schedule
// follow-up work locally or on other shards.
type Handler func(Scheduler)

// Scheduler is the per-shard view a Handler executes against. On the
// ShardedEngine each shard has its own Scheduler running on a worker
// goroutine; the SequentialRunner provides the same interface over the
// single-goroutine Engine so one workload can run on either and produce
// bit-identical results.
type Scheduler interface {
	// Now returns the shard's current virtual time in seconds.
	Now() float64
	// Shard returns the index of the shard this handler runs on.
	Shard() int
	// Schedule runs fn on this shard at the given absolute virtual time.
	// Scheduling before Now is rejected.
	Schedule(at float64, fn Handler) error
	// Send runs fn on the destination shard at the given absolute virtual
	// time. On the ShardedEngine a cross-shard send must respect the
	// conservative lookahead: at must be at least the end of the current
	// barrier window. Sends to the handler's own shard are plain Schedules
	// with no lookahead requirement.
	Send(shard int, at float64, fn Handler) error
	// Fail records err as the run's failure; the first failure (lowest
	// shard, earliest call) wins and Run returns it after the current
	// window. Handlers use it to surface errors from inside event code.
	Fail(err error)
}

// Runner drives a Handler workload to completion: seed events onto shards,
// then run until the event queues drain. Implemented by ShardedEngine and
// SequentialRunner.
type Runner interface {
	// Shards returns the number of shards.
	Shards() int
	// Schedule enqueues a seed event on a shard. Valid only before Run.
	Schedule(shard int, at float64, fn Handler) error
	// Run executes events until no queue has work left, and returns the
	// number of events executed and the first failure, if any.
	Run() (int, error)
}

// ShardedConfig configures a ShardedEngine.
type ShardedConfig struct {
	// Shards is the number of spatial shards (event heaps).
	Shards int
	// Workers is the number of worker goroutines executing shard windows.
	// 0 selects GOMAXPROCS. Results are bit-identical at any value.
	Workers int
	// Lookahead is the conservative window length in seconds: a handler
	// executing at time t may affect another shard no earlier than the end
	// of the barrier window containing t, which is at most t + Lookahead
	// away. Must be positive; the workload derives it from its minimum
	// cross-shard decision lead plus the minimum cross-shard flight time.
	Lookahead float64
}

// shard is one spatial partition of a ShardedEngine: its own event heap,
// clock, seq counter and outbox, owned by exactly one worker at a time.
type shard struct {
	eng *ShardedEngine
	id  int

	now      float64
	seq      uint64
	q        eventQueue[Handler]
	outbox   []busMessage
	sendSeq  uint64
	executed int
}

// ShardedEngine runs a spatially sharded discrete-event simulation in
// parallel while producing results bit-identical to the sequential Engine
// at any worker count. Time advances in conservative barrier windows
// [start, start+Lookahead): within a window every shard executes its own
// events independently (no shard can affect another inside the window,
// because cross-shard sends must target times at or beyond the window
// end); at the barrier the cross-shard bus sorts and injects the emitted
// messages, and the next window starts at the new global minimum event
// time.
type ShardedEngine struct {
	shards    []shard
	sched     []shardScheduler
	workers   int
	lookahead float64

	windowEnd float64 // exclusive upper bound of the window in flight
	windows   int
	running   bool

	mu     sync.Mutex
	err    error
	failed atomic.Bool // mirrors err != nil for lock-free mid-window checks
	bus    bus

	// prof, when non-nil, observes the run (per-window/shard/worker wall
	// timings). Profiling is observational only — results are bit-identical
	// with and without it — and nil costs one pointer check per site.
	prof *EngineProfiler
}

// shardScheduler is the Scheduler handed to handlers on one shard. It is a
// separate tiny struct (not a method set on shard) so the interface value
// is built once at engine construction instead of on every event.
type shardScheduler struct {
	sh *shard
}

// NewShardedEngine builds an engine with the given sharding configuration.
func NewShardedEngine(cfg ShardedConfig) (*ShardedEngine, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("sim: sharded engine needs at least 1 shard, got %d", cfg.Shards)
	}
	if !(cfg.Lookahead > 0) {
		return nil, fmt.Errorf("sim: sharded engine lookahead %g must be positive", cfg.Lookahead)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	se := &ShardedEngine{
		shards:    make([]shard, cfg.Shards),
		sched:     make([]shardScheduler, cfg.Shards),
		workers:   workers,
		lookahead: cfg.Lookahead,
	}
	for i := range se.shards {
		se.shards[i] = shard{eng: se, id: i}
		se.sched[i] = shardScheduler{sh: &se.shards[i]}
	}
	return se, nil
}

// Shards returns the number of shards.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Workers returns the worker pool size.
func (se *ShardedEngine) Workers() int { return se.workers }

// Windows returns the number of barrier windows executed so far.
func (se *ShardedEngine) Windows() int { return se.windows }

// Lookahead returns the conservative window length in seconds.
func (se *ShardedEngine) Lookahead() float64 { return se.lookahead }

// SetProfiler attaches (or, with nil, detaches) an execution profiler.
// Call before Run; attaching resets the profiler for this engine's shape.
func (se *ShardedEngine) SetProfiler(p *EngineProfiler) {
	se.prof = p
	if p != nil {
		p.attach(len(se.shards), se.workers)
	}
}

// Schedule enqueues a seed event on a shard before the run starts.
func (se *ShardedEngine) Schedule(shardID int, at float64, fn Handler) error {
	if se.running {
		return fmt.Errorf("sim: ShardedEngine.Schedule during run; handlers must use their Scheduler")
	}
	if shardID < 0 || shardID >= len(se.shards) {
		return fmt.Errorf("sim: schedule on shard %d of %d", shardID, len(se.shards))
	}
	return se.shards[shardID].schedule(at, fn)
}

// fail records the first failure and stops the run at the next event
// boundary. Which of several concurrent failures is recorded depends on
// worker timing; bit-identical results are guaranteed for successful runs
// only, a failed run just reports one of its errors.
func (se *ShardedEngine) fail(err error) {
	if err == nil {
		return
	}
	se.mu.Lock()
	if se.err == nil {
		se.err = err
	}
	se.mu.Unlock()
	se.failed.Store(true)
}

// runErr returns the first failure recorded by fail, if any. Run reads it
// between barrier windows, after the worker pool has joined, but the
// happens-before edge still comes from se.mu, not the join.
func (se *ShardedEngine) runErr() error {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.err
}

// Run executes barrier windows until every shard's queue is empty or a
// failure is recorded. It returns the total number of events executed and
// the failure, if any.
func (se *ShardedEngine) Run() (int, error) {
	se.running = true
	defer func() { se.running = false }()
	for se.runErr() == nil {
		// Window start: the global minimum pending event time.
		start := math.Inf(1)
		for i := range se.shards {
			if q := &se.shards[i].q; q.Len() > 0 && q.peekAt() < start {
				start = q.peekAt()
			}
		}
		if math.IsInf(start, 1) {
			break
		}
		end := start + se.lookahead
		se.windowEnd = end
		if se.prof != nil {
			se.prof.beginWindow(se.windows, start, end)
		}
		se.runWindow(end)
		se.windows++
		if se.prof != nil {
			se.prof.execDone()
		}
		// Barrier: collect outboxes in shard order and inject the window's
		// cross-shard messages in (time, src, seq) order.
		drained := 0
		for i := range se.shards {
			if se.prof != nil {
				se.prof.shardOutbox(i, len(se.shards[i].outbox))
			}
			drained += len(se.shards[i].outbox)
			se.bus.collect(&se.shards[i].outbox)
		}
		se.bus.drain(func(m busMessage) {
			if err := se.shards[m.dst].schedule(m.at, m.fn); err != nil {
				se.fail(err)
			}
		})
		if se.prof != nil {
			se.prof.endWindow(drained)
		}
	}
	total := 0
	for i := range se.shards {
		total += se.shards[i].executed
	}
	return total, se.runErr()
}

// runWindow executes every active shard's events in [its current head,
// end) across the worker pool. Shards are claimed via an atomic cursor;
// which worker runs which shard is scheduling noise — each shard's events
// run single-threaded in (time, seq) order, and nothing a shard does in
// this window is visible to another shard before the barrier.
func (se *ShardedEngine) runWindow(end float64) {
	active := make([]*shard, 0, len(se.shards))
	for i := range se.shards {
		if q := &se.shards[i].q; q.Len() > 0 && q.peekAt() < end {
			active = append(active, &se.shards[i])
		}
	}
	workers := se.workers
	if workers > len(active) {
		workers = len(active)
	}
	prof := se.prof
	if prof != nil {
		prof.windowWorkers(len(active), workers)
	}
	if workers <= 1 {
		for _, sh := range active {
			if prof != nil {
				prof.runShard(0, sh, end)
			} else {
				sh.runWindow(end)
			}
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(active) {
					return
				}
				if prof != nil {
					prof.runShard(w, active[i], end)
				} else {
					active[i].runWindow(end)
				}
			}
		}(w)
	}
	wg.Wait()
}

// schedule pushes an event onto the shard heap with the shard-local seq as
// the tie-breaker.
func (sh *shard) schedule(at float64, fn Handler) error {
	if at < sh.now {
		return fmt.Errorf("sim: schedule at %g before now %g", at, sh.now)
	}
	if fn == nil {
		return fmt.Errorf("sim: nil event function")
	}
	sh.seq++
	sh.q.push(event[Handler]{at: at, seq: sh.seq, fn: fn})
	if p := sh.eng.prof; p != nil {
		if n := sh.q.Len(); n > p.shards[sh.id].heapHW {
			p.shards[sh.id].heapHW = n
		}
	}
	return nil
}

// runWindow executes the shard's events strictly before end. A handler
// panic is converted into a run failure so one bad event does not tear
// down the process from a worker goroutine.
func (sh *shard) runWindow(end float64) {
	defer func() {
		if r := recover(); r != nil {
			sh.eng.fail(fmt.Errorf("sim: shard %d event panic: %v", sh.id, r))
		}
	}()
	sc := sh.eng.sched[sh.id]
	for sh.q.Len() > 0 && sh.q.peekAt() < end {
		ev := sh.q.pop()
		sh.now = ev.at
		ev.fn(sc)
		sh.executed++
		if sh.eng.failed.Load() {
			return
		}
	}
}

// Now returns the shard's current virtual time.
func (s shardScheduler) Now() float64 { return s.sh.now }

// Shard returns the shard index.
func (s shardScheduler) Shard() int { return s.sh.id }

// Schedule runs fn on this shard at the given absolute virtual time.
func (s shardScheduler) Schedule(at float64, fn Handler) error {
	return s.sh.schedule(at, fn)
}

// Send delivers fn to another shard through the bus. The conservative
// contract is enforced here: the delivery time must not precede the end
// of the barrier window in flight, or the destination shard could already
// have advanced past it.
func (s shardScheduler) Send(shardID int, at float64, fn Handler) error {
	sh := s.sh
	if shardID == sh.id {
		return sh.schedule(at, fn)
	}
	eng := sh.eng
	if shardID < 0 || shardID >= len(eng.shards) {
		return fmt.Errorf("sim: send to shard %d of %d", shardID, len(eng.shards))
	}
	if fn == nil {
		return fmt.Errorf("sim: nil event function")
	}
	if at < eng.windowEnd {
		return fmt.Errorf("sim: cross-shard send at %g violates lookahead window end %g (lookahead %g)",
			at, eng.windowEnd, eng.lookahead)
	}
	sh.sendSeq++
	sh.outbox = append(sh.outbox, busMessage{
		at: at, src: int32(sh.id), seq: sh.sendSeq, dst: int32(shardID), fn: fn,
	})
	return nil
}

// Fail records err as the run's failure.
func (s shardScheduler) Fail(err error) { s.sh.eng.fail(err) }

// SequentialRunner runs a sharded Handler workload on the single-goroutine
// Engine: one global (time, seq) heap, shards existing only as labels on
// the Scheduler contexts. It is the reference the ShardedEngine must match
// bit for bit, and the engine used when parallelism is not wanted.
type SequentialRunner struct {
	eng    Engine
	ctx    []seqScheduler
	shards int
	err    error
}

// seqScheduler adapts the sequential Engine to the Scheduler interface for
// one shard label.
type seqScheduler struct {
	r  *SequentialRunner
	id int
}

// NewSequentialRunner builds a sequential runner with the given number of
// shard labels.
func NewSequentialRunner(shards int) (*SequentialRunner, error) {
	if shards < 1 {
		return nil, fmt.Errorf("sim: sequential runner needs at least 1 shard, got %d", shards)
	}
	r := &SequentialRunner{ctx: make([]seqScheduler, shards), shards: shards}
	for i := range r.ctx {
		r.ctx[i] = seqScheduler{r: r, id: i}
	}
	return r, nil
}

// Shards returns the number of shard labels.
func (r *SequentialRunner) Shards() int { return r.shards }

// Schedule enqueues a seed event on a shard label.
func (r *SequentialRunner) Schedule(shardID int, at float64, fn Handler) error {
	if shardID < 0 || shardID >= r.shards {
		return fmt.Errorf("sim: schedule on shard %d of %d", shardID, r.shards)
	}
	if fn == nil {
		return fmt.Errorf("sim: nil event function")
	}
	ctx := r.ctx[shardID]
	return r.eng.Schedule(at, func() { fn(ctx) })
}

// Run executes all events in global time order and returns the count and
// the first recorded failure.
func (r *SequentialRunner) Run() (int, error) {
	n := 0
	for r.err == nil && r.eng.Pending() > 0 {
		n += r.eng.RunUntil(r.eng.q.peekAt())
	}
	return n, r.err
}

// Now returns the global virtual time.
func (s seqScheduler) Now() float64 { return s.r.eng.Now() }

// Shard returns the shard label.
func (s seqScheduler) Shard() int { return s.id }

// Schedule runs fn on this shard label at the given absolute time.
func (s seqScheduler) Schedule(at float64, fn Handler) error {
	return s.r.Schedule(s.id, at, fn)
}

// Send runs fn on another shard label; sequentially this is an ordinary
// Schedule, with no lookahead constraint to enforce.
func (s seqScheduler) Send(shardID int, at float64, fn Handler) error {
	return s.r.Schedule(shardID, at, fn)
}

// Fail records err as the run's failure; the first call wins.
func (s seqScheduler) Fail(err error) {
	if err != nil && s.r.err == nil {
		s.r.err = err
	}
}
