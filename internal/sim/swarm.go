package sim

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"

	"github.com/uwb-sim/concurrent-ranging/internal/airtime"
	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/geom"
	"github.com/uwb-sim/concurrent-ranging/internal/obs"
	"github.com/uwb-sim/concurrent-ranging/internal/obs/trace"
)

// Metric names the swarm simulation records through a Recorder.
const (
	// MetricSwarmEvents counts discrete events executed by a swarm run.
	MetricSwarmEvents = "sim.swarm_events"
	// MetricSwarmRounds counts completed concurrent-ranging rounds.
	MetricSwarmRounds = "sim.swarm_rounds"
	// MetricSwarmFrames counts frames on the air (INIT + RESP).
	MetricSwarmFrames = "sim.swarm_frames"
	// MetricSwarmCrossShard counts receptions whose transmitter lives on a
	// different shard than the receiver — the traffic that crosses the bus.
	MetricSwarmCrossShard = "sim.swarm_cross_shard_frames"
	// MetricSwarmResponsesByOutcome is the labeled response tally:
	// {outcome="resolved"}, {outcome="slot_collision"}, {outcome="busy"}.
	// Recorded only when the Recorder supports labeled series.
	MetricSwarmResponsesByOutcome = "sim.swarm_responses_by_outcome"
	// MetricSwarmRoundsLive and MetricSwarmResponsesLive are the live
	// in-run mirrors of the round/response tallies, recorded per event
	// through handles SetRecorder pre-resolves once (never a label-tuple
	// lookup on the hot path). They exist so crtop can watch a swarm run
	// in flight; being wall-time-class (_live), StripWallTime drops them
	// and the post-run Record tallies stay the determinism-checked truth.
	MetricSwarmRoundsLive    = "sim.swarm_rounds" + obs.LiveMetricSuffix
	MetricSwarmResponsesLive = "sim.swarm_responses" + obs.LiveMetricSuffix
)

// SwarmConfig describes a city-scale concurrent-ranging swarm: N nodes
// uniformly deployed at a given density, every InitiatorEvery-th node
// periodically running the paper's concurrent ranging round against the
// responders in radio range, with response position modulation assigning
// slots and pulse shapes by responder ID (Sect. VIII).
type SwarmConfig struct {
	// N is the total number of nodes. Must be positive.
	N int
	// InitiatorEvery makes every k-th node an initiator (default 10).
	InitiatorEvery int
	// Density is the deployment density in nodes/m² (default 0.004,
	// roughly one node per 16×16 m city block).
	Density float64
	// Range is the radio range in meters (default 30).
	Range float64
	// RoundPeriod is the per-initiator ranging period in seconds
	// (default 50 ms).
	RoundPeriod float64
	// Duration is the simulated horizon in seconds (default 200 ms).
	Duration float64
	// ResponseDelay is Δ_RESP (default airtime.DefaultResponseDelay).
	ResponseDelay float64
	// DecisionLead is how far ahead of its INIT transmission an initiator
	// commits to the round (default 100 µs). Together with ResponseDelay
	// it bounds the conservative lookahead: every cross-shard message is
	// emitted at least min(DecisionLead, ResponseDelay−TX granularity)
	// before its delivery time.
	DecisionLead float64
	// Plan is the slot/shape plan; the zero value selects
	// core.NewSafeSlotPlan(Range, 4).
	Plan core.SlotPlan
	// Mobility configures the per-node waypoint walks; the zero value
	// selects 10 m roam at 0.5–1.5 m/s.
	Mobility MobilityConfig
	// NoMobility pins all nodes to their homes (overrides Mobility).
	NoMobility bool
	// CellSize is the shard grid cell in meters; 0 derives a cell that
	// keeps most traffic shard-local (≥ 2·(Range+2·RoamRadius)).
	CellSize float64
	// Seed drives every random draw.
	Seed uint64
	// RecordTrace keeps the canonical event trace (for tests; costs
	// memory proportional to the event count).
	RecordTrace bool
}

// withDefaults returns the config with zero fields replaced by defaults.
func (c SwarmConfig) withDefaults() (SwarmConfig, error) {
	if c.N < 1 {
		return c, fmt.Errorf("sim: swarm needs at least 1 node, got %d", c.N)
	}
	if c.InitiatorEvery <= 0 {
		c.InitiatorEvery = 10
	}
	if c.Density <= 0 {
		c.Density = 0.004
	}
	if c.Range <= 0 {
		c.Range = 30
	}
	if c.RoundPeriod <= 0 {
		c.RoundPeriod = 50e-3
	}
	if c.Duration <= 0 {
		c.Duration = 200e-3
	}
	if c.ResponseDelay <= 0 {
		c.ResponseDelay = airtime.DefaultResponseDelay
	}
	if c.DecisionLead <= 0 {
		c.DecisionLead = 100e-6
	}
	if c.ResponseDelay <= dw1000.DelayedTXGranularity {
		return c, fmt.Errorf("sim: response delay %g below the TX granularity", c.ResponseDelay)
	}
	if c.Plan == (core.SlotPlan{}) {
		plan, err := core.NewSafeSlotPlan(c.Range, 4)
		if err != nil {
			return c, err
		}
		c.Plan = plan
	}
	if err := c.Plan.Validate(); err != nil {
		return c, err
	}
	if c.NoMobility {
		c.Mobility = MobilityConfig{}
	} else if c.Mobility == (MobilityConfig{}) {
		c.Mobility = MobilityConfig{RoamRadius: 10, MinSpeed: 0.5, MaxSpeed: 1.5}
	}
	if c.CellSize <= 0 {
		c.CellSize = 2 * (c.Range + 2*c.Mobility.RoamRadius)
	}
	return c, nil
}

// SwarmStats is the per-run (or per-shard) event tally of a swarm
// simulation. All fields are plain integers/floats: each shard owns one
// accumulator and the engine merges them in shard order, so sums — float
// sums included — are bit-identical at any worker count.
type SwarmStats struct {
	// RoundsStarted / RoundsCompleted / EmptyRounds count initiator
	// rounds: started (INIT committed), completed (response window
	// closed), and started with no responder in range.
	RoundsStarted, RoundsCompleted, EmptyRounds int64
	// Frames counts transmissions on the air (INIT + RESP).
	Frames int64
	// Receptions counts frames delivered to a radio in range.
	Receptions int64
	// CrossShardFrames counts receptions whose transmitter lives on
	// another shard.
	CrossShardFrames int64
	// Responses counts RESP transmissions committed by responders.
	Responses int64
	// BusySkips counts INIT receptions dropped because the responder was
	// still transmitting a previous response.
	BusySkips int64
	// Resolved counts responses whose (slot, shape) cell was unambiguous
	// in their round — the initiator extracts a distance.
	Resolved int64
	// SlotCollisions counts responses sharing a (slot, shape) cell with
	// another response of the same round.
	SlotCollisions int64
	// AbsErrSumM accumulates |d_est − d_true| in meters over resolved
	// responses.
	AbsErrSumM float64
}

// add accumulates o into s.
func (s *SwarmStats) add(o SwarmStats) {
	s.RoundsStarted += o.RoundsStarted
	s.RoundsCompleted += o.RoundsCompleted
	s.EmptyRounds += o.EmptyRounds
	s.Frames += o.Frames
	s.Receptions += o.Receptions
	s.CrossShardFrames += o.CrossShardFrames
	s.Responses += o.Responses
	s.BusySkips += o.BusySkips
	s.Resolved += o.Resolved
	s.SlotCollisions += o.SlotCollisions
	s.AbsErrSumM += o.AbsErrSumM
}

// MeanAbsErr returns the mean absolute ranging error over resolved
// responses, in meters (0 when none resolved).
func (s SwarmStats) MeanAbsErr() float64 {
	if s.Resolved == 0 {
		return 0
	}
	return s.AbsErrSumM / float64(s.Resolved)
}

// String renders the tally in a fixed format byte-stable across runs, for
// determinism comparisons.
func (s SwarmStats) String() string {
	return fmt.Sprintf("rounds=%d/%d empty=%d frames=%d rx=%d xshard=%d resp=%d busy=%d resolved=%d collided=%d abserr=%.17g",
		s.RoundsCompleted, s.RoundsStarted, s.EmptyRounds, s.Frames, s.Receptions,
		s.CrossShardFrames, s.Responses, s.BusySkips, s.Resolved, s.SlotCollisions, s.AbsErrSumM)
}

// Swarm event kinds for the canonical trace.
const (
	// SwarmTXInit is an initiator committing its INIT broadcast.
	SwarmTXInit uint8 = iota
	// SwarmRXInit is a responder receiving an INIT.
	SwarmRXInit
	// SwarmTXResp is a responder committing its delayed RESP.
	SwarmTXResp
	// SwarmRXResp is the initiator receiving one RESP.
	SwarmRXResp
	// SwarmRoundDone closes an initiator's response window.
	SwarmRoundDone
)

// SwarmEvent is one canonical trace record. The canonical order —
// (T, Node, Kind, Other) — depends only on simulation content, never on
// engine internals, so sequential and sharded traces compare byte-equal.
type SwarmEvent struct {
	// T is the event time in seconds.
	T float64
	// Node is the acting node.
	Node int32
	// Other is the peer node (or round index / arrival count, by kind).
	Other int32
	// Kind is one of the Swarm* constants.
	Kind uint8
}

// swarmNode is the static per-node state plus the one mutable field
// (busyUntil) that is only ever touched by the node's owning shard.
type swarmNode struct {
	track     Track
	phase     float64 // initiator round phase in [0, RoundPeriod)
	busyUntil float64 // responder TX busy horizon; owned by the home shard
	id        int32
	shard     int32
	slot      uint16
	shape     uint16
	initiator bool
}

// swarmRound is one initiator round in flight. It is created on the
// initiator's shard; arrivals are appended there too (RESP receptions run
// on the initiator's shard), while responder-side handlers only read the
// immutable init/k fields. The flight-recorder span is likewise touched
// only by initiator-shard handlers (roundPrep and roundDone), whose
// cross-window ordering the barrier guarantees.
type swarmRound struct {
	arrivals []swarmArrival
	sp       *trace.Span
	init     int32
	k        uint32
}

type swarmArrival struct {
	estErr float64
	resp   int32
	slot   uint16
	shape  uint16
}

// Swarm is a built swarm deployment: nodes, tracks, shard partition,
// candidate neighbor lists and the derived conservative lookahead. One
// Swarm can be run multiple times (sequentially or sharded); each Run
// resets the mutable state.
type Swarm struct {
	cfg       SwarmConfig
	part      GridPartition
	nodes     []swarmNode
	cand      [][]int32 // per-initiator candidate responders (home dist ≤ reach)
	lookahead float64
	minSep    float64 // min cross-shard pair separation lower bound, m
	side      float64 // deployment square side, m
	maxExtra  float64 // largest slot delay, s
	respFrame float64 // RESP on-air duration, s
	tailSlack float64 // response-window close margin after INIT TX, s

	// Per-shard mutable run state, merged in shard order after the run.
	shardStats  []SwarmStats
	shardTraces [][]SwarmEvent
	scratch     [][]uint16 // per-shard (slot, shape) occupancy scratch

	// Flight recorder (SetFlightRecorder): nil disables; rounds open one
	// root span each. Which rounds the tracer samples depends on Begin
	// arrival order, so trace *content* is deterministic only at one
	// worker; the simulation results stay bit-identical regardless.
	flight *trace.Tracer

	// Live metric handles (SetRecorder): pre-resolved once so the
	// per-event hot path records through plain pointers, never a
	// label-tuple map lookup. All nil when no recorder is attached.
	liveRounds   *obs.Counter
	liveResolved *obs.Counter
	liveCollided *obs.Counter
	liveBusy     *obs.Counter
}

// SwarmResult is the outcome of one swarm run.
type SwarmResult struct {
	// Stats is the merged tally.
	Stats SwarmStats
	// PerShard holds each shard's own tally in shard order.
	PerShard []SwarmStats
	// Trace is the canonical event trace (nil unless RecordTrace).
	Trace []SwarmEvent
	// Events is the number of discrete events executed.
	Events int
	// Shards and Workers describe the engine that produced the result
	// (Workers is 0 for the sequential reference).
	Shards, Workers int
	// Windows is the number of conservative barrier windows (0
	// sequentially).
	Windows int
}

// NewSwarm builds the deployment: positions, trajectories and round
// phases from per-node split RNG streams, the spatial shard partition,
// per-initiator candidate lists, and the conservative lookahead derived
// from the protocol's decision lead and the minimum cross-shard
// separation.
func NewSwarm(cfg SwarmConfig) (*Swarm, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Swarm{cfg: cfg}
	s.side = math.Sqrt(float64(cfg.N) / cfg.Density)
	horizon := cfg.Duration + 10e-3
	s.maxExtra = float64(cfg.Plan.NumSlots-1) * cfg.Plan.SlotWidth
	frame, err := airtime.PaperConfig().FrameDuration(airtime.RespPayloadBytes)
	if err != nil {
		return nil, err
	}
	s.respFrame = frame
	roam := cfg.Mobility.RoamRadius
	s.tailSlack = cfg.ResponseDelay + s.maxExtra + 2*(cfg.Range+4*roam)/channel.SpeedOfLight + 1e-6

	s.part, err = NewGridPartition(geom.Point{}, geom.Point{X: s.side, Y: s.side}, cfg.CellSize)
	if err != nil {
		return nil, err
	}

	// Per-node split streams: node i's home, trajectory and phase depend
	// only on (Seed, i), never on other nodes or build order.
	capacity := cfg.Plan.Capacity()
	s.nodes = make([]swarmNode, cfg.N)
	for i := range s.nodes {
		rng := rand.New(rand.NewPCG(cfg.Seed, splitKey(uint64(i))))
		home := geom.Point{X: rng.Float64() * s.side, Y: rng.Float64() * s.side}
		n := &s.nodes[i]
		n.id = int32(i)
		n.shard = int32(s.part.ShardOf(home))
		n.track = NewTrack(home, cfg.Mobility, rng, horizon)
		n.initiator = i%cfg.InitiatorEvery == 0
		if n.initiator {
			n.phase = rng.Float64() * cfg.RoundPeriod
		} else {
			slot, shape, err := cfg.Plan.Assign(i % capacity)
			if err != nil {
				return nil, err
			}
			n.slot, n.shape = uint16(slot), uint16(shape)
		}
	}

	s.buildCandidates(roam)
	// Conservative lookahead: every cross-shard message is emitted at
	// least protocolLead before delivery (INIT by the decision lead, RESP
	// by the response delay minus the worst-case TX truncation), plus the
	// flight time floor from the minimum cross-shard separation.
	protocolLead := math.Min(cfg.DecisionLead, cfg.ResponseDelay-dw1000.DelayedTXGranularity)
	s.lookahead = protocolLead + s.minSep/channel.SpeedOfLight
	return s, nil
}

// buildCandidates fills the per-initiator candidate lists (every node
// whose home is within reach = Range + 2·RoamRadius — the farthest a pair
// can be heard across) and computes the minimum cross-shard separation.
func (s *Swarm) buildCandidates(roam float64) {
	reach := s.cfg.Range + 2*roam
	cols := int(s.side/reach) + 1
	buckets := make([][]int32, cols*cols)
	bucketOf := func(p geom.Point) (int, int) {
		bx, by := int(p.X/reach), int(p.Y/reach)
		if bx < 0 {
			bx = 0
		}
		if bx >= cols {
			bx = cols - 1
		}
		if by < 0 {
			by = 0
		}
		if by >= cols {
			by = cols - 1
		}
		return bx, by
	}
	for i := range s.nodes {
		bx, by := bucketOf(s.nodes[i].track.Home())
		buckets[by*cols+bx] = append(buckets[by*cols+bx], int32(i))
	}
	s.cand = make([][]int32, len(s.nodes))
	minSep := math.Inf(1)
	for i := range s.nodes {
		n := &s.nodes[i]
		if !n.initiator {
			continue
		}
		home := n.track.Home()
		bx, by := bucketOf(home)
		var list []int32
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				x, y := bx+dx, by+dy
				if x < 0 || x >= cols || y < 0 || y >= cols {
					continue
				}
				for _, j := range buckets[y*cols+x] {
					c := &s.nodes[j]
					if j == int32(i) || c.initiator {
						continue
					}
					d := home.Dist(c.track.Home())
					if d > reach {
						continue
					}
					list = append(list, j)
					if c.shard != n.shard {
						if sep := d - 2*roam; sep < minSep {
							minSep = sep
						}
					}
				}
			}
		}
		slices.Sort(list)
		s.cand[i] = list
	}
	if math.IsInf(minSep, 1) {
		// No cross-shard pair can ever communicate; the flight floor is
		// unconstrained, so any non-negative value is safe.
		minSep = s.cfg.Range
	}
	if minSep < 0 {
		minSep = 0
	}
	s.minSep = minSep
}

// SetFlightRecorder attaches (nil detaches) a flight recorder: every
// initiator round opens one SpanSwarmRound root span carrying the seed,
// initiating node and round counter, ended with the outcome and response
// accounting, so crtrace can triage swarm failures like campaign ones.
// Tracing is observational only — results stay bit-identical.
func (s *Swarm) SetFlightRecorder(tr *trace.Tracer) { s.flight = tr }

// SetRecorder attaches (nil detaches) a live metric recorder and
// pre-resolves the per-event counter handles once (the VecSource idiom):
// round completions and per-response outcomes tick _live counters through
// plain pointers on the hot path, never a label-tuple map lookup. The
// handles need the Registry/VecSource capabilities; a plain Recorder
// leaves the live mirrors off. Post-run tallies still go through Record.
func (s *Swarm) SetRecorder(rec obs.Recorder) {
	s.liveRounds, s.liveResolved, s.liveCollided, s.liveBusy = nil, nil, nil, nil
	if rec == nil {
		return
	}
	if reg, ok := rec.(*obs.Registry); ok {
		s.liveRounds = reg.Counter(MetricSwarmRoundsLive)
	}
	if vs, ok := rec.(obs.VecSource); ok {
		vec := vs.CounterVec(MetricSwarmResponsesLive, "outcome")
		s.liveResolved = vec.With("resolved")
		s.liveCollided = vec.With("slot_collision")
		s.liveBusy = vec.With("busy")
	}
}

// Lookahead returns the derived conservative window length in seconds.
func (s *Swarm) Lookahead() float64 { return s.lookahead }

// Shards returns the number of spatial shards of the partition.
func (s *Swarm) Shards() int { return s.part.Shards() }

// Side returns the deployment square side in meters.
func (s *Swarm) Side() float64 { return s.side }

// splitKey derives a per-node PCG stream key (splitmix64 increment).
func splitKey(i uint64) uint64 { return mix64(i + 0x9e3779b97f4a7c15) }

// mix64 is the splitmix64 finalizer: a bijective avalanche mix used to
// derive order-independent per-(node, round) draws from the seed.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Hash-draw stream tags.
const (
	streamQuant uint64 = 1 // TX quantization truncation
	streamErr   uint64 = 2 // RX timestamp jitter pair
)

// hash01 returns a uniform draw in (0, 1] keyed by (seed, node, round,
// stream). Being a pure hash, the draw does not depend on event execution
// order — the property that makes sequential and sharded runs identical.
func (s *Swarm) hash01(node int32, round uint32, stream uint64) float64 {
	h := mix64(s.cfg.Seed ^ mix64(uint64(uint32(node))<<32|uint64(round)^mix64(stream)))
	return float64(h>>11)*(1.0/(1<<53)) + 0x1p-54
}

// gauss returns a standard normal draw keyed like hash01 (Box–Muller).
func (s *Swarm) gauss(node int32, round uint32, stream uint64) float64 {
	u1 := s.hash01(node, round, stream)
	u2 := s.hash01(node, round, stream+0x10)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// trace appends a canonical trace record to the executing shard's buffer.
// Taking the Scheduler (rather than a raw shard index) makes the slot
// ownership structural: the buffer written is always the calling
// handler's own, which is what lets handlers trace without locks.
func (s *Swarm) trace(sc Scheduler, t float64, node int32, kind uint8, other int32) {
	if !s.cfg.RecordTrace {
		return
	}
	shard := sc.Shard()
	s.shardTraces[shard] = append(s.shardTraces[shard], SwarmEvent{T: t, Node: node, Other: other, Kind: kind})
}

// reset prepares the mutable per-run state.
func (s *Swarm) reset() {
	shards := s.part.Shards()
	s.shardStats = make([]SwarmStats, shards)
	s.shardTraces = make([][]SwarmEvent, shards)
	s.scratch = make([][]uint16, shards)
	capacity := s.cfg.Plan.Capacity()
	for i := range s.scratch {
		s.scratch[i] = make([]uint16, capacity)
	}
	for i := range s.nodes {
		s.nodes[i].busyUntil = 0
	}
}

// seed schedules every initiator's first round on its home shard.
func (s *Swarm) seed(r Runner) error {
	for i := range s.nodes {
		n := &s.nodes[i]
		if !n.initiator {
			continue
		}
		if err := r.Schedule(int(n.shard), n.phase, s.roundPrep(n.id, 0)); err != nil {
			return err
		}
	}
	return nil
}

// roundPrep is the initiator committing to round k: it schedules the next
// round, the INIT transmission DecisionLead ahead, the per-candidate INIT
// receptions (cross-shard through the bus, with future timestamps — this
// decision lead is what funds the lookahead), and the response-window
// close.
func (s *Swarm) roundPrep(init int32, k uint32) Handler {
	return func(sc Scheduler) {
		now := sc.Now()
		st := &s.shardStats[sc.Shard()]
		if next := now + s.cfg.RoundPeriod; next <= s.cfg.Duration {
			if err := sc.Schedule(next, s.roundPrep(init, k+1)); err != nil {
				sc.Fail(err)
				return
			}
		}
		st.RoundsStarted++
		tTX := now + s.cfg.DecisionLead
		n := &s.nodes[init]
		pi := n.track.Pos(tTX)
		if err := sc.Schedule(tTX, func(sc Scheduler) {
			s.shardStats[sc.Shard()].Frames++
			s.trace(sc, tTX, init, SwarmTXInit, int32(k))
		}); err != nil {
			sc.Fail(err)
			return
		}
		rd := &swarmRound{init: init, k: k}
		if s.flight != nil {
			rd.sp = s.flight.Begin(trace.SpanSwarmRound, trace.Attrs{
				trace.AttrSeed:  s.cfg.Seed,
				trace.AttrNode:  init,
				trace.AttrRound: k,
			})
		}
		inRange := 0
		for _, ci := range s.cand[init] {
			c := &s.nodes[ci]
			d := pi.Dist(c.track.Pos(tTX))
			if d > s.cfg.Range {
				continue
			}
			inRange++
			tRX := tTX + d/channel.SpeedOfLight
			cross := c.shard != n.shard
			if err := sc.Send(int(c.shard), tRX, s.rxInit(rd, ci, cross)); err != nil {
				sc.Fail(err)
				return
			}
		}
		if inRange == 0 {
			st.EmptyRounds++
			st.RoundsCompleted++
			if s.liveRounds != nil {
				s.liveRounds.Inc()
			}
			if rd.sp.Recording() {
				rd.sp.EndWith(trace.Attrs{trace.AttrStatus: "empty"})
			}
			return
		}
		if err := sc.Schedule(tTX+s.tailSlack, s.roundDone(rd)); err != nil {
			sc.Fail(err)
		}
	}
}

// rxInit is a responder receiving the INIT: if idle, it commits its RESP
// at Δ_RESP plus its slot delay (truncated to the delayed-TX granularity)
// and sends the reception back to the initiator's shard — again with a
// future timestamp at least ResponseDelay−granularity ahead.
func (s *Swarm) rxInit(rd *swarmRound, resp int32, cross bool) Handler {
	return func(sc Scheduler) {
		now := sc.Now()
		st := &s.shardStats[sc.Shard()]
		st.Receptions++
		if cross {
			st.CrossShardFrames++
		}
		s.trace(sc, now, resp, SwarmRXInit, rd.init)
		rn := &s.nodes[resp]
		if rn.busyUntil > now {
			st.BusySkips++
			if s.liveBusy != nil {
				s.liveBusy.Inc()
			}
			return
		}
		// Requested delay, truncated by the 8 ns delayed-TX granularity
		// (Sect. VI-B); the truncation is the dominant ranging error.
		qerr := s.hash01(resp, rd.k, streamQuant^uint64(uint32(rd.init))<<3) * dw1000.DelayedTXGranularity
		tResp := now + s.cfg.ResponseDelay + float64(rn.slot)*s.cfg.Plan.SlotWidth - qerr
		rn.busyUntil = tResp + s.respFrame
		st.Responses++
		if err := sc.Schedule(tResp, func(sc Scheduler) {
			s.shardStats[sc.Shard()].Frames++
			s.trace(sc, tResp, resp, SwarmTXResp, rd.init)
		}); err != nil {
			sc.Fail(err)
			return
		}
		in := &s.nodes[rd.init]
		d := rn.track.Pos(tResp).Dist(in.track.Pos(tResp))
		tArr := tResp + d/channel.SpeedOfLight
		// Analytic SS-TWR error: half the uncompensated TX truncation plus
		// the two RX timestamp jitters (σ₀ each, Box–Muller pair drawn
		// from the round's hash stream).
		sigma := dw1000.DefaultJitter().Sigma0 * math.Sqrt2
		estErr := channel.SpeedOfLight / 2 * (qerr + s.gauss(resp, rd.k, streamErr^uint64(uint32(rd.init))<<3)*sigma)
		if err := sc.Send(int(in.shard), tArr, s.rxResp(rd, resp, cross, estErr)); err != nil {
			sc.Fail(err)
		}
	}
}

// rxResp is the initiator receiving one RESP; it accumulates the arrival
// into the round (always on the initiator's own shard).
func (s *Swarm) rxResp(rd *swarmRound, resp int32, cross bool, estErr float64) Handler {
	return func(sc Scheduler) {
		st := &s.shardStats[sc.Shard()]
		st.Receptions++
		if cross {
			st.CrossShardFrames++
		}
		s.trace(sc, sc.Now(), rd.init, SwarmRXResp, resp)
		rn := &s.nodes[resp]
		rd.arrivals = append(rd.arrivals, swarmArrival{
			estErr: estErr, resp: resp, slot: rn.slot, shape: rn.shape,
		})
	}
}

// roundDone closes the response window: arrivals are sorted into the
// canonical responder order, responses alone in their (slot, shape) cell
// resolve to a distance measurement, cells with ≥ 2 responses are slot
// collisions (Sect. VIII).
func (s *Swarm) roundDone(rd *swarmRound) Handler {
	return func(sc Scheduler) {
		st := &s.shardStats[sc.Shard()]
		st.RoundsCompleted++
		s.trace(sc, sc.Now(), rd.init, SwarmRoundDone, int32(len(rd.arrivals)))
		slices.SortFunc(rd.arrivals, func(a, b swarmArrival) int { return int(a.resp - b.resp) })
		occ := s.scratch[sc.Shard()]
		numSlots := uint16(s.cfg.Plan.NumSlots)
		for _, a := range rd.arrivals {
			occ[a.shape*numSlots+a.slot]++
		}
		resolved, collided := int64(0), int64(0)
		for _, a := range rd.arrivals {
			if occ[a.shape*numSlots+a.slot] == 1 {
				resolved++
				st.AbsErrSumM += math.Abs(a.estErr)
			} else {
				collided++
			}
		}
		st.Resolved += resolved
		st.SlotCollisions += collided
		for _, a := range rd.arrivals {
			occ[a.shape*numSlots+a.slot] = 0
		}
		if s.liveRounds != nil {
			s.liveRounds.Inc()
		}
		if s.liveResolved != nil {
			s.liveResolved.Add(resolved)
			s.liveCollided.Add(collided)
		}
		if rd.sp.Recording() {
			status := "ok"
			if collided > 0 {
				status = "slot-collision"
			}
			rd.sp.EndWith(trace.Attrs{
				trace.AttrStatus:     status,
				trace.AttrResponses:  len(rd.arrivals),
				trace.AttrResolved:   resolved,
				trace.AttrCollisions: collided,
			})
		}
	}
}

// Run executes the swarm on the given runner (which must have been built
// with s.Shards() shards) and returns the merged result. Per-shard stats
// are merged in shard order and the trace is sorted into canonical order,
// so results from the sequential and sharded engines compare byte-equal.
func (s *Swarm) Run(r Runner) (*SwarmResult, error) {
	if r.Shards() != s.part.Shards() {
		return nil, fmt.Errorf("sim: runner has %d shards, swarm wants %d", r.Shards(), s.part.Shards())
	}
	s.reset()
	if err := s.seed(r); err != nil {
		return nil, err
	}
	events, err := r.Run()
	if err != nil {
		return nil, err
	}
	res := &SwarmResult{
		PerShard: s.shardStats,
		Events:   events,
		Shards:   s.part.Shards(),
	}
	for i := range s.shardStats {
		res.Stats.add(s.shardStats[i])
	}
	if s.cfg.RecordTrace {
		total := 0
		for _, tr := range s.shardTraces {
			total += len(tr)
		}
		res.Trace = make([]SwarmEvent, 0, total)
		for _, tr := range s.shardTraces {
			res.Trace = append(res.Trace, tr...)
		}
		slices.SortFunc(res.Trace, compareSwarmEvents)
	}
	s.shardStats, s.shardTraces, s.scratch = nil, nil, nil
	return res, nil
}

// compareSwarmEvents orders trace records by (T, Node, Kind, Other) —
// simulation content only, no engine state.
func compareSwarmEvents(a, b SwarmEvent) int {
	switch {
	case a.T < b.T:
		return -1
	case a.T > b.T:
		return 1
	case a.Node != b.Node:
		return int(a.Node - b.Node)
	case a.Kind != b.Kind:
		return int(a.Kind) - int(b.Kind)
	}
	return int(a.Other - b.Other)
}

// RunSequential runs the swarm on the single-goroutine reference engine.
func (s *Swarm) RunSequential() (*SwarmResult, error) {
	r, err := NewSequentialRunner(s.part.Shards())
	if err != nil {
		return nil, err
	}
	return s.Run(r)
}

// RunSharded runs the swarm on the parallel engine with the given worker
// count (0 selects GOMAXPROCS). The result is bit-identical to
// RunSequential at any worker count.
func (s *Swarm) RunSharded(workers int) (*SwarmResult, error) {
	return s.RunShardedProfiled(workers, nil)
}

// RunShardedProfiled runs the swarm on the parallel engine with an
// execution profiler attached (nil runs unprofiled — identical to
// RunSharded). Profiling is observational: the result is bit-identical
// with and without it.
func (s *Swarm) RunShardedProfiled(workers int, p *EngineProfiler) (*SwarmResult, error) {
	eng, err := NewShardedEngine(ShardedConfig{
		Shards:    s.part.Shards(),
		Workers:   workers,
		Lookahead: s.lookahead,
	})
	if err != nil {
		return nil, err
	}
	eng.SetProfiler(p)
	res, err := s.Run(eng)
	if err != nil {
		return nil, err
	}
	res.Workers = eng.Workers()
	res.Windows = eng.Windows()
	return res, nil
}

// Record mirrors a run's merged tallies into rec (nil disables). Labeled
// response outcomes are recorded when the Recorder supports labeled
// series, mirroring the Stats contract of the radio-level simulator.
func (s *Swarm) Record(rec obs.Recorder, res *SwarmResult) {
	if rec == nil || res == nil {
		return
	}
	rec.Count(MetricSwarmEvents, int64(res.Events))
	rec.Count(MetricSwarmRounds, res.Stats.RoundsCompleted)
	rec.Count(MetricSwarmFrames, res.Stats.Frames)
	rec.Count(MetricSwarmCrossShard, res.Stats.CrossShardFrames)
	// Swarm frames are frames on the air like any other simulated frame,
	// so the network-wide tallies include them; a swarm-only run report
	// then carries the sim.* counters every valid report must have.
	rec.Count(MetricFramesOnAir, res.Stats.Frames)
	rec.Count(MetricReceptions, res.Stats.Receptions)
	if vs, ok := rec.(obs.VecSource); ok {
		vec := vs.CounterVec(MetricSwarmResponsesByOutcome, "outcome")
		vec.With("resolved").Add(res.Stats.Resolved)
		vec.With("slot_collision").Add(res.Stats.SlotCollisions)
		vec.With("busy").Add(res.Stats.BusySkips)
	}
}
