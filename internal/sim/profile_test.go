package sim

import (
	"bytes"
	"encoding/json"
	"math"
	"strconv"
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/obs"
	"github.com/uwb-sim/concurrent-ranging/internal/obs/trace"
)

// tickClock returns a deterministic clock advancing 1 ms per call. Only
// valid for Workers ≤ 1 (no concurrent callers).
func tickClock() func() float64 {
	var t float64
	return func() float64 {
		t += 1e-3
		return t
	}
}

// profiledChain builds a 3-shard engine with a known event/bus pattern:
//
//	window 1: shard 0 runs 2 seeded events (heap depth 2) and sends one
//	          message to shard 1
//	window 2: shard 1 runs 1 event and sends one message to shard 2
//	window 3: shard 2 runs 1 event
func profiledChain(t *testing.T, p *EngineProfiler) *ShardedEngine {
	t.Helper()
	se, err := NewShardedEngine(ShardedConfig{Shards: 3, Workers: 1, Lookahead: 1})
	if err != nil {
		t.Fatal(err)
	}
	se.SetProfiler(p)
	if err := se.Schedule(0, 0.1, func(Scheduler) {}); err != nil {
		t.Fatal(err)
	}
	err = se.Schedule(0, 0.2, func(sc Scheduler) {
		if err := sc.Send(1, 1.5, func(sc Scheduler) {
			if err := sc.Send(2, 3.0, func(Scheduler) {}); err != nil {
				sc.Fail(err)
			}
		}); err != nil {
			sc.Fail(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return se
}

func TestEngineProfilerAggregates(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewEngineProfiler(EngineProfilerConfig{Clock: tickClock(), Recorder: reg})
	se := profiledChain(t, p)
	total, err := se.Run()
	if err != nil {
		t.Fatal(err)
	}
	ep := p.Profile()
	if ep.Shards != 3 || ep.Workers != 1 {
		t.Fatalf("shape = %d shards / %d workers", ep.Shards, ep.Workers)
	}
	if ep.Windows != se.Windows() || ep.Windows != 3 {
		t.Fatalf("profiled %d windows, engine ran %d (want 3)", ep.Windows, se.Windows())
	}
	if int(ep.Events) != total || total != 4 {
		t.Fatalf("profiled %d events, engine executed %d (want 4)", ep.Events, total)
	}
	if ep.BusMessages != 2 {
		t.Fatalf("bus messages = %d, want 2", ep.BusMessages)
	}
	if len(ep.PerShard) != 3 {
		t.Fatalf("%d shard profiles, want 3", len(ep.PerShard))
	}
	s0 := ep.PerShard[0]
	if s0.Events != 2 || s0.Windows != 1 || s0.BusMessages != 1 || s0.HeapHighWater < 2 {
		t.Fatalf("shard 0 profile = %+v", s0)
	}
	if ep.PerShard[1].Events != 1 || ep.PerShard[1].BusMessages != 1 || ep.PerShard[2].Events != 1 {
		t.Fatalf("shard profiles = %+v", ep.PerShard)
	}
	// The tick clock makes every duration exact: each of the 3 windows is
	// one runShard span (1 ms busy) inside a 3 ms exec phase (begin + two
	// runShard ticks + execDone) followed by a 1 ms drain.
	const tick, eps = 1e-3, 1e-12
	if math.Abs(ep.BusySeconds-3*tick) > eps {
		t.Errorf("busy = %g, want %g", ep.BusySeconds, 3*tick)
	}
	if math.Abs(ep.ExecSeconds-9*tick) > eps || math.Abs(ep.WorkerSeconds-9*tick) > eps {
		t.Errorf("exec = %g, worker = %g, want %g", ep.ExecSeconds, ep.WorkerSeconds, 9*tick)
	}
	if math.Abs(ep.ParallelEfficiency-1.0/3) > eps {
		t.Errorf("efficiency = %g, want 1/3", ep.ParallelEfficiency)
	}
	if math.Abs(ep.BusySeconds+ep.BarrierWaitSeconds-ep.WorkerSeconds) > eps {
		t.Errorf("busy %g + barrier wait %g != worker capacity %g",
			ep.BusySeconds, ep.BarrierWaitSeconds, ep.WorkerSeconds)
	}
	if math.Abs(ep.BarrierStallPct-100.0*2/3) > 1e-9 {
		t.Errorf("stall = %g%%, want %g%%", ep.BarrierStallPct, 100.0*2/3)
	}
	if math.Abs(ep.DrainPct-25) > 1e-9 {
		t.Errorf("drain = %g%%, want 25%%", ep.DrainPct)
	}
	// Every shard is equally busy (up to float rounding of the tick
	// differences), so the critical share is one third.
	if ep.CriticalShard < 0 || ep.CriticalShard > 2 || math.Abs(ep.CriticalShardShare-1.0/3) > 1e-9 {
		t.Errorf("critical shard %d share %g, want share 1/3", ep.CriticalShard, ep.CriticalShardShare)
	}
	if len(ep.PerWorker) != 1 || ep.PerWorker[0].ShardWindows != 3 ||
		math.Abs(ep.PerWorker[0].BusySeconds-3*tick) > eps {
		t.Errorf("worker profile = %+v", ep.PerWorker)
	}
	if ep.TimelineSlices != 3 || ep.TimelineDropped != 0 {
		t.Errorf("timeline %d slices / %d dropped, want 3 / 0", ep.TimelineSlices, ep.TimelineDropped)
	}
	// The live metric mirror tracks the aggregates.
	snap := reg.Snapshot()
	if v, ok := snap.GaugeValue(MetricEngineWindowsLive); !ok || v != 3 {
		t.Errorf("windows gauge = %v %v", v, ok)
	}
	if v, ok := snap.GaugeValue(MetricEngineBusLive); !ok || v != 2 {
		t.Errorf("bus gauge = %v %v", v, ok)
	}
	if v, ok := snap.GaugeValue(MetricEngineEfficiencyLive); !ok || math.Abs(v-1.0/3) > eps {
		t.Errorf("efficiency gauge = %v %v", v, ok)
	}
	occ := snap.GaugeSeries(MetricEngineWorkerOccupancyLive)
	if len(occ) != 1 || occ[0].Labels[0].Value != "0" {
		t.Fatalf("occupancy series = %+v, want one for worker 0", occ)
	}
	if math.Abs(occ[0].Value-100.0/3) > 1e-9 {
		t.Errorf("worker 0 occupancy = %g%%, want %g%%", occ[0].Value, 100.0/3)
	}
}

func TestEngineProfilerTimelineCap(t *testing.T) {
	p := NewEngineProfiler(EngineProfilerConfig{Clock: tickClock(), TimelineCap: 2})
	se := profiledChain(t, p)
	if _, err := se.Run(); err != nil {
		t.Fatal(err)
	}
	ep := p.Profile()
	if ep.TimelineSlices != 2 || ep.TimelineDropped != 1 {
		t.Fatalf("timeline %d slices / %d dropped, want 2 / 1", ep.TimelineSlices, ep.TimelineDropped)
	}
	// Aggregates keep accumulating past the cap.
	if ep.Events != 4 || ep.Windows != 3 {
		t.Fatalf("aggregates truncated with the timeline: %+v", ep)
	}
}

// TestEngineProfilerChromeTrace pins the track layout: one coordinator
// track plus one track per worker-pool slot, even when a window never
// fans out to every slot.
func TestEngineProfilerChromeTrace(t *testing.T) {
	cfg := boundarySwarmConfig(300, 3)
	sw, err := NewSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	p := NewEngineProfiler(EngineProfilerConfig{})
	if _, err := sw.RunShardedProfiled(workers, p); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			TID  uint64  `json:"tid"`
			Ph   string  `json:"ph"`
			Name string  `json:"name"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("empty timeline")
	}
	tids := map[uint64]bool{}
	names := map[string]int{}
	for _, ev := range out.TraceEvents {
		tids[ev.TID] = true
		names[ev.Name]++
		if ev.Ph == "X" && ev.Dur < 0 {
			t.Fatalf("negative duration slice: %+v", ev)
		}
	}
	if len(tids) != workers+1 {
		t.Fatalf("%d tracks, want %d (coordinator + one per worker)", len(tids), workers+1)
	}
	ep := p.Profile()
	if names[trace.SpanEngineWindow] != ep.Windows {
		t.Errorf("%d window slices, want %d", names[trace.SpanEngineWindow], ep.Windows)
	}
	if names[trace.SpanEngineShard] != ep.TimelineSlices {
		t.Errorf("%d shard slices, want %d", names[trace.SpanEngineShard], ep.TimelineSlices)
	}
}

// TestSwarmProfiledBitIdentical is the observational-only contract: a
// profiled run (profiler + live recorder attached) must match the bare
// reference bit for bit at every worker count.
func TestSwarmProfiledBitIdentical(t *testing.T) {
	cfg := boundarySwarmConfig(400, 1)
	sw, err := NewSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sw.RunSharded(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		reg := obs.NewRegistry()
		sw.SetRecorder(reg)
		p := NewEngineProfiler(EngineProfilerConfig{Recorder: reg})
		got, err := sw.RunShardedProfiled(workers, p)
		sw.SetRecorder(nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Stats != want.Stats || got.Events != want.Events {
			t.Errorf("workers=%d: profiled run diverged:\n got %s (%d events)\nwant %s (%d events)",
				workers, got.Stats, got.Events, want.Stats, want.Events)
		}
		for i := range want.Trace {
			if got.Trace[i] != want.Trace[i] {
				t.Fatalf("workers=%d: trace[%d] differs under profiling", workers, i)
			}
		}
		ep := p.Profile()
		if int(ep.Events) != got.Events || ep.Windows != got.Windows {
			t.Errorf("workers=%d: profile counted %d events / %d windows, run reports %d / %d",
				workers, ep.Events, ep.Windows, got.Events, got.Windows)
		}
		if ep.Workers != workers || len(ep.PerWorker) != workers {
			t.Errorf("workers=%d: profile has %d worker slots", workers, len(ep.PerWorker))
		}
		if occ := reg.Snapshot().GaugeSeries(MetricEngineWorkerOccupancyLive); len(occ) != workers {
			t.Errorf("workers=%d: %d occupancy series", workers, len(occ))
		}
		for w := 0; w < workers; w++ {
			if ep.PerWorker[w].Worker != w {
				t.Fatalf("worker slot %d labeled %d", w, ep.PerWorker[w].Worker)
			}
		}
	}
}

// TestShardedScheduleSendSteadyStateAllocs pins the disabled-profiler hot
// paths: with no profiler attached, a warm schedule/run cycle and a warm
// cross-shard Send allocate nothing — the profiler costs one nil check.
func TestShardedScheduleSendSteadyStateAllocs(t *testing.T) {
	se, err := NewShardedEngine(ShardedConfig{Shards: 2, Workers: 1, Lookahead: 1})
	if err != nil {
		t.Fatal(err)
	}
	sh := &se.shards[0]
	sc := se.sched[0]
	fn := func(Scheduler) {}
	// Warm the event heap and the outbox to their high-water marks.
	for i := 0; i < 64; i++ {
		if err := sh.schedule(sh.now+float64(1+i%7), fn); err != nil {
			t.Fatal(err)
		}
		if err := sc.Send(1, sh.now+1, fn); err != nil {
			t.Fatal(err)
		}
	}
	sh.runWindow(math.Inf(1))
	sh.outbox = sh.outbox[:0]
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			if err := sh.schedule(sh.now+float64(1+i%7), fn); err != nil {
				t.Fatal(err)
			}
			if err := sc.Send(1, sh.now+1, fn); err != nil {
				t.Fatal(err)
			}
		}
		sh.runWindow(math.Inf(1))
		sh.outbox = sh.outbox[:0]
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule/send cycle allocates %.1f times without a profiler, want 0", allocs)
	}
}

// BenchmarkShardedScheduleNoProfiler measures the nil-profiler per-event
// cost of the sharded schedule/run hot path; allocs/op must report 0.
func BenchmarkShardedScheduleNoProfiler(b *testing.B) {
	benchmarkShardedSchedule(b, nil)
}

// BenchmarkShardedScheduleProfiled is the enabled-path companion, for
// eyeballing the profiler's marginal cost (the timeline append amortizes
// to one slice entry per shard-window, not per event).
func BenchmarkShardedScheduleProfiled(b *testing.B) {
	benchmarkShardedSchedule(b, NewEngineProfiler(EngineProfilerConfig{}))
}

func benchmarkShardedSchedule(b *testing.B, p *EngineProfiler) {
	se, err := NewShardedEngine(ShardedConfig{Shards: 1, Workers: 1, Lookahead: 1})
	if err != nil {
		b.Fatal(err)
	}
	se.SetProfiler(p)
	sh := &se.shards[0]
	fn := func(Scheduler) {}
	for i := 0; i < 1024; i++ {
		if err := sh.schedule(sh.now+float64(1+i%31), fn); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := sh.now + 1
		if err := sh.schedule(at, fn); err != nil {
			b.Fatal(err)
		}
		sh.runWindow(at + 0.5) // one push, one pop: a warm steady state
	}
	b.StopTimer()
	sh.runWindow(math.Inf(1))
}

// TestSwarmFlightSpans checks satellite wiring of the flight recorder into
// swarm mode: every started round emits one swarm.round span whose end
// attributes tally exactly to the run's merged stats, and recording is
// observational (bit-identical results with the tracer attached).
func TestSwarmFlightSpans(t *testing.T) {
	cfg := boundarySwarmConfig(300, 2)
	sw, err := NewSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sw.RunSharded(1)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Config{})
	sw.SetFlightRecorder(tr)
	got, err := sw.RunSharded(1)
	sw.SetFlightRecorder(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats != ref.Stats || got.Events != ref.Events {
		t.Fatalf("traced run diverged:\n got %s (%d events)\nwant %s (%d events)",
			got.Stats, got.Events, ref.Stats, ref.Events)
	}
	begins := map[uint64]bool{}
	var responses, resolved, collisions int64
	statuses := map[string]int{}
	for _, ev := range tr.Events() {
		switch {
		case ev.Phase == trace.PhaseBegin && ev.Name == trace.SpanSwarmRound:
			begins[ev.Span] = true
			if _, ok := ev.Attrs[trace.AttrNode]; !ok {
				t.Fatalf("swarm.round begin without node attr: %+v", ev)
			}
		case ev.Phase == trace.PhaseEnd && begins[ev.Span]:
			delete(begins, ev.Span)
			status, _ := ev.Attrs[trace.AttrStatus].(string)
			statuses[status]++
			responses += asInt64(ev.Attrs[trace.AttrResponses])
			resolved += asInt64(ev.Attrs[trace.AttrResolved])
			collisions += asInt64(ev.Attrs[trace.AttrCollisions])
		}
	}
	want := int(got.Stats.RoundsStarted)
	if n := statuses["ok"] + statuses["slot-collision"] + statuses["empty"]; n != want {
		t.Fatalf("statuses %v over %d ended spans, want %d rounds started", statuses, n, want)
	}
	if len(begins) != 0 {
		t.Fatalf("%d swarm.round spans never ended", len(begins))
	}
	if responses != got.Stats.Responses || resolved != got.Stats.Resolved || collisions != got.Stats.SlotCollisions {
		t.Fatalf("span tallies responses=%d resolved=%d collisions=%d, stats %s",
			responses, resolved, collisions, got.Stats)
	}
	if st := tr.Stats(); st.RootSpans != uint64(want) {
		t.Fatalf("tracer saw %d roots, want %d", st.RootSpans, want)
	}
}

// TestSwarmFlightSampling: a sampled tracer records every Nth round and
// the sampled-out rounds emit nothing.
func TestSwarmFlightSampling(t *testing.T) {
	sw, err := NewSwarm(boundarySwarmConfig(200, 9))
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Config{SampleEvery: 4})
	sw.SetFlightRecorder(tr)
	res, err := sw.RunSharded(1)
	sw.SetFlightRecorder(nil)
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.RootSpans != uint64(res.Stats.RoundsStarted) {
		t.Fatalf("tracer saw %d roots, want %d", st.RootSpans, res.Stats.RoundsStarted)
	}
	sampled := 0
	for _, ev := range tr.Events() {
		if ev.Phase == trace.PhaseBegin && ev.Name == trace.SpanSwarmRound {
			sampled++
		}
	}
	if wantMin := int(res.Stats.RoundsStarted) / 4; sampled < wantMin || sampled >= int(res.Stats.RoundsStarted) {
		t.Fatalf("sampled %d of %d rounds with SampleEvery=4", sampled, res.Stats.RoundsStarted)
	}
}

func asInt64(v any) int64 {
	switch n := v.(type) {
	case int64:
		return n
	case int:
		return int64(n)
	case float64:
		return int64(n)
	}
	return 0
}

// TestEngineProfilerWorkerLabels pins the VecSource pre-resolution: the
// per-worker gauge children carry the worker-slot label values 0..W-1.
func TestEngineProfilerWorkerLabels(t *testing.T) {
	reg := obs.NewRegistry()
	sw, err := NewSwarm(boundarySwarmConfig(200, 4))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 3
	p := NewEngineProfiler(EngineProfilerConfig{Recorder: reg})
	if _, err := sw.RunShardedProfiled(workers, p); err != nil {
		t.Fatal(err)
	}
	busy := reg.Snapshot().GaugeSeries(MetricEngineWorkerBusySeconds)
	if len(busy) != workers {
		t.Fatalf("%d busy series, want %d", len(busy), workers)
	}
	for i, g := range busy {
		if len(g.Labels) != 1 || g.Labels[0].Key != "worker" || g.Labels[0].Value != strconv.Itoa(i) {
			t.Fatalf("busy series %d labels = %+v", i, g.Labels)
		}
	}
}
