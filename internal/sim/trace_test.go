package sim

// Trace-path and stats coverage for one concurrent round: the event
// sequence tx-init → rx-init → tx-resp → rx-aggregate → decode, the
// nil-tracer contract, and the frame/collision/decode tallies.

import (
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/geom"
	"github.com/uwb-sim/concurrent-ranging/internal/obs"
)

// traceNetwork builds a hallway network with one initiator and nResp
// responders.
func traceNetwork(t *testing.T, nResp int) (*Network, *Node, []*Node) {
	t.Helper()
	net, err := NewNetwork(NetworkConfig{Environment: channel.Hallway(), Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	init, err := net.AddNode(NodeConfig{ID: -1, Name: "init", Pos: geom.Point{X: 1, Y: 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	var resps []*Node
	for i := 0; i < nResp; i++ {
		node, err := net.AddNode(NodeConfig{ID: i, Pos: geom.Point{X: 4 + 3*float64(i), Y: 0.9}})
		if err != nil {
			t.Fatal(err)
		}
		resps = append(resps, node)
	}
	return net, init, resps
}

func TestTracerEventSequence(t *testing.T) {
	const nResp = 2
	net, init, resps := traceNetwork(t, nResp)
	var events []TraceEvent
	net.SetTracer(func(e TraceEvent) { events = append(events, e) })
	if _, err := net.RunConcurrentRound(init, resps, RoundConfig{}); err != nil {
		t.Fatal(err)
	}

	// One tx-init, one rx-init and one tx-resp per responder, one
	// rx-aggregate, one decode.
	counts := map[string]int{}
	for _, e := range events {
		counts[e.Kind]++
	}
	want := map[string]int{
		EventTXInit: 1, EventRXInit: nResp, EventTXResponse: nResp,
		EventRXAggregate: 1, EventDecode: 1,
	}
	for kind, n := range want {
		if counts[kind] != n {
			t.Errorf("%d %s events, want %d", counts[kind], kind, n)
		}
	}
	if len(events) != 1+2*nResp+2 {
		t.Fatalf("%d events total, want %d", len(events), 1+2*nResp+2)
	}

	// Phase ordering: the INIT broadcast strictly first, every responder
	// hears INIT before any responder transmits, the aggregate reception
	// after all responses, the decode last.
	phase := map[string]int{
		EventTXInit: 0, EventRXInit: 1, EventTXResponse: 2,
		EventRXAggregate: 3, EventDecode: 4,
	}
	for i := 1; i < len(events); i++ {
		if phase[events[i].Kind] < phase[events[i-1].Kind] {
			t.Fatalf("event %d (%s) out of order after %s", i, events[i].Kind, events[i-1].Kind)
		}
		if events[i].Time < events[i-1].Time {
			t.Fatalf("timeline not monotone at event %d: %g after %g",
				i, events[i].Time, events[i-1].Time)
		}
	}
	if events[0].Node != "init" || events[len(events)-1].Kind != EventDecode {
		t.Fatalf("unexpected endpoints: first %+v, last %+v", events[0], events[len(events)-1])
	}
}

func TestNilTracerEmitsNothing(t *testing.T) {
	net, init, resps := traceNetwork(t, 2)
	fired := 0
	net.SetTracer(func(TraceEvent) { fired++ })
	net.SetTracer(nil) // installing then clearing must fully disable
	if _, err := net.RunConcurrentRound(init, resps, RoundConfig{}); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("nil tracer still received %d events", fired)
	}
}

func TestTracedRoundMatchesUntraced(t *testing.T) {
	// Tracing (like recording) must be observational: identical seeds
	// with and without a tracer produce identical round results.
	run := func(trace bool) *RoundResult {
		net, init, resps := traceNetwork(t, 2)
		if trace {
			net.SetTracer(func(TraceEvent) {})
		}
		round, err := net.RunConcurrentRound(init, resps, RoundConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return round
	}
	a, b := run(false), run(true)
	if a.InitTXTimestamp != b.InitTXTimestamp || a.DecodedID != b.DecodedID ||
		a.Reception.Timestamp != b.Reception.Timestamp {
		t.Fatalf("tracer changed the round: %+v vs %+v", a, b)
	}
}

func TestNetworkStatsAndRecorder(t *testing.T) {
	const nResp = 3
	net, init, resps := traceNetwork(t, nResp)
	reg := obs.NewRegistry()
	net.SetRecorder(reg)
	if _, err := net.RunConcurrentRound(init, resps, RoundConfig{}); err != nil {
		t.Fatal(err)
	}
	stats := net.Stats()
	want := Stats{
		FramesOnAir: 1 + nResp, // one INIT + one RESP each
		Receptions:  nResp + 1, // INIT at each responder + the aggregate
		Collisions:  1,         // the aggregate held 3 overlapping arrivals
	}
	if stats != want {
		t.Fatalf("stats = %+v, want %+v", stats, want)
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue(MetricFramesOnAir); got != want.FramesOnAir {
		t.Errorf("%s = %d, want %d", MetricFramesOnAir, got, want.FramesOnAir)
	}
	if got := snap.CounterValue(MetricReceptions); got != want.Receptions {
		t.Errorf("%s = %d, want %d", MetricReceptions, got, want.Receptions)
	}
	if got := snap.CounterValue(MetricCollisions); got != 1 {
		t.Errorf("%s = %d, want 1", MetricCollisions, got)
	}
	if got := snap.CounterValue(MetricDecodeFailures); got != 0 {
		t.Errorf("%s = %d, want 0 (no capture model)", MetricDecodeFailures, got)
	}
}

func TestNetworkStatsCountDecodeFailures(t *testing.T) {
	// An equal-power ring of many responders defeats the capture model
	// in at least some seeds; assert the failure tally moves when
	// DecodeOK is false.
	for seed := uint64(1); seed < 30; seed++ {
		net, err := NewNetwork(NetworkConfig{Environment: channel.FreeSpace(), Seed: seed,
			RandomClockPhase: true})
		if err != nil {
			t.Fatal(err)
		}
		init, err := net.AddNode(NodeConfig{ID: -1, Name: "init", Pos: geom.Point{}})
		if err != nil {
			t.Fatal(err)
		}
		var resps []*Node
		for i := 0; i < 6; i++ {
			node, err := net.AddNode(NodeConfig{ID: i, Pos: geom.Point{X: 5 - 10*float64(i%2), Y: float64(i)}})
			if err != nil {
				t.Fatal(err)
			}
			resps = append(resps, node)
		}
		round, err := net.RunConcurrentRound(init, resps, RoundConfig{Capture: DefaultCaptureModel()})
		if err != nil {
			t.Fatal(err)
		}
		if !round.DecodeOK {
			if net.Stats().DecodeFailures != 1 {
				t.Fatalf("DecodeOK=false but DecodeFailures = %d", net.Stats().DecodeFailures)
			}
			return
		}
		if net.Stats().DecodeFailures != 0 {
			t.Fatalf("DecodeOK=true but DecodeFailures = %d", net.Stats().DecodeFailures)
		}
	}
	t.Skip("no seed produced a decode failure; capture model too forgiving for this geometry")
}
