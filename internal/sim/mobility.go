package sim

import (
	"math"
	"math/rand/v2"

	"github.com/uwb-sim/concurrent-ranging/internal/geom"
)

// MobilityConfig parameterizes the random-waypoint walks of swarm nodes.
// Every node roams inside a disk around its home position, so shard
// ownership (decided by the home) stays valid while actual distances — and
// with them flight times and ranging geometry — change over the run.
type MobilityConfig struct {
	// RoamRadius is the maximum distance from the home position in meters.
	// 0 pins every node to its home (static deployment).
	RoamRadius float64
	// MinSpeed and MaxSpeed bound the uniform walking-speed draw in m/s.
	MinSpeed, MaxSpeed float64
	// Pause is the dwell time at each waypoint in seconds.
	Pause float64
}

// leg is one piece of a trajectory: linear motion (or dwell, when from ==
// to) over [t0, t1].
type leg struct {
	t0, t1   float64
	from, to geom.Point
}

// Track is one node's precomputed piecewise-linear trajectory over the
// simulation horizon. Tracks are built before the run from the node's own
// RNG stream and are immutable afterwards, so any shard may evaluate any
// node's position without synchronization.
type Track struct {
	legs []leg
	home geom.Point
}

// NewTrack builds a waypoint walk covering [0, horizon] seconds. All draws
// come from rng — the node's split stream — so one node's trajectory does
// not depend on how many other nodes exist or in which order they are
// built. A zero RoamRadius (or non-positive speeds/horizon) yields a
// stationary track.
func NewTrack(home geom.Point, cfg MobilityConfig, rng *rand.Rand, horizon float64) Track {
	tr := Track{home: home}
	if cfg.RoamRadius <= 0 || cfg.MaxSpeed <= 0 || horizon <= 0 {
		return tr
	}
	minSpeed := cfg.MinSpeed
	if minSpeed <= 0 || minSpeed > cfg.MaxSpeed {
		minSpeed = cfg.MaxSpeed
	}
	pos := home
	t := 0.0
	for t < horizon {
		// Waypoint uniform in the roam disk around home.
		r := cfg.RoamRadius * math.Sqrt(rng.Float64())
		theta := 2 * math.Pi * rng.Float64()
		next := geom.Point{X: home.X + r*math.Cos(theta), Y: home.Y + r*math.Sin(theta)}
		speed := minSpeed + (cfg.MaxSpeed-minSpeed)*rng.Float64()
		dur := pos.Dist(next) / speed
		if dur > 0 {
			tr.legs = append(tr.legs, leg{t0: t, t1: t + dur, from: pos, to: next})
			t += dur
			pos = next
		}
		if cfg.Pause > 0 {
			tr.legs = append(tr.legs, leg{t0: t, t1: t + cfg.Pause, from: pos, to: pos})
			t += cfg.Pause
		}
		if dur <= 0 && cfg.Pause <= 0 {
			// Degenerate draw (waypoint == current position, no pause):
			// spend the leg dwelling so the loop always advances.
			tr.legs = append(tr.legs, leg{t0: t, t1: horizon, from: pos, to: pos})
			break
		}
	}
	return tr
}

// Home returns the track's home position (the shard anchor).
func (tr *Track) Home() geom.Point { return tr.home }

// Pos evaluates the position at time t, clamping outside the built
// horizon: before the first leg the node is at its start, after the last
// at its final waypoint.
func (tr *Track) Pos(t float64) geom.Point {
	if len(tr.legs) == 0 {
		return tr.home
	}
	if t <= tr.legs[0].t0 {
		return tr.legs[0].from
	}
	for i := range tr.legs {
		lg := &tr.legs[i]
		if t > lg.t1 {
			continue
		}
		if lg.t1 <= lg.t0 {
			return lg.to
		}
		f := (t - lg.t0) / (lg.t1 - lg.t0)
		return geom.Point{
			X: lg.from.X + f*(lg.to.X-lg.from.X),
			Y: lg.from.Y + f*(lg.to.Y-lg.from.Y),
		}
	}
	return tr.legs[len(tr.legs)-1].to
}
