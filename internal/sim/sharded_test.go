package sim

import (
	"fmt"
	"strings"
	"testing"
)

func TestShardedEngineConfigValidation(t *testing.T) {
	if _, err := NewShardedEngine(ShardedConfig{Shards: 0, Lookahead: 1}); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := NewShardedEngine(ShardedConfig{Shards: 1, Lookahead: 0}); err == nil {
		t.Error("zero lookahead accepted")
	}
	eng, err := NewShardedEngine(ShardedConfig{Shards: 2, Lookahead: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Schedule(2, 0, func(Scheduler) {}); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if err := eng.Schedule(0, 0, nil); err == nil {
		t.Error("nil handler accepted")
	}
	if eng.Workers() < 1 {
		t.Errorf("workers %d", eng.Workers())
	}
}

// TestShardedEngineLookaheadViolation pins the conservative contract: a
// cross-shard send targeting a time inside the current barrier window is
// an error, because the destination shard may already have advanced past
// it.
func TestShardedEngineLookaheadViolation(t *testing.T) {
	eng, err := NewShardedEngine(ShardedConfig{Shards: 2, Workers: 1, Lookahead: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Schedule(0, 0, func(sc Scheduler) {
		if err := sc.Send(1, 5, func(Scheduler) {}); err != nil {
			sc.Fail(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err == nil || !strings.Contains(err.Error(), "violates lookahead") {
		t.Fatalf("run error %v, want lookahead violation", err)
	}
	// A send to the handler's own shard is a plain Schedule: no lookahead.
	eng2, _ := NewShardedEngine(ShardedConfig{Shards: 2, Workers: 1, Lookahead: 10})
	ran := false
	if err := eng2.Schedule(0, 0, func(sc Scheduler) {
		if err := sc.Send(0, 5, func(Scheduler) { ran = true }); err != nil {
			sc.Fail(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if n, err := eng2.Run(); err != nil || n != 2 || !ran {
		t.Fatalf("self-send run: n=%d ran=%v err=%v", n, ran, err)
	}
}

func TestShardedEnginePanicBecomesError(t *testing.T) {
	eng, err := NewShardedEngine(ShardedConfig{Shards: 1, Workers: 1, Lookahead: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Schedule(0, 0, func(Scheduler) { panic("boom") }); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("run error %v, want panic converted", err)
	}
}

// ringTrace runs a deterministic multi-token ring workload — tokens
// bouncing between shards with per-hop fan-out to the local shard — on a
// Runner and returns the merged (time, shard, token) log plus the event
// count.
func ringTrace(t *testing.T, r Runner, shards int, hop float64) ([]string, int) {
	t.Helper()
	logs := make([][]string, shards)
	var bounce func(token int, hops int) Handler
	bounce = func(token, hops int) Handler {
		return func(sc Scheduler) {
			logs[sc.Shard()] = append(logs[sc.Shard()],
				fmt.Sprintf("t=%.3f shard=%d token=%d hops=%d", sc.Now(), sc.Shard(), token, hops))
			if hops == 0 {
				return
			}
			// Local follow-up work inside the window.
			if err := sc.Schedule(sc.Now()+hop/16, func(sc Scheduler) {
				logs[sc.Shard()] = append(logs[sc.Shard()],
					fmt.Sprintf("t=%.3f shard=%d token=%d local", sc.Now(), sc.Shard(), token))
			}); err != nil {
				sc.Fail(err)
				return
			}
			next := (sc.Shard() + token + 1) % shards
			if err := sc.Send(next, sc.Now()+hop, bounce(token, hops-1)); err != nil {
				sc.Fail(err)
			}
		}
	}
	for token := 0; token < 5; token++ {
		// Distinct start times so the workload has no cross-shard ties.
		if err := r.Schedule(token%shards, float64(token)*0.013, bounce(token, 12)); err != nil {
			t.Fatal(err)
		}
	}
	n, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	var merged []string
	for _, l := range logs {
		merged = append(merged, l...)
	}
	return merged, n
}

// TestShardedEngineMatchesSequential checks the core contract on a
// cross-shard workload: the sharded engine produces exactly the
// sequential per-shard logs and event count at 1, 2 and 8 workers.
func TestShardedEngineMatchesSequential(t *testing.T) {
	const shards = 4
	const hop = 1.0
	seqr, err := NewSequentialRunner(shards)
	if err != nil {
		t.Fatal(err)
	}
	want, wantN := ringTrace(t, seqr, shards, hop)
	if wantN == 0 || len(want) == 0 {
		t.Fatal("empty reference run")
	}
	for _, workers := range []int{1, 2, 8} {
		eng, err := NewShardedEngine(ShardedConfig{Shards: shards, Workers: workers, Lookahead: hop})
		if err != nil {
			t.Fatal(err)
		}
		got, gotN := ringTrace(t, eng, shards, hop)
		if gotN != wantN {
			t.Errorf("workers=%d: %d events, want %d", workers, gotN, wantN)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d log lines, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: log[%d] = %q, want %q", workers, i, got[i], want[i])
			}
		}
		if eng.Windows() == 0 {
			t.Errorf("workers=%d: no barrier windows", workers)
		}
	}
}
