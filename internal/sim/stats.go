package sim

import "github.com/uwb-sim/concurrent-ranging/internal/obs"

// Metric names the simulator records through its Recorder.
const (
	// MetricFramesOnAir counts frames handed to the channel (one INIT
	// per round plus one RESP per responder).
	MetricFramesOnAir = "sim.frames_on_air"
	// MetricReceptions counts successful radio receptions, including
	// the initiator's aggregated one.
	MetricReceptions = "sim.receptions"
	// MetricCollisions counts aggregated receptions in which two or more
	// response frames overlapped on the air — the concurrent-ranging
	// regime the detector has to untangle.
	MetricCollisions = "sim.collisions"
	// MetricDecodeFailures counts rounds whose locked payload did not
	// survive the concurrent interference (capture model).
	MetricDecodeFailures = "sim.decode_failures"
	// MetricReceptionsByKind is the labeled companion of
	// MetricReceptions: receptions counted per arrival regime
	// ({kind="single"} vs {kind="concurrent"}, the ≥ 2-overlap case).
	// Recorded only when the Recorder supports labeled series
	// (obs.VecSource).
	MetricReceptionsByKind = "sim.receptions_by_kind"
)

// Stats is a network's cumulative event tally. The simulator is
// single-goroutine per network, so plain integers suffice; campaigns
// running many networks in parallel aggregate through a shared
// concurrent-safe Recorder instead.
type Stats struct {
	// FramesOnAir is the number of frames transmitted.
	FramesOnAir int64
	// Receptions is the number of successful receptions.
	Receptions int64
	// Collisions is the number of aggregated receptions with ≥ 2
	// overlapping arrivals.
	Collisions int64
	// DecodeFailures is the number of failed payload decodes.
	DecodeFailures int64
}

// Stats returns the network's event counts so far.
func (n *Network) Stats() Stats { return n.stats }

// SetRecorder mirrors every subsequent count into rec (nil disables
// mirroring; the Stats tally always runs). The same no-op-when-nil,
// observation-only contract as core.Detector.SetRecorder applies: a
// recorder never changes simulation results.
func (n *Network) SetRecorder(rec obs.Recorder) {
	n.rec = rec
	n.recSingle, n.recConcurrent = nil, nil
	if vs, ok := rec.(obs.VecSource); ok {
		vec := vs.CounterVec(MetricReceptionsByKind, "kind")
		n.recSingle = vec.With("single")
		n.recConcurrent = vec.With("concurrent")
	}
}

func (n *Network) countFrame() {
	n.stats.FramesOnAir++
	if n.rec != nil {
		n.rec.Count(MetricFramesOnAir, 1)
	}
}

func (n *Network) countReception(arrivals int) {
	n.stats.Receptions++
	if n.rec != nil {
		n.rec.Count(MetricReceptions, 1)
	}
	if arrivals >= 2 {
		n.stats.Collisions++
		if n.rec != nil {
			n.rec.Count(MetricCollisions, 1)
		}
		if n.recConcurrent != nil {
			n.recConcurrent.Inc()
		}
		return
	}
	if n.recSingle != nil {
		n.recSingle.Inc()
	}
}

func (n *Network) countDecode(ok bool) {
	if ok {
		return
	}
	n.stats.DecodeFailures++
	if n.rec != nil {
		n.rec.Count(MetricDecodeFailures, 1)
	}
}
