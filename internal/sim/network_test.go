package sim

import (
	"fmt"
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/geom"
)

// TestAddNodeDuplicateName pins the duplicate-name error (message
// included: callers match on it) now that the scan is a map lookup, for
// both explicit and derived names.
func TestAddNodeDuplicateName(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddNode(NodeConfig{ID: 0, Name: "anchor"}); err != nil {
		t.Fatal(err)
	}
	_, err = net.AddNode(NodeConfig{ID: 1, Name: "anchor"})
	if err == nil {
		t.Fatal("duplicate explicit name accepted")
	}
	if got, want := err.Error(), `sim: duplicate node name "anchor"`; got != want {
		t.Fatalf("error %q, want %q", got, want)
	}
	// Derived names ("node<ID>") collide through the same index.
	if _, err := net.AddNode(NodeConfig{ID: 2}); err != nil {
		t.Fatal(err)
	}
	_, err = net.AddNode(NodeConfig{ID: 2})
	if err == nil {
		t.Fatal("duplicate derived name accepted")
	}
	if got, want := err.Error(), `sim: duplicate node name "node2"`; got != want {
		t.Fatalf("error %q, want %q", got, want)
	}
	// A rejected add must not register the node.
	if got := len(net.Nodes()); got != 2 {
		t.Fatalf("%d nodes registered, want 2", got)
	}
}

// TestAddNodeManyUniqueNames exercises the index at a size where the old
// quadratic scan was already measurable, and checks RNG-stream stability:
// node creation draws must not depend on how the duplicate check is
// implemented.
func TestAddNodeManyUniqueNames(t *testing.T) {
	build := func() []*Node {
		net, err := NewNetwork(NetworkConfig{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			if _, err := net.AddNode(NodeConfig{
				ID:   i,
				Name: fmt.Sprintf("n%03d", i),
				Pos:  geom.Point{X: float64(i), Y: 1},
			}); err != nil {
				t.Fatal(err)
			}
		}
		return net.Nodes()
	}
	a, b := build(), build()
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("node counts %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Radio.Clock() != b[i].Radio.Clock() {
			t.Fatalf("node %d clock differs between identical builds", i)
		}
	}
}
