package sim

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/uwb-sim/concurrent-ranging/internal/obs"
	"github.com/uwb-sim/concurrent-ranging/internal/obs/trace"
)

// This file is the sharded engine's execution profiler: per-window,
// per-shard, per-worker wall-clock accounting (events executed, heap-depth
// high water, barrier waits, bus drains, worker occupancy) aggregated into
// a scaling diagnosis — where does a window's wall time go, which shard is
// the critical path, how far from ideal is the worker pool — and
// exportable as a Chrome trace timeline through the obs/trace exporter.
//
// The contract matches the Recorder/Tracer discipline exactly:
//
//   - A nil *EngineProfiler means "disabled". The engine pays one pointer
//     check per recording site and allocates nothing.
//   - Profiling is observational only: simulation results are bit-identical
//     with and without a profiler attached (the profiler wraps shard-window
//     execution but never reorders, skips, or times out anything).
//   - Everything the profiler measures is wall-clock-derived, so every
//     metric it records uses the _seconds / _live wall-time-class suffixes
//     and every report field it feeds is zeroed by obs.StripWallTime.

// Metric names the engine profiler records through a Recorder. All of them
// are wall-time-class (the _seconds / _live suffixes): which worker runs
// which shard is scheduling noise, so none of these may survive
// StripWallTime.
const (
	// MetricEngineWindowsLive is the barrier-window count so far (gauge).
	MetricEngineWindowsLive = "sim.engine_windows" + obs.LiveMetricSuffix
	// MetricEngineBusLive is the cross-shard bus messages drained so far
	// (gauge).
	MetricEngineBusLive = "sim.engine_bus_messages" + obs.LiveMetricSuffix
	// MetricEngineEfficiencyLive is the running parallel efficiency in
	// [0, 1]: shard busy time over worker-pool capacity (gauge).
	MetricEngineEfficiencyLive = "sim.engine_parallel_efficiency" + obs.LiveMetricSuffix
	// MetricEngineWorkerBusySeconds is the per-worker busy time
	// (gauge vec, labeled by worker slot).
	MetricEngineWorkerBusySeconds = "sim.engine_worker_busy_seconds"
	// MetricEngineWorkerOccupancyLive is the per-worker occupancy in
	// percent of the window-execution wall time (gauge vec, labeled by
	// worker slot).
	MetricEngineWorkerOccupancyLive = "sim.engine_worker_occupancy" + obs.LiveMetricSuffix
)

// DefaultTimelineCap bounds the per-run Chrome-timeline slice count. Each
// slice is one shard-window execution (~40 bytes); the default admits the
// full 10k-node swarm timeline while keeping a runaway 100k-node run's
// profiler memory bounded. Aggregate counters keep accumulating after the
// cap; only timeline detail is dropped (and counted).
const DefaultTimelineCap = 1 << 20

// EngineProfilerConfig parameterizes an EngineProfiler.
type EngineProfilerConfig struct {
	// Clock overrides the wall-clock source with a function returning
	// seconds; nil uses monotonic time since NewEngineProfiler. Tests use
	// it to pin timings.
	Clock func() float64
	// Recorder, when non-nil, receives the live sim.engine_* metrics (one
	// coordinator-side update per barrier window; per-worker series are
	// pre-resolved child handles, never per-event map lookups).
	Recorder obs.Recorder
	// TimelineCap bounds the timeline slice count; 0 selects
	// DefaultTimelineCap, negative disables the timeline entirely
	// (aggregates still accumulate).
	TimelineCap int
}

// profShard is one shard's accumulator. Within a window it is written only
// by the worker that claimed the shard; between windows only by the
// coordinator — the same ownership discipline as the shard itself.
type profShard struct {
	events  int64
	busy    float64
	windows int64
	heapHW  int
	busMsgs int64
}

// profWorker is one worker slot's accumulator, written only by that slot.
type profWorker struct {
	slices int64
	busy   float64
}

// timelineSlice is one shard-window execution, for the Chrome timeline.
type timelineSlice struct {
	start, end float64
	window     int32
	shard      int32
	events     int32
}

// windowRecord is one barrier window's coordinator-side timing.
type windowRecord struct {
	vStart, vEnd                 float64
	wallStart, execEnd, drainEnd float64
	index                        int32
	active                       int32
	workers                      int32
	busMsgs                      int32
}

// EngineProfiler collects execution timings from one ShardedEngine run.
// Attach with ShardedEngine.SetProfiler (or Swarm.RunShardedProfiled)
// before Run; read the aggregate with Profile and the timeline with
// WriteChromeTrace afterwards. A profiler is single-run state: attaching
// resets it.
type EngineProfiler struct {
	clock func() float64

	shards  []profShard
	workers []profWorker
	slices  [][]timelineSlice // per worker slot, lock-free appends
	windows []windowRecord

	timeLeft    atomic.Int64 // remaining timeline slice budget
	timelineCap int

	// Current-window scratch, coordinator-owned; workers read curIndex
	// through the happens-before edge of their window's goroutine start.
	curIndex           int
	curVStart, curVEnd float64
	curWallStart       float64
	curExecEnd         float64
	curActive          int
	curWorkers         int

	totalExec   float64 // Σ window execution spans
	totalWorker float64 // Σ effective-workers × execution span
	totalDrain  float64 // Σ barrier drain spans
	totalBus    int64
	nWindows    int

	// Live metric mirror: unlabeled gauges go through rec directly (one
	// call per window); per-worker series are pre-resolved child handles
	// (the VecSource idiom), so recording never does a label-tuple lookup.
	rec   obs.Recorder
	gBusy []*obs.Gauge
	gOcc  []*obs.Gauge
}

// NewEngineProfiler builds a profiler. See EngineProfilerConfig.
func NewEngineProfiler(cfg EngineProfilerConfig) *EngineProfiler {
	p := &EngineProfiler{clock: cfg.Clock, rec: cfg.Recorder, timelineCap: cfg.TimelineCap}
	if p.clock == nil {
		p.clock = profilerWallClock()
	}
	if p.timelineCap == 0 {
		p.timelineCap = DefaultTimelineCap
	}
	if p.timelineCap < 0 {
		p.timelineCap = 0
	}
	return p
}

// profilerWallClock returns the profiler's sanctioned monotonic wall-clock
// reader. Every duration derived from it flows into _seconds / _live
// metrics or wall-time-class report fields, all of which StripWallTime
// removes, so profiler wall time never reaches a determinism-checked
// output.
func profilerWallClock() func() float64 {
	start := time.Now() //lint:allow detrand profiler wall time feeds only StripWallTime-stripped outputs
	return func() float64 {
		return time.Since(start).Seconds() //lint:allow detrand profiler wall time feeds only StripWallTime-stripped outputs
	}
}

// attach sizes and resets the per-run state. Called by SetProfiler.
func (p *EngineProfiler) attach(shards, workers int) {
	p.shards = make([]profShard, shards)
	p.workers = make([]profWorker, workers)
	p.slices = make([][]timelineSlice, workers)
	p.windows = p.windows[:0]
	p.timeLeft.Store(int64(p.timelineCap))
	p.totalExec, p.totalWorker, p.totalDrain = 0, 0, 0
	p.totalBus, p.nWindows = 0, 0
	p.gBusy, p.gOcc = nil, nil
	if vs, ok := p.rec.(obs.VecSource); ok {
		busyVec := vs.GaugeVec(MetricEngineWorkerBusySeconds, "worker")
		occVec := vs.GaugeVec(MetricEngineWorkerOccupancyLive, "worker")
		p.gBusy = make([]*obs.Gauge, workers)
		p.gOcc = make([]*obs.Gauge, workers)
		for w := 0; w < workers; w++ {
			lbl := strconv.Itoa(w)
			p.gBusy[w] = busyVec.With(lbl)
			p.gOcc[w] = occVec.With(lbl)
		}
	}
}

// beginWindow opens a barrier window. Coordinator only.
func (p *EngineProfiler) beginWindow(index int, vStart, vEnd float64) {
	p.curIndex = index
	p.curVStart, p.curVEnd = vStart, vEnd
	p.curWallStart = p.clock()
	p.curActive, p.curWorkers = 0, 0
}

// windowWorkers records the window's active-shard and effective worker
// counts. Coordinator only, before the worker pool starts.
func (p *EngineProfiler) windowWorkers(active, workers int) {
	if workers < 1 {
		workers = 1
	}
	p.curActive, p.curWorkers = active, workers
}

// runShard executes one shard's window under the profiler's clock,
// attributing the span to the claiming worker slot. It is the only
// profiler entry point on the worker side; everything it touches is owned
// by the shard or the worker slot, so no locking is needed.
func (p *EngineProfiler) runShard(worker int, sh *shard, end float64) {
	t0 := p.clock()
	before := sh.executed
	sh.runWindow(end)
	t1 := p.clock()
	span := t1 - t0
	ps := &p.shards[sh.id] //lint:allow shardsafe the worker owns sh for this window via the atomic-cursor claim, so sh.id is the owning index here
	ps.events += int64(sh.executed - before)
	ps.busy += span
	ps.windows++
	pw := &p.workers[worker]
	pw.slices++
	pw.busy += span
	if p.timeLeft.Add(-1) >= 0 {
		p.slices[worker] = append(p.slices[worker], timelineSlice{
			start: t0, end: t1,
			window: int32(p.curIndex), shard: int32(sh.id),
			events: int32(sh.executed - before),
		})
	}
}

// execDone closes the window's execution phase. Coordinator only, after
// the worker pool has joined.
func (p *EngineProfiler) execDone() {
	p.curExecEnd = p.clock()
	span := p.curExecEnd - p.curWallStart
	p.totalExec += span
	p.totalWorker += float64(p.curWorkers) * span
}

// shardOutbox attributes a window's outgoing bus messages to their source
// shard. Coordinator only, at the barrier before the bus collects.
func (p *EngineProfiler) shardOutbox(shard, n int) {
	p.shards[shard].busMsgs += int64(n)
}

// endWindow closes the window after the bus drain and mirrors the live
// metrics. Coordinator only.
func (p *EngineProfiler) endWindow(busMsgs int) {
	drainEnd := p.clock()
	p.totalDrain += drainEnd - p.curExecEnd
	p.totalBus += int64(busMsgs)
	p.nWindows++
	if p.timelineCap > 0 && len(p.windows) < p.timelineCap {
		p.windows = append(p.windows, windowRecord{
			vStart: p.curVStart, vEnd: p.curVEnd,
			wallStart: p.curWallStart, execEnd: p.curExecEnd, drainEnd: drainEnd,
			index:  int32(p.curIndex),
			active: int32(p.curActive), workers: int32(p.curWorkers),
			busMsgs: int32(busMsgs),
		})
	}
	if p.rec != nil {
		p.rec.SetGauge(MetricEngineWindowsLive, float64(p.nWindows))
		p.rec.SetGauge(MetricEngineBusLive, float64(p.totalBus))
		var busy float64
		for w := range p.workers {
			busy += p.workers[w].busy
		}
		if p.totalWorker > 0 {
			p.rec.SetGauge(MetricEngineEfficiencyLive, busy/p.totalWorker)
		}
		for w := range p.workers {
			if p.gBusy != nil {
				p.gBusy[w].Set(p.workers[w].busy)
			}
			if p.gOcc != nil && p.totalExec > 0 {
				p.gOcc[w].Set(100 * p.workers[w].busy / p.totalExec)
			}
		}
	}
}

// EngineShardProfile is one shard's aggregate.
type EngineShardProfile struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Events counts the events the shard executed.
	Events int64 `json:"events"`
	// BusySeconds is the shard's summed window-execution wall time.
	BusySeconds float64 `json:"busy_seconds"`
	// Windows counts the windows in which the shard had work.
	Windows int64 `json:"windows"`
	// HeapHighWater is the deepest event heap observed.
	HeapHighWater int `json:"heap_high_water"`
	// BusMessages counts cross-shard messages the shard emitted.
	BusMessages int64 `json:"bus_messages"`
}

// EngineWorkerProfile is one worker slot's aggregate.
type EngineWorkerProfile struct {
	// Worker is the pool slot index.
	Worker int `json:"worker"`
	// ShardWindows counts the shard-window executions the slot claimed.
	ShardWindows int64 `json:"shard_windows"`
	// BusySeconds is the slot's summed execution wall time.
	BusySeconds float64 `json:"busy_seconds"`
	// OccupancyPct is BusySeconds over the total window-execution span,
	// in percent.
	OccupancyPct float64 `json:"occupancy_pct"`
}

// EngineProfile is the aggregated scaling diagnosis of one run.
type EngineProfile struct {
	// Shards, Workers, and Windows describe the profiled engine.
	Shards  int `json:"shards"`
	Workers int `json:"workers"`
	Windows int `json:"windows"`
	// Events is the total executed; BusMessages the total drained.
	Events      int64 `json:"events"`
	BusMessages int64 `json:"bus_messages"`
	// ExecSeconds is the summed window-execution wall time, DrainSeconds
	// the summed barrier-drain wall time, WorkerSeconds the worker-pool
	// capacity (Σ effective workers × window span), BusySeconds the part
	// of that capacity spent executing shards, and BarrierWaitSeconds the
	// part spent waiting at barriers (capacity − busy).
	ExecSeconds        float64 `json:"exec_seconds"`
	DrainSeconds       float64 `json:"drain_seconds"`
	WorkerSeconds      float64 `json:"worker_seconds"`
	BusySeconds        float64 `json:"busy_seconds"`
	BarrierWaitSeconds float64 `json:"barrier_wait_seconds"`
	// ParallelEfficiency is BusySeconds / WorkerSeconds in [0, 1]: 1 means
	// every worker executed shards for every window's full span.
	ParallelEfficiency float64 `json:"parallel_efficiency"`
	// BarrierStallPct is the barrier-wait share of the pool capacity and
	// DrainPct the bus-drain share of the total engine wall time, both in
	// percent — together the stall breakdown.
	BarrierStallPct float64 `json:"barrier_stall_pct"`
	DrainPct        float64 `json:"drain_pct"`
	// CriticalShard is the busiest shard (the window critical path) and
	// CriticalShardShare its share of the total busy time in [0, 1].
	CriticalShard      int     `json:"critical_shard"`
	CriticalShardShare float64 `json:"critical_shard_share"`
	// TimelineSlices counts the shard-window slices kept for the Chrome
	// timeline; TimelineDropped the ones beyond the cap.
	TimelineSlices  int   `json:"timeline_slices"`
	TimelineDropped int64 `json:"timeline_dropped"`
	// PerShard and PerWorker are the per-shard / per-worker aggregates.
	PerShard  []EngineShardProfile  `json:"per_shard"`
	PerWorker []EngineWorkerProfile `json:"per_worker"`
}

// Profile aggregates the collected timings. Call after Run has returned.
func (p *EngineProfiler) Profile() *EngineProfile {
	out := &EngineProfile{
		Shards:        len(p.shards),
		Workers:       len(p.workers),
		Windows:       p.nWindows,
		BusMessages:   p.totalBus,
		ExecSeconds:   p.totalExec,
		DrainSeconds:  p.totalDrain,
		WorkerSeconds: p.totalWorker,
		CriticalShard: -1,
	}
	var maxBusy float64
	for i := range p.shards {
		s := &p.shards[i]
		out.Events += s.events
		out.BusySeconds += s.busy
		if s.windows == 0 && s.events == 0 && s.busMsgs == 0 {
			continue
		}
		out.PerShard = append(out.PerShard, EngineShardProfile{
			Shard: i, Events: s.events, BusySeconds: s.busy,
			Windows: s.windows, HeapHighWater: s.heapHW, BusMessages: s.busMsgs,
		})
		if s.busy > maxBusy {
			maxBusy, out.CriticalShard = s.busy, i
		}
	}
	if out.BusySeconds > 0 && out.CriticalShard >= 0 {
		out.CriticalShardShare = maxBusy / out.BusySeconds
	}
	for w := range p.workers {
		wp := EngineWorkerProfile{
			Worker: w, ShardWindows: p.workers[w].slices, BusySeconds: p.workers[w].busy,
		}
		if p.totalExec > 0 {
			wp.OccupancyPct = 100 * wp.BusySeconds / p.totalExec
		}
		out.PerWorker = append(out.PerWorker, wp)
		out.TimelineSlices += len(p.slices[w])
	}
	if p.totalWorker > 0 {
		out.ParallelEfficiency = out.BusySeconds / p.totalWorker
		out.BarrierWaitSeconds = p.totalWorker - out.BusySeconds
		if out.BarrierWaitSeconds < 0 {
			out.BarrierWaitSeconds = 0
		}
		out.BarrierStallPct = 100 * out.BarrierWaitSeconds / p.totalWorker
	}
	if wall := p.totalExec + p.totalDrain; wall > 0 {
		out.DrainPct = 100 * p.totalDrain / wall
	}
	if left := p.timeLeft.Load(); left < 0 {
		out.TimelineDropped = -left
	}
	return out
}

// String renders a one-screen diagnosis summary.
func (ep *EngineProfile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine profile: %d shards, %d workers, %d windows, %d events, %d bus messages\n",
		ep.Shards, ep.Workers, ep.Windows, ep.Events, ep.BusMessages)
	fmt.Fprintf(&b, "  parallel efficiency %.1f%%  barrier stall %.1f%%  bus drain %.1f%% of wall\n",
		100*ep.ParallelEfficiency, ep.BarrierStallPct, ep.DrainPct)
	if ep.CriticalShard >= 0 {
		fmt.Fprintf(&b, "  critical shard %d carries %.1f%% of busy time\n",
			ep.CriticalShard, 100*ep.CriticalShardShare)
	}
	for _, w := range ep.PerWorker {
		fmt.Fprintf(&b, "  worker %d: %d shard-windows, busy %.3fs (%.1f%% occupancy)\n",
			w.Worker, w.ShardWindows, w.BusySeconds, w.OccupancyPct)
	}
	if ep.TimelineDropped > 0 {
		fmt.Fprintf(&b, "  timeline: %d slices kept, %d dropped beyond cap\n",
			ep.TimelineSlices, ep.TimelineDropped)
	}
	return b.String()
}

// WriteChromeTrace exports the collected timeline in the Chrome
// trace-event format by synthesizing a flight-recorder event stream and
// reusing the obs/trace exporter: one track per worker slot (shard-window
// slices), plus one coordinator track (barrier-window slices carrying the
// drain accounting). Load the file in chrome://tracing or Perfetto.
func (p *EngineProfiler) WriteChromeTrace(w io.Writer) error {
	var events []trace.Event
	var seq uint64
	emit := func(ev trace.Event) {
		seq++
		ev.Seq = seq
		events = append(events, ev)
	}
	// Span IDs: 1 is the coordinator root, 2..workers+1 the worker roots,
	// the rest sequential. WriteChromeTrace groups spans onto tracks by
	// root span, so every worker gets exactly one track.
	nextSpan := uint64(len(p.workers) + 2)
	t0, t1 := 0.0, 0.0
	if len(p.windows) > 0 {
		t0 = p.windows[0].wallStart
		t1 = p.windows[len(p.windows)-1].drainEnd
	}
	emit(trace.Event{Span: 1, Phase: trace.PhaseBegin, Name: trace.SpanEngineCoordinator, TS: t0,
		Attrs: trace.Attrs{"shards": len(p.shards), "workers": len(p.workers), "windows": p.nWindows}})
	for w := range p.workers {
		emit(trace.Event{Span: uint64(w + 2), Phase: trace.PhaseBegin, Name: trace.SpanEngineWorker, TS: t0,
			Attrs: trace.Attrs{trace.AttrWorker: w}})
	}
	for _, win := range p.windows {
		id := nextSpan
		nextSpan++
		emit(trace.Event{Span: id, Parent: 1, Phase: trace.PhaseBegin, Name: trace.SpanEngineWindow,
			TS: win.wallStart, Attrs: trace.Attrs{
				trace.AttrWindow: int(win.index), "active_shards": int(win.active),
				"workers": int(win.workers), "bus_messages": int(win.busMsgs),
				"virtual_start_s": win.vStart, "virtual_end_s": win.vEnd,
				"drain_s": win.drainEnd - win.execEnd,
			}})
		emit(trace.Event{Span: id, Phase: trace.PhaseEnd, TS: win.drainEnd})
	}
	for w := range p.slices {
		parent := uint64(w + 2)
		for _, sl := range p.slices[w] {
			id := nextSpan
			nextSpan++
			emit(trace.Event{Span: id, Parent: parent, Phase: trace.PhaseBegin, Name: trace.SpanEngineShard,
				TS: sl.start, Attrs: trace.Attrs{
					trace.AttrShard: int(sl.shard), trace.AttrWindow: int(sl.window),
					"events": int(sl.events),
				}})
			emit(trace.Event{Span: id, Phase: trace.PhaseEnd, TS: sl.end})
		}
	}
	emit(trace.Event{Span: 1, Phase: trace.PhaseEnd, TS: t1})
	for w := range p.workers {
		emit(trace.Event{Span: uint64(w + 2), Phase: trace.PhaseEnd, TS: t1})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	return trace.WriteChromeTrace(w, events)
}
