package sim

import (
	"math"
	"math/cmplx"

	"github.com/uwb-sim/concurrent-ranging/internal/dsp"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
)

// Payload capture model.
//
// The paper (and the feasibility study it builds on) relies on the
// observation that one of the concurrently transmitted payloads — in
// practice the one whose preamble the receiver locked to — can still be
// decoded. With few responders or a dominant first arrival that holds;
// with many responders at comparable power the overlapping payloads act
// as interference and the decode can fail. RoundConfig.CaptureModel makes
// this failure mode explicit; the default (nil) keeps the paper's working
// assumption that the locked payload always decodes.

// CaptureModel decides whether the locked frame's payload survives the
// interference of the other concurrent responses.
type CaptureModel struct {
	// ThresholdDB is the minimum signal-to-interference ratio (locked
	// arrival power over the summed power of all other arrivals) for a
	// successful decode, in dB. UWB preamble processing gain makes
	// negative thresholds realistic.
	ThresholdDB float64
	// ProcessingGainDB is added to the locked arrival's power to model
	// the despreading gain of the preamble-locked correlator.
	ProcessingGainDB float64
}

// DefaultCaptureModel reflects a DW1000-like receiver: the locked frame
// survives up to roughly 9 dB of aggregate interference.
func DefaultCaptureModel() *CaptureModel {
	return &CaptureModel{ThresholdDB: -9, ProcessingGainDB: 0}
}

// Decode reports whether the locked arrival's payload decodes against the
// aggregate interference of the other arrivals.
func (m *CaptureModel) Decode(arrivals []dw1000.Arrival, lockedSource string) bool {
	if m == nil {
		return true
	}
	var locked, interference float64
	for i := range arrivals {
		p := arrivalPower(&arrivals[i])
		if arrivals[i].SourceID == lockedSource {
			locked += p
		} else {
			interference += p
		}
	}
	if locked == 0 {
		return false
	}
	if interference == 0 {
		return true
	}
	sir := dsp.DB(locked/interference) + m.ProcessingGainDB
	return sir >= m.ThresholdDB
}

// arrivalPower sums the tap powers of one arrival.
func arrivalPower(a *dw1000.Arrival) float64 {
	amp := a.Amplitude
	if amp == 0 {
		amp = 1
	}
	var p float64
	for _, t := range a.Taps {
		v := cmplx.Abs(t.Gain)
		p += v * v
	}
	return p * amp * amp
}

// SIRdB returns the locked arrival's signal-to-interference ratio in dB,
// for diagnostics (math.Inf(1) with a single arrival).
func SIRdB(arrivals []dw1000.Arrival, lockedSource string) float64 {
	var locked, interference float64
	for i := range arrivals {
		p := arrivalPower(&arrivals[i])
		if arrivals[i].SourceID == lockedSource {
			locked += p
		} else {
			interference += p
		}
	}
	if interference == 0 {
		return math.Inf(1)
	}
	return dsp.DB(locked / interference)
}
