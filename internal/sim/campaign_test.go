package sim

import (
	"math"
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/geom"
)

func campaignNetwork(t *testing.T, n int, seed uint64) (*Network, []*Node) {
	t.Helper()
	net, err := NewNetwork(NetworkConfig{Environment: channel.Hallway(), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var nodes []*Node
	for i := 0; i < n; i++ {
		node, err := net.AddNode(NodeConfig{ID: i, Pos: geom.Point{X: 1 + 3*float64(i), Y: 0.9}})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	return net, nodes
}

func TestScheduledCampaignMeasuresAllPairs(t *testing.T) {
	net, nodes := campaignNetwork(t, 4, 41)
	res, err := net.RunScheduledCampaign(nodes, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Distances) != 6 {
		t.Fatalf("%d pairs, want 6", len(res.Distances))
	}
	if res.Messages != 12 { // N·(N−1) for N=4
		t.Fatalf("messages %d, want 12", res.Messages)
	}
	for pair, d := range res.Distances {
		truth := 3 * math.Abs(float64(pair[1]-pair[0]))
		if math.Abs(d-truth) > 0.1 {
			t.Fatalf("pair %v: %g, want %g", pair, d, truth)
		}
	}
	if res.Duration <= 0 || res.AirTime <= 0 || res.RadioEnergy <= 0 {
		t.Fatalf("costs not tallied: %+v", res)
	}
	if _, err := net.RunScheduledCampaign(nodes[:1], 0, nil); err == nil {
		t.Fatal("single node accepted")
	}
}

func TestConcurrentCampaignBeatsScheduled(t *testing.T) {
	netA, nodesA := campaignNetwork(t, 5, 43)
	sched, err := netA.RunScheduledCampaign(nodesA, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	netB, nodesB := campaignNetwork(t, 5, 43)
	conc, _, err := netB.RunConcurrentCampaign(nodesB[0], nodesB[1:], RoundConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if conc.Messages != 5 || sched.Messages != 20 {
		t.Fatalf("messages %d vs %d", conc.Messages, sched.Messages)
	}
	// One concurrent round must be far cheaper on every axis than the
	// full scheduled campaign — the paper's headline claim, now measured
	// on simulated protocols rather than analytic formulas.
	if conc.Duration >= sched.Duration/3 {
		t.Fatalf("duration %g vs %g", conc.Duration, sched.Duration)
	}
	if conc.AirTime >= sched.AirTime/3 {
		t.Fatalf("air time %g vs %g", conc.AirTime, sched.AirTime)
	}
	if conc.RadioEnergy >= sched.RadioEnergy {
		t.Fatalf("energy %g vs %g", conc.RadioEnergy, sched.RadioEnergy)
	}
}

func TestCaptureModelDecodesCleanRound(t *testing.T) {
	net, init, resps := hallwayNetwork(t, 47)
	res, err := net.RunConcurrentRound(init, resps, RoundConfig{Capture: DefaultCaptureModel()})
	if err != nil {
		t.Fatal(err)
	}
	// Three responders with the closest dominating: the lock decodes.
	if !res.DecodeOK {
		t.Fatalf("decode failed at SIR %.1f dB", res.LockSIRdB)
	}
	if math.IsInf(res.LockSIRdB, 0) || res.LockSIRdB <= 0 {
		t.Fatalf("implausible SIR %g for a dominant lock", res.LockSIRdB)
	}
}

func TestCaptureModelFailsUnderHeavyInterference(t *testing.T) {
	// Nine equal-power responders: the locked frame sits ~9 dB under the
	// aggregate interference; a 0 dB-threshold receiver cannot decode.
	net, err := NewNetwork(NetworkConfig{Environment: channel.FreeSpace(), Seed: 49})
	if err != nil {
		t.Fatal(err)
	}
	init, _ := net.AddNode(NodeConfig{ID: -1, Name: "init", Pos: geom.Point{X: 0, Y: 0}})
	var resps []*Node
	for i := 0; i < 9; i++ {
		// All at the same distance on a circle.
		angle := float64(i) * 2 * math.Pi / 9
		node, err := net.AddNode(NodeConfig{ID: i, Pos: geom.Point{
			X: 5 * math.Cos(angle), Y: 5 * math.Sin(angle)}})
		if err != nil {
			t.Fatal(err)
		}
		resps = append(resps, node)
	}
	strict := &CaptureModel{ThresholdDB: 0}
	res, err := net.RunConcurrentRound(init, resps, RoundConfig{Capture: strict})
	if err != nil {
		t.Fatal(err)
	}
	if res.DecodeOK {
		t.Fatalf("decode succeeded at SIR %.1f dB against a 0 dB threshold", res.LockSIRdB)
	}
	if res.LockSIRdB > -8 {
		t.Fatalf("SIR %g dB, want ~ -9 dB for 8 equal interferers", res.LockSIRdB)
	}
	// The default (more tolerant) model also fails here.
	net2, err := NewNetwork(NetworkConfig{Environment: channel.FreeSpace(), Seed: 49})
	if err != nil {
		t.Fatal(err)
	}
	init2, _ := net2.AddNode(NodeConfig{ID: -1, Name: "init", Pos: geom.Point{X: 0, Y: 0}})
	var resps2 []*Node
	for i := 0; i < 9; i++ {
		angle := float64(i) * 2 * math.Pi / 9
		node, _ := net2.AddNode(NodeConfig{ID: i, Pos: geom.Point{
			X: 5 * math.Cos(angle), Y: 5 * math.Sin(angle)}})
		resps2 = append(resps2, node)
	}
	res2, err := net2.RunConcurrentRound(init2, resps2, RoundConfig{Capture: DefaultCaptureModel()})
	if err != nil {
		t.Fatal(err)
	}
	if res2.DecodeOK {
		t.Fatal("equal-power 9-responder round should defeat even the default capture model")
	}
}

func TestDriftCompensationRemovesTWRBias(t *testing.T) {
	run := func(compensate bool) float64 {
		net, err := NewNetwork(NetworkConfig{Environment: channel.Office(), Seed: 53})
		if err != nil {
			t.Fatal(err)
		}
		a, _ := net.AddNode(NodeConfig{ID: -1, Name: "init", Pos: geom.Point{X: 1, Y: 1}})
		b, _ := net.AddNode(NodeConfig{ID: 0, Name: "resp", Pos: geom.Point{X: 6, Y: 1},
			ClockOffsetPPM: 10})
		var sum float64
		const rounds = 30
		for i := 0; i < rounds; i++ {
			res, err := net.RunConcurrentRound(a, []*Node{b}, RoundConfig{
				DriftCompensation: compensate,
			})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.TWRDistance() - 5
		}
		return sum / rounds
	}
	biased := run(false)
	compensated := run(true)
	// +10 ppm at Δ_RESP = 290 µs → ~ -0.43 m bias without compensation.
	wantBias := -channel.SpeedOfLight * 290e-6 * 10e-6 / 2
	if math.Abs(biased-wantBias) > 0.05 {
		t.Fatalf("uncompensated bias %g, want ~%g", biased, wantBias)
	}
	if math.Abs(compensated) > 0.02 {
		t.Fatalf("compensated bias %g, want ~0", compensated)
	}
}

func TestTracerEmitsProtocolTimeline(t *testing.T) {
	net, init, resps := hallwayNetwork(t, 59)
	var events []TraceEvent
	net.SetTracer(func(e TraceEvent) { events = append(events, e) })
	if _, err := net.RunConcurrentRound(init, resps, RoundConfig{}); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for i, e := range events {
		kinds[e.Kind]++
		if i > 0 && e.Time < events[i-1].Time-1e-12 {
			t.Fatalf("trace not time-ordered at %d: %v after %v", i, e, events[i-1])
		}
		if e.String() == "" {
			t.Fatal("empty rendering")
		}
	}
	if kinds[EventTXInit] != 1 || kinds[EventRXInit] != 3 ||
		kinds[EventTXResponse] != 3 || kinds[EventRXAggregate] != 1 || kinds[EventDecode] != 1 {
		t.Fatalf("event census %v", kinds)
	}
	// Tracing off: no callback.
	net.SetTracer(nil)
	before := len(events)
	if _, err := net.RunConcurrentRound(init, resps, RoundConfig{}); err != nil {
		t.Fatal(err)
	}
	if len(events) != before {
		t.Fatal("tracer fired after being removed")
	}
}
