package airtime

import (
	"math"
	"testing"
)

func closeTo(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSymbolDurations(t *testing.T) {
	cases := []struct {
		rate DataRate
		want float64 // seconds
	}{
		{Rate110K, 8205.13e-9},
		{Rate850K, 1025.64e-9},
		{Rate6M8, 128.21e-9},
	}
	for _, c := range cases {
		got, err := c.rate.SymbolDuration()
		if err != nil {
			t.Fatal(err)
		}
		if !closeTo(got, c.want, 0.01e-9) {
			t.Errorf("%v symbol duration %g, want %g", c.rate, got, c.want)
		}
	}
	if _, err := DataRate(0).SymbolDuration(); err == nil {
		t.Error("invalid rate accepted")
	}
}

func TestPreambleSymbolDurations(t *testing.T) {
	got, err := PRF64.PreambleSymbolDuration()
	if err != nil {
		t.Fatal(err)
	}
	if !closeTo(got, 1017.63e-9, 0.01e-9) {
		t.Errorf("PRF64 preamble symbol %g, want 1017.63 ns", got)
	}
	got, err = PRF16.PreambleSymbolDuration()
	if err != nil {
		t.Fatal(err)
	}
	if !closeTo(got, 993.59e-9, 0.01e-9) {
		t.Errorf("PRF16 preamble symbol %g, want 993.59 ns", got)
	}
	if _, err := PRF(42).PreambleSymbolDuration(); err == nil {
		t.Error("invalid PRF accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := PaperConfig().Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
	bad := []Config{
		{Rate: DataRate(9), PRF: PRF64, PreambleSymbols: 128},
		{Rate: Rate6M8, PRF: PRF(5), PreambleSymbols: 128},
		{Rate: Rate6M8, PRF: PRF64, PreambleSymbols: 100},
		{Rate: Rate6M8, PRF: PRF64, PreambleSymbols: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPaperMinimumResponseDelay(t *testing.T) {
	// Sect. III: DR = 6.8 Mbps, PRF = 64 MHz, PSR = 128 → the PHR+payload
	// of INIT plus preamble+SFD of RESP last 178.5 µs.
	got, err := MinResponseDelay(PaperConfig(), InitPayloadBytes)
	if err != nil {
		t.Fatal(err)
	}
	if !closeTo(got, 178.5e-6, 0.5e-6) {
		t.Fatalf("minimum response delay %g µs, want 178.5 µs", got*1e6)
	}
}

func TestPaperResponseDelayWithTurnaround(t *testing.T) {
	// 178.5 µs + <100 µs turnaround + safety gap → the paper's 290 µs.
	got, err := ResponseDelay(PaperConfig(), InitPayloadBytes, DefaultTurnaround)
	if err != nil {
		t.Fatal(err)
	}
	if !closeTo(got, DefaultResponseDelay, 1e-9) {
		t.Fatalf("response delay %g µs, want 290 µs", got*1e6)
	}
	if _, err := ResponseDelay(PaperConfig(), 12, -1); err == nil {
		t.Error("negative turnaround accepted")
	}
}

func TestPreambleDurationPaperConfig(t *testing.T) {
	got, err := PaperConfig().PreambleDuration()
	if err != nil {
		t.Fatal(err)
	}
	if !closeTo(got, 128*1017.63e-9, 1e-9) {
		t.Fatalf("preamble %g µs", got*1e6)
	}
}

func TestSFDLongerAt110K(t *testing.T) {
	slow := Config{Rate: Rate110K, PRF: PRF64, PreambleSymbols: 1024}
	fast := PaperConfig()
	s1, err := slow.SFDDuration()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := fast.SFDDuration()
	if err != nil {
		t.Fatal(err)
	}
	if !closeTo(s1/s2, 8, 1e-9) { // 64 symbols vs 8
		t.Fatalf("SFD ratio %g, want 8", s1/s2)
	}
}

func TestPayloadDurationReedSolomonBlocks(t *testing.T) {
	c := PaperConfig()
	sym, _ := Rate6M8.SymbolDuration()
	// 12 bytes = 96 bits: one RS block → 96+48 symbols.
	got, err := c.PayloadDuration(12)
	if err != nil {
		t.Fatal(err)
	}
	if !closeTo(got, 144*sym, 1e-12) {
		t.Fatalf("12-byte payload %g, want %g", got, 144*sym)
	}
	// 42 bytes = 336 bits: two RS blocks → 336+96 symbols.
	got, err = c.PayloadDuration(42)
	if err != nil {
		t.Fatal(err)
	}
	if !closeTo(got, 432*sym, 1e-12) {
		t.Fatalf("42-byte payload %g, want %g", got, 432*sym)
	}
	if _, err := c.PayloadDuration(-1); err == nil {
		t.Error("negative payload accepted")
	}
	// Zero-byte payload: zero blocks, zero duration.
	got, err = c.PayloadDuration(0)
	if err != nil || got != 0 {
		t.Errorf("empty payload duration %g, err %v", got, err)
	}
}

func TestFrameDurationIsSumOfParts(t *testing.T) {
	c := PaperConfig()
	shr, _ := c.SHRDuration()
	phr, _ := c.PHRDuration()
	pay, _ := c.PayloadDuration(20)
	frame, err := c.FrameDuration(20)
	if err != nil {
		t.Fatal(err)
	}
	if !closeTo(frame, shr+phr+pay, 1e-12) {
		t.Fatalf("frame %g != %g", frame, shr+phr+pay)
	}
}

func TestFrameDurationMonotonicInPayload(t *testing.T) {
	c := PaperConfig()
	prev := -1.0
	for n := 0; n <= 127; n += 3 {
		d, err := c.FrameDuration(n)
		if err != nil {
			t.Fatal(err)
		}
		if d < prev {
			t.Fatalf("frame duration decreased at %d bytes", n)
		}
		prev = d
	}
}

func TestScheduledVsConcurrentMessageCounts(t *testing.T) {
	// The headline scaling claim: N·(N−1) messages scheduled vs N
	// concurrent (Sect. III).
	c := PaperConfig()
	p := DefaultPowerModel()
	for _, n := range []int{2, 3, 10, 50} {
		sched, err := ScheduledTWRCost(c, p, n)
		if err != nil {
			t.Fatal(err)
		}
		conc, err := ConcurrentCost(c, p, n)
		if err != nil {
			t.Fatal(err)
		}
		if sched.Messages != n*(n-1) {
			t.Fatalf("n=%d: scheduled messages %d, want %d", n, sched.Messages, n*(n-1))
		}
		if conc.Messages != n {
			t.Fatalf("n=%d: concurrent messages %d, want %d", n, conc.Messages, n)
		}
		if conc.InitiatorTx != 1 || conc.InitiatorRx != 1 {
			t.Fatalf("n=%d: concurrent initiator ops %d/%d, want 1/1",
				n, conc.InitiatorTx, conc.InitiatorRx)
		}
		if n > 2 && conc.NetworkEnergy >= sched.NetworkEnergy {
			t.Fatalf("n=%d: concurrent energy %g not below scheduled %g",
				n, conc.NetworkEnergy, sched.NetworkEnergy)
		}
		if conc.AirTime >= sched.AirTime && n > 2 {
			t.Fatalf("n=%d: concurrent air time not lower", n)
		}
	}
	if _, err := ScheduledTWRCost(c, p, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := ConcurrentCost(c, p, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestEnergyModel(t *testing.T) {
	p := DefaultPowerModel()
	// 155 mA × 3.3 V × 1 ms ≈ 0.51 mJ.
	if got := p.RxEnergy(1e-3); !closeTo(got, 0.155*3.3*1e-3, 1e-12) {
		t.Fatalf("RxEnergy = %g", got)
	}
	if p.RxEnergy(1) <= p.TxEnergy(1) {
		t.Fatal("receive must cost more than transmit on the DW1000")
	}
	if p.IdleEnergy(1) >= p.TxEnergy(1) {
		t.Fatal("idle must be far cheaper than active modes")
	}
}

func TestDataRateString(t *testing.T) {
	if Rate6M8.String() != "6.8Mbps" || Rate110K.String() != "110kbps" || Rate850K.String() != "850kbps" {
		t.Fatal("unexpected rate names")
	}
	if DataRate(7).String() == "" {
		t.Fatal("unknown rate must still format")
	}
}

func TestInvalidConfigPropagatesThroughDurations(t *testing.T) {
	bad := Config{Rate: DataRate(9), PRF: PRF64, PreambleSymbols: 128}
	if _, err := bad.PreambleDuration(); err == nil {
		t.Error("PreambleDuration accepted invalid config")
	}
	if _, err := bad.SFDDuration(); err == nil {
		t.Error("SFDDuration accepted invalid config")
	}
	if _, err := bad.SHRDuration(); err == nil {
		t.Error("SHRDuration accepted invalid config")
	}
	if _, err := bad.PHRDuration(); err == nil {
		t.Error("PHRDuration accepted invalid config")
	}
	if _, err := bad.PayloadDuration(10); err == nil {
		t.Error("PayloadDuration accepted invalid config")
	}
	if _, err := bad.FrameDuration(10); err == nil {
		t.Error("FrameDuration accepted invalid config")
	}
	if _, err := MinResponseDelay(bad, 10); err == nil {
		t.Error("MinResponseDelay accepted invalid config")
	}
	if _, err := ResponseDelay(bad, 10, 0); err == nil {
		t.Error("ResponseDelay accepted invalid config")
	}
	if _, err := ScheduledTWRCost(bad, DefaultPowerModel(), 4); err == nil {
		t.Error("ScheduledTWRCost accepted invalid config")
	}
	if _, err := ConcurrentCost(bad, DefaultPowerModel(), 4); err == nil {
		t.Error("ConcurrentCost accepted invalid config")
	}
}

func TestPHRRateAt110K(t *testing.T) {
	// At 110 kbps the PHR is sent at 110 kbps; at the faster rates it
	// drops to 850 kbps.
	slow := Config{Rate: Rate110K, PRF: PRF64, PreambleSymbols: 1024}
	phrSlow, err := slow.PHRDuration()
	if err != nil {
		t.Fatal(err)
	}
	fast := PaperConfig()
	phrFast, err := fast.PHRDuration()
	if err != nil {
		t.Fatal(err)
	}
	if !closeTo(phrSlow/phrFast, 8, 1e-9) { // symbol ratio 8205/1025
		t.Fatalf("PHR ratio %g, want 8", phrSlow/phrFast)
	}
}

func TestMinResponseDelayGrowsWithPayload(t *testing.T) {
	c := PaperConfig()
	small, err := MinResponseDelay(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	large, err := MinResponseDelay(c, 100)
	if err != nil {
		t.Fatal(err)
	}
	if large <= small {
		t.Fatal("longer INIT payload must increase the minimum delay")
	}
}
