// Package airtime computes IEEE 802.15.4 UWB PHY frame durations and radio
// energy costs for the DW1000. Sect. III of the paper derives the minimum
// concurrent-ranging response delay Δ_RESP from these durations: at a data
// rate of 6.8 Mbps, PRF 64 MHz and a preamble symbol repetition of 128, the
// PHR and payload of the INIT frame plus the preamble and SFD of the RESP
// frame last 178.5 µs; adding the receive→transmit turnaround and a safety
// gap yields the 290 µs the paper uses.
//
// All durations are float64 seconds: the underlying chip period is
// ~2.0032 ns and several quantities (preamble symbols, timestamps) need
// sub-nanosecond precision that time.Duration cannot represent.
package airtime

import (
	"fmt"
	"math"
)

// ChipFrequency is the fundamental UWB chipping rate, Hz.
const ChipFrequency = 499.2e6

// ChipDuration is one chip period in seconds (~2.0032 ns).
const ChipDuration = 1 / ChipFrequency

// DataRate enumerates the IEEE 802.15.4 UWB payload bit rates.
type DataRate int

// Supported data rates.
const (
	Rate110K DataRate = iota + 1
	Rate850K
	Rate6M8
)

// String returns the conventional name of the rate.
func (r DataRate) String() string {
	switch r {
	case Rate110K:
		return "110kbps"
	case Rate850K:
		return "850kbps"
	case Rate6M8:
		return "6.8Mbps"
	default:
		return fmt.Sprintf("DataRate(%d)", int(r))
	}
}

// symbolChips returns the data symbol length in chips.
func (r DataRate) symbolChips() (int, error) {
	switch r {
	case Rate110K:
		return 4096, nil
	case Rate850K:
		return 512, nil
	case Rate6M8:
		return 64, nil
	default:
		return 0, fmt.Errorf("airtime: unknown data rate %d", int(r))
	}
}

// SymbolDuration returns the payload symbol duration in seconds
// (8205.13 ns / 1025.64 ns / 128.21 ns for the three rates).
func (r DataRate) SymbolDuration() (float64, error) {
	chips, err := r.symbolChips()
	if err != nil {
		return 0, err
	}
	return float64(chips) * ChipDuration, nil
}

// PRF is the mean pulse repetition frequency in MHz.
type PRF int

// Supported pulse repetition frequencies.
const (
	PRF16 PRF = 16
	PRF64 PRF = 64
)

// PreambleSymbolDuration returns the duration of one preamble symbol in
// seconds: 993.59 ns at PRF 16 (length-31 code, spreading 16) and
// 1017.63 ns at PRF 64 (length-127 code, spreading 4).
func (p PRF) PreambleSymbolDuration() (float64, error) {
	switch p {
	case PRF16:
		return 496 * ChipDuration, nil
	case PRF64:
		return 508 * ChipDuration, nil
	default:
		return 0, fmt.Errorf("airtime: unknown PRF %d", int(p))
	}
}

// phrBits is the physical-layer header length in bits (SECDED included).
const phrBits = 21

// rsBlockBits and rsParityBits describe the Reed-Solomon outer code: 48
// parity bits are appended per (up to) 330-bit payload block.
const (
	rsBlockBits  = 330
	rsParityBits = 48
)

// validPreambleSymbols are the preamble symbol repetitions the DW1000
// supports.
var validPreambleSymbols = map[int]bool{
	64: true, 128: true, 256: true, 512: true,
	1024: true, 1536: true, 2048: true, 4096: true,
}

// Config is a UWB PHY configuration.
type Config struct {
	// Rate is the payload data rate.
	Rate DataRate
	// PRF is the mean pulse repetition frequency.
	PRF PRF
	// PreambleSymbols is the preamble symbol repetition (PSR).
	PreambleSymbols int
}

// PaperConfig is the configuration the paper uses throughout: 6.8 Mbps,
// PRF 64 MHz, PSR 128.
func PaperConfig() Config {
	return Config{Rate: Rate6M8, PRF: PRF64, PreambleSymbols: 128}
}

// Validate checks the configuration against the values the DW1000 accepts.
func (c Config) Validate() error {
	if _, err := c.Rate.SymbolDuration(); err != nil {
		return err
	}
	if _, err := c.PRF.PreambleSymbolDuration(); err != nil {
		return err
	}
	if !validPreambleSymbols[c.PreambleSymbols] {
		return fmt.Errorf("airtime: unsupported preamble length %d", c.PreambleSymbols)
	}
	return nil
}

// sfdSymbols returns the start-of-frame-delimiter length in preamble
// symbols: 64 at 110 kbps, 8 otherwise.
func (c Config) sfdSymbols() int {
	if c.Rate == Rate110K {
		return 64
	}
	return 8
}

// phrRate returns the rate the PHR is transmitted at: the PHR uses
// 850 kbps whenever the payload rate is 850 kbps or 6.8 Mbps.
func (c Config) phrRate() DataRate {
	if c.Rate == Rate110K {
		return Rate110K
	}
	return Rate850K
}

// PreambleDuration returns the duration of the repeated preamble sequence.
func (c Config) PreambleDuration() (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	sym, err := c.PRF.PreambleSymbolDuration()
	if err != nil {
		return 0, err
	}
	return float64(c.PreambleSymbols) * sym, nil
}

// SFDDuration returns the start-of-frame-delimiter duration.
func (c Config) SFDDuration() (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	sym, err := c.PRF.PreambleSymbolDuration()
	if err != nil {
		return 0, err
	}
	return float64(c.sfdSymbols()) * sym, nil
}

// SHRDuration returns the synchronization header duration
// (preamble + SFD) — the part of the frame the CIR is estimated from.
func (c Config) SHRDuration() (float64, error) {
	p, err := c.PreambleDuration()
	if err != nil {
		return 0, err
	}
	s, err := c.SFDDuration()
	if err != nil {
		return 0, err
	}
	return p + s, nil
}

// PHRDuration returns the physical-layer header duration.
func (c Config) PHRDuration() (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	sym, err := c.phrRate().SymbolDuration()
	if err != nil {
		return 0, err
	}
	return phrBits * sym, nil
}

// PayloadDuration returns the duration of an n-byte MAC frame payload
// including Reed-Solomon parity.
func (c Config) PayloadDuration(nBytes int) (float64, error) {
	if nBytes < 0 {
		return 0, fmt.Errorf("airtime: negative payload size %d", nBytes)
	}
	if err := c.Validate(); err != nil {
		return 0, err
	}
	sym, err := c.Rate.SymbolDuration()
	if err != nil {
		return 0, err
	}
	bits := 8 * nBytes
	blocks := (bits + rsBlockBits - 1) / rsBlockBits
	total := bits + rsParityBits*blocks
	return float64(total) * sym, nil
}

// FrameDuration returns the full on-air duration of an n-byte frame:
// preamble + SFD + PHR + payload.
func (c Config) FrameDuration(nBytes int) (float64, error) {
	shr, err := c.SHRDuration()
	if err != nil {
		return 0, err
	}
	phr, err := c.PHRDuration()
	if err != nil {
		return 0, err
	}
	pay, err := c.PayloadDuration(nBytes)
	if err != nil {
		return 0, err
	}
	return shr + phr + pay, nil
}

// MinResponseDelay returns the minimum Δ_RESP of the concurrent-ranging
// scheme (Sect. III): the IEEE 802.15.4 frame timestamp points at the start
// of the PHR (the RMARKER), so the smallest possible gap between the INIT
// and RESP RMARKERs is the PHR+payload remainder of INIT plus the
// preamble+SFD of RESP.
func MinResponseDelay(c Config, initPayloadBytes int) (float64, error) {
	phr, err := c.PHRDuration()
	if err != nil {
		return 0, err
	}
	pay, err := c.PayloadDuration(initPayloadBytes)
	if err != nil {
		return 0, err
	}
	shr, err := c.SHRDuration()
	if err != nil {
		return 0, err
	}
	return phr + pay + shr, nil
}

// DefaultTurnaround is the experimentally evaluated upper bound on the
// DW1000 receive→transmit switching time (Sect. III), seconds.
const DefaultTurnaround = 100e-6

// DefaultResponseDelay is the Δ_RESP the paper settles on: the 178.5 µs
// minimum plus the turnaround and a safety gap, seconds.
const DefaultResponseDelay = 290e-6

// InitPayloadBytes is the broadcast INIT frame payload size that yields
// the paper's 178.5 µs minimum delay at the paper configuration.
const InitPayloadBytes = 12

// RespPayloadBytes is the RESP frame payload size: a minimal MAC frame
// carrying the two 40-bit timestamps t_rx,i and t_tx,i.
const RespPayloadBytes = 22

// ResponseDelay returns a Δ_RESP with the given turnaround allowance plus
// a safety gap of at least 10 µs, rounded up to the next 10 µs — mirroring
// the paper's 178.5 µs + <100 µs turnaround → 290 µs choice.
func ResponseDelay(c Config, initPayloadBytes int, turnaround float64) (float64, error) {
	if turnaround < 0 {
		return 0, fmt.Errorf("airtime: negative turnaround %g", turnaround)
	}
	minD, err := MinResponseDelay(c, initPayloadBytes)
	if err != nil {
		return 0, err
	}
	const grid = 10e-6
	raw := minD + turnaround + grid
	return math.Ceil(raw/grid) * grid, nil
}
