package airtime

import "fmt"

// PowerModel captures the DW1000 current draw the paper's efficiency
// argument rests on: up to 155 mA in receive and 90 mA in transmit mode —
// significantly more than other low-power radios, which is why cutting the
// number of ranging messages matters (Sect. I).
type PowerModel struct {
	// RxCurrent is the receive-mode current draw in amperes.
	RxCurrent float64
	// TxCurrent is the transmit-mode current draw in amperes.
	TxCurrent float64
	// IdleCurrent is the idle/turnaround current draw in amperes.
	IdleCurrent float64
	// Voltage is the supply voltage in volts.
	Voltage float64
}

// DefaultPowerModel returns the DW1000 datasheet values the paper cites.
func DefaultPowerModel() PowerModel {
	return PowerModel{
		RxCurrent:   0.155,
		TxCurrent:   0.090,
		IdleCurrent: 0.000018,
		Voltage:     3.3,
	}
}

// TxEnergy returns the energy in joules for transmitting for d seconds.
func (p PowerModel) TxEnergy(d float64) float64 { return p.TxCurrent * p.Voltage * d }

// RxEnergy returns the energy in joules for receiving for d seconds.
func (p PowerModel) RxEnergy(d float64) float64 { return p.RxCurrent * p.Voltage * d }

// IdleEnergy returns the energy in joules for idling for d seconds.
func (p PowerModel) IdleEnergy(d float64) float64 { return p.IdleCurrent * p.Voltage * d }

// RangingCost summarizes the network-wide cost of estimating all pairwise
// distances from one initiator's point of view.
type RangingCost struct {
	// Messages is the total number of frames on the air.
	Messages int
	// InitiatorTx and InitiatorRx count the initiator's frame operations.
	InitiatorTx, InitiatorRx int
	// AirTime is the total occupied channel time in seconds.
	AirTime float64
	// InitiatorEnergy is the initiator's radio energy in joules.
	InitiatorEnergy float64
	// NetworkEnergy is the summed radio energy of all nodes in joules.
	NetworkEnergy float64
}

// ScheduledTWRCost returns the cost of classical scheduled SS-TWR ranging
// between all N nodes: one two-message exchange per unordered node pair,
// i.e. N·(N−1) messages in total, with every node performing N−1
// transmissions and N−1 receptions (Sect. I and Sect. III of the paper).
func ScheduledTWRCost(c Config, p PowerModel, n int) (RangingCost, error) {
	if n < 2 {
		return RangingCost{}, fmt.Errorf("airtime: need at least 2 nodes, got %d", n)
	}
	initDur, err := c.FrameDuration(InitPayloadBytes)
	if err != nil {
		return RangingCost{}, err
	}
	respDur, err := c.FrameDuration(RespPayloadBytes)
	if err != nil {
		return RangingCost{}, err
	}
	exchanges := n * (n - 1) / 2 // one SS-TWR exchange per unordered pair
	cost := RangingCost{
		Messages:    2 * exchanges, // INIT + RESP per exchange = N·(N−1) total
		InitiatorTx: n - 1,         // one frame per neighbor (INIT or RESP role)
		InitiatorRx: n - 1,
		AirTime:     float64(exchanges) * (initDur + respDur),
	}
	perExchangeEnergy := p.TxEnergy(initDur) + p.RxEnergy(respDur) + // initiator side
		p.RxEnergy(initDur) + p.TxEnergy(respDur) // responder side
	cost.NetworkEnergy = float64(exchanges) * perExchangeEnergy
	// A node acts as initiator in roughly half of its N−1 exchanges; the
	// per-role energies differ only by the INIT/RESP frame-length gap, so
	// charge the average.
	cost.InitiatorEnergy = float64(n-1) * perExchangeEnergy / 2
	return cost, nil
}

// ConcurrentCost returns the cost of one concurrent-ranging round: the
// initiator broadcasts a single INIT and receives a single aggregated RESP
// while every responder receives the INIT and transmits its RESP — N
// messages total for N nodes (Sect. III).
func ConcurrentCost(c Config, p PowerModel, n int) (RangingCost, error) {
	if n < 2 {
		return RangingCost{}, fmt.Errorf("airtime: need at least 2 nodes, got %d", n)
	}
	initDur, err := c.FrameDuration(InitPayloadBytes)
	if err != nil {
		return RangingCost{}, err
	}
	respDur, err := c.FrameDuration(RespPayloadBytes)
	if err != nil {
		return RangingCost{}, err
	}
	responders := n - 1
	cost := RangingCost{
		Messages:    1 + responders, // one broadcast, N−1 overlapping responses
		InitiatorTx: 1,
		InitiatorRx: 1, // all responses aggregate into a single reception
		AirTime:     initDur + respDur,
	}
	cost.InitiatorEnergy = p.TxEnergy(initDur) + p.RxEnergy(respDur)
	cost.NetworkEnergy = cost.InitiatorEnergy +
		float64(responders)*(p.RxEnergy(initDur)+p.TxEnergy(respDur))
	return cost, nil
}
