package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/lint"
)

// writeModule lays out a synthetic module in a temp directory: keys are
// slash-separated paths relative to the module root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestLoadDirSkipsConstrainedFiles checks that a file excluded by a build
// constraint never reaches the type checker: the excluded file carries a
// deliberate type error, so loading only succeeds if the constraint is
// honored.
func TestLoadDirSkipsConstrainedFiles(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":       "module example.com/tags\n\ngo 1.21\n",
		"pkg/ok.go":    "package pkg\n\nfunc Ok() int { return 1 }\n",
		"pkg/never.go": "//go:build lintneverbuild\n\npackage pkg\n\nvar broken int = \"not an int\"\n",
	})
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pass, err := loader.LoadDir(filepath.Join(root, "pkg"))
	if err != nil {
		t.Fatalf("LoadDir with constrained broken file: %v", err)
	}
	if len(pass.Files) != 1 {
		t.Errorf("loaded %d files, want 1 (never.go excluded by its build tag)", len(pass.Files))
	}
}

// TestLoadDirSkipsTestFiles checks the _test.go exclusion the same way:
// the test file carries a type error that must never be seen.
func TestLoadDirSkipsTestFiles(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":          "module example.com/tests\n\ngo 1.21\n",
		"pkg/ok.go":       "package pkg\n\nfunc Ok() int { return 1 }\n",
		"pkg/ok_test.go":  "package pkg\n\nvar broken int = \"not an int\"\n",
		"pkg/ext_test.go": "package pkg_test\n\nvar alsoBroken int = \"no\"\n",
	})
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pass, err := loader.LoadDir(filepath.Join(root, "pkg"))
	if err != nil {
		t.Fatalf("LoadDir with broken test files: %v", err)
	}
	if len(pass.Files) != 1 {
		t.Errorf("loaded %d files, want 1 (_test.go files excluded)", len(pass.Files))
	}
}

// TestLoadDirImportCycle checks that a cyclic module-internal import
// chain surfaces as a reported error rather than unbounded importer
// recursion, and that the error names the cycle.
func TestLoadDirImportCycle(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/cyc\n\ngo 1.21\n",
		"a/a.go": "package a\n\nimport \"example.com/cyc/b\"\n\nfunc A() int { return b.B() }\n",
		"b/b.go": "package b\n\nimport \"example.com/cyc/a\"\n\nfunc B() int { return a.A() }\n",
	})
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	_, err = loader.LoadDir(filepath.Join(root, "a"))
	if err == nil {
		t.Fatal("LoadDir on a cyclic package pair succeeded, want an import-cycle error")
	}
	if !strings.Contains(err.Error(), "import cycle through") {
		t.Errorf("error does not name the cycle: %v", err)
	}
	if !strings.Contains(err.Error(), "example.com/cyc") {
		t.Errorf("error does not name the cycling package: %v", err)
	}
}

// TestLoadDirCycleGuardResets checks that a failed cyclic load leaves the
// loader usable: the guard set is unwound, so an acyclic sibling package
// still loads through the same loader.
func TestLoadDirCycleGuardResets(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":   "module example.com/cyc2\n\ngo 1.21\n",
		"a/a.go":   "package a\n\nimport \"example.com/cyc2/b\"\n\nfunc A() int { return b.B() }\n",
		"b/b.go":   "package b\n\nimport \"example.com/cyc2/a\"\n\nfunc B() int { return a.A() }\n",
		"ok/ok.go": "package ok\n\nfunc Ok() int { return 1 }\n",
	})
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.LoadDir(filepath.Join(root, "a")); err == nil {
		t.Fatal("cyclic load succeeded, want error")
	}
	if _, err := loader.LoadDir(filepath.Join(root, "ok")); err != nil {
		t.Errorf("acyclic load after a cycle failure: %v", err)
	}
}

// TestTargetsSkipsNonPackageDirs checks the walk rules: testdata, hidden,
// and underscore-prefixed directories are pruned, and directories without
// buildable Go files are passed over without error.
func TestTargetsSkipsNonPackageDirs(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":                "module example.com/walk\n\ngo 1.21\n",
		"pkg/ok.go":             "package pkg\n\nfunc Ok() {}\n",
		"pkg/testdata/fix.go":   "package fix\n\nvar broken int = \"no\"\n",
		"_attic/old.go":         "package old\n\nvar broken int = \"no\"\n",
		".hidden/h.go":          "package h\n\nvar broken int = \"no\"\n",
		"docs/README.md":        "no go files here\n",
		"nested/deep/leaf.go":   "package deep\n\nfunc Leaf() {}\n",
		"nested/deep/extra.txt": "not go\n",
	})
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := loader.Targets()
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, tgt := range targets {
		paths = append(paths, tgt.Path)
	}
	want := []string{"example.com/walk/nested/deep", "example.com/walk/pkg"}
	if len(paths) != len(want) {
		t.Fatalf("Targets = %v, want %v", paths, want)
	}
	seen := map[string]bool{}
	for _, p := range paths {
		seen[p] = true
	}
	for _, w := range want {
		if !seen[w] {
			t.Errorf("Targets = %v, missing %v", paths, w)
		}
	}
}

// TestTargetsReportsImports checks that a target carries its direct
// imports, which drivers use to decide analyzer applicability without
// type-checking.
func TestTargetsReportsImports(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":    "module example.com/imp\n\ngo 1.21\n",
		"pkg/ok.go": "package pkg\n\nimport \"fmt\"\n\nfunc Ok() { fmt.Println() }\n",
	})
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := loader.Targets()
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 1 {
		t.Fatalf("Targets returned %d entries, want 1", len(targets))
	}
	if len(targets[0].Imports) != 1 || targets[0].Imports[0] != "fmt" {
		t.Errorf("Imports = %v, want [fmt]", targets[0].Imports)
	}
}

// TestNewLoaderErrors pins the constructor's failure modes: a missing
// go.mod and one without a module directive.
func TestNewLoaderErrors(t *testing.T) {
	if _, err := lint.NewLoader(t.TempDir()); err == nil {
		t.Error("NewLoader without go.mod succeeded, want error")
	}
	root := writeModule(t, map[string]string{"go.mod": "// no module line\ngo 1.21\n"})
	if _, err := lint.NewLoader(root); err == nil {
		t.Error("NewLoader without a module directive succeeded, want error")
	}
}
