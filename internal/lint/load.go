package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of this module without external
// tooling: module-internal imports resolve against the module directory,
// everything else against GOROOT/src (with the stdlib vendor directory as
// fallback). Imported dependencies are checked without function bodies —
// only their exported shape matters to the analyzers — and cached, so
// loading every package of the repository type-checks each dependency
// once.
type Loader struct {
	// Fset is shared by every file the loader touches.
	Fset *token.FileSet

	moduleDir  string
	modulePath string
	deps       map[string]*types.Package
	loading    map[string]bool
}

// NewLoader builds a loader rooted at the module directory, reading the
// module path from go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", moduleDir)
	}
	return &Loader{
		Fset:       token.NewFileSet(),
		moduleDir:  moduleDir,
		modulePath: modPath,
		deps:       make(map[string]*types.Package),
		loading:    make(map[string]bool),
	}, nil
}

// ModulePath returns the module's import path.
func (l *Loader) ModulePath() string { return l.modulePath }

// ModuleDir returns the module's root directory.
func (l *Loader) ModuleDir() string { return l.moduleDir }

// dirFor maps an import path to the directory holding its sources.
func (l *Loader) dirFor(path string) (string, error) {
	if path == l.modulePath {
		return l.moduleDir, nil
	}
	if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
		return filepath.Join(l.moduleDir, filepath.FromSlash(rest)), nil
	}
	root := runtime.GOROOT()
	dir := filepath.Join(root, "src", filepath.FromSlash(path))
	if _, err := os.Stat(dir); err == nil {
		return dir, nil
	}
	vendored := filepath.Join(root, "src", "vendor", filepath.FromSlash(path))
	if _, err := os.Stat(vendored); err == nil {
		return vendored, nil
	}
	return "", fmt.Errorf("lint: cannot resolve import %q", path)
}

// Import implements types.Importer: dependencies are type-checked from
// source without function bodies.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.deps[path]; ok {
		return pkg, nil
	}
	// A package re-entered before its own check finished can only mean a
	// cyclic import chain; without this guard the importer would recurse
	// until the stack blows.
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: parsing dependency %s: %w", path, err)
	}
	conf := types.Config{
		Importer:         l,
		IgnoreFuncBodies: true,
		FakeImportC:      true,
	}
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking dependency %s: %w", path, err)
	}
	l.deps[path] = pkg
	return pkg, nil
}

// parseDir parses the non-test Go files of one directory, respecting
// build constraints for the current platform.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	names = append(names, bp.CgoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadDir fully type-checks the package in dir (function bodies included)
// and returns it as an analysis Pass. The package's import path is derived
// from its location under the module root.
func (l *Loader) LoadDir(dir string) (*Pass, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.moduleDir, abs)
	if err != nil {
		return nil, err
	}
	path := l.modulePath
	if rel != "." {
		path = l.modulePath + "/" + filepath.ToSlash(rel)
	}
	files, err := l.parseDir(abs)
	if err != nil {
		return nil, fmt.Errorf("lint: parsing %s: %w", path, err)
	}
	// Guard the target package too: a dependency importing it back is a
	// cycle, not a reason to re-check the target as its own dependency.
	l.loading[path] = true
	defer delete(l.loading, path)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Pass{Path: path, Fset: l.Fset, Files: files, Pkg: pkg, Info: info}, nil
}

// Target is one lintable package directory of the module.
type Target struct {
	// Dir is the package directory (absolute).
	Dir string
	// Path is the package's import path.
	Path string
	// Imports are the package's direct imports (from file headers, no
	// type-checking), so drivers can skip loading packages no analyzer
	// cares about.
	Imports []string
}

// Targets enumerates every package directory of the module, skipping
// testdata, hidden directories, and directories without buildable Go
// files.
func (l *Loader) Targets() ([]Target, error) {
	var out []Target
	err := filepath.WalkDir(l.moduleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.moduleDir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		bp, err := build.ImportDir(path, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil
			}
			return err
		}
		rel, err := filepath.Rel(l.moduleDir, path)
		if err != nil {
			return err
		}
		imp := l.modulePath
		if rel != "." {
			imp = l.modulePath + "/" + filepath.ToSlash(rel)
		}
		out = append(out, Target{Dir: path, Path: imp, Imports: bp.Imports})
		return nil
	})
	return out, err
}
