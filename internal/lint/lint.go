// Package lint is a minimal, dependency-free static-analysis framework in
// the spirit of golang.org/x/tools/go/analysis, built on the standard
// library's go/ast and go/types so the repository's project-specific
// analyzers (cmd/crlint) need nothing beyond the Go toolchain.
//
// An Analyzer inspects one type-checked package (a Pass) and returns
// Diagnostics. RunAnalyzers applies a set of analyzers to a package and
// filters the results through //lint:allow suppression comments:
//
//	foo() //lint:allow detrand wall time feeds a StripWallTime-stripped field
//
// A suppression must name the analyzer it silences and carry a
// justification; a bare //lint:allow with no reason is itself reported.
// The suppression applies to diagnostics on its own line or, for a
// comment on a line of its own, the line below it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions.
	Name string
	// Doc is a one-paragraph description of the contract it enforces.
	Doc string
	// Run inspects the pass and returns its findings.
	Run func(*Pass) []Diagnostic
}

// Pass is the unit of work handed to an Analyzer: one fully type-checked
// package.
type Pass struct {
	// Path is the package's import path.
	Path string
	// Fset maps token positions to file locations.
	Fset *token.FileSet
	// Files are the package's parsed source files (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checker's expression and object facts.
	Info *types.Info
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Pos locates the finding.
	Pos token.Pos
	// Message states the contract violation.
	Message string
}

// Diagf builds a Diagnostic (the Analyzer field is stamped by
// RunAnalyzers).
func Diagf(pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)}
}

// allowRe matches the suppression directive. The directive marker must be
// the first token of the comment text.
var allowRe = regexp.MustCompile(`^lint:allow\s+([A-Za-z0-9_-]+)\s*(.*)$`)

// Suppression is one parsed //lint:allow directive. AuditAnalyzers fills
// Used so drivers can report stale directives that no longer match any
// finding.
type Suppression struct {
	// Analyzer is the name the directive silences.
	Analyzer string
	// Justification is the free text after the analyzer name; empty means
	// the directive is itself a violation.
	Justification string
	// File and Line locate the directive.
	File string
	Line int
	// Used reports whether the directive suppressed at least one finding
	// of its analyzer during the run that produced it.
	Used bool
}

// Justified reports whether the directive carries a justification.
func (s *Suppression) Justified() bool { return s.Justification != "" }

// parseSuppressions extracts every //lint:allow directive from the pass.
func parseSuppressions(p *Pass) []*Suppression {
	var out []*Suppression
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				m := allowRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				out = append(out, &Suppression{
					Analyzer:      m[1],
					Justification: strings.TrimSpace(m[2]),
					File:          pos.Filename,
					Line:          pos.Line,
				})
			}
		}
	}
	return out
}

// RunAnalyzers applies the analyzers to the package, stamps analyzer
// names, filters //lint:allow-suppressed findings, reports unjustified
// suppressions (as analyzer "lint"), and returns the remainder sorted by
// position.
func RunAnalyzers(p *Pass, analyzers []*Analyzer) []Diagnostic {
	diags, _ := AuditAnalyzers(p, analyzers)
	return diags
}

// AuditAnalyzers is RunAnalyzers plus the suppression inventory: it
// returns the surviving diagnostics together with every //lint:allow
// directive found in the pass, each marked Used when it silenced at least
// one finding. A justified directive that never matches a finding of its
// analyzer is stale — the code it excused has moved or been fixed — and
// drivers (crlint -audit) treat it as an error.
func AuditAnalyzers(p *Pass, analyzers []*Analyzer) ([]Diagnostic, []*Suppression) {
	sups := parseSuppressions(p)
	allowed := make(map[string]*Suppression) // "file:line:analyzer"
	var diags []Diagnostic
	for _, s := range sups {
		if !s.Justified() {
			diags = append(diags, Diagnostic{
				Analyzer: "lint",
				Pos:      posAt(p, s.File, s.Line),
				Message:  fmt.Sprintf("lint:allow %s needs a justification comment after the analyzer name", s.Analyzer),
			})
			continue
		}
		allowed[fmt.Sprintf("%s:%d:%s", s.File, s.Line, s.Analyzer)] = s
		// A directive on its own line suppresses the line below it.
		allowed[fmt.Sprintf("%s:%d:%s", s.File, s.Line+1, s.Analyzer)] = s
	}
	for _, a := range analyzers {
		for _, d := range a.Run(p) {
			d.Analyzer = a.Name
			pos := p.Fset.Position(d.Pos)
			if s := allowed[fmt.Sprintf("%s:%d:%s", pos.Filename, pos.Line, a.Name)]; s != nil {
				s.Used = true
				continue
			}
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := p.Fset.Position(diags[i].Pos), p.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Message < diags[j].Message
	})
	sort.Slice(sups, func(i, j int) bool {
		if sups[i].File != sups[j].File {
			return sups[i].File < sups[j].File
		}
		return sups[i].Line < sups[j].Line
	})
	return diags, sups
}

// posAt recovers a token.Pos for a file/line pair, so suppression
// diagnostics print a real location.
func posAt(p *Pass, file string, line int) token.Pos {
	var pos token.Pos
	p.Fset.Iterate(func(f *token.File) bool {
		if f.Name() == file {
			if line <= f.LineCount() {
				pos = f.LineStart(line)
			}
			return false
		}
		return true
	})
	return pos
}
