// Package linttest runs lint analyzers over fixture packages and checks
// their diagnostics against expectations embedded in the fixture source,
// in the style of golang.org/x/tools/go/analysis/analysistest:
//
//	for k := range m { // want `map iteration order leaks`
//
// A `// want` comment carries one or more quoted regular expressions
// (double-quoted or backquoted); each must match exactly one diagnostic
// on the comment's line, and every diagnostic must be claimed by an
// expectation. Fixtures live under testdata and are loaded with the same
// lint.Loader the crlint driver uses, so they may import packages of
// this module.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/lint"
)

// Load parses and type-checks the fixture package at dir (relative to the
// test's working directory) and returns it as a Pass. Load fails the test
// on any parse or type error — fixtures must stay buildable.
func Load(t *testing.T, dir string) *lint.Pass {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("linttest: resolving %s: %v", dir, err)
	}
	root, err := moduleRoot(abs)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	pass, err := loader.LoadDir(abs)
	if err != nil {
		t.Fatalf("linttest: loading fixture %s: %v", dir, err)
	}
	return pass
}

// Run loads the fixture package at dir, applies the analyzers, and
// compares the diagnostics against the fixture's `// want` expectations.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pass := Load(t, dir)
	wants := expectations(t, pass)
	for _, d := range lint.RunAnalyzers(pass, analyzers) {
		pos := pass.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		if !claim(wants[key], d.Message) {
			t.Errorf("unexpected diagnostic at %s:%d: %s: %s",
				filepath.Base(pos.Filename), pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("missing diagnostic at %s:%d matching %q",
					filepath.Base(w.file), w.line, w.re.String())
			}
		}
	}
}

// want is one expected-diagnostic pattern at one source line.
type want struct {
	re      *regexp.Regexp
	file    string
	line    int
	matched bool
}

// claim marks the first unmatched expectation whose pattern matches the
// message, reporting whether one was found.
func claim(ws []*want, message string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantArgRe extracts the quoted patterns of a want directive.
var wantArgRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

// expectations parses every `// want` comment of the fixture into
// per-line expectation lists keyed by "file:line".
func expectations(t *testing.T, pass *lint.Pass) map[string][]*want {
	t.Helper()
	out := make(map[string][]*want)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				args := wantArgRe.FindAllString(rest, -1)
				if len(args) == 0 {
					t.Fatalf("%s:%d: want directive carries no quoted pattern", pos.Filename, pos.Line)
				}
				for _, arg := range args {
					pat, err := strconv.Unquote(arg)
					if err != nil {
						t.Fatalf("%s:%d: unquoting %s: %v", pos.Filename, pos.Line, arg, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: compiling %q: %v", pos.Filename, pos.Line, pat, err)
					}
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					out[key] = append(out[key], &want{re: re, file: pos.Filename, line: pos.Line})
				}
			}
		}
	}
	return out
}

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above fixture directory")
		}
		dir = parent
	}
}
