package analyzers

import (
	"go/ast"
	"go/types"

	"github.com/uwb-sim/concurrent-ranging/internal/lint"
)

// Bufalias enforces the buffer-ownership contract at dsp plan call sites.
// The plan-execution entry points — dsp.ConvolveWith, dsp.MatchedFilterWith,
// (*dsp.UpsamplePlan).Execute, and (*dsp.MatchedFilterBank).FilterInto —
// write into a caller-supplied destination slice and return it. When that
// destination is a struct field (detector-owned scratch reused on every
// Detect round), any alias that escapes the function — stored into a
// struct field, returned, appended to a slice, or embedded in a composite
// literal — is silently overwritten by the next round, corrupting whatever
// the caller kept.
//
// The analysis is per function and conservative: a value is tainted when
// it is the field-backed destination argument of a plan call or a local
// bound to such a call's result; taint follows simple assignments and
// slicings. Locally allocated destinations (make, caller parameters) are
// the caller's to keep and are not flagged.
var Bufalias = &lint.Analyzer{
	Name: "bufalias",
	Doc:  "reused dsp plan buffers must not escape via fields, returns, appends, or literals",
	Run:  runBufalias,
}

// planCallDst returns the destination-slice argument of a dsp plan
// execution call, or nil if the call is not one.
func planCallDst(info *types.Info, call *ast.CallExpr) ast.Expr {
	if pkgPath, name, ok := pkgFunc(info, call); ok {
		if pkgPath == dspPath && (name == "ConvolveWith" || name == "MatchedFilterWith") && len(call.Args) > 0 {
			return call.Args[0]
		}
		return nil
	}
	if _, recvType, name, ok := methodCall(info, call); ok {
		pkgPath, typeName, isNamed := namedType(recvType)
		if !isNamed || pkgPath != dspPath {
			return nil
		}
		switch {
		case typeName == "UpsamplePlan" && name == "Execute" && len(call.Args) == 2:
			return call.Args[0]
		case typeName == "MatchedFilterBank" && name == "FilterInto" && len(call.Args) == 2:
			return call.Args[0]
		}
	}
	return nil
}

func runBufalias(p *lint.Pass) []lint.Diagnostic {
	var diags []lint.Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			w := &aliasWalker{
				pass:    p,
				tainted: make(map[string]bool),
				fields:  make(map[string]bool),
			}
			// Two passes: taint first (a plan call later in the function
			// still poisons an earlier return in a loop), then flag.
			w.collect(body)
			w.flag(body)
			diags = append(diags, w.diags...)
			return true
		})
	}
	return diags
}

type aliasWalker struct {
	pass    *lint.Pass
	tainted map[string]bool // locals aliasing a field-backed plan destination
	fields  map[string]bool // field expressions used as plan destinations
	diags   []lint.Diagnostic
}

// fieldBacked reports whether e denotes (a slicing of) a struct field or
// a local already known to alias one.
func (w *aliasWalker) fieldBacked(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		sel, ok := w.pass.Info.Selections[e]
		return ok && sel.Kind() == types.FieldVal
	case *ast.SliceExpr:
		return w.fieldBacked(e.X)
	case *ast.Ident:
		return w.tainted[e.Name]
	}
	return false
}

// isTainted reports whether e aliases a reused plan destination: a
// tainted local, a field used as a plan destination, a slicing of either,
// or a plan call with a field-backed destination.
func (w *aliasWalker) isTainted(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return w.tainted[e.Name]
	case *ast.SelectorExpr:
		return w.fields[types.ExprString(e)]
	case *ast.SliceExpr:
		return w.isTainted(e.X)
	case *ast.CallExpr:
		dst := planCallDst(w.pass.Info, e)
		return dst != nil && w.fieldBacked(dst)
	}
	return false
}

// collect gathers taint until it stops growing: plan destinations that
// are struct fields, and locals assigned from them.
func (w *aliasWalker) collect(body *ast.BlockStmt) {
	for {
		grew := false
		mark := func(m map[string]bool, key string) {
			if !m[key] {
				m[key] = true
				grew = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // analyzed as its own function
			case *ast.CallExpr:
				if dst := planCallDst(w.pass.Info, n); dst != nil && w.fieldBacked(dst) {
					if sel, ok := ast.Unparen(dst).(*ast.SelectorExpr); ok {
						mark(w.fields, types.ExprString(sel))
					}
				}
			case *ast.AssignStmt:
				// `x := <tainted>` and `x, err := dsp.ConvolveWith(d.buf, ...)`
				// bind locals to the reused buffer.
				if len(n.Rhs) == 1 && len(n.Lhs) > 0 {
					if w.isTainted(n.Rhs[0]) {
						if id, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
							mark(w.tainted, id.Name)
						}
					}
				} else if len(n.Rhs) == len(n.Lhs) {
					for i, rhs := range n.Rhs {
						if w.isTainted(rhs) {
							if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
								mark(w.tainted, id.Name)
							}
						}
					}
				}
			}
			return true
		})
		if !grew {
			return
		}
	}
}

// flag reports every escape of a tainted value.
func (w *aliasWalker) flag(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed as its own function
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if w.isTainted(r) {
					w.diags = append(w.diags, lint.Diagf(r.Pos(),
						"returning %s aliases a reused dsp plan buffer; copy into a caller-owned slice instead", types.ExprString(r)))
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if s, found := w.pass.Info.Selections[sel]; !found || s.Kind() != types.FieldVal {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				// Re-slicing a buffer into itself (d.buf = d.buf[:n]) is
				// ownership-preserving, not an escape.
				if rhs != nil && w.isTainted(rhs) && !sameBase(lhs, rhs) {
					w.diags = append(w.diags, lint.Diagf(n.Pos(),
						"storing %s into field %s aliases a reused dsp plan buffer; copy instead", types.ExprString(rhs), types.ExprString(lhs)))
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if b, isBuiltin := w.pass.Info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "append" {
					for _, arg := range n.Args[1:] {
						if w.isTainted(arg) {
							w.diags = append(w.diags, lint.Diagf(arg.Pos(),
								"appending %s keeps an alias of a reused dsp plan buffer; copy instead", types.ExprString(arg)))
						}
					}
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if w.isTainted(v) {
					w.diags = append(w.diags, lint.Diagf(v.Pos(),
						"composite literal captures %s, an alias of a reused dsp plan buffer; copy instead", types.ExprString(v)))
				}
			}
		}
		return true
	})
}

// sameBase reports whether two expressions share the same printed base
// expression after stripping slicings.
func sameBase(a, b ast.Expr) bool {
	return types.ExprString(stripSlices(a)) == types.ExprString(stripSlices(b))
}

func stripSlices(e ast.Expr) ast.Expr {
	for {
		switch s := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = s.X
		default:
			return e
		}
	}
}
