package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strconv"
	"strings"

	"github.com/uwb-sim/concurrent-ranging/internal/lint"
)

// Wallclass cross-checks the wall-time-class naming contract against
// StripWallTime (DESIGN.md §17). Reports are byte-compared across
// same-seed reruns after stripping, so every field carrying wall-clock
// contamination must (a) follow the wall-class naming contract — suffix
// Seconds/PerSecond, prefix Wall/Engine, or the StartTime/Runtime pair —
// and (b) actually be zeroed by StripWallTime. The analyzer reports:
//
//  1. a wall-class-named field of any struct StripWallTime rebuilds that
//     the method does not assign (the manual-drift class: a new
//     EventsPerSecond field lands, StripWallTime is forgotten, and the
//     determinism gate breaks one PR later);
//  2. a json tag in the wall-time class (suffix _seconds/_per_second,
//     prefix engine_, or start_time/runtime) on a Go field whose name is
//     outside the contract, so the Go-side check (1) cannot drift away
//     from the encoded report;
//  3. a raw "_live" string literal: live-gauge names must be built from
//     obs.LiveMetricSuffix, the suffix StripWallTime keys on to drop
//     live-updating gauges from reports.
var Wallclass = &lint.Analyzer{
	Name: "wallclass",
	Doc:  "wall-time-class report fields are zeroed by StripWallTime, named per the contract, and _live names use obs.LiveMetricSuffix",
	Run:  runWallclass,
}

// wallClassField reports whether a Go field name is in the wall-time
// class.
func wallClassField(name string) bool {
	return strings.HasSuffix(name, "Seconds") ||
		strings.HasSuffix(name, "PerSecond") ||
		strings.HasPrefix(name, "Wall") ||
		strings.HasPrefix(name, "Engine") ||
		name == "StartTime" || name == "Runtime"
}

// wallClassTag reports whether a json field name is in the wall-time
// class.
func wallClassTag(name string) bool {
	return strings.HasSuffix(name, "_seconds") ||
		strings.HasSuffix(name, "_per_second") ||
		strings.HasPrefix(name, "engine_") ||
		name == "start_time" || name == "runtime"
}

func runWallclass(p *lint.Pass) []lint.Diagnostic {
	var diags []lint.Diagnostic
	diags = append(diags, stripCoverage(p)...)
	diags = append(diags, tagDrift(p)...)
	diags = append(diags, rawLiveLiterals(p)...)
	return diags
}

// stripCoverage checks that every wall-class field of the structs a
// StripWallTime method rebuilds is assigned by that method.
func stripCoverage(p *lint.Pass) []lint.Diagnostic {
	assigned := make(map[*types.Var]bool)
	checked := make(map[*types.Named]bool)
	found := false
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "StripWallTime" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			found = true
			if recv := recvNamed(p, fd); recv != nil {
				checked[recv] = true
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				asg, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for _, lhs := range asg.Lhs {
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					s, okSel := p.Info.Selections[sel]
					if !okSel || s.Kind() != types.FieldVal {
						continue
					}
					fld, ok := s.Obj().(*types.Var)
					if !ok {
						continue
					}
					assigned[fld] = true
					if named := namedOf(s.Recv()); named != nil {
						checked[named] = true
					}
				}
				return true
			})
		}
	}
	if !found {
		return nil
	}
	var diags []lint.Diagnostic
	for named := range checked {
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			if wallClassField(fld.Name()) && !assigned[fld] {
				diags = append(diags, lint.Diagf(fld.Pos(),
					"wall-time-class field %s.%s is not zeroed by StripWallTime; stripped reports will differ across reruns",
					named.Obj().Name(), fld.Name()))
			}
		}
	}
	return diags
}

// recvNamed resolves the named type of a method's receiver.
func recvNamed(p *lint.Pass, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	obj := p.Info.Defs[fd.Recv.List[0].Names[0]]
	if obj == nil {
		return nil
	}
	return namedOf(obj.Type())
}

// namedOf strips pointers/aliases and returns the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := types.Unalias(t).(*types.Named)
	return named
}

// tagDrift flags wall-class json tags on Go fields named outside the
// contract.
func tagDrift(p *lint.Pass) []lint.Diagnostic {
	var diags []lint.Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if field.Tag == nil || len(field.Names) == 0 {
					continue
				}
				raw, err := strconv.Unquote(field.Tag.Value)
				if err != nil {
					continue
				}
				jsonName, _, _ := strings.Cut(reflect.StructTag(raw).Get("json"), ",")
				if jsonName == "" || jsonName == "-" || !wallClassTag(jsonName) {
					continue
				}
				for _, name := range field.Names {
					if !wallClassField(name.Name) {
						diags = append(diags, lint.Diagf(name.Pos(),
							"json tag %q marks a wall-time-class value but field %s is named outside the wall-class contract (Seconds/PerSecond suffix, Wall/Engine prefix, StartTime, Runtime)",
							jsonName, name.Name))
					}
				}
			}
			return true
		})
	}
	return diags
}

// rawLiveLiterals flags "_live"-suffixed string literals spelled without
// obs.LiveMetricSuffix. The declaration of LiveMetricSuffix itself is the
// one sanctioned raw spelling.
func rawLiveLiterals(p *lint.Pass) []lint.Diagnostic {
	exempt := make(map[*ast.BasicLit]bool)
	var diags []lint.Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			spec, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for _, name := range spec.Names {
				if name.Name != "LiveMetricSuffix" {
					continue
				}
				for _, v := range spec.Values {
					if lit, ok := ast.Unparen(v).(*ast.BasicLit); ok {
						exempt[lit] = true
					}
				}
			}
			return true
		})
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING || exempt[lit] {
				return true
			}
			val, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if strings.HasSuffix(val, "_live") {
				diags = append(diags, lint.Diagf(lit.Pos(),
					"raw %q literal: build live-gauge names with obs.LiveMetricSuffix so StripWallTime recognizes the live class", val))
			}
			return true
		})
	}
	return diags
}
