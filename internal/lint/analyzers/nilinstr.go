package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/uwb-sim/concurrent-ranging/internal/lint"
)

// Nilinstr enforces the nil-instrument contract in the hot-path packages:
// every method call on an obs.Recorder, *obs.Counter/Gauge/Histogram, or
// *trace.Tracer / *trace.Span value must be dominated by a nil check on
// that value (or by Span.Recording, the tracer's sanctioned liveness
// predicate). The trace types are nil-safe by construction, but an
// unguarded call site still pays argument construction — typically a
// trace.Attrs map allocation — on the disabled path, which is exactly the
// zero-alloc regression the contract exists to prevent.
//
// The check is a conservative per-function domination analysis: a call is
// accepted when a syntactically identical receiver expression was
// established non-nil by a dominating `x != nil` / `x == nil`-and-return
// guard or an `x.Recording()` condition, and no intervening assignment
// invalidated the fact. Function literals start with no facts (they may
// run after the guard's window).
var Nilinstr = &lint.Analyzer{
	Name: "nilinstr",
	Doc:  "instrumentation calls in hot-path packages must be nil-guarded",
	Run:  runNilinstr,
}

// nilSafePredicates are instrument methods that are themselves guards or
// pure accessors with no argument construction; calling them unguarded is
// the idiom, not a violation.
var nilSafePredicates = map[string]bool{
	"Recording": true,
	"ID":        true,
}

// instrumentType reports whether t is one of the instrument types the
// contract covers.
func instrumentType(t types.Type) (string, bool) {
	pkgPath, name, ok := namedType(t)
	if !ok {
		return "", false
	}
	switch pkgPath {
	case obsPath:
		switch name {
		case "Recorder", "Counter", "Gauge", "Histogram":
			return "obs." + name, true
		}
	case tracePath:
		switch name {
		case "Tracer", "Span":
			return "trace." + name, true
		}
	}
	return "", false
}

func runNilinstr(p *lint.Pass) []lint.Diagnostic {
	var diags []lint.Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			w := &nilWalker{pass: p}
			w.stmts(fn.Body.List, newFacts(nil))
			diags = append(diags, w.diags...)
			return false // stmts descends into nested literals itself
		})
	}
	return diags
}

// facts is the set of receiver expressions (by types.ExprString) known
// non-nil at the current program point.
type facts map[string]bool

func newFacts(base facts) facts {
	out := make(facts, len(base))
	for k := range base {
		out[k] = true
	}
	return out
}

func (f facts) add(other facts) {
	for k := range other {
		f[k] = true
	}
}

// invalidate drops every fact the assigned expression could alias: the
// expression itself and any selector path rooted in it.
func (f facts) invalidate(expr string) {
	for k := range f {
		if k == expr || len(k) > len(expr) && k[:len(expr)] == expr && k[len(expr)] == '.' {
			delete(f, k)
		}
	}
}

type nilWalker struct {
	pass  *lint.Pass
	diags []lint.Diagnostic
}

func (w *nilWalker) report(pos token.Pos, typeName, method, recv string) {
	w.diags = append(w.diags, lint.Diagf(pos,
		"%s.%s on %q is not dominated by a nil check; guard with `if %s != nil` (or Recording) to keep the disabled path allocation-free",
		typeName, method, recv, recv))
}

// stmts analyzes one statement list, threading facts through guards whose
// failing branch terminates.
func (w *nilWalker) stmts(list []ast.Stmt, fs facts) {
	for _, s := range list {
		w.stmt(s, fs)
	}
}

func (w *nilWalker) stmt(s ast.Stmt, fs facts) {
	switch s := s.(type) {
	case nil:
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, fs)
		}
		pos, neg := nilFacts(s.Cond)
		w.expr(s.Cond, fs)
		thenFacts := newFacts(fs)
		thenFacts.add(pos)
		w.stmts(s.Body.List, thenFacts)
		elseFacts := newFacts(fs)
		elseFacts.add(neg)
		if s.Else != nil {
			w.stmt(s.Else, elseFacts)
		}
		// A terminating branch promotes the other branch's facts to the
		// rest of the enclosing list.
		if stmtListTerminates(s.Body.List) {
			fs.add(neg)
		}
		if s.Else != nil && stmtTerminates(s.Else) {
			fs.add(pos)
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.expr(rhs, fs)
		}
		known := make([]bool, len(s.Lhs))
		if len(s.Lhs) == len(s.Rhs) {
			for i, rhs := range s.Rhs {
				known[i] = fs[types.ExprString(rhs)] || definitelyNonNil(rhs)
			}
		}
		for i, lhs := range s.Lhs {
			name := types.ExprString(lhs)
			fs.invalidate(name)
			if i < len(known) && known[i] {
				fs[name] = true
			}
		}
	case *ast.ExprStmt:
		w.expr(s.X, fs)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, fs)
		}
	case *ast.DeferStmt:
		w.callOrLit(s.Call, fs)
	case *ast.GoStmt:
		w.callOrLit(s.Call, fs)
	case *ast.BlockStmt:
		w.stmts(s.List, newFacts(fs))
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, fs)
		}
		body := newFacts(fs)
		stripAssigned(body, s.Body)
		if s.Cond != nil {
			w.expr(s.Cond, body)
			pos, _ := nilFacts(s.Cond)
			body.add(pos)
		}
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
		w.stmts(s.Body.List, body)
	case *ast.RangeStmt:
		w.expr(s.X, fs)
		body := newFacts(fs)
		stripAssigned(body, s.Body)
		w.stmts(s.Body.List, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, fs)
		}
		if s.Tag != nil {
			w.expr(s.Tag, fs)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				cf := newFacts(fs)
				for _, e := range cc.List {
					w.expr(e, cf)
				}
				w.stmts(cc.Body, cf)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, fs)
		}
		w.stmt(s.Assign, fs)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, newFacts(fs))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				cf := newFacts(fs)
				if cc.Comm != nil {
					w.stmt(cc.Comm, cf)
				}
				w.stmts(cc.Body, cf)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, fs)
	case *ast.IncDecStmt:
		w.expr(s.X, fs)
	case *ast.SendStmt:
		w.expr(s.Chan, fs)
		w.expr(s.Value, fs)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, fs)
					}
				}
			}
		}
	}
}

// callOrLit handles go/defer: a deferred function literal starts with no
// facts (it runs outside the guard's window); a direct deferred method
// call is checked against the facts at the defer site.
func (w *nilWalker) callOrLit(call *ast.CallExpr, fs facts) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		for _, a := range call.Args {
			w.expr(a, fs)
		}
		w.stmts(lit.Body.List, newFacts(nil))
		return
	}
	w.expr(call, fs)
}

// expr checks every instrument method call reachable in e under fs,
// threading short-circuit facts through && and ||.
func (w *nilWalker) expr(e ast.Expr, fs facts) {
	switch e := e.(type) {
	case nil:
	case *ast.BinaryExpr:
		w.expr(e.X, fs)
		sub := newFacts(fs)
		switch e.Op {
		case token.LAND:
			pos, _ := nilFacts(e.X)
			sub.add(pos)
		case token.LOR:
			_, neg := nilFacts(e.X)
			sub.add(neg)
		}
		w.expr(e.Y, sub)
	case *ast.CallExpr:
		if recv, recvType, name, ok := methodCall(w.pass.Info, e); ok {
			if typeName, isInstr := instrumentType(recvType); isInstr && !nilSafePredicates[name] {
				key := types.ExprString(recv)
				if !fs[key] && !definitelyNonNil(recv) {
					w.report(e.Pos(), typeName, name, key)
				}
			}
		}
		w.expr(e.Fun, fs)
		for _, a := range e.Args {
			w.expr(a, fs)
		}
	case *ast.FuncLit:
		w.stmts(e.Body.List, newFacts(nil))
	case *ast.ParenExpr:
		w.expr(e.X, fs)
	case *ast.UnaryExpr:
		w.expr(e.X, fs)
	case *ast.StarExpr:
		w.expr(e.X, fs)
	case *ast.SelectorExpr:
		w.expr(e.X, fs)
	case *ast.IndexExpr:
		w.expr(e.X, fs)
		w.expr(e.Index, fs)
	case *ast.SliceExpr:
		w.expr(e.X, fs)
		w.expr(e.Low, fs)
		w.expr(e.High, fs)
		w.expr(e.Max, fs)
	case *ast.TypeAssertExpr:
		w.expr(e.X, fs)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el, fs)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Key, fs)
		w.expr(e.Value, fs)
	}
}

// nilFacts extracts the receiver expressions known non-nil when cond is
// true (pos) and when cond is false (neg).
func nilFacts(cond ast.Expr) (pos, neg facts) {
	pos, neg = facts{}, facts{}
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.NEQ, token.EQL:
			var other ast.Expr
			if isNilIdent(c.Y) {
				other = c.X
			} else if isNilIdent(c.X) {
				other = c.Y
			} else {
				return pos, neg
			}
			if c.Op == token.NEQ {
				pos[types.ExprString(other)] = true
			} else {
				neg[types.ExprString(other)] = true
			}
		case token.LAND:
			// cond true ⇒ both true.
			px, _ := nilFacts(c.X)
			py, _ := nilFacts(c.Y)
			pos.add(px)
			pos.add(py)
		case token.LOR:
			// cond false ⇒ both false.
			_, nx := nilFacts(c.X)
			_, ny := nilFacts(c.Y)
			neg.add(nx)
			neg.add(ny)
		}
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			p2, n2 := nilFacts(c.X)
			return n2, p2
		}
	case *ast.CallExpr:
		// x.Recording() true ⇒ x non-nil (the sanctioned span guard).
		if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Recording" && len(c.Args) == 0 {
			pos[types.ExprString(sel.X)] = true
		}
	}
	return pos, neg
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// definitelyNonNil recognizes receiver expressions that cannot be nil:
// address-of composite literals and composite literals themselves.
func definitelyNonNil(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CompositeLit:
		return true
	}
	return false
}

// stripAssigned removes facts for every expression assigned anywhere in
// the loop body, so a fact established before iteration 1 cannot survive
// a reassignment observed only on iteration 2.
func stripAssigned(fs facts, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				fs.invalidate(types.ExprString(lhs))
			}
		case *ast.IncDecStmt:
			fs.invalidate(types.ExprString(n.X))
		}
		return true
	})
}
