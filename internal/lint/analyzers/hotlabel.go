package analyzers

import (
	"go/ast"
	"strings"

	"github.com/uwb-sim/concurrent-ranging/internal/lint"
)

// Hotlabel enforces the VecSource pre-resolution idiom (DESIGN.md §17).
// Labeled-metric lookups — (*obs.CounterVec).With and friends, and the
// VecSource/Registry family getters CounterVec/GaugeVec/HistogramVec —
// take a map lookup under a lock; per-event code paths run millions of
// times per run and must record through plain *Counter/*Gauge handles
// resolved once at wiring time instead. The analyzer flags any such
// lookup outside a sanctioned setup context: functions named Set*
// (SetRecorder, SetMetrics), constructors (New*/new*), attach, and the
// batch Record method, which runs once per campaign flush. Closures
// inherit the allowance of the function that encloses them; package-level
// initialization is always allowed.
var Hotlabel = &lint.Analyzer{
	Name: "hotlabel",
	Doc:  "metric-vector label lookups (.With, *Vec getters) belong in SetRecorder/SetMetrics-style setup, not per-event code",
	Run:  runHotlabel,
}

// hotlabelSetupFunc reports whether label resolution is sanctioned inside
// a function with this name.
func hotlabelSetupFunc(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "set") ||
		strings.HasPrefix(lower, "new") ||
		lower == "attach" || name == "Record"
}

// hotlabelLookups are the obs methods that resolve a labeled child.
var hotlabelLookups = map[string]bool{
	"With": true, "CounterVec": true, "GaugeVec": true, "HistogramVec": true,
}

func runHotlabel(p *lint.Pass) []lint.Diagnostic {
	var diags []lint.Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || hotlabelSetupFunc(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				_, recvType, name, ok := methodCall(p.Info, call)
				if !ok || !hotlabelLookups[name] {
					return true
				}
				if pkgPath, _, okN := namedType(recvType); okN && pkgPath == obsPath {
					diags = append(diags, lint.Diagf(call.Pos(),
						"%s resolves a metric-vector label in %s; resolve the handle once in SetRecorder/SetMetrics and record through it",
						name, fd.Name.Name))
				}
				return true
			})
		}
	}
	return diags
}
