package analyzers

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"github.com/uwb-sim/concurrent-ranging/internal/lint"
)

// Detrand enforces the determinism contract in the packages whose outputs
// must be bit-identical run-to-run for a fixed seed:
//
//   - no wall-clock reads (time.Now / time.Since / time.Until);
//   - no math/rand (v1) at all — its package-level state defeats seeding;
//   - no math/rand/v2 package-level draws (rand.IntN, rand.Float64, ...),
//     which pull from the process-global, randomly seeded source; seeded
//     sources built with rand.New(rand.NewPCG(seed, ...)) are the
//     sanctioned path;
//   - no `range` over a map whose body appends to a slice, writes
//     output, or emits obs/trace events, unless the appended-to slice is
//     sorted immediately after the loop — the classic path for map
//     iteration order to leak into reports and traces.
var Detrand = &lint.Analyzer{
	Name: "detrand",
	Doc:  "forbid wall-clock, global randomness, and map-order leaks in deterministic packages",
	Run:  runDetrand,
}

// randV2Constructors are the math/rand/v2 package-level functions that
// build explicitly seeded state rather than drawing from the global
// source.
var randV2Constructors = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

func runDetrand(p *lint.Pass) []lint.Diagnostic {
	var diags []lint.Diagnostic
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err == nil && path == "math/rand" {
				diags = append(diags, lint.Diagf(imp.Pos(),
					"deterministic package imports math/rand; use a seeded math/rand/v2 source (rand.New(rand.NewPCG(seed, ...)))"))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				diags = append(diags, checkDetCall(p, n)...)
			case *ast.BlockStmt:
				diags = append(diags, checkMapRanges(p, n.List)...)
			case *ast.CaseClause:
				diags = append(diags, checkMapRanges(p, n.Body)...)
			case *ast.CommClause:
				diags = append(diags, checkMapRanges(p, n.Body)...)
			}
			return true
		})
	}
	return diags
}

// checkDetCall flags wall-clock reads and global-source randomness draws.
func checkDetCall(p *lint.Pass, call *ast.CallExpr) []lint.Diagnostic {
	pkgPath, name, ok := pkgFunc(p.Info, call)
	if !ok {
		return nil
	}
	switch pkgPath {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			return []lint.Diagnostic{lint.Diagf(call.Pos(),
				"wall-clock read time.%s in a deterministic package; inject a clock or route the value through a StripWallTime-stripped field", name)}
		}
	case "math/rand/v2":
		if !randV2Constructors[name] {
			return []lint.Diagnostic{lint.Diagf(call.Pos(),
				"rand.%s draws from the process-global source; draw from a seeded *rand.Rand (rand.New(rand.NewPCG(seed, ...)))", name)}
		}
	case "math/rand":
		// The import is flagged once per file; flagging each call too
		// would be noise.
	}
	return nil
}

// checkMapRanges scans one statement list for `range` over a map whose
// body leaks iteration order, allowing the collect-then-sort idiom: an
// append target that is sorted by a sort/slices call later in the same
// statement list is fine.
func checkMapRanges(p *lint.Pass, stmts []ast.Stmt) []lint.Diagnostic {
	var diags []lint.Diagnostic
	for i, s := range stmts {
		rng, ok := s.(*ast.RangeStmt)
		if !ok {
			continue
		}
		t := p.Info.TypeOf(rng.X)
		if t == nil {
			continue
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			continue
		}
		appended, ordered := mapRangeBodyEffects(p, rng.Body)
		for _, target := range appended {
			if !sortedAfter(p, stmts[i+1:], target) {
				diags = append(diags, lint.Diagf(rng.Pos(),
					"map iteration order leaks into %s; sort it after the loop or iterate over sorted keys", target))
			}
		}
		diags = append(diags, ordered...)
	}
	return diags
}

// mapRangeBodyEffects walks a range-over-map body and returns the slice
// variables appended to (candidates for the collect-then-sort idiom) plus
// diagnostics for order-sensitive effects no later sort can repair:
// output writes and obs/trace emissions.
func mapRangeBodyEffects(p *lint.Pass, body *ast.BlockStmt) (appended []string, diags []lint.Diagnostic) {
	seen := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "append" {
			if b, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "append" && len(call.Args) > 0 {
				target := types.ExprString(call.Args[0])
				if !seen[target] {
					seen[target] = true
					appended = append(appended, target)
				}
			}
			return true
		}
		if pkgPath, name, isFn := pkgFunc(p.Info, call); isFn && pkgPath == "fmt" &&
			(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
			diags = append(diags, lint.Diagf(call.Pos(),
				"map iteration order leaks into output via fmt.%s; iterate over sorted keys", name))
			return true
		}
		if _, recvType, name, isMethod := methodCall(p.Info, call); isMethod {
			if pkgPath, typeName, isNamed := namedType(recvType); isNamed &&
				(pkgPath == obsPath || pkgPath == tracePath) {
				diags = append(diags, lint.Diagf(call.Pos(),
					"map iteration order leaks into instrumentation via %s.%s; iterate over sorted keys", typeName, name))
			}
		}
		return true
	})
	return appended, diags
}

// sortedAfter reports whether a sort/slices call mentioning target occurs
// in the statements following the loop.
func sortedAfter(p *lint.Pass, rest []ast.Stmt, target string) bool {
	for _, s := range rest {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			pkgPath, _, isFn := pkgFunc(p.Info, call)
			if !isFn || (pkgPath != "sort" && pkgPath != "slices") {
				return true
			}
			for _, arg := range call.Args {
				if strings.Contains(types.ExprString(arg), target) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
