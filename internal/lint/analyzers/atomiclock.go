package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"github.com/uwb-sim/concurrent-ranging/internal/lint"
)

// Atomiclock enforces mutual-exclusion discipline on shared fields
// (DESIGN.md §17), seeded from the `failed atomic.Bool // mirrors err !=
// nil` pattern in internal/sim/sharded.go: cross-goroutine signalling
// goes through a typed atomic mirror, while the mutex-guarded truth is
// only touched under its lock. Two checks:
//
//  1. A field ever written while a mutex field of the same struct is
//     write-held is mutex-guarded; reading it without the lock, or
//     writing it under only a read lock, is a diagnostic.
//  2. A field passed by address to legacy sync/atomic functions is
//     atomic; any plain (non-atomic) access to it races.
//
// The walker tracks lock state through straight-line code and branches
// (an unlock inside a terminating if-arm does not leak into the code
// after it). Constructors (New*/new*) are exempt — the value is not yet
// shared — and a function whose doc comment says "Callers hold <mu>."
// is analyzed with its receiver's mutexes already held, formalizing the
// annotation convention already used by obs/trace and obs/window
// helpers. Typed sync/atomic values (atomic.Bool, atomic.Int64, ...) are
// always safe and never flagged.
var Atomiclock = &lint.Analyzer{
	Name: "atomiclock",
	Doc:  "mutex-guarded fields are only touched under the guard; legacy atomic fields are never accessed non-atomically",
	Run:  runAtomiclock,
}

// lockHeldRe matches the lock-held-on-entry doc annotation
// ("Callers hold t.mu.", "caller must hold w.mu").
var lockHeldRe = regexp.MustCompile(`(?i)callers?\s+(must\s+)?hold`)

const (
	lockNone  = 0
	lockRead  = 1
	lockWrite = 2
)

// lockState maps a mutex expression ("t.mu") to how it is held.
type lockState map[string]int

func (st lockState) clone() lockState {
	out := make(lockState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// intersectInto lowers dst to the weaker of a and b for every key —
// the state after a branch whose arms may or may not have run.
func intersectInto(dst, a, b lockState) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range a {
		if bv, ok := b[k]; ok {
			if bv < v {
				v = bv
			}
			dst[k] = v
		}
	}
}

func assignInto(dst, src lockState) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

func runAtomiclock(p *lint.Pass) []lint.Diagnostic {
	c := &alChecker{
		pass:        p,
		guarded:     make(map[*types.Var]bool),
		atomicFlds:  make(map[*types.Var]bool),
		atomicNodes: make(map[*ast.SelectorExpr]bool),
	}
	// Pass 1: infer guarded and atomic fields from how the package itself
	// uses them.
	c.forEachFunc(false, c.infer)
	// Pass 2: flag accesses that break the inferred discipline.
	c.forEachFunc(true, c.flag)
	return c.diags
}

type alChecker struct {
	pass        *lint.Pass
	guarded     map[*types.Var]bool        // fields written under a write-held sibling mutex
	atomicFlds  map[*types.Var]bool        // fields accessed via legacy sync/atomic calls
	atomicNodes map[*ast.SelectorExpr]bool // the sanctioned &x.f nodes inside those calls
	diags       []lint.Diagnostic
}

// accessCB observes one field access with the lock state in force.
type accessCB func(sel *ast.SelectorExpr, fld *types.Var, write bool, st lockState)

// forEachFunc walks every function of the package with lock-state
// tracking, feeding field accesses to cb. Constructors are skipped when
// skipConstructors is set; annotated functions start with their
// receiver's mutexes held.
func (c *alChecker) forEachFunc(skipConstructors bool, cb accessCB) {
	w := &lockWalker{checker: c, cb: cb}
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				lower := strings.ToLower(d.Name.Name)
				if skipConstructors && strings.HasPrefix(lower, "new") {
					continue
				}
				w.walkStmts(d.Body.List, c.entryState(d))
			case *ast.GenDecl:
				// Package-level initializers (including closures).
				for _, spec := range d.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							w.walkExpr(v, make(lockState))
						}
					}
				}
			}
		}
	}
}

// entryState returns the lock state a function starts with: empty unless
// its doc carries the lock-held annotation, in which case every mutex
// field of the receiver is write-held.
func (c *alChecker) entryState(fd *ast.FuncDecl) lockState {
	st := make(lockState)
	if fd.Doc == nil || !lockHeldRe.MatchString(fd.Doc.Text()) {
		return st
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return st
	}
	recvName := fd.Recv.List[0].Names[0]
	obj := c.pass.Info.Defs[recvName]
	if obj == nil {
		return st
	}
	for _, mu := range mutexFieldNames(obj.Type()) {
		st[recvName.Name+"."+mu] = lockWrite
	}
	return st
}

// mutexFieldNames lists the sync.Mutex/sync.RWMutex fields of t's struct.
func mutexFieldNames(t types.Type) []string {
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		if isMutexType(st.Field(i).Type()) {
			out = append(out, st.Field(i).Name())
		}
	}
	return out
}

func isMutexType(t types.Type) bool {
	pkgPath, name, ok := namedType(t)
	return ok && pkgPath == "sync" && (name == "Mutex" || name == "RWMutex")
}

// isSyncType reports types whose fields the checks ignore entirely:
// mutexes, typed atomics, and the other sync primitives.
func isSyncType(t types.Type) bool {
	pkgPath, _, ok := namedType(t)
	return ok && (pkgPath == "sync" || pkgPath == "sync/atomic")
}

// infer is the pass-1 callback: writes under a write-held sibling mutex
// mark the field guarded.
func (c *alChecker) infer(sel *ast.SelectorExpr, fld *types.Var, write bool, st lockState) {
	if !write || isSyncType(fld.Type()) {
		return
	}
	base := types.ExprString(sel.X)
	for _, mu := range c.siblingMutexes(sel) {
		if st[base+"."+mu] == lockWrite {
			c.guarded[fld] = true
			return
		}
	}
}

// flag is the pass-2 callback.
func (c *alChecker) flag(sel *ast.SelectorExpr, fld *types.Var, write bool, st lockState) {
	if isSyncType(fld.Type()) {
		return
	}
	if c.atomicFlds[fld] && !c.atomicNodes[sel] {
		c.diags = append(c.diags, lint.Diagf(sel.Pos(),
			"non-atomic access to field %s, which is accessed with sync/atomic elsewhere; use the atomic API or a typed atomic mirror",
			types.ExprString(sel)))
		return
	}
	if !c.guarded[fld] {
		return
	}
	base := types.ExprString(sel.X)
	held := lockNone
	for _, mu := range c.siblingMutexes(sel) {
		if h := st[base+"."+mu]; h > held {
			held = h
		}
	}
	switch {
	case held == lockNone:
		verb := "read of"
		if write {
			verb = "write to"
		}
		c.diags = append(c.diags, lint.Diagf(sel.Pos(),
			"%s mutex-guarded field %s without holding its lock", verb, types.ExprString(sel)))
	case write && held == lockRead:
		c.diags = append(c.diags, lint.Diagf(sel.Pos(),
			"write to mutex-guarded field %s under a read lock", types.ExprString(sel)))
	}
}

// siblingMutexes lists the mutex fields living next to the accessed field
// in its struct.
func (c *alChecker) siblingMutexes(sel *ast.SelectorExpr) []string {
	s, ok := c.pass.Info.Selections[sel]
	if !ok {
		return nil
	}
	return mutexFieldNames(s.Recv())
}

// lockWalker walks statements in control-flow order, maintaining which
// mutex expressions are held.
type lockWalker struct {
	checker *alChecker
	cb      accessCB
}

func (w *lockWalker) walkStmts(list []ast.Stmt, st lockState) {
	for _, s := range list {
		w.walkStmt(s, st)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt, st lockState) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		w.walkExpr(s.X, st)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.walkExpr(rhs, st)
		}
		for _, lhs := range s.Lhs {
			w.walkWrite(lhs, st)
		}
	case *ast.IncDecStmt:
		w.walkWrite(s.X, st)
	case *ast.IfStmt:
		w.walkStmt(s.Init, st)
		w.walkExpr(s.Cond, st)
		bodySt := st.clone()
		w.walkStmts(s.Body.List, bodySt)
		bodyTerm := stmtListTerminates(s.Body.List)
		if s.Else == nil {
			if !bodyTerm {
				intersectInto(st, st.clone(), bodySt)
			}
			return
		}
		elseSt := st.clone()
		w.walkStmt(s.Else, elseSt)
		elseTerm := stmtTerminates(s.Else)
		switch {
		case bodyTerm && !elseTerm:
			assignInto(st, elseSt)
		case elseTerm && !bodyTerm:
			assignInto(st, bodySt)
		case !bodyTerm && !elseTerm:
			intersectInto(st, bodySt, elseSt)
		}
	case *ast.ForStmt:
		w.walkStmt(s.Init, st)
		w.walkExpr(s.Cond, st)
		bodySt := st.clone()
		w.walkStmts(s.Body.List, bodySt)
		w.walkStmt(s.Post, bodySt)
	case *ast.RangeStmt:
		w.walkExpr(s.X, st)
		bodySt := st.clone()
		if s.Tok == token.ASSIGN {
			w.walkWrite(s.Key, bodySt)
			w.walkWrite(s.Value, bodySt)
		}
		w.walkStmts(s.Body.List, bodySt)
	case *ast.BlockStmt:
		w.walkStmts(s.List, st)
	case *ast.SwitchStmt:
		w.walkStmt(s.Init, st)
		w.walkExpr(s.Tag, st)
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				caseSt := st.clone()
				for _, e := range cl.List {
					w.walkExpr(e, caseSt)
				}
				w.walkStmts(cl.Body, caseSt)
			}
		}
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init, st)
		w.walkStmt(s.Assign, st)
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				caseSt := st.clone()
				w.walkStmts(cl.Body, caseSt)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				caseSt := st.clone()
				w.walkStmt(cl.Comm, caseSt)
				w.walkStmts(cl.Body, caseSt)
			}
		}
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the rest of the
		// function; a deferred closure runs with (at least) the locks
		// held where it was deferred, which is the common
		// lock-then-defer-cleanup shape.
		if _, op, ok := lockOp(w.checker.pass, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return
		}
		w.walkExpr(s.Call.Fun, st)
		for _, a := range s.Call.Args {
			w.walkExpr(a, st)
		}
	case *ast.GoStmt:
		// A spawned goroutine holds nothing, whatever the spawner holds.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, make(lockState))
		} else {
			w.walkExpr(s.Call.Fun, make(lockState))
		}
		for _, a := range s.Call.Args {
			w.walkExpr(a, st)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.walkExpr(r, st)
		}
	case *ast.SendStmt:
		w.walkExpr(s.Chan, st)
		w.walkExpr(s.Value, st)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v, st)
					}
				}
			}
		}
	}
}

// walkWrite handles an assignment target: the terminal field selector is
// a write access; everything passed through on the way (indexes, bases)
// is read.
func (w *lockWalker) walkWrite(e ast.Expr, st lockState) {
	switch e := ast.Unparen(e).(type) {
	case nil:
	case *ast.SelectorExpr:
		if s, ok := w.checker.pass.Info.Selections[e]; ok && s.Kind() == types.FieldVal {
			if fld, isVar := s.Obj().(*types.Var); isVar {
				w.cb(e, fld, true, st)
			}
			w.walkExpr(e.X, st)
			return
		}
		w.walkExpr(e.X, st)
	case *ast.IndexExpr:
		w.walkExpr(e.Index, st)
		w.walkWrite(e.X, st)
	case *ast.StarExpr:
		w.walkExpr(e.X, st)
	case *ast.SliceExpr:
		w.walkExpr(e, st)
	case *ast.Ident:
	default:
		w.walkExpr(e, st)
	}
}

func (w *lockWalker) walkExpr(e ast.Expr, st lockState) {
	switch e := ast.Unparen(e).(type) {
	case nil:
	case *ast.SelectorExpr:
		if s, ok := w.checker.pass.Info.Selections[e]; ok && s.Kind() == types.FieldVal {
			if fld, isVar := s.Obj().(*types.Var); isVar {
				w.cb(e, fld, false, st)
			}
		}
		w.walkExpr(e.X, st)
	case *ast.CallExpr:
		if key, op, ok := lockOp(w.checker.pass, e); ok {
			switch op {
			case "Lock":
				st[key] = lockWrite
			case "RLock":
				if st[key] < lockRead {
					st[key] = lockRead
				}
			case "Unlock", "RUnlock":
				delete(st, key)
			}
			return
		}
		if pkgPath, _, ok := pkgFunc(w.checker.pass.Info, e); ok && pkgPath == "sync/atomic" {
			for _, a := range e.Args {
				w.walkAtomicArg(a, st)
			}
			return
		}
		w.walkExpr(e.Fun, st)
		for _, a := range e.Args {
			w.walkExpr(a, st)
		}
	case *ast.FuncLit:
		w.walkStmts(e.Body.List, st.clone())
	case *ast.UnaryExpr:
		w.walkExpr(e.X, st)
	case *ast.BinaryExpr:
		w.walkExpr(e.X, st)
		w.walkExpr(e.Y, st)
	case *ast.StarExpr:
		w.walkExpr(e.X, st)
	case *ast.IndexExpr:
		w.walkExpr(e.X, st)
		w.walkExpr(e.Index, st)
	case *ast.SliceExpr:
		w.walkExpr(e.X, st)
		w.walkExpr(e.Low, st)
		w.walkExpr(e.High, st)
		w.walkExpr(e.Max, st)
	case *ast.TypeAssertExpr:
		w.walkExpr(e.X, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.walkExpr(kv.Value, st)
				continue
			}
			w.walkExpr(el, st)
		}
	case *ast.KeyValueExpr:
		w.walkExpr(e.Value, st)
	}
}

// walkAtomicArg records &x.f arguments of sync/atomic calls: the field
// joins the atomic set and the node itself is sanctioned.
func (w *lockWalker) walkAtomicArg(a ast.Expr, st lockState) {
	un, ok := ast.Unparen(a).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		w.walkExpr(a, st)
		return
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		w.walkExpr(a, st)
		return
	}
	if s, found := w.checker.pass.Info.Selections[sel]; found && s.Kind() == types.FieldVal {
		if fld, isVar := s.Obj().(*types.Var); isVar {
			w.checker.atomicFlds[fld] = true
			w.checker.atomicNodes[sel] = true
		}
	}
	w.walkExpr(sel.X, st)
}

// lockOp classifies a call as a mutex operation and returns the printed
// mutex expression ("t.mu") and the method name.
func lockOp(p *lint.Pass, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	s, found := p.Info.Selections[sel]
	if !found || s.Kind() != types.MethodVal || !isMutexType(s.Recv()) {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}
