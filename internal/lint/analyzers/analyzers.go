// Package analyzers holds crlint's project-specific checks. Each analyzer
// machine-enforces one contract the reproduction's determinism claim
// rests on (see DESIGN.md §12):
//
//   - detrand: deterministic packages take no wall-clock or
//     global-randomness input, and never let map iteration order leak
//     into outputs.
//   - nilinstr: hot-path instrumentation calls are dominated by a nil
//     check, preserving the zero-alloc disabled path.
//   - bufalias: slices handed to reusable dsp plan executions never
//     escape into struct fields or return values.
//   - unitconv: unit arithmetic goes through the named conversion
//     constants and types, not re-derived magic literals.
//   - shardsafe: handler/worker code touches per-shard and per-worker
//     slot arrays only through the owning shard/worker index, and slot
//     references never escape the owning context (DESIGN.md §17).
//   - wallclass: every wall-time-class report field is zeroed by
//     StripWallTime, json tags and Go names agree on wall-class naming,
//     and _live metric names are spelled via obs.LiveMetricSuffix.
//   - hotlabel: metric-vector label resolution (.With, *Vec family
//     lookups) happens in setup functions, never per event.
//   - atomiclock: mutex-guarded fields are not read outside the guard and
//     legacy sync/atomic fields are never accessed non-atomically.
//
// Analyzers are package-path agnostic; Applicable owns the mapping from
// repository layout to the analyzers that run there, so test fixtures can
// exercise each analyzer from testdata packages.
package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/uwb-sim/concurrent-ranging/internal/lint"
)

// module is the import path this suite is built for; Applicable matches
// repository packages against it.
const module = "github.com/uwb-sim/concurrent-ranging"

// Paths of the packages whose types the analyzers key on.
const (
	obsPath   = module + "/internal/obs"
	tracePath = module + "/internal/obs/trace"
	dspPath   = module + "/internal/dsp"
	simPath   = module + "/internal/sim"
)

// deterministicPkgs are the packages whose outputs must be bit-identical
// run-to-run for a fixed seed — the detrand surface.
var deterministicPkgs = []string{
	"internal/core",
	"internal/dsp",
	"internal/sim",
	"internal/channel",
	"internal/pulse",
	"internal/experiments",
}

// nilinstrPkgs are the hot-path packages where every instrumentation call
// must be nil-guarded.
var nilinstrPkgs = []string{
	"internal/core",
	"internal/dsp",
}

// unitconvPkgs are the packages carrying the paper's timing/geometry unit
// arithmetic.
var unitconvPkgs = []string{
	"internal/dw1000",
	"internal/geom",
}

// shardsafePkgs are the packages with sharded/worker execution contexts
// whose slot arrays obey the owner-index discipline.
var shardsafePkgs = []string{
	"internal/sim",
}

// wallclassPkgs are the packages defining or populating reports whose
// wall-time-class fields StripWallTime must erase.
var wallclassPkgs = []string{
	"internal/obs",
	"internal/sim",
	"internal/experiments",
	"internal/core",
	"ranging",
}

// hotlabelPkgs are the hot-path packages where metric-vector label
// resolution must be hoisted into setup functions.
var hotlabelPkgs = []string{
	"internal/core",
	"internal/sim",
	"internal/experiments",
	"internal/obs/trace",
	"ranging",
}

// atomiclockPkgs are the packages mixing mutexes and atomics whose field
// access discipline atomiclock checks.
var atomiclockPkgs = []string{
	"internal/sim",
	"internal/obs",
	"internal/obs/trace",
	"internal/experiments",
	"internal/core",
}

// All returns every analyzer in the suite.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{Detrand, Nilinstr, Bufalias, Unitconv, Shardsafe, Wallclass, Hotlabel, Atomiclock}
}

// Applicable returns the analyzers that run on the package at pkgPath
// given its direct imports. Bufalias applies to every dsp *caller* (dsp
// itself owns the buffers it hands out).
func Applicable(pkgPath string, imports []string) []*lint.Analyzer {
	var out []*lint.Analyzer
	if matchesAny(pkgPath, deterministicPkgs) {
		out = append(out, Detrand)
	}
	if matchesAny(pkgPath, nilinstrPkgs) {
		out = append(out, Nilinstr)
	}
	if pkgPath != dspPath {
		for _, imp := range imports {
			if imp == dspPath {
				out = append(out, Bufalias)
				break
			}
		}
	}
	if matchesAny(pkgPath, unitconvPkgs) {
		out = append(out, Unitconv)
	}
	if matchesAny(pkgPath, shardsafePkgs) {
		out = append(out, Shardsafe)
	}
	if matchesAny(pkgPath, wallclassPkgs) {
		out = append(out, Wallclass)
	}
	if matchesAny(pkgPath, hotlabelPkgs) {
		out = append(out, Hotlabel)
	}
	if matchesAny(pkgPath, atomiclockPkgs) {
		out = append(out, Atomiclock)
	}
	return out
}

func matchesAny(pkgPath string, rels []string) bool {
	for _, rel := range rels {
		if pkgPath == module+"/"+rel {
			return true
		}
	}
	return false
}

// namedTypeIn reports whether t (after stripping pointers and aliases) is
// the named type pkgPath.name, and returns the matched name.
func namedType(t types.Type) (pkgPath, name string, ok bool) {
	if ptr, isPtr := types.Unalias(t).(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := types.Unalias(t).(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// pkgFunc resolves a call to a package-level function (not a method) and
// returns its defining package path and name.
func pkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return "", "", false
	}
	fn, isFn := info.Uses[id].(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// methodCall resolves a call to a method and returns the receiver
// expression, the receiver's type, and the method name.
func methodCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, recvType types.Type, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, nil, "", false
	}
	selection, found := info.Selections[sel]
	if !found || selection.Kind() != types.MethodVal {
		return nil, nil, "", false
	}
	return sel.X, selection.Recv(), sel.Sel.Name, true
}

// stmtListTerminates reports whether a statement list always transfers
// control out of the enclosing block (return, branch, or panic).
func stmtListTerminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	return stmtTerminates(stmts[len(stmts)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				return fun.Name == "panic"
			case *ast.SelectorExpr:
				// os.Exit, log.Fatal*, t.Fatal* end the statement list
				// for guard purposes.
				return fun.Sel.Name == "Exit" || strings.HasPrefix(fun.Sel.Name, "Fatal")
			}
		}
	case *ast.BlockStmt:
		return stmtListTerminates(s.List)
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		return stmtTerminates(s.Body) && stmtTerminates(s.Else)
	case *ast.LabeledStmt:
		return stmtTerminates(s.Stmt)
	}
	return false
}
