// Package fixture exercises the bufalias analyzer: escaping aliases of
// reused plan buffers live in this file, the ownership-preserving idioms
// in clean.go.
package fixture

import "github.com/uwb-sim/concurrent-ranging/internal/dsp"

// detector models a component with detector-owned scratch buffers reused
// across rounds.
type detector struct {
	scratch []complex128
	keep    []complex128
	history [][]complex128
	plan    *dsp.FFTPlan
	up      *dsp.UpsamplePlan
	bank    *dsp.MatchedFilterBank
}

// result captures detection output.
type result struct {
	taps []complex128
}

// returnAlias returns the reused scratch buffer to the caller.
func (d *detector) returnAlias(a, b []complex128) ([]complex128, error) {
	out, err := dsp.ConvolveWith(d.scratch, a, b, d.plan)
	if err != nil {
		return nil, err
	}
	return out, nil // want `returning out aliases a reused dsp plan buffer`
}

// storeAlias parks the alias in another struct field.
func (d *detector) storeAlias(a, b []complex128) error {
	out, err := dsp.MatchedFilterWith(d.scratch, a, b, d.plan)
	if err != nil {
		return err
	}
	d.keep = out // want `storing out into field d\.keep`
	return nil
}

// appendAlias keeps the alias in a history slice.
func (d *detector) appendAlias(v []complex128) {
	out := d.up.Execute(d.scratch, v)
	d.history = append(d.history, out) // want `appending out keeps an alias`
}

// literalAlias embeds the alias in a composite literal.
func (d *detector) literalAlias(v []complex128) result {
	out := d.up.Execute(d.scratch, v)
	return result{taps: out} // want `composite literal captures out`
}

// slicedAlias escapes through a slicing of the tainted local.
func (d *detector) slicedAlias(t int) ([]complex128, error) {
	out, err := d.bank.FilterInto(d.scratch, t)
	if err != nil {
		return nil, err
	}
	return out[:8], nil // want `returning out\[:8\] aliases a reused dsp plan buffer`
}
