package fixture

import "github.com/uwb-sim/concurrent-ranging/internal/dsp"

// localDst hands the plan a locally allocated destination: the caller
// owns it, so returning it is fine.
func (d *detector) localDst(a, b []complex128) ([]complex128, error) {
	return dsp.ConvolveWith(make([]complex128, len(a)), a, b, d.plan)
}

// callerDst writes into the caller's own slice: theirs to keep.
func (d *detector) callerDst(dst, v []complex128) []complex128 {
	return d.up.Execute(dst, v)
}

// reslice re-slices the scratch field into itself — ownership-preserving,
// not an escape.
func (d *detector) reslice(v []complex128, t int) error {
	d.scratch = d.scratch[:cap(d.scratch)]
	_, err := d.bank.FilterInto(d.scratch, t)
	return err
}

// copyOut snapshots the reused buffer into a caller-owned slice — the
// sanctioned way to hand results out.
func (d *detector) copyOut(a, b []complex128) ([]complex128, error) {
	out, err := dsp.ConvolveWith(d.scratch, a, b, d.plan)
	if err != nil {
		return nil, err
	}
	snap := make([]complex128, len(out))
	copy(snap, out)
	return snap, nil
}
