package fixture

// scaled converts through the named constant: the unit boundary is
// crossed explicitly and stays coupled to the constant.
func scaled(s Samples) Meters {
	return Meters(float64(s) * MetersPerSample)
}

// tick uses the named constant directly.
func tick(n float64) float64 {
	return n * TickSeconds
}

// smallInts are trivial values that legitimately appear as literals.
func smallInts(s Samples) Samples {
	return s*2 + 1
}

// untypedConversion to a builtin type is not a unit crossing.
func untypedConversion(s Samples) float64 {
	return float64(s)
}
