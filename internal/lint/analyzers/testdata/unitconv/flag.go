// Package fixture exercises the unitconv analyzer: re-derived magic
// literals and unscaled cross-unit conversions live in this file, the
// sanctioned named-constant arithmetic in clean.go.
package fixture

// Samples counts receiver samples; Meters measures distance. Converting
// between them requires MetersPerSample.
type (
	Samples float64
	Meters  float64
)

// MetersPerSample is the named conversion constant between the two unit
// domains (speed of light over twice the sample rate, meters).
const MetersPerSample = 0.299792458 / 2

// TickSeconds is a second named constant the literal check must catch.
const TickSeconds = 15.65e-12

// unscaled crosses the unit boundary without the conversion constant:
// the value silently keeps its samples magnitude.
func unscaled(s Samples) Meters {
	return Meters(s) // want `direct conversion Meters\(Samples\) crosses unit types`
}

// restated re-derives MetersPerSample as a raw literal, decoupling the
// call site from the named constant.
func restated(x float64) float64 {
	return x * 0.149896229 // want `raw literal 0\.149896229 restates the named constant MetersPerSample`
}

// restatedTick re-derives TickSeconds.
func restatedTick(n float64) float64 {
	return n * 15.65e-12 // want `raw literal 15\.65e-12 restates the named constant TickSeconds`
}
