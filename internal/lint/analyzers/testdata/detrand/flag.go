// Package fixture exercises the detrand analyzer: the flagging paths
// live in this file, the sanctioned idioms in clean.go.
package fixture

import (
	"fmt"
	oldrand "math/rand" // want `deterministic package imports math/rand`
	"math/rand/v2"
	"time"

	"github.com/uwb-sim/concurrent-ranging/internal/obs"
)

// wallClock reads the wall clock directly.
func wallClock() time.Time {
	return time.Now() // want `wall-clock read time\.Now`
}

// elapsed reads the wall clock through time.Since.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock read time\.Since`
}

// globalDraw pulls from the process-global, randomly seeded source.
func globalDraw() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the process-global source`
}

// v1Source uses math/rand (v1): the import is flagged once per file, the
// calls are not flagged again.
func v1Source() *oldrand.Rand {
	return oldrand.New(oldrand.NewSource(1))
}

// leakOrder appends under map iteration without sorting afterwards.
func leakOrder(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order leaks into keys`
		keys = append(keys, k)
	}
	return keys
}

// printOrder writes output in map iteration order.
func printOrder(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `map iteration order leaks into output via fmt\.Println`
	}
}

// emitOrder records metrics in map iteration order.
func emitOrder(m map[string]int, rec obs.Recorder) {
	for k, v := range m {
		rec.Count(k, int64(v)) // want `map iteration order leaks into instrumentation via Recorder\.Count`
	}
}
