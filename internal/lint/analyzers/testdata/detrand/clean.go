package fixture

import (
	"math/rand/v2"
	"sort"
	"time"
)

// seededDraw builds an explicitly seeded source — the sanctioned path.
func seededDraw(seed uint64) float64 {
	r := rand.New(rand.NewPCG(seed, 42))
	return r.Float64()
}

// collectThenSort is the sanctioned map-iteration idiom: the appended-to
// slice is sorted before anything can observe its order.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// timeArithmetic on values handed in is fine; only wall-clock reads are
// forbidden.
func timeArithmetic(t0, t1 time.Time) time.Duration {
	return t1.Sub(t0)
}

// sliceRange iterates a slice, not a map: order is deterministic.
func sliceRange(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, 2*x)
	}
	return out
}
