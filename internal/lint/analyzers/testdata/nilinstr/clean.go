package fixture

import (
	"github.com/uwb-sim/concurrent-ranging/internal/obs/trace"
)

// guarded wraps the call in the canonical nil check.
func (e *engine) guarded() {
	if e.rec != nil {
		e.rec.Count("rounds", 1)
	}
}

// earlyReturn guards with a terminating nil branch: the non-nil fact
// flows to the rest of the function.
func (e *engine) earlyReturn() {
	if e.rec == nil {
		return
	}
	e.rec.Count("rounds", 1)
	if e.load != nil {
		e.load.Set(0.5)
	}
}

// recordingGuard uses Span.Recording, the tracer's sanctioned liveness
// predicate, as the dominating check.
func recordingGuard(sp *trace.Span) {
	if !sp.Recording() {
		return
	}
	sp.Event("peak", trace.Attrs{"idx": 3})
}

// liveness calls the nil-safe predicates themselves unguarded — that is
// the idiom, not a violation.
func liveness(sp *trace.Span) (bool, uint64) {
	return sp.Recording(), sp.ID()
}

// combinedGuard establishes two facts through one && condition.
func (e *engine) combinedGuard() {
	if e.rec != nil && e.rounds != nil {
		e.rec.Count("rounds", 1)
		e.rounds.Inc()
	}
}

// localSpan is the repository's span idiom: Begin under a tracer guard,
// then establish the span's own liveness via Recording before using it.
func (e *engine) localSpan() {
	if e.tracer == nil {
		return
	}
	sp := e.tracer.Begin("detect", nil)
	if !sp.Recording() {
		return
	}
	defer sp.End()
	sp.Event("start", nil)
}
