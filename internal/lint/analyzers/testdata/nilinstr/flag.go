// Package fixture exercises the nilinstr analyzer: unguarded
// instrumentation calls live in this file, the sanctioned guard idioms in
// clean.go.
package fixture

import (
	"github.com/uwb-sim/concurrent-ranging/internal/obs"
	"github.com/uwb-sim/concurrent-ranging/internal/obs/trace"
)

// engine models a hot-path component with optional instrumentation.
type engine struct {
	rec    obs.Recorder
	rounds *obs.Counter
	load   *obs.Gauge
	tracer *trace.Tracer
}

// unguardedRecorder calls the recorder with no dominating nil check.
func (e *engine) unguardedRecorder() {
	e.rec.Count("rounds", 1) // want `obs\.Recorder\.Count on .e\.rec. is not dominated by a nil check`
}

// unguardedCounter ticks a counter with no dominating nil check.
func (e *engine) unguardedCounter() {
	e.rounds.Inc() // want `obs\.Counter\.Inc on .e\.rounds.`
}

// unguardedSpan pays the trace.Attrs allocation even when tracing is off.
func (e *engine) unguardedSpan() *trace.Span {
	return e.tracer.Begin("detect", trace.Attrs{"round": 1}) // want `trace\.Tracer\.Begin on .e\.tracer.`
}

// invalidated reassigns the receiver after the guard: the fact dies.
func (e *engine) invalidated(fresh obs.Recorder) {
	if e.rec == nil {
		return
	}
	e.rec = fresh
	e.rec.Count("rounds", 1) // want `obs\.Recorder\.Count on .e\.rec.`
}

// deferredLit runs outside the guard's window: function literals start
// with no facts.
func (e *engine) deferredLit() {
	if e.rec == nil {
		return
	}
	defer func() {
		e.rec.Count("rounds", 1) // want `obs\.Recorder\.Count on .e\.rec.`
	}()
	e.rec.Count("begin", 1)
}
