// Package fixture exercises the wallclass analyzer: wall-class fields
// StripWallTime misses, json-tag naming drift, and raw _live literals
// live in this file, the covered idioms in clean.go.
package fixture

// Report models a run report with a StripWallTime method that misses
// wall-class fields.
type Report struct {
	Name           string
	WallSeconds    float64
	CIRsPerSecond  float64 // want `wall-time-class field Report.CIRsPerSecond is not zeroed by StripWallTime`
	EngineStallPct float64
	StartTime      string // want `wall-time-class field Report.StartTime is not zeroed by StripWallTime`
	Trials         int
	Items          []Item
}

// Item is rebuilt element-wise by StripWallTime; its wall-class fields
// are checked through the per-element assignments.
type Item struct {
	WallSeconds     float64
	RoundsPerSecond float64 // want `wall-time-class field Item.RoundsPerSecond is not zeroed by StripWallTime`
	Label           string
}

// StripWallTime forgets CIRsPerSecond, StartTime, and the items'
// RoundsPerSecond.
func (r *Report) StripWallTime() *Report {
	out := *r
	out.WallSeconds = 0
	out.EngineStallPct = 0
	out.Items = make([]Item, len(r.Items))
	for i, e := range r.Items {
		e.WallSeconds = 0
		out.Items[i] = e
	}
	return &out
}

// Drift pairs a wall-class json tag with a Go field named outside the
// contract, so the Go-side StripWallTime check cannot see it.
type Drift struct {
	Total float64 `json:"total_seconds"`    // want `json tag "total_seconds" marks a wall-time-class value but field Total`
	Stall float64 `json:"engine_stall_pct"` // want `json tag "engine_stall_pct" marks a wall-time-class value but field Stall`
}

// MetricRoundsLive spells the live suffix by hand instead of building it
// from obs.LiveMetricSuffix.
const MetricRoundsLive = "fixture.rounds_live" // want `raw "fixture.rounds_live" literal`
