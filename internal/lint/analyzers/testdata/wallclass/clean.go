package fixture

import "github.com/uwb-sim/concurrent-ranging/internal/obs"

// Summary has every wall-class field zeroed, json tags agreeing with the
// Go-side names, and its live metric built from the shared suffix.
type Summary struct {
	Name            string  `json:"name"`
	WallSeconds     float64 `json:"wall_seconds"`
	EventsPerSecond float64 `json:"events_per_second"`
	EngineDrainPct  float64 `json:"engine_drain_pct"`
	StartTime       string  `json:"start_time"`
	Trials          int     `json:"trials"`
}

// StripWallTime zeroes the whole wall-time class.
func (s *Summary) StripWallTime() *Summary {
	out := *s
	out.WallSeconds = 0
	out.EventsPerSecond = 0
	out.EngineDrainPct = 0
	out.StartTime = ""
	return &out
}

// MetricTrialsLive derives the live-gauge name from the shared suffix,
// which is what StripWallTime keys on.
const MetricTrialsLive = "fixture.trials" + obs.LiveMetricSuffix

// legacy documents the sanctioned suppression shape for a field the
// strip intentionally keeps: the diagnostic lands on the field
// declaration, so that is where the justification lives.
type legacy struct {
	SimSeconds float64 //lint:allow wallclass simulated (virtual) time is deterministic across reruns, so the strip keeps it
}

// StripWallTime keeps SimSeconds: simulated time is deterministic.
func (l *legacy) StripWallTime() *legacy {
	out := *l
	return &out
}
