// Package fixture exercises the hotlabel analyzer: per-event label
// resolution lives in this file, the pre-resolution idiom in clean.go.
package fixture

import "github.com/uwb-sim/concurrent-ranging/internal/obs"

// component records a labeled tally on every event.
type component struct {
	vec *obs.CounterVec
	ok  *obs.Counter
	rec obs.Recorder
}

// onEvent is a per-event function: the .With lookup here runs a locked
// map access millions of times per run.
func (c *component) onEvent(kind string) {
	c.vec.With(kind).Inc() // want `With resolves a metric-vector label in onEvent`
}

// drain resolves a whole family per call, which is the same mistake one
// level up.
func (c *component) drain(vs obs.VecSource) {
	vs.GaugeVec("fixture.depth", "queue").With("q").Set(0) // want `GaugeVec resolves a metric-vector label in drain` `With resolves a metric-vector label in drain`
}

// flush pulls a family from the registry mid-flight.
func (c *component) flush(reg *obs.Registry) {
	reg.CounterVec("fixture.flushes", "kind").With("full").Inc() // want `CounterVec resolves a metric-vector label in flush` `With resolves a metric-vector label in flush`
}
