package fixture

import "github.com/uwb-sim/concurrent-ranging/internal/obs"

// meter shows the sanctioned shapes: resolution in Set*/new*/attach
// setup functions and the Record flush, with hot paths recording through
// pre-resolved handles.
type meter struct {
	events *obs.CounterVec
	good   *obs.Counter
	bad    *obs.Counter
	depth  *obs.Gauge
	lazy   map[string]*obs.Counter
}

// newMeter is a constructor: resolving here runs once per component.
func newMeter(reg *obs.Registry) *meter {
	m := &meter{events: reg.CounterVec("fixture.events", "kind")}
	m.good = m.events.With("good")
	return m
}

// SetRecorder is the canonical wiring point.
func (m *meter) SetRecorder(rec obs.Recorder) {
	if vs, ok := rec.(obs.VecSource); ok {
		m.events = vs.CounterVec("fixture.events", "kind")
		m.good = m.events.With("good")
		m.bad = m.events.With("bad")
	}
}

// attach resolves per-worker handles once at pool start.
func (m *meter) attach(vs obs.VecSource, workers int) {
	m.depth = vs.GaugeVec("fixture.depth", "queue").With("q0")
}

// onEvent is the hot path: plain handle operations only.
func (m *meter) onEvent(good bool) {
	if good {
		m.good.Inc()
		return
	}
	m.bad.Inc()
}

// Record is the once-per-campaign flush, where label tuples are cheap.
func (m *meter) Record(vs obs.VecSource, outcomes map[string]int64) {
	vec := vs.CounterVec("fixture.outcomes", "outcome")
	for k, v := range outcomes {
		vec.With(k).Add(v)
	}
}

// count documents the sanctioned suppression shape: an unbounded name
// set resolved once per name into a caller-locked cache.
func (m *meter) count(name string) {
	ctr := m.lazy[name]
	if ctr == nil {
		ctr = m.events.With(name) //lint:allow hotlabel names are unbounded, so the handle is resolved once per name into a caller-locked cache
		m.lazy[name] = ctr
	}
	ctr.Inc()
}
