package fixture

import "github.com/uwb-sim/concurrent-ranging/internal/sim"

// mesh models the sanctioned idioms: owner-indexed slots, id-indexed
// node state, coordinator merges, same-shard closures, and the one
// justified suppression shape.
type mesh struct {
	slots []int64
	nodes []int32
}

// handler touches only its own slot, through a derived local. Node state
// is indexed by node id; nodes never becomes a slot array because no
// owner id ever indexes it.
func (m *mesh) handler(sc sim.Scheduler, node int) {
	sh := sc.Shard()
	m.slots[sh]++
	m.nodes[node]++
}

// merge is coordinator context — no Scheduler, no owner parameter — and
// may fold every slot freely: it runs between barrier windows, when no
// handler is executing.
func (m *mesh) merge() int64 {
	total := int64(0)
	for i := range m.slots {
		total += m.slots[i]
	}
	return total
}

// reschedule keeps work on the owning shard; a same-shard Schedule
// closure may use the slot reference because it executes on the same
// shard, never concurrently with its owner.
func (m *mesh) reschedule(sc sim.Scheduler) {
	st := &m.slots[sc.Shard()]
	_ = sc.Schedule(sc.Now()+1, func(sc sim.Scheduler) {
		*st += 1
	})
}

// claimed documents the sanctioned suppression: a worker that has
// claimed a shard for the current window owns that shard's slot even
// though the index expression is not the worker id.
func (m *mesh) claimed(worker int, shardID2 int) {
	st := &m.slots[shardID2] //lint:allow shardsafe the worker owns the claimed shard for this window
	*st += 1
}
