// Package fixture exercises the shardsafe analyzer: cross-shard slot
// accesses and slot-reference escapes live in this file, the
// owner-indexed idioms in clean.go.
package fixture

import "github.com/uwb-sim/concurrent-ranging/internal/sim"

// engine models a sharded component with per-shard slot arrays.
type engine struct {
	perShard []int64
	traces   [][]int
	keep     []int
}

// ownHandler is the registering access: indexing perShard and traces by
// the owning shard anywhere marks them as slot arrays everywhere.
func (e *engine) ownHandler(sc sim.Scheduler) {
	e.perShard[sc.Shard()]++
	e.traces[sc.Shard()] = append(e.traces[sc.Shard()], 1)
}

// crossShardWrite pokes a peer shard's slot directly from handler
// context.
func (e *engine) crossShardWrite(sc sim.Scheduler, peer int) {
	e.perShard[peer]++ // want `accesses a per-shard slot array with non-owner index peer`
}

// crossShardRead is just as racy as a write: the owner may be mutating
// the slot concurrently.
func (e *engine) crossShardRead(sc sim.Scheduler) int64 {
	return e.perShard[0] // want `accesses a per-shard slot array with non-owner index 0`
}

// leakReturn hands a reference into the owning slot to the caller, which
// may stash it beyond the window barrier.
func (e *engine) leakReturn(sc sim.Scheduler) []int {
	tr := e.traces[sc.Shard()]
	return tr // want `returning tr leaks a per-shard slot reference`
}

// leakField parks a slot reference in a field any goroutine can see.
func (e *engine) leakField(sc sim.Scheduler) {
	tr := e.traces[sc.Shard()]
	e.keep = tr // want `storing tr into field e.keep leaks a per-shard slot reference`
}

// leakSend captures a slot pointer in a closure executed on another
// shard — the exact race the bus exists to prevent.
func (e *engine) leakSend(sc sim.Scheduler) {
	st := &e.perShard[sc.Shard()]
	_ = sc.Send(0, sc.Now()+1, func(sc sim.Scheduler) {
		*st += 1 // want `cross-shard Send closure captures st`
	})
}

// prof models the worker-indexed flavor: integer parameters named
// worker/shard are owner ids.
type prof struct {
	workers []int64
	shards  []int64
}

// tick is the registering access for workers.
func (p *prof) tick(worker int) {
	p.workers[worker]++
}

// outbox is the registering access for shards.
func (p *prof) outbox(shard int, n int64) {
	p.shards[shard] += n
}

// crossWorker reads a neighbouring worker's slot from worker context.
func (p *prof) crossWorker(worker int) int64 {
	return p.workers[worker+1] // want `accesses a per-shard slot array with non-owner index worker \+ 1`
}
