package fixture

import (
	"sync"
	"sync/atomic"
)

// tracker shows the disciplined shapes: every guarded access under the
// lock, the lock-held-on-entry annotation, constructor writes, the
// typed-atomic mirror, and the one justified suppression shape.
type tracker struct {
	mu      sync.Mutex
	seq     int64
	entries []string
	live    atomic.Int64
}

// newTracker writes freely: the value is not shared yet.
func newTracker() *tracker {
	t := &tracker{}
	t.seq = 1
	t.entries = make([]string, 0, 16)
	return t
}

// Add takes the lock around every guarded access and bumps the atomic
// mirror outside it.
func (t *tracker) Add(e string) {
	t.mu.Lock()
	t.seq++
	t.entries = append(t.entries, e)
	t.mu.Unlock()
	t.live.Add(1)
}

// Len snapshots under the lock with the defer idiom.
func (t *tracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// bump is a helper its callers invoke with the lock held. Callers hold
// t.mu.
func (t *tracker) bump() {
	t.seq++
}

// cache shows double-checked locking: the read probe under RLock, the
// write under the full lock.
type cache struct {
	mu sync.RWMutex
	m  map[string]int
}

func (c *cache) get(k string) (int, bool) {
	c.mu.RLock()
	v, ok := c.m[k]
	c.mu.RUnlock()
	if ok {
		return v, true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.m[k]; ok {
		return v, true
	}
	c.m[k] = 0
	return 0, false
}

// startGen documents the sanctioned suppression shape: the field is
// written before the goroutines that share it exist.
func (t *tracker) startGen() {
	t.seq = 0 //lint:allow atomiclock no goroutine shares t yet; the spawn below publishes it with a happens-before edge
	go t.Add("gen")
}
