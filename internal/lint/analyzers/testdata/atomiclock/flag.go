// Package fixture exercises the atomiclock analyzer: unguarded access to
// mutex-guarded fields and mixed atomic/plain access live in this file,
// the disciplined idioms in clean.go.
package fixture

import (
	"sync"
	"sync/atomic"
)

// box is the mirror pattern: err is the mutex-guarded truth, failed the
// typed-atomic signal.
type box struct {
	mu     sync.Mutex
	err    error
	count  int64
	failed atomic.Bool
}

// fail writes under the lock — this is what marks err and count guarded.
func (b *box) fail(e error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = e
	}
	b.count++
	b.mu.Unlock()
	b.failed.Store(true)
}

// peek reads the guarded truth without the lock.
func (b *box) peek() error {
	return b.err // want `read of mutex-guarded field b.err without holding its lock`
}

// bump writes without the lock.
func (b *box) bump() {
	b.count++ // want `write to mutex-guarded field b.count without holding its lock`
}

// leakyUnlock releases early on one path, then keeps touching guarded
// state.
func (b *box) leakyUnlock(done bool) {
	b.mu.Lock()
	if done {
		b.mu.Unlock()
		b.count = 0 // want `write to mutex-guarded field b.count without holding its lock`
		return
	}
	b.count++
	b.mu.Unlock()
}

// registry shows the read-lock flavor.
type registry struct {
	mu sync.RWMutex
	m  map[string]int
}

// set writes under the write lock, marking m guarded.
func (r *registry) set(k string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[k] = v
}

// badSet writes under only the read lock.
func (r *registry) badSet(k string) {
	r.mu.RLock()
	r.m[k] = 0 // want `write to mutex-guarded field r.m under a read lock`
	r.mu.RUnlock()
}

// legacyCtr mixes legacy sync/atomic calls with plain access.
type legacyCtr struct {
	hits int64
}

// inc is the atomic side.
func (c *legacyCtr) inc() {
	atomic.AddInt64(&c.hits, 1)
}

// read is the racy plain side.
func (c *legacyCtr) read() int64 {
	return c.hits // want `non-atomic access to field c.hits`
}
