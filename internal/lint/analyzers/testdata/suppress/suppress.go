// Package fixture exercises //lint:allow suppression handling (checked
// programmatically in analyzers_test.go, not via want comments, because
// a suppression directive and a want directive cannot share a line).
package fixture

import "time"

// sanctioned carries a justified suppression: no diagnostic.
func sanctioned() time.Time {
	return time.Now() //lint:allow detrand fixture: a justified suppression is honored
}

// bare carries an unjustified suppression: the lint complaint and the
// underlying detrand diagnostic both fire.
func bare() time.Time {
	return time.Now() //lint:allow detrand
}

// wrongAnalyzer suppresses a different analyzer: detrand still fires.
func wrongAnalyzer() time.Time {
	return time.Now() //lint:allow nilinstr fixture: names the wrong analyzer
}

// ownLine suppresses the line below it, the form used when a line is too
// long to carry the directive.
func ownLine() time.Time {
	//lint:allow detrand fixture: a directive on its own line covers the next line
	return time.Now()
}
