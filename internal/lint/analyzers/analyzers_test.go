package analyzers_test

import (
	"strings"
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/lint"
	"github.com/uwb-sim/concurrent-ranging/internal/lint/analyzers"
	"github.com/uwb-sim/concurrent-ranging/internal/lint/linttest"
)

func TestDetrand(t *testing.T) {
	linttest.Run(t, "testdata/detrand", analyzers.Detrand)
}

func TestNilinstr(t *testing.T) {
	linttest.Run(t, "testdata/nilinstr", analyzers.Nilinstr)
}

func TestBufalias(t *testing.T) {
	linttest.Run(t, "testdata/bufalias", analyzers.Bufalias)
}

func TestUnitconv(t *testing.T) {
	linttest.Run(t, "testdata/unitconv", analyzers.Unitconv)
}

func TestShardsafe(t *testing.T) {
	linttest.Run(t, "testdata/shardsafe", analyzers.Shardsafe)
}

func TestWallclass(t *testing.T) {
	linttest.Run(t, "testdata/wallclass", analyzers.Wallclass)
}

func TestHotlabel(t *testing.T) {
	linttest.Run(t, "testdata/hotlabel", analyzers.Hotlabel)
}

func TestAtomiclock(t *testing.T) {
	linttest.Run(t, "testdata/atomiclock", analyzers.Atomiclock)
}

// TestSuppression checks the //lint:allow contract: a justified
// suppression silences its analyzer on its line (or the line below a
// directive on its own line), an unjustified one is itself reported and
// silences nothing, and naming the wrong analyzer silences nothing.
func TestSuppression(t *testing.T) {
	pass := linttest.Load(t, "testdata/suppress")
	diags := lint.RunAnalyzers(pass, []*lint.Analyzer{analyzers.Detrand})
	var lintDiags, detrandDiags []lint.Diagnostic
	for _, d := range diags {
		switch d.Analyzer {
		case "lint":
			lintDiags = append(lintDiags, d)
		case "detrand":
			detrandDiags = append(detrandDiags, d)
		default:
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d.Message)
		}
	}
	if len(lintDiags) != 1 || !strings.Contains(lintDiags[0].Message, "needs a justification") {
		t.Errorf("want exactly one unjustified-suppression diagnostic, got %v", lintDiags)
	}
	// bare() and wrongAnalyzer() stay flagged; sanctioned() and ownLine()
	// are suppressed.
	if len(detrandDiags) != 2 {
		t.Errorf("want 2 surviving detrand diagnostics, got %d: %v", len(detrandDiags), detrandDiags)
	}
	for _, d := range detrandDiags {
		if !strings.Contains(d.Message, "wall-clock read time.Now") {
			t.Errorf("unexpected detrand diagnostic: %s", d.Message)
		}
	}
}

// TestApplicable pins the repository mapping: which analyzers run where.
func TestApplicable(t *testing.T) {
	const module = "github.com/uwb-sim/concurrent-ranging"
	cases := []struct {
		pkg     string
		imports []string
		want    []string
	}{
		{module + "/internal/core", []string{module + "/internal/dsp"}, []string{"detrand", "nilinstr", "bufalias", "wallclass", "hotlabel", "atomiclock"}},
		{module + "/internal/dsp", nil, []string{"detrand", "nilinstr"}},
		{module + "/internal/experiments", []string{module + "/internal/dsp"}, []string{"detrand", "bufalias", "wallclass", "hotlabel", "atomiclock"}},
		{module + "/internal/dw1000", nil, []string{"unitconv"}},
		{module + "/internal/geom", nil, []string{"unitconv"}},
		{module + "/internal/sim", nil, []string{"detrand", "shardsafe", "wallclass", "hotlabel", "atomiclock"}},
		{module + "/internal/obs", nil, []string{"wallclass", "atomiclock"}},
		{module + "/internal/obs/trace", nil, []string{"hotlabel", "atomiclock"}},
		{module + "/ranging", nil, []string{"wallclass", "hotlabel"}},
		{module + "/cmd/crbench", []string{"flag"}, nil},
	}
	for _, c := range cases {
		var got []string
		for _, a := range analyzers.Applicable(c.pkg, c.imports) {
			got = append(got, a.Name)
		}
		if len(got) != len(c.want) {
			t.Errorf("Applicable(%s) = %v, want %v", c.pkg, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Applicable(%s) = %v, want %v", c.pkg, got, c.want)
				break
			}
		}
	}
}
