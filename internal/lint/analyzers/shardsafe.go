package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/uwb-sim/concurrent-ranging/internal/lint"
)

// Shardsafe enforces the sharded engine's slot-ownership discipline
// (DESIGN.md §17). Handler and worker code runs concurrently with its
// peers; the only shared mutable state it may touch directly is its own
// slot of a per-shard/per-worker slot array — a slice indexed by the
// owning shard or worker id. Everything else crosses shards through the
// bus (Scheduler.Send), whose barrier windows serialize delivery.
//
// A function is an "owner context" when it receives a sim.Scheduler (its
// owning shard is Shard()) or an integer parameter named worker, shard,
// workerID, or shardID. A slice-typed struct field becomes a slot array
// the moment any owner context indexes it with its owner id. Within owner
// contexts the analyzer then flags (1) any access to a slot array through
// an index that is not the owner id, and (2) escapes of slot references —
// returns, stores into fields, appends, and captures inside closures
// handed to cross-shard Send — which would let another shard touch the
// slot without the bus. Coordinator code (no owner parameter) merges slot
// arrays freely; it runs only between windows.
var Shardsafe = &lint.Analyzer{
	Name: "shardsafe",
	Doc:  "per-shard/per-worker slot arrays are only touched via the owning index; slot references stay inside the owning context",
	Run:  runShardsafe,
}

func runShardsafe(p *lint.Pass) []lint.Diagnostic {
	slots := make(map[*types.Var]bool)
	// Registration pass: a slice field indexed by an owner id anywhere in
	// the package is a slot array everywhere in the package.
	forEachFuncBody(p, func(ft *ast.FuncType, body *ast.BlockStmt) {
		oc := newOwnerCtx(p, ft)
		if oc == nil {
			return
		}
		oc.collectDerived(body)
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // its own (possibly owner) context
			}
			if idx, ok := n.(*ast.IndexExpr); ok {
				if fld := sliceFieldOf(p, idx.X); fld != nil && oc.isOwnerExpr(idx.Index) {
					slots[fld] = true
				}
			}
			return true
		})
	})
	if len(slots) == 0 {
		return nil
	}
	var diags []lint.Diagnostic
	forEachFuncBody(p, func(ft *ast.FuncType, body *ast.BlockStmt) {
		oc := newOwnerCtx(p, ft)
		if oc == nil {
			return
		}
		oc.collectDerived(body)
		w := &slotWalker{pass: p, oc: oc, slots: slots, tainted: make(map[types.Object]bool)}
		w.collect(body)
		w.flag(body)
		diags = append(diags, w.diags...)
	})
	return diags
}

// forEachFuncBody applies fn to every function declaration and literal of
// the package.
func forEachFuncBody(p *lint.Pass, fn func(*ast.FuncType, *ast.BlockStmt)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(n.Type, n.Body)
				}
			case *ast.FuncLit:
				fn(n.Type, n.Body)
			}
			return true
		})
	}
}

// sliceFieldOf returns the struct-field object e selects, when e is a
// field access of slice type; nil otherwise.
func sliceFieldOf(p *lint.Pass, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, found := p.Info.Selections[sel]
	if !found || s.Kind() != types.FieldVal {
		return nil
	}
	fld, ok := s.Obj().(*types.Var)
	if !ok {
		return nil
	}
	if _, isSlice := fld.Type().Underlying().(*types.Slice); !isSlice {
		return nil
	}
	return fld
}

// ownerCtx identifies the owner id of one owner-context function.
type ownerCtx struct {
	pass  *lint.Pass
	sched map[types.Object]bool // Scheduler parameters; owner id is sc.Shard()
	owner map[types.Object]bool // integer owner parameters and derived locals
}

// ownerParamNames are the integer parameter names that mark a function as
// worker/shard-owned execution context.
var ownerParamNames = map[string]bool{
	"worker": true, "shard": true, "workerID": true, "shardID": true,
}

// newOwnerCtx classifies the function: nil means coordinator context
// (no ownership discipline applies).
func newOwnerCtx(p *lint.Pass, ft *ast.FuncType) *ownerCtx {
	oc := &ownerCtx{
		pass:  p,
		sched: make(map[types.Object]bool),
		owner: make(map[types.Object]bool),
	}
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := p.Info.Defs[name]
			if obj == nil {
				continue
			}
			if pkgPath, typeName, ok := namedType(obj.Type()); ok &&
				typeName == "Scheduler" && (pkgPath == simPath || pkgPath == p.Pkg.Path()) {
				oc.sched[obj] = true
				continue
			}
			if basic, ok := obj.Type().Underlying().(*types.Basic); ok &&
				basic.Info()&types.IsInteger != 0 && ownerParamNames[name.Name] {
				oc.owner[obj] = true
			}
		}
	}
	if len(oc.sched) == 0 && len(oc.owner) == 0 {
		return nil
	}
	return oc
}

// collectDerived adds locals bound to the owner id (sh := sc.Shard()) to
// the owner set, iterating until the set stops growing.
func (oc *ownerCtx) collectDerived(body *ast.BlockStmt) {
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			asg, ok := n.(*ast.AssignStmt)
			if !ok || len(asg.Lhs) != len(asg.Rhs) {
				return true
			}
			for i, rhs := range asg.Rhs {
				if !oc.isOwnerExpr(rhs) {
					continue
				}
				id, ok := ast.Unparen(asg.Lhs[i]).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := oc.pass.Info.Defs[id]
				if obj == nil {
					obj = oc.pass.Info.Uses[id]
				}
				if obj != nil && !oc.owner[obj] {
					oc.owner[obj] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			return
		}
	}
}

// isOwnerExpr reports whether e denotes the owning shard/worker id: an
// owner parameter or derived local, or sc.Shard() on a Scheduler
// parameter.
func (oc *ownerCtx) isOwnerExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := oc.pass.Info.Uses[e]
		return obj != nil && oc.owner[obj]
	case *ast.CallExpr:
		sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Shard" {
			return false
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return false
		}
		obj := oc.pass.Info.Uses[id]
		return obj != nil && oc.sched[obj]
	}
	return false
}

// slotWalker flags non-owner slot access and slot-reference escapes in
// one owner-context function.
type slotWalker struct {
	pass    *lint.Pass
	oc      *ownerCtx
	slots   map[*types.Var]bool
	tainted map[types.Object]bool // locals referencing the owner's slot
	diags   []lint.Diagnostic
}

// slotIndex returns the indexed slot-array field for e, or nil.
func (w *slotWalker) slotIndex(e ast.Expr) *ast.IndexExpr {
	idx, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return nil
	}
	if fld := sliceFieldOf(w.pass, idx.X); fld == nil || !w.slots[fld] {
		return nil
	}
	return idx
}

// isTainted reports whether e references a slot: a tainted local, an
// address of a slot element, or a reference-typed slot element.
func (w *slotWalker) isTainted(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := w.pass.Info.Uses[e]
		return obj != nil && w.tainted[obj]
	case *ast.UnaryExpr:
		return e.Op == token.AND && w.slotIndex(e.X) != nil
	case *ast.IndexExpr:
		if w.slotIndex(e) == nil {
			return false
		}
		return isRefType(w.pass.Info.Types[e].Type)
	case *ast.SliceExpr:
		return w.isTainted(e.X)
	}
	return false
}

// isRefType reports whether holding a value of t keeps a live reference
// into the slot (slices, maps, pointers, chans).
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan:
		return true
	}
	return false
}

// collect gathers slot-reference taint to a fixed point.
func (w *slotWalker) collect(body *ast.BlockStmt) {
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			asg, ok := n.(*ast.AssignStmt)
			if !ok || len(asg.Lhs) != len(asg.Rhs) {
				return true
			}
			for i, rhs := range asg.Rhs {
				if !w.isTainted(rhs) {
					continue
				}
				id, ok := ast.Unparen(asg.Lhs[i]).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := w.pass.Info.Defs[id]
				if obj == nil {
					obj = w.pass.Info.Uses[id]
				}
				if obj != nil && !w.tainted[obj] {
					w.tainted[obj] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			return
		}
	}
}

// flag reports non-owner slot accesses and slot-reference escapes.
func (w *slotWalker) flag(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its own context
		case *ast.IndexExpr:
			if w.slotIndex(n) != nil && !w.oc.isOwnerExpr(n.Index) {
				w.diags = append(w.diags, lint.Diagf(n.Pos(),
					"%s accesses a per-shard slot array with non-owner index %s; cross-shard state goes through the bus",
					types.ExprString(n.X), types.ExprString(n.Index)))
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if w.isTainted(r) {
					w.diags = append(w.diags, lint.Diagf(r.Pos(),
						"returning %s leaks a per-shard slot reference out of its owning context", types.ExprString(r)))
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if s, found := w.pass.Info.Selections[sel]; !found || s.Kind() != types.FieldVal {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if rhs != nil && w.isTainted(rhs) {
					w.diags = append(w.diags, lint.Diagf(n.Pos(),
						"storing %s into field %s leaks a per-shard slot reference", types.ExprString(rhs), types.ExprString(lhs)))
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if b, isBuiltin := w.pass.Info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "append" {
					for _, arg := range n.Args[1:] {
						if w.isTainted(arg) {
							w.diags = append(w.diags, lint.Diagf(arg.Pos(),
								"appending %s keeps a per-shard slot reference alive outside its owning context", types.ExprString(arg)))
						}
					}
				}
				return true
			}
			// A closure handed to cross-shard Send runs on another shard;
			// capturing a slot reference there bypasses the bus.
			if recv, _, name, ok := methodCall(w.pass.Info, n); ok && name == "Send" && w.isSchedExpr(recv) {
				for _, arg := range n.Args {
					lit, isLit := ast.Unparen(arg).(*ast.FuncLit)
					if !isLit {
						continue
					}
					ast.Inspect(lit.Body, func(m ast.Node) bool {
						id, isID := m.(*ast.Ident)
						if !isID {
							return true
						}
						if obj := w.pass.Info.Uses[id]; obj != nil && w.tainted[obj] {
							w.diags = append(w.diags, lint.Diagf(id.Pos(),
								"cross-shard Send closure captures %s, a reference into this shard's slot; pass values through the bus instead", id.Name))
						}
						return true
					})
				}
			}
		}
		return true
	})
}

// isSchedExpr reports whether e is one of the function's Scheduler
// parameters.
func (w *slotWalker) isSchedExpr(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := w.pass.Info.Uses[id]
	return obj != nil && w.oc.sched[obj]
}
