package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"

	"github.com/uwb-sim/concurrent-ranging/internal/lint"
)

// Unitconv enforces unit hygiene in the packages carrying the paper's
// timing and geometry arithmetic (Δ_RESP, δ_i, DTU ticks, samples,
// meters), where the ns-vs-samples-vs-meters bug class lives:
//
//   - a raw numeric literal that (re)states the value of a named
//     package-level conversion constant is flagged — `t * 1.565e-11`
//     instead of `t * DTU` type-checks but silently decouples from the
//     constant when it changes;
//   - a direct conversion between two different named numeric unit types
//     declared in the checked package (e.g. Meters(samples)) is flagged —
//     crossing a unit boundary without the named conversion constant or
//     method is exactly how a samples value becomes a "meters" value
//     unscaled.
//
// Literals inside constant declarations (where the named values are
// defined) and trivial values (small exact integers) are exempt.
var Unitconv = &lint.Analyzer{
	Name: "unitconv",
	Doc:  "unit arithmetic must use the named conversion constants and types",
	Run:  runUnitconv,
}

// relTolerance is the relative error under which a literal counts as
// restating a named constant.
const relTolerance = 1e-9

func runUnitconv(p *lint.Pass) []lint.Diagnostic {
	consts := namedNumericConsts(p.Pkg)
	var diags []lint.Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GenDecl:
				if n.Tok == token.CONST {
					return false // definition sites are exempt
				}
			case *ast.BasicLit:
				if n.Kind == token.INT || n.Kind == token.FLOAT {
					if name, ok := matchesConst(n, consts); ok {
						diags = append(diags, lint.Diagf(n.Pos(),
							"raw literal %s restates the named constant %s; use the constant", n.Value, name))
					}
				}
			case *ast.CallExpr:
				diags = append(diags, checkUnitConversion(p, n)...)
			}
			return true
		})
	}
	return diags
}

// namedConst is one package-level numeric constant worth matching
// literals against.
type namedConst struct {
	name string
	val  float64
}

// namedNumericConsts collects the package's own numeric constants,
// skipping trivial values (exact integers in [-16, 16]) that legitimately
// appear as literals everywhere.
func namedNumericConsts(pkg *types.Package) []namedConst {
	var out []namedConst
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		v := c.Val()
		if v.Kind() != constant.Int && v.Kind() != constant.Float {
			continue
		}
		f, _ := constant.Float64Val(v)
		if trivialValue(f) || math.IsInf(f, 0) || math.IsNaN(f) {
			continue
		}
		out = append(out, namedConst{name: name, val: f})
	}
	return out
}

func trivialValue(f float64) bool {
	return f == math.Trunc(f) && math.Abs(f) <= 16
}

// matchesConst reports the first named constant the literal restates.
func matchesConst(lit *ast.BasicLit, consts []namedConst) (string, bool) {
	v := constant.MakeFromLiteral(lit.Value, lit.Kind, 0)
	if v.Kind() == constant.Unknown {
		return "", false
	}
	f, _ := constant.Float64Val(v)
	if trivialValue(f) {
		return "", false
	}
	for _, c := range consts {
		if relClose(f, c.val) {
			return c.name, true
		}
	}
	return "", false
}

func relClose(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return scale > 0 && math.Abs(a-b)/scale < relTolerance
}

// checkUnitConversion flags T(x) where T and x's type are different named
// numeric types declared in the checked package.
func checkUnitConversion(p *lint.Pass, call *ast.CallExpr) []lint.Diagnostic {
	if len(call.Args) != 1 {
		return nil
	}
	tv, ok := p.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil
	}
	dstPath, dstName, ok := localNumericNamed(p, tv.Type)
	if !ok {
		return nil
	}
	argType := p.Info.TypeOf(call.Args[0])
	if argType == nil {
		return nil
	}
	srcPath, srcName, ok := localNumericNamed(p, argType)
	if !ok || (srcPath == dstPath && srcName == dstName) {
		return nil
	}
	return []lint.Diagnostic{lint.Diagf(call.Pos(),
		"direct conversion %s(%s) crosses unit types without a named conversion; multiply by the conversion constant or use a conversion method",
		dstName, srcName)}
}

// localNumericNamed reports whether t is a named type with a numeric
// underlying type declared in the package under analysis.
func localNumericNamed(p *lint.Pass, t types.Type) (pkgPath, name string, ok bool) {
	named, isNamed := types.Unalias(t).(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != p.Path {
		return "", "", false
	}
	basic, isBasic := named.Underlying().(*types.Basic)
	if !isBasic || basic.Info()&types.IsNumeric == 0 {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}
