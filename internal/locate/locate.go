// Package locate implements anchor-based position estimation on top of
// concurrent ranging — the application the paper names as future work
// (Sect. IX): a mobile node ranges to all anchors with a single
// concurrent-ranging round and solves for its position.
//
// The solver is iterative Gauss–Newton least squares over the range
// residuals, seeded by a linearized closed-form estimate.
package locate

import (
	"fmt"
	"math"

	"github.com/uwb-sim/concurrent-ranging/internal/geom"
)

// RangeObservation is one measured distance to a known anchor position.
type RangeObservation struct {
	// Anchor is the anchor's known position.
	Anchor geom.Point
	// Distance is the measured range in meters.
	Distance float64
	// Weight scales the observation's influence (1 by default; use
	// smaller values for less trusted ranges). Non-positive means 1.
	Weight float64
}

// Result is a position fix.
type Result struct {
	// Position is the estimated node position.
	Position geom.Point
	// Residual is the RMS range residual at the solution, meters.
	Residual float64
	// Iterations is the number of Gauss-Newton steps taken.
	Iterations int
}

// Config tunes the solver.
type Config struct {
	// MaxIterations bounds the Gauss-Newton refinement (default 50).
	MaxIterations int
	// Tolerance stops iteration when the position update is smaller than
	// this (meters; default 1e-6).
	Tolerance float64
}

func (c *Config) applyDefaults() {
	if c.MaxIterations == 0 {
		c.MaxIterations = 50
	}
	if c.Tolerance == 0 {
		c.Tolerance = 1e-6
	}
}

// Solve estimates the 2-D position from at least three range observations
// to non-collinear anchors.
func Solve(obs []RangeObservation, cfg Config) (Result, error) {
	if len(obs) < 3 {
		return Result{}, fmt.Errorf("locate: need at least 3 ranges, got %d", len(obs))
	}
	cfg.applyDefaults()
	pos, err := linearSeed(obs)
	if err != nil {
		return Result{}, err
	}
	var iters int
	for iters = 0; iters < cfg.MaxIterations; iters++ {
		step, ok := gaussNewtonStep(obs, pos)
		if !ok {
			return Result{}, fmt.Errorf("locate: singular geometry (collinear anchors?)")
		}
		pos = pos.Add(step)
		if step.Norm() < cfg.Tolerance {
			break
		}
	}
	return Result{
		Position:   pos,
		Residual:   rmsResidual(obs, pos),
		Iterations: iters + 1,
	}, nil
}

// linearSeed solves the linearized system obtained by subtracting the
// first anchor's range equation from the others:
//
//	2(a_i − a_0)·p = |a_i|² − |a_0|² + d_0² − d_i²
func linearSeed(obs []RangeObservation) (geom.Point, error) {
	a0 := obs[0].Anchor
	d0 := obs[0].Distance
	// Normal equations for the (n-1)×2 system.
	var axx, axy, ayy, bx, by float64
	for _, o := range obs[1:] {
		rx := 2 * (o.Anchor.X - a0.X)
		ry := 2 * (o.Anchor.Y - a0.Y)
		rhs := o.Anchor.Dot(o.Anchor) - a0.Dot(a0) + d0*d0 - o.Distance*o.Distance
		w := o.Weight
		if w <= 0 {
			w = 1
		}
		axx += w * rx * rx
		axy += w * rx * ry
		ayy += w * ry * ry
		bx += w * rx * rhs
		by += w * ry * rhs
	}
	det := axx*ayy - axy*axy
	if math.Abs(det) < 1e-12 {
		return geom.Point{}, fmt.Errorf("locate: degenerate anchor geometry")
	}
	return geom.Point{
		X: (ayy*bx - axy*by) / det,
		Y: (axx*by - axy*bx) / det,
	}, nil
}

// gaussNewtonStep computes one weighted Gauss-Newton update at pos.
func gaussNewtonStep(obs []RangeObservation, pos geom.Point) (geom.Point, bool) {
	var jxx, jxy, jyy, gx, gy float64
	for _, o := range obs {
		diff := pos.Sub(o.Anchor)
		dist := diff.Norm()
		if dist < 1e-9 {
			continue // on top of an anchor: no gradient information
		}
		w := o.Weight
		if w <= 0 {
			w = 1
		}
		// Jacobian row of r = |p-a| - d is diff/dist.
		jx := diff.X / dist
		jy := diff.Y / dist
		res := dist - o.Distance
		jxx += w * jx * jx
		jxy += w * jx * jy
		jyy += w * jy * jy
		gx += w * jx * res
		gy += w * jy * res
	}
	det := jxx*jyy - jxy*jxy
	if math.Abs(det) < 1e-12 {
		return geom.Point{}, false
	}
	return geom.Point{
		X: -(jyy*gx - jxy*gy) / det,
		Y: -(jxx*gy - jxy*gx) / det,
	}, true
}

func rmsResidual(obs []RangeObservation, pos geom.Point) float64 {
	var acc float64
	for _, o := range obs {
		r := pos.Dist(o.Anchor) - o.Distance
		acc += r * r
	}
	return math.Sqrt(acc / float64(len(obs)))
}
