package locate

import (
	"math"
	mrand "math/rand"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/uwb-sim/concurrent-ranging/internal/geom"
)

func obsFor(truth geom.Point, anchors []geom.Point, noise float64, rng *rand.Rand) []RangeObservation {
	out := make([]RangeObservation, len(anchors))
	for i, a := range anchors {
		d := truth.Dist(a)
		if noise > 0 {
			d += rng.NormFloat64() * noise
		}
		out[i] = RangeObservation{Anchor: a, Distance: d}
	}
	return out
}

var squareAnchors = []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 8}, {X: 0, Y: 8}}

func TestSolveExactRanges(t *testing.T) {
	truth := geom.Point{X: 3.2, Y: 5.7}
	res, err := Solve(obsFor(truth, squareAnchors, 0, nil), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Position.Dist(truth) > 1e-6 {
		t.Fatalf("position %v, want %v", res.Position, truth)
	}
	if res.Residual > 1e-6 {
		t.Fatalf("residual %g", res.Residual)
	}
}

func TestSolveNoisyRanges(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 92))
	truth := geom.Point{X: 6.1, Y: 2.4}
	var worst float64
	for trial := 0; trial < 50; trial++ {
		res, err := Solve(obsFor(truth, squareAnchors, 0.03, rng), Config{})
		if err != nil {
			t.Fatal(err)
		}
		worst = math.Max(worst, res.Position.Dist(truth))
	}
	// 3 cm range noise with 4 anchors → position errors of a few cm.
	if worst > 0.15 {
		t.Fatalf("worst position error %g m", worst)
	}
}

func TestSolveThreeAnchorsMinimum(t *testing.T) {
	truth := geom.Point{X: 2, Y: 3}
	res, err := Solve(obsFor(truth, squareAnchors[:3], 0, nil), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Position.Dist(truth) > 1e-6 {
		t.Fatalf("position %v", res.Position)
	}
	if _, err := Solve(obsFor(truth, squareAnchors[:2], 0, nil), Config{}); err == nil {
		t.Fatal("two anchors accepted")
	}
}

func TestSolveCollinearAnchorsRejected(t *testing.T) {
	line := []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 10, Y: 0}}
	_, err := Solve(obsFor(geom.Point{X: 3, Y: 4}, line, 0, nil), Config{})
	if err == nil {
		t.Fatal("collinear anchors accepted")
	}
}

func TestSolveWeightsDownweightBadRange(t *testing.T) {
	truth := geom.Point{X: 5, Y: 4}
	obs := obsFor(truth, squareAnchors, 0, nil)
	// Corrupt one range badly; with a tiny weight the fix stays accurate.
	obs = append(obs, RangeObservation{Anchor: geom.Point{X: 5, Y: 0}, Distance: 12, Weight: 1e-6})
	res, err := Solve(obs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Position.Dist(truth) > 0.01 {
		t.Fatalf("down-weighted outlier still moved the fix: %v", res.Position)
	}
	// The same outlier at full weight visibly degrades the fix.
	obs[len(obs)-1].Weight = 1
	res2, err := Solve(obs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Position.Dist(truth) < res.Position.Dist(truth) {
		t.Fatal("full-weight outlier should hurt more")
	}
}

func TestSolveRecoversRandomPositionsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		truth := geom.Point{X: rng.Float64()*8 + 1, Y: rng.Float64()*6 + 1}
		res, err := Solve(obsFor(truth, squareAnchors, 0, nil), Config{})
		return err == nil && res.Position.Dist(truth) < 1e-5
	}
	cfg := &quick.Config{MaxCount: 60, Rand: mrand.New(mrand.NewSource(60))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSolveConfigDefaults(t *testing.T) {
	truth := geom.Point{X: 4, Y: 4}
	res, err := Solve(obsFor(truth, squareAnchors, 0, nil), Config{MaxIterations: 1, Tolerance: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Fatalf("iterations %d, want 1", res.Iterations)
	}
}

func TestSolveRobustRejectsNLOSOutlier(t *testing.T) {
	truth := geom.Point{X: 4, Y: 3}
	obs := obsFor(truth, squareAnchors, 0.02, rand.New(rand.NewPCG(95, 96)))
	// One NLOS range, inflated by 3 m (positively biased, as reflections
	// always lengthen the path).
	obs = append(obs, RangeObservation{
		Anchor:   geom.Point{X: 5, Y: 8},
		Distance: truth.Dist(geom.Point{X: 5, Y: 8}) + 3,
	})
	plain, err := Solve(obs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	robust, err := SolveRobust(obs, RobustConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if robust.Position.Dist(truth) > 0.15 {
		t.Fatalf("robust fix error %g m", robust.Position.Dist(truth))
	}
	if robust.Position.Dist(truth) >= plain.Position.Dist(truth) {
		t.Fatalf("robust (%g) not better than plain (%g)",
			robust.Position.Dist(truth), plain.Position.Dist(truth))
	}
}

func TestSolveRobustCleanDataMatchesPlain(t *testing.T) {
	truth := geom.Point{X: 6, Y: 5}
	obs := obsFor(truth, squareAnchors, 0, nil)
	robust, err := SolveRobust(obs, RobustConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if robust.Position.Dist(truth) > 1e-5 {
		t.Fatalf("clean-data robust fix error %g", robust.Position.Dist(truth))
	}
}

func TestSolveRobustRequiresRedundancy(t *testing.T) {
	truth := geom.Point{X: 2, Y: 2}
	obs := obsFor(truth, squareAnchors[:3], 0, nil)
	if _, err := SolveRobust(obs, RobustConfig{}); err == nil {
		t.Fatal("three ranges accepted for robust solve")
	}
}
