package locate

import (
	"fmt"
	"math"

	"github.com/uwb-sim/concurrent-ranging/internal/geom"
)

// RobustConfig tunes SolveRobust.
type RobustConfig struct {
	// Config is the inner Gauss-Newton configuration.
	Config
	// Scale is the residual scale in meters: observations are
	// down-weighted with a Tukey biweight of cutoff 4·Scale, i.e. fully
	// rejected once their residual exceeds four times this value. Zero
	// selects 0.25 m — several times the LOS ranging σ, far below
	// typical NLOS biases.
	Scale float64
	// Reweights is the number of IRLS passes (default 5).
	Reweights int
}

func (c *RobustConfig) applyDefaults() {
	c.Config.applyDefaults()
	if c.Scale == 0 {
		c.Scale = 0.25
	}
	if c.Reweights == 0 {
		c.Reweights = 5
	}
}

// SolveRobust estimates the position with iteratively reweighted least
// squares using Tukey biweights, so ranges inflated by non-line-of-sight
// propagation (always positively biased) do not drag the fix the way they
// do under plain least squares. At least four observations are required —
// with only three there is no redundancy to identify an outlier.
func SolveRobust(obs []RangeObservation, cfg RobustConfig) (Result, error) {
	if len(obs) < 4 {
		return Result{}, fmt.Errorf("locate: robust solve needs at least 4 ranges, got %d", len(obs))
	}
	cfg.applyDefaults()
	work := make([]RangeObservation, len(obs))
	copy(work, obs)
	res, err := Solve(work, cfg.Config)
	if err != nil {
		return Result{}, err
	}
	for pass := 0; pass < cfg.Reweights; pass++ {
		changed := reweight(work, obs, res.Position, cfg.Scale)
		next, err := Solve(work, cfg.Config)
		if err != nil {
			return Result{}, err
		}
		moved := next.Position.Dist(res.Position)
		res = next
		if !changed || moved < cfg.Tolerance {
			break
		}
	}
	return res, nil
}

// reweight updates the working observations' weights from the residuals
// at the current fix (Tukey biweight with cutoff 4·scale) and reports
// whether any weight changed materially. A floor keeps at least a token
// weight on every observation so the linear system never degenerates when
// the initial fix is poor.
func reweight(work, orig []RangeObservation, pos geom.Point, scale float64) bool {
	cutoff := 4 * scale
	changed := false
	for i := range work {
		res := math.Abs(pos.Dist(orig[i].Anchor) - orig[i].Distance)
		base := orig[i].Weight
		if base <= 0 {
			base = 1
		}
		w := base * 1e-6
		if res < cutoff {
			u := res / cutoff
			bi := (1 - u*u) * (1 - u*u)
			if v := base * bi; v > w {
				w = v
			}
		}
		if math.Abs(w-work[i].Weight) > 1e-6 {
			changed = true
		}
		work[i].Weight = w
	}
	return changed
}
