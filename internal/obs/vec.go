package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is one key/value pair attached to a metric series. Series labels
// are always name-sorted by key, so snapshots and the Prometheus
// exposition are deterministic for deterministic workloads.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// MaxSeriesPerVec bounds the distinct label-value combinations one vec
// will materialize. The cap keeps a buggy caller (or a high-cardinality
// label like a per-trial ID) from growing a registry without bound: once
// a vec is full, further novel combinations all collapse into a single
// overflow series whose every label value is OverflowLabelValue.
const MaxSeriesPerVec = 256

// OverflowLabelValue marks the collapsed series a full vec routes novel
// label combinations into.
const OverflowLabelValue = "~overflow"

// labelSep joins label values into a series map key. 0xff never appears
// in well-formed UTF-8 label values.
const labelSep = "\xff"

// vecKeys canonicalizes a vec's label keys: keys are stored sorted, and
// perm maps each declared position to its sorted position so With can
// accept values in declaration order.
type vecKeys struct {
	name     string
	declared []string
	sorted   []string
	perm     []int
}

func newVecKeys(name string, keys []string) vecKeys {
	if len(keys) == 0 {
		panic(fmt.Sprintf("obs: vec %q declared with no label keys", name))
	}
	type kp struct {
		key string
		pos int
	}
	kps := make([]kp, len(keys))
	for i, k := range keys {
		if k == "" {
			panic(fmt.Sprintf("obs: vec %q declared with an empty label key", name))
		}
		kps[i] = kp{k, i}
	}
	sort.Slice(kps, func(i, j int) bool { return kps[i].key < kps[j].key })
	vk := vecKeys{
		name:     name,
		declared: append([]string(nil), keys...),
		sorted:   make([]string, len(kps)),
		perm:     make([]int, len(kps)),
	}
	for si, p := range kps {
		if si > 0 && p.key == kps[si-1].key {
			panic(fmt.Sprintf("obs: vec %q declares label key %q twice", name, p.key))
		}
		vk.sorted[si] = p.key
		vk.perm[p.pos] = si
	}
	return vk
}

// seriesKey reorders declaration-order values into sorted-key order and
// returns the joined map key plus the sorted Label set.
func (vk vecKeys) seriesKey(values []string) (string, []Label) {
	if len(values) != len(vk.sorted) {
		panic(fmt.Sprintf("obs: vec %q takes %d label values, got %d",
			vk.name, len(vk.sorted), len(values)))
	}
	ordered := make([]string, len(values))
	for i, v := range values {
		ordered[vk.perm[i]] = v
	}
	labels := make([]Label, len(ordered))
	for i, v := range ordered {
		labels[i] = Label{Key: vk.sorted[i], Value: v}
	}
	return strings.Join(ordered, labelSep), labels
}

// overflowSeries is the collapsed series key/labels for a full vec.
func (vk vecKeys) overflowSeries() (string, []Label) {
	values := make([]string, len(vk.sorted))
	for i := range values {
		values[i] = OverflowLabelValue
	}
	labels := make([]Label, len(values))
	for i := range values {
		labels[i] = Label{Key: vk.sorted[i], Value: OverflowLabelValue}
	}
	return strings.Join(values, labelSep), labels
}

// CounterVec is a family of counters sharing one metric name, split by a
// fixed, bounded label set. Obtain one from Registry.CounterVec; resolve
// series with With (ideally once, at setup time — a resolved *Counter is
// the allocation-free hot-path handle).
type CounterVec struct {
	keys vecKeys

	mu       sync.RWMutex
	children map[string]*Counter
	labels   map[string][]Label
}

// With returns the counter for the given label values (in the key order
// the vec was declared with), creating it on first use. Past
// MaxSeriesPerVec distinct series, novel combinations share the overflow
// series.
func (v *CounterVec) With(values ...string) *Counter {
	key, labels := v.keys.seriesKey(values)
	v.mu.RLock()
	c := v.children[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[key]; c != nil {
		return c
	}
	if len(v.children) >= MaxSeriesPerVec {
		key, labels = v.keys.overflowSeries()
		if c = v.children[key]; c != nil {
			return c
		}
	}
	c = &Counter{}
	v.children[key] = c
	v.labels[key] = labels
	return c
}

// GaugeVec is a family of gauges sharing one metric name; see CounterVec.
type GaugeVec struct {
	keys vecKeys

	mu       sync.RWMutex
	children map[string]*Gauge
	labels   map[string][]Label
}

// With returns the gauge for the given label values, creating it on
// first use (overflow semantics as CounterVec.With).
func (v *GaugeVec) With(values ...string) *Gauge {
	key, labels := v.keys.seriesKey(values)
	v.mu.RLock()
	g := v.children[key]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g = v.children[key]; g != nil {
		return g
	}
	if len(v.children) >= MaxSeriesPerVec {
		key, labels = v.keys.overflowSeries()
		if g = v.children[key]; g != nil {
			return g
		}
	}
	g = &Gauge{}
	v.children[key] = g
	v.labels[key] = labels
	return g
}

// HistogramVec is a family of histograms sharing one metric name and one
// bucket layout; see CounterVec.
type HistogramVec struct {
	keys   vecKeys
	bounds []float64

	mu       sync.RWMutex
	children map[string]*Histogram
	labels   map[string][]Label
}

// With returns the histogram for the given label values, creating it on
// first use with the vec's bucket layout (overflow semantics as
// CounterVec.With).
func (v *HistogramVec) With(values ...string) *Histogram {
	key, labels := v.keys.seriesKey(values)
	v.mu.RLock()
	h := v.children[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.children[key]; h != nil {
		return h
	}
	if len(v.children) >= MaxSeriesPerVec {
		key, labels = v.keys.overflowSeries()
		if h = v.children[key]; h != nil {
			return h
		}
	}
	h = NewHistogram(v.bounds)
	v.children[key] = h
	v.labels[key] = labels
	return h
}

// VecSource is the optional labeled-metrics extension of a Recorder sink.
// *Registry implements it; instrumented components that want labeled
// series type-assert their Recorder once at setup time, resolve the
// series children they need, and keep recording through plain *Counter /
// *Gauge / *Histogram handles on the hot path — so a sink that does not
// support labels (or a nil Recorder) costs nothing extra.
type VecSource interface {
	// CounterVec returns the named counter family over the given label
	// keys, creating it on first use.
	CounterVec(name string, keys ...string) *CounterVec
	// GaugeVec returns the named gauge family over the given label keys.
	GaugeVec(name string, keys ...string) *GaugeVec
	// HistogramVec returns the named histogram family over the given
	// label keys, using the bucket layout declared for name (or
	// DefaultBuckets).
	HistogramVec(name string, keys ...string) *HistogramVec
}

// CounterVec returns the named counter family, creating it on first use.
// The label keys are canonicalized to sorted order; a second call with
// the same name must use the same key set (in any order).
func (r *Registry) CounterVec(name string, keys ...string) *CounterVec {
	r.mu.RLock()
	v := r.counterVecs[name]
	r.mu.RUnlock()
	if v != nil {
		checkVecKeys(v.keys, keys)
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v = r.counterVecs[name]; v == nil {
		v = &CounterVec{
			keys:     newVecKeys(name, keys),
			children: make(map[string]*Counter),
			labels:   make(map[string][]Label),
		}
		r.counterVecs[name] = v
	}
	checkVecKeys(v.keys, keys)
	return v
}

// GaugeVec returns the named gauge family, creating it on first use.
func (r *Registry) GaugeVec(name string, keys ...string) *GaugeVec {
	r.mu.RLock()
	v := r.gaugeVecs[name]
	r.mu.RUnlock()
	if v != nil {
		checkVecKeys(v.keys, keys)
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v = r.gaugeVecs[name]; v == nil {
		v = &GaugeVec{
			keys:     newVecKeys(name, keys),
			children: make(map[string]*Gauge),
			labels:   make(map[string][]Label),
		}
		r.gaugeVecs[name] = v
	}
	checkVecKeys(v.keys, keys)
	return v
}

// HistogramVec returns the named histogram family, creating it on first
// use with the bucket layout declared for name (DeclareHistogram), or
// DefaultBuckets.
func (r *Registry) HistogramVec(name string, keys ...string) *HistogramVec {
	r.mu.RLock()
	v := r.histogramVecs[name]
	r.mu.RUnlock()
	if v != nil {
		checkVecKeys(v.keys, keys)
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v = r.histogramVecs[name]; v == nil {
		bounds := r.buckets[name]
		if len(bounds) == 0 {
			bounds = DefaultBuckets()
		}
		v = &HistogramVec{
			keys:     newVecKeys(name, keys),
			bounds:   bounds,
			children: make(map[string]*Histogram),
			labels:   make(map[string][]Label),
		}
		r.histogramVecs[name] = v
	}
	checkVecKeys(v.keys, keys)
	return v
}

// checkVecKeys panics when a vec is re-requested with a different key
// list — even a reordered one. With takes values in declaration order,
// so silently returning a vec declared with another order would
// mislabel every series the second caller resolves.
func checkVecKeys(have vecKeys, keys []string) {
	if len(keys) != len(have.declared) {
		panic(fmt.Sprintf("obs: vec %q re-declared with %d label keys, have %d",
			have.name, len(keys), len(have.declared)))
	}
	for i, k := range keys {
		if k != have.declared[i] {
			panic(fmt.Sprintf("obs: vec %q re-declared with label keys %v, have %v",
				have.name, keys, have.declared))
		}
	}
}
