package obs

import "math"

// Snapshot is a point-in-time copy of a Registry's metrics, sorted by
// name then labels so its JSON encoding is deterministic for
// deterministic workloads. Labeled vec series appear as entries sharing
// one Name, distinguished by Labels; Windows carries the watched
// metrics' time-series rings (wall-time-class data: StripWallTime drops
// it).
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
	Windows    []WindowSnapshot    `json:"windows,omitempty"`
}

// CounterSnapshot is one counter series' value.
type CounterSnapshot struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value"`
}

// GaugeSnapshot is one gauge series' last value.
type GaugeSnapshot struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// Bucket is one non-empty histogram bucket. UpperBound is +Inf-free: the
// overflow bucket is marked by Overflow instead, keeping the JSON valid.
type Bucket struct {
	UpperBound float64 `json:"le,omitempty"`
	Overflow   bool    `json:"overflow,omitempty"`
	Count      int64   `json:"count"`
}

// HistogramSnapshot is one histogram's state. Only non-empty buckets are
// exported; Min/Max and the quantile estimates are omitted when the
// histogram has no observations. P50/P95/P99 are bucket-interpolated (see
// Quantile), so they are estimates bounded by the bucket resolution — but
// deterministic ones: equal observation multisets yield equal values.
type HistogramSnapshot struct {
	Name    string   `json:"name"`
	Labels  []Label  `json:"labels,omitempty"`
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Min     *float64 `json:"min,omitempty"`
	Max     *float64 `json:"max,omitempty"`
	P50     *float64 `json:"p50,omitempty"`
	P95     *float64 `json:"p95,omitempty"`
	P99     *float64 `json:"p99,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns Sum/Count, or 0 for an empty histogram.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (0 < q < 1) by locating the bucket
// where the rank q·Count falls and interpolating linearly inside it. The
// interpolation range is clamped to the observed Min/Max, so a quantile
// never leaves the data's range; ranks landing in the overflow bucket
// return Max. q <= 0 returns Min, q >= 1 returns Max, and an empty
// histogram returns 0. The estimate depends only on the snapshot (bucket
// counts and min/max), making it deterministic for deterministic
// workloads regardless of observation order.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	min, max := 0.0, 0.0
	if h.Min != nil {
		min = *h.Min
	}
	if h.Max != nil {
		max = *h.Max
	}
	if q <= 0 {
		return min
	}
	if q >= 1 {
		return max
	}
	rank := q * float64(h.Count)
	var cum int64
	lower := min
	for _, b := range h.Buckets {
		prev := cum
		cum += b.Count
		if float64(cum) < rank {
			if !b.Overflow && b.UpperBound > lower {
				lower = b.UpperBound
			}
			continue
		}
		if b.Overflow {
			return max
		}
		upper := b.UpperBound
		if upper > max {
			upper = max
		}
		if upper < lower {
			upper = lower
		}
		frac := (rank - float64(prev)) / float64(b.Count)
		return lower + (upper-lower)*frac
	}
	return max
}

func (h *Histogram) snapshot(name string) HistogramSnapshot {
	s := HistogramSnapshot{Name: name, Count: h.Count(), Sum: h.Sum()}
	if s.Count > 0 {
		lo := math.Float64frombits(h.minBits.Load())
		hi := math.Float64frombits(h.maxBits.Load())
		s.Min, s.Max = &lo, &hi
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		b := Bucket{Count: n}
		if i < len(h.bounds) {
			b.UpperBound = h.bounds[i]
		} else {
			b.Overflow = true
		}
		s.Buckets = append(s.Buckets, b)
	}
	if s.Count > 0 {
		p50, p95, p99 := s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99)
		s.P50, s.P95, s.P99 = &p50, &p95, &p99
	}
	return s
}

// CounterValue returns the named counter family's total — the sum over
// every series sharing the name (an unlabeled counter is one series) —
// or 0 when absent.
func (s Snapshot) CounterValue(name string) int64 {
	var total int64
	for _, c := range s.Counters {
		if c.Name == name {
			total += c.Value
		}
	}
	return total
}

// CounterSeries returns every counter series of the named family, in
// snapshot (label-sorted) order.
func (s Snapshot) CounterSeries(name string) []CounterSnapshot {
	var out []CounterSnapshot
	for _, c := range s.Counters {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// GaugeValue returns the named unlabeled gauge's value, or false when
// absent.
func (s Snapshot) GaugeValue(name string) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name && len(g.Labels) == 0 {
			return g.Value, true
		}
	}
	return 0, false
}

// GaugeSeries returns every gauge series of the named family, in
// snapshot (label-sorted) order — e.g. one per worker for the engine
// profiler's occupancy gauges.
func (s Snapshot) GaugeSeries(name string) []GaugeSnapshot {
	var out []GaugeSnapshot
	for _, g := range s.Gauges {
		if g.Name == name {
			out = append(out, g)
		}
	}
	return out
}

// HistogramByName returns the named histogram snapshot (the unlabeled
// series when the family is labeled), or false.
func (s Snapshot) HistogramByName(name string) (HistogramSnapshot, bool) {
	for _, h := range s.Histograms {
		if h.Name == name && len(h.Labels) == 0 {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}

// WindowByName returns the named metric's window snapshot, or false.
func (s Snapshot) WindowByName(name string) (WindowSnapshot, bool) {
	for _, w := range s.Windows {
		if w.Name == name {
			return w, true
		}
	}
	return WindowSnapshot{}, false
}
