package obs

import "math"

// Snapshot is a point-in-time copy of a Registry's metrics, name-sorted so
// its JSON encoding is deterministic for deterministic workloads.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// CounterSnapshot is one counter's value.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's last value.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Bucket is one non-empty histogram bucket. UpperBound is +Inf-free: the
// overflow bucket is marked by Overflow instead, keeping the JSON valid.
type Bucket struct {
	UpperBound float64 `json:"le,omitempty"`
	Overflow   bool    `json:"overflow,omitempty"`
	Count      int64   `json:"count"`
}

// HistogramSnapshot is one histogram's state. Only non-empty buckets are
// exported; Min/Max are omitted when the histogram has no observations.
type HistogramSnapshot struct {
	Name    string   `json:"name"`
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Min     *float64 `json:"min,omitempty"`
	Max     *float64 `json:"max,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns Sum/Count, or 0 for an empty histogram.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

func (h *Histogram) snapshot(name string) HistogramSnapshot {
	s := HistogramSnapshot{Name: name, Count: h.Count(), Sum: h.Sum()}
	if s.Count > 0 {
		lo := math.Float64frombits(h.minBits.Load())
		hi := math.Float64frombits(h.maxBits.Load())
		s.Min, s.Max = &lo, &hi
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		b := Bucket{Count: n}
		if i < len(h.bounds) {
			b.UpperBound = h.bounds[i]
		} else {
			b.Overflow = true
		}
		s.Buckets = append(s.Buckets, b)
	}
	return s
}

// CounterValue returns the named counter's value, or 0 when absent.
func (s Snapshot) CounterValue(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// HistogramByName returns the named histogram snapshot, or false.
func (s Snapshot) HistogramByName(name string) (HistogramSnapshot, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}
