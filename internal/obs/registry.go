package obs

import (
	"sort"
	"sync"
)

// Recorder is the write-side interface instrumented components hold. The
// contract every implementation and every caller must honor:
//
//   - A nil Recorder means "disabled": callers guard each recording site
//     with a nil check, so the disabled cost is one predictable branch.
//   - Recording must never influence the caller's computation; Recorder
//     methods have no results a caller could branch on.
//   - Implementations must be safe for concurrent use (Monte-Carlo
//     campaigns record from many worker goroutines into one sink).
//
// *Registry is the canonical implementation; tests may substitute their
// own to assert what a component records.
type Recorder interface {
	// Count adds delta to the named counter.
	Count(name string, delta int64)
	// Observe records one value into the named histogram.
	Observe(name string, value float64)
	// SetGauge stores the last-value-wins gauge.
	SetGauge(name string, value float64)
}

// Registry names and owns a set of metrics. The zero value is not usable;
// call NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	buckets    map[string][]float64 // declared layouts for lazily created histograms
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		buckets:    make(map[string][]float64),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// DeclareHistogram fixes the bucket layout the named histogram will use
// when it is (lazily) created. Declaring after the histogram exists is a
// no-op; nil bounds select DefaultBuckets.
func (r *Registry) DeclareHistogram(name string, bounds []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.histograms[name]; ok {
		return
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	r.buckets[name] = own
}

// Histogram returns the named histogram, creating it on first use with
// its declared bucket layout (or DefaultBuckets).
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = NewHistogram(r.buckets[name])
		delete(r.buckets, name)
		r.histograms[name] = h
	}
	return h
}

// Count implements Recorder.
func (r *Registry) Count(name string, delta int64) { r.Counter(name).Add(delta) }

// Observe implements Recorder.
func (r *Registry) Observe(name string, value float64) { r.Histogram(name).Observe(value) }

// SetGauge implements Recorder.
func (r *Registry) SetGauge(name string, value float64) { r.Gauge(name).Set(value) }

// Snapshot returns a point-in-time, name-sorted copy of every metric,
// suitable for JSON encoding. Concurrent recording during the snapshot
// yields values that are each individually consistent.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap := Snapshot{}
	for name, c := range r.counters {
		snap.Counters = append(snap.Counters, CounterSnapshot{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnapshot{Name: name, Value: g.Value()})
	}
	for name, h := range r.histograms {
		snap.Histograms = append(snap.Histograms, h.snapshot(name))
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}
