package obs

import (
	"sort"
	"sync"
)

// Recorder is the write-side interface instrumented components hold. The
// contract every implementation and every caller must honor:
//
//   - A nil Recorder means "disabled": callers guard each recording site
//     with a nil check, so the disabled cost is one predictable branch.
//   - Recording must never influence the caller's computation; Recorder
//     methods have no results a caller could branch on.
//   - Implementations must be safe for concurrent use (Monte-Carlo
//     campaigns record from many worker goroutines into one sink).
//
// *Registry is the canonical implementation; tests may substitute their
// own to assert what a component records.
type Recorder interface {
	// Count adds delta to the named counter.
	Count(name string, delta int64)
	// Observe records one value into the named histogram.
	Observe(name string, value float64)
	// SetGauge stores the last-value-wins gauge.
	SetGauge(name string, value float64)
}

// Registry names and owns a set of metrics. The zero value is not usable;
// call NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu            sync.RWMutex
	counters      map[string]*Counter
	gauges        map[string]*Gauge
	histograms    map[string]*Histogram
	buckets       map[string][]float64 // declared layouts for lazily created histograms
	counterVecs   map[string]*CounterVec
	gaugeVecs     map[string]*GaugeVec
	histogramVecs map[string]*HistogramVec
	windows       map[string]*Window // per-name time-series rings (Watch)
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:      make(map[string]*Counter),
		gauges:        make(map[string]*Gauge),
		histograms:    make(map[string]*Histogram),
		buckets:       make(map[string][]float64),
		counterVecs:   make(map[string]*CounterVec),
		gaugeVecs:     make(map[string]*GaugeVec),
		histogramVecs: make(map[string]*HistogramVec),
		windows:       make(map[string]*Window),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// DeclareHistogram fixes the bucket layout the named histogram will use
// when it is (lazily) created. Declaring after the histogram exists is a
// no-op; nil bounds select DefaultBuckets.
func (r *Registry) DeclareHistogram(name string, bounds []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.histograms[name]; ok {
		return
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	r.buckets[name] = own
}

// Histogram returns the named histogram, creating it on first use with
// its declared bucket layout (or DefaultBuckets).
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = NewHistogram(r.buckets[name])
		delete(r.buckets, name)
		r.histograms[name] = h
	}
	return h
}

// Count implements Recorder. A watched name's window ring receives the
// delta as well.
func (r *Registry) Count(name string, delta int64) {
	r.Counter(name).Add(delta)
	if w := r.window(name); w != nil {
		w.Add(float64(delta))
	}
}

// Observe implements Recorder. A watched name's window ring receives the
// value as well.
func (r *Registry) Observe(name string, value float64) {
	r.Histogram(name).Observe(value)
	if w := r.window(name); w != nil {
		w.Add(value)
	}
}

// SetGauge implements Recorder.
func (r *Registry) SetGauge(name string, value float64) { r.Gauge(name).Set(value) }

// Snapshot returns a point-in-time copy of every metric — scalar and
// labeled series alike — sorted by name, then by label values, so the
// JSON encoding is deterministic for deterministic workloads. Watched
// metrics additionally carry their window rings (wall-time-class data
// that StripWallTime removes). Concurrent recording during the snapshot
// yields values that are each individually consistent.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap := Snapshot{}
	for name, c := range r.counters {
		snap.Counters = append(snap.Counters, CounterSnapshot{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnapshot{Name: name, Value: g.Value()})
	}
	for name, h := range r.histograms {
		snap.Histograms = append(snap.Histograms, h.snapshot(name))
	}
	for name, v := range r.counterVecs {
		v.mu.RLock()
		for key, c := range v.children {
			snap.Counters = append(snap.Counters, CounterSnapshot{
				Name: name, Labels: v.labels[key], Value: c.Value(),
			})
		}
		v.mu.RUnlock()
	}
	for name, v := range r.gaugeVecs {
		v.mu.RLock()
		for key, g := range v.children {
			snap.Gauges = append(snap.Gauges, GaugeSnapshot{
				Name: name, Labels: v.labels[key], Value: g.Value(),
			})
		}
		v.mu.RUnlock()
	}
	for name, v := range r.histogramVecs {
		v.mu.RLock()
		for key, h := range v.children {
			hs := h.snapshot(name)
			hs.Labels = v.labels[key]
			snap.Histograms = append(snap.Histograms, hs)
		}
		v.mu.RUnlock()
	}
	for name, w := range r.windows {
		snap.Windows = append(snap.Windows, w.Snapshot(name))
	}
	sort.Slice(snap.Counters, func(i, j int) bool {
		return seriesLess(snap.Counters[i].Name, snap.Counters[i].Labels,
			snap.Counters[j].Name, snap.Counters[j].Labels)
	})
	sort.Slice(snap.Gauges, func(i, j int) bool {
		return seriesLess(snap.Gauges[i].Name, snap.Gauges[i].Labels,
			snap.Gauges[j].Name, snap.Gauges[j].Labels)
	})
	sort.Slice(snap.Histograms, func(i, j int) bool {
		return seriesLess(snap.Histograms[i].Name, snap.Histograms[i].Labels,
			snap.Histograms[j].Name, snap.Histograms[j].Labels)
	})
	sort.Slice(snap.Windows, func(i, j int) bool { return snap.Windows[i].Name < snap.Windows[j].Name })
	return snap
}

// seriesLess orders metric series by name, then unlabeled before
// labeled, then by label key/value pairs.
func seriesLess(an string, al []Label, bn string, bl []Label) bool {
	if an != bn {
		return an < bn
	}
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i].Key != bl[i].Key {
			return al[i].Key < bl[i].Key
		}
		if al[i].Value != bl[i].Value {
			return al[i].Value < bl[i].Value
		}
	}
	return len(al) < len(bl)
}
