package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Fatalf("fresh gauge = %g", g.Value())
	}
	g.Set(-2.5)
	if g.Value() != -2.5 {
		t.Fatalf("gauge = %g, want -2.5", g.Value())
	}
}

func TestHistogramBucketsAndStats(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-556.5) > 1e-12 {
		t.Fatalf("sum = %g, want 556.5", got)
	}
	s := h.snapshot("h")
	if *s.Min != 0.5 || *s.Max != 500 {
		t.Fatalf("min/max = %g/%g, want 0.5/500", *s.Min, *s.Max)
	}
	// v <= bound is inclusive: 0.5 and 1 land in the first bucket.
	want := []Bucket{
		{UpperBound: 1, Count: 2},
		{UpperBound: 10, Count: 1},
		{UpperBound: 100, Count: 1},
		{Overflow: true, Count: 1},
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
}

func TestHistogramEmptySnapshotOmitsMinMax(t *testing.T) {
	s := NewHistogram(nil).snapshot("empty")
	if s.Min != nil || s.Max != nil || s.Count != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestDefaultBucketsAscending(t *testing.T) {
	b := DefaultBuckets()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bucket bounds not ascending at %d: %g <= %g", i, b[i], b[i-1])
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(float64(w + 1))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d, want 4000", h.Count())
	}
	// Sum of 500*(1+2+...+8) = 500*36.
	if got := h.Sum(); math.Abs(got-18000) > 1e-9 {
		t.Fatalf("sum = %g, want 18000", got)
	}
}
