package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// promTestRegistry mixes dotted names, labeled series, and a declared
// histogram so the writer's whole surface is exercised.
func promTestRegistry() *Registry {
	reg := NewRegistry()
	reg.Count("detector.detect_calls", 7)
	reg.CounterVec("rpc.calls", "method", "code").With("get", "200").Add(3)
	reg.CounterVec("rpc.calls", "method", "code").With("put", "500").Inc()
	reg.SetGauge("queue.depth", 4.5)
	reg.DeclareHistogram("trial.seconds", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.05, 0.5} {
		reg.Observe("trial.seconds", v)
	}
	return reg
}

func TestWritePrometheusRoundTrip(t *testing.T) {
	var text strings.Builder
	if err := WritePrometheus(&text, promTestRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	families, err := ParsePrometheus(strings.NewReader(text.String()))
	if err != nil {
		t.Fatalf("writer output did not parse: %v\n%s", err, text.String())
	}
	byName := map[string]PromFamily{}
	for _, f := range families {
		byName[f.Name] = f
	}

	// Dotted names come back underscore-mangled, with the original dotted
	// name preserved as the HELP docstring.
	calls, ok := byName["detector_detect_calls"]
	if !ok {
		t.Fatalf("no detector_detect_calls family in %v", families)
	}
	if calls.Type != "counter" || calls.Help != "detector.detect_calls" {
		t.Fatalf("family header = %+v", calls)
	}
	if len(calls.Samples) != 1 || calls.Samples[0].Value != 7 {
		t.Fatalf("samples = %+v", calls.Samples)
	}

	// Labeled series survive with key-sorted labels.
	rpc := byName["rpc_calls"]
	if len(rpc.Samples) != 2 {
		t.Fatalf("rpc_calls samples = %+v", rpc.Samples)
	}
	got := map[string]float64{}
	for _, s := range rpc.Samples {
		got[labelKey(s.Labels)] = s.Value
	}
	if got[`code=200,method=get`] != 3 || got[`code=500,method=put`] != 1 {
		t.Fatalf("labeled samples = %+v", got)
	}

	if g := byName["queue_depth"]; g.Type != "gauge" || g.Samples[0].Value != 4.5 {
		t.Fatalf("gauge family = %+v", g)
	}

	// Histogram buckets are cumulative, end with +Inf, and carry _sum/_count.
	hist := byName["trial_seconds"]
	if hist.Type != "histogram" {
		t.Fatalf("trial_seconds type = %q", hist.Type)
	}
	bucket := map[string]float64{}
	var sum, count float64
	for _, s := range hist.Samples {
		switch s.Name {
		case "trial_seconds_bucket":
			for _, l := range s.Labels {
				if l.Key == "le" {
					bucket[l.Value] = s.Value
				}
			}
		case "trial_seconds_sum":
			sum = s.Value
		case "trial_seconds_count":
			count = s.Value
		}
	}
	wantBuckets := map[string]float64{"0.001": 1, "0.01": 2, "0.1": 3, "+Inf": 4}
	for le, want := range wantBuckets {
		if bucket[le] != want {
			t.Fatalf("bucket[le=%s] = %g, want %g (all: %v)", le, bucket[le], want, bucket)
		}
	}
	if count != 4 || sum < 0.55 || sum > 0.56 {
		t.Fatalf("sum/count = %g/%g", sum, count)
	}
}

func TestWritePrometheusPassesChecker(t *testing.T) {
	var text strings.Builder
	if err := WritePrometheus(&text, promTestRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := CheckPrometheusText(strings.NewReader(text.String())); err != nil {
		t.Fatalf("writer output failed its own checker: %v\n%s", err, text.String())
	}
}

func TestCheckPrometheusTextRejects(t *testing.T) {
	cases := map[string]string{
		"empty scrape": "",
		"sample without header": `orphan 1
`,
		"family without samples": `# HELP a a
# TYPE a counter
`,
		"unsorted families": `# HELP b b
# TYPE b counter
b 1
# HELP a a
# TYPE a counter
a 1
`,
		"histogram without +Inf": `# HELP h h
# TYPE h histogram
h_bucket{le="1"} 1
h_sum 1
h_count 1
`,
		"bad value": `# HELP a a
# TYPE a counter
a nope
`,
	}
	for name, text := range cases {
		if err := CheckPrometheusText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: checker accepted malformed scrape:\n%s", name, text)
		}
	}
}

func TestPromNameMangling(t *testing.T) {
	for in, want := range map[string]string{
		"detector.detect_calls": "detector_detect_calls",
		"9leading":              "_leading",
		"a-b c":                 "a_b_c",
		"ok_name:x9":            "ok_name:x9",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("m", "k").With("quote\" slash\\ nl\n").Inc()
	var text strings.Builder
	if err := WritePrometheus(&text, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	families, err := ParsePrometheus(strings.NewReader(text.String()))
	if err != nil {
		t.Fatalf("escaped labels did not round-trip: %v\n%s", err, text.String())
	}
	if v := families[0].Samples[0].Labels[0].Value; v != "quote\" slash\\ nl\n" {
		t.Fatalf("label value round-tripped as %q", v)
	}
}

func TestMetricsHandlerServesRuntimeAndRegistry(t *testing.T) {
	rec := httptest.NewRecorder()
	MetricsHandler(promTestRegistry()).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != PromContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, PromContentType)
	}
	body := rec.Body.String()
	if err := CheckPrometheusText(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics scrape invalid: %v\n%s", err, body)
	}
	for _, want := range []string{"detector_detect_calls 7", "go_goroutines", "go_memstats_heap_alloc_bytes"} {
		if !strings.Contains(body, want) {
			t.Fatalf("scrape missing %q:\n%s", want, body)
		}
	}
}

func TestMetricsHandlerNilRegistry(t *testing.T) {
	rec := httptest.NewRecorder()
	MetricsHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if err := CheckPrometheusText(strings.NewReader(rec.Body.String())); err != nil {
		t.Fatalf("nil-registry scrape invalid: %v", err)
	}
	if !strings.Contains(rec.Body.String(), "go_goroutines") {
		t.Fatal("nil-registry scrape lost the runtime collector")
	}
}

func TestSnapshotHandlerJSON(t *testing.T) {
	reg := promTestRegistry()
	reg.Watch("detector.detect_calls", WindowConfig{})
	reg.Count("detector.detect_calls", 1)
	rec := httptest.NewRecorder()
	SnapshotHandler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics.json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot endpoint is not JSON: %v", err)
	}
	if snap.CounterValue("detector.detect_calls") != 8 {
		t.Fatalf("decoded counter = %d, want 8", snap.CounterValue("detector.detect_calls"))
	}
	if _, ok := snap.WindowByName("detector.detect_calls"); !ok {
		t.Fatal("snapshot endpoint dropped the window ring")
	}
}
