package obs

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"
)

func sampleReport() *RunReport {
	reg := NewRegistry()
	reg.Count("sim.frames_on_air", 12)
	reg.Observe("detector.iterations", 3)
	reg.Observe("experiments.trial_seconds", 0.12) // wall-time metric
	r := NewRunReport("crbench", 1, 5)
	r.Experiments = append(r.Experiments, ExperimentReport{
		Name: "sec5", WallSeconds: 1.5, OutputBytes: 100, CIRsPerSecond: 42.5,
		EngineParallelEfficiency: 0.8, EngineBarrierStallPct: 20,
		EngineDrainPct: 3, EngineCriticalShard: 7, EngineCriticalShardPct: 12.5,
	})
	r.Finish(reg.Snapshot(), 2*time.Second)
	return r
}

func TestReportValidateAndRoundTrip(t *testing.T) {
	r := sampleReport()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.Tool != "crbench" || back.Seed != 1 || back.Trials != 5 {
		t.Fatalf("round-tripped header = %+v", back)
	}
	if back.Metrics.CounterValue("sim.frames_on_air") != 12 {
		t.Fatalf("metrics lost: %+v", back.Metrics)
	}
}

func TestReportValidateRejectsBadReports(t *testing.T) {
	for name, mutate := range map[string]func(*RunReport){
		"schema":     func(r *RunReport) { r.Schema = 99 },
		"tool":       func(r *RunReport) { r.Tool = "" },
		"noexp":      func(r *RunReport) { r.Experiments = nil },
		"unnamed":    func(r *RunReport) { r.Experiments[0].Name = "" },
		"negwall":    func(r *RunReport) { r.Experiments[0].WallSeconds = -1 },
		"histcounts": func(r *RunReport) { r.Metrics.Histograms[0].Count += 3 },
	} {
		r := sampleReport()
		mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: validation passed on a broken report", name)
		}
	}
}

func TestStripWallTime(t *testing.T) {
	r := sampleReport()
	s := r.StripWallTime()
	if s.StartTime != "" || s.WallSeconds != 0 || s.Runtime != (RuntimeStats{}) {
		t.Fatalf("wall fields survive: %+v", s)
	}
	if s.Experiments[0].WallSeconds != 0 || s.Experiments[0].CIRsPerSecond != 0 {
		t.Fatalf("experiment wall-time fields survive: %+v", s.Experiments[0])
	}
	// The engine-profiler diagnosis is wall-clock-derived scheduling noise:
	// every field of it must be stripped.
	if e := s.Experiments[0]; e.EngineParallelEfficiency != 0 || e.EngineBarrierStallPct != 0 ||
		e.EngineDrainPct != 0 || e.EngineCriticalShard != 0 || e.EngineCriticalShardPct != 0 {
		t.Fatalf("engine profile fields survive: %+v", e)
	}
	if _, ok := s.Metrics.HistogramByName("experiments.trial_seconds"); ok {
		t.Fatal("wall-time metric survives the strip")
	}
	if _, ok := s.Metrics.HistogramByName("detector.iterations"); !ok {
		t.Fatal("deterministic metric stripped")
	}
	// The original must be untouched.
	if r.WallSeconds == 0 || r.Experiments[0].WallSeconds == 0 {
		t.Fatal("StripWallTime mutated the original report")
	}
	// Stripped reports of identical runs must encode identically.
	var a, b bytes.Buffer
	if err := s.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.StripWallTime().Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("stripping the same report twice differs")
	}
}
