package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterVecResolvesStableChildren(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("rpc.calls", "method", "code")
	a := vec.With("get", "200")
	b := vec.With("get", "200")
	if a != b {
		t.Fatal("same label values resolved two different children")
	}
	a.Add(3)
	vec.With("put", "500").Inc()

	snap := reg.Snapshot()
	series := snap.CounterSeries("rpc.calls")
	if len(series) != 2 {
		t.Fatalf("got %d series, want 2: %+v", len(series), series)
	}
	// Labels come back key-sorted regardless of declaration order.
	want0 := []Label{{Key: "code", Value: "200"}, {Key: "method", Value: "get"}}
	if fmt.Sprint(series[0].Labels) != fmt.Sprint(want0) || series[0].Value != 3 {
		t.Fatalf("series[0] = %+v, want labels %+v value 3", series[0], want0)
	}
	if snap.CounterValue("rpc.calls") != 4 {
		t.Fatalf("family sum = %d, want 4", snap.CounterValue("rpc.calls"))
	}
}

func TestVecDeclarationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	reg := NewRegistry()
	mustPanic("no keys", func() { reg.CounterVec("x") })
	mustPanic("empty key", func() { reg.CounterVec("x", "") })
	mustPanic("duplicate key", func() { reg.CounterVec("x", "a", "a") })
	reg.CounterVec("y", "a", "b")
	mustPanic("re-declared reordered", func() { reg.CounterVec("y", "b", "a") })
	mustPanic("re-declared different arity", func() { reg.CounterVec("y", "a") })
	mustPanic("arity mismatch in With", func() { reg.CounterVec("y", "a", "b").With("only-one") })
	// Identical re-declaration is fine.
	if reg.CounterVec("y", "a", "b") == nil {
		t.Fatal("identical re-declaration rejected")
	}
}

func TestVecOverflowCollapses(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("hot", "id")
	for i := 0; i < MaxSeriesPerVec; i++ {
		vec.With(fmt.Sprint(i)).Inc()
	}
	// Novel combinations beyond the cap all share the overflow series.
	o1 := vec.With("novel-1")
	o2 := vec.With("novel-2")
	if o1 != o2 {
		t.Fatal("overflow series not shared")
	}
	o1.Inc()
	o2.Inc()
	// Existing series stay addressable after the vec fills.
	if vec.With("0").Value() != 1 {
		t.Fatal("pre-overflow series lost")
	}
	var overflow *CounterSnapshot
	series := reg.Snapshot().CounterSeries("hot")
	for i := range series {
		if series[i].Labels[0].Value == OverflowLabelValue {
			overflow = &series[i]
		}
	}
	if overflow == nil || overflow.Value != 2 {
		t.Fatalf("overflow series = %+v, want value 2", overflow)
	}
	if len(series) != MaxSeriesPerVec+1 {
		t.Fatalf("got %d series, want %d", len(series), MaxSeriesPerVec+1)
	}
}

func TestGaugeAndHistogramVecs(t *testing.T) {
	reg := NewRegistry()
	reg.DeclareHistogram("latency", []float64{1, 10})
	reg.GaugeVec("depth", "queue").With("q1").Set(7)
	hv := reg.HistogramVec("latency", "op")
	hv.With("read").Observe(5)
	hv.With("read").Observe(100)

	snap := reg.Snapshot()
	var gauge *GaugeSnapshot
	for i := range snap.Gauges {
		if snap.Gauges[i].Name == "depth" {
			gauge = &snap.Gauges[i]
		}
	}
	if gauge == nil || gauge.Value != 7 || len(gauge.Labels) != 1 {
		t.Fatalf("labeled gauge = %+v", gauge)
	}
	var hist *HistogramSnapshot
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == "latency" {
			hist = &snap.Histograms[i]
		}
	}
	if hist == nil || hist.Count != 2 || hist.Sum != 105 {
		t.Fatalf("labeled histogram = %+v", hist)
	}
	// The declared two-bound layout applies: one in (1,10], one overflow.
	if len(hist.Buckets) != 2 || !hist.Buckets[1].Overflow {
		t.Fatalf("declared buckets not applied: %+v", hist.Buckets)
	}
}

func TestVecConcurrentWith(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("c", "k")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				vec.With(fmt.Sprint(i % 16)).Inc()
			}
		}()
	}
	wg.Wait()
	if got := reg.Snapshot().CounterValue("c"); got != 8*500 {
		t.Fatalf("family sum = %d, want %d", got, 8*500)
	}
}

func TestSnapshotSeriesOrderDeterministic(t *testing.T) {
	build := func() string {
		reg := NewRegistry()
		reg.Count("m", 1) // unlabeled series of the same family
		vec := reg.CounterVec("m", "b", "a")
		vec.With("2", "1").Inc()
		vec.With("1", "2").Inc()
		var names []string
		for _, c := range reg.Snapshot().CounterSeries("m") {
			names = append(names, labelKey(c.Labels))
		}
		return strings.Join(names, "|")
	}
	first := build()
	for i := 0; i < 10; i++ {
		if got := build(); got != first {
			t.Fatalf("series order not deterministic: %q vs %q", got, first)
		}
	}
	// Unlabeled first, then label-sorted.
	if !strings.HasPrefix(first, "|") {
		t.Fatalf("unlabeled series not first: %q", first)
	}
}

func TestSnapshotGaugeSeries(t *testing.T) {
	reg := NewRegistry()
	reg.SetGauge("occ", 1) // unlabeled series of the same family
	vec := reg.GaugeVec("occ", "worker")
	vec.With("1").Set(30)
	vec.With("0").Set(70)
	got := reg.Snapshot().GaugeSeries("occ")
	if len(got) != 3 {
		t.Fatalf("%d series, want 3 (unlabeled + two workers)", len(got))
	}
	// Snapshot order: unlabeled first, then label-sorted.
	if len(got[0].Labels) != 0 || got[0].Value != 1 {
		t.Fatalf("first series = %+v, want unlabeled value 1", got[0])
	}
	if labelKey(got[1].Labels) != "worker=0" || got[1].Value != 70 {
		t.Fatalf("second series = %+v, want worker=0 value 70", got[1])
	}
	if labelKey(got[2].Labels) != "worker=1" || got[2].Value != 30 {
		t.Fatalf("third series = %+v, want worker=1 value 30", got[2])
	}
	if s := reg.Snapshot().GaugeSeries("absent"); s != nil {
		t.Fatalf("absent family returned %+v", s)
	}
}

func labelKey(labels []Label) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "=" + l.Value
	}
	return strings.Join(parts, ",")
}
