package trace

// Canonical span and event names. The producers (core.Detector,
// sim.Network, ranging.Session) and the consumer (cmd/crtrace) agree on
// these; DESIGN.md §11 documents the full per-name attribute schema.
const (
	// SpanSessionRound is one ranging.Session.Run: a full concurrent
	// round from the API's point of view. Begin attrs carry the trial
	// seed, the session round counter, the scheme capacity, and the
	// per-responder ground truth (AttrTruth); end attrs carry the
	// outcome (AttrStatus, AttrMeasurements, anchor identity, d_TWR).
	SpanSessionRound = "session.round"
	// SpanSimRound is one sim protocol round (RunConcurrentRound).
	// End attrs carry the locked source, decode outcome, SIR, and the
	// simulator-side ground truth.
	SpanSimRound = "sim.round"
	// SpanCampaign wraps a simulator campaign (scheduled SS-TWR or
	// concurrent); its protocol rounds nest under it.
	SpanCampaign = "sim.campaign"
	// SpanDetect is one core.Detector.Detect call; EventDetectRound
	// instants nest inside it.
	SpanDetect = "detect"
	// SpanDetectBatch is one core.BatchDetector.DetectBatch call. Begin
	// attrs carry the batch size, distinct CIR-length group count, and
	// worker-pool size; end attrs carry the per-item error and total
	// response counts. Worker detectors' per-item spans open as roots, so
	// they do not nest under it.
	SpanDetectBatch = "detect.batch"
	// EventDetectRound is one search-and-subtract round: the candidate
	// peak, per-template matched-filter scores, margin, accept/reject
	// reason, and residual energy after subtraction.
	EventDetectRound = "detect.round"
	// SpanSwarmRound is one sim.Swarm concurrent-ranging round: an
	// initiator's INIT and the slotted responses it provokes. Begin attrs
	// carry the swarm seed, the initiating node, and the global round
	// counter; end attrs carry the outcome (AttrStatus: ok, empty, or
	// slot-collision) and the response/resolved/collision counts.
	SpanSwarmRound = "swarm.round"
	// SpanEngineCoordinator, SpanEngineWorker, SpanEngineWindow, and
	// SpanEngineShard are the sharded-engine profiler's synthesized
	// timeline spans (sim.EngineProfiler.WriteChromeTrace): one
	// coordinator root carrying barrier-window child slices, and one root
	// per worker-pool slot carrying that slot's shard-window executions.
	SpanEngineCoordinator = "engine.coordinator"
	SpanEngineWorker      = "engine.worker"
	SpanEngineWindow      = "engine.window"
	SpanEngineShard       = "engine.shard"
)

// Attribute keys shared across producers and crtrace. Per-responder ground
// truth and per-measurement outcomes are arrays of objects using the
// nested keys below.
const (
	// AttrSeed is the deterministic simulation seed of the trial.
	AttrSeed = "seed"
	// AttrRound is the session's 0-based round counter.
	AttrRound = "round"
	// AttrStatus is "ok" or "error" on end events; AttrError carries the
	// message in the error case.
	AttrStatus = "status"
	AttrError  = "error"
	// AttrTruth is the ground-truth array: one object per responder with
	// AttrID, AttrSlot, AttrShape, AttrDistM.
	AttrTruth = "truth"
	// AttrMeasurements is the outcome array: one object per resolved
	// measurement with AttrID, AttrSlot, AttrShape, AttrDistM,
	// AttrTrueM, AttrHasTruth, AttrAnchor.
	AttrMeasurements = "measurements"
	// Nested keys of truth/measurement objects.
	AttrID       = "id"
	AttrSlot     = "slot"
	AttrShape    = "shape"
	AttrDistM    = "dist_m"
	AttrTrueM    = "true_m"
	AttrHasTruth = "has_truth"
	AttrAnchor   = "anchor"
	// AttrCapacity is the scheme capacity N_RPM · N_PS of the session.
	AttrCapacity = "capacity"
	// Detect-round keys: the accept/reject reason, the candidate peak's
	// up-sampled grid index, delay (seconds), amplitude magnitude,
	// template index, peak-to-threshold margin (dB), the per-template
	// matched-filter peak scores, and the residual-to-input energy
	// fraction after the round's subtraction.
	AttrReason       = "reason"
	AttrPeakIndex    = "peak_index"
	AttrDelayS       = "delay_s"
	AttrAmplitude    = "amp"
	AttrTemplate     = "template"
	AttrMarginDB     = "margin_db"
	AttrScores       = "scores"
	AttrResidualFrac = "residual_frac"
	// Swarm-round keys: the initiating node and the round's response
	// accounting (responses heard, resolved distinctly, lost to slot
	// collisions).
	AttrNode       = "node"
	AttrResponses  = "responses"
	AttrResolved   = "resolved"
	AttrCollisions = "collisions"
	// Engine-profiler timeline keys: worker-pool slot, shard index, and
	// barrier-window index.
	AttrWorker = "worker"
	AttrShard  = "shard"
	AttrWindow = "window"
)

// Detect-round accept/reject reasons and Detect stop reasons
// (AttrReason on EventDetectRound instants and SpanDetect end events).
const (
	// ReasonAccepted marks a round whose candidate became a response.
	ReasonAccepted = "accepted"
	// ReasonBelowThreshold marks the stopping round: the best remaining
	// peak fell below the detection threshold.
	ReasonBelowThreshold = "below-threshold"
	// ReasonZeroAmplitude marks a degenerate candidate with zero
	// estimated amplitude.
	ReasonZeroAmplitude = "zero-amplitude"
	// ReasonNoCandidate marks a round in which every sample of every
	// template was suppressed or zero.
	ReasonNoCandidate = "no-candidate"
	// ReasonMaxResponses marks a Detect that stopped at MaxResponses.
	ReasonMaxResponses = "max-responses"
	// ReasonMaxIterations marks a Detect that ran out of its iteration
	// budget.
	ReasonMaxIterations = "max-iterations"
)
