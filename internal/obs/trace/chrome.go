package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format ("Trace Event
// Format", the chrome://tracing / Perfetto JSON). Timestamps and durations
// are microseconds.
type chromeEvent struct {
	Name  string   `json:"name"`
	Cat   string   `json:"cat"`
	Phase string   `json:"ph"`
	TS    float64  `json:"ts"`
	Dur   *float64 `json:"dur,omitempty"`
	PID   int      `json:"pid"`
	TID   uint64   `json:"tid"`
	Scope string   `json:"s,omitempty"`
	Args  Attrs    `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace converts a flight-recorder event stream into the Chrome
// trace-event JSON format for timeline viewing in chrome://tracing or
// Perfetto. Each span becomes one complete ("X") slice; instant events
// become thread-scoped instants. Spans are grouped onto tracks (tid) by
// their root span, so concurrent campaign workers render as parallel
// rows. A span still open at the end of the stream is closed at the last
// observed timestamp.
func WriteChromeTrace(w io.Writer, events []Event) error {
	// Resolve each span's root by walking begin-event parent links.
	parent := make(map[uint64]uint64)
	name := make(map[uint64]string)
	beginTS := make(map[uint64]float64)
	beginAttrs := make(map[uint64]Attrs)
	var lastTS float64
	for _, ev := range events {
		if ev.TS > lastTS {
			lastTS = ev.TS
		}
		if ev.Phase == PhaseBegin {
			parent[ev.Span] = ev.Parent
			name[ev.Span] = ev.Name
			beginTS[ev.Span] = ev.TS
			beginAttrs[ev.Span] = ev.Attrs
		}
	}
	root := func(id uint64) uint64 {
		for depth := 0; depth < 64; depth++ { // cycle guard
			p, ok := parent[id]
			if !ok || p == 0 {
				return id
			}
			id = p
		}
		return id
	}

	var out chromeTrace
	closed := make(map[uint64]bool)
	for _, ev := range events {
		switch ev.Phase {
		case PhaseEnd:
			ts, ok := beginTS[ev.Span]
			if !ok {
				continue // end without a begin in the ring window
			}
			dur := (ev.TS - ts) * 1e6
			args := mergeAttrs(beginAttrs[ev.Span], ev.Attrs)
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: name[ev.Span], Cat: "cr", Phase: "X",
				TS: ts * 1e6, Dur: &dur, PID: 1, TID: root(ev.Span), Args: args,
			})
			closed[ev.Span] = true
		case PhaseInstant:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: ev.Name, Cat: "cr", Phase: "i", Scope: "t",
				TS: ev.TS * 1e6, PID: 1, TID: root(ev.Span), Args: ev.Attrs,
			})
		}
	}
	// Close spans the stream never ended (truncated trace).
	for id, ts := range beginTS {
		if closed[id] {
			continue
		}
		dur := (lastTS - ts) * 1e6
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: name[id], Cat: "cr", Phase: "X",
			TS: ts * 1e6, Dur: &dur, PID: 1, TID: root(id), Args: beginAttrs[id],
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// mergeAttrs overlays end attrs onto begin attrs without mutating either.
func mergeAttrs(begin, end Attrs) Attrs {
	if len(begin) == 0 {
		return end
	}
	if len(end) == 0 {
		return begin
	}
	out := make(Attrs, len(begin)+len(end))
	for k, v := range begin {
		out[k] = v
	}
	for k, v := range end {
		out[k] = v
	}
	return out
}
