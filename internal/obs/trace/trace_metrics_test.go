package trace

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/obs"
)

// plainRecorder implements obs.Recorder without the VecSource extension,
// forcing the tracer's unlabeled fallback path.
type plainRecorder struct {
	counts map[string]int64
}

func (r *plainRecorder) Count(name string, delta int64) {
	if r.counts == nil {
		r.counts = map[string]int64{}
	}
	r.counts[name] += delta
}
func (r *plainRecorder) Observe(string, float64)  {}
func (r *plainRecorder) SetGauge(string, float64) {}

func seriesByLabel(snap obs.Snapshot, family string) map[string]int64 {
	out := map[string]int64{}
	for _, c := range snap.CounterSeries(family) {
		key := ""
		for _, l := range c.Labels {
			key = l.Value
		}
		out[key] += c.Value
	}
	return out
}

func TestSetMetricsLabelsSpansAndEvents(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(Config{RingSize: 16})
	tr.SetMetrics(reg)

	root := tr.Begin("trial", nil)
	child := root.Begin("detect", nil)
	child.Event("peak_accept", nil)
	child.Event("peak_accept", nil)
	child.Event("peak_reject", nil)
	child.End()
	root.Begin("detect", nil).End()
	root.End()

	snap := reg.Snapshot()
	wantSpans := map[string]int64{"trial": 1, "detect": 2}
	if got := seriesByLabel(snap, MetricSpans); !reflect.DeepEqual(got, wantSpans) {
		t.Fatalf("span series = %v, want %v", got, wantSpans)
	}
	wantEvents := map[string]int64{"peak_accept": 2, "peak_reject": 1}
	if got := seriesByLabel(snap, MetricEvents); !reflect.DeepEqual(got, wantEvents) {
		t.Fatalf("event series = %v, want %v", got, wantEvents)
	}
	// Span ends are not spans; the family totals match begin/instant counts.
	if got := snap.CounterValue(MetricSpans); got != 3 {
		t.Fatalf("spans total = %d, want 3", got)
	}
}

func TestSetMetricsCountsSampledOut(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(Config{RingSize: 16, SampleEvery: 3})
	tr.SetMetrics(reg)
	for i := 0; i < 9; i++ {
		tr.Begin("trial", nil).End()
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue(MetricSampledOut); got != 6 {
		t.Fatalf("sampled_out = %d, want 6", got)
	}
	if got := snap.CounterValue(MetricSpans); got != 3 {
		t.Fatalf("spans = %d, want 3 (one in three sampled)", got)
	}
	if st := tr.Stats(); st.SampledOut != 6 || st.RootSpans != 9 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSetMetricsPlainRecorderFallback(t *testing.T) {
	rec := &plainRecorder{}
	tr := New(Config{RingSize: 16, SampleEvery: 2})
	tr.SetMetrics(rec)
	for i := 0; i < 4; i++ {
		s := tr.Begin("trial", nil)
		s.Event("e", nil)
		s.End()
	}
	want := map[string]int64{MetricSpans: 2, MetricEvents: 2, MetricSampledOut: 2}
	if !reflect.DeepEqual(rec.counts, want) {
		t.Fatalf("plain recorder counts = %v, want %v", rec.counts, want)
	}
}

func TestSetMetricsNilDetaches(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(Config{RingSize: 16})
	tr.SetMetrics(reg)
	tr.Begin("trial", nil).End()
	tr.SetMetrics(nil)
	tr.Begin("trial", nil).End()
	if got := reg.Snapshot().CounterValue(MetricSpans); got != 1 {
		t.Fatalf("detached tracer kept mirroring: spans = %d, want 1", got)
	}
}

// TestSetMetricsIsObservational pins the core contract: the mirrored
// registry changes nothing about what the tracer records.
func TestSetMetricsIsObservational(t *testing.T) {
	run := func(rec obs.Recorder) ([]Event, Stats, string) {
		var sink bytes.Buffer
		clock := func() float64 { return 0 }
		tr := New(Config{Writer: &sink, RingSize: 16, SampleEvery: 2, Clock: clock})
		tr.SetMetrics(rec)
		for i := 0; i < 4; i++ {
			s := tr.Begin("trial", Attrs{"trial": i})
			s.Event("peak", Attrs{"toa": 1.5})
			s.End()
		}
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		return tr.Events(), tr.Stats(), sink.String()
	}
	evPlain, stPlain, outPlain := run(nil)
	evMirrored, stMirrored, outMirrored := run(obs.NewRegistry())
	if !reflect.DeepEqual(evPlain, evMirrored) {
		t.Fatalf("ring differs with metrics attached:\n%v\nvs\n%v", evPlain, evMirrored)
	}
	if stPlain != stMirrored {
		t.Fatalf("stats differ: %+v vs %+v", stPlain, stMirrored)
	}
	if outPlain != outMirrored {
		t.Fatal("JSONL stream differs with metrics attached")
	}
}
