package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// fixedClock returns a deterministic strictly increasing clock.
func fixedClock() func() float64 {
	var n float64
	return func() float64 { n += 0.001; return n }
}

func TestNilTracerAndSpanAreInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin("root", Attrs{"k": 1})
	if sp != nil {
		t.Fatalf("nil tracer Begin = %v, want nil", sp)
	}
	if sp.Recording() {
		t.Error("nil span reports Recording")
	}
	if sp.ID() != 0 {
		t.Errorf("nil span ID = %d, want 0", sp.ID())
	}
	// All of these must be safe no-ops.
	child := sp.Begin("child", nil)
	child.Event("ev", nil)
	child.End()
	sp.EndWith(Attrs{"x": 2})
	if got := tr.Events(); got != nil {
		t.Errorf("nil tracer Events = %v, want nil", got)
	}
	if err := tr.Flush(); err != nil {
		t.Errorf("nil tracer Flush = %v", err)
	}
	if s := tr.Stats(); s != (Stats{}) {
		t.Errorf("nil tracer Stats = %+v", s)
	}
}

func TestSpanTreeAndRing(t *testing.T) {
	tr := New(Config{Clock: fixedClock()})
	root := tr.Begin("session.round", Attrs{"seed": 7})
	if !root.Recording() {
		t.Fatal("sampled root span not recording")
	}
	child := root.Begin("detect", Attrs{"templates": 3})
	child.Event("detect.round", Attrs{"round": 0, "reason": "accepted"})
	child.EndWith(Attrs{"responses": 1})
	root.End()

	evs := tr.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	// Sequence numbers are contiguous and timestamps monotone.
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d seq = %d", i, ev.Seq)
		}
		if i > 0 && evs[i].TS <= evs[i-1].TS {
			t.Errorf("timestamps not increasing at %d", i)
		}
	}
	if evs[0].Phase != PhaseBegin || evs[0].Name != "session.round" || evs[0].Parent != 0 {
		t.Errorf("root begin = %+v", evs[0])
	}
	if evs[1].Phase != PhaseBegin || evs[1].Parent != root.ID() {
		t.Errorf("child begin = %+v, want parent %d", evs[1], root.ID())
	}
	if evs[2].Phase != PhaseInstant || evs[2].Span != child.ID() {
		t.Errorf("instant = %+v, want span %d", evs[2], child.ID())
	}
	if evs[3].Phase != PhaseEnd || evs[3].Attrs["responses"] != 1 {
		t.Errorf("child end = %+v", evs[3])
	}
	if evs[4].Phase != PhaseEnd || evs[4].Span != root.ID() {
		t.Errorf("root end = %+v", evs[4])
	}
}

func TestRingKeepsMostRecent(t *testing.T) {
	tr := New(Config{RingSize: 4, Clock: fixedClock()})
	for i := 0; i < 10; i++ {
		sp := tr.Begin("s", Attrs{"i": i})
		sp.End()
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	// 20 events emitted; the ring holds 17..20.
	if evs[0].Seq != 17 || evs[3].Seq != 20 {
		t.Errorf("ring seq range [%d, %d], want [17, 20]", evs[0].Seq, evs[3].Seq)
	}
	if got := tr.Stats().Events; got != 20 {
		t.Errorf("Stats.Events = %d, want 20", got)
	}
}

func TestRootSampling(t *testing.T) {
	tr := New(Config{SampleEvery: 3, Clock: fixedClock()})
	recorded := 0
	for i := 0; i < 9; i++ {
		sp := tr.Begin("root", nil)
		if sp == nil {
			t.Fatal("Begin returned nil on a live tracer")
		}
		// Children and events of unsampled roots must be inert but usable.
		child := sp.Begin("child", nil)
		child.Event("ev", nil)
		child.End()
		sp.End()
		if sp.Recording() {
			recorded++
			if !child.Recording() {
				t.Error("child of sampled root not recording")
			}
		} else if child.Recording() {
			t.Error("child of unsampled root is recording")
		}
	}
	if recorded != 3 {
		t.Errorf("%d of 9 roots sampled, want 3", recorded)
	}
	st := tr.Stats()
	if st.RootSpans != 9 || st.SampledOut != 6 {
		t.Errorf("stats = %+v, want 9 roots, 6 sampled out", st)
	}
	// 3 sampled roots × (root B/E + child B/E + instant) = 15 events.
	if st.Events != 15 {
		t.Errorf("events = %d, want 15", st.Events)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Config{Writer: &buf, Clock: fixedClock()})
	root := tr.Begin("session.round", Attrs{"seed": 1, "truth": []any{
		map[string]any{"id": 0, "dist_m": 3.5},
	}})
	root.Event("note", nil)
	root.EndWith(Attrs{"status": "ok"})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d JSONL lines, want 3", len(lines))
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Errorf("invalid JSON line %q", line)
		}
	}
	evs2, err := ReadEvents(strings.NewReader(strings.Join(lines, "\n") + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs2) != 3 {
		t.Fatalf("ReadEvents: reparsed %d events, want 3", len(evs2))
	}
	if evs2[0].Name != "session.round" || evs2[0].Attrs["seed"] != float64(1) {
		t.Errorf("round-tripped begin = %+v", evs2[0])
	}
	truth, ok := evs2[0].Attrs["truth"].([]any)
	if !ok || len(truth) != 1 {
		t.Fatalf("truth attr did not round-trip: %#v", evs2[0].Attrs["truth"])
	}
	if evs2[2].Attrs["status"] != "ok" {
		t.Errorf("end attrs = %+v", evs2[2].Attrs)
	}
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	if _, err := ReadEvents(strings.NewReader("{\"seq\":1}\nnot json\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := New(Config{Clock: fixedClock()})
	root := tr.Begin("session.round", Attrs{"seed": 4})
	det := root.Begin("detect", nil)
	det.Event("detect.round", Attrs{"round": 0})
	det.EndWith(Attrs{"responses": 2})
	root.End()
	orphan := tr.Begin("sim.round", nil) // left open: truncated trace
	_ = orphan

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	// 2 closed spans + 1 instant + 1 force-closed open span.
	if len(out.TraceEvents) != 4 {
		t.Fatalf("got %d chrome events, want 4: %v", len(out.TraceEvents), out.TraceEvents)
	}
	byName := map[string]map[string]any{}
	for _, ev := range out.TraceEvents {
		byName[ev["name"].(string)] = ev
	}
	if byName["detect"]["ph"] != "X" {
		t.Errorf("detect span phase = %v, want X", byName["detect"]["ph"])
	}
	// The detect slice inherits the root span's track and merges end attrs.
	if byName["detect"]["tid"] != byName["session.round"]["tid"] {
		t.Errorf("detect tid %v != session tid %v", byName["detect"]["tid"], byName["session.round"]["tid"])
	}
	args := byName["detect"]["args"].(map[string]any)
	if args["responses"] != float64(2) {
		t.Errorf("detect args = %v", args)
	}
	if byName["detect.round"]["ph"] != "i" {
		t.Errorf("instant phase = %v", byName["detect.round"]["ph"])
	}
	if byName["sim.round"]["ph"] != "X" {
		t.Errorf("orphan span phase = %v, want force-closed X", byName["sim.round"]["ph"])
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New(Config{RingSize: 128})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				sp := tr.Begin("w", Attrs{"g": g})
				sp.Event("e", nil)
				sp.End()
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := tr.Stats().Events; got != 8*50*3 {
		t.Errorf("events = %d, want %d", got, 8*50*3)
	}
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("ring not in emission order at %d: %d -> %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}
