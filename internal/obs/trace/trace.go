// Package trace is the repository's detection flight recorder: a sampled
// span/event tracer that records *why* each search-and-subtract detection
// accepted or rejected every candidate path, with enough protocol context
// (trial seed, responder ground truth, RPM slot, pulse-shape ID) that a
// single failed round of a million-trial campaign can be replayed and
// explained after the fact.
//
// The same contract as the obs.Recorder metrics layer applies, extended to
// spans:
//
//   - A nil *Tracer means "disabled". Every method is nil-safe, so
//     instrumented components hold a *Tracer (or a *Span handed to them)
//     and pay exactly one pointer check per recording site when tracing is
//     off — and zero allocations, because callers guard attribute
//     construction behind Span.Recording.
//   - Tracing is strictly observational: nothing the tracer returns can
//     influence the traced computation, so results are bit-identical with
//     and without a tracer attached.
//   - A Tracer is safe for concurrent use; parallel campaign workers all
//     record into one sink.
//
// Events stream to an optional JSONL writer and accumulate in a bounded
// ring buffer that keeps the most recent events (the "flight recorder"
// part: on a million-trial campaign the ring holds the tail, the JSONL
// stream holds everything that was sampled). Root-span sampling
// (Config.SampleEvery) bounds trace volume: an unsampled root span and
// every descendant record nothing.
package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"

	"github.com/uwb-sim/concurrent-ranging/internal/obs"
)

// Metric names the tracer mirrors into an attached Recorder (SetMetrics),
// so live dashboards can watch span/event volume — a per-name breakdown
// of what the flight recorder is seeing — without draining the ring.
const (
	// MetricSpans counts spans opened (labeled by span name when the
	// Recorder supports labeled series).
	MetricSpans = "trace.spans"
	// MetricEvents counts instant events recorded (labeled by event
	// name).
	MetricEvents = "trace.events"
	// MetricSampledOut counts root spans dropped by sampling.
	MetricSampledOut = "trace.sampled_out"
)

// Attrs carries the structured payload of a span or event. Values must be
// JSON-encodable; numbers round-trip through float64 on the analyzer side.
type Attrs map[string]any

// Phases of an Event, following the Chrome trace-event convention.
const (
	// PhaseBegin opens a span.
	PhaseBegin = "B"
	// PhaseEnd closes a span.
	PhaseEnd = "E"
	// PhaseInstant is a point event inside a span.
	PhaseInstant = "I"
)

// Event is one flight-recorder record. The JSONL stream is one Event per
// line; map keys inside Attrs are JSON-encoded in sorted order, so a trace
// of a deterministic workload is deterministic up to the TS timestamps.
type Event struct {
	// Seq is the tracer-wide emission sequence number (starting at 1).
	Seq uint64 `json:"seq"`
	// TS is the event time in seconds since the tracer was created
	// (monotonic; the only wall-clock-derived field).
	TS float64 `json:"ts"`
	// Span is the ID of the owning span.
	Span uint64 `json:"span,omitempty"`
	// Parent is the enclosing span's ID, set on PhaseBegin events only
	// (zero for root spans).
	Parent uint64 `json:"parent,omitempty"`
	// Phase is PhaseBegin, PhaseEnd, or PhaseInstant.
	Phase string `json:"ph"`
	// Name is the span kind (begin/end) or event kind (instant); the
	// canonical names live in schema.go.
	Name string `json:"name"`
	// Attrs is the structured payload.
	Attrs Attrs `json:"attrs,omitempty"`
}

// DefaultRingSize is the bounded in-memory event buffer size.
const DefaultRingSize = 4096

// Config parameterizes a Tracer.
type Config struct {
	// Writer, when non-nil, receives every recorded event as one JSON
	// line. The tracer buffers; call Flush before reading the sink.
	Writer io.Writer
	// RingSize bounds the in-memory buffer of most-recent events.
	// 0 selects DefaultRingSize; negative disables the ring entirely.
	RingSize int
	// SampleEvery keeps one of every N root spans (and everything nested
	// under them); the rest record nothing. 0 or 1 keeps all. Sampling is
	// deterministic (a modular counter, not a random draw), so equal-seed
	// runs produce identical traces.
	SampleEvery int
	// Clock overrides the event timestamp source with a function
	// returning seconds; nil uses monotonic time since New. Tests use it
	// to pin timestamps.
	Clock func() float64
}

// Tracer records spans and events. Use New; the zero value is not usable
// (but a nil *Tracer is the canonical "disabled" state).
type Tracer struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	enc     *json.Encoder
	ring    []Event
	head    int // next write position
	count   int // valid events in ring
	seq     uint64
	spanSeq uint64
	roots   uint64
	sample  int
	clock   func() float64
	emitted uint64
	skipped uint64 // root spans dropped by sampling
	werr    error

	// Metric mirror (SetMetrics). When the Recorder supports labeled
	// series the tracer resolves one counter child per span/event name
	// and caches it here; otherwise it falls back to the unlabeled
	// family totals. All access is under mu.
	rec        obs.Recorder
	spanVec    *obs.CounterVec
	eventVec   *obs.CounterVec
	sampledOut *obs.Counter
	spanCtrs   map[string]*obs.Counter
	eventCtrs  map[string]*obs.Counter
}

// SetMetrics mirrors the tracer's span/event volume into rec as the
// trace.* counter families, so a live dashboard can watch what the
// flight recorder is seeing without draining the ring. When rec is an
// obs.VecSource (the Registry is), spans and events are labeled by name;
// otherwise only the unlabeled totals are counted. Passing nil detaches
// the mirror. Mirroring is observational only: sampling decisions and
// recorded events are identical with or without it.
func (t *Tracer) SetMetrics(rec obs.Recorder) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rec = rec
	t.spanVec, t.eventVec, t.sampledOut = nil, nil, nil
	t.spanCtrs, t.eventCtrs = nil, nil
	if rec == nil {
		return
	}
	if vs, ok := rec.(obs.VecSource); ok {
		t.spanVec = vs.CounterVec(MetricSpans, "name")
		t.eventVec = vs.CounterVec(MetricEvents, "name")
	}
	if reg, ok := rec.(*obs.Registry); ok {
		t.sampledOut = reg.Counter(MetricSampledOut)
	}
	t.spanCtrs = make(map[string]*obs.Counter)
	t.eventCtrs = make(map[string]*obs.Counter)
}

// countSpan bumps the span mirror counter. Callers hold t.mu.
func (t *Tracer) countSpan(name string) {
	if t.rec == nil {
		return
	}
	if t.spanVec != nil {
		ctr := t.spanCtrs[name]
		if ctr == nil {
			ctr = t.spanVec.With(name) //lint:allow hotlabel span names are unbounded, so the handle is resolved once per name into spanCtrs, a cache guarded by t.mu
			t.spanCtrs[name] = ctr
		}
		ctr.Inc()
		return
	}
	t.rec.Count(MetricSpans, 1)
}

// countEvent bumps the event mirror counter. Callers hold t.mu.
func (t *Tracer) countEvent(name string) {
	if t.rec == nil {
		return
	}
	if t.eventVec != nil {
		ctr := t.eventCtrs[name]
		if ctr == nil {
			ctr = t.eventVec.With(name) //lint:allow hotlabel event names are unbounded, so the handle is resolved once per name into eventCtrs, a cache guarded by t.mu
			t.eventCtrs[name] = ctr
		}
		ctr.Inc()
		return
	}
	t.rec.Count(MetricEvents, 1)
}

// countSampledOut bumps the sampled-out mirror counter. Callers hold
// t.mu.
func (t *Tracer) countSampledOut() {
	if t.rec == nil {
		return
	}
	if t.sampledOut != nil {
		t.sampledOut.Inc()
		return
	}
	t.rec.Count(MetricSampledOut, 1)
}

// New builds a tracer. See Config for the knobs.
func New(cfg Config) *Tracer {
	t := &Tracer{sample: cfg.SampleEvery, clock: cfg.Clock}
	if t.sample < 1 {
		t.sample = 1
	}
	if t.clock == nil {
		start := time.Now()
		t.clock = func() float64 { return time.Since(start).Seconds() }
	}
	size := cfg.RingSize
	if size == 0 {
		size = DefaultRingSize
	}
	if size > 0 {
		t.ring = make([]Event, size)
	}
	if cfg.Writer != nil {
		t.bw = bufio.NewWriter(cfg.Writer)
		t.enc = json.NewEncoder(t.bw)
	}
	return t
}

// Span is a handle to an open span. A nil *Span, and any span under an
// unsampled root, records nothing; both are safe to use. Spans are not
// goroutine-safe — hand each goroutine its own child span.
type Span struct {
	t  *Tracer // nil marks the shared unsampled sentinel
	id uint64
}

// unsampled is the inert span returned under an unsampled root, so call
// sites can nest unconditionally without re-checking sampling.
var unsampled = &Span{}

// Begin opens a root span. Sampling applies here and only here: one of
// every SampleEvery root spans records; the others return an inert span.
// A nil tracer returns nil (also inert).
func (t *Tracer) Begin(name string, attrs Attrs) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.roots++
	if t.sample > 1 && (t.roots-1)%uint64(t.sample) != 0 {
		t.skipped++
		t.countSampledOut()
		return unsampled
	}
	t.spanSeq++
	id := t.spanSeq
	t.emit(Event{Span: id, Phase: PhaseBegin, Name: name, Attrs: attrs})
	return &Span{t: t, id: id}
}

// Recording reports whether events recorded on this span are kept. Callers
// use it to skip building attribute maps when tracing is off or the root
// was not sampled — that guard is what keeps disabled tracing
// allocation-free.
func (s *Span) Recording() bool { return s != nil && s.t != nil }

// ID returns the span's ID, or 0 for an inert span.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Begin opens a child span. Children of inert spans are inert.
func (s *Span) Begin(name string, attrs Attrs) *Span {
	if s == nil {
		return nil
	}
	if s.t == nil {
		return unsampled
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spanSeq++
	id := t.spanSeq
	t.emit(Event{Span: id, Parent: s.id, Phase: PhaseBegin, Name: name, Attrs: attrs})
	return &Span{t: t, id: id}
}

// Event records an instant event inside the span.
func (s *Span) Event(name string, attrs Attrs) {
	if s == nil || s.t == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	s.t.emit(Event{Span: s.id, Phase: PhaseInstant, Name: name, Attrs: attrs})
}

// End closes the span.
func (s *Span) End() { s.EndWith(nil) }

// EndWith closes the span with result attributes (outcome, error, counts).
func (s *Span) EndWith(attrs Attrs) {
	if s == nil || s.t == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	s.t.emit(Event{Span: s.id, Phase: PhaseEnd, Name: "", Attrs: attrs})
}

// emit stamps and stores one event. Callers hold t.mu.
func (t *Tracer) emit(ev Event) {
	t.seq++
	ev.Seq = t.seq
	ev.TS = t.clock()
	t.emitted++
	switch ev.Phase {
	case PhaseBegin:
		t.countSpan(ev.Name)
	case PhaseInstant:
		t.countEvent(ev.Name)
	}
	if len(t.ring) > 0 {
		t.ring[t.head] = ev
		t.head = (t.head + 1) % len(t.ring)
		if t.count < len(t.ring) {
			t.count++
		}
	}
	if t.enc != nil && t.werr == nil {
		t.werr = t.enc.Encode(ev)
	}
}

// Events returns a copy of the ring buffer — the most recent events, in
// emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.count)
	start := t.head - t.count
	for i := 0; i < t.count; i++ {
		out = append(out, t.ring[(start+i+len(t.ring))%len(t.ring)])
	}
	return out
}

// Stats summarizes what the tracer has done so far.
type Stats struct {
	// Events is the number of events recorded (ring + stream).
	Events uint64
	// RootSpans is the number of root spans started (sampled or not).
	RootSpans uint64
	// SampledOut is the number of root spans dropped by sampling.
	SampledOut uint64
}

// Stats returns the tracer's counters.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stats{Events: t.emitted, RootSpans: t.roots, SampledOut: t.skipped}
}

// Flush drains the JSONL writer's buffer and returns the first write error
// encountered by any emission so far. Call it before reading the sink (and
// before process exit).
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.bw != nil {
		if err := t.bw.Flush(); err != nil && t.werr == nil {
			t.werr = err
		}
	}
	return t.werr
}

// ReadEvents parses a JSONL trace stream written through Config.Writer.
// Empty lines are skipped; a malformed line is an error.
func ReadEvents(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, err
		}
		out = append(out, ev)
	}
}
