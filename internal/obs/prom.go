package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Prometheus text exposition format version this
// package writes.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName mangles a dotted metric name into the Prometheus name
// charset: [a-zA-Z_:][a-zA-Z0-9_:]*. Dots (and anything else outside the
// charset) become underscores.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a sample value; Prometheus spells infinities +Inf /
// -Inf.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabels renders a label set ({k="v",...}), appending extra to the
// series' own labels. Values are escaped per the exposition format.
func promLabels(labels []Label, extra ...Label) string {
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promName(l.Key))
		b.WriteString(`="`)
		b.WriteString(promEscape(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// promFamily is one exposition family being assembled: HELP/TYPE header
// plus its rendered sample lines.
type promFamily struct {
	name  string // mangled
	help  string // original dotted name doubles as the docstring
	typ   string
	lines []string
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format: one HELP/TYPE-headed family per metric name, families sorted
// by name, histogram series expanded into cumulative _bucket/_sum/_count
// lines. Window rings are not exported — they are a snapshot-JSON /
// crtop concern; Prometheus derives rates and quantiles server-side.
func WritePrometheus(w io.Writer, snap Snapshot) error {
	byName := map[string]*promFamily{}
	family := func(dotted, typ string) (*promFamily, error) {
		name := promName(dotted)
		f, ok := byName[name]
		if !ok {
			f = &promFamily{name: name, help: dotted, typ: typ}
			byName[name] = f
			return f, nil
		}
		if f.typ != typ {
			return nil, fmt.Errorf("obs: metric %q exported as both %s and %s", dotted, f.typ, typ)
		}
		return f, nil
	}

	for _, c := range snap.Counters {
		f, err := family(c.Name, "counter")
		if err != nil {
			return err
		}
		f.lines = append(f.lines, fmt.Sprintf("%s%s %d", f.name, promLabels(c.Labels), c.Value))
	}
	for _, g := range snap.Gauges {
		f, err := family(g.Name, "gauge")
		if err != nil {
			return err
		}
		f.lines = append(f.lines, fmt.Sprintf("%s%s %s", f.name, promLabels(g.Labels), promFloat(g.Value)))
	}
	for _, h := range snap.Histograms {
		f, err := family(h.Name, "histogram")
		if err != nil {
			return err
		}
		var cum int64
		for _, b := range h.Buckets {
			if b.Overflow {
				continue
			}
			cum += b.Count
			f.lines = append(f.lines, fmt.Sprintf("%s_bucket%s %d",
				f.name, promLabels(h.Labels, Label{Key: "le", Value: promFloat(b.UpperBound)}), cum))
		}
		f.lines = append(f.lines, fmt.Sprintf("%s_bucket%s %d",
			f.name, promLabels(h.Labels, Label{Key: "le", Value: "+Inf"}), h.Count))
		f.lines = append(f.lines, fmt.Sprintf("%s_sum%s %s", f.name, promLabels(h.Labels), promFloat(h.Sum)))
		f.lines = append(f.lines, fmt.Sprintf("%s_count%s %d", f.name, promLabels(h.Labels), h.Count))
	}

	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := byName[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// GoRuntimeSnapshot samples the Go runtime into an ordinary metrics
// snapshot, so the same exposition path serves process health (heap, GC,
// goroutines) next to the campaign metrics.
func GoRuntimeSnapshot() Snapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return Snapshot{
		Counters: []CounterSnapshot{
			{Name: "go.gc_cycles_total", Value: int64(ms.NumGC)},
			{Name: "go.memstats.total_alloc_bytes", Value: int64(ms.TotalAlloc)},
		},
		Gauges: []GaugeSnapshot{
			{Name: "go.gc_pause_total_seconds", Value: float64(ms.PauseTotalNs) / 1e9},
			{Name: "go.goroutines", Value: float64(runtime.NumGoroutine())},
			{Name: "go.memstats.heap_alloc_bytes", Value: float64(ms.HeapAlloc)},
			{Name: "go.memstats.heap_objects", Value: float64(ms.HeapObjects)},
			{Name: "go.memstats.sys_bytes", Value: float64(ms.Sys)},
		},
	}
}

// MetricsHandler serves the registry (plus the Go runtime collector) in
// the Prometheus text exposition format — the /metrics endpoint of
// ServeDebug. A nil registry serves the runtime families alone.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var snap Snapshot
		if reg != nil {
			snap = reg.Snapshot()
		}
		rt := GoRuntimeSnapshot()
		snap.Counters = append(snap.Counters, rt.Counters...)
		snap.Gauges = append(snap.Gauges, rt.Gauges...)
		w.Header().Set("Content-Type", PromContentType)
		if err := WritePrometheus(w, snap); err != nil {
			// Headers are gone; all we can do is abort the body.
			return
		}
	})
}

// SnapshotHandler serves the registry's live snapshot (including window
// rings) as JSON — the machine endpoint crtop polls. A nil registry
// serves an empty snapshot.
func SnapshotHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var snap Snapshot
		if reg != nil {
			snap = reg.Snapshot()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap) //nolint:errcheck // client hangup mid-scrape is not actionable
	})
}
