package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// fetch GETs a path from the debug server and returns status + body.
func fetch(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeDebugExposesPprofAndExpvar(t *testing.T) {
	reg := NewRegistry()
	reg.Count("sim.frames_on_air", 7)
	reg.Observe("detector.iterations", 3)

	srv, err := ServeDebug("localhost:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr
	if !strings.Contains(addr, ":") {
		t.Fatalf("bound address %q has no port", addr)
	}

	// pprof index and a concrete profile endpoint respond.
	if code, body := fetch(t, addr, "/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: status %d, body %.80q", code, body)
	}
	if code, _ := fetch(t, addr, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("pprof cmdline: status %d", code)
	}

	// /debug/vars carries the registry snapshot under "crmetrics".
	code, body := fetch(t, addr, "/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("expvar: status %d", code)
	}
	var vars struct {
		Crmetrics Snapshot `json:"crmetrics"`
	}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("expvar body is not JSON: %v", err)
	}
	if got := vars.Crmetrics.CounterValue("sim.frames_on_air"); got != 7 {
		t.Errorf("crmetrics counter = %d, want 7", got)
	}
	if _, ok := vars.Crmetrics.HistogramByName("detector.iterations"); !ok {
		t.Errorf("crmetrics missing detector.iterations histogram: %s", body)
	}

	// The snapshot is live, not a publish-time copy.
	reg.Count("sim.frames_on_air", 3)
	if _, body := fetch(t, addr, "/debug/vars"); !strings.Contains(body, `"value": 10`) &&
		!strings.Contains(body, `"value":10`) {
		t.Errorf("expvar snapshot did not follow the registry: %s", body)
	}
}

func TestPublishExpvarRebindsRegistry(t *testing.T) {
	first := NewRegistry()
	first.Count("sim.frames_on_air", 1)
	// Must not panic on repeated calls (expvar.Publish would).
	PublishExpvar(first)
	PublishExpvar(first)

	second := NewRegistry()
	second.Count("sim.frames_on_air", 99)
	PublishExpvar(second)

	srv, err := ServeDebug("localhost:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, body := fetch(t, srv.Addr, "/debug/vars")
	var vars struct {
		Crmetrics Snapshot `json:"crmetrics"`
	}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatal(err)
	}
	if got := vars.Crmetrics.CounterValue("sim.frames_on_air"); got != 99 {
		t.Errorf("crmetrics bound to stale registry: counter = %d, want 99", got)
	}
}

func TestServeDebugMetricsEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Watch("sim.frames_on_air", WindowConfig{})
	reg.Count("sim.frames_on_air", 7)

	srv, err := ServeDebug("localhost:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// /metrics serves a checker-clean Prometheus exposition.
	code, body := fetch(t, srv.Addr, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	if err := CheckPrometheusText(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics scrape invalid: %v\n%s", err, body)
	}
	if !strings.Contains(body, "sim_frames_on_air 7") {
		t.Errorf("/metrics missing registry counter:\n%s", body)
	}

	// /debug/metrics.json decodes into a Snapshot, windows included.
	code, body = fetch(t, srv.Addr, "/debug/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/debug/metrics.json: status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/debug/metrics.json is not a Snapshot: %v", err)
	}
	if snap.CounterValue("sim.frames_on_air") != 7 {
		t.Errorf("decoded counter = %d, want 7", snap.CounterValue("sim.frames_on_air"))
	}
	if _, ok := snap.WindowByName("sim.frames_on_air"); !ok {
		t.Errorf("snapshot endpoint dropped the watched window:\n%s", body)
	}
}

func TestServeDebugCloseFreesPort(t *testing.T) {
	srv, err := ServeDebug("localhost:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The exact address must be bindable again once the handle is closed.
	again, err := ServeDebug(addr, nil)
	if err != nil {
		t.Fatalf("rebinding %s after Close: %v", addr, err)
	}
	defer again.Close()
	if _, err := http.Get("http://" + addr + "/metrics"); err != nil {
		t.Fatalf("rebound server unreachable: %v", err)
	}
}

func TestServeDebugBadAddress(t *testing.T) {
	if _, err := ServeDebug("256.0.0.1:bogus", NewRegistry()); err == nil {
		t.Fatal("nonsense address accepted")
	}
}

func TestServeDebugNilRegistry(t *testing.T) {
	srv, err := ServeDebug("localhost:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _ := fetch(t, srv.Addr, "/debug/vars"); code != http.StatusOK {
		t.Errorf("expvar without registry: status %d", code)
	}
	if code, _ := fetch(t, srv.Addr, "/metrics"); code != http.StatusOK {
		t.Errorf("/metrics without registry: status %d", code)
	}
}
