package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Window defaults: ten one-second windows, enough for "what happened over
// the last 10 s" dashboards without holding meaningful history in RAM.
const (
	DefaultWindowWidth = time.Second
	DefaultWindowCount = 10
)

// WindowConfig parameterizes a metric's time-series ring.
type WindowConfig struct {
	// Width is one window's duration; 0 selects DefaultWindowWidth.
	Width time.Duration
	// Windows is the ring length (how many windows of history are kept);
	// 0 selects DefaultWindowCount.
	Windows int
	// Buckets is the histogram bucket layout used for moving quantiles;
	// nil selects DefaultBuckets.
	Buckets []float64
	// Clock overrides the wall-clock source; nil uses time.Now. Tests
	// use it to pin window boundaries.
	Clock func() time.Time
}

// windowSlot is one fixed-width window's accumulation.
type windowSlot struct {
	epoch   int64 // aligned window index since the UNIX epoch; -1 = empty
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets []int64 // len(bounds)+1, last = overflow
}

func (s *windowSlot) reset(epoch int64) {
	s.epoch = epoch
	s.count = 0
	s.sum = 0
	s.min = math.Inf(1)
	s.max = math.Inf(-1)
	for i := range s.buckets {
		s.buckets[i] = 0
	}
}

// Window is a ring of the last N fixed-width windows of one metric's
// observations, exposing live rates and moving quantiles. Values land in
// the window covering their arrival time; windows older than the ring
// length are forgotten. All methods are safe for concurrent use.
//
// Windows are wall-clock-driven by construction, so everything they
// export is a wall-time-class quantity: RunReport.StripWallTime drops
// every window from a snapshot before determinism comparisons.
type Window struct {
	width  time.Duration
	bounds []float64
	clock  func() time.Time

	mu    sync.Mutex
	slots []windowSlot
}

// NewWindow builds a standalone window ring; Registry.Watch is the usual
// entry point, which also feeds the ring from the registry's Count and
// Observe calls.
func NewWindow(cfg WindowConfig) *Window {
	if cfg.Width <= 0 {
		cfg.Width = DefaultWindowWidth
	}
	if cfg.Windows <= 0 {
		cfg.Windows = DefaultWindowCount
	}
	bounds := cfg.Buckets
	if len(bounds) == 0 {
		bounds = DefaultBuckets()
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	w := &Window{
		width:  cfg.Width,
		bounds: own,
		clock:  cfg.Clock,
		slots:  make([]windowSlot, cfg.Windows),
	}
	if w.clock == nil {
		w.clock = time.Now
	}
	for i := range w.slots {
		w.slots[i].buckets = make([]int64, len(own)+1)
		w.slots[i].reset(-1)
		w.slots[i].epoch = -1
	}
	return w
}

// Add records one value into the window covering the current instant.
// Counter mirrors add their delta (rates come from Sum); histogram
// mirrors add the observed value (rates come from Count, quantiles from
// the buckets).
func (w *Window) Add(v float64) {
	now := w.clock()
	w.mu.Lock()
	s := w.slot(now)
	s.count++
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.buckets[sort.SearchFloat64s(w.bounds, v)]++
	w.mu.Unlock()
}

// slot returns the ring slot for the given instant, resetting it if it
// still holds an expired window. Callers hold w.mu.
func (w *Window) slot(now time.Time) *windowSlot {
	epoch := now.UnixNano() / int64(w.width)
	s := &w.slots[int(epoch%int64(len(w.slots)))]
	if s.epoch != epoch {
		s.reset(epoch)
	}
	return s
}

// WindowPoint is one window of a time series, oldest-first in a
// WindowSnapshot. Age is the window's start, in seconds before the
// snapshot instant, so consumers can plot the series without sharing a
// clock with the producer.
type WindowPoint struct {
	AgeSeconds float64 `json:"age_seconds"`
	Count      int64   `json:"count"`
	Sum        float64 `json:"sum"`
}

// WindowSnapshot is a point-in-time copy of one metric's window ring.
// CountRatePerSecond and SumRatePerSecond are per-second rates over the ring's completed
// windows (falling back to the in-progress window when it is all there
// is); the quantiles are bucket-interpolated over every live window's
// observations, i.e. "p95 over the last N·width seconds".
type WindowSnapshot struct {
	Name               string        `json:"name"`
	WidthSeconds       float64       `json:"width_seconds"`
	Points             []WindowPoint `json:"points,omitempty"`
	CountRatePerSecond float64       `json:"count_rate_per_second"`
	SumRatePerSecond   float64       `json:"sum_rate_per_second"`
	P50                *float64      `json:"p50,omitempty"`
	P95                *float64      `json:"p95,omitempty"`
	P99                *float64      `json:"p99,omitempty"`
}

// Snapshot copies the ring's live windows out. The current (partial)
// window is included as the newest point.
func (w *Window) Snapshot(name string) WindowSnapshot {
	now := w.clock()
	nowEpoch := now.UnixNano() / int64(w.width)
	oldest := nowEpoch - int64(len(w.slots)) + 1

	snap := WindowSnapshot{Name: name, WidthSeconds: w.width.Seconds()}
	merged := HistogramSnapshot{}
	mergedBuckets := make([]int64, len(w.bounds)+1)
	min, max := math.Inf(1), math.Inf(-1)

	w.mu.Lock()
	var completeCount int64
	var completeSum float64
	completeWindows := 0
	for epoch := oldest; epoch <= nowEpoch; epoch++ {
		s := &w.slots[int(epoch%int64(len(w.slots)))]
		if s.epoch != epoch {
			continue
		}
		startAge := now.Sub(time.Unix(0, epoch*int64(w.width)))
		snap.Points = append(snap.Points, WindowPoint{
			AgeSeconds: startAge.Seconds(),
			Count:      s.count,
			Sum:        s.sum,
		})
		merged.Count += s.count
		merged.Sum += s.sum
		if s.count > 0 {
			if s.min < min {
				min = s.min
			}
			if s.max > max {
				max = s.max
			}
		}
		for i, n := range s.buckets {
			mergedBuckets[i] += n
		}
		if epoch < nowEpoch {
			completeWindows++
			completeCount += s.count
			completeSum += s.sum
		}
	}
	w.mu.Unlock()

	if completeWindows > 0 {
		span := float64(completeWindows) * w.width.Seconds()
		snap.CountRatePerSecond = float64(completeCount) / span
		snap.SumRatePerSecond = completeSum / span
	} else if len(snap.Points) > 0 {
		// Only the in-progress window exists; rate over its elapsed part.
		elapsed := now.Sub(time.Unix(0, nowEpoch*int64(w.width))).Seconds()
		if elapsed > 0 {
			last := snap.Points[len(snap.Points)-1]
			snap.CountRatePerSecond = float64(last.Count) / elapsed
			snap.SumRatePerSecond = last.Sum / elapsed
		}
	}

	if merged.Count > 0 {
		for i, n := range mergedBuckets {
			if n == 0 {
				continue
			}
			b := Bucket{Count: n}
			if i < len(w.bounds) {
				b.UpperBound = w.bounds[i]
			} else {
				b.Overflow = true
			}
			merged.Buckets = append(merged.Buckets, b)
		}
		merged.Min, merged.Max = &min, &max
		p50, p95, p99 := merged.Quantile(0.50), merged.Quantile(0.95), merged.Quantile(0.99)
		snap.P50, snap.P95, snap.P99 = &p50, &p95, &p99
	}
	return snap
}

// Watch attaches a window ring to the named metric: every subsequent
// Registry.Count delta and Registry.Observe value recorded under that
// name also lands in the ring, and the registry's Snapshot carries the
// ring's WindowSnapshot. Watching an already-watched name returns the
// existing ring unchanged. Note the feed point is the Registry's
// Recorder methods — series resolved directly from a vec bypass it.
func (r *Registry) Watch(name string, cfg WindowConfig) *Window {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.windows[name]; ok {
		return w
	}
	w := NewWindow(cfg)
	r.windows[name] = w
	return w
}

// window returns the ring watching name, or nil.
func (r *Registry) window(name string) *Window {
	r.mu.RLock()
	w := r.windows[name]
	r.mu.RUnlock()
	return w
}
