package obs

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestConcurrentScrapeWhileRecording hammers every debug endpoint while
// writer goroutines record through the full Recorder surface. Run with
// -race (CI does); the test's job is to surface data races between the
// scrape path (snapshots, exposition rendering) and live recording.
func TestConcurrentScrapeWhileRecording(t *testing.T) {
	reg := NewRegistry()
	reg.Watch("race.watched", WindowConfig{Width: 10 * time.Millisecond, Windows: 4})
	vec := reg.CounterVec("race.labeled", "worker")

	srv, err := ServeDebug("localhost:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const (
		writers  = 4
		scrapers = 2
		rounds   = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			child := vec.With(fmt.Sprint(id))
			for i := 0; i < rounds; i++ {
				reg.Count("race.watched", 1)
				reg.Count("race.unwatched", 2)
				reg.Observe("race.histogram", float64(i)*1e-4)
				reg.SetGauge("race.gauge", float64(i))
				child.Inc()
			}
		}(w)
	}
	scrape := func(path string) {
		defer wg.Done()
		client := &http.Client{Timeout: 5 * time.Second}
		for i := 0; i < rounds/10; i++ {
			resp, err := client.Get("http://" + srv.Addr + path)
			if err != nil {
				t.Errorf("GET %s: %v", path, err)
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
	}
	for s := 0; s < scrapers; s++ {
		wg.Add(3)
		go scrape("/metrics")
		go scrape("/debug/vars")
		go scrape("/debug/metrics.json")
	}
	wg.Wait()

	snap := reg.Snapshot()
	if got := snap.CounterValue("race.watched"); got != writers*rounds {
		t.Fatalf("race.watched = %d, want %d", got, writers*rounds)
	}
	if got := snap.CounterValue("race.labeled"); got != writers*rounds {
		t.Fatalf("race.labeled family sum = %d, want %d", got, writers*rounds)
	}
	h, ok := snap.HistogramByName("race.histogram")
	if !ok || h.Count != writers*rounds {
		t.Fatalf("race.histogram = %+v, want count %d", h, writers*rounds)
	}
}
