package obs

import (
	"math"
	"sort"
	"testing"
)

// Golden quantile values for a hand-computable histogram. The bucket
// interpolation is deterministic, so these are exact expectations, not
// tolerances-around-a-sample.
func TestHistogramQuantilesGolden(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5, 10})
	// 10 observations: 4 in (0,1], 3 in (1,2], 2 in (2,5], 1 in (5,10].
	for _, v := range []float64{0.2, 0.4, 0.6, 0.8, 1.2, 1.5, 1.8, 3, 4, 8} {
		h.Observe(v)
	}
	s := h.snapshot("q")
	cases := []struct {
		q    float64
		want float64
	}{
		// rank 5 falls in the (1,2] bucket holding ranks 5-7:
		// 1 + (5-4)/3 * (2-1).
		{0.50, 1 + 1.0/3},
		// rank 9.5 falls in the (5,10] bucket (ranks 10): upper clamps
		// to max 8: 5 + (9.5-9)/1 * (8-5).
		{0.95, 6.5},
		// rank 9.9: 5 + 0.9*(8-5).
		{0.99, 7.7},
		// Extremes pin to the observed range.
		{0, 0.2},
		{1, 8},
	}
	for _, tc := range cases {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	// The snapshot exports the same three estimates.
	if *s.P50 != s.Quantile(0.50) || *s.P95 != s.Quantile(0.95) || *s.P99 != s.Quantile(0.99) {
		t.Errorf("exported quantiles %g/%g/%g disagree with Quantile", *s.P50, *s.P95, *s.P99)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
	// Single observation: every quantile is that value (interpolation
	// clamps to min == max).
	h := NewHistogram([]float64{1, 10})
	h.Observe(3)
	s := h.snapshot("one")
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := s.Quantile(q); got != 3 {
			t.Errorf("single-value Quantile(%g) = %g, want 3", q, got)
		}
	}
	// Everything in the overflow bucket: quantiles report max.
	h2 := NewHistogram([]float64{1})
	h2.Observe(50)
	h2.Observe(70)
	if got := h2.snapshot("ovf").Quantile(0.5); got != 70 {
		t.Errorf("overflow-bucket quantile = %g, want 70", got)
	}
}

// linearBucket is the pre-optimization reference implementation of the
// Observe bucket search.
func linearBucket(bounds []float64, v float64) int {
	idx := len(bounds)
	for i, b := range bounds {
		if v <= b {
			idx = i
			break
		}
	}
	return idx
}

// The binary search must pick the same bucket as the old linear scan for
// every value, including exact bound hits, extremes, and NaN.
func TestObserveBucketMatchesLinearScan(t *testing.T) {
	bounds := DefaultBuckets()
	vals := []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1), 1e-9, 1e9}
	vals = append(vals, bounds...)
	for _, b := range bounds {
		vals = append(vals, math.Nextafter(b, 0), math.Nextafter(b, math.Inf(1)))
	}
	for _, v := range vals {
		want := linearBucket(bounds, v)
		got := sort.SearchFloat64s(bounds, v)
		if got != want {
			t.Errorf("bucket(%g) = %d, linear reference %d", v, got, want)
		}
	}
}

// benchValues spreads observations log-uniformly across the default
// buckets, so the linear reference pays its average cost (half the 37
// bounds) rather than an unrepresentative first-bucket exit.
func benchValues(n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Pow(10, -6+12*float64(i)/float64(n))
	}
	return vals
}

func BenchmarkHistogramObserve(b *testing.B) {
	vals := benchValues(1024)
	b.Run("binary", func(b *testing.B) {
		h := NewHistogram(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(vals[i&1023])
		}
	})
	// The pre-optimization search in isolation, for the same value
	// stream; compare with BenchmarkBucketSearch/binary to see the
	// Observe win independent of the atomic-update cost both share.
	b.Run("linear-search-reference", func(b *testing.B) {
		bounds := DefaultBuckets()
		b.ReportAllocs()
		var sink int
		for i := 0; i < b.N; i++ {
			sink += linearBucket(bounds, vals[i&1023])
		}
		_ = sink
	})
}

func BenchmarkBucketSearch(b *testing.B) {
	bounds := DefaultBuckets()
	vals := benchValues(1024)
	b.Run("linear", func(b *testing.B) {
		var sink int
		for i := 0; i < b.N; i++ {
			sink += linearBucket(bounds, vals[i&1023])
		}
		_ = sink
	})
	b.Run("binary", func(b *testing.B) {
		var sink int
		for i := 0; i < b.N; i++ {
			sink += sort.SearchFloat64s(bounds, vals[i&1023])
		}
		_ = sink
	})
}
