package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"
)

// ReportSchemaVersion identifies the RunReport JSON layout. Bump it on any
// incompatible change so downstream consumers (the BENCH_*.json perf
// trajectory, CI report checks) can detect what they are reading.
const ReportSchemaVersion = 1

// RunReport is the machine-readable result of one tool invocation:
// what ran, how long each part took, the full metrics snapshot, and the
// Go runtime's view of the process. Everything except the fields listed
// in StripWallTime is deterministic for a fixed seed and trial count.
type RunReport struct {
	// Schema is ReportSchemaVersion.
	Schema int `json:"schema"`
	// Tool names the producing command (e.g. "crbench").
	Tool string `json:"tool"`
	// Seed and Trials echo the run's -seed and -trials flags
	// (Trials 0 = each experiment's paper-faithful default).
	Seed   uint64 `json:"seed"`
	Trials int    `json:"trials"`
	// GoVersion, GOOS, GOARCH, NumCPU, and GOMAXPROCS describe the host.
	// GOMAXPROCS is the effective parallelism at run time (what the
	// detector's template fan-out actually gets), which NumCPU alone
	// cannot tell on a capped container.
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
	// StartTime is the wall-clock start in RFC 3339 (wall-time field).
	StartTime string `json:"start_time,omitempty"`
	// WallSeconds is the total elapsed time (wall-time field).
	WallSeconds float64 `json:"wall_seconds"`
	// Experiments holds one entry per experiment, in execution order.
	Experiments []ExperimentReport `json:"experiments"`
	// Metrics is the registry snapshot at the end of the run.
	Metrics Snapshot `json:"metrics"`
	// Runtime samples the Go runtime at the end of the run
	// (wall-time-class field: allocation totals vary with scheduling).
	Runtime RuntimeStats `json:"runtime"`
}

// ExperimentReport is one experiment's share of a run.
type ExperimentReport struct {
	// Name is the experiment's crbench name (e.g. "sec5").
	Name string `json:"name"`
	// WallSeconds is the experiment's elapsed time (wall-time field).
	WallSeconds float64 `json:"wall_seconds"`
	// OutputBytes sizes the rendered table/figure text.
	OutputBytes int `json:"output_bytes"`
	// CIRsPerSecond is the batch-detection throughput measured by the
	// experiment, when it ran one (wall-time-class field; 0 = not
	// measured). reportcheck -compare gates on it like wall time.
	CIRsPerSecond float64 `json:"cirs_per_second,omitempty"`
	// EventsPerSecond is the sharded-engine event throughput measured by
	// the experiment, when it ran a swarm simulation (wall-time-class
	// field; 0 = not measured). reportcheck -compare gates on it like
	// CIRsPerSecond.
	EventsPerSecond float64 `json:"events_per_second,omitempty"`
	// RoundsPerSecond is the matching ranging-round completion rate
	// (wall-time-class field; 0 = not measured).
	RoundsPerSecond float64 `json:"rounds_per_second,omitempty"`
	// EngineParallelEfficiency through EngineCriticalShardPct are the
	// sharded-engine scaling diagnosis measured by an attached
	// sim.EngineProfiler, when the experiment ran one (all
	// wall-time-class fields; zero = not profiled). Efficiency is shard
	// busy time over worker-pool capacity in [0, 1]; the stall and drain
	// percentages break down where the remaining wall time went (barrier
	// waits as a share of pool capacity, bus drains as a share of engine
	// wall time); the critical shard is the busiest shard and its share of
	// total busy time in percent.
	EngineParallelEfficiency float64 `json:"engine_parallel_efficiency,omitempty"`
	EngineBarrierStallPct    float64 `json:"engine_barrier_stall_pct,omitempty"`
	EngineDrainPct           float64 `json:"engine_drain_pct,omitempty"`
	EngineCriticalShard      int     `json:"engine_critical_shard,omitempty"`
	EngineCriticalShardPct   float64 `json:"engine_critical_shard_pct,omitempty"`
}

// RuntimeStats is a small, stable subset of runtime.MemStats.
type RuntimeStats struct {
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	NumGC           uint32 `json:"num_gc"`
	NumGoroutine    int    `json:"num_goroutine"`
}

// NewRunReport starts a report for the named tool and stamps the host
// fields and start time.
func NewRunReport(tool string, seed uint64, trials int) *RunReport {
	return &RunReport{
		Schema:     ReportSchemaVersion,
		Tool:       tool,
		Seed:       seed,
		Trials:     trials,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		StartTime:  time.Now().UTC().Format(time.RFC3339),
	}
}

// Finish attaches the metrics snapshot, total wall time, and runtime
// sample.
func (r *RunReport) Finish(metrics Snapshot, wall time.Duration) {
	r.Metrics = metrics
	r.WallSeconds = wall.Seconds()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Runtime = RuntimeStats{
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		NumGC:           ms.NumGC,
		NumGoroutine:    runtime.NumGoroutine(),
	}
}

// WallTimeMetricSuffix marks metric names that carry wall-clock durations
// (e.g. "experiments.trial_seconds"): everything else in a snapshot is
// deterministic for a fixed seed.
const WallTimeMetricSuffix = "_seconds"

// LiveMetricSuffix marks metrics that exist only to drive live dashboards
// (e.g. the campaign progress gauges crtop reads). Their values race
// between concurrent workers by design, so StripWallTime removes them
// like wall-time metrics.
const LiveMetricSuffix = "_live"

// strippedMetric reports whether a metric name is removed by
// StripWallTime.
func strippedMetric(name string) bool {
	return strings.HasSuffix(name, WallTimeMetricSuffix) || strings.HasSuffix(name, LiveMetricSuffix)
}

// StripWallTime returns a deep copy of the report with every
// non-deterministic field zeroed: start time, wall times, runtime stats,
// every window ring (windows are wall-clock-bucketed by construction),
// and any metric whose name ends in WallTimeMetricSuffix or
// LiveMetricSuffix. Two runs with the same seed, trials, and experiment
// list must produce byte-identical JSON for the stripped report — the
// determinism contract crbench's tests enforce.
func (r *RunReport) StripWallTime() *RunReport {
	out := *r
	out.StartTime = ""
	out.WallSeconds = 0
	out.Runtime = RuntimeStats{}
	out.Experiments = make([]ExperimentReport, len(r.Experiments))
	for i, e := range r.Experiments {
		e.WallSeconds = 0
		e.CIRsPerSecond = 0
		e.EventsPerSecond = 0
		e.RoundsPerSecond = 0
		e.EngineParallelEfficiency = 0
		e.EngineBarrierStallPct = 0
		e.EngineDrainPct = 0
		e.EngineCriticalShard = 0
		e.EngineCriticalShardPct = 0
		out.Experiments[i] = e
	}
	m := Snapshot{}
	for _, c := range r.Metrics.Counters {
		if !strippedMetric(c.Name) {
			m.Counters = append(m.Counters, c)
		}
	}
	for _, g := range r.Metrics.Gauges {
		if !strippedMetric(g.Name) {
			m.Gauges = append(m.Gauges, g)
		}
	}
	for _, h := range r.Metrics.Histograms {
		if !strippedMetric(h.Name) {
			m.Histograms = append(m.Histograms, h)
		}
	}
	out.Metrics = m
	return &out
}

// Validate checks the structural invariants a well-formed report must
// satisfy; the reportcheck tool and the CI smoke step build on it.
func (r *RunReport) Validate() error {
	if r.Schema != ReportSchemaVersion {
		return fmt.Errorf("obs: report schema %d, want %d", r.Schema, ReportSchemaVersion)
	}
	if r.Tool == "" {
		return fmt.Errorf("obs: report has no tool name")
	}
	if len(r.Experiments) == 0 {
		return fmt.Errorf("obs: report has no experiments")
	}
	for i, e := range r.Experiments {
		if e.Name == "" {
			return fmt.Errorf("obs: experiment %d has no name", i)
		}
		if e.WallSeconds < 0 {
			return fmt.Errorf("obs: experiment %q has negative wall time", e.Name)
		}
	}
	for _, h := range r.Metrics.Histograms {
		var n int64
		for _, b := range h.Buckets {
			n += b.Count
		}
		if n != h.Count {
			return fmt.Errorf("obs: histogram %q bucket counts sum to %d, count is %d",
				h.Name, n, h.Count)
		}
	}
	return nil
}

// Encode writes the report as indented JSON.
func (r *RunReport) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile atomically writes the report next to the given path (temp
// file + rename), so a crash never leaves a truncated report behind.
func (r *RunReport) WriteFile(path string) error {
	tmp, err := os.CreateTemp(dirOf(path), ".report-*.json")
	if err != nil {
		return err
	}
	if err := r.Encode(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadReportFile parses a report written by WriteFile/Encode.
func ReadReportFile(path string) (*RunReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r RunReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("obs: parsing %s: %w", path, err)
	}
	return &r, nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i+1]
		}
	}
	return "."
}
