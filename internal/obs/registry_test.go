package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestRegistryRecorderRoundTrip(t *testing.T) {
	reg := NewRegistry()
	var rec Recorder = reg // *Registry satisfies Recorder
	rec.Count("sim.frames", 3)
	rec.Count("sim.frames", 2)
	rec.Observe("detector.iterations", 4)
	rec.SetGauge("campaign.workers", 8)

	snap := reg.Snapshot()
	if got := snap.CounterValue("sim.frames"); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	h, ok := snap.HistogramByName("detector.iterations")
	if !ok || h.Count != 1 || h.Sum != 4 {
		t.Fatalf("histogram = %+v ok=%v", h, ok)
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != 8 {
		t.Fatalf("gauges = %+v", snap.Gauges)
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	reg := NewRegistry()
	for _, name := range []string{"zz", "aa", "mm"} {
		reg.Count(name, 1)
		reg.Observe("h."+name, 1)
	}
	snap := reg.Snapshot()
	for i := 1; i < len(snap.Counters); i++ {
		if snap.Counters[i].Name < snap.Counters[i-1].Name {
			t.Fatalf("counters unsorted: %+v", snap.Counters)
		}
	}
	for i := 1; i < len(snap.Histograms); i++ {
		if snap.Histograms[i].Name < snap.Histograms[i-1].Name {
			t.Fatalf("histograms unsorted: %+v", snap.Histograms)
		}
	}
}

func TestDeclareHistogramFixesBuckets(t *testing.T) {
	reg := NewRegistry()
	reg.DeclareHistogram("margin", []float64{0, 10, 20})
	reg.Observe("margin", 15)
	h, _ := reg.Snapshot().HistogramByName("margin")
	if len(h.Buckets) != 1 || h.Buckets[0].UpperBound != 20 {
		t.Fatalf("buckets = %+v, want one at le=20", h.Buckets)
	}
	// Declaring after creation must not reset anything.
	reg.DeclareHistogram("margin", []float64{1000})
	reg.Observe("margin", 15)
	h, _ = reg.Snapshot().HistogramByName("margin")
	if h.Count != 2 {
		t.Fatalf("count = %d after redeclare, want 2", h.Count)
	}
}

func TestRegistryConcurrentCreateAndRecord(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				reg.Count("c", 1)
				reg.Observe("h", 1)
				reg.SetGauge("g", float64(i))
			}
		}()
	}
	wg.Wait()
	snap := reg.Snapshot()
	if snap.CounterValue("c") != 1600 {
		t.Fatalf("counter = %d, want 1600", snap.CounterValue("c"))
	}
	if h, _ := snap.HistogramByName("h"); h.Count != 1600 {
		t.Fatalf("histogram count = %d, want 1600", h.Count)
	}
}

func TestSnapshotJSONIsValid(t *testing.T) {
	reg := NewRegistry()
	reg.Observe("h", 3)
	reg.Count("c", 1)
	data, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.CounterValue("c") != 1 {
		t.Fatalf("round-tripped snapshot = %+v", back)
	}
}
